package puppies

import (
	"bytes"
	"testing"

	"puppies/internal/jpegc"
)

func TestProtectJPEGLossless(t *testing.T) {
	src := sampleImage(t, 10)
	original := mustPlainJPEG(t, src)
	region := Rect{X: 96, Y: 96, W: 64, H: 64}

	prot, err := ProtectJPEG(original, ProtectOptions{Regions: []Rect{region}})
	if err != nil {
		t.Fatal(err)
	}

	// Outside the region the coefficients are bit-identical to the input —
	// zero generation loss, unlike the pixel path.
	origImg, err := jpegc.Decode(bytes.NewReader(original))
	if err != nil {
		t.Fatal(err)
	}
	protImg, err := jpegc.Decode(bytes.NewReader(prot.JPEG))
	if err != nil {
		t.Fatal(err)
	}
	r := prot.Regions[0]
	for ci := range origImg.Comps {
		comp := &origImg.Comps[ci]
		for by := 0; by < comp.BlocksH; by++ {
			for bx := 0; bx < comp.BlocksW; bx++ {
				inROI := bx*8 >= r.X && bx*8 < r.X+r.W && by*8 >= r.Y && by*8 < r.Y+r.H
				same := *comp.Block(bx, by) == *protImg.Comps[ci].Block(bx, by)
				if !inROI && !same {
					t.Fatalf("block (%d,%d) outside ROI changed", bx, by)
				}
			}
		}
	}

	// Lossless recovery returns the exact original coefficients.
	recovered, err := UnprotectJPEG(prot.JPEG, prot.Params, prot.Keys)
	if err != nil {
		t.Fatal(err)
	}
	recImg, err := jpegc.Decode(bytes.NewReader(recovered))
	if err != nil {
		t.Fatal(err)
	}
	for ci := range origImg.Comps {
		for bi := range origImg.Comps[ci].Blocks {
			if origImg.Comps[ci].Blocks[bi] != recImg.Comps[ci].Blocks[bi] {
				t.Fatal("lossless recovery changed coefficients")
			}
		}
	}
}

func TestProtectJPEGValidation(t *testing.T) {
	src := sampleImage(t, 10)
	original := mustPlainJPEG(t, src)
	if _, err := ProtectJPEG(original, ProtectOptions{}); err == nil {
		t.Error("missing regions accepted")
	}
	if _, err := ProtectJPEG([]byte("junk"), ProtectOptions{
		Regions: []Rect{{X: 0, Y: 0, W: 8, H: 8}},
	}); err == nil {
		t.Error("garbage JPEG accepted")
	}
	if _, err := ProtectJPEG(original, ProtectOptions{
		Regions: []Rect{{X: 0, Y: 0, W: 8, H: 8}},
		Keys:    []*KeyPair{nil, nil},
	}); err == nil {
		t.Error("key count mismatch accepted")
	}
}

func TestUnprotectJPEGGarbage(t *testing.T) {
	if _, err := UnprotectJPEG([]byte("junk"), []byte("{}"), nil); err == nil {
		t.Error("garbage accepted")
	}
}
