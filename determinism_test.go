// Parallel determinism tests: the entire protect/encode/recover pipeline
// must produce byte-identical artifacts at any worker count, because the
// parallel substrate fixes chunk boundaries independently of parallelism
// (see internal/parallel). Run under -race via `make race`.
package puppies_test

import (
	"bytes"
	"image"
	"math"
	"runtime"
	"testing"

	"puppies"
	"puppies/internal/imgplane"
	"puppies/internal/keys"
	"puppies/internal/parallel"
)

// determinismImage builds a natural-statistics RGBA test image.
func determinismImage(w, h int) image.Image {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := img.PixOffset(x, y)
			img.Pix[i+0] = uint8(128 + 90*math.Sin(float64(x)/11)*math.Cos(float64(y)/7))
			img.Pix[i+1] = uint8(128 + 70*math.Sin(float64(x+y)/13))
			img.Pix[i+2] = uint8(128 + 50*math.Cos(float64(x-2*y)/17))
			img.Pix[i+3] = 255
		}
	}
	return img
}

// workerSweep returns the parallelism levels the determinism suite checks:
// serial, two workers, and the machine's CPU count.
func workerSweep() []int {
	levels := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		levels = append(levels, n)
	}
	return levels
}

// TestParallelDeterminismProtectRecover protects and recovers an image at
// every parallelism level and requires byte-identical JPEG bytes, public
// parameters, and recovered pixels.
func TestParallelDeterminismProtectRecover(t *testing.T) {
	src := determinismImage(160, 120)
	pair := keys.NewPairDeterministic(42)
	opts := puppies.ProtectOptions{
		Variant:          puppies.VariantZ,
		Regions:          []puppies.Rect{{X: 16, Y: 8, W: 96, H: 80}},
		Keys:             []*puppies.KeyPair{pair},
		TransformSupport: true,
	}

	type artifacts struct {
		jpeg, params, recovered []byte
	}
	run := func(workers int) artifacts {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		p, err := puppies.Protect(src, opts)
		if err != nil {
			t.Fatalf("workers=%d: Protect: %v", workers, err)
		}
		rec, err := puppies.UnprotectJPEG(p.JPEG, p.Params, p.Keys)
		if err != nil {
			t.Fatalf("workers=%d: UnprotectJPEG: %v", workers, err)
		}
		return artifacts{jpeg: p.JPEG, params: p.Params, recovered: rec}
	}

	levels := workerSweep()
	base := run(levels[0])
	for _, w := range levels[1:] {
		got := run(w)
		if !bytes.Equal(got.jpeg, base.jpeg) {
			t.Errorf("workers=%d: protected JPEG differs from workers=%d", w, levels[0])
		}
		if !bytes.Equal(got.params, base.params) {
			t.Errorf("workers=%d: public params differ from workers=%d", w, levels[0])
		}
		if !bytes.Equal(got.recovered, base.recovered) {
			t.Errorf("workers=%d: recovered JPEG differs from workers=%d", w, levels[0])
		}
	}
}

// TestParallelDeterminismPixelPipeline covers the pixel-domain paths: the
// shadow reconstruction after a PSP-side scale must produce identical
// recovered planes at every parallelism level.
func TestParallelDeterminismPixelPipeline(t *testing.T) {
	src := determinismImage(160, 120)
	pair := keys.NewPairDeterministic(43)
	opts := puppies.ProtectOptions{
		Variant:          puppies.VariantZ,
		Regions:          []puppies.Rect{{X: 0, Y: 0, W: 80, H: 80}},
		Keys:             []*puppies.KeyPair{pair},
		TransformSupport: true,
	}
	spec := puppies.TransformSpec{Op: "scale", FactorX: 0.5, FactorY: 0.5}

	run := func(workers int) []byte {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		p, err := puppies.Protect(src, opts)
		if err != nil {
			t.Fatalf("workers=%d: Protect: %v", workers, err)
		}
		plnr, err := puppies.PSPTransformPixels(p.JPEG, spec)
		if err != nil {
			t.Fatalf("workers=%d: PSPTransformPixels: %v", workers, err)
		}
		rec, err := puppies.UnprotectTransformedPixels(plnr, p.Params, spec, p.Keys)
		if err != nil {
			t.Fatalf("workers=%d: UnprotectTransformedPixels: %v", workers, err)
		}
		out, err := puppies.EncodeJPEG(rec, 90)
		if err != nil {
			t.Fatalf("workers=%d: EncodeJPEG: %v", workers, err)
		}
		return out
	}

	levels := workerSweep()
	base := run(levels[0])
	for _, w := range levels[1:] {
		if got := run(w); !bytes.Equal(got, base) {
			t.Errorf("workers=%d: pixel-path recovery differs from workers=%d", w, levels[0])
		}
	}
}

// TestParallelDeterminismMetrics pins the chunked metric reductions: PSNR
// and SSIM must return bit-identical float64 values at every worker count.
func TestParallelDeterminismMetrics(t *testing.T) {
	a := imgplane.NewPlane(333, 217)
	b := imgplane.NewPlane(333, 217)
	for i := range a.Pix {
		a.Pix[i] = float32(128 + 60*math.Sin(float64(i)/29))
		b.Pix[i] = a.Pix[i] + float32(3*math.Cos(float64(i)/5))
	}
	type metrics struct{ mse, psnr, ssim float64 }
	run := func(workers int) metrics {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		mse, err := imgplane.MSE(a, b)
		if err != nil {
			t.Fatal(err)
		}
		psnr, err := imgplane.PSNR(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ssim, err := imgplane.SSIM(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return metrics{mse, psnr, ssim}
	}
	levels := workerSweep()
	base := run(levels[0])
	for _, w := range levels[1:] {
		if got := run(w); got != base {
			t.Errorf("workers=%d: metrics %+v differ from workers=%d %+v", w, got, levels[0], base)
		}
	}
}
