module puppies

go 1.22
