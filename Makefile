# PuPPIeS build/check targets. `make check` is the CI gate: formatting,
# vet, the full test suite, and the resilience/concurrency tests under the
# race detector (TestConcurrentClients and the internal/faults harness run
# as part of the -race invocation).

GO ?= go

# BENCH_OUT is the JSON report `make bench` writes. `make bench-compare`
# gates every benchmark common to OLD and NEW on >10% ns/op or allocs/op
# regressions; set HOT_BENCHMARKS to restrict the gate to named benchmarks
# (their absence from NEW then also fails).
BENCH_OUT ?= BENCH_PR7.json
HOT_BENCHMARKS ?=

# SERVE_BENCHMARKS are the PR 5 serving-path benchmarks; bench-compare
# additionally requires them to be present in NEW (they gate the cache
# layer's hot path and collapse behavior).
SERVE_BENCHMARKS ?= BenchmarkServeTransformedCold,BenchmarkServeTransformedHot,BenchmarkServeTransformedConcurrent,BenchmarkServeTransformedCollapse

# BATCH_BENCHMARKS are the PR 7 batch-upload and native-subsampling
# benchmarks: required in NEW (>10% ns/op or allocs/op regression fails once
# they exist in the baseline), and PERF_RATIOS additionally asserts the two
# headline guarantees on the new report itself — the streaming batch route
# sustains at least 2x the sequential upload throughput per core, and the
# native 4:2:0 decode carries at least 1.5x fewer coefficient bytes than the
# 4:4:4-normalized pipeline.
BATCH_BENCHMARKS ?= BenchmarkUploadSequential,BenchmarkUploadBatch,BenchmarkDecodeNative420,BenchmarkDecodeNormalized420
PERF_RATIOS ?= BenchmarkUploadSequential/BenchmarkUploadBatch>=2:ns/op,BenchmarkDecodeNormalized420/BenchmarkDecodeNative420>=1.5:coeff-bytes/op,BenchmarkProtectRecoverAllocSLO/BenchmarkProtectRecoverPerMP>=1:allocs/op

.PHONY: all build test check fmt race fuzz-smoke bench bench-compare cluster-e2e cluster-demo load-gate search-gate thumb-gate profile

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the PSP pipeline tests (client retries, fault injection,
# concurrent clients, pspd graceful shutdown), the durable-store crash
# matrix, the cluster gateway (ring, breakers, quorum replication, fault
# matrix) with its daemon, the parallel-pipeline determinism suite, the
# reduced-IDCT kernels and transform planner (parallel scaled decode +
# worker-count determinism), and the restart-segment and scaled-decode
# parallel plane fills under -race.
race:
	$(GO) test -race -count=1 ./internal/psp/... ./internal/servecache/... ./internal/faults/... ./internal/blobstore/... ./internal/cluster/... ./internal/admission/... ./internal/stats/... ./internal/loadgen/... ./internal/searchidx/... ./internal/dct/... ./internal/transform/... ./cmd/pspd/... ./cmd/pspgw/...
	$(GO) test -race -count=1 -run 'TestParallelDeterminism' .
	$(GO) test -race -count=1 -run 'TestRestart|TestToPlanarScaled' ./internal/jpegc

# cluster-e2e runs the full crash/partition e2e on its own: a real 3-shard
# cluster behind the gateway, one shard SIGKILLed mid-traffic, an asymmetric
# partition on a second, zero failed client requests, and byte-identical
# replicas after restart + repair. The -timeout guard keeps a wedged cluster
# from hanging CI.
cluster-e2e:
	$(GO) test -count=1 -timeout 120s -run 'TestClusterSurvives' ./cmd/pspgw/

# cluster-demo boots three in-memory shards plus the gateway on local ports
# and leaves them running for manual poking (Ctrl-C stops everything).
cluster-demo: build
	@bash -c 'set -e; trap "kill 0" EXIT INT TERM; \
	$(GO) run ./cmd/pspd -addr 127.0.0.1:8754 & \
	$(GO) run ./cmd/pspd -addr 127.0.0.1:8755 & \
	$(GO) run ./cmd/pspd -addr 127.0.0.1:8756 & \
	sleep 1; \
	$(GO) run ./cmd/pspgw -addr 127.0.0.1:8750 \
		-shards http://127.0.0.1:8754,http://127.0.0.1:8755,http://127.0.0.1:8756; \
	wait'

# fuzz-smoke gives each fuzz target a short budget so `make check` exercises
# the decoders against the native fuzzer on every run (corpus regressions
# under testdata/ always run as plain tests regardless).
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/jpegc
	$(GO) test -run '^$$' -fuzz '^FuzzDecodePublicData$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzEnvelope$$' -fuzztime $(FUZZTIME) ./internal/blobstore
	$(GO) test -run '^$$' -fuzz '^FuzzSpecKey$$' -fuzztime $(FUZZTIME) ./internal/transform
	$(GO) test -run '^$$' -fuzz '^FuzzPlan$$' -fuzztime $(FUZZTIME) ./internal/transform
	$(GO) test -run '^$$' -fuzz '^FuzzSignature$$' -fuzztime $(FUZZTIME) ./internal/searchidx
	$(GO) test -run '^$$' -fuzz '^FuzzIndexSnapshot$$' -fuzztime $(FUZZTIME) ./internal/searchidx

# bench runs every benchmark (paper tables/figures plus the kernel and
# pipeline micro-benchmarks) and writes a JSON report to $(BENCH_OUT).
# BENCH_COUNT runs each benchmark N times; benchfmt keeps the fastest, so
# the report is best-of-N — noise on a busy machine only ever slows a run.
BENCH_COUNT ?= 3
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) ./... | tee /dev/stderr | $(GO) run ./cmd/benchfmt -o $(BENCH_OUT)

# bench-compare diffs two bench reports, printing per-benchmark deltas, and
# fails on a >10% ns/op or allocs/op regression:
#   make bench BENCH_OUT=old.json   # on the baseline commit
#   make bench BENCH_OUT=new.json   # on the candidate
#   make bench-compare OLD=old.json NEW=new.json
# The second pass gates the serving-path benchmarks: their absence from NEW
# fails the build even when the baseline predates them.
OLD ?= BENCH_PR5.json
NEW ?= $(BENCH_OUT)
bench-compare:
	$(GO) run ./cmd/benchfmt -old $(OLD) -new $(NEW) $(if $(HOT_BENCHMARKS),-hot '$(HOT_BENCHMARKS)')
	$(GO) run ./cmd/benchfmt -old $(OLD) -new $(NEW) -hot '$(SERVE_BENCHMARKS)'
	$(GO) run ./cmd/benchfmt -old $(OLD) -new $(NEW) -hot '$(BATCH_BENCHMARKS)' -ratio '$(PERF_RATIOS)'

# load-gate is the PR 8 SLO gate: a seeded Zipf load run (cmd/loadgen)
# against an in-process 3-shard cluster whose gateway admission capacity is
# deliberately tiny, with the builtin chaos schedule (full 503 blackout on
# shard 0, partial burst on shard 1, partition of shard 2) running
# underneath. The run itself gates on zero unexpected client-visible
# failures, 429+Retry-After shedding having been exercised, and every
# breaker having tripped AND recovered; benchfmt then re-asserts from the
# written report that hot transformed-GET p99 stayed under LOAD_SLO_P99 and
# ok-per-op stayed at 1.0. The artifact is committed as $(LOAD_OUT).
LOAD_OUT ?= BENCH_PR8.json
LOAD_SEED ?= 42
LOAD_DURATION ?= 8s
LOAD_WORKERS ?= 12
LOAD_SLO_P99 ?= 250ms
LOAD_SLO_THUMB_P99 ?= 250ms
LOAD_SLO_RATIOS ?= LoadSLOHotGet/LoadHotGet>=1:p99-ns,LoadSLOThumbnail/LoadThumbnail>=1:p99-ns,LoadOverall/LoadSLOHotGet>=1:ok-per-op
load-gate:
	$(GO) run ./cmd/loadgen -selfhost 3 -seed $(LOAD_SEED) -duration $(LOAD_DURATION) \
		-workers $(LOAD_WORKERS) -corpus 16 -chaos gate \
		-gw-max-inflight 4 -gw-admit-wait 10ms -gw-admit-queue 2 \
		-slo-hotget-p99 $(LOAD_SLO_P99) -slo-thumb-p99 $(LOAD_SLO_THUMB_P99) \
		-max-unexpected 0 -require-sheds -require-breaker-cycle \
		-o $(LOAD_OUT)
	$(GO) run ./cmd/benchfmt -new $(LOAD_OUT) -ratio '$(LOAD_SLO_RATIOS)'

# search-gate is the PR 9 catalog-search gate: the searchidx benchmarks run
# at 10^4/10^5/10^6 signatures (clustered near-duplicate corpus, the regime
# the signature was designed for) and the report is committed as
# $(SEARCH_OUT). benchfmt then asserts the headline guarantees from the
# report itself: the indexed lookup beats the brute-force scan by at least
# 50x at 10^5, recall@10 holds at >= 0.9, and lookup p99 stays under the
# 1ms SLO row emitted by BenchmarkSearchSLO. SEARCH_BENCH_COUNT is best-of-N
# per benchmark (the corpus is built once per process and reused).
SEARCH_OUT ?= BENCH_PR9.json
SEARCH_BENCH_COUNT ?= 3
SEARCH_RATIOS ?= BenchmarkSearchScan100k/BenchmarkSearchLookup100k>=50:ns/op,BenchmarkSearchLookup100k/BenchmarkSearchSLO>=1:recall-k10,BenchmarkSearchSLO/BenchmarkSearchLookup100k>=1:p99-ns
search-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkS(earch|AD)' -benchmem -count $(SEARCH_BENCH_COUNT) -timeout 30m ./internal/searchidx | tee /dev/stderr | $(GO) run ./cmd/benchfmt -o $(SEARCH_OUT)
	$(GO) run ./cmd/benchfmt -new $(SEARCH_OUT) -ratio '$(SEARCH_RATIOS)'

# thumb-gate is the PR 10 scaled-decode gate: the psp thumbnail serving
# benchmarks (cold full path vs the coefficient-warm scaled-decode fast
# path, both at the canonical 1/8-scale thumbnail spec) plus the
# protect/recover allocation rows run best-of-N, and the report is
# committed as $(THUMB_OUT). benchfmt then asserts the headline guarantees
# from the report itself: the scaled-decode path serves thumbnails at
# least 5x faster than the pre-scaled-decode full path, and the megapixel
# protect+recover pipeline stays inside the allocation budget published by
# BenchmarkProtectRecoverAllocSLO.
THUMB_OUT ?= BENCH_PR10.json
THUMB_BENCH_COUNT ?= 3
THUMB_RATIOS ?= BenchmarkServeTransformedCold/BenchmarkServeThumbnailCold>=5:ns/op,BenchmarkProtectRecoverAllocSLO/BenchmarkProtectRecoverPerMP>=1:allocs/op
thumb-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkServe(TransformedCold|ThumbnailCold)$$|BenchmarkServeThumbnailColdFullPath$$|BenchmarkProtectRecover' -benchmem -count $(THUMB_BENCH_COUNT) -timeout 30m . ./internal/psp | tee /dev/stderr | $(GO) run ./cmd/benchfmt -o $(THUMB_OUT)
	$(GO) run ./cmd/benchfmt -new $(THUMB_OUT) -ratio '$(THUMB_RATIOS)'

# profile captures CPU and allocation pprof profiles of the two hot paths —
# the protect/recover pipeline (paper Table 1 workload) and the streaming
# batch upload route — and prints the CPU top for each. Inspect further with
#   go tool pprof $(PROFILE_DIR)/protect.cpu.prof
PROFILE_DIR ?= profiles
profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run '^$$' -bench 'BenchmarkTable1Capabilities' -benchtime 2s \
		-cpuprofile $(PROFILE_DIR)/protect.cpu.prof -memprofile $(PROFILE_DIR)/protect.mem.prof .
	$(GO) test -run '^$$' -bench 'BenchmarkUploadBatch$$' -benchtime 2s \
		-cpuprofile $(PROFILE_DIR)/batch.cpu.prof -memprofile $(PROFILE_DIR)/batch.mem.prof ./internal/psp/
	$(GO) tool pprof -top -nodecount 15 $(PROFILE_DIR)/protect.cpu.prof
	$(GO) tool pprof -top -nodecount 15 $(PROFILE_DIR)/batch.cpu.prof

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) race
	$(MAKE) cluster-e2e
	$(MAKE) load-gate
	$(MAKE) search-gate
	$(MAKE) thumb-gate
	$(MAKE) fuzz-smoke
