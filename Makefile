# PuPPIeS build/check targets. `make check` is the CI gate: formatting,
# vet, the full test suite, and the resilience/concurrency tests under the
# race detector (TestConcurrentClients and the internal/faults harness run
# as part of the -race invocation).

GO ?= go

# BENCH_OUT is the JSON report `make bench` writes. `make bench-compare`
# gates every benchmark common to OLD and NEW on >10% ns/op or allocs/op
# regressions; set HOT_BENCHMARKS to restrict the gate to named benchmarks
# (their absence from NEW then also fails).
BENCH_OUT ?= BENCH_PR5.json
HOT_BENCHMARKS ?=

# SERVE_BENCHMARKS are the PR 5 serving-path benchmarks; bench-compare
# additionally requires them to be present in NEW (they gate the cache
# layer's hot path and collapse behavior).
SERVE_BENCHMARKS ?= BenchmarkServeTransformedCold,BenchmarkServeTransformedHot,BenchmarkServeTransformedConcurrent,BenchmarkServeTransformedCollapse

.PHONY: all build test check fmt race fuzz-smoke bench bench-compare

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the PSP pipeline tests (client retries, fault injection,
# concurrent clients, pspd graceful shutdown), the durable-store crash
# matrix, the parallel-pipeline determinism suite, and the restart-segment
# parallel scan decode under -race.
race:
	$(GO) test -race -count=1 ./internal/psp/... ./internal/servecache/... ./internal/faults/... ./internal/blobstore/... ./cmd/pspd/... ./internal/parallel/...
	$(GO) test -race -count=1 -run 'TestParallelDeterminism' .
	$(GO) test -race -count=1 -run 'TestRestart' ./internal/jpegc

# fuzz-smoke gives each fuzz target a short budget so `make check` exercises
# the decoders against the native fuzzer on every run (corpus regressions
# under testdata/ always run as plain tests regardless).
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/jpegc
	$(GO) test -run '^$$' -fuzz '^FuzzDecodePublicData$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzEnvelope$$' -fuzztime $(FUZZTIME) ./internal/blobstore
	$(GO) test -run '^$$' -fuzz '^FuzzSpecKey$$' -fuzztime $(FUZZTIME) ./internal/transform

# bench runs every benchmark (paper tables/figures plus the kernel and
# pipeline micro-benchmarks) and writes a JSON report to $(BENCH_OUT).
# BENCH_COUNT runs each benchmark N times; benchfmt keeps the fastest, so
# the report is best-of-N — noise on a busy machine only ever slows a run.
BENCH_COUNT ?= 3
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) ./... | tee /dev/stderr | $(GO) run ./cmd/benchfmt -o $(BENCH_OUT)

# bench-compare diffs two bench reports, printing per-benchmark deltas, and
# fails on a >10% ns/op or allocs/op regression:
#   make bench BENCH_OUT=old.json   # on the baseline commit
#   make bench BENCH_OUT=new.json   # on the candidate
#   make bench-compare OLD=old.json NEW=new.json
# The second pass gates the serving-path benchmarks: their absence from NEW
# fails the build even when the baseline predates them.
OLD ?= BENCH_PR4.json
NEW ?= $(BENCH_OUT)
bench-compare:
	$(GO) run ./cmd/benchfmt -old $(OLD) -new $(NEW) $(if $(HOT_BENCHMARKS),-hot '$(HOT_BENCHMARKS)')
	$(GO) run ./cmd/benchfmt -old $(OLD) -new $(NEW) -hot '$(SERVE_BENCHMARKS)'

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) race
	$(MAKE) fuzz-smoke
