# PuPPIeS build/check targets. `make check` is the CI gate: formatting,
# vet, the full test suite, and the resilience/concurrency tests under the
# race detector (TestConcurrentClients and the internal/faults harness run
# as part of the -race invocation).

GO ?= go

.PHONY: all build test check fmt race

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the PSP pipeline tests (client retries, fault injection,
# concurrent clients, pspd graceful shutdown) under -race.
race:
	$(GO) test -race -count=1 ./internal/psp/... ./internal/faults/... ./cmd/pspd/...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) race
