package puppies_test

import (
	"fmt"
	"image"
	"image/color"
	"log"

	"puppies"
)

// demoImage builds a deterministic test photo.
func demoImage() image.Image {
	img := image.NewRGBA(image.Rect(0, 0, 128, 96))
	for y := 0; y < 96; y++ {
		for x := 0; x < 128; x++ {
			img.SetRGBA(x, y, color.RGBA{
				R: uint8(100 + (x*3+y*5)%100),
				G: uint8(90 + (x*7+y)%110),
				B: uint8(80 + (x+y*3)%90),
				A: 255,
			})
		}
	}
	return img
}

// Example_protectAndRecover shows the minimal protect/share/recover flow.
func Example_protectAndRecover() {
	prot, err := puppies.Protect(demoImage(), puppies.ProtectOptions{
		Regions: []puppies.Rect{{X: 32, Y: 24, W: 48, H: 40}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("regions protected:", len(prot.Regions))
	fmt.Println("keys issued:", len(prot.Keys))

	// Without keys the region stays hidden; with keys it comes back.
	if _, err := puppies.Unprotect(prot.JPEG, prot.Params, nil); err != nil {
		log.Fatal(err)
	}
	recovered, err := puppies.Unprotect(prot.JPEG, prot.Params, prot.Keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered bounds:", recovered.Bounds().Max)
	// Output:
	// regions protected: 1
	// keys issued: 1
	// recovered bounds: (128,96)
}

// Example_keyDistribution shows sealed key delivery to a receiver.
func Example_keyDistribution() {
	prot, err := puppies.Protect(demoImage(), puppies.ProtectOptions{
		Regions: []puppies.Rect{{X: 0, Y: 0, W: 32, H: 32}},
	})
	if err != nil {
		log.Fatal(err)
	}
	store := puppies.NewKeyStore()
	if err := store.Add(prot.Keys[0]); err != nil {
		log.Fatal(err)
	}
	if err := store.Grant("bob", prot.Keys[0].ID); err != nil {
		log.Fatal(err)
	}

	bob, err := puppies.NewIdentity()
	if err != nil {
		log.Fatal(err)
	}
	env, err := store.SealFor("bob", bob.PublicKey())
	if err != nil {
		log.Fatal(err)
	}
	received, err := bob.Open(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bob received keys:", len(received))
	fmt.Println("matches granted key:", received[0].ID == prot.Keys[0].ID)
	// Output:
	// bob received keys: 1
	// matches granted key: true
}

// Example_transformedRecovery shows exact recovery after a PSP-side
// rotation of the stored image.
func Example_transformedRecovery() {
	prot, err := puppies.Protect(demoImage(), puppies.ProtectOptions{
		Regions: []puppies.Rect{{X: 32, Y: 24, W: 48, H: 40}},
		Variant: puppies.VariantC,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The platform rotates the stored JPEG with its own tooling.
	rotated, err := puppies.PSPTransform(prot.JPEG, puppies.TransformSpec{Op: "rotate90"})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := puppies.UnprotectTransformed(rotated, prot.Params,
		puppies.TransformSpec{Op: "rotate90"}, prot.Keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rotated recovery bounds:", rec.Bounds().Max)
	// Output:
	// rotated recovery bounds: (96,128)
}
