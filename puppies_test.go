package puppies

import (
	"bytes"
	"image"
	"image/jpeg"
	"math"
	"testing"

	"puppies/internal/dataset"
	"puppies/internal/imgplane"
)

// mustPlainJPEG encodes a stdlib image with the library codec.
func mustPlainJPEG(t *testing.T, src image.Image) []byte {
	t.Helper()
	data, err := EncodeJPEG(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// sampleImage returns a PASCAL-style synthetic photo as a stdlib image.
func sampleImage(t testing.TB, index int) image.Image {
	t.Helper()
	g, err := dataset.NewGenerator(dataset.PASCAL, 77)
	if err != nil {
		t.Fatal(err)
	}
	return g.Item(index).Image.Quantize8().ToStdImage()
}

func rectPSNR(t *testing.T, a, b image.Image, r Rect) float64 {
	t.Helper()
	var mse float64
	var n int
	for y := r.Y; y < r.Y+r.H; y++ {
		for x := r.X; x < r.X+r.W; x++ {
			ra, ga, ba, _ := a.At(x, y).RGBA()
			rb, gb, bb, _ := b.At(x, y).RGBA()
			for _, d := range []float64{
				float64(ra>>8) - float64(rb>>8),
				float64(ga>>8) - float64(gb>>8),
				float64(ba>>8) - float64(bb>>8),
			} {
				mse += d * d
				n += 1
			}
		}
	}
	mse /= float64(n)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func TestProtectUnprotectRoundTrip(t *testing.T) {
	src := sampleImage(t, 0)
	region := Rect{X: 96, Y: 96, W: 128, H: 96}
	prot, err := Protect(src, ProtectOptions{Regions: []Rect{region}, Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	if len(prot.Keys) != 1 || len(prot.Regions) != 1 {
		t.Fatalf("got %d keys, %d regions", len(prot.Keys), len(prot.Regions))
	}

	// The protected JPEG must be readable by the stdlib decoder (i.e. by
	// any PSP).
	if _, err := jpeg.Decode(bytes.NewReader(prot.JPEG)); err != nil {
		t.Fatalf("stdlib cannot decode protected JPEG: %v", err)
	}

	// Without keys the region stays hidden.
	hidden, err := Unprotect(prot.JPEG, prot.Params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p := rectPSNR(t, src, hidden, prot.Regions[0]); p > 20 {
		t.Errorf("region visible without keys (PSNR %.1f dB)", p)
	}

	// With keys it comes back at JPEG fidelity.
	recovered, err := Unprotect(prot.JPEG, prot.Params, prot.Keys)
	if err != nil {
		t.Fatal(err)
	}
	if p := rectPSNR(t, src, recovered, prot.Regions[0]); p < 30 {
		t.Errorf("recovered region PSNR %.1f dB, want JPEG-level fidelity", p)
	}
}

func TestProtectAutoDetect(t *testing.T) {
	src := sampleImage(t, 1)
	prot, err := Protect(src, ProtectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prot.Regions) == 0 {
		t.Fatal("auto-detect protected nothing")
	}
	for _, r := range prot.Regions {
		b := src.Bounds()
		if err := r.Validate(b.Dx(), b.Dy()); err != nil {
			t.Errorf("region %+v: %v", r, err)
		}
	}
}

func TestProtectVariantsAndLevels(t *testing.T) {
	src := sampleImage(t, 2)
	region := Rect{X: 64, Y: 64, W: 64, H: 64}
	for _, v := range []Variant{VariantN, VariantB, VariantC, VariantZ} {
		for _, l := range []PrivacyLevel{LevelLow, LevelMedium, LevelHigh} {
			prot, err := Protect(src, ProtectOptions{
				Variant: v, Level: l, Regions: []Rect{region},
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", v, l, err)
			}
			rec, err := Unprotect(prot.JPEG, prot.Params, prot.Keys)
			if err != nil {
				t.Fatalf("%s/%s: %v", v, l, err)
			}
			if p := rectPSNR(t, src, rec, prot.Regions[0]); p < 28 {
				t.Errorf("%s/%s: recovery PSNR %.1f dB", v, l, p)
			}
		}
	}
}

func TestUnprotectTransformedRotation(t *testing.T) {
	src := sampleImage(t, 3)
	region := Rect{X: 96, Y: 96, W: 64, H: 64}
	prot, err := Protect(src, ProtectOptions{Regions: []Rect{region}, Variant: VariantC})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the PSP rotating the stored image.
	timg, params := pspRotate90(t, prot)
	rec, err := UnprotectTransformed(timg, params, TransformSpec{Op: "rotate90"}, prot.Keys)
	if err != nil {
		t.Fatal(err)
	}
	b := src.Bounds()
	if rec.Bounds().Dx() != b.Dy() || rec.Bounds().Dy() != b.Dx() {
		t.Errorf("rotated recovery has bounds %v", rec.Bounds())
	}
}

// pspRotate90 plays the PSP: decode the protected JPEG, rotate 90 degrees
// in the coefficient domain, re-encode.
func pspRotate90(t *testing.T, prot *Protected) (jpegBytes, params []byte) {
	t.Helper()
	// Round-trip through the facade-level helpers only; internals are fine
	// for the test harness.
	rec, err := PSPTransform(prot.JPEG, TransformSpec{Op: "rotate90"})
	if err != nil {
		t.Fatal(err)
	}
	return rec, prot.Params
}

func TestProtectValidation(t *testing.T) {
	if _, err := Protect(nil, ProtectOptions{}); err == nil {
		t.Error("nil image accepted")
	}
	src := sampleImage(t, 4)
	if _, err := Protect(src, ProtectOptions{Variant: "bogus", Regions: []Rect{{X: 0, Y: 0, W: 8, H: 8}}}); err == nil {
		t.Error("bogus variant accepted")
	}
	if _, err := Protect(src, ProtectOptions{
		Regions: []Rect{{X: 0, Y: 0, W: 16, H: 16}},
		Keys:    []*KeyPair{nil, nil},
	}); err == nil {
		t.Error("key/region count mismatch accepted")
	}
	if _, err := Protect(src, ProtectOptions{Regions: []Rect{{X: -20, Y: -20, W: 4, H: 4}}}); err == nil {
		t.Error("out-of-image region accepted")
	}
}

func TestUnprotectGarbage(t *testing.T) {
	if _, err := Unprotect([]byte("junk"), []byte("{}"), nil); err == nil {
		t.Error("garbage JPEG accepted")
	}
	src := sampleImage(t, 5)
	prot, err := Protect(src, ProtectOptions{Regions: []Rect{{X: 0, Y: 0, W: 16, H: 16}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unprotect(prot.JPEG, []byte("not json"), nil); err == nil {
		t.Error("garbage params accepted")
	}
}

func TestKeyDistributionFlow(t *testing.T) {
	src := sampleImage(t, 6)
	prot, err := Protect(src, ProtectOptions{Regions: []Rect{{X: 32, Y: 32, W: 32, H: 32}}})
	if err != nil {
		t.Fatal(err)
	}
	store := NewKeyStore()
	for _, k := range prot.Keys {
		if err := store.Add(k); err != nil {
			t.Fatal(err)
		}
	}
	bob, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Grant("bob", prot.Keys[0].ID); err != nil {
		t.Fatal(err)
	}
	env, err := store.SealFor("bob", bob.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	received, err := bob.Open(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unprotect(prot.JPEG, prot.Params, received); err != nil {
		t.Fatal(err)
	}
}

func TestDetectRegionsOnStdImage(t *testing.T) {
	src := sampleImage(t, 7)
	regions := DetectRegions(src)
	if len(regions) == 0 {
		t.Error("no regions detected on object scene")
	}
}

func TestUnprotectTransformedPixelsScale(t *testing.T) {
	src := sampleImage(t, 8)
	region := Rect{X: 96, Y: 96, W: 64, H: 64}
	prot, err := Protect(src, ProtectOptions{
		Regions: []Rect{region}, Variant: VariantC, TransformSupport: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := TransformSpec{Op: "scale", FactorX: 0.5, FactorY: 0.5}
	plnr, err := PSPTransformPixels(prot.JPEG, spec)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := UnprotectTransformedPixels(plnr, prot.Params, spec, prot.Keys)
	if err != nil {
		t.Fatal(err)
	}
	b := src.Bounds()
	if rec.Bounds().Dx() != b.Dx()/2 || rec.Bounds().Dy() != b.Dy()/2 {
		t.Errorf("scaled recovery bounds %v", rec.Bounds())
	}
	// The scaled-down region must look like the scaled original, not noise:
	// compare against an unprotected scale of the source.
	wantPix, err := PSPTransformPixels(mustPlainJPEG(t, src), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := imgplane.DecodeBinary(bytes.NewReader(wantPix))
	if err != nil {
		t.Fatal(err)
	}
	wantImg := want.Quantize8().ToStdImage()
	half := Rect{X: region.X / 2, Y: region.Y / 2, W: region.W / 2, H: region.H / 2}
	if p := rectPSNR(t, wantImg, rec, half); p < 28 {
		t.Errorf("scaled recovery PSNR %.1f dB in region", p)
	}
}
