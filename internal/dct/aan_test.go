package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickSpatial draws a level-shifted 8-bit spatial block (the JPEG forward
// input domain) from testing/quick's rand source.
func quickSpatial(rng *rand.Rand) FloatBlock {
	var b FloatBlock
	for i := range b {
		b[i] = float64(rng.Intn(256) - 128)
	}
	return b
}

// quickCoeffBlock draws a quantized coefficient block over the JPEG
// coefficient range.
func quickCoeffBlock(rng *rand.Rand) Block {
	var b Block
	for i := range b {
		b[i] = int32(rng.Intn(CoeffRange)) + CoeffMin
	}
	return b
}

// quickQuant draws a quality-scaled standard table, covering the step-size
// range the codec actually uses.
func quickQuant(rng *rand.Rand) QuantTable {
	base := &StdLuminanceQuant
	if rng.Intn(2) == 1 {
		base = &StdChrominanceQuant
	}
	q, err := base.ScaleQuality(1 + rng.Intn(100))
	if err != nil {
		panic(err)
	}
	return q
}

func TestFastForwardMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := quickSpatial(rng)
		fast := Forward(&in)
		ref := ForwardReference(&in)
		for i := range fast {
			if math.Abs(fast[i]-ref[i]) > 1e-9 {
				t.Logf("coeff %d: fast %v ref %v", i, fast[i], ref[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFastInverseMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var in FloatBlock
		for i := range in {
			// Raw (dequantized) coefficients span roughly ±CoeffRange*255.
			in[i] = float64(rng.Intn(2*CoeffRange)-CoeffRange) * float64(1+rng.Intn(255))
		}
		fast := Inverse(&in)
		ref := InverseReference(&in)
		for i := range fast {
			if math.Abs(fast[i]-ref[i]) > 1e-6 {
				t.Logf("sample %d: fast %v ref %v", i, fast[i], ref[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestFastForwardQuantizedBitIdentical is the acceptance property: over the
// JPEG input domain, the folded fast path quantizes to exactly the same
// integers as the reference path, for every quality-scaled table.
func TestFastForwardQuantizedBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := quickSpatial(rng)
		q := quickQuant(rng)
		fast := ForwardQuantized(&in, &q)
		ref := ForwardQuantizedReference(&in, &q)
		if fast != ref {
			t.Logf("quantized mismatch:\nfast:\n%sref:\n%s", fast.String(), ref.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestFastForwardQuantizedBitIdenticalFlatBlocks pins the adversarial case
// for the boundary fallback: constant blocks put the DC exactly on a
// round-half boundary for even step sizes (DC of a constant block v is 8v;
// 8v/16 = v/2 is a .5 boundary for every odd v), where the fast and
// reference float paths would otherwise be free to round apart.
func TestFastForwardQuantizedBitIdenticalFlatBlocks(t *testing.T) {
	for _, quality := range []int{10, 50, 75, 90} {
		q, err := StdLuminanceQuant.ScaleQuality(quality)
		if err != nil {
			t.Fatal(err)
		}
		for v := -128; v < 128; v++ {
			var in FloatBlock
			for i := range in {
				in[i] = float64(v)
			}
			fast := ForwardQuantized(&in, &q)
			ref := ForwardQuantizedReference(&in, &q)
			if fast != ref {
				t.Fatalf("quality %d, flat %d: fast DC %d, ref DC %d",
					quality, v, fast[0], ref[0])
			}
		}
	}
}

func TestFastInverseQuantizedMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := quickCoeffBlock(rng)
		q := quickQuant(rng)
		fast := InverseQuantized(&b, &q)
		ref := InverseQuantizedReference(&b, &q)
		for i := range fast {
			if math.Abs(fast[i]-ref[i]) > 1e-6 {
				t.Logf("sample %d: fast %v ref %v", i, fast[i], ref[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestFastRoundTripQuantized checks the quantize/dequantize round trip stays
// within half a step per coefficient on the fast path (the JPEG fidelity
// contract), mirroring TestQuantizeDequantizeBounded for the folded kernels.
func TestFastRoundTripQuantized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := StdLuminanceQuant
	for trial := 0; trial < 50; trial++ {
		in := quickSpatial(rng)
		b := ForwardQuantized(&in, &q)
		back := InverseQuantized(&b, &q)
		fwd := Forward(&back)
		again := Quantize(&fwd, &q)
		if again != b {
			t.Fatalf("trial %d: fast quantized round trip unstable", trial)
		}
	}
}

func BenchmarkForwardReference(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	in := randomSpatial(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ForwardReference(&in)
	}
}

func BenchmarkInverseReference(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	in := randomSpatial(rng)
	coeff := ForwardReference(&in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = InverseReference(&coeff)
	}
}

func BenchmarkForwardQuantized(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	in := randomSpatial(rng)
	q := StdLuminanceQuant
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ForwardQuantized(&in, &q)
	}
}

func BenchmarkInverseQuantized(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	in := randomSpatial(rng)
	q := StdLuminanceQuant
	blk := ForwardQuantized(&in, &q)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = InverseQuantized(&blk, &q)
	}
}
