package dct

import (
	"math"
	"math/rand"
	"testing"
)

// randomQuant draws a valid quantization table with entries in [1, 255].
func randomQuant(rng *rand.Rand) QuantTable {
	var q QuantTable
	for i := range q {
		q[i] = uint16(1 + rng.Intn(255))
	}
	return q
}

// randomCoeffBlock draws coefficients across the full baseline range.
func randomCoeffBlock(rng *rand.Rand) Block {
	var b Block
	for i := range b {
		b[i] = int32(rng.Intn(CoeffMax-CoeffMin+1)) + CoeffMin
	}
	return b
}

// TestScaledKernelBitExactVsReference is the tentpole exactness property:
// for every per-axis size pair and a large random sweep of coefficient
// blocks and quantization tables, the fast separable kernel equals the
// naive reference of the same mathematical definition bit for bit.
func TestScaledKernelBitExactVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	var got, want [BlockLen]float64
	for _, nh := range ScaledNums {
		for _, nv := range ScaledNums {
			for trial := 0; trial < 200; trial++ {
				b := randomCoeffBlock(rng)
				q := randomQuant(rng)
				InverseQuantizedScaledInto(&b, &q, nh, nv, got[:nh*nv])
				InverseQuantizedScaledReference(&b, &q, nh, nv, want[:nh*nv])
				for i := 0; i < nh*nv; i++ {
					if got[i] != want[i] {
						t.Fatalf("kernel %dx%d trial %d sample %d: fast %v != reference %v (diff %g)",
							nh, nv, trial, i, got[i], want[i], got[i]-want[i])
					}
				}
			}
		}
	}
}

// TestScaledKernelDCOnly pins the 1x1 kernel's meaning: a DC-only block
// inverse-transforms to a flat 8x8 surface, so every reduced size must
// reproduce that flat value exactly (bilinear sampling of a constant).
func TestScaledKernelDCOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	var out [BlockLen]float64
	for trial := 0; trial < 50; trial++ {
		var b Block
		b[0] = int32(rng.Intn(2048)) - 1024
		q := randomQuant(rng)
		full := InverseQuantized(&b, &q)
		for _, nh := range ScaledNums {
			for _, nv := range ScaledNums {
				InverseQuantizedScaledInto(&b, &q, nh, nv, out[:nh*nv])
				for i := 0; i < nh*nv; i++ {
					if diff := math.Abs(out[i] - full[0]); diff > 1e-9 {
						t.Fatalf("DC-only %dx%d sample %d: got %v, want flat %v", nh, nv, i, out[i], full[0])
					}
				}
			}
		}
	}
}

// TestScaledKernelFullSizeMatchesInverse checks that the 8x8 "reduced"
// kernel is the plain inverse DCT: it must agree with the production AAN
// InverseQuantized path within float rounding (the two use different
// factorizations, so equality is to tolerance, unlike the bit-exact
// reference check above).
func TestScaledKernelFullSizeMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	var out [BlockLen]float64
	for trial := 0; trial < 100; trial++ {
		b := randomCoeffBlock(rng)
		q := randomQuant(rng)
		InverseQuantizedScaledInto(&b, &q, 8, 8, out[:])
		full := InverseQuantized(&b, &q)
		for i := range full {
			if diff := math.Abs(out[i] - full[i]); diff > 1e-6 {
				t.Fatalf("8x8 kernel sample %d: got %v, want %v (diff %g)", i, out[i], full[i], diff)
			}
		}
	}
}

// TestScaledKernelIsTruncatedDownsample verifies the definition end to
// end against first principles: reduced output must equal the full naive
// inverse DCT of the truncated coefficient block, downsampled with the
// center-aligned 2-tap average the matrix folds in.
func TestScaledKernelIsTruncatedDownsample(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	var out [BlockLen]float64
	for trial := 0; trial < 100; trial++ {
		b := randomCoeffBlock(rng)
		q := randomQuant(rng)
		for _, nh := range []int{1, 2, 4} {
			for _, nv := range []int{1, 2, 4} {
				// Truncate, dequantize, full inverse.
				var trunc Block
				for u := 0; u < nv; u++ {
					for v := 0; v < nh; v++ {
						trunc[u*BlockSize+v] = b[u*BlockSize+v]
					}
				}
				full := InverseQuantizedReference(&trunc, &q)
				// Center-aligned 2-tap downsample per axis.
				stepX, stepY := BlockSize/nh, BlockSize/nv
				InverseQuantizedScaledInto(&b, &q, nh, nv, out[:nh*nv])
				for i := 0; i < nv; i++ {
					y0 := stepY*i + stepY/2 - 1
					for j := 0; j < nh; j++ {
						x0 := stepX*j + stepX/2 - 1
						want := (full[y0*BlockSize+x0] + full[y0*BlockSize+x0+1] +
							full[(y0+1)*BlockSize+x0] + full[(y0+1)*BlockSize+x0+1]) / 4
						if diff := math.Abs(out[i*nh+j] - want); diff > 1e-6 {
							t.Fatalf("%dx%d sample (%d,%d): got %v, want truncated+downsampled %v (diff %g)",
								nh, nv, j, i, out[i*nh+j], want, diff)
						}
					}
				}
			}
		}
	}
}

// TestScaledKernelRejectsBadAxis pins the panic on invalid sizes.
func TestScaledKernelRejectsBadAxis(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid axis size")
		}
	}()
	var b Block
	var q QuantTable
	for i := range q {
		q[i] = 1
	}
	var out [9]float64
	InverseQuantizedScaledInto(&b, &q, 3, 3, out[:])
}

func BenchmarkInverseQuantizedScaled2x2(b *testing.B) {
	rng := rand.New(rand.NewSource(105))
	blk := randomCoeffBlock(rng)
	q := randomQuant(rng)
	var out [4]float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InverseQuantizedScaledInto(&blk, &q, 2, 2, out[:])
	}
}

func BenchmarkInverseQuantizedScaled4x4(b *testing.B) {
	rng := rand.New(rand.NewSource(106))
	blk := randomCoeffBlock(rng)
	q := randomQuant(rng)
	var out [16]float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InverseQuantizedScaledInto(&blk, &q, 4, 4, out[:])
	}
}
