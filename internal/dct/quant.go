package dct

import (
	"fmt"
	"math"
)

// QuantTable is an 8x8 quantization step-size table in row-major order.
// Step sizes are in [1, 255] as required by baseline JPEG.
type QuantTable [BlockLen]uint16

// Standard quantization tables from ISO/IEC 10918-1 Annex K, in row-major
// order. These correspond to quality 50 in the common libjpeg scaling.
var (
	// StdLuminanceQuant is the Annex K Table K.1 luminance table.
	StdLuminanceQuant = QuantTable{
		16, 11, 10, 16, 24, 40, 51, 61,
		12, 12, 14, 19, 26, 58, 60, 55,
		14, 13, 16, 24, 40, 57, 69, 56,
		14, 17, 22, 29, 51, 87, 80, 62,
		18, 22, 37, 56, 68, 109, 103, 77,
		24, 35, 55, 64, 81, 104, 113, 92,
		49, 64, 78, 87, 103, 121, 120, 101,
		72, 92, 95, 98, 112, 100, 103, 99,
	}

	// StdChrominanceQuant is the Annex K Table K.2 chrominance table.
	StdChrominanceQuant = QuantTable{
		17, 18, 24, 47, 99, 99, 99, 99,
		18, 21, 26, 66, 99, 99, 99, 99,
		24, 26, 56, 99, 99, 99, 99, 99,
		47, 66, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
		99, 99, 99, 99, 99, 99, 99, 99,
	}
)

// ScaleQuality returns the table scaled for a libjpeg-style quality setting
// in [1, 100]: quality 50 returns the table unchanged, higher qualities use
// smaller step sizes, lower qualities larger ones.
func (q *QuantTable) ScaleQuality(quality int) (QuantTable, error) {
	if quality < 1 || quality > 100 {
		return QuantTable{}, fmt.Errorf("dct: quality %d out of range [1,100]", quality)
	}
	var scale int
	if quality < 50 {
		scale = 5000 / quality
	} else {
		scale = 200 - quality*2
	}
	var out QuantTable
	for i, v := range q {
		s := (int(v)*scale + 50) / 100
		if s < 1 {
			s = 1
		}
		if s > 255 {
			s = 255
		}
		out[i] = uint16(s)
	}
	return out, nil
}

// Validate checks that all step sizes are legal for baseline JPEG.
func (q *QuantTable) Validate() error {
	for i, v := range q {
		if v < 1 || v > 255 {
			return fmt.Errorf("dct: quant step %d at index %d out of range [1,255]", v, i)
		}
	}
	return nil
}

// Transpose returns the table with rows and columns exchanged. Lossless
// coefficient-domain rotations (90-degree multiples involving a transpose)
// must transpose the quantization table alongside the coefficients, exactly
// as jpegtran does.
func (q *QuantTable) Transpose() QuantTable {
	var out QuantTable
	for r := 0; r < BlockSize; r++ {
		for c := 0; c < BlockSize; c++ {
			out[c*BlockSize+r] = q[r*BlockSize+c]
		}
	}
	return out
}

// Quantize divides each raw coefficient by the corresponding step size and
// rounds to the nearest integer, clamping to the JPEG coefficient range.
func Quantize(raw *FloatBlock, q *QuantTable) Block {
	var out Block
	for i := 0; i < BlockLen; i++ {
		v := int32(math.Round(raw[i] / float64(q[i])))
		if v < CoeffMin {
			v = CoeffMin
		} else if v > CoeffMax {
			v = CoeffMax
		}
		out[i] = v
	}
	return out
}

// Dequantize multiplies each quantized coefficient by its step size,
// recovering approximate raw coefficients.
func Dequantize(b *Block, q *QuantTable) FloatBlock {
	var out FloatBlock
	for i := 0; i < BlockLen; i++ {
		out[i] = float64(b[i]) * float64(q[i])
	}
	return out
}

// Requantize converts a coefficient block quantized with table from into the
// closest block under table to. This is the coefficient-domain core of JPEG
// recompression (paper §IV-C.2): the receiver reproduces the PSP's
// recompression on reconstructed coefficients using both tables.
func Requantize(b *Block, from, to *QuantTable) Block {
	var out Block
	for i := 0; i < BlockLen; i++ {
		raw := float64(b[i]) * float64(from[i])
		v := int32(math.Round(raw / float64(to[i])))
		if v < CoeffMin {
			v = CoeffMin
		} else if v > CoeffMax {
			v = CoeffMax
		}
		out[i] = v
	}
	return out
}
