package dct

import "math"

// cosTable[u][x] = cos((2x+1) * u * pi / 16), the separable DCT-II basis.
var cosTable [BlockSize][BlockSize]float64

// alpha[u] is the DCT normalization factor: 1/sqrt(2) for u=0, 1 otherwise.
var alpha [BlockSize]float64

func init() {
	for u := 0; u < BlockSize; u++ {
		for x := 0; x < BlockSize; x++ {
			cosTable[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
	alpha[0] = 1 / math.Sqrt2
	for u := 1; u < BlockSize; u++ {
		alpha[u] = 1
	}
}

// Forward computes the two-dimensional type-II DCT of an 8x8 spatial block
// using the AAN fast kernel (aan.go). The input samples are expected to be
// level-shifted (e.g. pixel-128 for 8-bit samples); the output is the raw
// (unquantized) coefficient block, equal to ForwardReference up to float
// rounding (~1e-12 over the 8-bit input domain).
func Forward(spatial *FloatBlock) FloatBlock {
	out := *spatial
	fdctAAN(&out)
	for i := 0; i < BlockLen; i++ {
		out[i] *= forwardScale[i]
	}
	return out
}

// Inverse computes the two-dimensional inverse DCT (type-III) using the AAN
// fast kernel, mapping a raw coefficient block back to level-shifted spatial
// samples. Equal to InverseReference up to float rounding.
func Inverse(coeff *FloatBlock) FloatBlock {
	var in FloatBlock
	for i := 0; i < BlockLen; i++ {
		in[i] = coeff[i] * inverseScale[i]
	}
	idctAAN(&in)
	return in
}

// ForwardReference is the naive separable O(8^3) DCT kept as the
// equivalence oracle for the fast kernel (rows, then columns, explicit
// basis dot products).
func ForwardReference(spatial *FloatBlock) FloatBlock {
	var tmp, out FloatBlock
	for r := 0; r < BlockSize; r++ {
		for u := 0; u < BlockSize; u++ {
			var sum float64
			for x := 0; x < BlockSize; x++ {
				sum += spatial[r*BlockSize+x] * cosTable[u][x]
			}
			tmp[r*BlockSize+u] = sum * alpha[u] / 2
		}
	}
	for c := 0; c < BlockSize; c++ {
		for v := 0; v < BlockSize; v++ {
			var sum float64
			for y := 0; y < BlockSize; y++ {
				sum += tmp[y*BlockSize+c] * cosTable[v][y]
			}
			out[v*BlockSize+c] = sum * alpha[v] / 2
		}
	}
	return out
}

// InverseReference is the naive separable inverse DCT kept as the
// equivalence oracle for the fast kernel.
func InverseReference(coeff *FloatBlock) FloatBlock {
	var tmp, out FloatBlock
	for c := 0; c < BlockSize; c++ {
		for y := 0; y < BlockSize; y++ {
			var sum float64
			for v := 0; v < BlockSize; v++ {
				sum += alpha[v] * coeff[v*BlockSize+c] * cosTable[v][y]
			}
			tmp[y*BlockSize+c] = sum / 2
		}
	}
	for r := 0; r < BlockSize; r++ {
		for x := 0; x < BlockSize; x++ {
			var sum float64
			for u := 0; u < BlockSize; u++ {
				sum += alpha[u] * tmp[r*BlockSize+u] * cosTable[u][x]
			}
			out[r*BlockSize+x] = sum / 2
		}
	}
	return out
}

// ForwardQuantized performs forward DCT followed by quantization with the
// given table, producing a JPEG-range coefficient block. It runs the AAN
// butterfly with the scale factors folded into the quantization step and is
// bit-identical to Quantize(ForwardReference(spatial), q) over the JPEG
// coefficient range (see quantizeFolded).
func ForwardQuantized(spatial *FloatBlock, q *QuantTable) Block {
	scaled := *spatial
	fdctAAN(&scaled)
	return quantizeFolded(&scaled, spatial, q)
}

// ForwardQuantizedReference is the pre-AAN quantizing path (reference DCT
// then Quantize), kept for equivalence testing.
func ForwardQuantizedReference(spatial *FloatBlock, q *QuantTable) Block {
	raw := ForwardReference(spatial)
	return Quantize(&raw, q)
}

// InverseQuantized dequantizes a coefficient block with the given table and
// applies the inverse DCT, producing level-shifted spatial samples. The
// dequantization step sizes are folded into the AAN input scaling.
func InverseQuantized(b *Block, q *QuantTable) FloatBlock {
	var in FloatBlock
	for i := 0; i < BlockLen; i++ {
		in[i] = float64(b[i]) * (float64(q[i]) * inverseScale[i])
	}
	idctAAN(&in)
	return in
}

// InverseQuantizedReference is the pre-AAN dequantizing path (Dequantize
// then reference inverse DCT), kept for equivalence testing.
func InverseQuantizedReference(b *Block, q *QuantTable) FloatBlock {
	raw := Dequantize(b, q)
	return InverseReference(&raw)
}
