package dct

import "math"

// cosTable[u][x] = cos((2x+1) * u * pi / 16), the separable DCT-II basis.
var cosTable [BlockSize][BlockSize]float64

// alpha[u] is the DCT normalization factor: 1/sqrt(2) for u=0, 1 otherwise.
var alpha [BlockSize]float64

func init() {
	for u := 0; u < BlockSize; u++ {
		for x := 0; x < BlockSize; x++ {
			cosTable[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
	alpha[0] = 1 / math.Sqrt2
	for u := 1; u < BlockSize; u++ {
		alpha[u] = 1
	}
}

// Forward computes the two-dimensional type-II DCT of an 8x8 spatial block.
// The input samples are expected to be level-shifted (e.g. pixel-128 for
// 8-bit samples); the output is the raw (unquantized) coefficient block.
func Forward(spatial *FloatBlock) FloatBlock {
	// Separable implementation: rows, then columns.
	var tmp, out FloatBlock
	for r := 0; r < BlockSize; r++ {
		for u := 0; u < BlockSize; u++ {
			var sum float64
			for x := 0; x < BlockSize; x++ {
				sum += spatial[r*BlockSize+x] * cosTable[u][x]
			}
			tmp[r*BlockSize+u] = sum * alpha[u] / 2
		}
	}
	for c := 0; c < BlockSize; c++ {
		for v := 0; v < BlockSize; v++ {
			var sum float64
			for y := 0; y < BlockSize; y++ {
				sum += tmp[y*BlockSize+c] * cosTable[v][y]
			}
			out[v*BlockSize+c] = sum * alpha[v] / 2
		}
	}
	return out
}

// Inverse computes the two-dimensional inverse DCT (type-III), mapping a raw
// coefficient block back to level-shifted spatial samples.
func Inverse(coeff *FloatBlock) FloatBlock {
	var tmp, out FloatBlock
	for c := 0; c < BlockSize; c++ {
		for y := 0; y < BlockSize; y++ {
			var sum float64
			for v := 0; v < BlockSize; v++ {
				sum += alpha[v] * coeff[v*BlockSize+c] * cosTable[v][y]
			}
			tmp[y*BlockSize+c] = sum / 2
		}
	}
	for r := 0; r < BlockSize; r++ {
		for x := 0; x < BlockSize; x++ {
			var sum float64
			for u := 0; u < BlockSize; u++ {
				sum += alpha[u] * tmp[r*BlockSize+u] * cosTable[u][x]
			}
			out[r*BlockSize+x] = sum / 2
		}
	}
	return out
}

// ForwardQuantized performs forward DCT followed by quantization with the
// given table, producing a JPEG-range coefficient block.
func ForwardQuantized(spatial *FloatBlock, q *QuantTable) Block {
	raw := Forward(spatial)
	return Quantize(&raw, q)
}

// InverseQuantized dequantizes a coefficient block with the given table and
// applies the inverse DCT, producing level-shifted spatial samples.
func InverseQuantized(b *Block, q *QuantTable) FloatBlock {
	raw := Dequantize(b, q)
	return Inverse(&raw)
}
