package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSpatial(rng *rand.Rand) FloatBlock {
	var b FloatBlock
	for i := range b {
		b[i] = float64(rng.Intn(256) - 128)
	}
	return b
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		in := randomSpatial(rng)
		coeff := Forward(&in)
		out := Inverse(&coeff)
		for i := range in {
			if math.Abs(in[i]-out[i]) > 1e-9 {
				t.Fatalf("trial %d: sample %d: got %v want %v", trial, i, out[i], in[i])
			}
		}
	}
}

func TestForwardDCIsScaledMean(t *testing.T) {
	var in FloatBlock
	for i := range in {
		in[i] = 100
	}
	coeff := Forward(&in)
	// DC of a constant block v is 8*v; all AC must be zero.
	if math.Abs(coeff[0]-800) > 1e-9 {
		t.Errorf("DC = %v, want 800", coeff[0])
	}
	for i := 1; i < BlockLen; i++ {
		if math.Abs(coeff[i]) > 1e-9 {
			t.Errorf("AC[%d] = %v, want 0", i, coeff[i])
		}
	}
}

func TestForwardLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomSpatial(rng)
	b := randomSpatial(rng)
	var sum FloatBlock
	for i := range sum {
		sum[i] = a[i] + b[i]
	}
	ca, cb, cs := Forward(&a), Forward(&b), Forward(&sum)
	for i := range cs {
		if math.Abs(cs[i]-(ca[i]+cb[i])) > 1e-9 {
			t.Fatalf("linearity violated at %d: %v vs %v", i, cs[i], ca[i]+cb[i])
		}
	}
}

func TestParseval(t *testing.T) {
	// The 2-D DCT-II with our normalization is orthonormal: energy in the
	// spatial domain equals energy in the coefficient domain.
	rng := rand.New(rand.NewSource(3))
	in := randomSpatial(rng)
	coeff := Forward(&in)
	var es, ec float64
	for i := range in {
		es += in[i] * in[i]
		ec += coeff[i] * coeff[i]
	}
	if math.Abs(es-ec) > 1e-6*es {
		t.Fatalf("energy mismatch: spatial %v coeff %v", es, ec)
	}
}

func TestZigZagRoundTrip(t *testing.T) {
	f := func(b Block) bool {
		zz := b.ToZigZag()
		back := FromZigZag(&zz)
		return back == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZigZagIsPermutation(t *testing.T) {
	seen := map[int]bool{}
	for _, v := range ZigZag {
		if v < 0 || v >= BlockLen || seen[v] {
			t.Fatalf("zigzag entry %d invalid or duplicated", v)
		}
		seen[v] = true
	}
	// Spot-check standard positions.
	if ZigZag[0] != 0 || ZigZag[1] != 1 || ZigZag[2] != 8 || ZigZag[63] != 63 {
		t.Fatalf("zigzag table does not match the JPEG standard")
	}
}

func TestQuantizeDequantizeBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := StdLuminanceQuant
	for trial := 0; trial < 20; trial++ {
		in := randomSpatial(rng)
		raw := Forward(&in)
		b := Quantize(&raw, &q)
		deq := Dequantize(&b, &q)
		for i := range raw {
			if math.Abs(raw[i]-deq[i]) > float64(q[i])/2+1e-9 {
				t.Fatalf("quantization error at %d exceeds half step: raw=%v deq=%v step=%d",
					i, raw[i], deq[i], q[i])
			}
		}
	}
}

func TestScaleQuality(t *testing.T) {
	tests := []struct {
		quality int
		wantErr bool
	}{
		{1, false}, {25, false}, {50, false}, {75, false}, {100, false},
		{0, true}, {101, true}, {-5, true},
	}
	for _, tt := range tests {
		got, err := StdLuminanceQuant.ScaleQuality(tt.quality)
		if (err != nil) != tt.wantErr {
			t.Errorf("quality %d: err = %v, wantErr %v", tt.quality, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if err := got.Validate(); err != nil {
			t.Errorf("quality %d: invalid table: %v", tt.quality, err)
		}
	}
	// Quality 50 must be the identity scaling.
	q50, _ := StdLuminanceQuant.ScaleQuality(50)
	if q50 != StdLuminanceQuant {
		t.Error("quality 50 should return the Annex K table unchanged")
	}
	// Higher quality means finer steps.
	q90, _ := StdLuminanceQuant.ScaleQuality(90)
	q10, _ := StdLuminanceQuant.ScaleQuality(10)
	for i := range q90 {
		if q90[i] > StdLuminanceQuant[i] {
			t.Fatalf("quality 90 step %d coarser than quality 50", i)
		}
		if q10[i] < StdLuminanceQuant[i] {
			t.Fatalf("quality 10 step %d finer than quality 50", i)
		}
	}
}

func TestRequantizeMatchesDecodeReencode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	from := StdLuminanceQuant
	to, _ := StdLuminanceQuant.ScaleQuality(30)
	for trial := 0; trial < 20; trial++ {
		in := randomSpatial(rng)
		b := ForwardQuantized(&in, &from)
		got := Requantize(&b, &from, &to)
		// Reference: dequantize then quantize.
		raw := Dequantize(&b, &from)
		want := Quantize(&raw, &to)
		if got != want {
			t.Fatalf("trial %d: requantize mismatch", trial)
		}
	}
}

// spatialFromBlock applies inverse quantized DCT and returns spatial floats.
func spatialOf(b *Block, q *QuantTable) FloatBlock {
	return InverseQuantized(b, q)
}

func TestCoefficientDomainFlipsMatchSpatial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := StdLuminanceQuant
	for trial := 0; trial < 10; trial++ {
		in := randomSpatial(rng)
		b := ForwardQuantized(&in, &q)
		sp := spatialOf(&b, &q)

		qT := q.Transpose()
		checks := []struct {
			name  string
			coeff Block
			quant *QuantTable
			index func(r, c int) int
		}{
			{"FlipH", b.FlipH(), &q, func(r, c int) int { return r*BlockSize + (BlockSize - 1 - c) }},
			{"FlipV", b.FlipV(), &q, func(r, c int) int { return (BlockSize-1-r)*BlockSize + c }},
			{"Rotate180", b.Rotate180(), &q, func(r, c int) int {
				return (BlockSize-1-r)*BlockSize + (BlockSize - 1 - c)
			}},
			{"Transpose", b.Transpose(), &qT, func(r, c int) int { return c*BlockSize + r }},
			{"Rotate90CW", b.Rotate90CW(), &qT, func(r, c int) int {
				// Output (r, c) comes from input (7-c, r) for clockwise rotation.
				return (BlockSize-1-c)*BlockSize + r
			}},
			{"Rotate90CCW", b.Rotate90CCW(), &qT, func(r, c int) int {
				return c*BlockSize + (BlockSize - 1 - r)
			}},
		}
		for _, chk := range checks {
			got := spatialOf(&chk.coeff, chk.quant)
			for r := 0; r < BlockSize; r++ {
				for c := 0; c < BlockSize; c++ {
					want := sp[chk.index(r, c)]
					if math.Abs(got[r*BlockSize+c]-want) > 1e-6 {
						t.Fatalf("%s: (%d,%d) = %v, want %v", chk.name, r, c, got[r*BlockSize+c], want)
					}
				}
			}
		}
	}
}

func TestClamp(t *testing.T) {
	b := Block{0: 5000, 1: -5000, 2: 17}
	n := b.Clamp()
	if n != 2 {
		t.Errorf("Clamp reported %d, want 2", n)
	}
	if b[0] != CoeffMax || b[1] != CoeffMin || b[2] != 17 {
		t.Errorf("Clamp produced %d,%d,%d", b[0], b[1], b[2])
	}
}

func BenchmarkForward(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	in := randomSpatial(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Forward(&in)
	}
}

func BenchmarkInverse(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	in := randomSpatial(rng)
	coeff := Forward(&in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Inverse(&coeff)
	}
}
