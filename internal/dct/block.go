// Package dct implements the 8x8 block mathematics underlying the JPEG
// baseline pipeline: the type-II discrete cosine transform and its inverse,
// zigzag ordering, and quantization with standard (Annex K) or quality-scaled
// tables.
//
// All of PuPPIeS operates on quantized DCT coefficient blocks; this package
// is the numeric substrate shared by the JPEG codec (internal/jpegc), the
// transform library (internal/transform) and the perturbation schemes
// (internal/core).
package dct

import "fmt"

// BlockSize is the side length of a JPEG coefficient block.
const BlockSize = 8

// BlockLen is the number of coefficients in one block.
const BlockLen = BlockSize * BlockSize

// Coefficient range mandated by the JPEG standard for 8-bit samples after
// level shift: quantized DCT coefficients occupy [-1024, 1023].
const (
	CoeffMin = -1024
	CoeffMax = 1023
	// CoeffRange is the size of the coefficient value range (2048). PuPPIeS
	// perturbation arithmetic is carried out modulo this value.
	CoeffRange = CoeffMax - CoeffMin + 1
)

// Block is one 8x8 coefficient (or spatial-sample) block in row-major order.
// Index [r*8+c] addresses row r, column c. In coefficient blocks, index 0 is
// the DC component and indices 1..63 are the AC components.
type Block [BlockLen]int32

// FloatBlock holds intermediate full-precision values during the forward and
// inverse transforms.
type FloatBlock [BlockLen]float64

// DC returns the DC (mean) coefficient of the block.
func (b *Block) DC() int32 { return b[0] }

// Equal reports whether two blocks hold identical coefficients.
func (b *Block) Equal(o *Block) bool { return *b == *o }

// String renders the block as an 8x8 grid, for debugging and test failure
// messages.
func (b *Block) String() string {
	s := ""
	for r := 0; r < BlockSize; r++ {
		for c := 0; c < BlockSize; c++ {
			s += fmt.Sprintf("%6d ", b[r*BlockSize+c])
		}
		s += "\n"
	}
	return s
}

// Clamp limits every coefficient to the JPEG coefficient range. It returns
// the number of coefficients that were out of range.
func (b *Block) Clamp() int {
	n := 0
	for i, v := range b {
		if v < CoeffMin {
			b[i] = CoeffMin
			n++
		} else if v > CoeffMax {
			b[i] = CoeffMax
			n++
		}
	}
	return n
}

// ZigZag maps a zigzag scan position to its row-major block index, as defined
// by the JPEG standard (ISO/IEC 10918-1, Figure 5).
var ZigZag = [BlockLen]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// UnZigZag is the inverse of ZigZag: row-major index -> zigzag position.
var UnZigZag [BlockLen]int

func init() {
	for zz, nat := range ZigZag {
		UnZigZag[nat] = zz
	}
}

// ToZigZag reorders a row-major block into zigzag scan order.
func (b *Block) ToZigZag() Block {
	var out Block
	for zz := 0; zz < BlockLen; zz++ {
		out[zz] = b[ZigZag[zz]]
	}
	return out
}

// FromZigZag reorders a zigzag-ordered block back to row-major order.
func FromZigZag(zz *Block) Block {
	var out Block
	for i := 0; i < BlockLen; i++ {
		out[ZigZag[i]] = zz[i]
	}
	return out
}

// Transpose returns the matrix transpose of the block. Transposition is the
// coefficient-domain equivalent of mirroring a spatial block across its main
// diagonal and is a building block for lossless 90-degree rotations.
func (b *Block) Transpose() Block {
	var out Block
	for r := 0; r < BlockSize; r++ {
		for c := 0; c < BlockSize; c++ {
			out[c*BlockSize+r] = b[r*BlockSize+c]
		}
	}
	return out
}

// FlipH returns the coefficient block corresponding to flipping the spatial
// block horizontally: AC coefficients with odd horizontal frequency change
// sign (property of the DCT-II basis).
func (b *Block) FlipH() Block {
	var out Block
	for r := 0; r < BlockSize; r++ {
		for c := 0; c < BlockSize; c++ {
			v := b[r*BlockSize+c]
			if c%2 == 1 {
				v = -v
			}
			out[r*BlockSize+c] = v
		}
	}
	return out
}

// FlipV returns the coefficient block corresponding to flipping the spatial
// block vertically: AC coefficients with odd vertical frequency change sign.
func (b *Block) FlipV() Block {
	var out Block
	for r := 0; r < BlockSize; r++ {
		for c := 0; c < BlockSize; c++ {
			v := b[r*BlockSize+c]
			if r%2 == 1 {
				v = -v
			}
			out[r*BlockSize+c] = v
		}
	}
	return out
}

// Rotate180 returns the coefficient block for a 180-degree spatial rotation
// (flip horizontally then vertically).
func (b *Block) Rotate180() Block {
	h := b.FlipH()
	return h.FlipV()
}

// Rotate90CW returns the coefficient block for a 90-degree clockwise spatial
// rotation: transpose then horizontal flip.
func (b *Block) Rotate90CW() Block {
	t := b.Transpose()
	return t.FlipH()
}

// Rotate90CCW returns the coefficient block for a 90-degree counter-clockwise
// spatial rotation: transpose then vertical flip.
func (b *Block) Rotate90CCW() Block {
	t := b.Transpose()
	return t.FlipV()
}
