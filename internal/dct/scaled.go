package dct

import "math"

// Reduced (scaled) inverse DCT kernels, the coefficient-domain half of
// libjpeg-style scaled decoding: a thumbnail consumer never needs the full
// 8x8 spatial block, so the kernel reads only the top-left sub-block of
// coefficients and produces the handful of output samples directly.
//
// Definition (per axis, n output samples from 8 coefficients): take the
// full 8-point inverse DCT of the lowest n coefficients (the rest treated
// as zero), then downsample 8 -> n with the codebase's center-aligned
// 2-tap bilinear kernel (the same alignment ScaleBilinear and
// ResizeBilinearInto use, so the reduced path lands on the full path's
// sampling grid). Both linear steps fold into one n x 8 sampling matrix:
//
//	out[i] = sum_u M_n[i][u] * coeff[u]
//	M_n[i][u] = alpha[u]/4 * (cos((2*x0+1)u*pi/16) + cos((2*x1+1)u*pi/16))
//
// where x0 = (8/n)*i + (8/n)/2 - 1 and x1 = x0 + 1 are the two
// full-resolution samples the center-aligned n/8 downsample averages
// (weight 1/2 each, hence the /4 = /2 IDCT normalization * 1/2 tap
// weight). n = 8 is the identity downsample: M_8 is the plain IDCT basis
// alpha[u]/2 * cos((2i+1)u*pi/16).
//
// The two axes are independent, so rectangular kernels come for free:
// a 4:2:2 chroma plane at a 1/4-scale target uses a 4x2 kernel (full
// horizontal reduction is impossible because the plane is already
// half-width). Quantization folds into the coefficient load exactly like
// the AAN path folds it into inverseScale: one multiply per coefficient
// read, no separate dequantize pass, and only nv*nh of the 64
// coefficients are ever touched.

// ScaleDen is the fixed denominator of reduced decode scales: kernels
// produce num/8-size output for num in ScaledNums.
const ScaleDen = 8

// ScaledNums are the valid per-axis output sizes of the reduced kernels.
// 8 is the full axis (no reduction), used when a subsampled chroma plane
// already sits at or below the target resolution on that axis.
var ScaledNums = [4]int{1, 2, 4, 8}

// scaledBasis[k] is M_n for n = 1<<k: scaledBasis[k][i][u] maps input
// frequency u to output sample i. Rows beyond n are unused. Built by a
// var initializer (not an init func) so it never races the cosTable init
// in transform.go — scaledBasisAt is deliberately self-contained.
var scaledBasis = func() (m [4][BlockSize][BlockSize]float64) {
	for k, n := range ScaledNums {
		for i := 0; i < n; i++ {
			for u := 0; u < BlockSize; u++ {
				m[k][i][u] = scaledBasisAt(n, i, u)
			}
		}
	}
	return m
}()

// scaledBasisAt computes M_n[i][u] from the definition. It is evaluated
// once into scaledBasis for the fast kernel and re-evaluated on the fly by
// the naive reference, with the identical expression so the two paths see
// bit-identical matrix entries. The cosines are spelled exactly like the
// cosTable initializer in transform.go, so the n=8 row IS the standard
// IDCT basis.
func scaledBasisAt(n, i, u int) float64 {
	a := 1.0
	if u == 0 {
		a = 1 / math.Sqrt2
	}
	cos := func(x int) float64 {
		return math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
	}
	if n == BlockSize {
		return a / 2 * cos(i)
	}
	step := BlockSize / n
	x0 := step*i + step/2 - 1
	return a / 4 * (cos(x0) + cos(x0+1))
}

// scaledLog2 maps a valid n in ScaledNums to its scaledBasis index, or -1.
func scaledLog2(n int) int {
	switch n {
	case 1:
		return 0
	case 2:
		return 1
	case 4:
		return 2
	case 8:
		return 3
	}
	return -1
}

// ValidScaledAxis reports whether n is a legal per-axis reduced size.
func ValidScaledAxis(n int) bool { return scaledLog2(n) >= 0 }

// InverseQuantizedScaledInto dequantizes the top-left nv x nh coefficients
// of b and writes the nv x nh reduced inverse DCT (row-major, level-
// shifted like InverseQuantized — callers add 128) into out, which must
// hold at least nv*nh samples. nh and nv must each be in ScaledNums.
//
// Bit-exact against InverseQuantizedScaledReference: the separable fast
// path factors the reference's quadruple loop without reassociating any
// floating-point sum (see the reference for the shared operation order).
func InverseQuantizedScaledInto(b *Block, q *QuantTable, nh, nv int, out []float64) {
	kh, kv := scaledLog2(nh), scaledLog2(nv)
	if kh < 0 || kv < 0 {
		panic("dct: invalid reduced IDCT axis size")
	}
	// The two square kernels the planner actually schedules (4x4 for
	// targets in (1/8, 1/2], 2x2 at or below 1/8) get unrolled bodies:
	// the generic triple loop spends more on indexing than arithmetic at
	// these sizes, and luma — the bulk of every image's blocks — is
	// always square. Rectangular chroma kernels stay on the generic path.
	switch {
	case nh == 4 && nv == 4:
		inverseScaled4x4(b, q, out)
		return
	case nh == 2 && nv == 2:
		inverseScaled2x2(b, q, out)
		return
	}
	mh, mv := &scaledBasis[kh], &scaledBasis[kv]
	// t[u][j] = sum_v (b*q)[u][v] * M_nh[j][v] — one row pass per kept
	// input row u; only the top-left nv x nh coefficients are read.
	var t [BlockLen]float64
	for u := 0; u < nv; u++ {
		row := u * BlockSize
		for j := 0; j < nh; j++ {
			var sum float64
			for v := 0; v < nh; v++ {
				sum += float64(b[row+v]) * float64(q[row+v]) * mh[j][v]
			}
			t[row+j] = sum
		}
	}
	// out[i][j] = sum_u M_nv[i][u] * t[u][j].
	for i := 0; i < nv; i++ {
		for j := 0; j < nh; j++ {
			var sum float64
			for u := 0; u < nv; u++ {
				sum += mv[i][u] * t[u*BlockSize+j]
			}
			out[i*nh+j] = sum
		}
	}
}

// inverseScaled4x4 is the unrolled nh = nv = 4 kernel. Each sum is
// written as the same left-associated ascending-index chain the generic
// path accumulates term by term, so the specialization stays bit-exact
// against InverseQuantizedScaledReference.
func inverseScaled4x4(b *Block, q *QuantTable, out []float64) {
	m := &scaledBasis[2]
	var t [16]float64
	for u := 0; u < 4; u++ {
		row := u * BlockSize
		d0 := float64(b[row]) * float64(q[row])
		d1 := float64(b[row+1]) * float64(q[row+1])
		d2 := float64(b[row+2]) * float64(q[row+2])
		d3 := float64(b[row+3]) * float64(q[row+3])
		for j := 0; j < 4; j++ {
			r := &m[j]
			t[u*4+j] = d0*r[0] + d1*r[1] + d2*r[2] + d3*r[3]
		}
	}
	for i := 0; i < 4; i++ {
		r := &m[i]
		m0, m1, m2, m3 := r[0], r[1], r[2], r[3]
		for j := 0; j < 4; j++ {
			out[i*4+j] = m0*t[j] + m1*t[4+j] + m2*t[8+j] + m3*t[12+j]
		}
	}
}

// inverseScaled2x2 is the unrolled nh = nv = 2 kernel; same operation
// order as the generic path, see inverseScaled4x4.
func inverseScaled2x2(b *Block, q *QuantTable, out []float64) {
	m := &scaledBasis[1]
	d00 := float64(b[0]) * float64(q[0])
	d01 := float64(b[1]) * float64(q[1])
	d10 := float64(b[BlockSize]) * float64(q[BlockSize])
	d11 := float64(b[BlockSize+1]) * float64(q[BlockSize+1])
	t00 := d00*m[0][0] + d01*m[0][1]
	t01 := d00*m[1][0] + d01*m[1][1]
	t10 := d10*m[0][0] + d11*m[0][1]
	t11 := d10*m[1][0] + d11*m[1][1]
	out[0] = m[0][0]*t00 + m[0][1]*t10
	out[1] = m[0][0]*t01 + m[0][1]*t11
	out[2] = m[1][0]*t00 + m[1][1]*t10
	out[3] = m[1][0]*t01 + m[1][1]*t11
}

// InverseQuantizedScaledReference is the naive form of the same
// mathematical definition, kept as the exactness oracle: it recomputes
// every basis entry from scaledBasisAt and evaluates, for each output
// sample, the column sum of row sums
//
//	out[i][j] = sum_u M_nv[i][u] * (sum_v (b*q)[u][v] * M_nh[j][v])
//
// with ascending u and v. The fast kernel computes the identical inner
// sums once per input row and combines them in the identical order, so
// the two agree bit for bit (not merely within rounding).
func InverseQuantizedScaledReference(b *Block, q *QuantTable, nh, nv int, out []float64) {
	if !ValidScaledAxis(nh) || !ValidScaledAxis(nv) {
		panic("dct: invalid reduced IDCT axis size")
	}
	for i := 0; i < nv; i++ {
		for j := 0; j < nh; j++ {
			var sum float64
			for u := 0; u < nv; u++ {
				var inner float64
				for v := 0; v < nh; v++ {
					inner += float64(b[u*BlockSize+v]) * float64(q[u*BlockSize+v]) * scaledBasisAt(nh, j, v)
				}
				sum += scaledBasisAt(nv, i, u) * inner
			}
			out[i*nh+j] = sum
		}
	}
}
