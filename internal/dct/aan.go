package dct

import "math"

// Fast scaled DCT/IDCT after Arai, Agui and Nakajima (AAN), the kernel
// behind libjpeg's float path. The 1-D butterfly computes the 8-point
// DCT-II up to a known per-frequency scale factor using 5 multiplications
// and 29 additions (vs 64 multiplications for the naive dot products), and
// the scale factors fold into quantization, so the quantizing entry points
// pay almost nothing to undo them.
//
// Scaling convention: with aan[0] = 1 and aan[k] = cos(k*pi/16)*sqrt(2),
// the 2-D butterfly output is S(r,c) * 8 * aan[r] * aan[c], where S is the
// orthonormal coefficient the reference implementation produces. The
// inverse butterfly expects S(r,c) * aan[r] * aan[c] / 8 and emits spatial
// samples directly.
//
// ForwardReference/InverseReference (transform.go) remain the equivalence
// oracle; TestFastForwardMatchesReference and friends pin the fast kernel
// to it, and quantizeFolded falls back to the reference basis for the rare
// coefficients that land within epsilon of a rounding boundary, making the
// quantized fast path bit-identical to the reference path by construction.

// AAN butterfly constants (cosines at multiples of pi/16).
const (
	aanC4     = 0.70710678118654752440 // cos(4*pi/16) = 1/sqrt(2)
	aanC2mC6  = 0.54119610014619698439 // cos(2*pi/16) - cos(6*pi/16)
	aanC2pC6  = 1.30656296487637652785 // cos(2*pi/16) + cos(6*pi/16)
	aanC6     = 0.38268343236508977173 // cos(6*pi/16)
	aanSqrt2  = 1.41421356237309504880 // sqrt(2)
	aan2C2    = 1.84775906502257351226 // 2*cos(2*pi/16)
	aanC2mC6i = 1.08239220029239396880 // cos(6*pi/16)*2 / ... (2*(c2-c6)) wait: see below
	aanC2pC6i = 2.61312592975275305571 // 2*(cos(2*pi/16)+cos(6*pi/16))
)

// forwardScale[i] converts butterfly output at row-major index i to the
// orthonormal coefficient: S = out * forwardScale. inverseScale[i] converts
// an orthonormal coefficient to the inverse butterfly's expected input.
var forwardScale, inverseScale [BlockLen]float64

func init() {
	var aan [BlockSize]float64
	aan[0] = 1
	for k := 1; k < BlockSize; k++ {
		aan[k] = math.Cos(float64(k)*math.Pi/16) * math.Sqrt2
	}
	for r := 0; r < BlockSize; r++ {
		for c := 0; c < BlockSize; c++ {
			forwardScale[r*BlockSize+c] = 1 / (8 * aan[r] * aan[c])
			inverseScale[r*BlockSize+c] = aan[r] * aan[c] / 8
		}
	}
}

// fdctAAN runs the 2-D AAN forward butterfly in place: rows, then columns.
// Output is the scaled coefficient block (orthonormal * 8*aan[r]*aan[c]).
func fdctAAN(d *FloatBlock) {
	// Row pass.
	for i := 0; i < BlockLen; i += BlockSize {
		tmp0 := d[i+0] + d[i+7]
		tmp7 := d[i+0] - d[i+7]
		tmp1 := d[i+1] + d[i+6]
		tmp6 := d[i+1] - d[i+6]
		tmp2 := d[i+2] + d[i+5]
		tmp5 := d[i+2] - d[i+5]
		tmp3 := d[i+3] + d[i+4]
		tmp4 := d[i+3] - d[i+4]

		// Even part.
		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2

		d[i+0] = tmp10 + tmp11
		d[i+4] = tmp10 - tmp11

		z1 := (tmp12 + tmp13) * aanC4
		d[i+2] = tmp13 + z1
		d[i+6] = tmp13 - z1

		// Odd part.
		tmp10 = tmp4 + tmp5
		tmp11 = tmp5 + tmp6
		tmp12 = tmp6 + tmp7

		z5 := (tmp10 - tmp12) * aanC6
		z2 := aanC2mC6*tmp10 + z5
		z4 := aanC2pC6*tmp12 + z5
		z3 := tmp11 * aanC4

		z11 := tmp7 + z3
		z13 := tmp7 - z3

		d[i+5] = z13 + z2
		d[i+3] = z13 - z2
		d[i+1] = z11 + z4
		d[i+7] = z11 - z4
	}

	// Column pass.
	for i := 0; i < BlockSize; i++ {
		tmp0 := d[i+0*8] + d[i+7*8]
		tmp7 := d[i+0*8] - d[i+7*8]
		tmp1 := d[i+1*8] + d[i+6*8]
		tmp6 := d[i+1*8] - d[i+6*8]
		tmp2 := d[i+2*8] + d[i+5*8]
		tmp5 := d[i+2*8] - d[i+5*8]
		tmp3 := d[i+3*8] + d[i+4*8]
		tmp4 := d[i+3*8] - d[i+4*8]

		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2

		d[i+0*8] = tmp10 + tmp11
		d[i+4*8] = tmp10 - tmp11

		z1 := (tmp12 + tmp13) * aanC4
		d[i+2*8] = tmp13 + z1
		d[i+6*8] = tmp13 - z1

		tmp10 = tmp4 + tmp5
		tmp11 = tmp5 + tmp6
		tmp12 = tmp6 + tmp7

		z5 := (tmp10 - tmp12) * aanC6
		z2 := aanC2mC6*tmp10 + z5
		z4 := aanC2pC6*tmp12 + z5
		z3 := tmp11 * aanC4

		z11 := tmp7 + z3
		z13 := tmp7 - z3

		d[i+5*8] = z13 + z2
		d[i+3*8] = z13 - z2
		d[i+1*8] = z11 + z4
		d[i+7*8] = z11 - z4
	}
}

// idctAAN runs the 2-D AAN inverse butterfly in place. Input is the
// pre-scaled coefficient block (orthonormal * aan[r]*aan[c]/8); output is
// the spatial block.
func idctAAN(d *FloatBlock) {
	// Column pass.
	for i := 0; i < BlockSize; i++ {
		// Even part.
		tmp10 := d[i+0*8] + d[i+4*8]
		tmp11 := d[i+0*8] - d[i+4*8]

		tmp13 := d[i+2*8] + d[i+6*8]
		tmp12 := (d[i+2*8]-d[i+6*8])*aanSqrt2 - tmp13

		tmp0 := tmp10 + tmp13
		tmp3 := tmp10 - tmp13
		tmp1 := tmp11 + tmp12
		tmp2 := tmp11 - tmp12

		// Odd part.
		z13 := d[i+5*8] + d[i+3*8]
		z10 := d[i+5*8] - d[i+3*8]
		z11 := d[i+1*8] + d[i+7*8]
		z12 := d[i+1*8] - d[i+7*8]

		tmp7 := z11 + z13
		tmp11 = (z11 - z13) * aanSqrt2

		z5 := (z10 + z12) * aan2C2
		tmp10 = aanC2mC6i*z12 - z5
		tmp12 = -aanC2pC6i*z10 + z5

		tmp6 := tmp12 - tmp7
		tmp5 := tmp11 - tmp6
		tmp4 := tmp10 + tmp5

		d[i+0*8] = tmp0 + tmp7
		d[i+7*8] = tmp0 - tmp7
		d[i+1*8] = tmp1 + tmp6
		d[i+6*8] = tmp1 - tmp6
		d[i+2*8] = tmp2 + tmp5
		d[i+5*8] = tmp2 - tmp5
		d[i+4*8] = tmp3 + tmp4
		d[i+3*8] = tmp3 - tmp4
	}

	// Row pass.
	for i := 0; i < BlockLen; i += BlockSize {
		tmp10 := d[i+0] + d[i+4]
		tmp11 := d[i+0] - d[i+4]

		tmp13 := d[i+2] + d[i+6]
		tmp12 := (d[i+2]-d[i+6])*aanSqrt2 - tmp13

		tmp0 := tmp10 + tmp13
		tmp3 := tmp10 - tmp13
		tmp1 := tmp11 + tmp12
		tmp2 := tmp11 - tmp12

		z13 := d[i+5] + d[i+3]
		z10 := d[i+5] - d[i+3]
		z11 := d[i+1] + d[i+7]
		z12 := d[i+1] - d[i+7]

		tmp7 := z11 + z13
		tmp11 = (z11 - z13) * aanSqrt2

		z5 := (z10 + z12) * aan2C2
		tmp10 = aanC2mC6i*z12 - z5
		tmp12 = -aanC2pC6i*z10 + z5

		tmp6 := tmp12 - tmp7
		tmp5 := tmp11 - tmp6
		tmp4 := tmp10 + tmp5

		d[i+0] = tmp0 + tmp7
		d[i+7] = tmp0 - tmp7
		d[i+1] = tmp1 + tmp6
		d[i+6] = tmp1 - tmp6
		d[i+2] = tmp2 + tmp5
		d[i+5] = tmp2 - tmp5
		d[i+4] = tmp3 + tmp4
		d[i+3] = tmp3 - tmp4
	}
}

// quantBoundaryEps is the distance from a round-half boundary below which
// quantizeFolded defers to the reference basis. The fast and reference
// paths compute the same mathematical value to ~1e-11 absolute error over
// the JPEG input domain, so any disagreement in rounding requires the
// scaled value to sit within that distance of a boundary — far inside this
// epsilon. Deferring there makes the fast quantized output bit-identical
// to Quantize(ForwardReference(...)) by construction.
const quantBoundaryEps = 1e-6

// refCoefficient recomputes coefficient (v,c) of the forward DCT with
// exactly the reference implementation's operation order, so the fallback
// rounds the identical float64 the reference path would round.
func refCoefficient(spatial *FloatBlock, v, c int) float64 {
	var sum float64
	for y := 0; y < BlockSize; y++ {
		var row float64
		for x := 0; x < BlockSize; x++ {
			row += spatial[y*BlockSize+x] * cosTable[c][x]
		}
		sum += row * alpha[c] / 2 * cosTable[v][y]
	}
	return sum * alpha[v] / 2
}

// quantizeFolded rounds scaled butterfly outputs through folded
// scale-and-quantize multipliers, deferring to the reference basis near
// rounding boundaries.
func quantizeFolded(scaled, spatial *FloatBlock, q *QuantTable) Block {
	var out Block
	for i := 0; i < BlockLen; i++ {
		p := scaled[i] * forwardScale[i] / float64(q[i])
		if frac := math.Abs(p) + 0.5; math.Abs(frac-math.Round(frac)) < quantBoundaryEps {
			p = refCoefficient(spatial, i/BlockSize, i%BlockSize) / float64(q[i])
		}
		v := int32(math.Round(p))
		if v < CoeffMin {
			v = CoeffMin
		} else if v > CoeffMax {
			v = CoeffMax
		}
		out[i] = v
	}
	return out
}
