package psp

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"

	"puppies/internal/jpegc"
	"puppies/internal/searchidx"
)

// Search route (GET/POST /v1/search, DESIGN.md §16): k-NN over the
// signature index. The PSP computes signatures from the coefficients it
// already decodes for upload validation — it learns nothing beyond the
// coarse luminance layout the signature encodes, and protected regions
// contribute only their DC-invariant features, so the search surface stays
// inside the semi-honest threat model.
//
// Query forms:
//
//	GET  /v1/search?id=X&k=10      by stored image (self included, rank 1)
//	POST /v1/search?k=10           by image bytes: either a raw image/jpeg
//	                               body or an UploadRequest JSON document
//	                               (the params, when present, shape the
//	                               signature exactly as they did at upload)
const (
	// maxSearchK bounds one query's result set.
	maxSearchK = 100

	// dedupDistance is the signature distance under which two images are
	// reported as near-duplicates — the upload hint's threshold and the
	// "hit" counter's definition. It matches the index's escalation
	// boundary: within it, matches are recompression/transform copies, far
	// below the inter-image distance floor.
	dedupDistance = 700
)

// SearchResponse is the /v1/search body. Partial is only ever set by the
// cluster gateway, when some shards could not be reached and the results
// merge is best-effort.
type SearchResponse struct {
	Results []searchidx.Result `json:"results"`
	Partial bool               `json:"partial,omitempty"`
}

// SearchStats is the search section of /v1/statz.
type SearchStats struct {
	// Indexed is the number of signatures in the index.
	Indexed int `json:"indexed"`
	// Queries counts /v1/search lookups served.
	Queries uint64 `json:"queries"`
	// Hits counts queries whose best answer was a near-duplicate (distance
	// within dedupDistance).
	Hits uint64 `json:"hits"`
}

// searchIdx returns the signature index, defaulting to a fresh in-memory
// one when the operator didn't provide a durable index.
func (s *Server) searchIdx() *searchidx.Index {
	s.searchOnce.Do(func() {
		if s.SearchIndex == nil {
			s.SearchIndex = searchidx.New()
		}
	})
	return s.SearchIndex
}

// searchStats snapshots the search counters for /v1/statz.
func (s *Server) searchStats() SearchStats {
	return SearchStats{
		Indexed: s.searchIdx().Len(),
		Queries: s.searchQueries.Load(),
		Hits:    s.searchHits.Load(),
	}
}

// indexImage registers an accepted upload's signature and reports the
// nearest previously stored image when it sits within dedupDistance — the
// upload path's near-duplicate hint. The lookup runs before the add so the
// fresh image can't answer for itself.
func (s *Server) indexImage(id string, sig searchidx.Signature) (searchidx.Result, bool) {
	ix := s.searchIdx()
	near := ix.Lookup(sig, 1)
	ix.Add(id, sig)
	if len(near) == 1 && near[0].Distance <= dedupDistance && near[0].ID != id {
		return near[0], true
	}
	return searchidx.Result{}, false
}

// signatureFor resolves a stored image ID to its signature: index fast
// path, then lazy backfill from the store for images that predate the index
// (or a lost snapshot). The backfilled signature is added so the next query
// skips the decode.
func (s *Server) signatureFor(w http.ResponseWriter, id string) (searchidx.Signature, bool) {
	ix := s.searchIdx()
	if sig, ok := ix.Get(id); ok {
		return sig, true
	}
	jpeg, params, ok, err := s.st().Get(id)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "store: %v", err)
		return searchidx.Signature{}, false
	}
	if !ok {
		httpError(w, http.StatusNotFound, "image %q not found", id)
		return searchidx.Signature{}, false
	}
	img, err := jpegc.Decode(bytes.NewReader(jpeg))
	if err != nil {
		writeComputeError(w, corruptStoredError(err))
		return searchidx.Signature{}, false
	}
	sig := searchidx.Compute(img, params)
	img.Recycle()
	ix.Add(id, sig)
	return sig, true
}

// signatureFromBody computes the query signature from a POST body: a raw
// image/jpeg body, or an UploadRequest JSON document when the request says
// application/json.
func (s *Server) signatureFromBody(w http.ResponseWriter, r *http.Request) (searchidx.Signature, bool) {
	limit := s.maxUpload()
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return searchidx.Signature{}, false
	}
	if int64(len(body)) > limit {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", limit)
		return searchidx.Signature{}, false
	}
	image, params := body, []byte(nil)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req UploadRequest
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "decode request: %v", err)
			return searchidx.Signature{}, false
		}
		image, params = req.Image, req.Params
	}
	if len(image) == 0 {
		httpError(w, http.StatusBadRequest, "empty image")
		return searchidx.Signature{}, false
	}
	img, err := jpegc.Decode(bytes.NewReader(image))
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "not a decodable baseline JPEG: %v", err)
		return searchidx.Signature{}, false
	}
	sig := searchidx.Compute(img, params)
	img.Recycle()
	return sig, true
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > maxSearchK {
			httpError(w, http.StatusBadRequest, "k must be in [1,%d], got %q", maxSearchK, raw)
			return
		}
		k = v
	}
	var (
		sig searchidx.Signature
		ok  bool
	)
	switch {
	case r.URL.Query().Get("id") != "":
		sig, ok = s.signatureFor(w, r.URL.Query().Get("id"))
	case r.Method == http.MethodPost:
		sig, ok = s.signatureFromBody(w, r)
	default:
		httpError(w, http.StatusBadRequest, "search requires ?id= or a POST image body")
		return
	}
	if !ok {
		return
	}
	res := s.searchIdx().Lookup(sig, k)
	s.searchQueries.Add(1)
	if len(res) > 0 && res[0].Distance <= dedupDistance {
		s.searchHits.Add(1)
	}
	if res == nil {
		res = []searchidx.Result{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(SearchResponse{Results: res})
}
