package psp

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// blockingStore gates Get so tests can hold a request (and its admission
// unit) in flight for as long as they need.
type blockingStore struct {
	Store
	gate chan struct{}
}

func (b *blockingStore) Get(id string) ([]byte, []byte, bool, error) {
	<-b.gate
	return b.Store.Get(id)
}

// overloadedServer builds a capacity-1 PSP with one stored image and a gate
// that blocks GETs, plus an httptest server over its handler.
func overloadedServer(t *testing.T, wait time.Duration, queue int) (*Server, *blockingStore, *httptest.Server) {
	t.Helper()
	bs := &blockingStore{Store: NewMemStore(), gate: make(chan struct{})}
	storeImage(t, bs.Store, "img", testJPEG(t, 64, 48))
	s := NewServerWith(bs)
	s.MaxInflight = 1
	s.AdmitWait = wait
	s.AdmitQueue = queue
	s.AdmitRetryAfter = 100 * time.Millisecond
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, bs, ts
}

// holdInflight starts a GET that parks inside the gated store, occupying the
// whole admission capacity, and returns a done channel for its completion.
func holdInflight(t *testing.T, s *Server, ts *httptest.Server) chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/images/img")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = errors.New("holder got " + resp.Status)
			}
		}
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.admission().Stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	return done
}

func TestOverloadShedTimeout(t *testing.T) {
	s, bs, ts := overloadedServer(t, 30*time.Millisecond, 8)
	done := holdInflight(t, s, ts)

	// Second request queues, exceeds the wait bound, and is shed crisply.
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/images/img")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("shed took %v, want ~30ms", d)
	}
	if ra := parseRetryAfter(resp.Header); ra <= 0 {
		t.Fatalf("Retry-After %q did not parse to a positive duration", resp.Header.Get("Retry-After"))
	}
	if cls := resp.Header.Get(errorClassHeader); cls != errorClassOverloaded {
		t.Fatalf("error class %q, want %q", cls, errorClassOverloaded)
	}
	if st := s.admission().Stats(); st.ShedTimeout != 1 {
		t.Fatalf("stats %+v, want ShedTimeout=1", st)
	}

	close(bs.gate)
	if err := <-done; err != nil {
		t.Fatalf("holder failed: %v", err)
	}
}

func TestOverloadClientTypesShedAsOverloaded(t *testing.T) {
	s, bs, ts := overloadedServer(t, 20*time.Millisecond, 8)
	done := holdInflight(t, s, ts)
	defer func() { close(bs.gate); <-done }()

	c := &Client{BaseURL: ts.URL, MaxRetries: -1}
	_, err := c.FetchImage(context.Background(), "img")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if !errors.Is(err, ErrRetryable) {
		t.Fatalf("err = %v, must also be ErrRetryable", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.RetryAfter <= 0 {
		t.Fatalf("shed response must carry Retry-After, got %v", err)
	}
	if st := c.Stats(); st.Overloaded != 1 {
		t.Fatalf("client stats %+v, want Overloaded=1", st)
	}
}

func TestOverloadShedQueueFull(t *testing.T) {
	s, bs, ts := overloadedServer(t, 5*time.Second, 1)
	done := holdInflight(t, s, ts)

	// One request fills the queue...
	queued := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/images/img")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = errors.New("queued got " + resp.Status)
			}
		}
		queued <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.admission().Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// ...so the next is rejected instantly, well before any wait bound.
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/images/img")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("queue-full shed took %v, want instant", d)
	}
	if st := s.admission().Stats(); st.ShedQueueFull != 1 {
		t.Fatalf("stats %+v, want ShedQueueFull=1", st)
	}

	close(bs.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
}

func TestOverloadShedUnderDrain(t *testing.T) {
	s, bs, ts := overloadedServer(t, 5*time.Second, 8)
	done := holdInflight(t, s, ts)

	s.SetDraining(true)
	// Draining: a request that would queue is shed immediately instead of
	// building a backlog the shutdown is about to abandon.
	resp, err := http.Get(ts.URL + "/v1/images/img")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 while draining", resp.StatusCode)
	}
	if st := s.admission().Stats(); st.ShedDraining != 1 {
		t.Fatalf("stats %+v, want ShedDraining=1", st)
	}

	close(bs.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Free capacity still admits while draining: in-flight work finished, a
	// cheap request on the fast path keeps being served.
	resp, err = http.Get(ts.URL + "/v1/images/img")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast-path status %d while draining, want 200", resp.StatusCode)
	}
}

func TestBatchShedsPerItem(t *testing.T) {
	s, bs, ts := overloadedServer(t, 20*time.Millisecond, 8)
	done := holdInflight(t, s, ts)
	defer func() { close(bs.gate); <-done }()

	// The batch envelope is admitted (weight 0), but every item needs its
	// own unit: with capacity fully held, each item sheds into its own
	// result slot — the envelope still answers 200.
	c := &Client{BaseURL: ts.URL, MaxRetries: -1}
	jpeg := testJPEG(t, 64, 48)
	results, err := c.UploadBatch(context.Background(), []BatchUpload{
		{Image: jpeg}, {Image: jpeg},
	})
	if err != nil {
		t.Fatalf("envelope must not fail on per-item sheds: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if res.Status != http.StatusTooManyRequests {
			t.Fatalf("item %d: status %d (%q), want per-item 429", i, res.Status, res.Error)
		}
		if res.ID != "" {
			t.Fatalf("item %d: shed item must not carry an ID", i)
		}
	}
}

func TestClientHonorsRetryAfterExactly(t *testing.T) {
	// When the server names a delay, the client uses it verbatim — no
	// jitter, no exponential floor — because the server knows when capacity
	// frees up.
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "0.123")
			w.Header().Set(errorClassHeader, errorClassOverloaded)
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ids":[]}`))
	}))
	defer ts.Close()

	var waits []time.Duration
	c := &Client{
		BaseURL: ts.URL,
		sleep: func(ctx context.Context, d time.Duration) error {
			waits = append(waits, d)
			return nil
		},
	}
	if _, err := c.ListImages(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 1 || waits[0] != 123*time.Millisecond {
		t.Fatalf("waits = %v, want exactly [123ms]", waits)
	}
	st := c.Stats()
	if st.Attempts != 2 || st.Retries != 1 || st.Overloaded != 1 || st.RetryAfterHonored != 1 || st.Exhausted != 0 {
		t.Fatalf("client stats %+v", st)
	}
}

func TestStatzExposesAdmissionAndLatency(t *testing.T) {
	s := NewServer()
	storeImage(t, s.st(), "img", testJPEG(t, 64, 48))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/images/img")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statz StatzResponse
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	if statz.Admission.Capacity <= 0 {
		t.Fatalf("admission capacity %d, want > 0", statz.Admission.Capacity)
	}
	if statz.Admission.Admitted < 3 {
		t.Fatalf("admitted %d, want >= 3", statz.Admission.Admitted)
	}
	lat, ok := statz.LatencyNs[routeGet]
	if !ok {
		t.Fatalf("latencyNs missing %q: %v", routeGet, statz.LatencyNs)
	}
	if lat.Count != 3 || lat.P99Ns <= 0 {
		t.Fatalf("get latency %+v", lat)
	}
	if _, ok := statz.LatencyNs[routeUpload]; ok {
		t.Fatal("untouched route must not report a histogram")
	}
}

func TestRetryAfterHeaderIsFractionalSeconds(t *testing.T) {
	rec := httptest.NewRecorder()
	writeOverloaded(rec, 250*time.Millisecond, 0)
	got := rec.Header().Get("Retry-After")
	f, err := strconv.ParseFloat(got, 64)
	if err != nil || f != 0.25 {
		t.Fatalf("Retry-After = %q, want 0.250", got)
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("code %d", rec.Code)
	}
}
