package psp

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"puppies/internal/jpegc"
	"puppies/internal/parallel"
	"puppies/internal/transform"
)

func scaledFixtureJPEG(t *testing.T) []byte {
	t.Helper()
	img, err := jpegc.FromPlanar(testPlanar(200, 120), jpegc.Options{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func serveTransformed(t *testing.T, srv *Server, id string, spec transform.Spec) ([]byte, string) {
	t.Helper()
	raw, _ := spec.MarshalJSON()
	req := httptest.NewRequest("GET", "/v1/images/"+id+"/transformed?spec="+string(raw), nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	return rec.Body.Bytes(), rec.Header().Get("ETag")
}

// expectedBytes encodes a coefficient image the way /transformed does.
func expectedBytes(t *testing.T, out *jpegc.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := out.Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTransformedUsesPlanner pins the serve-path routing: an unprotected
// image's thumbnail comes from the scaled-decode planner, and flipping
// DisableScaledDecode produces the full path's bytes instead.
func TestTransformedUsesPlanner(t *testing.T) {
	stored := scaledFixtureJPEG(t)
	img, err := jpegc.Decode(bytes.NewReader(stored))
	if err != nil {
		t.Fatal(err)
	}
	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.25, FactorY: 0.25}
	planned, err := transform.ApplyPlanned(img, spec)
	if err != nil {
		t.Fatal(err)
	}
	full, err := transform.Apply(img, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantPlanned, wantFull := expectedBytes(t, planned), expectedBytes(t, full)
	if bytes.Equal(wantPlanned, wantFull) {
		t.Fatal("fixture too smooth: planned and full paths encode identically, test proves nothing")
	}

	srv := NewServer()
	if _, err := srv.st().Put("img", stored, nil, ""); err != nil {
		t.Fatal(err)
	}
	got, _ := serveTransformed(t, srv, "img", spec)
	if !bytes.Equal(got, wantPlanned) {
		t.Fatal("unprotected /transformed did not serve the planner path's bytes")
	}

	off := NewServer()
	off.DisableScaledDecode = true
	if _, err := off.st().Put("img", stored, nil, ""); err != nil {
		t.Fatal(err)
	}
	got, _ = serveTransformed(t, off, "img", spec)
	if !bytes.Equal(got, wantFull) {
		t.Fatal("DisableScaledDecode did not serve the full path's bytes")
	}
}

// TestTransformedProtectedKeepsFullPath pins the recovery-safety rule: an
// image stored with public parameters is served from the full path, byte
// for byte, no matter what the planner would prefer.
func TestTransformedProtectedKeepsFullPath(t *testing.T) {
	stored := scaledFixtureJPEG(t)
	img, err := jpegc.Decode(bytes.NewReader(stored))
	if err != nil {
		t.Fatal(err)
	}
	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.25, FactorY: 0.25}
	full, err := transform.Apply(img, spec)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	if _, err := srv.st().Put("prot", stored, []byte(`{"v":1}`), ""); err != nil {
		t.Fatal(err)
	}
	got, _ := serveTransformed(t, srv, "prot", spec)
	if !bytes.Equal(got, expectedBytes(t, full)) {
		t.Fatal("protected /transformed did not serve the full path's bytes")
	}
}

// TestTransformedScaledDeterministic re-serves the same thumbnail spec from
// fresh servers at several worker counts and requires identical bytes and
// ETags — the cache contract (same spec → same bytes) for the fast path.
func TestTransformedScaledDeterministic(t *testing.T) {
	stored := scaledFixtureJPEG(t)
	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.125, FactorY: 0.125}
	var baseBody []byte
	var baseTag string
	for _, workers := range []int{1, 2, 8} {
		prev := parallel.SetWorkers(workers)
		srv := NewServer()
		if _, err := srv.st().Put("img", stored, nil, ""); err != nil {
			parallel.SetWorkers(prev)
			t.Fatal(err)
		}
		body, etag := serveTransformed(t, srv, "img", spec)
		parallel.SetWorkers(prev)
		if baseBody == nil {
			baseBody, baseTag = append([]byte(nil), body...), etag
			continue
		}
		if etag != baseTag {
			t.Fatalf("workers=%d: ETag %q != %q", workers, etag, baseTag)
		}
		if !bytes.Equal(body, baseBody) {
			t.Fatalf("workers=%d: served bytes differ", workers)
		}
	}
}
