package psp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// Sentinel errors callers can branch on with errors.Is. They classify every
// failure the client can surface:
//
//   - ErrRetryable: transient — the request may succeed if repeated (5xx,
//     429, connection reset, timeout). The client already retried
//     idempotent requests internally; seeing this means retries were
//     exhausted.
//   - ErrNotFound: the PSP has no image under that ID (HTTP 404). Terminal.
//   - ErrCorrupt: the PSP answered 200 but the payload failed to decode or
//     failed an integrity check. Re-fetching the same route is unlikely to
//     help; the /pixels fallback might (see FetchTransformedGraceful).
//   - ErrTooLarge: a request or response exceeded the configured byte
//     limit (HTTP 413 on upload, client-side cap on download). Terminal.
//   - ErrOverloaded: the server shed the request under admission control
//     (HTTP 429). Always also ErrRetryable — the server is healthy, just
//     saturated — and always carries a Retry-After the client honors
//     exactly.
var (
	ErrRetryable  = errors.New("psp: retryable failure")
	ErrNotFound   = errors.New("psp: image not found")
	ErrCorrupt    = errors.New("psp: corrupt payload")
	ErrTooLarge   = errors.New("psp: payload too large")
	ErrOverloaded = errors.New("psp: server overloaded")
)

// errorClassHeader lets the server refine how clients classify a status
// code: a 500 carrying class "corrupt" means the *stored data* is damaged,
// which no amount of retrying the same route will fix.
const (
	errorClassHeader     = "X-PSP-Error-Class"
	errorClassCorrupt    = "corrupt"
	errorClassOverloaded = "overloaded"
)

// Exported aliases of the error-class protocol, used by the cluster gateway
// to pass shard classifications through to clients unchanged.
const (
	ErrorClassHeader     = errorClassHeader
	ErrorClassCorrupt    = errorClassCorrupt
	ErrorClassOverloaded = errorClassOverloaded
)

// ParseRetryAfter exposes Retry-After parsing (delta seconds, fractional
// accepted, or HTTP date) for the cluster gateway's passthrough logic.
func ParseRetryAfter(h http.Header) time.Duration {
	return parseRetryAfter(h)
}

// StatusError reports a non-2xx HTTP response from the PSP.
type StatusError struct {
	Method string
	Path   string
	Code   int
	Body   string
	// RetryAfter is the parsed Retry-After header, zero if absent.
	RetryAfter time.Duration
	// Class is the server's X-PSP-Error-Class refinement, empty if absent.
	Class string
}

func (e *StatusError) Error() string {
	msg := fmt.Sprintf("psp: %s %s: HTTP %d", e.Method, e.Path, e.Code)
	if e.Body != "" {
		msg += ": " + e.Body
	}
	return msg
}

// Is maps HTTP status classes onto the package sentinels so that
// errors.Is(err, ErrRetryable) etc. work on status errors. A 5xx tagged
// with the corrupt class is ErrCorrupt and not retryable: the server is
// healthy, its stored copy of the image is not.
func (e *StatusError) Is(target error) bool {
	switch target {
	case ErrRetryable:
		if e.Class == errorClassCorrupt {
			return false
		}
		return e.Code >= 500 || e.Code == http.StatusTooManyRequests
	case ErrNotFound:
		return e.Code == http.StatusNotFound
	case ErrCorrupt:
		return e.Class == errorClassCorrupt
	case ErrTooLarge:
		return e.Code == http.StatusRequestEntityTooLarge
	case ErrOverloaded:
		return e.Code == http.StatusTooManyRequests
	}
	return false
}

// retryableError tags a transport-level failure (reset, timeout, EOF) as
// retryable while preserving the original error chain.
type retryableError struct{ err error }

func (e *retryableError) Error() string        { return e.err.Error() }
func (e *retryableError) Unwrap() error        { return e.err }
func (e *retryableError) Is(target error) bool { return target == ErrRetryable }

// corruptError tags a decode/integrity failure on a 200 response.
type corruptError struct{ err error }

func (e *corruptError) Error() string        { return "psp: corrupt payload: " + e.err.Error() }
func (e *corruptError) Unwrap() error        { return e.err }
func (e *corruptError) Is(target error) bool { return target == ErrCorrupt }

// classifyTransport wraps transport errors that are worth retrying:
// timeouts, connection resets/refusals, and short reads. Context
// cancellation from the caller is never retryable.
func classifyTransport(err error, attemptTimedOut bool) error {
	if err == nil {
		return nil
	}
	if attemptTimedOut {
		// The per-attempt deadline fired, not the caller's context.
		return &retryableError{err}
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) {
		return &retryableError{err}
	}
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return &retryableError{err}
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return &retryableError{err}
	}
	return err
}

// parseRetryAfter reads a Retry-After header as delta seconds (fractional
// accepted) or an HTTP date. Returns zero if absent or unparseable.
func parseRetryAfter(h http.Header) time.Duration {
	raw := strings.TrimSpace(h.Get("Retry-After"))
	if raw == "" {
		return 0
	}
	if secs, err := strconv.ParseFloat(raw, 64); err == nil && secs >= 0 {
		return time.Duration(secs * float64(time.Second))
	}
	if t, err := http.ParseTime(raw); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
