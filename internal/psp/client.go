package psp

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"puppies/internal/core"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/servecache"
	"puppies/internal/transform"
)

// CachedResponse is one validated GET response held by a client-side
// validator cache: the body plus the strong ETag the server issued for it.
type CachedResponse struct {
	ETag string
	Body []byte
}

// NewValidatorCache returns a response cache suitable for Client.RespCache,
// budgeted to maxBytes of body bytes.
func NewValidatorCache(maxBytes int64) *servecache.Cache[CachedResponse] {
	return servecache.New[CachedResponse](maxBytes)
}

// Default client resilience knobs; override per Client field.
const (
	defaultRequestTimeout = 30 * time.Second
	defaultMaxRetries     = 3
	defaultBackoffBase    = 100 * time.Millisecond
	defaultBackoffMax     = 5 * time.Second
)

// Client talks to a PSP over HTTP. Both senders (upload) and receivers
// (download, fetch transformed versions) use it.
//
// Every method takes a context.Context that bounds the whole call including
// retries. Each individual HTTP attempt additionally gets RequestTimeout.
// Idempotent requests (all GETs, and Upload via a client-generated
// Idempotency-Key) are retried on transient failure with exponential
// backoff plus jitter, honoring Retry-After. Failures are classified via
// the package sentinels (ErrRetryable, ErrNotFound, ErrCorrupt,
// ErrTooLarge).
type Client struct {
	// BaseURL is the PSP root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	// RequestTimeout bounds each HTTP attempt (not the whole retried
	// call). Zero means defaultRequestTimeout; negative disables it.
	RequestTimeout time.Duration
	// MaxRetries is the number of extra attempts after the first.
	// Zero means defaultMaxRetries; negative disables retries.
	MaxRetries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts. Zero values take the package defaults.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxResponseBytes caps how much of a response body the client will
	// read; a larger body yields ErrTooLarge rather than silent
	// truncation. Zero means DefaultMaxUpload.
	MaxResponseBytes int64

	// RespCache, when non-nil, enables conditional GETs: the client
	// remembers (ETag, body) per URL, revalidates with If-None-Match, and
	// serves 304 answers from the cache without re-downloading the body.
	// PSP image representations are immutable, so revalidation virtually
	// always short-circuits. Use NewValidatorCache to build one.
	RespCache *servecache.Cache[CachedResponse]

	// sleep is stubbed in tests to make backoff instantaneous.
	sleep func(ctx context.Context, d time.Duration) error

	rngOnce sync.Once
	rngMu   sync.Mutex
	rng     *mrand.Rand

	// Lifetime counters behind Stats(); load harnesses read them to build
	// their error taxonomy (how often the client was shed, how hard it had
	// to retry) without scraping logs.
	statAttempts          atomic.Uint64
	statRetries           atomic.Uint64
	statOverloaded        atomic.Uint64
	statRetryAfterHonored atomic.Uint64
	statExhausted         atomic.Uint64
}

// ClientStats is a snapshot of the client's lifetime resilience counters.
type ClientStats struct {
	// Attempts counts individual HTTP attempts, including retries.
	Attempts uint64 `json:"attempts"`
	// Retries counts attempts beyond the first per logical request.
	Retries uint64 `json:"retries"`
	// Overloaded counts HTTP 429 responses (server-side admission sheds).
	Overloaded uint64 `json:"overloaded"`
	// RetryAfterHonored counts backoff waits that used the server's exact
	// Retry-After value instead of the jittered exponential schedule.
	RetryAfterHonored uint64 `json:"retryAfterHonored"`
	// Exhausted counts logical requests that failed after all retries.
	Exhausted uint64 `json:"exhausted"`
}

// Stats snapshots the client's resilience counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Attempts:          c.statAttempts.Load(),
		Retries:           c.statRetries.Load(),
		Overloaded:        c.statOverloaded.Load(),
		RetryAfterHonored: c.statRetryAfterHonored.Load(),
		Exhausted:         c.statExhausted.Load(),
	}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) requestTimeout() time.Duration {
	switch {
	case c.RequestTimeout > 0:
		return c.RequestTimeout
	case c.RequestTimeout < 0:
		return 0
	}
	return defaultRequestTimeout
}

func (c *Client) maxRetries() int {
	switch {
	case c.MaxRetries > 0:
		return c.MaxRetries
	case c.MaxRetries < 0:
		return 0
	}
	return defaultMaxRetries
}

func (c *Client) maxResponseBytes() int64 {
	if c.MaxResponseBytes > 0 {
		return c.MaxResponseBytes
	}
	return DefaultMaxUpload
}

// backoff returns the jittered exponential delay before attempt n (n >= 1).
func (c *Client) backoff(n int) time.Duration {
	base := c.BackoffBase
	if base <= 0 {
		base = defaultBackoffBase
	}
	max := c.BackoffMax
	if max <= 0 {
		max = defaultBackoffMax
	}
	d := base << (n - 1)
	if d > max || d <= 0 {
		d = max
	}
	c.rngOnce.Do(func() {
		var seed [8]byte
		_, _ = rand.Read(seed[:])
		var s int64
		for _, b := range seed {
			s = s<<8 | int64(b)
		}
		c.rng = mrand.New(mrand.NewSource(s))
	})
	c.rngMu.Lock()
	f := 0.5 + 0.5*c.rng.Float64() // full range [d/2, d]
	c.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

func (c *Client) sleepCtx(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// doOnce performs a single HTTP attempt and fully reads the body, reading
// one byte past MaxResponseBytes so oversized responses surface as
// ErrTooLarge instead of silently truncated bytes.
func (c *Client) doOnce(ctx context.Context, method, rawURL string, body []byte, header http.Header) ([]byte, error) {
	c.statAttempts.Add(1)
	attemptCtx := ctx
	var cancel context.CancelFunc
	if t := c.requestTimeout(); t > 0 {
		attemptCtx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(attemptCtx, method, rawURL, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	// Conditional GET: revalidate a cached body instead of re-downloading.
	var cached CachedResponse
	var haveCached bool
	if method == http.MethodGet && c.RespCache != nil {
		if cached, haveCached = c.RespCache.Get(rawURL); haveCached {
			req.Header.Set("If-None-Match", cached.ETag)
		}
	}
	resp, err := c.http().Do(req)
	if err != nil {
		timedOut := attemptCtx.Err() != nil && ctx.Err() == nil
		return nil, classifyTransport(err, timedOut)
	}
	defer resp.Body.Close()
	limit := c.maxResponseBytes()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		timedOut := attemptCtx.Err() != nil && ctx.Err() == nil
		return nil, classifyTransport(err, timedOut)
	}
	if int64(len(respBody)) > limit {
		return nil, fmt.Errorf("%w: response exceeds %d bytes", ErrTooLarge, limit)
	}
	if resp.StatusCode == http.StatusNotModified && haveCached {
		return cached.Body, nil
	}
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusTooManyRequests {
			c.statOverloaded.Add(1)
		}
		return nil, &StatusError{
			Method:     method,
			Path:       req.URL.Path,
			Code:       resp.StatusCode,
			Body:       string(bytes.TrimSpace(respBody)),
			RetryAfter: parseRetryAfter(resp.Header),
			Class:      resp.Header.Get(errorClassHeader),
		}
	}
	if method == http.MethodGet && c.RespCache != nil {
		if et := resp.Header.Get("ETag"); et != "" {
			c.RespCache.Add(rawURL, CachedResponse{ETag: et, Body: respBody},
				int64(len(respBody)+len(et)+len(rawURL)))
		}
	}
	return respBody, nil
}

// do runs an idempotent request with retries. body may be nil for GETs; it
// is replayed from scratch on every attempt.
func (c *Client) do(ctx context.Context, method, rawURL string, body []byte, header http.Header) ([]byte, error) {
	attempts := c.maxRetries() + 1
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.statRetries.Add(1)
			// A server-named Retry-After is honored exactly: the server
			// knows when capacity frees up, so adding jitter on top would
			// only delay the retry past the window it was promised.
			wait := c.backoff(attempt - 1)
			var se *StatusError
			if errors.As(lastErr, &se) && se.RetryAfter > 0 {
				wait = se.RetryAfter
				c.statRetryAfterHonored.Add(1)
			}
			if err := c.sleepCtx(ctx, wait); err != nil {
				c.statExhausted.Add(1)
				return nil, fmt.Errorf("psp: giving up after %d attempts: %w (then %v)", attempt-1, lastErr, err)
			}
		}
		respBody, err := c.doOnce(ctx, method, rawURL, body, header)
		if err == nil {
			return respBody, nil
		}
		lastErr = err
		if !errors.Is(err, ErrRetryable) || ctx.Err() != nil {
			return nil, err
		}
	}
	c.statExhausted.Add(1)
	return nil, fmt.Errorf("psp: giving up after %d attempts: %w", attempts, lastErr)
}

// newIdempotencyKey generates the client-side key that makes Upload safe to
// retry: the server deduplicates stores that carry the same key.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time-derived key; uniqueness, not secrecy, is
		// what matters here.
		return fmt.Sprintf("ik-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Upload stores a perturbed image and its public data, returning the image
// ID. The request carries a fresh idempotency key, so transient failures
// are retried without risking duplicate stored images.
func (c *Client) Upload(ctx context.Context, img *jpegc.Image, pd *core.PublicData, opts jpegc.EncodeOptions) (string, error) {
	var imgBuf bytes.Buffer
	if err := img.Encode(&imgBuf, opts); err != nil {
		return "", fmt.Errorf("psp: encode image: %w", err)
	}
	params, err := pd.Encode()
	if err != nil {
		return "", fmt.Errorf("psp: encode params: %w", err)
	}
	body, err := json.Marshal(UploadRequest{Image: imgBuf.Bytes(), Params: params})
	if err != nil {
		return "", err
	}
	header := http.Header{
		"Content-Type":    {"application/json"},
		idempotencyHeader: {newIdempotencyKey()},
	}
	respBody, err := c.do(ctx, http.MethodPost, c.BaseURL+"/v1/images", body, header)
	if err != nil {
		return "", err
	}
	var resp UploadResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return "", &corruptError{fmt.Errorf("decode upload response: %w", err)}
	}
	if resp.ID == "" {
		return "", &corruptError{errors.New("server returned empty id")}
	}
	return resp.ID, nil
}

// ListImages returns every stored image ID (sorted), the recovery-audit
// view of the PSP: after a server restart, each listed ID is fetchable.
func (c *Client) ListImages(ctx context.Context) ([]string, error) {
	body, err := c.do(ctx, http.MethodGet, c.BaseURL+"/v1/images", nil, nil)
	if err != nil {
		return nil, err
	}
	var resp ListResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, &corruptError{fmt.Errorf("decode list response: %w", err)}
	}
	return resp.IDs, nil
}

// FetchImage downloads the stored (untransformed) perturbed image.
func (c *Client) FetchImage(ctx context.Context, id string) (*jpegc.Image, error) {
	body, err := c.do(ctx, http.MethodGet, c.BaseURL+"/v1/images/"+url.PathEscape(id), nil, nil)
	if err != nil {
		return nil, err
	}
	img, err := jpegc.Decode(bytes.NewReader(body))
	if err != nil {
		return nil, &corruptError{err}
	}
	return img, nil
}

// FetchParams downloads and validates the image's public data.
func (c *Client) FetchParams(ctx context.Context, id string) (*core.PublicData, error) {
	body, err := c.do(ctx, http.MethodGet, c.BaseURL+"/v1/images/"+url.PathEscape(id)+"/params", nil, nil)
	if err != nil {
		return nil, err
	}
	pd, err := core.DecodePublicData(body)
	if err != nil {
		return nil, &corruptError{err}
	}
	return pd, nil
}

func specQuery(spec transform.Spec) (string, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	v := url.Values{}
	v.Set("spec", string(raw))
	return v.Encode(), nil
}

// FetchTransformed asks the PSP to apply the spec and return the re-encoded
// JPEG.
func (c *Client) FetchTransformed(ctx context.Context, id string, spec transform.Spec) (*jpegc.Image, error) {
	q, err := specQuery(spec)
	if err != nil {
		return nil, err
	}
	body, err := c.do(ctx, http.MethodGet,
		c.BaseURL+"/v1/images/"+url.PathEscape(id)+"/transformed?"+q, nil, nil)
	if err != nil {
		return nil, err
	}
	img, err := jpegc.Decode(bytes.NewReader(body))
	if err != nil {
		return nil, &corruptError{err}
	}
	return img, nil
}

// FetchTransformedPixels asks the PSP to apply the spec and return lossless
// transformed pixels (the high-fidelity delivery path).
func (c *Client) FetchTransformedPixels(ctx context.Context, id string, spec transform.Spec) (*imgplane.Image, error) {
	q, err := specQuery(spec)
	if err != nil {
		return nil, err
	}
	body, err := c.do(ctx, http.MethodGet,
		c.BaseURL+"/v1/images/"+url.PathEscape(id)+"/pixels?"+q, nil, nil)
	if err != nil {
		return nil, err
	}
	img, err := imgplane.DecodeBinary(bytes.NewReader(body))
	if err != nil {
		return nil, &corruptError{err}
	}
	return img, nil
}

// Health probes GET /v1/healthz and returns the server's self-report.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	body, err := c.do(ctx, http.MethodGet, c.BaseURL+"/v1/healthz", nil, nil)
	if err != nil {
		return nil, err
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		return nil, &corruptError{err}
	}
	return &h, nil
}

// TransformedImage is the result of FetchTransformedGraceful: exactly one
// of JPEG or Pixels is set.
type TransformedImage struct {
	// JPEG holds the coefficient-domain result from /transformed.
	JPEG *jpegc.Image
	// Pixels holds the lossless planar result from the /pixels fallback.
	Pixels *imgplane.Image
	// Degraded is true when the /transformed payload was unusable and
	// the client fell back to /pixels.
	Degraded bool
}

// FetchTransformedGraceful fetches the transformed JPEG and degrades
// gracefully: if the JPEG payload is corrupt (fails to decode after
// retries) or the caller's integrity check rejects it, the client re-fetches
// through the lossless /pixels route before surfacing an error. check may
// be nil. Specs with no pixel form (compression) cannot fall back.
func (c *Client) FetchTransformedGraceful(ctx context.Context, id string, spec transform.Spec, check func(*jpegc.Image) error) (*TransformedImage, error) {
	img, err := c.FetchTransformed(ctx, id, spec)
	if err == nil && check != nil {
		if cerr := check(img); cerr != nil {
			err = &corruptError{fmt.Errorf("integrity check: %w", cerr)}
		}
	}
	if err == nil {
		return &TransformedImage{JPEG: img}, nil
	}
	if !errors.Is(err, ErrCorrupt) || spec.Op == transform.OpCompress {
		return nil, err
	}
	pix, perr := c.FetchTransformedPixels(ctx, id, spec)
	if perr != nil {
		return nil, fmt.Errorf("psp: transformed JPEG corrupt (%v); pixels fallback: %w", err, perr)
	}
	return &TransformedImage{Pixels: pix, Degraded: true}, nil
}

// SearchByID runs k-NN search for a stored image: GET /v1/search?id=X&k=K.
// The stored image itself is normally rank 1 at distance 0.
func (c *Client) SearchByID(ctx context.Context, id string, k int) (*SearchResponse, error) {
	u := c.BaseURL + "/v1/search?id=" + url.QueryEscape(id) + "&k=" + strconv.Itoa(k)
	body, err := c.do(ctx, http.MethodGet, u, nil, nil)
	if err != nil {
		return nil, err
	}
	return decodeSearchResponse(body)
}

// Search runs k-NN search by image bytes: POST /v1/search with an
// UploadRequest document, so the query's public parameters shape the
// signature exactly as they would at upload. params may be nil.
func (c *Client) Search(ctx context.Context, image []byte, params json.RawMessage, k int) (*SearchResponse, error) {
	body, err := json.Marshal(UploadRequest{Image: image, Params: params})
	if err != nil {
		return nil, err
	}
	u := c.BaseURL + "/v1/search?k=" + strconv.Itoa(k)
	header := http.Header{"Content-Type": {"application/json"}}
	respBody, err := c.do(ctx, http.MethodPost, u, body, header)
	if err != nil {
		return nil, err
	}
	return decodeSearchResponse(respBody)
}

func decodeSearchResponse(body []byte) (*SearchResponse, error) {
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, &corruptError{fmt.Errorf("decode search response: %w", err)}
	}
	return &resp, nil
}
