package psp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"puppies/internal/core"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/transform"
)

// Client talks to a PSP over HTTP. Both senders (upload) and receivers
// (download, fetch transformed versions) use it.
type Client struct {
	// BaseURL is the PSP root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(req *http.Request) ([]byte, error) {
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxUploadBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("psp: %s %s: %s: %s", req.Method, req.URL.Path, resp.Status, bytes.TrimSpace(body))
	}
	return body, nil
}

// Upload stores a perturbed image and its public data, returning the image
// ID.
func (c *Client) Upload(img *jpegc.Image, pd *core.PublicData, opts jpegc.EncodeOptions) (string, error) {
	var imgBuf bytes.Buffer
	if err := img.Encode(&imgBuf, opts); err != nil {
		return "", fmt.Errorf("psp: encode image: %w", err)
	}
	params, err := pd.Encode()
	if err != nil {
		return "", fmt.Errorf("psp: encode params: %w", err)
	}
	body, err := json.Marshal(UploadRequest{Image: imgBuf.Bytes(), Params: params})
	if err != nil {
		return "", err
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/images", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	respBody, err := c.do(req)
	if err != nil {
		return "", err
	}
	var resp UploadResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return "", fmt.Errorf("psp: decode upload response: %w", err)
	}
	if resp.ID == "" {
		return "", fmt.Errorf("psp: server returned empty id")
	}
	return resp.ID, nil
}

// FetchImage downloads the stored (untransformed) perturbed image.
func (c *Client) FetchImage(id string) (*jpegc.Image, error) {
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/v1/images/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req)
	if err != nil {
		return nil, err
	}
	return jpegc.Decode(bytes.NewReader(body))
}

// FetchParams downloads and validates the image's public data.
func (c *Client) FetchParams(id string) (*core.PublicData, error) {
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/v1/images/"+url.PathEscape(id)+"/params", nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req)
	if err != nil {
		return nil, err
	}
	return core.DecodePublicData(body)
}

func specQuery(spec transform.Spec) (string, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	v := url.Values{}
	v.Set("spec", string(raw))
	return v.Encode(), nil
}

// FetchTransformed asks the PSP to apply the spec and return the re-encoded
// JPEG.
func (c *Client) FetchTransformed(id string, spec transform.Spec) (*jpegc.Image, error) {
	q, err := specQuery(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodGet,
		c.BaseURL+"/v1/images/"+url.PathEscape(id)+"/transformed?"+q, nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req)
	if err != nil {
		return nil, err
	}
	return jpegc.Decode(bytes.NewReader(body))
}

// FetchTransformedPixels asks the PSP to apply the spec and return lossless
// transformed pixels (the high-fidelity delivery path).
func (c *Client) FetchTransformedPixels(id string, spec transform.Spec) (*imgplane.Image, error) {
	q, err := specQuery(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodGet,
		c.BaseURL+"/v1/images/"+url.PathEscape(id)+"/pixels?"+q, nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req)
	if err != nil {
		return nil, err
	}
	return imgplane.DecodeBinary(bytes.NewReader(body))
}
