package psp

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"puppies/internal/jpegc"
)

// batchBenchItems is the number of images per upload round in the batch
// throughput benchmarks; both variants push the same round so their MB/s
// are directly comparable at equal GOMAXPROCS.
const batchBenchItems = 16

func batchBenchJPEG(b *testing.B) []byte {
	b.Helper()
	img, err := jpegc.FromPlanar(testPlanar(64, 48), jpegc.Options{Quality: 80})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkUploadSequential is the baseline the batch endpoint is gated
// against: one POST /v1/images round trip per image, requests serialized
// the way a naive client loop issues them. Marshalling happens inside the
// loop, matching what UploadBatch does per item.
func BenchmarkUploadSequential(b *testing.B) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()
	jpeg := batchBenchJPEG(b)
	b.SetBytes(int64(batchBenchItems * len(jpeg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batchBenchItems; j++ {
			body, err := json.Marshal(UploadRequest{Image: jpeg})
			if err != nil {
				b.Fatal(err)
			}
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/images", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(idempotencyHeader, newIdempotencyKey())
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	}
}

// BenchmarkUploadBatch uploads the same round of images through one
// streaming multipart POST /v1/images:batch. One request amortizes the
// HTTP round trips and the server validates parts on the worker pool, so
// throughput per core must stay well ahead of the sequential loop (the
// bench-compare gate holds it to >=2x).
func BenchmarkUploadBatch(b *testing.B) {
	ts := httptest.NewServer(NewServer().Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	jpeg := batchBenchJPEG(b)
	items := make([]BatchUpload, batchBenchItems)
	for i := range items {
		items[i] = BatchUpload{Image: jpeg}
	}
	b.SetBytes(int64(batchBenchItems * len(jpeg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := c.UploadBatch(context.Background(), items)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Error != "" {
				b.Fatalf("part failed: %s", r.Error)
			}
		}
	}
}
