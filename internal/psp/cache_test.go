package psp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"puppies/internal/jpegc"
	"puppies/internal/transform"
)

// testJPEG encodes a synthetic image to JPEG bytes.
func testJPEG(t testing.TB, w, h int) []byte {
	t.Helper()
	img, err := jpegc.FromPlanar(testPlanar(w, h), jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// storeImage puts JPEG bytes straight into a server's store under a fixed
// ID, bypassing the upload route.
func storeImage(t testing.TB, st Store, id string, jpeg []byte) {
	t.Helper()
	if _, err := st.Put(id, jpeg, nil, ""); err != nil {
		t.Fatal(err)
	}
}

func transformedPath(id string, spec transform.Spec) string {
	raw, _ := json.Marshal(spec)
	return "/v1/images/" + id + "/transformed?spec=" + url.QueryEscape(string(raw))
}

func pixelsPath(id string, spec transform.Spec) string {
	raw, _ := json.Marshal(spec)
	return "/v1/images/" + id + "/pixels?spec=" + url.QueryEscape(string(raw))
}

func doGet(h http.Handler, path string, header http.Header) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, vs := range header {
		req.Header[k] = vs
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestTransformedCacheContention hammers one (image, spec) pair from many
// goroutines on a cold cache and requires exactly one decode and one
// transform+encode to have run — every other request either collapsed into
// the flight or hit the variant cache — with all responses bit-identical.
func TestTransformedCacheContention(t *testing.T) {
	srv := NewServer()
	st := srv.st()
	storeImage(t, st, "img1", testJPEG(t, 64, 48))
	h := srv.Handler()
	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}
	path := transformedPath("img1", spec)

	const goroutines = 32
	const perG = 4
	bodies := make([][]byte, goroutines*perG)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				rec := doGet(h, path, nil)
				if rec.Code != http.StatusOK {
					t.Errorf("status %d: %s", rec.Code, rec.Body.String())
					return
				}
				bodies[g*perG+i] = rec.Body.Bytes()
			}
		}(g)
	}
	close(start)
	wg.Wait()

	stats := srv.CacheStats()
	if stats.TransformsComputed != 1 {
		t.Errorf("transforms computed = %d, want exactly 1", stats.TransformsComputed)
	}
	if stats.DecodesComputed != 1 {
		t.Errorf("decodes computed = %d, want exactly 1", stats.DecodesComputed)
	}
	for i, b := range bodies {
		if !bytes.Equal(b, bodies[0]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	// Every request either led, collapsed, or hit the cache.
	total := uint64(goroutines * perG)
	accounted := stats.TransformsComputed + stats.CollapsedTransforms + stats.Variants.Hits
	if accounted < total {
		t.Errorf("only %d of %d requests accounted for (computed+collapsed+hits): %+v",
			accounted, total, stats)
	}
}

// TestVariantEvictionRecomputesIdentical proves the byte budget is
// respected under a working set larger than the cache, and that an evicted
// entry recomputes to bit-identical bytes.
func TestVariantEvictionRecomputesIdentical(t *testing.T) {
	jpeg := testJPEG(t, 64, 48)
	specAt := func(i int) transform.Spec {
		return transform.Spec{Op: transform.OpScale, FactorX: 0.5 + float64(i)/1000, FactorY: 0.5}
	}

	// Measure one output body to size a budget that holds roughly one
	// entry per shard.
	probe := NewServer()
	storeImage(t, probe.st(), "img1", jpeg)
	rec := doGet(probe.Handler(), transformedPath("img1", specAt(0)), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("probe status %d", rec.Code)
	}
	bodySize := int64(rec.Body.Len())

	srv := NewServer()
	srv.VariantCacheBytes = 16 * (bodySize + bodySize/2) // ~1.5 bodies per shard
	storeImage(t, srv.st(), "img1", jpeg)
	h := srv.Handler()

	const distinct = 48 // >> 16 shards: some shard must overflow
	first := make([][]byte, distinct)
	for i := 0; i < distinct; i++ {
		rec := doGet(h, transformedPath("img1", specAt(i)), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("spec %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		first[i] = append([]byte(nil), rec.Body.Bytes()...)
	}
	stats := srv.CacheStats()
	if stats.Variants.Evictions == 0 {
		t.Error("no evictions despite working set exceeding budget")
	}
	if stats.Variants.Bytes > stats.Variants.MaxBytes {
		t.Errorf("cache holds %d bytes, budget %d", stats.Variants.Bytes, stats.Variants.MaxBytes)
	}

	// Re-request everything: evicted entries must recompute bit-identical.
	for i := 0; i < distinct; i++ {
		rec := doGet(h, transformedPath("img1", specAt(i)), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("re-request %d: status %d", i, rec.Code)
		}
		if !bytes.Equal(rec.Body.Bytes(), first[i]) {
			t.Fatalf("spec %d: recomputed bytes differ from original response", i)
		}
	}
	if after := srv.CacheStats(); after.TransformsComputed <= stats.TransformsComputed {
		t.Error("expected recomputation of evicted entries on the second pass")
	}
}

// TestConditionalGetRoundTrip covers the ETag scheme: strong validator +
// Cache-Control: immutable + Content-Length on 200s, and 304 on
// If-None-Match — including on a cold cache, where the validator alone
// proves the client's copy is current.
func TestConditionalGetRoundTrip(t *testing.T) {
	jpeg := testJPEG(t, 64, 48)
	st := NewMemStore()
	storeImage(t, st, "img1", jpeg)
	srv := NewServerWith(st)
	h := srv.Handler()
	spec := transform.Spec{Op: transform.OpRotate90}
	path := transformedPath("img1", spec)

	rec := doGet(h, path, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	etag := rec.Header().Get("ETag")
	if etag == "" || etag[0] != '"' {
		t.Fatalf("missing/weak ETag %q", etag)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != immutableCacheControl {
		t.Errorf("Cache-Control = %q", cc)
	}
	if cl := rec.Header().Get("Content-Length"); cl != strconv.Itoa(rec.Body.Len()) {
		t.Errorf("Content-Length %q vs body %d", cl, rec.Body.Len())
	}

	// Warm 304.
	rec2 := doGet(h, path, http.Header{"If-None-Match": {etag}})
	if rec2.Code != http.StatusNotModified {
		t.Fatalf("warm revalidation: status %d, want 304", rec2.Code)
	}
	if rec2.Body.Len() != 0 {
		t.Errorf("304 carried a %d-byte body", rec2.Body.Len())
	}

	// Cold 304: a fresh server over the same store has computed nothing,
	// but the validator still proves freshness (immutability).
	cold := NewServerWith(st)
	rec3 := doGet(cold.Handler(), path, http.Header{"If-None-Match": {etag}})
	if rec3.Code != http.StatusNotModified {
		t.Fatalf("cold revalidation: status %d, want 304", rec3.Code)
	}
	if stats := cold.CacheStats(); stats.TransformsComputed != 0 {
		t.Errorf("cold 304 computed %d transforms", stats.TransformsComputed)
	}

	// Weak-compare and list forms.
	rec4 := doGet(h, path, http.Header{"If-None-Match": {`"zzz", W/` + etag}})
	if rec4.Code != http.StatusNotModified {
		t.Errorf("list+weak If-None-Match: status %d, want 304", rec4.Code)
	}

	// Stale validator re-serves the body.
	rec5 := doGet(h, path, http.Header{"If-None-Match": {`"stale"`}})
	if rec5.Code != http.StatusOK {
		t.Errorf("stale validator: status %d, want 200", rec5.Code)
	}

	// 304 must not fire for a missing image even with a matching-format tag.
	recMissing := doGet(h, transformedPath("missing", spec), http.Header{"If-None-Match": {"*"}})
	if recMissing.Code != http.StatusNotFound {
		t.Errorf("missing image with If-None-Match: status %d, want 404", recMissing.Code)
	}

	// The raw image route also revalidates.
	raw := doGet(h, "/v1/images/img1", nil)
	rawTag := raw.Header().Get("ETag")
	if rawTag == "" {
		t.Fatal("raw image GET missing ETag")
	}
	if got := doGet(h, "/v1/images/img1", http.Header{"If-None-Match": {rawTag}}); got.Code != http.StatusNotModified {
		t.Errorf("raw image revalidation: status %d, want 304", got.Code)
	}
	// Different routes for the same image never share a validator.
	if rawTag == etag {
		t.Error("raw and transformed routes share an ETag")
	}
}

// TestSpecAliasesShareCacheEntry: two JSON spellings of the same transform
// must hit the same cache entry (the canonical Spec.Key at work end-to-end).
func TestSpecAliasesShareCacheEntry(t *testing.T) {
	srv := NewServer()
	storeImage(t, srv.st(), "img1", testJPEG(t, 64, 48))
	h := srv.Handler()

	a := doGet(h, "/v1/images/img1/transformed?spec="+url.QueryEscape(`{"op":"compress","quality":50}`), nil)
	b := doGet(h, "/v1/images/img1/transformed?spec="+url.QueryEscape(`{"quality":50,"op":"compress","x":0,"angle":0}`), nil)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("statuses %d, %d", a.Code, b.Code)
	}
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Fatal("alias spellings produced different bytes")
	}
	stats := srv.CacheStats()
	if stats.TransformsComputed != 1 {
		t.Errorf("transforms computed = %d, want 1 (aliases must share the entry)", stats.TransformsComputed)
	}
	if stats.Variants.Hits != 1 {
		t.Errorf("variant hits = %d, want 1", stats.Variants.Hits)
	}
}

// corruptingStore injects storage-layer damage: it serves a truncated copy
// of the stored JPEG, simulating bit rot past upload validation.
type corruptingStore struct {
	Store
	corrupt atomic.Bool
}

func (c *corruptingStore) Get(id string) ([]byte, []byte, bool, error) {
	jpeg, params, ok, err := c.Store.Get(id)
	if ok && c.corrupt.Load() && len(jpeg) > 16 {
		jpeg = jpeg[:16]
	}
	return jpeg, params, ok, err
}

// TestCorruptStoredImageIsTypedCorrupt injects a corrupt stored image and
// requires the transformed route to answer with the corrupt error class so
// the client classifies it as ErrCorrupt — terminal, not retried.
func TestCorruptStoredImageIsTypedCorrupt(t *testing.T) {
	cs := &corruptingStore{Store: NewMemStore()}
	storeImage(t, cs, "img1", testJPEG(t, 64, 48))
	cs.corrupt.Store(true)
	psp := NewServerWith(cs)

	var requests atomic.Int64
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		psp.Handler().ServeHTTP(w, r)
	})
	srv := httptest.NewServer(counted)
	defer srv.Close()

	noSleep := func(ctx context.Context, d time.Duration) error { return nil }
	client := &Client{BaseURL: srv.URL, sleep: noSleep}

	_, err := client.FetchTransformed(context.Background(),
		"img1", transform.Spec{Op: transform.OpRotate90})
	if err == nil {
		t.Fatal("corrupt stored image served successfully")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("error not classified as ErrCorrupt: %v", err)
	}
	if errors.Is(err, ErrRetryable) {
		t.Errorf("corrupt stored image classified retryable: %v", err)
	}
	if n := requests.Load(); n != 1 {
		t.Errorf("client made %d requests, want 1 (no retries on corrupt data)", n)
	}

	// The pixels route types it the same way.
	requests.Store(0)
	_, err = client.FetchTransformedPixels(context.Background(),
		"img1", transform.Spec{Op: transform.OpNone})
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("pixels route: error not ErrCorrupt: %v", err)
	}
	if n := requests.Load(); n != 1 {
		t.Errorf("pixels route retried: %d requests", n)
	}
}

// TestClientConditionalGetUsesValidatorCache: a client with a RespCache
// revalidates instead of re-downloading, and the server answers 304 from
// the validator alone.
func TestClientConditionalGetUsesValidatorCache(t *testing.T) {
	psp := NewServer()
	storeImage(t, psp.st(), "img1", testJPEG(t, 64, 48))
	srv := httptest.NewServer(psp.Handler())
	defer srv.Close()

	client := &Client{BaseURL: srv.URL, RespCache: NewValidatorCache(1 << 20)}
	spec := transform.Spec{Op: transform.OpFlipH}

	first, err := client.FetchTransformed(context.Background(), "img1", spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.FetchTransformed(context.Background(), "img1", spec)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range first.Comps {
		for bi := range first.Comps[ci].Blocks {
			if first.Comps[ci].Blocks[bi] != second.Comps[ci].Blocks[bi] {
				t.Fatal("revalidated fetch returned different coefficients")
			}
		}
	}
	stats := psp.CacheStats()
	if stats.NotModified != 1 {
		t.Errorf("server answered %d 304s, want 1", stats.NotModified)
	}
	if stats.TransformsComputed != 1 {
		t.Errorf("transforms computed = %d, want 1", stats.TransformsComputed)
	}

	// The raw image route revalidates through the same cache.
	if _, err := client.FetchImage(context.Background(), "img1"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.FetchImage(context.Background(), "img1"); err != nil {
		t.Fatal(err)
	}
	if got := psp.CacheStats().NotModified; got != 2 {
		t.Errorf("after raw refetch: %d 304s, want 2", got)
	}
}

// TestStatzEndpoint checks the JSON statistics surface end to end.
func TestStatzEndpoint(t *testing.T) {
	srv := NewServer()
	storeImage(t, srv.st(), "img1", testJPEG(t, 64, 48))
	h := srv.Handler()
	path := transformedPath("img1", transform.Spec{Op: transform.OpRotate180})

	for i := 0; i < 3; i++ {
		if rec := doGet(h, path, nil); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	rec := doGet(h, "/v1/statz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("statz status %d", rec.Code)
	}
	var stats CacheStatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("statz not JSON: %v\n%s", err, rec.Body.String())
	}
	if stats.TransformsComputed != 1 || stats.Variants.Hits != 2 {
		t.Errorf("statz = %+v, want 1 computation and 2 hits", stats)
	}
	if stats.Variants.Bytes <= 0 || stats.Variants.MaxBytes <= 0 {
		t.Errorf("statz byte accounting empty: %+v", stats.Variants)
	}
	if stats.Coeffs.Entries != 1 {
		t.Errorf("coefficient cache holds %d entries, want 1", stats.Coeffs.Entries)
	}
}

// TestCacheDisabledStillServes: negative budgets turn both caches off; the
// routes still work and recompute every request.
func TestCacheDisabledStillServes(t *testing.T) {
	srv := NewServer()
	srv.VariantCacheBytes = -1
	srv.CoeffCacheBytes = -1
	storeImage(t, srv.st(), "img1", testJPEG(t, 64, 48))
	h := srv.Handler()
	path := transformedPath("img1", transform.Spec{Op: transform.OpFlipV})

	a := doGet(h, path, nil)
	b := doGet(h, path, nil)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("statuses %d, %d", a.Code, b.Code)
	}
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Fatal("uncached recomputation not deterministic")
	}
	stats := srv.CacheStats()
	if stats.TransformsComputed != 2 || stats.DecodesComputed != 2 {
		t.Errorf("disabled caches: computed %d transforms / %d decodes, want 2/2", stats.TransformsComputed, stats.DecodesComputed)
	}
	if stats.Variants.Entries != 0 || stats.Coeffs.Entries != 0 {
		t.Errorf("disabled caches hold entries: %+v", stats)
	}
	// ETags still work without caches.
	etag := a.Header().Get("ETag")
	if rec := doGet(h, path, http.Header{"If-None-Match": {etag}}); rec.Code != http.StatusNotModified {
		t.Errorf("disabled-cache revalidation: status %d, want 304", rec.Code)
	}
}

// TestPixelsRouteCached: the /pixels route shares the coefficient cache
// with /transformed but caches its own encoded representation.
func TestPixelsRouteCached(t *testing.T) {
	srv := NewServer()
	storeImage(t, srv.st(), "img1", testJPEG(t, 64, 48))
	h := srv.Handler()
	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}

	tp := doGet(h, transformedPath("img1", spec), nil)
	pp := doGet(h, pixelsPath("img1", spec), nil)
	pp2 := doGet(h, pixelsPath("img1", spec), nil)
	if tp.Code != http.StatusOK || pp.Code != http.StatusOK || pp2.Code != http.StatusOK {
		t.Fatalf("statuses %d, %d, %d", tp.Code, pp.Code, pp2.Code)
	}
	if !bytes.Equal(pp.Body.Bytes(), pp2.Body.Bytes()) {
		t.Fatal("pixel responses differ")
	}
	stats := srv.CacheStats()
	if stats.DecodesComputed != 1 {
		t.Errorf("decodes = %d, want 1 (coefficient cache shared across routes)", stats.DecodesComputed)
	}
	if stats.TransformsComputed != 2 {
		t.Errorf("computations = %d, want 2 (one per representation)", stats.TransformsComputed)
	}
	if stats.Variants.Hits != 1 {
		t.Errorf("variant hits = %d, want 1", stats.Variants.Hits)
	}
	if tp.Header().Get("ETag") == pp.Header().Get("ETag") {
		t.Error("transformed and pixels share an ETag")
	}
}
