package psp

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"puppies/internal/jpegc"
	"puppies/internal/transform"
)

// benchJPEG is a larger fixture than the correctness tests use, so the
// cold path's decode→transform→encode cost is representative.
func benchJPEG(b *testing.B) []byte {
	b.Helper()
	img, err := jpegc.FromPlanar(testPlanar(512, 384), jpegc.Options{Quality: 80})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// benchThumbSpec is the canonical 1/8-scale thumbnail — the same spec the
// load generator's thumbnail route requests. The Cold/Thumbnail benchmark
// pair below serves this one spec so the thumb-gate ratio is like-for-like.
var benchThumbSpec = transform.Spec{Op: transform.OpScale, FactorX: 0.125, FactorY: 0.125}

func benchServer(b *testing.B, variantBytes, coeffBytes int64) (*Server, http.Handler, string) {
	b.Helper()
	srv := NewServer()
	srv.VariantCacheBytes = variantBytes
	srv.CoeffCacheBytes = coeffBytes
	if _, err := srv.st().Put("bench", benchJPEG(b), nil, ""); err != nil {
		b.Fatal(err)
	}
	raw, _ := benchThumbSpec.MarshalJSON()
	path := "/v1/images/bench/transformed?spec=" + string(raw)
	return srv, srv.Handler(), path
}

func serveOnce(b *testing.B, h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	return rec
}

// BenchmarkServeTransformedCold is the uncached full-resolution serving
// path at the thumbnail spec: full JPEG decode, pixel-domain resample,
// optimized re-encode per request — what every thumbnail request cost
// before the scaled-decode path. The planner is disabled so this row keeps
// measuring the full path (the thumb-gate baseline the scaled-decode rows
// are compared against).
func BenchmarkServeTransformedCold(b *testing.B) {
	srv, h, path := benchServer(b, -1, -1)
	srv.DisableScaledDecode = true
	serveOnce(b, h, path) // warm pools, fault in code paths
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveOnce(b, h, path)
	}
}

// BenchmarkServeThumbnailCold is the scaled-decode fast path under the
// thumbnail fan-out workload at the same 1/8-scale spec: the coefficient
// cache is warm (a grid client requests many variants of the same image,
// so entropy decode amortizes) but every served variant is computed from
// coefficients — reduced IDCT, residual resample, FDCT over the small
// plane, encode. The thumb-gate requires this ≥5x faster than
// BenchmarkServeTransformedCold.
func BenchmarkServeThumbnailCold(b *testing.B) {
	benchThumbnailCold(b, false)
}

// BenchmarkServeThumbnailColdFullPath is the same workload with the
// planner disabled — the honest like-for-like cost of the fast path's
// marginal win (reported for transparency, not gated).
func BenchmarkServeThumbnailColdFullPath(b *testing.B) {
	benchThumbnailCold(b, true)
}

func benchThumbnailCold(b *testing.B, disableScaled bool) {
	srv, h, path := benchServer(b, -1, 0)
	srv.DisableScaledDecode = disableScaled
	serveOnce(b, h, path) // warm the coefficient cache and pools
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveOnce(b, h, path)
	}
}

// BenchmarkServeTransformedHot is the steady-state hot path: the encoded
// variant is cached, so a request is a cache probe plus a buffer write.
func BenchmarkServeTransformedHot(b *testing.B) {
	srv, h, path := benchServer(b, 0, 0)
	serveOnce(b, h, path) // prime the caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveOnce(b, h, path)
	}
	b.StopTimer()
	if n := srv.CacheStats().TransformsComputed; n != 1 {
		b.Fatalf("hot benchmark recomputed: %d transforms", n)
	}
}

// BenchmarkServeTransformedNotModified is the conditional-GET path: the
// client revalidates with If-None-Match and gets a bodyless 304.
func BenchmarkServeTransformedNotModified(b *testing.B) {
	_, h, path := benchServer(b, 0, 0)
	etag := serveOnce(b, h, path).Header().Get("ETag")
	if etag == "" {
		b.Fatal("no ETag")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		req.Header.Set("If-None-Match", etag)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			b.Fatalf("status %d, want 304", rec.Code)
		}
	}
}

// BenchmarkServeTransformedConcurrent drives the hot path from all
// GOMAXPROCS procs at once, measuring shard-lock contention on the
// variant cache.
func BenchmarkServeTransformedConcurrent(b *testing.B) {
	_, h, path := benchServer(b, 0, 0)
	serveOnce(b, h, path)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			serveOnce(b, h, path)
		}
	})
}

// BenchmarkServeTransformedCollapse measures a burst of concurrent
// requests for a never-before-seen (image, spec) pair: the singleflight
// layer must run the decode+transform once per burst with every other
// request sharing the result. The computations/burst metric asserts that.
func BenchmarkServeTransformedCollapse(b *testing.B) {
	const burst = 8
	srv, h, _ := benchServer(b, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh factor per iteration makes a unique cache key, so every
		// burst starts cold.
		spec := transform.Spec{Op: transform.OpScale, FactorX: 0.25, FactorY: 0.25 + float64(i+1)*1e-9}
		raw, _ := spec.MarshalJSON()
		path := "/v1/images/bench/transformed?spec=" + string(raw)
		var wg sync.WaitGroup
		for g := 0; g < burst; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				serveOnce(b, h, path)
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	stats := srv.CacheStats()
	perBurst := float64(stats.TransformsComputed) / float64(b.N)
	b.ReportMetric(perBurst, "computations/burst")
	if stats.TransformsComputed > uint64(b.N) {
		b.Fatalf("%d computations for %d bursts: collapse failed", stats.TransformsComputed, b.N)
	}
}

// BenchmarkServePixelsHot covers the cached lossless-pixels path.
func BenchmarkServePixelsHot(b *testing.B) {
	srv := NewServer()
	if _, err := srv.st().Put("bench", benchJPEG(b), nil, ""); err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	raw, _ := benchThumbSpec.MarshalJSON()
	path := "/v1/images/bench/pixels?spec=" + string(raw)
	serveOnce(b, h, path)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveOnce(b, h, path)
	}
}

// BenchmarkSpecKey guards the canonical-key cost itself: it sits on the
// hot path of every serving request.
func BenchmarkSpecKey(b *testing.B) {
	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.33333, FactorY: 0.25}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if k := spec.Key(); k == "" {
			b.Fatal("empty key")
		}
	}
}
