package psp

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"puppies/internal/core"
	"puppies/internal/faults"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/transform"
)

// fastClient disables real backoff sleeps and records requested waits.
func fastClient(baseURL string, waits *[]time.Duration) *Client {
	c := &Client{BaseURL: baseURL}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if waits != nil {
			*waits = append(*waits, d)
		}
		return ctx.Err()
	}
	return c
}

// faultedFixture is like fixture but inserts the fault-injection middleware
// between the client and the PSP, and returns the raw *Server so tests can
// inspect the store.
func faultedFixture(t *testing.T, inj *faults.Injector) (*Client, *Server, *jpegc.Image, *jpegc.Image, *core.PublicData, *keys.Pair) {
	t.Helper()
	psp := NewServer()
	srv := httptest.NewServer(inj.Middleware(psp.Handler()))
	t.Cleanup(srv.Close)
	client := fastClient(srv.URL, nil)

	base, err := jpegc.FromPlanar(testPlanar(64, 48), jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	perturbed := base.Clone()
	sch, err := core.NewScheme(core.Params{
		Variant: core.VariantC, MR: 32, K: 8, Wrap: core.WrapRecorded,
	})
	if err != nil {
		t.Fatal(err)
	}
	pair := keys.NewPairDeterministic(55)
	pd, _, err := sch.EncryptImage(perturbed, []core.RegionAssignment{
		{ROI: core.ROI{X: 16, Y: 8, W: 32, H: 24}, Pair: pair},
	})
	if err != nil {
		t.Fatal(err)
	}
	return client, psp, base, perturbed, pd, pair
}

// TestUploadSurvives503BurstWithoutDuplicates is acceptance (a): the upload
// rides out two injected 503s plus a stored-but-dropped response, and the
// idempotency key keeps the store at exactly one image.
func TestUploadSurvives503BurstWithoutDuplicates(t *testing.T) {
	inj := faults.New(101).Script(faults.MethodIs(http.MethodPost),
		faults.Fault{Kind: faults.Status503},
		faults.Fault{Kind: faults.Status503, RetryAfter: 10 * time.Millisecond},
		faults.Fault{Kind: faults.DropResponse},
	)
	client, psp, _, perturbed, pd, _ := faultedFixture(t, inj)

	id, err := client.Upload(context.Background(), perturbed, pd, jpegc.EncodeOptions{})
	if err != nil {
		t.Fatalf("upload under fault injection: %v", err)
	}
	if got := inj.Count(faults.Status503); got != 2 {
		t.Errorf("injected 503s = %d, want 2", got)
	}
	if got := inj.Count(faults.DropResponse); got != 1 {
		t.Errorf("injected dropped responses = %d, want 1", got)
	}
	if n := psp.Len(); n != 1 {
		t.Errorf("store holds %d images after retried upload, want 1 (no duplicates)", n)
	}
	// The returned ID must be the one the store actually holds.
	if _, err := client.FetchImage(context.Background(), id); err != nil {
		t.Errorf("fetch of retried upload: %v", err)
	}
}

// TestCorruptTransformedFallsBackToPixels is acceptance (b): the
// /transformed payload is silently truncated, the client degrades to the
// lossless /pixels route, and the keyed receiver still recovers the ROI
// exactly.
func TestCorruptTransformedFallsBackToPixels(t *testing.T) {
	inj := faults.New(202).Script(faults.PathContains("/transformed"),
		faults.Fault{Kind: faults.Truncate},
	)
	client, _, base, perturbed, pd, pair := faultedFixture(t, inj)
	ctx := context.Background()

	id, err := client.Upload(ctx, perturbed, pd, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized})
	if err != nil {
		t.Fatal(err)
	}
	spec := transform.Spec{Op: transform.OpNone}
	res, err := client.FetchTransformedGraceful(ctx, id, spec, nil)
	if err != nil {
		t.Fatalf("graceful fetch under truncation: %v", err)
	}
	if !res.Degraded || res.Pixels == nil || res.JPEG != nil {
		t.Fatalf("expected pixels fallback, got degraded=%v jpeg=%v", res.Degraded, res.JPEG != nil)
	}
	if got := inj.Count(faults.Truncate); got != 1 {
		t.Errorf("injected truncations = %d, want 1", got)
	}

	pdT := *pd
	pdT.Transform = spec
	recovered, err := core.ReconstructPixels(res.Pixels, &pdT, map[string]*keys.Pair{pair.ID: pair})
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	// The protected ROI must come back exactly (to 8-bit precision).
	roi := core.ROI{X: 16, Y: 8, W: 32, H: 24}
	for ci := range want.Planes {
		for y := roi.Y; y < roi.Y+roi.H; y++ {
			for x := roi.X; x < roi.X+roi.W; x++ {
				d := recovered.Planes[ci].At(x, y) - want.Planes[ci].At(x, y)
				if d < -0.5 || d > 0.5 {
					t.Fatalf("ROI pixel (%d,%d,%d) off by %g after fallback recovery", ci, x, y, d)
				}
			}
		}
	}
}

func TestGracefulFetchUsesIntegrityCheck(t *testing.T) {
	client, _, _, perturbed, pd, _ := faultedFixture(t, faults.New(1))
	ctx := context.Background()
	id, err := client.Upload(ctx, perturbed, pd, jpegc.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// No faults at all: a rejecting integrity check alone must trigger
	// the pixels fallback.
	res, err := client.FetchTransformedGraceful(ctx, id, transform.Spec{Op: transform.OpNone},
		func(*jpegc.Image) error { return errors.New("synthetic integrity failure") })
	if err != nil {
		t.Fatalf("graceful fetch with failing check: %v", err)
	}
	if !res.Degraded || res.Pixels == nil {
		t.Error("failing integrity check did not degrade to pixels")
	}
	// A passing check keeps the coefficient-domain result.
	res, err = client.FetchTransformedGraceful(ctx, id, transform.Spec{Op: transform.OpNone}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.JPEG == nil {
		t.Error("healthy path degraded unnecessarily")
	}
}

func TestDroppedConnectionIsRetried(t *testing.T) {
	inj := faults.New(77).Script(faults.MethodIs(http.MethodGet),
		faults.Fault{Kind: faults.Drop},
	)
	// Client-side injection this time: the RoundTripper resets before the
	// request leaves the process.
	psp := NewServer()
	srv := httptest.NewServer(psp.Handler())
	t.Cleanup(srv.Close)
	client := fastClient(srv.URL, nil)
	client.HTTPClient = &http.Client{Transport: inj.Transport(nil)}

	base, err := jpegc.FromPlanar(testPlanar(32, 32), jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	id, err := client.Upload(context.Background(), base, &core.PublicData{W: 32, H: 32, Channels: 3}, jpegc.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.FetchImage(context.Background(), id); err != nil {
		t.Errorf("fetch after injected reset: %v", err)
	}
	if got := inj.Count(faults.Drop); got != 1 {
		t.Errorf("injected drops = %d, want 1", got)
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls int
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "0.25")
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok","images":0}`))
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	var waits []time.Duration
	client := fastClient(srv.URL, &waits)
	if _, err := client.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 1 || waits[0] != 250*time.Millisecond {
		t.Errorf("backoff waits = %v, want exactly the served Retry-After of 250ms", waits)
	}
}

func TestRetriesGiveUpAndClassify(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "always down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	var waits []time.Duration
	client := fastClient(srv.URL, &waits)
	client.MaxRetries = 2
	_, err := client.FetchImage(context.Background(), "abc")
	if err == nil {
		t.Fatal("fetch from always-503 server succeeded")
	}
	if !errors.Is(err, ErrRetryable) {
		t.Errorf("exhausted retries not classified retryable: %v", err)
	}
	if len(waits) != 2 {
		t.Errorf("slept %d times, want 2 (MaxRetries)", len(waits))
	}
}

func TestTerminal4xxIsNotRetried(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer srv.Close()
	client := fastClient(srv.URL, nil)
	_, err := client.FetchImage(context.Background(), "abc")
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("404 not classified ErrNotFound: %v", err)
	}
	if errors.Is(err, ErrRetryable) {
		t.Errorf("404 classified retryable: %v", err)
	}
	if calls != 1 {
		t.Errorf("terminal 404 requested %d times, want 1", calls)
	}
}

func TestPerAttemptTimeoutIsRetryable(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	client := fastClient(srv.URL, nil)
	client.RequestTimeout = 30 * time.Millisecond
	client.MaxRetries = 1
	start := time.Now()
	_, err := client.FetchImage(context.Background(), "abc")
	if err == nil {
		t.Fatal("fetch from stalled server succeeded")
	}
	if !errors.Is(err, ErrRetryable) {
		t.Errorf("attempt timeout not classified retryable: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timed-out fetch took %s", elapsed)
	}
}

func TestCallerCancellationStopsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL, BackoffBase: 10 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := client.FetchImage(ctx, "abc")
	if err == nil {
		t.Fatal("fetch with cancelled context succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled fetch blocked for %s", elapsed)
	}
}

func TestResponseTooLargeIsTyped(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(bytes.Repeat([]byte("x"), 4096))
	}))
	defer srv.Close()
	client := fastClient(srv.URL, nil)
	client.MaxResponseBytes = 1024
	_, err := client.FetchImage(context.Background(), "abc")
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized response error = %v, want ErrTooLarge", err)
	}
}

func TestCorruptPayloadIsTyped(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/jpeg")
		_, _ = w.Write([]byte("definitely not a jpeg"))
	}))
	defer srv.Close()
	client := fastClient(srv.URL, nil)
	_, err := client.FetchImage(context.Background(), "abc")
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("undecodable payload error = %v, want ErrCorrupt", err)
	}
	if errors.Is(err, ErrRetryable) {
		t.Errorf("corrupt payload classified retryable: %v", err)
	}
}

func TestHealthEndpoint(t *testing.T) {
	client, _, _, perturbed, pd, _ := faultedFixture(t, faults.New(1))
	ctx := context.Background()
	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Images != 0 {
		t.Errorf("empty server health = %+v", h)
	}
	if _, err := client.Upload(ctx, perturbed, pd, jpegc.EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	h, err = client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Images != 1 {
		t.Errorf("health after upload reports %d images, want 1", h.Images)
	}
}

// TestServerErrorPaths is the table-driven sweep over the server's failure
// responses: malformed specs, unknown IDs on every GET route, and the
// oversized-upload 413.
func TestServerErrorPaths(t *testing.T) {
	psp := NewServer()
	psp.MaxUpload = 64 << 10
	srv := httptest.NewServer(psp.Handler())
	defer srv.Close()

	// Store one real image so the spec cases hit the parse path, not 404.
	base, err := jpegc.FromPlanar(testPlanar(32, 32), jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	client := fastClient(srv.URL, nil)
	id, err := client.Upload(context.Background(), base, &core.PublicData{W: 32, H: 32, Channels: 3}, jpegc.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"malformed spec on transformed", "GET", "/v1/images/" + id + "/transformed?spec=%7Bnope", "", http.StatusBadRequest},
		{"malformed spec on pixels", "GET", "/v1/images/" + id + "/pixels?spec=%7Bnope", "", http.StatusBadRequest},
		{"unknown op in spec", "GET", "/v1/images/" + id + "/transformed?spec=%7B%22op%22%3A%22nonsense%22%7D", "", http.StatusBadRequest},
		{"unknown id image", "GET", "/v1/images/missing", "", http.StatusNotFound},
		{"unknown id params", "GET", "/v1/images/missing/params", "", http.StatusNotFound},
		{"unknown id transformed", "GET", "/v1/images/missing/transformed", "", http.StatusNotFound},
		{"unknown id pixels", "GET", "/v1/images/missing/pixels", "", http.StatusNotFound},
		{"oversized upload", "POST", "/v1/images", strings.Repeat("x", 128<<10), http.StatusRequestEntityTooLarge},
		{"empty image upload", "POST", "/v1/images", `{"image":"","params":null}`, http.StatusBadRequest},
		{"non-json upload", "POST", "/v1/images", "not json", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd io.Reader
			if tc.body != "" {
				rd = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}
}

// TestIdempotentUploadDirect exercises the key path at the HTTP layer: two
// identical POSTs with the same Idempotency-Key store once and return the
// same ID.
func TestIdempotentUploadDirect(t *testing.T) {
	psp := NewServer()
	srv := httptest.NewServer(psp.Handler())
	defer srv.Close()

	base, err := jpegc.FromPlanar(testPlanar(32, 32), jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := base.Encode(&buf, jpegc.EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"image":%q,"params":null}`, toBase64(buf.Bytes()))

	post := func() string {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/images", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "fixed-key-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload status %d: %s", resp.StatusCode, raw)
		}
		return string(raw)
	}
	first, second := post(), post()
	if first != second {
		t.Errorf("same idempotency key returned different responses: %q vs %q", first, second)
	}
	if n := psp.Len(); n != 1 {
		t.Errorf("store holds %d images, want 1", n)
	}
}

func toBase64(b []byte) string {
	return base64.StdEncoding.EncodeToString(b)
}
