package psp

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"puppies/internal/core"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/transform"
)

func testPlanar(w, h int) *imgplane.Image {
	img, _ := imgplane.New(w, h, 3)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			img.Planes[0].Pix[i] = float32(100 + 80*math.Sin(float64(x)/6)*math.Cos(float64(y)/8))
			img.Planes[1].Pix[i] = float32(128 + 25*math.Sin(float64(x+y)/9))
			img.Planes[2].Pix[i] = float32(128 + 25*math.Cos(float64(x-y)/7))
		}
	}
	return img
}

// fixture spins up a PSP and encrypts a test image.
func fixture(t *testing.T) (*Client, *jpegc.Image, *jpegc.Image, *core.PublicData, *keys.Pair) {
	t.Helper()
	srv := httptest.NewServer(NewServer().Handler())
	t.Cleanup(srv.Close)
	client := &Client{BaseURL: srv.URL}

	base, err := jpegc.FromPlanar(testPlanar(64, 48), jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	perturbed := base.Clone()
	sch, err := core.NewScheme(core.Params{
		Variant: core.VariantC, MR: 32, K: 8, Wrap: core.WrapRecorded,
	})
	if err != nil {
		t.Fatal(err)
	}
	pair := keys.NewPairDeterministic(55)
	pd, _, err := sch.EncryptImage(perturbed, []core.RegionAssignment{
		{ROI: core.ROI{X: 16, Y: 8, W: 32, H: 24}, Pair: pair},
	})
	if err != nil {
		t.Fatal(err)
	}
	return client, base, perturbed, pd, pair
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	client, _, perturbed, pd, _ := fixture(t)
	id, err := client.Upload(context.Background(), perturbed, pd, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized})
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.FetchImage(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range perturbed.Comps {
		for bi := range perturbed.Comps[ci].Blocks {
			if got.Comps[ci].Blocks[bi] != perturbed.Comps[ci].Blocks[bi] {
				t.Fatal("stored image coefficients changed in transit")
			}
		}
	}
	params, err := client.FetchParams(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if params.W != pd.W || len(params.Regions) != 1 {
		t.Errorf("params round trip: %+v", params)
	}
}

func TestEndToEndSharingFlow(t *testing.T) {
	client, base, perturbed, pd, pair := fixture(t)
	id, err := client.Upload(context.Background(), perturbed, pd, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized})
	if err != nil {
		t.Fatal(err)
	}

	// Receiver with the key recovers the exact original.
	img, err := client.FetchImage(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	params, err := client.FetchParams(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	n, err := core.DecryptImage(img, params, map[string]*keys.Pair{pair.ID: pair})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("decrypted %d regions", n)
	}
	for ci := range base.Comps {
		for bi := range base.Comps[ci].Blocks {
			if img.Comps[ci].Blocks[bi] != base.Comps[ci].Blocks[bi] {
				t.Fatal("end-to-end recovery not exact")
			}
		}
	}
}

func TestTransformedPixelsRecovery(t *testing.T) {
	client, base, perturbed, pd, pair := fixture(t)
	id, err := client.Upload(context.Background(), perturbed, pd, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized})
	if err != nil {
		t.Fatal(err)
	}
	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}
	transformed, err := client.FetchTransformedPixels(context.Background(), id, spec)
	if err != nil {
		t.Fatal(err)
	}
	pdT := *pd
	pdT.Transform = spec
	recovered, err := core.ReconstructPixels(transformed, &pdT, map[string]*keys.Pair{pair.ID: pair})
	if err != nil {
		t.Fatal(err)
	}
	basePix, err := base.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	want, err := transform.ApplyPlanar(basePix, spec)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := imgplane.ImagePSNR(recovered, want)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 55 {
		t.Errorf("recovery after PSP scaling: PSNR %.1f dB, want >= 55", psnr)
	}
}

func TestTransformedJPEGEndpoint(t *testing.T) {
	client, _, perturbed, pd, _ := fixture(t)
	id, err := client.Upload(context.Background(), perturbed, pd, jpegc.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.FetchTransformed(context.Background(), id, transform.Spec{Op: transform.OpRotate90})
	if err != nil {
		t.Fatal(err)
	}
	if got.W != perturbed.H || got.H != perturbed.W {
		t.Errorf("rotated dims %dx%d", got.W, got.H)
	}
}

func TestServerErrors(t *testing.T) {
	srv := httptest.NewServer(NewServer().Handler())
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}

	if _, err := client.FetchImage(context.Background(), "nope"); err == nil {
		t.Error("missing image fetch succeeded")
	}
	if _, err := client.FetchParams(context.Background(), "nope"); err == nil {
		t.Error("missing params fetch succeeded")
	}

	// Garbage upload bodies.
	for _, body := range []string{"not json", `{"image":"", "params":null}`} {
		resp, err := http.Post(srv.URL+"/v1/images", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("garbage upload %q accepted", body)
		}
	}

	// Valid JSON but broken JPEG bytes.
	req, _ := json.Marshal(UploadRequest{Image: []byte("not a jpeg"), Params: nil})
	resp, err := http.Post(srv.URL+"/v1/images", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("broken JPEG upload: status %d", resp.StatusCode)
	}
}

func TestBadTransformSpecRejected(t *testing.T) {
	client, _, perturbed, pd, _ := fixture(t)
	id, err := client.Upload(context.Background(), perturbed, pd, jpegc.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.FetchTransformed(context.Background(), id, transform.Spec{Op: "nonsense"}); err == nil {
		t.Error("nonsense spec accepted")
	}
	if _, err := client.FetchTransformedPixels(context.Background(), id, transform.Spec{Op: transform.OpCompress, Quality: 50}); err == nil {
		t.Error("compression via pixels endpoint accepted")
	}
	// Raw query with undecodable spec JSON.
	resp, err := http.Get(client.BaseURL + "/v1/images/" + id + "/transformed?spec=%7Bnope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed spec query: status %d", resp.StatusCode)
	}
}

func TestPlanarBinaryRoundTrip(t *testing.T) {
	img := testPlanar(31, 17)
	img.Planes[0].Pix[5] = -1234.5
	img.Planes[2].Pix[9] = 99999
	data, err := img.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := imgplane.DecodeBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for ci := range img.Planes {
		for i := range img.Planes[ci].Pix {
			if back.Planes[ci].Pix[i] != img.Planes[ci].Pix[i] {
				t.Fatalf("sample (%d,%d) changed", ci, i)
			}
		}
	}
	if _, err := imgplane.DecodeBinary(bytes.NewReader(data[:10])); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := imgplane.DecodeBinary(bytes.NewReader([]byte("XXXXgarbage padding p"))); err == nil {
		t.Error("bad magic accepted")
	}
}
