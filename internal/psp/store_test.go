package psp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"puppies/internal/core"
	"puppies/internal/jpegc"
)

func TestMemStoreKeyIndexLRUCap(t *testing.T) {
	m := NewMemStoreBounded(3, 0, nil)
	for i := 0; i < 3; i++ {
		if _, err := m.Put(fmt.Sprintf("id%d", i), []byte{1}, nil, fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so it becomes most-recently-used; k1 is now the LRU victim.
	if _, ok := m.IDForKey("k0"); !ok {
		t.Fatal("k0 missing")
	}
	if _, err := m.Put("id3", []byte{1}, nil, "k3"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.IDForKey("k1"); ok {
		t.Error("k1 survived past the cap (LRU not honored)")
	}
	if _, ok := m.IDForKey("k0"); !ok {
		t.Error("recently used k0 evicted")
	}
	if got := m.KeyCount(); got != 3 {
		t.Errorf("KeyCount = %d, want 3", got)
	}
	// Images themselves are never evicted — only the dedupe index is.
	if m.Len() != 4 {
		t.Errorf("Len = %d, want 4", m.Len())
	}
}

func TestMemStoreKeyTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	m := NewMemStoreBounded(100, time.Minute, clock)
	if _, err := m.Put("a", []byte{1}, nil, "key"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.IDForKey("key"); !ok {
		t.Fatal("fresh key missing")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := m.IDForKey("key"); ok {
		t.Fatal("expired key still resolves")
	}
	// Expired key falls back to a normal store: the image is duplicated,
	// never lost.
	id, err := m.Put("b", []byte{2}, nil, "key")
	if err != nil || id != "b" {
		t.Fatalf("post-expiry Put = %q, %v", id, err)
	}
}

func TestMemStoreZeroCapDisablesIndex(t *testing.T) {
	m := NewMemStoreBounded(0, 0, nil)
	if _, err := m.Put("a", []byte{1}, nil, "key"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.IDForKey("key"); ok {
		t.Fatal("disabled index resolved a key")
	}
	if m.Len() != 1 {
		t.Fatal("image not stored")
	}
}

// uploadRaw posts an upload body directly, bypassing Client-side encoding,
// and returns the assigned ID.
func uploadRaw(t *testing.T, baseURL string, jpeg, params []byte) string {
	t.Helper()
	body, err := json.Marshal(UploadRequest{Image: jpeg, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/images", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: HTTP %d: %s", resp.StatusCode, raw)
	}
	var up UploadResponse
	if err := json.Unmarshal(raw, &up); err != nil {
		t.Fatal(err)
	}
	return up.ID
}

// TestParamsVersionRoundTrip drives the versioned public-parameter envelope
// through a real client/server round trip: Upload stamps the current
// version, FetchParams accepts it, and a future-version document fetched
// from the (opaque-storage) PSP surfaces the typed ErrUnsupportedVersion.
func TestParamsVersionRoundTrip(t *testing.T) {
	client, _, perturbed, pd, _ := fixture(t)
	ctx := context.Background()

	id, err := client.Upload(ctx, perturbed, pd, jpegc.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.FetchParams(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != core.PublicDataVersion {
		t.Fatalf("fetched params version = %d, want %d", got.Version, core.PublicDataVersion)
	}
}

func TestParamsFutureVersionRejectedTyped(t *testing.T) {
	srv := httptest.NewServer(NewServer().Handler())
	t.Cleanup(srv.Close)
	client := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	// Hand-craft a future-version params document. The PSP stores params
	// opaquely (privacy by design), so the version gate lives client-side.
	_, _, perturbed, pd, _ := fixture(t)
	raw, err := pd.Encode()
	if err != nil {
		t.Fatal(err)
	}
	future := bytes.Replace(raw, []byte(`"v":1`), []byte(`"v":999`), 1)
	if bytes.Equal(future, raw) {
		t.Fatal("failed to bump version in fixture params")
	}
	var buf bytes.Buffer
	if err := perturbed.Encode(&buf, jpegc.EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	id := uploadRaw(t, srv.URL, buf.Bytes(), future)

	_, err = client.FetchParams(ctx, id)
	if !errors.Is(err, core.ErrUnsupportedVersion) {
		t.Fatalf("FetchParams on future version = %v, want ErrUnsupportedVersion", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future-version error should still classify as ErrCorrupt for fallback logic, got %v", err)
	}
}
