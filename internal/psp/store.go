package psp

import (
	"container/list"
	"sync"
	"time"
)

// Store abstracts where the PSP keeps uploaded records. Two implementations
// exist: MemStore (this file, ephemeral) and blobstore.Store (crash-safe on
// disk); both are structural matches for this interface so the server never
// imports the storage package.
//
// Contract: Put either persists (id, jpeg, params) and returns id, or — when
// key is non-empty and already assigned — returns the original id without
// storing a duplicate. Put must be atomic with respect to the key index so
// concurrent retries of one upload cannot both store. Byte slices returned
// by Get alias store-internal buffers and must not be mutated.
type Store interface {
	Put(id string, jpeg, params []byte, key string) (string, error)
	Get(id string) (jpeg, params []byte, ok bool, err error)
	IDForKey(key string) (string, bool)
	IDs() []string
	Len() int
}

// Idempotency-index bounds for MemStore. A long-running server must not
// grow the key index without limit: entries are evicted least-recently-used
// beyond MaxKeys and lazily expired after KeyTTL. An evicted or expired key
// falls back to normal upload semantics — the retry stores a fresh copy
// under a new ID, which wastes a little space but never loses data.
const (
	DefaultMaxKeys = 1 << 16
	DefaultKeyTTL  = 24 * time.Hour
)

// MemStore is the ephemeral in-memory Store (the original map-based PSP
// storage). It is safe for concurrent use.
type MemStore struct {
	mu      sync.Mutex
	entries map[string]*entry
	keys    *keyIndex
}

// NewMemStore returns an empty store with default idempotency bounds.
func NewMemStore() *MemStore {
	return NewMemStoreBounded(DefaultMaxKeys, DefaultKeyTTL, nil)
}

// NewMemStoreBounded configures the idempotency-index cap and TTL. maxKeys
// <= 0 disables the index; ttl <= 0 disables expiry; now is stubbed in
// tests (nil means time.Now).
func NewMemStoreBounded(maxKeys int, ttl time.Duration, now func() time.Time) *MemStore {
	return &MemStore{
		entries: make(map[string]*entry),
		keys:    newKeyIndex(maxKeys, ttl, now),
	}
}

// Put implements Store.
func (m *MemStore) Put(id string, jpeg, params []byte, key string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if key != "" {
		if prev, ok := m.keys.get(key); ok {
			return prev, nil
		}
	}
	m.entries[id] = &entry{jpeg: jpeg, params: params}
	if key != "" {
		m.keys.put(key, id)
	}
	return id, nil
}

// Get implements Store.
func (m *MemStore) Get(id string) (jpeg, params []byte, ok bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if !ok {
		return nil, nil, false, nil
	}
	return e.jpeg, e.params, true, nil
}

// IDForKey implements Store.
func (m *MemStore) IDForKey(key string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.keys.get(key)
}

// IDs implements Store.
func (m *MemStore) IDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.entries))
	for id := range m.entries {
		out = append(out, id)
	}
	return out
}

// Len implements Store.
func (m *MemStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// KeyCount reports the live idempotency-index size (tests).
func (m *MemStore) KeyCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.keys.len()
}

// keyIndex is a TTL + LRU bounded string map. Callers provide locking.
type keyIndex struct {
	maxKeys int
	ttl     time.Duration
	now     func() time.Time

	byKey map[string]*list.Element
	order *list.List // front = most recently used
}

type keyEntry struct {
	key, id string
	stamp   time.Time
}

func newKeyIndex(maxKeys int, ttl time.Duration, now func() time.Time) *keyIndex {
	if now == nil {
		now = time.Now
	}
	return &keyIndex{
		maxKeys: maxKeys,
		ttl:     ttl,
		now:     now,
		byKey:   make(map[string]*list.Element),
		order:   list.New(),
	}
}

func (k *keyIndex) get(key string) (string, bool) {
	el, ok := k.byKey[key]
	if !ok {
		return "", false
	}
	ke := el.Value.(*keyEntry)
	if k.ttl > 0 && k.now().Sub(ke.stamp) > k.ttl {
		k.order.Remove(el)
		delete(k.byKey, key)
		return "", false
	}
	k.order.MoveToFront(el)
	return ke.id, true
}

func (k *keyIndex) put(key, id string) {
	if k.maxKeys <= 0 {
		return
	}
	if el, ok := k.byKey[key]; ok {
		el.Value.(*keyEntry).id = id
		el.Value.(*keyEntry).stamp = k.now()
		k.order.MoveToFront(el)
		return
	}
	k.byKey[key] = k.order.PushFront(&keyEntry{key: key, id: id, stamp: k.now()})
	for len(k.byKey) > k.maxKeys {
		oldest := k.order.Back()
		if oldest == nil {
			break
		}
		k.order.Remove(oldest)
		delete(k.byKey, oldest.Value.(*keyEntry).key)
	}
}

func (k *keyIndex) len() int { return len(k.byKey) }
