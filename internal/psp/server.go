// Package psp simulates the Photo Sharing Platform of the paper's system
// architecture (Fig. 5): an HTTP service that stores perturbed images plus
// their public parameters and performs ordinary image transformations on
// request — with no knowledge of PuPPIeS whatsoever. The PSP only ever
// touches (a) opaque JPEG bytes, (b) opaque parameter JSON, and (c) the
// generic transform library; this separation is the paper's semi-honest
// threat model made concrete.
package psp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"puppies/internal/admission"
	"puppies/internal/jpegc"
	"puppies/internal/searchidx"
	"puppies/internal/stats"
	"puppies/internal/transform"
)

// DefaultMaxUpload bounds request and response bodies unless overridden.
const DefaultMaxUpload = 64 << 20

// idempotencyHeader carries the client-generated key that lets the server
// deduplicate retried uploads.
const idempotencyHeader = "Idempotency-Key"

type entry struct {
	jpeg   []byte
	params json.RawMessage
}

// Server is the PSP HTTP service over a pluggable Store.
type Server struct {
	// MaxUpload caps upload body size in bytes; larger requests get
	// HTTP 413. Zero means DefaultMaxUpload. Set before Handler is used.
	MaxUpload int64

	// VariantCacheBytes budgets the encoded-output cache (re-encoded
	// transform JPEGs and pixel payloads) and CoeffCacheBytes the
	// decoded-coefficient cache. Zero means the package defaults;
	// negative disables that cache. Set before the first request.
	VariantCacheBytes int64
	CoeffCacheBytes   int64

	// DrainRetryAfter is the Retry-After hint healthz sends while
	// draining. Zero means 1 second. Set before Handler is used.
	DrainRetryAfter time.Duration

	// MaxInflight caps concurrently served requests in weighted units
	// (transform routes count double — see routeWeights). Requests beyond
	// it queue briefly and are then shed with 429 + Retry-After. Zero means
	// DefaultInflightPerProc per GOMAXPROCS; negative disables admission
	// control. Set before Handler is used.
	MaxInflight int
	// AdmitWait bounds how long a request may queue for admission before
	// being shed. Zero means admission.DefaultMaxWait.
	AdmitWait time.Duration
	// AdmitQueue bounds the admission wait queue; arrivals beyond it shed
	// instantly. Zero means admission.DefaultQueueFactor times capacity.
	AdmitQueue int
	// AdmitRetryAfter is the base Retry-After hint on shed responses (the
	// effective hint scales with queue depth). Zero means
	// admission.DefaultRetryAfter.
	AdmitRetryAfter time.Duration

	// SearchIndex, when set before the first request, backs /v1/search —
	// e.g. a durable searchidx.OpenDir index that pspd snapshots across
	// restarts. Nil means a fresh in-memory index.
	SearchIndex *searchidx.Index

	// DisableScaledDecode forces every /transformed compute down the
	// full-resolution path, bypassing the scaled-decode planner
	// (transform.ApplyPlanned). Serving stays correct either way — the knob
	// exists for benchmarking the pre-planner baseline and as an
	// operational escape hatch. Set before Handler is used.
	DisableScaledDecode bool

	searchOnce    sync.Once
	searchQueries atomic.Uint64
	searchHits    atomic.Uint64

	storeOnce sync.Once
	store     Store

	cacheOnce sync.Once
	scache    *serveCache

	admitOnce sync.Once
	admit     *admission.Controller

	latOnce sync.Once
	lat     map[string]*stats.Histogram

	draining atomic.Bool
}

// DefaultInflightPerProc scales the default admission capacity: weighted
// units of concurrently served requests per GOMAXPROCS. Generous on purpose
// — admission control exists to stop queue collapse under extreme overload,
// not to throttle ordinary bursts.
const DefaultInflightPerProc = 16

// Route names used for admission weights and latency histograms.
const (
	routeUpload      = "upload"
	routeBatch       = "batch"
	routePut         = "put"
	routeList        = "list"
	routeGet         = "get"
	routeParams      = "params"
	routeTransformed = "transformed"
	routePixels      = "pixels"
	routeSearch      = "search"
)

// routeWeights prices each route in admission units: transform routes do
// decode + DCT-domain work and are roughly twice the cost of a store
// read/write. The batch envelope is free (weight 0) — each batch item
// acquires its own unit inside the worker pool, so a batch sheds per item
// instead of all-or-nothing.
var routeWeights = map[string]int{
	routeUpload:      1,
	routeBatch:       0,
	routePut:         1,
	routeList:        1,
	routeGet:         1,
	routeParams:      1,
	routeTransformed: 2,
	routePixels:      2,
	// Search by image bytes decodes a JPEG like the transform routes do;
	// the by-ID form is cheaper but shares the route.
	routeSearch: 2,
}

// admission returns the admission controller, built on first use from the
// configured knobs. A negative MaxInflight yields nil, which admits
// everything.
func (s *Server) admission() *admission.Controller {
	s.admitOnce.Do(func() {
		if s.MaxInflight < 0 {
			return
		}
		capacity := s.MaxInflight
		if capacity == 0 {
			capacity = DefaultInflightPerProc * runtime.GOMAXPROCS(0)
		}
		s.admit = admission.New(admission.Config{
			Capacity:   capacity,
			MaxWait:    s.AdmitWait,
			MaxQueue:   s.AdmitQueue,
			RetryAfter: s.AdmitRetryAfter,
		})
		s.admit.SetDraining(s.draining.Load())
	})
	return s.admit
}

// latency returns the route's histogram; routes are fixed so the map is
// built once and only ever read afterwards.
func (s *Server) latency(route string) *stats.Histogram {
	s.latOnce.Do(func() {
		s.lat = make(map[string]*stats.Histogram, len(routeWeights))
		for name := range routeWeights {
			s.lat[name] = &stats.Histogram{}
		}
	})
	return s.lat[route]
}

// withAdmission fronts a handler with admission control and latency
// recording. Shed requests answer 429 with a Retry-After hint and the
// overloaded error class; admitted requests release their units when the
// handler returns and record wall time into the route histogram.
func (s *Server) withAdmission(route string, h http.HandlerFunc) http.HandlerFunc {
	weight := routeWeights[route]
	hist := s.latency(route)
	return func(w http.ResponseWriter, r *http.Request) {
		if weight > 0 {
			ctl := s.admission()
			release, out := ctl.Acquire(r.Context(), weight)
			if out != admission.Admitted {
				writeOverloaded(w, ctl.RetryAfterHint(), out)
				return
			}
			defer release()
		}
		start := time.Now()
		h(w, r)
		hist.Record(time.Since(start))
	}
}

// writeOverloaded is the one shed response shape: 429, a fractional-seconds
// Retry-After the client honors exactly, and the overloaded error class so
// StatusError maps it to ErrOverloaded.
func writeOverloaded(w http.ResponseWriter, hint time.Duration, out admission.Outcome) {
	if hint > 0 {
		w.Header().Set("Retry-After", strconv.FormatFloat(hint.Seconds(), 'f', 3, 64))
	}
	w.Header().Set(errorClassHeader, errorClassOverloaded)
	httpError(w, http.StatusTooManyRequests, "overloaded (%s)", out)
}

// SetDraining flips the server into (or out of) draining mode: GET
// /v1/healthz answers 503 with a Retry-After hint while every other route
// keeps serving. Flipping this the moment shutdown begins lets routing
// gateways stop sending new traffic before in-flight requests finish.
// Admission tightens too: requests that would have to queue are shed
// immediately, so shutdown never grows a backlog it is about to abandon.
func (s *Server) SetDraining(v bool) {
	s.draining.Store(v)
	s.admission().SetDraining(v)
}

// NewServer returns a PSP over an ephemeral in-memory store.
func NewServer() *Server {
	return NewServerWith(NewMemStore())
}

// NewServerWith returns a PSP over the given store — e.g. a
// blobstore.Store for crash-safe durability.
func NewServerWith(st Store) *Server {
	s := &Server{}
	s.storeOnce.Do(func() {}) // mark initialized
	s.store = st
	return s
}

// st returns the store, lazily defaulting a zero-value Server to memory.
func (s *Server) st() Store {
	s.storeOnce.Do(func() { s.store = NewMemStore() })
	return s.store
}

// cache returns the serving-path cache layer, built on first use from the
// configured budgets.
func (s *Server) cache() *serveCache {
	s.cacheOnce.Do(func() {
		s.scache = newServeCache(
			budgetOrDefault(s.VariantCacheBytes, DefaultVariantCacheBytes),
			budgetOrDefault(s.CoeffCacheBytes, DefaultCoeffCacheBytes),
		)
	})
	return s.scache
}

// CacheStats snapshots the serving-cache counters (the /v1/statz body).
func (s *Server) CacheStats() CacheStatsResponse {
	return s.cache().statsResponse()
}

// Len reports how many images are stored.
func (s *Server) Len() int { return s.st().Len() }

func (s *Server) maxUpload() int64 {
	if s.MaxUpload > 0 {
		return s.MaxUpload
	}
	return DefaultMaxUpload
}

// UploadRequest is the POST /v1/images body.
type UploadRequest struct {
	// Image is the perturbed JPEG bytes (base64 in JSON).
	Image []byte `json:"image"`
	// Params is the opaque public-parameter document.
	Params json.RawMessage `json:"params"`
}

// UploadResponse carries the assigned image ID, plus the near-duplicate
// hint when the signature index already held a close match: DuplicateOf
// names the earlier image and Distance its signature distance. The upload
// is stored either way — deduplication is the caller's decision.
type UploadResponse struct {
	ID          string `json:"id"`
	DuplicateOf string `json:"duplicateOf,omitempty"`
	Distance    uint32 `json:"distance,omitempty"`
}

// ListResponse is the GET /v1/images body.
type ListResponse struct {
	IDs []string `json:"ids"`
}

// HealthResponse is the GET /v1/healthz body.
type HealthResponse struct {
	Status string `json:"status"`
	Images int    `json:"images"`
}

// Handler returns the HTTP API:
//
//	GET  /v1/healthz                     liveness + store size
//	GET  /v1/statz                       serving-cache statistics
//	GET  /v1/images                      list stored image IDs
//	POST /v1/images                      upload {image, params} -> {id}
//	POST /v1/images:batch                multipart streaming batch upload;
//	                                     each part is one upload body, parts
//	                                     validate in parallel (see batch.go)
//	PUT  /v1/images/{id}                 store under a caller-chosen ID
//	                                     (idempotent; 409 on byte conflict)
//	GET  /v1/images/{id}                 stored JPEG bytes
//	GET  /v1/images/{id}/params          public parameters
//	GET  /v1/images/{id}/transformed?spec=J  transformed, re-encoded JPEG
//	GET  /v1/images/{id}/pixels?spec=J   transformed pixels, lossless PLNR
//	GET  /v1/search?id=X&k=K             k-NN over the signature index
//	POST /v1/search?k=K                  same, querying by image bytes
//	                                     (raw image/jpeg body or an
//	                                     UploadRequest JSON document)
//
// where J is a URL-encoded transform.Spec JSON document. Uploads may carry
// an Idempotency-Key header; repeats with the same key return the
// originally assigned ID without storing a second copy.
//
// Image representations are immutable, so every image GET carries a strong
// ETag and Cache-Control: immutable, and honors If-None-Match with 304.
// Transformed and pixel outputs are served through the cache layer (see
// cache.go): an encoded-variant LRU over a decoded-coefficient LRU, with
// concurrent identical requests collapsed into one computation.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// healthz and statz bypass admission: they are how operators and
	// gateways observe an overloaded server, so they must answer even when
	// everything else sheds.
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statz", s.handleStatz)
	mux.HandleFunc("GET /v1/images", s.withAdmission(routeList, s.handleList))
	mux.HandleFunc("POST /v1/images", s.withAdmission(routeUpload, s.handleUpload))
	mux.HandleFunc("POST /v1/images:batch", s.withAdmission(routeBatch, s.handleBatch))
	mux.HandleFunc("PUT /v1/images/{id}", s.withAdmission(routePut, s.handlePutImage))
	mux.HandleFunc("GET /v1/images/{id}", s.withAdmission(routeGet, s.handleGet))
	mux.HandleFunc("GET /v1/images/{id}/params", s.withAdmission(routeParams, s.handleParams))
	mux.HandleFunc("GET /v1/images/{id}/transformed", s.withAdmission(routeTransformed, s.handleTransformed))
	mux.HandleFunc("GET /v1/images/{id}/pixels", s.withAdmission(routePixels, s.handlePixels))
	mux.HandleFunc("GET /v1/search", s.withAdmission(routeSearch, s.handleSearch))
	mux.HandleFunc("POST /v1/search", s.withAdmission(routeSearch, s.handleSearch))
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		retry := s.DrainRetryAfter
		if retry <= 0 {
			retry = time.Second
		}
		secs := int64((retry + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(HealthResponse{Status: "draining", Images: s.Len()})
		return
	}
	_ = json.NewEncoder(w).Encode(HealthResponse{Status: "ok", Images: s.Len()})
}

// StatzResponse is the GET /v1/statz body: cache statistics plus admission
// counters and per-route latency quantiles.
type StatzResponse struct {
	CacheStatsResponse
	Admission admission.Stats                    `json:"admission"`
	Search    SearchStats                        `json:"search"`
	LatencyNs map[string]stats.HistogramSnapshot `json:"latencyNs"`
}

// Statz snapshots the full server statistics (the /v1/statz body).
func (s *Server) Statz() StatzResponse {
	lat := make(map[string]stats.HistogramSnapshot, len(routeWeights))
	for name := range routeWeights {
		if h := s.latency(name); h.Count() > 0 {
			lat[name] = h.Snapshot()
		}
	}
	return StatzResponse{
		CacheStatsResponse: s.CacheStats(),
		Admission:          s.admission().Stats(),
		Search:             s.searchStats(),
		LatencyNs:          lat,
	}
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Statz())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ids := s.st().IDs()
	sort.Strings(ids)
	if ids == nil {
		ids = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ListResponse{IDs: ids})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	limit := s.maxUpload()
	// Read one byte past the limit so oversized bodies are detected
	// rather than silently truncated into undecodable JSON.
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > limit {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", limit)
		return
	}
	res := s.storeOne(body, strings.TrimSpace(r.Header.Get(idempotencyHeader)))
	if res.Error != "" {
		httpError(w, res.Status, "%s", res.Error)
		return
	}
	writeUploadResponse(w, res)
}

func writeUploadResponse(w http.ResponseWriter, res BatchResult) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(UploadResponse{ID: res.ID, DuplicateOf: res.DuplicateOf, Distance: res.Distance}); err != nil {
		return
	}
}

// validImageID bounds caller-chosen IDs for PUT /v1/images/{id} to names
// every Store implementation accepts (blobstore uses IDs as file names).
func validImageID(id string) error {
	if id == "" || len(id) > 100 {
		return fmt.Errorf("id length %d out of range [1,100]", len(id))
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("id contains unsafe character %q", r)
		}
	}
	if strings.HasPrefix(id, ".") {
		return errors.New("id may not start with a dot")
	}
	return nil
}

// paramsEqual compares two public-parameter documents, treating absent,
// empty, and JSON null as the same thing (the /params route serves "null"
// for an absent document, so replication round-trips through it).
func paramsEqual(a, b json.RawMessage) bool {
	norm := func(p json.RawMessage) []byte {
		t := bytes.TrimSpace(p)
		if len(t) == 0 || bytes.Equal(t, []byte("null")) {
			return nil
		}
		return t
	}
	return bytes.Equal(norm(a), norm(b))
}

// handlePutImage stores an upload under a caller-chosen ID — the
// replication primitive the cluster gateway builds on. Semantics are
// compare-on-conflict idempotent: a PUT of bytes identical to the stored
// record answers 200 with the ID (so retries, re-replication, and read
// repair all converge), while a PUT of different bytes under an existing ID
// answers 409 and never overwrites. An Idempotency-Key is honored exactly
// like POST's.
func (s *Server) handlePutImage(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := validImageID(id); err != nil {
		httpError(w, http.StatusBadRequest, "bad image id: %v", err)
		return
	}
	limit := s.maxUpload()
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > limit {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", limit)
		return
	}
	var req UploadRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if len(req.Image) == 0 {
		httpError(w, http.StatusBadRequest, "empty image")
		return
	}

	key := strings.TrimSpace(r.Header.Get(idempotencyHeader))
	if key != "" {
		if prev, seen := s.st().IDForKey(key); seen {
			writeUploadResponse(w, BatchResult{ID: prev})
			return
		}
	}

	// An existing record under this ID decides the request without a
	// store write: identical bytes are an idempotent success, different
	// bytes are a conflict that must never be silently overwritten.
	if jpeg, params, ok, err := s.st().Get(id); err != nil {
		httpError(w, http.StatusInternalServerError, "store: %v", err)
		return
	} else if ok {
		if bytes.Equal(jpeg, req.Image) && paramsEqual(params, req.Params) {
			writeUploadResponse(w, BatchResult{ID: id})
			return
		}
		httpError(w, http.StatusConflict, "image %q already stored with different content", id)
		return
	}

	img, err := jpegc.Decode(bytes.NewReader(req.Image))
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "not a decodable baseline JPEG: %v", err)
		return
	}
	// Replicas index too: the gateway's scatter-gather search only degrades
	// gracefully if every shard holding a copy can answer for it.
	sig := searchidx.Compute(img, req.Params)
	img.Recycle()
	canonical, err := s.st().Put(id, req.Image, req.Params, key)
	if err != nil {
		// A concurrent PUT may have stored the ID between the check and
		// the write (blobstore refuses duplicate IDs). Re-read and apply
		// the same compare-on-conflict rule instead of failing the retry.
		if jpeg, params, ok, gerr := s.st().Get(id); gerr == nil && ok {
			if bytes.Equal(jpeg, req.Image) && paramsEqual(params, req.Params) {
				writeUploadResponse(w, BatchResult{ID: id})
				return
			}
			httpError(w, http.StatusConflict, "image %q already stored with different content", id)
			return
		}
		httpError(w, http.StatusInternalServerError, "store: %v", err)
		return
	}
	s.searchIdx().Add(canonical, sig)
	writeUploadResponse(w, BatchResult{ID: canonical})
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *entry {
	id := r.PathValue("id")
	jpeg, params, ok, err := s.st().Get(id)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "store: %v", err)
		return nil
	}
	if !ok {
		httpError(w, http.StatusNotFound, "image %q not found", id)
		return nil
	}
	return &entry{jpeg: jpeg, params: params}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	etag := strongETag("R", id, "")
	sc := s.cache()
	// The raw bytes live in the store already; the conditional check still
	// needs the lookup so an unknown ID stays a 404, not a bogus 304.
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	sc.serveBytes(w, r, etag, "image/jpeg", e.jpeg)
}

func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	etag := strongETag("M", id, "")
	sc := s.cache()
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	body := []byte(e.params)
	if len(body) == 0 {
		body = []byte("null")
	}
	sc.serveBytes(w, r, etag, "application/json", body)
}

func parseSpec(r *http.Request) (transform.Spec, error) {
	raw := r.URL.Query().Get("spec")
	if strings.TrimSpace(raw) == "" {
		return transform.Spec{Op: transform.OpNone}, nil
	}
	var spec transform.Spec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		return transform.Spec{}, err
	}
	return spec, nil
}

// handlerError carries an HTTP status (and optional error class) out of a
// singleflight computation so every collapsed waiter reports it the same
// way.
type handlerError struct {
	code  int
	class string
	msg   string
}

func (e *handlerError) Error() string { return e.msg }

// writeComputeError maps a computation failure onto the HTTP response; a
// classed error additionally sets the X-PSP-Error-Class header so clients
// type it (e.g. a corrupt stored image becomes ErrCorrupt, not a retried
// 500).
func writeComputeError(w http.ResponseWriter, err error) {
	var he *handlerError
	if errors.As(err, &he) {
		if he.class != "" {
			w.Header().Set(errorClassHeader, he.class)
		}
		httpError(w, he.code, "%s", he.msg)
		return
	}
	httpError(w, http.StatusInternalServerError, "%v", err)
}

// corruptStoredError marks a stored image that no longer decodes: upload
// validated it, so this is storage-layer damage. Served as a 500 with the
// corrupt class — terminal for retry logic, not a transient failure.
func corruptStoredError(err error) *handlerError {
	return &handlerError{
		code:  http.StatusInternalServerError,
		class: errorClassCorrupt,
		msg:   fmt.Sprintf("stored image corrupt: %v", err),
	}
}

// serveVariant is the shared serving path of /transformed and /pixels:
// variant-cache fast path, conditional GET, then singleflight-collapsed
// compute with the result admitted to the cache.
func (s *Server) serveVariant(w http.ResponseWriter, r *http.Request, route, contentType string, compute func(e *entry, spec transform.Spec) ([]byte, error)) {
	id := r.PathValue("id")
	spec, err := parseSpec(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if route == "P" && spec.Op == transform.OpCompress {
		httpError(w, http.StatusBadRequest, "compression has no pixel form; use /transformed")
		return
	}
	key := variantKey(route, id, spec.Key())
	etag := strongETag(route, id, spec.Key())
	sc := s.cache()

	// Hot path: encoded bytes already cached — no store read, no decode.
	if body, ok := sc.variants.Get(key); ok {
		sc.serveBytes(w, r, etag, contentType, body)
		return
	}
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	// The image exists and is immutable, so a matching validator is
	// authoritative even though the variant bytes were never computed (or
	// were evicted): the client already holds them.
	if etagMatches(r, etag) {
		sc.writeNotModified(w, etag)
		return
	}
	body, err, _ := sc.tflight.Do(key, func() ([]byte, error) {
		if body, ok := sc.variants.Get(key); ok {
			return body, nil
		}
		body, err := compute(e, spec)
		if err != nil {
			return nil, err
		}
		sc.transformsComputed.Add(1)
		sc.variants.Add(key, body, int64(len(body)))
		return body, nil
	})
	if err != nil {
		writeComputeError(w, err)
		return
	}
	sc.serveBytes(w, r, etag, contentType, body)
}

func (s *Server) handleTransformed(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.serveVariant(w, r, "T", "image/jpeg", func(e *entry, spec transform.Spec) ([]byte, error) {
		img, err := s.cache().decodeStored(id, e.jpeg)
		if err != nil {
			return nil, corruptStoredError(err)
		}
		out, err := s.applyTransform(e, img, spec)
		if err != nil {
			return nil, &handlerError{code: http.StatusBadRequest, msg: fmt.Sprintf("transform: %v", err)}
		}
		buf := getBuf()
		defer putBuf(buf)
		if err := out.Encode(buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
			return nil, &handlerError{code: http.StatusInternalServerError, msg: fmt.Sprintf("encode: %v", err)}
		}
		return cloneBytes(buf), nil
	})
}

// applyTransform executes a /transformed compute, routing eligible
// downscales of unprotected images through the scaled-decode planner.
// Protected images (those stored with public parameters) always take the
// full path: authorized receivers run shadow-ROI recovery against the
// transformed bytes we serve, and that arithmetic needs the exact
// full-resolution transform definition, not a planner-equivalent image.
// The path choice depends only on immutable per-image state and the spec,
// so a given variant cache key always computes the same bytes.
func (s *Server) applyTransform(e *entry, img *jpegc.Image, spec transform.Spec) (*jpegc.Image, error) {
	if s.DisableScaledDecode || !paramsEqual(e.params, nil) {
		return transform.Apply(img, spec)
	}
	return transform.ApplyPlanned(img, spec)
}

func (s *Server) handlePixels(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.serveVariant(w, r, "P", "application/octet-stream", func(e *entry, spec transform.Spec) ([]byte, error) {
		img, err := s.cache().decodeStored(id, e.jpeg)
		if err != nil {
			return nil, corruptStoredError(err)
		}
		// Recovery-grade route: receivers subtract shadow planes computed
		// with the full-resolution ApplyPlanar, so this path never takes
		// the scaled-decode planner.
		pix, err := img.ToPlanar()
		if err != nil {
			return nil, &handlerError{code: http.StatusInternalServerError, msg: fmt.Sprintf("decode: %v", err)}
		}
		out, err := transform.ApplyPlanar(pix, spec)
		if err != nil {
			return nil, &handlerError{code: http.StatusBadRequest, msg: fmt.Sprintf("transform: %v", err)}
		}
		buf := getBuf()
		defer putBuf(buf)
		if err := out.EncodeBinary(buf); err != nil {
			return nil, &handlerError{code: http.StatusInternalServerError, msg: fmt.Sprintf("encode: %v", err)}
		}
		return cloneBytes(buf), nil
	})
}
