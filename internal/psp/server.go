// Package psp simulates the Photo Sharing Platform of the paper's system
// architecture (Fig. 5): an HTTP service that stores perturbed images plus
// their public parameters and performs ordinary image transformations on
// request — with no knowledge of PuPPIeS whatsoever. The PSP only ever
// touches (a) opaque JPEG bytes, (b) opaque parameter JSON, and (c) the
// generic transform library; this separation is the paper's semi-honest
// threat model made concrete.
package psp

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"puppies/internal/jpegc"
	"puppies/internal/transform"
)

// DefaultMaxUpload bounds request and response bodies unless overridden.
const DefaultMaxUpload = 64 << 20

// idempotencyHeader carries the client-generated key that lets the server
// deduplicate retried uploads.
const idempotencyHeader = "Idempotency-Key"

type entry struct {
	jpeg   []byte
	params json.RawMessage
}

// Server is the PSP HTTP service over a pluggable Store.
type Server struct {
	// MaxUpload caps upload body size in bytes; larger requests get
	// HTTP 413. Zero means DefaultMaxUpload. Set before Handler is used.
	MaxUpload int64

	storeOnce sync.Once
	store     Store
}

// NewServer returns a PSP over an ephemeral in-memory store.
func NewServer() *Server {
	return NewServerWith(NewMemStore())
}

// NewServerWith returns a PSP over the given store — e.g. a
// blobstore.Store for crash-safe durability.
func NewServerWith(st Store) *Server {
	s := &Server{}
	s.storeOnce.Do(func() {}) // mark initialized
	s.store = st
	return s
}

// st returns the store, lazily defaulting a zero-value Server to memory.
func (s *Server) st() Store {
	s.storeOnce.Do(func() { s.store = NewMemStore() })
	return s.store
}

// Len reports how many images are stored.
func (s *Server) Len() int { return s.st().Len() }

func (s *Server) maxUpload() int64 {
	if s.MaxUpload > 0 {
		return s.MaxUpload
	}
	return DefaultMaxUpload
}

// UploadRequest is the POST /v1/images body.
type UploadRequest struct {
	// Image is the perturbed JPEG bytes (base64 in JSON).
	Image []byte `json:"image"`
	// Params is the opaque public-parameter document.
	Params json.RawMessage `json:"params"`
}

// UploadResponse carries the assigned image ID.
type UploadResponse struct {
	ID string `json:"id"`
}

// ListResponse is the GET /v1/images body.
type ListResponse struct {
	IDs []string `json:"ids"`
}

// HealthResponse is the GET /v1/healthz body.
type HealthResponse struct {
	Status string `json:"status"`
	Images int    `json:"images"`
}

// Handler returns the HTTP API:
//
//	GET  /v1/healthz                     liveness + store size
//	GET  /v1/images                      list stored image IDs
//	POST /v1/images                      upload {image, params} -> {id}
//	GET  /v1/images/{id}                 stored JPEG bytes
//	GET  /v1/images/{id}/params          public parameters
//	GET  /v1/images/{id}/transformed?spec=J  transformed, re-encoded JPEG
//	GET  /v1/images/{id}/pixels?spec=J   transformed pixels, lossless PLNR
//
// where J is a URL-encoded transform.Spec JSON document. Uploads may carry
// an Idempotency-Key header; repeats with the same key return the
// originally assigned ID without storing a second copy.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/images", s.handleList)
	mux.HandleFunc("POST /v1/images", s.handleUpload)
	mux.HandleFunc("GET /v1/images/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/images/{id}/params", s.handleParams)
	mux.HandleFunc("GET /v1/images/{id}/transformed", s.handleTransformed)
	mux.HandleFunc("GET /v1/images/{id}/pixels", s.handlePixels)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(HealthResponse{Status: "ok", Images: s.Len()})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ids := s.st().IDs()
	sort.Strings(ids)
	if ids == nil {
		ids = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ListResponse{IDs: ids})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	limit := s.maxUpload()
	// Read one byte past the limit so oversized bodies are detected
	// rather than silently truncated into undecodable JSON.
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > limit {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", limit)
		return
	}
	var req UploadRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if len(req.Image) == 0 {
		httpError(w, http.StatusBadRequest, "empty image")
		return
	}

	key := strings.TrimSpace(r.Header.Get(idempotencyHeader))
	if key != "" {
		if id, seen := s.st().IDForKey(key); seen {
			writeUploadResponse(w, id)
			return
		}
	}

	// The PSP validates that the upload is a decodable JPEG (any PSP
	// would), but learns nothing else from it.
	if _, err := jpegc.Decode(bytes.NewReader(req.Image)); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "not a decodable baseline JPEG: %v", err)
		return
	}
	var idBytes [12]byte
	if _, err := rand.Read(idBytes[:]); err != nil {
		httpError(w, http.StatusInternalServerError, "id generation: %v", err)
		return
	}
	id := hex.EncodeToString(idBytes[:])
	// Put re-checks the key atomically so concurrent retries of the same
	// upload cannot both store; the canonical ID wins.
	canonical, err := s.st().Put(id, req.Image, req.Params, key)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "store: %v", err)
		return
	}
	writeUploadResponse(w, canonical)
}

func writeUploadResponse(w http.ResponseWriter, id string) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(UploadResponse{ID: id}); err != nil {
		return
	}
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *entry {
	id := r.PathValue("id")
	jpeg, params, ok, err := s.st().Get(id)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "store: %v", err)
		return nil
	}
	if !ok {
		httpError(w, http.StatusNotFound, "image %q not found", id)
		return nil
	}
	return &entry{jpeg: jpeg, params: params}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	w.Header().Set("Content-Type", "image/jpeg")
	if _, err := w.Write(e.jpeg); err != nil {
		return
	}
}

func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if len(e.params) == 0 {
		if _, err := w.Write([]byte("null")); err != nil {
			return
		}
		return
	}
	if _, err := w.Write(e.params); err != nil {
		return
	}
}

func parseSpec(r *http.Request) (transform.Spec, error) {
	raw := r.URL.Query().Get("spec")
	if strings.TrimSpace(raw) == "" {
		return transform.Spec{Op: transform.OpNone}, nil
	}
	var spec transform.Spec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		return transform.Spec{}, err
	}
	return spec, nil
}

func (s *Server) handleTransformed(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	spec, err := parseSpec(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	img, err := jpegc.Decode(bytes.NewReader(e.jpeg))
	if err != nil {
		httpError(w, http.StatusInternalServerError, "stored image corrupt: %v", err)
		return
	}
	out, err := transform.Apply(img, spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "transform: %v", err)
		return
	}
	var buf bytes.Buffer
	if err := out.Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
		httpError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	w.Header().Set("Content-Type", "image/jpeg")
	if _, err := w.Write(buf.Bytes()); err != nil {
		return
	}
}

func (s *Server) handlePixels(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	spec, err := parseSpec(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if spec.Op == transform.OpCompress {
		httpError(w, http.StatusBadRequest, "compression has no pixel form; use /transformed")
		return
	}
	img, err := jpegc.Decode(bytes.NewReader(e.jpeg))
	if err != nil {
		httpError(w, http.StatusInternalServerError, "stored image corrupt: %v", err)
		return
	}
	pix, err := img.ToPlanar()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "decode: %v", err)
		return
	}
	out, err := transform.ApplyPlanar(pix, spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "transform: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := out.EncodeBinary(w); err != nil {
		return
	}
}
