// Package psp simulates the Photo Sharing Platform of the paper's system
// architecture (Fig. 5): an HTTP service that stores perturbed images plus
// their public parameters and performs ordinary image transformations on
// request — with no knowledge of PuPPIeS whatsoever. The PSP only ever
// touches (a) opaque JPEG bytes, (b) opaque parameter JSON, and (c) the
// generic transform library; this separation is the paper's semi-honest
// threat model made concrete.
package psp

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"puppies/internal/jpegc"
	"puppies/internal/transform"
)

// DefaultMaxUpload bounds request and response bodies unless overridden.
const DefaultMaxUpload = 64 << 20

// idempotencyHeader carries the client-generated key that lets the server
// deduplicate retried uploads.
const idempotencyHeader = "Idempotency-Key"

type entry struct {
	jpeg   []byte
	params json.RawMessage
}

// Server is the in-memory PSP.
type Server struct {
	// MaxUpload caps upload body size in bytes; larger requests get
	// HTTP 413. Zero means DefaultMaxUpload. Set before Handler is used.
	MaxUpload int64

	mu    sync.RWMutex
	store map[string]*entry
	// byKey maps idempotency keys to assigned IDs so a retried upload
	// returns the original ID instead of storing a duplicate.
	byKey map[string]string
}

// NewServer returns an empty PSP.
func NewServer() *Server {
	return &Server{store: make(map[string]*entry), byKey: make(map[string]string)}
}

// Len reports how many images are stored.
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.store)
}

func (s *Server) maxUpload() int64 {
	if s.MaxUpload > 0 {
		return s.MaxUpload
	}
	return DefaultMaxUpload
}

// UploadRequest is the POST /v1/images body.
type UploadRequest struct {
	// Image is the perturbed JPEG bytes (base64 in JSON).
	Image []byte `json:"image"`
	// Params is the opaque public-parameter document.
	Params json.RawMessage `json:"params"`
}

// UploadResponse carries the assigned image ID.
type UploadResponse struct {
	ID string `json:"id"`
}

// HealthResponse is the GET /v1/healthz body.
type HealthResponse struct {
	Status string `json:"status"`
	Images int    `json:"images"`
}

// Handler returns the HTTP API:
//
//	GET  /v1/healthz                     liveness + store size
//	POST /v1/images                      upload {image, params} -> {id}
//	GET  /v1/images/{id}                 stored JPEG bytes
//	GET  /v1/images/{id}/params          public parameters
//	GET  /v1/images/{id}/transformed?spec=J  transformed, re-encoded JPEG
//	GET  /v1/images/{id}/pixels?spec=J   transformed pixels, lossless PLNR
//
// where J is a URL-encoded transform.Spec JSON document. Uploads may carry
// an Idempotency-Key header; repeats with the same key return the
// originally assigned ID without storing a second copy.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/images", s.handleUpload)
	mux.HandleFunc("GET /v1/images/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/images/{id}/params", s.handleParams)
	mux.HandleFunc("GET /v1/images/{id}/transformed", s.handleTransformed)
	mux.HandleFunc("GET /v1/images/{id}/pixels", s.handlePixels)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(HealthResponse{Status: "ok", Images: s.Len()})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	limit := s.maxUpload()
	// Read one byte past the limit so oversized bodies are detected
	// rather than silently truncated into undecodable JSON.
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > limit {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", limit)
		return
	}
	var req UploadRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if len(req.Image) == 0 {
		httpError(w, http.StatusBadRequest, "empty image")
		return
	}

	key := strings.TrimSpace(r.Header.Get(idempotencyHeader))
	if key != "" {
		s.mu.RLock()
		id, seen := s.byKey[key]
		s.mu.RUnlock()
		if seen {
			writeUploadResponse(w, id)
			return
		}
	}

	// The PSP validates that the upload is a decodable JPEG (any PSP
	// would), but learns nothing else from it.
	if _, err := jpegc.Decode(bytes.NewReader(req.Image)); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "not a decodable baseline JPEG: %v", err)
		return
	}
	var idBytes [12]byte
	if _, err := rand.Read(idBytes[:]); err != nil {
		httpError(w, http.StatusInternalServerError, "id generation: %v", err)
		return
	}
	id := hex.EncodeToString(idBytes[:])
	s.mu.Lock()
	// Re-check the key under the write lock so concurrent retries of the
	// same upload cannot both store.
	if key != "" {
		if prev, seen := s.byKey[key]; seen {
			s.mu.Unlock()
			writeUploadResponse(w, prev)
			return
		}
		s.byKey[key] = id
	}
	s.store[id] = &entry{jpeg: req.Image, params: req.Params}
	s.mu.Unlock()
	writeUploadResponse(w, id)
}

func writeUploadResponse(w http.ResponseWriter, id string) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(UploadResponse{ID: id}); err != nil {
		return
	}
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *entry {
	id := r.PathValue("id")
	s.mu.RLock()
	e := s.store[id]
	s.mu.RUnlock()
	if e == nil {
		httpError(w, http.StatusNotFound, "image %q not found", id)
		return nil
	}
	return e
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	w.Header().Set("Content-Type", "image/jpeg")
	if _, err := w.Write(e.jpeg); err != nil {
		return
	}
}

func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if len(e.params) == 0 {
		if _, err := w.Write([]byte("null")); err != nil {
			return
		}
		return
	}
	if _, err := w.Write(e.params); err != nil {
		return
	}
}

func parseSpec(r *http.Request) (transform.Spec, error) {
	raw := r.URL.Query().Get("spec")
	if strings.TrimSpace(raw) == "" {
		return transform.Spec{Op: transform.OpNone}, nil
	}
	var spec transform.Spec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		return transform.Spec{}, err
	}
	return spec, nil
}

func (s *Server) handleTransformed(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	spec, err := parseSpec(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	img, err := jpegc.Decode(bytes.NewReader(e.jpeg))
	if err != nil {
		httpError(w, http.StatusInternalServerError, "stored image corrupt: %v", err)
		return
	}
	out, err := transform.Apply(img, spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "transform: %v", err)
		return
	}
	var buf bytes.Buffer
	if err := out.Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
		httpError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	w.Header().Set("Content-Type", "image/jpeg")
	if _, err := w.Write(buf.Bytes()); err != nil {
		return
	}
}

func (s *Server) handlePixels(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(w, r)
	if e == nil {
		return
	}
	spec, err := parseSpec(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if spec.Op == transform.OpCompress {
		httpError(w, http.StatusBadRequest, "compression has no pixel form; use /transformed")
		return
	}
	img, err := jpegc.Decode(bytes.NewReader(e.jpeg))
	if err != nil {
		httpError(w, http.StatusInternalServerError, "stored image corrupt: %v", err)
		return
	}
	pix, err := img.ToPlanar()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "decode: %v", err)
		return
	}
	out, err := transform.ApplyPlanar(pix, spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "transform: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := out.EncodeBinary(w); err != nil {
		return
	}
}
