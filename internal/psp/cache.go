package psp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"puppies/internal/dct"
	"puppies/internal/jpegc"
	"puppies/internal/servecache"
)

// Default serving-cache budgets. Stored images are immutable, so both
// caches never invalidate — entries only age out under byte pressure.
const (
	// DefaultVariantCacheBytes bounds the encoded-output cache: re-encoded
	// transform JPEGs and planar pixel payloads, keyed by
	// (route, imageID, canonical spec key).
	DefaultVariantCacheBytes = 256 << 20
	// DefaultCoeffCacheBytes bounds the decoded-coefficient cache: parsed
	// jpegc.Images keyed by imageID, so repeated transforms of a hot image
	// skip entropy decode entirely.
	DefaultCoeffCacheBytes = 256 << 20
)

// serveCache is the per-server serving-path cache hierarchy: an encoded
// variant LRU in front of a decoded-coefficient LRU, with singleflight
// groups collapsing concurrent identical work at both levels. Either cache
// pointer may be nil (disabled); the flight groups always run.
type serveCache struct {
	variants *servecache.Cache[[]byte]
	coeffs   *servecache.Cache[*jpegc.Image]

	tflight servecache.Group[[]byte]       // per variant key: transform+encode
	dflight servecache.Group[*jpegc.Image] // per image ID: entropy decode

	transformsComputed atomic.Uint64
	decodesComputed    atomic.Uint64
	notModified        atomic.Uint64
}

// CacheStatsResponse is the GET /v1/statz body.
type CacheStatsResponse struct {
	// Variants is the encoded-output cache (transformed JPEGs and pixel
	// payloads); Coeffs is the decoded-coefficient cache.
	Variants servecache.Stats `json:"variants"`
	Coeffs   servecache.Stats `json:"coeffs"`
	// CollapsedTransforms and CollapsedDecodes count requests that shared
	// another in-flight computation instead of running their own.
	CollapsedTransforms uint64 `json:"collapsedTransforms"`
	CollapsedDecodes    uint64 `json:"collapsedDecodes"`
	// TransformsComputed and DecodesComputed count the computations that
	// actually ran (cache misses that led the flight).
	TransformsComputed uint64 `json:"transformsComputed"`
	DecodesComputed    uint64 `json:"decodesComputed"`
	// NotModified counts conditional GETs answered with HTTP 304.
	NotModified uint64 `json:"notModified"`
}

func (sc *serveCache) statsResponse() CacheStatsResponse {
	return CacheStatsResponse{
		Variants:            sc.variants.Stats(),
		Coeffs:              sc.coeffs.Stats(),
		CollapsedTransforms: sc.tflight.Collapsed(),
		CollapsedDecodes:    sc.dflight.Collapsed(),
		TransformsComputed:  sc.transformsComputed.Load(),
		DecodesComputed:     sc.decodesComputed.Load(),
		NotModified:         sc.notModified.Load(),
	}
}

// budgetOrDefault maps a Server cache-budget field to an effective budget:
// zero means the default, negative disables.
func budgetOrDefault(v, def int64) int64 {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

func newServeCache(variantBytes, coeffBytes int64) *serveCache {
	sc := &serveCache{}
	if variantBytes > 0 {
		sc.variants = servecache.New[[]byte](variantBytes)
	}
	if coeffBytes > 0 {
		sc.coeffs = servecache.New[*jpegc.Image](coeffBytes)
	}
	return sc
}

// decodeStored returns the decoded coefficient image for a stored JPEG,
// serving repeats from the coefficient cache and collapsing concurrent
// decodes of the same image. Callers must treat the returned image as
// read-only — it is shared across requests (transform.Apply never mutates
// its input).
func (sc *serveCache) decodeStored(id string, jpeg []byte) (*jpegc.Image, error) {
	if img, ok := sc.coeffs.Get(id); ok {
		return img, nil
	}
	img, err, _ := sc.dflight.Do(id, func() (*jpegc.Image, error) {
		// Re-check under the flight: a just-finished leader may have
		// populated the cache between our miss and acquiring the flight.
		if img, ok := sc.coeffs.Get(id); ok {
			return img, nil
		}
		img, err := jpegc.Decode(bytes.NewReader(jpeg))
		if err != nil {
			return nil, err
		}
		sc.decodesComputed.Add(1)
		sc.coeffs.Add(id, img, coeffCost(img))
		return img, nil
	})
	return img, err
}

// coeffCost estimates the resident size of a decoded coefficient image:
// the block arrays dominate (256 bytes per 8x8 int32 block), plus a small
// per-component constant for quant tables and headers.
func coeffCost(img *jpegc.Image) int64 {
	var n int64 = 128
	for i := range img.Comps {
		n += int64(len(img.Comps[i].Blocks))*dct.BlockLen*4 + 512
	}
	return n
}

// variantKey names one cached encoded output. route distinguishes the
// /transformed ("T") and /pixels ("P") representations of the same
// (image, spec) pair; the raw stored bytes use "R" with an empty spec key.
func variantKey(route, id, specKey string) string {
	return route + "\x00" + id + "\x00" + specKey
}

// strongETag derives the validator for a variant. Uploaded images are
// immutable and the decode→transform→encode pipeline is deterministic, so
// (route, id, spec) fully determines the response bytes — the hash of that
// triple is a *strong* ETag without having to compute the body first.
// That is what lets conditional GETs answer 304 even on a cold cache.
func strongETag(route, id, specKey string) string {
	h := sha256.Sum256([]byte(variantKey(route, id, specKey)))
	return `"` + hex.EncodeToString(h[:16]) + `"`
}

// etagMatches implements the If-None-Match weak comparison of RFC 9110
// §13.1.2: a W/ prefix is ignored on either side and "*" matches any
// current representation.
func etagMatches(r *http.Request, etag string) bool {
	header := r.Header.Get("If-None-Match")
	if header == "" {
		return false
	}
	want := strings.TrimPrefix(etag, "W/")
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		if candidate == "*" {
			return true
		}
		if strings.TrimPrefix(candidate, "W/") == want {
			return true
		}
	}
	return false
}

// immutableCacheControl is sent with every image representation: stored
// images never change, so clients and intermediaries may cache forever.
const immutableCacheControl = "public, max-age=31536000, immutable"

// writeNotModified answers a conditional GET whose validator still holds.
func (sc *serveCache) writeNotModified(w http.ResponseWriter, etag string) {
	sc.notModified.Add(1)
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", immutableCacheControl)
	w.WriteHeader(http.StatusNotModified)
}

// serveBytes writes a fully materialized response body with its validator,
// answering 304 if the client already holds these bytes. Content-Length is
// set explicitly so large bodies are not chunk-encoded.
func (sc *serveCache) serveBytes(w http.ResponseWriter, r *http.Request, etag, contentType string, body []byte) {
	if etagMatches(r, etag) {
		sc.writeNotModified(w, etag)
		return
	}
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", immutableCacheControl)
	h.Set("Content-Type", contentType)
	h.Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

// bufPool recycles the output buffers of the encode paths; bodies are
// copied out before the buffer is returned, so pooled storage never
// escapes into the caches.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuf caps the capacity a returned buffer may retain; encoding an
// occasional huge image must not pin its buffer in the pool forever.
const maxPooledBuf = 8 << 20

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBuf {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// cloneBytes detaches a pooled buffer's contents for caching/serving.
func cloneBytes(b *bytes.Buffer) []byte {
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	return out
}
