package psp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"net/textproto"
	"strings"
	"testing"

	"puppies/internal/jpegc"
)

// testJPEGBytes encodes a small valid JPEG for upload bodies.
func testJPEGBytes(t *testing.T, w, h int) []byte {
	t.Helper()
	img, err := jpegc.FromPlanar(testPlanar(w, h), jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.Encode(&buf, jpegc.EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func batchServer(t *testing.T, s *Server) (*httptest.Server, *Client) {
	t.Helper()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, &Client{BaseURL: srv.URL}
}

func TestUploadBatchStoresAll(t *testing.T) {
	s := NewServer()
	srv, client := batchServer(t, s)
	_ = srv

	const n = 5
	items := make([]BatchUpload, n)
	for i := range items {
		items[i] = BatchUpload{
			Image:  testJPEGBytes(t, 32+8*i, 24),
			Params: json.RawMessage(`null`),
		}
	}
	results, err := client.UploadBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	seen := map[string]bool{}
	for i, res := range results {
		if res.Error != "" || res.ID == "" {
			t.Fatalf("result %d: %+v", i, res)
		}
		if seen[res.ID] {
			t.Fatalf("duplicate id %q", res.ID)
		}
		seen[res.ID] = true
	}
	if s.Len() != n {
		t.Fatalf("store has %d images, want %d", s.Len(), n)
	}
	// Every returned ID is fetchable.
	for id := range seen {
		if _, err := client.FetchImage(context.Background(), id); err != nil {
			t.Fatalf("fetch %q: %v", id, err)
		}
	}
}

func TestUploadBatchEmpty(t *testing.T) {
	_, client := batchServer(t, NewServer())
	if _, err := client.UploadBatch(context.Background(), nil); err == nil {
		t.Fatal("client accepted empty batch")
	}
	// A multipart request with zero parts is a whole-batch 400, not an
	// empty result list.
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	_ = mw.Close()
	resp, err := http.Post(client.BaseURL+"/v1/images:batch", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: got %d, want 400", resp.StatusCode)
	}
}

func TestUploadBatchOversizedPart(t *testing.T) {
	s := &Server{MaxUpload: 4 << 10}
	_, client := batchServer(t, s)

	small := testJPEGBytes(t, 16, 16)
	if int64(len(small)) > s.MaxUpload {
		t.Fatalf("fixture JPEG is %d bytes, exceeds the test cap itself", len(small))
	}
	items := []BatchUpload{
		{Image: small, Params: json.RawMessage(`null`)},
		{Image: bytes.Repeat([]byte{0xFF}, 8<<10)}, // oversized part
		{Image: small, Params: json.RawMessage(`null`)},
	}
	results, err := client.UploadBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ID == "" || results[2].ID == "" {
		t.Fatalf("good parts did not store: %+v", results)
	}
	if results[1].Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized part: got %+v, want status 413", results[1])
	}
	if s.Len() != 2 {
		t.Fatalf("store has %d images, want 2", s.Len())
	}
}

func TestUploadBatchPerPartErrors(t *testing.T) {
	s := NewServer()
	_, client := batchServer(t, s)

	items := []BatchUpload{
		{Image: testJPEGBytes(t, 24, 24), Params: json.RawMessage(`null`)},
		{Image: []byte("not a jpeg")},
		{}, // empty image
	}
	results, err := client.UploadBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ID == "" {
		t.Fatalf("good part failed: %+v", results[0])
	}
	if results[1].Status != http.StatusUnprocessableEntity {
		t.Fatalf("bad JPEG part: got %+v, want 422", results[1])
	}
	if results[2].Status != http.StatusBadRequest {
		t.Fatalf("empty part: got %+v, want 400", results[2])
	}
	if s.Len() != 1 {
		t.Fatalf("store has %d images, want 1", s.Len())
	}
}

func TestUploadBatchDuplicateIdempotencyKeys(t *testing.T) {
	s := NewServer()
	srv, _ := batchServer(t, s)

	// Hand-roll the multipart body so two parts share one key: the client
	// API always generates distinct keys, but retried or merged batches can
	// legitimately repeat them, and both parts must converge on one ID.
	img := testJPEGBytes(t, 24, 24)
	body, _ := json.Marshal(UploadRequest{Image: img})
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i := 0; i < 2; i++ {
		hdr := make(textproto.MIMEHeader)
		hdr.Set("Content-Type", "application/json")
		hdr.Set("Idempotency-Key", "same-key")
		w, err := mw.CreatePart(hdr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(body); err != nil {
			t.Fatal(err)
		}
	}
	_ = mw.Close()

	resp, err := http.Post(srv.URL+"/v1/images:batch", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch: %d: %s", resp.StatusCode, b)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(br.Results))
	}
	if br.Results[0].ID == "" || br.Results[0].ID != br.Results[1].ID {
		t.Fatalf("duplicate keys did not converge: %+v", br.Results)
	}
	if s.Len() != 1 {
		t.Fatalf("store has %d images, want 1 (dedupe)", s.Len())
	}
}

func TestUploadBatchClientAbortMidStream(t *testing.T) {
	s := NewServer()
	srv, client := batchServer(t, s)

	// Open a raw connection, send a truncated multipart body, and cut the
	// stream mid-part. The server must neither wedge nor count the torn
	// part; the store keeps only fully received parts at most.
	img := testJPEGBytes(t, 24, 24)
	body, _ := json.Marshal(UploadRequest{Image: img})
	var full bytes.Buffer
	mw := multipart.NewWriter(&full)
	for i := 0; i < 3; i++ {
		hdr := make(textproto.MIMEHeader)
		hdr.Set("Content-Type", "application/json")
		w, _ := mw.CreatePart(hdr)
		_, _ = w.Write(body)
	}
	_ = mw.Close()
	cut := full.Len() / 2 // mid-second-part

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/images:batch",
		io.NopCloser(&abortReader{data: full.Bytes()[:cut]}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	req.ContentLength = int64(full.Len()) // promise more than we send
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
	}

	// The server stays fully serviceable afterwards.
	results, err := client.UploadBatch(context.Background(),
		[]BatchUpload{{Image: img, Params: json.RawMessage(`null`)}})
	if err != nil {
		t.Fatalf("upload after aborted batch: %v", err)
	}
	if results[0].ID == "" {
		t.Fatalf("upload after aborted batch: %+v", results[0])
	}
}

// abortReader serves its data then fails, simulating a client whose
// connection died mid-upload.
type abortReader struct {
	data []byte
	off  int
}

func (r *abortReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("connection torn down")
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func TestUploadBatchTooManyParts(t *testing.T) {
	srv, _ := batchServer(t, NewServer())
	pr, pw := io.Pipe()
	mw := multipart.NewWriter(pw)
	go func() {
		for i := 0; i <= batchMaxParts; i++ {
			hdr := make(textproto.MIMEHeader)
			hdr.Set("Content-Type", "application/json")
			w, err := mw.CreatePart(hdr)
			if err == nil {
				_, err = w.Write([]byte(`{}`))
			}
			if err != nil {
				_ = pw.CloseWithError(err)
				return
			}
		}
		_ = pw.CloseWithError(mw.Close())
	}()
	resp, err := http.Post(srv.URL+"/v1/images:batch", mw.FormDataContentType(), pr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize part count: got %d, want 400", resp.StatusCode)
	}
}

func TestUploadBatchIdempotentRetry(t *testing.T) {
	// A full batch retry (same client keys) must return the same IDs and
	// store nothing new — the contract that makes whole-batch retry safe.
	s := NewServer()
	srv, _ := batchServer(t, s)

	img := testJPEGBytes(t, 24, 24)
	body, _ := json.Marshal(UploadRequest{Image: img})
	send := func() BatchResponse {
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		hdr := make(textproto.MIMEHeader)
		hdr.Set("Content-Type", "application/json")
		hdr.Set("Idempotency-Key", "retry-key")
		w, _ := mw.CreatePart(hdr)
		_, _ = w.Write(body)
		_ = mw.Close()
		resp, err := http.Post(srv.URL+"/v1/images:batch", mw.FormDataContentType(), &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var br BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
		return br
	}
	first := send()
	second := send()
	if first.Results[0].ID == "" || first.Results[0].ID != second.Results[0].ID {
		t.Fatalf("retry diverged: %+v vs %+v", first.Results, second.Results)
	}
	if s.Len() != 1 {
		t.Fatalf("store has %d images, want 1", s.Len())
	}
}

func TestUploadBatchMatchesSingleUpload(t *testing.T) {
	// The batch route and POST /v1/images share storeOne; a body rejected
	// by one must be rejected identically by the other.
	_, client := batchServer(t, NewServer())
	bad := []BatchUpload{{Image: []byte("junk")}}
	results, err := client.UploadBatch(context.Background(), bad)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != http.StatusUnprocessableEntity {
		t.Fatalf("batch: %+v, want 422", results[0])
	}
	body, _ := json.Marshal(UploadRequest{Image: []byte("junk")})
	resp, err := http.Post(client.BaseURL+"/v1/images", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("single: %d, want 422", resp.StatusCode)
	}
	single, _ := io.ReadAll(resp.Body)
	if strings.TrimSpace(string(single)) != results[0].Error {
		t.Fatalf("error text diverged: single %q vs batch %q", strings.TrimSpace(string(single)), results[0].Error)
	}
}

func TestUploadBatchRawParamsPairing(t *testing.T) {
	// Raw image parts pair with the params part that follows them; items
	// without one store no parameters.
	s := NewServer()
	srv, client := batchServer(t, s)

	params := json.RawMessage(`{"v":1,"roi":[0,0,8,8]}`)
	items := []BatchUpload{
		{Image: testJPEGBytes(t, 32, 24), Params: params},
		{Image: testJPEGBytes(t, 40, 24)},
	}
	results, err := client.UploadBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Error != "" || res.ID == "" {
			t.Fatalf("result %d: %+v", i, res)
		}
	}
	// The paired params come back verbatim from the params route.
	resp, err := http.Get(srv.URL + "/v1/images/" + results[0].ID + "/params")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(bytes.TrimSpace(got), []byte(params)) {
		t.Fatalf("params round trip: status %d body %q, want %q", resp.StatusCode, got, params)
	}
	// The unpaired item stored none.
	resp2, err := http.Get(srv.URL + "/v1/images/" + results[1].ID + "/params")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		body, _ := io.ReadAll(resp2.Body)
		if len(bytes.TrimSpace(body)) > 0 && string(bytes.TrimSpace(body)) != "null" {
			t.Fatalf("unpaired item has params: %q", body)
		}
	}
}

func TestUploadBatchParamsWithoutImage(t *testing.T) {
	// A params part with no preceding raw image part is an envelope error:
	// there is nothing to attach it to, so the whole batch is a 400.
	srv, _ := batchServer(t, NewServer())
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	hdr := make(textproto.MIMEHeader)
	hdr.Set("Content-Disposition", `form-data; name="params"`)
	hdr.Set("Content-Type", "application/json")
	w, _ := mw.CreatePart(hdr)
	_, _ = w.Write([]byte(`{"v":1}`))
	_ = mw.Close()
	resp, err := http.Post(srv.URL+"/v1/images:batch", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dangling params part: got %d, want 400", resp.StatusCode)
	}
}

func TestUploadBatchParamsAfterJSONPart(t *testing.T) {
	// A params part may only follow a raw image part; after a JSON item it
	// is equally dangling.
	srv, _ := batchServer(t, NewServer())
	img := testJPEGBytes(t, 24, 24)
	body, _ := json.Marshal(UploadRequest{Image: img})
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	hdr := make(textproto.MIMEHeader)
	hdr.Set("Content-Type", "application/json")
	w, _ := mw.CreatePart(hdr)
	_, _ = w.Write(body)
	hdr = make(textproto.MIMEHeader)
	hdr.Set("Content-Disposition", `form-data; name="params"`)
	hdr.Set("Content-Type", "application/json")
	w, _ = mw.CreatePart(hdr)
	_, _ = w.Write([]byte(`{"v":1}`))
	_ = mw.Close()
	resp, err := http.Post(srv.URL+"/v1/images:batch", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("params after JSON item: got %d, want 400", resp.StatusCode)
	}
}
