package psp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"puppies/internal/dataset"
	"puppies/internal/jpegc"
	"puppies/internal/transform"
)

// searchCorpus renders n distinct coefficient images (same generator as the
// searchidx invariance tests, so inter-image signature separation is known
// to be far above dedupDistance).
func searchCorpus(t *testing.T, n int) []*jpegc.Image {
	t.Helper()
	profile := dataset.PASCAL
	profile.W, profile.H = 336, 224
	gen, err := dataset.NewGenerator(profile, 7)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	imgs := make([]*jpegc.Image, n)
	for i := range imgs {
		imgs[i], err = jpegc.FromPlanar(gen.Item(i).Image, jpegc.Options{Quality: 85})
		if err != nil {
			t.Fatalf("FromPlanar %d: %v", i, err)
		}
	}
	return imgs
}

func encodeJPEG(t *testing.T, img *jpegc.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := img.Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func uploadBytes(t *testing.T, client *Client, image []byte) UploadResponse {
	t.Helper()
	body, err := json.Marshal(UploadRequest{Image: image})
	if err != nil {
		t.Fatal(err)
	}
	respBody, err := client.do(context.Background(), http.MethodPost, client.BaseURL+"/v1/images", body,
		http.Header{"Content-Type": {"application/json"}})
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	var resp UploadResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		t.Fatalf("decode upload response: %v", err)
	}
	return resp
}

func searchFixture(t *testing.T, n int) (*Server, *Client, []*jpegc.Image, []string) {
	t.Helper()
	s := NewServer()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	client := &Client{BaseURL: srv.URL}
	imgs := searchCorpus(t, n)
	ids := make([]string, n)
	for i, img := range imgs {
		resp := uploadBytes(t, client, encodeJPEG(t, img))
		if resp.ID == "" {
			t.Fatalf("upload %d: empty id", i)
		}
		ids[i] = resp.ID
	}
	return s, client, imgs, ids
}

func TestSearchByID(t *testing.T) {
	_, client, _, ids := searchFixture(t, 4)
	resp, err := client.SearchByID(context.Background(), ids[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	// The index returns up to k: with a confident match in hand it does not
	// escalate to a full scan just to pad the list with far-away images.
	if len(resp.Results) == 0 || len(resp.Results) > 3 {
		t.Fatalf("got %d results, want 1..3", len(resp.Results))
	}
	if resp.Results[0].ID != ids[2] || resp.Results[0].Distance != 0 {
		t.Fatalf("top-1 = %+v, want %s at distance 0", resp.Results[0], ids[2])
	}
	if resp.Partial {
		t.Fatal("single-node search flagged partial")
	}
}

func TestSearchByBytesFindsRecompressedOriginal(t *testing.T) {
	_, client, imgs, ids := searchFixture(t, 4)
	// Query with a recompressed copy of image 1: not the stored bytes, but a
	// near-duplicate the signature must land on.
	recomp, err := transform.Apply(imgs[1], transform.Spec{Op: transform.OpCompress, Quality: 60})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Search(context.Background(), encodeJPEG(t, recomp), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || resp.Results[0].ID != ids[1] {
		t.Fatalf("top-1 = %+v, want %s", resp.Results, ids[1])
	}
	if resp.Results[0].Distance > dedupDistance {
		t.Fatalf("recompressed copy at distance %d, want <= %d", resp.Results[0].Distance, dedupDistance)
	}
}

func TestSearchUnknownID(t *testing.T) {
	_, client, _, _ := searchFixture(t, 1)
	_, err := client.SearchByID(context.Background(), "no-such-image", 5)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 StatusError", err)
	}
}

func TestSearchRequiresQuery(t *testing.T) {
	_, client, _, _ := searchFixture(t, 1)
	resp, err := http.Get(client.BaseURL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /v1/search with no query: %d, want 400", resp.StatusCode)
	}
}

func TestSearchStatzCounters(t *testing.T) {
	s, client, imgs, _ := searchFixture(t, 3)
	// One hit (a stored image is its own near-duplicate) ...
	if _, err := client.Search(context.Background(), encodeJPEG(t, imgs[0]), nil, 1); err != nil {
		t.Fatal(err)
	}
	st := s.Statz()
	if st.Search.Indexed != 3 {
		t.Fatalf("indexed = %d, want 3", st.Search.Indexed)
	}
	if st.Search.Queries != 1 || st.Search.Hits != 1 {
		t.Fatalf("queries/hits = %d/%d, want 1/1", st.Search.Queries, st.Search.Hits)
	}
	// ... and the search route records latency like any other route.
	if _, ok := st.LatencyNs[routeSearch]; !ok {
		t.Fatalf("statz has no %q latency histogram: %v", routeSearch, st.LatencyNs)
	}
}

func TestUploadDedupHint(t *testing.T) {
	_, client, imgs, ids := searchFixture(t, 3)
	recomp, err := transform.Apply(imgs[0], transform.Spec{Op: transform.OpCompress, Quality: 60})
	if err != nil {
		t.Fatal(err)
	}
	resp := uploadBytes(t, client, encodeJPEG(t, recomp))
	if resp.DuplicateOf != ids[0] {
		t.Fatalf("duplicateOf = %q (distance %d), want %s", resp.DuplicateOf, resp.Distance, ids[0])
	}
	// Distinct uploads carried no hint.
	for i, id := range ids {
		_ = i
		if id == "" {
			t.Fatal("missing id")
		}
	}
}

func TestBatchUploadIndexes(t *testing.T) {
	s := NewServer()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	client := &Client{BaseURL: srv.URL}
	imgs := searchCorpus(t, 3)
	items := make([]BatchUpload, len(imgs))
	for i, img := range imgs {
		items[i] = BatchUpload{Image: encodeJPEG(t, img)}
	}
	results, err := client.UploadBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Error != "" {
			t.Fatalf("item %d: %s", i, res.Error)
		}
		if res.DuplicateOf != "" {
			t.Fatalf("distinct item %d flagged duplicate of %s", i, res.DuplicateOf)
		}
	}
	if got := s.Statz().Search.Indexed; got != 3 {
		t.Fatalf("indexed = %d, want 3", got)
	}
	// A batch item duplicating a stored image carries the hint.
	dup, err := client.UploadBatch(context.Background(), items[:1])
	if err != nil {
		t.Fatal(err)
	}
	if dup[0].DuplicateOf != results[0].ID {
		t.Fatalf("duplicateOf = %q, want %s", dup[0].DuplicateOf, results[0].ID)
	}
}

func TestSearchLazyBackfill(t *testing.T) {
	// Images that predate the index (stored directly, never uploaded through
	// the handler) are backfilled on first query.
	s := NewServer()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	client := &Client{BaseURL: srv.URL}
	imgs := searchCorpus(t, 2)
	var ids []string
	for i, img := range imgs {
		id := fmt.Sprintf("pre-existing-%d", i)
		if _, err := s.st().Put(id, encodeJPEG(t, img), nil, ""); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if got := s.Statz().Search.Indexed; got != 0 {
		t.Fatalf("indexed = %d before any query, want 0", got)
	}
	resp, err := client.SearchByID(context.Background(), ids[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].ID != ids[0] {
		t.Fatalf("backfilled search = %+v, want %s", resp.Results, ids[0])
	}
	if got := s.Statz().Search.Indexed; got != 1 {
		t.Fatalf("indexed = %d after one by-ID query, want 1", got)
	}
}
