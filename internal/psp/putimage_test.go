package psp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func doPutImage(t *testing.T, h http.Handler, id string, req UploadRequest, key string) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPut, "/v1/images/"+url.PathEscape(id), bytes.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	if key != "" {
		r.Header.Set(idempotencyHeader, key)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

func decodeID(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var ur UploadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ur); err != nil {
		t.Fatalf("decode upload response: %v (%s)", err, rec.Body.String())
	}
	return ur.ID
}

func TestPutImageStoresUnderCallerID(t *testing.T) {
	srv := NewServer()
	h := srv.Handler()
	jpeg := testJPEG(t, 32, 24)

	rec := doPutImage(t, h, "replica-1", UploadRequest{Image: jpeg}, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT new id: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if got := decodeID(t, rec); got != "replica-1" {
		t.Fatalf("PUT answered id %q, want caller-chosen %q", got, "replica-1")
	}
	got := doGet(h, "/v1/images/replica-1", nil)
	if got.Code != http.StatusOK || !bytes.Equal(got.Body.Bytes(), jpeg) {
		t.Fatalf("GET after PUT: HTTP %d, %d bytes", got.Code, got.Body.Len())
	}
}

func TestPutImageIdempotentOnIdenticalBytes(t *testing.T) {
	srv := NewServer()
	h := srv.Handler()
	jpeg := testJPEG(t, 32, 24)
	params := json.RawMessage(`{"n":1}`)

	for i := 0; i < 2; i++ {
		rec := doPutImage(t, h, "img-a", UploadRequest{Image: jpeg, Params: params}, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("PUT attempt %d: HTTP %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	if srv.Len() != 1 {
		t.Fatalf("store holds %d images after idempotent re-PUT, want 1", srv.Len())
	}
	// Absent, empty, and JSON-null params documents all mean "no params":
	// a replica fetched via /params (which serves "null") must re-PUT
	// cleanly.
	rec := doPutImage(t, h, "img-b", UploadRequest{Image: jpeg}, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT img-b: HTTP %d", rec.Code)
	}
	rec = doPutImage(t, h, "img-b", UploadRequest{Image: jpeg, Params: json.RawMessage("null")}, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("re-PUT with explicit null params: HTTP %d, want 200", rec.Code)
	}
}

func TestPutImageConflictNeverOverwrites(t *testing.T) {
	srv := NewServer()
	h := srv.Handler()
	jpegA := testJPEG(t, 32, 24)
	jpegB := testJPEG(t, 48, 32)

	if rec := doPutImage(t, h, "img-c", UploadRequest{Image: jpegA}, ""); rec.Code != http.StatusOK {
		t.Fatalf("seed PUT: HTTP %d", rec.Code)
	}
	rec := doPutImage(t, h, "img-c", UploadRequest{Image: jpegB}, "")
	if rec.Code != http.StatusConflict {
		t.Fatalf("PUT different bytes: HTTP %d, want 409", rec.Code)
	}
	// Same bytes but different params is also a conflict.
	rec = doPutImage(t, h, "img-c", UploadRequest{Image: jpegA, Params: json.RawMessage(`{"x":2}`)}, "")
	if rec.Code != http.StatusConflict {
		t.Fatalf("PUT different params: HTTP %d, want 409", rec.Code)
	}
	// The stored record is untouched.
	got := doGet(h, "/v1/images/img-c", nil)
	if !bytes.Equal(got.Body.Bytes(), jpegA) {
		t.Fatal("conflicting PUT overwrote the stored bytes")
	}
}

func TestPutImageValidation(t *testing.T) {
	srv := NewServer()
	h := srv.Handler()
	jpeg := testJPEG(t, 32, 24)

	badIDs := []string{".hidden", "a b", "x*y", strings.Repeat("z", 101), "a/../b"}
	for _, id := range badIDs {
		rec := doPutImage(t, h, id, UploadRequest{Image: jpeg}, "")
		// Path traversal characters may be rejected by the mux (404/301)
		// before reaching the handler; anything but success is acceptable,
		// plain unsafe names must be a 400.
		if rec.Code == http.StatusOK {
			t.Errorf("PUT accepted unsafe id %q", id)
		}
		if !strings.ContainsAny(id, "/ ") && rec.Code != http.StatusBadRequest {
			t.Errorf("PUT id %q: HTTP %d, want 400", id, rec.Code)
		}
	}

	if rec := doPutImage(t, h, "img-d", UploadRequest{Image: []byte("nope")}, ""); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("PUT non-JPEG: HTTP %d, want 422", rec.Code)
	}
	if rec := doPutImage(t, h, "img-d", UploadRequest{}, ""); rec.Code != http.StatusBadRequest {
		t.Errorf("PUT empty image: HTTP %d, want 400", rec.Code)
	}
}

func TestPutImageHonorsIdempotencyKey(t *testing.T) {
	srv := NewServer()
	h := srv.Handler()
	jpeg := testJPEG(t, 32, 24)

	rec := doPutImage(t, h, "img-e", UploadRequest{Image: jpeg}, "put-key-1")
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT with key: HTTP %d", rec.Code)
	}
	// A replay under the same key answers the canonical ID even if the
	// caller aims at a different one — identical to POST's key semantics.
	rec = doPutImage(t, h, "img-other", UploadRequest{Image: jpeg}, "put-key-1")
	if rec.Code != http.StatusOK || decodeID(t, rec) != "img-e" {
		t.Fatalf("key replay: HTTP %d id %q, want 200 img-e", rec.Code, decodeID(t, rec))
	}
	if srv.Len() != 1 {
		t.Fatalf("store holds %d images, want 1", srv.Len())
	}
}

func TestHealthzDraining(t *testing.T) {
	srv := NewServer()
	srv.DrainRetryAfter = 2 * time.Second
	h := srv.Handler()
	jpeg := testJPEG(t, 32, 24)
	storeImage(t, srv.st(), "img-f", jpeg)

	if rec := doGet(h, "/v1/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz before drain: HTTP %d", rec.Code)
	}

	srv.SetDraining(true)
	rec := doGet(h, "/v1/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: HTTP %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q", got, "2")
	}
	var hr HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "draining" {
		t.Fatalf("status %q, want draining", hr.Status)
	}
	// Draining only redirects new traffic away; data routes keep serving.
	if got := doGet(h, "/v1/images/img-f", nil); got.Code != http.StatusOK {
		t.Fatalf("image GET while draining: HTTP %d, want 200", got.Code)
	}

	srv.SetDraining(false)
	if rec := doGet(h, "/v1/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz after undrain: HTTP %d", rec.Code)
	}
}
