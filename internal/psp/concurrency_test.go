package psp

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"puppies/internal/core"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/transform"
)

// TestConcurrentClients hammers the PSP with parallel uploads, downloads
// and transform requests; run with -race to verify the store's locking.
func TestConcurrentClients(t *testing.T) {
	srv := httptest.NewServer(NewServer().Handler())
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}

	base, err := jpegc.FromPlanar(testPlanar(48, 48), jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.NewScheme(core.Params{Variant: core.VariantC, MR: 32, K: 8})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				img := base.Clone()
				pair := keys.NewPairDeterministic(int64(w*1000 + i))
				pd, _, err := sch.EncryptImage(img, []core.RegionAssignment{
					{ROI: core.ROI{X: 8, Y: 8, W: 24, H: 24}, Pair: pair},
				})
				if err != nil {
					errs <- err
					continue
				}
				id, err := client.Upload(context.Background(), img, pd, jpegc.EncodeOptions{})
				if err != nil {
					errs <- fmt.Errorf("worker %d upload: %w", w, err)
					continue
				}
				if _, err := client.FetchImage(context.Background(), id); err != nil {
					errs <- fmt.Errorf("worker %d fetch: %w", w, err)
				}
				if _, err := client.FetchTransformed(context.Background(), id, transform.Spec{Op: transform.OpRotate180}); err != nil {
					errs <- fmt.Errorf("worker %d transform: %w", w, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
