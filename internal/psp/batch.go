package psp

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"strings"
	"sync"

	"puppies/internal/admission"
	"puppies/internal/core"
	"puppies/internal/jpegc"
	"puppies/internal/parallel"
	"puppies/internal/searchidx"
)

// Batch upload protocol (POST /v1/images:batch, DESIGN.md §14): the request
// is multipart/form-data where each item is either
//
//   - one part with Content-Type image/jpeg whose body is the raw JPEG
//     bytes, optionally followed by a part named "params" carrying the
//     item's public-parameter JSON — the fast path: no JSON envelope, no
//     base64, the part body goes pooled-buffer → validator → store; or
//   - one part with Content-Type application/json whose body is an
//     UploadRequest document — exactly the POST /v1/images body.
//
// Either kind of image part may carry its own Idempotency-Key part header.
// Parts are read sequentially off the wire (multipart is inherently serial)
// into pooled buffers and handed to a bounded worker pool, so JPEG
// validation — the expensive step of an upload — overlaps the next part
// still streaming in. The read loop never blocks on a worker slot: a paused
// reader closes the TCP window and the client stalls on the ~200ms persist
// timer.
//
// The response is a BatchResponse whose results array matches the item
// order. Per-item failures (oversized part, undecodable JPEG, bad JSON) are
// reported in that item's result entry with an HTTP-equivalent status; they
// do not fail the batch. Only a malformed envelope (no parts, bad multipart
// syntax, a params part with no preceding raw image part, too many parts,
// total body over the batch cap) fails the whole request.
const (
	// batchMaxParts bounds how many parts one batch may carry.
	batchMaxParts = 1024
	// batchBodyFactor scales MaxUpload into the whole-batch body cap: each
	// part is still individually bounded by MaxUpload, and the envelope by
	// batchBodyFactor*MaxUpload.
	batchBodyFactor = 16
)

// BatchParamsPart names the multipart part that attaches public parameters
// to the immediately preceding raw image part.
const BatchParamsPart = "params"

// BatchResult is one item's outcome, in item order. Exactly one of ID or
// Error is set; Status carries the HTTP-equivalent code for failed items.
// DuplicateOf/Distance carry the near-duplicate hint when the signature
// index already held a close match for a stored item (see UploadResponse).
type BatchResult struct {
	ID          string `json:"id,omitempty"`
	Error       string `json:"error,omitempty"`
	Status      int    `json:"status,omitempty"`
	DuplicateOf string `json:"duplicateOf,omitempty"`
	Distance    uint32 `json:"distance,omitempty"`
}

// BatchResponse is the POST /v1/images:batch body.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// storeRaw validates and stores one image with optional public parameters,
// reporting the outcome as a BatchResult. When owned is false the slices are
// borrowed: they are copied before the store takes ownership, so callers may
// recycle their buffers immediately. owned callers hand the slices over
// outright and save the copies.
func (s *Server) storeRaw(image, params []byte, key string, owned bool) BatchResult {
	if len(image) == 0 {
		return BatchResult{Error: "empty image", Status: http.StatusBadRequest}
	}
	if key != "" {
		if id, seen := s.st().IDForKey(key); seen {
			return BatchResult{ID: id}
		}
	}
	// The PSP validates that the upload is a decodable JPEG (any PSP
	// would), and derives the search signature from the same decode before
	// the coefficient storage goes back to the slab pool — the signature's
	// coarse luminance layout is all the PSP retains of the image content.
	img, err := jpegc.Decode(bytes.NewReader(image))
	if err != nil {
		return BatchResult{Error: fmt.Sprintf("not a decodable baseline JPEG: %v", err), Status: http.StatusUnprocessableEntity}
	}
	sig := searchidx.Compute(img, params)
	img.Recycle()
	var idBytes [12]byte
	if _, err := rand.Read(idBytes[:]); err != nil {
		return BatchResult{Error: fmt.Sprintf("id generation: %v", err), Status: http.StatusInternalServerError}
	}
	var pb []byte
	if len(params) > 0 {
		pb = params
		if !owned {
			pb = bytes.Clone(params)
		}
	}
	if !owned {
		image = bytes.Clone(image)
	}
	// Put re-checks the key atomically, so concurrent parts (or retries)
	// carrying the same key converge on one canonical ID.
	canonical, err := s.st().Put(hex.EncodeToString(idBytes[:]), image, pb, key)
	if err != nil {
		return BatchResult{Error: fmt.Sprintf("store: %v", err), Status: http.StatusInternalServerError}
	}
	res := BatchResult{ID: canonical}
	if near, ok := s.indexImage(canonical, sig); ok {
		res.DuplicateOf = near.ID
		res.Distance = near.Distance
	}
	return res
}

// storeOne runs the single-upload pipeline (decode request, idempotency
// lookup, JPEG validation, store) on an UploadRequest body. Both POST
// /v1/images and the batch route's JSON parts reduce to it, so the two
// paths cannot drift.
func (s *Server) storeOne(body []byte, key string) BatchResult {
	var req UploadRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return BatchResult{Error: fmt.Sprintf("decode request: %v", err), Status: http.StatusBadRequest}
	}
	return s.storeRaw(req.Image, req.Params, key, true)
}

// batchItem is one in-flight batch entry: the reader loop fills it, a
// worker stores it and writes *slot. Workers never touch the slot slice
// itself, so the reader can keep appending without a lock.
type batchItem struct {
	slot   *BatchResult
	key    string
	raw    bool          // body is raw JPEG bytes, not UploadRequest JSON
	buf    *bytes.Buffer // pooled; the worker recycles it
	params *bytes.Buffer // pooled; optional params for a raw item
	failed bool          // slot already holds a per-item error; do not dispatch
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	limit := s.maxUpload()
	r.Body = http.MaxBytesReader(w, r.Body, batchBodyFactor*limit)
	mr, err := r.MultipartReader()
	if err != nil {
		httpError(w, http.StatusBadRequest, "batch requires multipart/form-data: %v", err)
		return
	}

	var (
		wg    sync.WaitGroup
		slots []*BatchResult
	)
	sem := make(chan struct{}, parallel.Workers())
	dispatch := func(it *batchItem) {
		if it == nil || it.failed {
			return
		}
		wg.Add(1)
		// The semaphore is taken inside the goroutine, never in the read
		// loop — see the protocol comment. Memory stays bounded anyway:
		// buffered parts never exceed the whole-batch body cap enforced by
		// MaxBytesReader above.
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Each item pays its own admission unit — the envelope was free
			// (weight 0), so under overload a batch sheds per item with a
			// 429 in that item's result slot rather than failing the whole
			// envelope. The client re-uploads only the shed items; stored
			// ones deduplicate by idempotency key.
			ctl := s.admission()
			release, out := ctl.Acquire(r.Context(), 1)
			if out != admission.Admitted {
				putBuf(it.buf)
				if it.params != nil {
					putBuf(it.params)
				}
				*it.slot = BatchResult{
					Error:  fmt.Sprintf("overloaded (%s); retry after %.3fs", out, ctl.RetryAfterHint().Seconds()),
					Status: http.StatusTooManyRequests,
				}
				return
			}
			defer release()
			var res BatchResult
			if it.raw {
				var pb []byte
				if it.params != nil {
					pb = it.params.Bytes()
				}
				res = s.storeRaw(it.buf.Bytes(), pb, it.key, false)
			} else {
				res = s.storeOne(it.buf.Bytes(), it.key)
			}
			putBuf(it.buf)
			if it.params != nil {
				putBuf(it.params)
			}
			*it.slot = res
		}()
	}

	// pending holds a raw image item that may still receive a params part;
	// any other part (or EOF) flushes it to a worker first.
	var pending *batchItem
	fail := func(status int, format string, args ...any) {
		dispatch(pending)
		wg.Wait()
		if status != 0 {
			httpError(w, status, format, args...)
		}
	}
	for i := 0; ; i++ {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				fail(http.StatusRequestEntityTooLarge, "batch body exceeds %d bytes", mbe.Limit)
				return
			}
			// The stream died mid-batch (client abort, network cut): there
			// is no one to answer, and an incomplete result list must not
			// masquerade as the batch outcome.
			fail(0, "")
			return
		}
		if i >= batchMaxParts {
			fail(http.StatusBadRequest, "batch exceeds %d parts", batchMaxParts)
			return
		}

		// Only a JSON-typed part can be a params part, so raw image parts —
		// the fast path's bulk — skip the Content-Disposition media-type
		// parse entirely.
		raw := strings.HasPrefix(part.Header.Get("Content-Type"), "image/")
		isParams := !raw && part.FormName() == BatchParamsPart
		if isParams && (pending == nil || !pending.raw) {
			fail(http.StatusBadRequest, "params part without a preceding image part")
			return
		}

		buf := getBuf()
		// Read one byte past the limit so oversized parts are detected
		// rather than silently truncated.
		n, rerr := io.Copy(buf, io.LimitReader(part, limit+1))
		if rerr != nil {
			putBuf(buf)
			var mbe *http.MaxBytesError
			if errors.As(rerr, &mbe) {
				fail(http.StatusRequestEntityTooLarge, "batch body exceeds %d bytes", mbe.Limit)
				return
			}
			fail(0, "")
			return
		}

		if isParams {
			// Attaches to the pending raw item; a failed pending item
			// (oversized) just swallows its params.
			if n > limit {
				putBuf(buf)
				pending.slot.Error = fmt.Sprintf("params part exceeds %d bytes", limit)
				pending.slot.Status = http.StatusRequestEntityTooLarge
				pending.failed = true
			} else if pending.failed {
				putBuf(buf)
			} else {
				pending.params = buf
			}
			dispatch(pending)
			pending = nil
			continue
		}

		// A new item: flush any raw item still waiting for params.
		dispatch(pending)
		pending = nil

		it := &batchItem{
			slot: new(BatchResult),
			key:  strings.TrimSpace(part.Header.Get(idempotencyHeader)),
			raw:  raw,
			buf:  buf,
		}
		slots = append(slots, it.slot)
		if n > limit {
			putBuf(buf)
			it.buf = nil
			it.failed = true
			// NextPart discards the rest of the part; the whole-body cap
			// above bounds how much an oversized part can make us skip.
			*it.slot = BatchResult{
				Error:  fmt.Sprintf("part exceeds %d bytes", limit),
				Status: http.StatusRequestEntityTooLarge,
			}
		}
		if it.raw {
			pending = it // may still receive a params part
		} else if !it.failed {
			dispatch(it)
		}
	}
	dispatch(pending)
	wg.Wait()
	if len(slots) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	results := make([]BatchResult, len(slots))
	for i, slot := range slots {
		results[i] = *slot
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(BatchResponse{Results: results})
}

// batchWriterPool recycles the client's multipart coalescing buffer.
var batchWriterPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, 32<<10) }}

// BatchUpload is one item of Client.UploadBatch: encoded JPEG bytes plus
// the opaque public-parameter document (either may come straight from
// puppies.Protected).
type BatchUpload struct {
	Image  []byte
	Params json.RawMessage
}

// UploadBatch streams every item to POST /v1/images:batch in one request
// and returns per-item results in order. Items travel as raw image/jpeg
// parts (plus a params part when set) multipart-streamed through an io.Pipe
// — no JSON envelope, no base64, and the request body is produced while it
// uploads, so batch memory stays at one item, not the whole batch. Each
// item carries a per-item idempotency key generated once before the first
// attempt; transient failures retry the whole batch and every
// already-stored item deduplicates server-side to its original ID.
//
// A non-nil error means the batch envelope failed (transport, HTTP status,
// undecodable response); per-item failures are reported in the returned
// results, not as an error.
func (c *Client) UploadBatch(ctx context.Context, items []BatchUpload) ([]BatchResult, error) {
	if len(items) == 0 {
		return nil, errors.New("psp: empty batch")
	}
	keys := make([]string, len(items))
	for i := range items {
		keys[i] = newIdempotencyKey()
	}

	attempts := c.maxRetries() + 1
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.statRetries.Add(1)
			wait := c.backoff(attempt - 1)
			var se *StatusError
			if errors.As(lastErr, &se) && se.RetryAfter > 0 {
				wait = se.RetryAfter
				c.statRetryAfterHonored.Add(1)
			}
			if err := c.sleepCtx(ctx, wait); err != nil {
				c.statExhausted.Add(1)
				return nil, fmt.Errorf("psp: giving up after %d attempts: %w (then %v)", attempt-1, lastErr, err)
			}
		}
		results, err := c.uploadBatchOnce(ctx, items, keys)
		if err == nil {
			return results, nil
		}
		lastErr = err
		if !errors.Is(err, ErrRetryable) || ctx.Err() != nil {
			return nil, err
		}
	}
	c.statExhausted.Add(1)
	return nil, fmt.Errorf("psp: giving up after %d attempts: %w", attempts, lastErr)
}

// UploadBatchImages is the coefficient-image convenience form of
// UploadBatch: each image is encoded with opts and paired with its encoded
// public data.
func (c *Client) UploadBatchImages(ctx context.Context, imgs []*jpegc.Image, pds []*core.PublicData, opts jpegc.EncodeOptions) ([]BatchResult, error) {
	if len(imgs) != len(pds) {
		return nil, fmt.Errorf("psp: %d images for %d parameter sets", len(imgs), len(pds))
	}
	items := make([]BatchUpload, len(imgs))
	for i := range imgs {
		var buf bytes.Buffer
		if err := imgs[i].Encode(&buf, opts); err != nil {
			return nil, fmt.Errorf("psp: encode image %d: %w", i, err)
		}
		params, err := pds[i].Encode()
		if err != nil {
			return nil, fmt.Errorf("psp: encode params %d: %w", i, err)
		}
		items[i] = BatchUpload{Image: buf.Bytes(), Params: params}
	}
	return c.UploadBatch(ctx, items)
}

// uploadBatchOnce performs one streaming attempt of the whole batch.
func (c *Client) uploadBatchOnce(ctx context.Context, items []BatchUpload, keys []string) ([]BatchResult, error) {
	c.statAttempts.Add(1)
	attemptCtx := ctx
	var cancel context.CancelFunc
	if t := c.requestTimeout(); t > 0 {
		attemptCtx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	pr, pw := io.Pipe()
	// The pipe is unbuffered: every Write is a goroutine handoff and becomes
	// its own chunked-transfer frame. Coalescing through a bufio.Writer turns
	// a part's header lines plus small bodies into one frame. Part framing is
	// written by hand against that writer — the format is fixed and tiny, and
	// multipart.Writer's per-part MIMEHeader maps and sorted-key walks are
	// pure overhead on this hot path (the boundary still comes from
	// multipart.Writer so it stays RFC-compliant and unpredictable).
	bw := batchWriterPool.Get().(*bufio.Writer)
	bw.Reset(pw)
	mw := multipart.NewWriter(bw)
	boundary := mw.Boundary()
	go func() {
		defer func() {
			bw.Reset(nil)
			batchWriterPool.Put(bw)
		}()
		writeOne := func(item BatchUpload, key string) error {
			bw.WriteString("--")
			bw.WriteString(boundary)
			bw.WriteString("\r\nContent-Disposition: form-data; name=\"image\"\r\nContent-Type: image/jpeg\r\n")
			bw.WriteString(idempotencyHeader)
			bw.WriteString(": ")
			bw.WriteString(key)
			bw.WriteString("\r\n\r\n")
			bw.Write(item.Image)
			if len(item.Params) > 0 {
				bw.WriteString("\r\n--")
				bw.WriteString(boundary)
				bw.WriteString("\r\nContent-Disposition: form-data; name=\"" + BatchParamsPart + "\"\r\nContent-Type: application/json\r\n\r\n")
				bw.Write(item.Params)
			}
			_, err := bw.WriteString("\r\n")
			return err
		}
		for i, item := range items {
			if err := writeOne(item, keys[i]); err != nil {
				_ = pw.CloseWithError(err)
				return
			}
		}
		bw.WriteString("--")
		bw.WriteString(boundary)
		if _, err := bw.WriteString("--\r\n"); err != nil {
			_ = pw.CloseWithError(err)
			return
		}
		_ = pw.CloseWithError(bw.Flush())
	}()

	req, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, c.BaseURL+"/v1/images:batch", pr)
	if err != nil {
		_ = pr.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := c.http().Do(req)
	if err != nil {
		_ = pr.Close()
		timedOut := attemptCtx.Err() != nil && ctx.Err() == nil
		return nil, classifyTransport(err, timedOut)
	}
	defer resp.Body.Close()
	limit := c.maxResponseBytes()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		timedOut := attemptCtx.Err() != nil && ctx.Err() == nil
		return nil, classifyTransport(err, timedOut)
	}
	if int64(len(respBody)) > limit {
		return nil, fmt.Errorf("%w: response exceeds %d bytes", ErrTooLarge, limit)
	}
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusTooManyRequests {
			c.statOverloaded.Add(1)
		}
		return nil, &StatusError{
			Method:     http.MethodPost,
			Path:       req.URL.Path,
			Code:       resp.StatusCode,
			Body:       string(bytes.TrimSpace(respBody)),
			RetryAfter: parseRetryAfter(resp.Header),
			Class:      resp.Header.Get(errorClassHeader),
		}
	}
	var br BatchResponse
	if err := json.Unmarshal(respBody, &br); err != nil {
		return nil, &corruptError{fmt.Errorf("decode batch response: %w", err)}
	}
	if len(br.Results) != len(items) {
		return nil, &corruptError{fmt.Errorf("batch response has %d results for %d items", len(br.Results), len(items))}
	}
	return br.Results, nil
}
