package cluster

import (
	"testing"
	"time"
)

// stubClock is a manually advanced clock for breaker tests.
type stubClock struct{ t time.Time }

func newStubClock() *stubClock               { return &stubClock{t: time.Unix(1000, 0)} }
func (c *stubClock) now() time.Time          { return c.t }
func (c *stubClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := newStubClock()
	b := NewBreaker(3, 100*time.Millisecond, time.Second, clk.now)

	for i := 0; i < 2; i++ {
		b.OnFailure()
		if b.State() != BreakerClosed {
			t.Fatalf("after %d failures state=%v, want closed", i+1, b.State())
		}
		if !b.Allow() {
			t.Fatalf("closed breaker refused a request after %d failures", i+1)
		}
	}
	b.OnFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("after 3 failures state=%v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens()=%d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	clk := newStubClock()
	b := NewBreaker(3, 100*time.Millisecond, time.Second, clk.now)
	b.OnFailure()
	b.OnFailure()
	b.OnSuccess()
	b.OnFailure()
	b.OnFailure()
	if b.State() != BreakerClosed {
		t.Fatalf("non-consecutive failures opened the breaker: state=%v", b.State())
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := newStubClock()
	b := NewBreaker(1, 100*time.Millisecond, time.Second, clk.now)
	b.OnFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state=%v, want open", b.State())
	}

	clk.advance(99 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted a request before cooldown elapsed")
	}
	clk.advance(1 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	// Only one probe is admitted while the first is outstanding.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("successful probe left state=%v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request after recovery")
	}
}

// TestBreakerCooldownDoubling: each failed half-open probe doubles the
// ejection window (capped), so a flapping shard is routed to exponentially
// less often; one success resets the window to base.
func TestBreakerCooldownDoubling(t *testing.T) {
	clk := newStubClock()
	base := 100 * time.Millisecond
	b := NewBreaker(1, base, 350*time.Millisecond, clk.now)

	b.OnFailure() // open, cooldown=100ms
	wantCooldowns := []time.Duration{
		200 * time.Millisecond, // after 1st failed probe
		350 * time.Millisecond, // doubled 400ms capped at max
		350 * time.Millisecond, // stays at cap
	}
	cooldown := base
	for i, want := range wantCooldowns {
		clk.advance(cooldown)
		if !b.Allow() {
			t.Fatalf("round %d: probe refused after %v cooldown", i, cooldown)
		}
		b.OnFailure() // failed probe: reopen with doubled cooldown
		if b.State() != BreakerOpen {
			t.Fatalf("round %d: state=%v, want open", i, b.State())
		}
		clk.advance(want - time.Millisecond)
		if b.Allow() {
			t.Fatalf("round %d: admitted before doubled cooldown %v elapsed", i, want)
		}
		clk.advance(time.Millisecond)
		cooldown = 0 // already advanced to the boundary
	}

	if !b.Allow() {
		t.Fatal("probe refused at final cooldown boundary")
	}
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state=%v, want closed", b.State())
	}
	if got := b.Opens(); got != 4 {
		t.Fatalf("Opens()=%d, want 4", got)
	}

	// Cooldown reset to base after success: next open ejects for 100ms only.
	b.OnFailure()
	clk.advance(base)
	if !b.Allow() {
		t.Fatal("cooldown did not reset to base after a successful probe")
	}
}

func TestBreakerFailureWhileOpenDoesNotExtendWindow(t *testing.T) {
	clk := newStubClock()
	b := NewBreaker(1, 100*time.Millisecond, time.Second, clk.now)
	b.OnFailure()
	clk.advance(50 * time.Millisecond)
	// Last-resort routing may still hit an ejected shard and fail; that must
	// not push out the recovery probe.
	b.OnFailure()
	clk.advance(50 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("failure while open extended the cooldown window")
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens()=%d, want 1", b.Opens())
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0, 0, nil)
	for i := 0; i < DefaultFailThreshold-1; i++ {
		b.OnFailure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker opened before the default threshold")
	}
	b.OnFailure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not open at the default threshold")
	}
}

func TestBreakerRecoveriesCountsCloseTransitions(t *testing.T) {
	clk := newStubClock()
	b := NewBreaker(1, 100*time.Millisecond, time.Second, clk.now)
	if b.Recoveries() != 0 {
		t.Fatalf("fresh breaker Recoveries()=%d", b.Recoveries())
	}
	// Success while already closed is not a recovery.
	b.OnSuccess()
	if b.Recoveries() != 0 {
		t.Fatalf("closed-state success counted as recovery")
	}
	for round := 1; round <= 2; round++ {
		b.OnFailure() // threshold 1: opens immediately
		if b.State() != BreakerOpen {
			t.Fatalf("round %d: state=%v, want open", round, b.State())
		}
		clk.advance(2 * time.Second)
		if !b.Allow() {
			t.Fatalf("round %d: cooldown elapsed but probe refused", round)
		}
		b.OnSuccess() // probe succeeds: open -> closed
		if b.State() != BreakerClosed {
			t.Fatalf("round %d: state=%v, want closed", round, b.State())
		}
		if got := b.Recoveries(); got != uint64(round) {
			t.Fatalf("round %d: Recoveries()=%d", round, got)
		}
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens()=%d, want 2", b.Opens())
	}
}
