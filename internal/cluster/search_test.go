package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"puppies/internal/dataset"
	"puppies/internal/faults"
	"puppies/internal/jpegc"
	"puppies/internal/psp"
	"puppies/internal/transform"
)

// searchJPEGs renders n distinct JPEG byte streams (same generator family as
// the searchidx invariance tests, so inter-image signature separation is
// known to be far above the dedup threshold).
func searchJPEGs(t *testing.T, n int) ([][]byte, []*jpegc.Image) {
	t.Helper()
	profile := dataset.PASCAL
	profile.W, profile.H = 336, 224
	gen, err := dataset.NewGenerator(profile, 7)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	raw := make([][]byte, n)
	imgs := make([]*jpegc.Image, n)
	for i := range raw {
		imgs[i], err = jpegc.FromPlanar(gen.Item(i).Image, jpegc.Options{Quality: 85})
		if err != nil {
			t.Fatalf("FromPlanar %d: %v", i, err)
		}
		var buf bytes.Buffer
		if err := imgs[i].Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
			t.Fatal(err)
		}
		raw[i] = buf.Bytes()
	}
	return raw, imgs
}

// gwSearch runs a search through the gateway: GET by id when id != "", else
// POST of the raw JPEG body.
func (tc *testCluster) gwSearch(t *testing.T, id string, body []byte, k int) (int, psp.SearchResponse) {
	t.Helper()
	var (
		resp *http.Response
		err  error
	)
	if id != "" {
		resp, err = http.Get(tc.srv.URL + "/v1/search?id=" + id + "&k=" + itoa(k))
	} else {
		resp, err = http.Post(tc.srv.URL+"/v1/search?k="+itoa(k), "image/jpeg", bytes.NewReader(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr psp.SearchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("decode search response: %v", err)
		}
	}
	return resp.StatusCode, sr
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// shardsHolding returns the shard indices that serve id directly.
func (tc *testCluster) shardsHolding(t *testing.T, id string) []int {
	t.Helper()
	var hold []int
	for i, s := range tc.shards {
		status, _, _ := getBytes(t, s.URL+"/v1/images/"+id, nil)
		if status == http.StatusOK {
			hold = append(hold, i)
		}
	}
	return hold
}

// TestGatewaySearchMergesShards spreads an unreplicated corpus across three
// shards and checks that a by-bytes query merges every shard's k-NN answer:
// the gateway's result set must span images that no single shard holds.
func TestGatewaySearchMergesShards(t *testing.T) {
	tc := newTestCluster(t, 3, func(c *Config) { c.Replicas, c.WriteQuorum = 1, 1 })
	raw, imgs := searchJPEGs(t, 6)
	ids := make([]string, len(raw))
	for i, jp := range raw {
		ids[i] = tc.upload(t, jp, "")
	}

	// By-ID: the queried image answers for itself at distance zero.
	status, sr := tc.gwSearch(t, ids[3], nil, 3)
	if status != http.StatusOK {
		t.Fatalf("search by id: HTTP %d", status)
	}
	if len(sr.Results) == 0 || sr.Results[0].ID != ids[3] || sr.Results[0].Distance != 0 {
		t.Fatalf("top-1 = %+v, want %s at distance 0", sr.Results, ids[3])
	}
	if sr.Partial {
		t.Fatal("healthy cluster flagged partial")
	}

	// By-bytes with a recompressed copy: top-1 is the stored original even
	// though the query bytes differ from every stored stream.
	recomp, err := transform.Apply(imgs[1], transform.Spec{Op: transform.OpCompress, Quality: 60})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := recomp.Encode(&buf, jpegc.EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	status, sr = tc.gwSearch(t, "", buf.Bytes(), len(ids))
	if status != http.StatusOK {
		t.Fatalf("search by bytes: HTTP %d", status)
	}
	if len(sr.Results) == 0 || sr.Results[0].ID != ids[1] {
		t.Fatalf("top-1 = %+v, want %s", sr.Results, ids[1])
	}

	// With Replicas=1 and k covering the whole corpus, a full merge must pull
	// ids held by more than one shard — proof the answer isn't one shard's.
	got := make(map[string]bool, len(sr.Results))
	for _, hit := range sr.Results {
		got[hit.ID] = true
	}
	shardSpan := make(map[int]bool)
	for _, id := range ids {
		if !got[id] {
			continue
		}
		for _, si := range tc.shardsHolding(t, id) {
			shardSpan[si] = true
		}
	}
	if len(shardSpan) < 2 {
		t.Fatalf("merged results span %d shard(s), want >= 2 (results %v)", len(shardSpan), sr.Results)
	}
}

// TestGatewaySearchPartialUnderPartition is the degradation e2e: with one of
// three unreplicated shards unreachable, searches still answer from the
// surviving shards but carry partial=true; a by-ID query whose only replica
// is behind the partition comes back 503, not a lying 404.
func TestGatewaySearchPartialUnderPartition(t *testing.T) {
	tc := newTestCluster(t, 3, func(c *Config) { c.Replicas, c.WriteQuorum = 1, 1 })
	raw, _ := searchJPEGs(t, 6)
	ids := make([]string, len(raw))
	for i, jp := range raw {
		ids[i] = tc.upload(t, jp, "")
	}

	// Pick a victim shard that holds at least one image, and a survivor id
	// held elsewhere.
	victim, victimID, survivorID := -1, "", ""
	for _, id := range ids {
		hold := tc.shardsHolding(t, id)
		if len(hold) != 1 {
			t.Fatalf("id %s on %d shards, want exactly 1 with Replicas=1", id, len(hold))
		}
		if victim == -1 {
			victim, victimID = hold[0], id
		} else if hold[0] != victim && survivorID == "" {
			survivorID = id
		}
	}
	if victimID == "" || survivorID == "" {
		t.Fatalf("corpus did not spread across shards: %v", ids)
	}
	tc.part.Isolate(tc.hosts[victim], faults.LinkUnreachable)

	status, sr := tc.gwSearch(t, survivorID, nil, 3)
	if status != http.StatusOK {
		t.Fatalf("degraded search: HTTP %d", status)
	}
	if len(sr.Results) == 0 || sr.Results[0].ID != survivorID {
		t.Fatalf("top-1 = %+v, want %s", sr.Results, survivorID)
	}
	if !sr.Partial {
		t.Fatal("search with an unreachable shard not flagged partial")
	}

	// The partitioned image's signature is unreachable: unavailable, not 404.
	status, _ = tc.gwSearch(t, victimID, nil, 3)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("search for partitioned image: HTTP %d, want 503", status)
	}

	// Heal: the flag clears and the victim answers again.
	tc.part.HealAll()
	status, sr = tc.gwSearch(t, victimID, nil, 3)
	if status != http.StatusOK || sr.Partial {
		t.Fatalf("healed search: HTTP %d partial=%v, want 200 partial=false", status, sr.Partial)
	}
	if len(sr.Results) == 0 || sr.Results[0].ID != victimID {
		t.Fatalf("healed top-1 = %+v, want %s", sr.Results, victimID)
	}
}

func TestGatewaySearchUnknownID(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	raw, _ := searchJPEGs(t, 1)
	tc.upload(t, raw[0], "")
	status, _ := tc.gwSearch(t, "no-such-image", nil, 3)
	if status != http.StatusNotFound {
		t.Fatalf("unknown id: HTTP %d, want 404 (every shard answered)", status)
	}
}

func TestGatewaySearchAllShardsDown(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	for _, h := range tc.hosts {
		tc.part.Isolate(h, faults.LinkUnreachable)
	}
	status, _ := tc.gwSearch(t, "anything", nil, 3)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("all shards down: HTTP %d, want 503", status)
	}
}

// TestGatewaySearchStatz checks the new route shows up in the gateway's own
// telemetry, weighted like the other fan-out routes.
func TestGatewaySearchStatz(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	raw, _ := searchJPEGs(t, 1)
	id := tc.upload(t, raw[0], "")
	if status, _ := tc.gwSearch(t, id, nil, 1); status != http.StatusOK {
		t.Fatalf("search: HTTP %d", status)
	}
	st := tc.gw.Stats()
	if _, ok := st.LatencyNs["search"]; !ok {
		t.Fatalf("gateway statz has no search latency histogram: %v", st.LatencyNs)
	}
}
