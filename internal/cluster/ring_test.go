package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func ringOf(vnodes int, shards ...string) *Ring {
	r := NewRing(vnodes)
	for _, s := range shards {
		r.Add(s)
	}
	return r
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("img-%06d", i)
	}
	return keys
}

// TestRingDeterministicPlacement is the acceptance property: identical
// membership yields identical placement regardless of construction order or
// process. Placement is a pure function of (members, vnodes) — no RNG, no
// map-iteration order, no process state — so two independently built rings
// must agree on every replica set.
func TestRingDeterministicPlacement(t *testing.T) {
	shards := []string{"http://s1:1", "http://s2:1", "http://s3:1", "http://s4:1", "http://s5:1"}
	a := ringOf(64, shards...)

	shuffled := append([]string(nil), shards...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b := ringOf(64, shuffled...)

	for _, key := range testKeys(2000) {
		ra, rb := a.Replicas(key, 3), b.Replicas(key, 3)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("key %q: placement differs across construction orders: %v vs %v", key, ra, rb)
		}
	}
}

func TestRingReplicaSetShape(t *testing.T) {
	r := ringOf(32, "http://a:1", "http://b:1", "http://c:1")
	for _, key := range testKeys(500) {
		reps := r.Replicas(key, 3)
		if len(reps) != 3 {
			t.Fatalf("key %q: %d replicas, want 3", key, len(reps))
		}
		seen := map[string]bool{}
		for _, s := range reps {
			if seen[s] {
				t.Fatalf("key %q: duplicate replica %s in %v", key, s, reps)
			}
			seen[s] = true
		}
	}
	// Asking for more replicas than members returns all members.
	if got := r.Replicas("x", 10); len(got) != 3 {
		t.Fatalf("over-asked replica set has %d entries, want 3", len(got))
	}
	// An empty ring places nothing.
	if got := NewRing(8).Replicas("x", 2); got != nil {
		t.Fatalf("empty ring returned %v", got)
	}
}

// TestRingRemovalMovesOnlyOwnedKeys checks both halves of the consistent-
// hashing contract on shard removal: (a) a key whose primary survives keeps
// its primary — zero collateral movement; (b) the fraction of keys that do
// move is ~1/N (property-tested within [1/3N, 3/N] bounds, loose enough for
// hash noise, tight enough to catch a broken ring that remaps everything).
func TestRingRemovalMovesOnlyOwnedKeys(t *testing.T) {
	shards := []string{"http://s1:1", "http://s2:1", "http://s3:1", "http://s4:1", "http://s5:1"}
	const n = 5
	removed := shards[2]
	before := ringOf(128, shards...)
	after := ringOf(128, shards...)
	after.Remove(removed)

	keys := testKeys(4000)
	moved := 0
	for _, key := range keys {
		pb := before.Replicas(key, 1)[0]
		pa := after.Replicas(key, 1)[0]
		if pb == removed {
			moved++
			if pa == removed {
				t.Fatalf("key %q still maps to removed shard", key)
			}
			continue
		}
		if pa != pb {
			t.Fatalf("key %q: primary moved %s -> %s though neither is the removed shard", key, pb, pa)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 1.0/(3*n) || frac > 3.0/n {
		t.Fatalf("removal moved %.1f%% of keys; want ~%.1f%% (bounds [%.1f%%, %.1f%%])",
			100*frac, 100.0/n, 100.0/(3*n), 300.0/n)
	}
}

// TestRingRemovalPreservesSurvivingReplicas checks the R-replica analogue:
// after removing one shard, every key's new replica set still contains all
// surviving members of its old set (the move is purely additive for them).
func TestRingRemovalPreservesSurvivingReplicas(t *testing.T) {
	shards := []string{"http://s1:1", "http://s2:1", "http://s3:1", "http://s4:1"}
	removed := shards[0]
	before := ringOf(64, shards...)
	after := ringOf(64, shards...)
	after.Remove(removed)

	for _, key := range testKeys(1000) {
		oldSet := before.Replicas(key, 3)
		newSet := after.Replicas(key, 3)
		inNew := map[string]bool{}
		for _, s := range newSet {
			inNew[s] = true
		}
		for _, s := range oldSet {
			if s != removed && !inNew[s] {
				t.Fatalf("key %q: surviving replica %s dropped from set %v -> %v", key, s, oldSet, newSet)
			}
		}
	}
}

func TestRingMembership(t *testing.T) {
	r := NewRing(16)
	if !r.Add("http://a:1") || r.Add("http://a:1") {
		t.Fatal("Add change-reporting wrong")
	}
	r.Add("http://b:1")
	if got := r.Members(); !reflect.DeepEqual(got, []string{"http://a:1", "http://b:1"}) {
		t.Fatalf("Members() = %v", got)
	}
	if r.Points() != 32 {
		t.Fatalf("Points() = %d, want 32", r.Points())
	}
	if !r.Remove("http://a:1") || r.Remove("http://a:1") {
		t.Fatal("Remove change-reporting wrong")
	}
	if r.Size() != 1 || r.Points() != 16 {
		t.Fatalf("after removal: size=%d points=%d", r.Size(), r.Points())
	}
	for _, key := range testKeys(50) {
		if reps := r.Replicas(key, 2); len(reps) != 1 || reps[0] != "http://b:1" {
			t.Fatalf("single-member ring placed %q on %v", key, reps)
		}
	}
}

// TestRingLoadBalance sanity-checks vnode smoothing: with 64 vnodes per
// shard no shard should own a grossly disproportionate share of keys.
func TestRingLoadBalance(t *testing.T) {
	shards := []string{"http://s1:1", "http://s2:1", "http://s3:1", "http://s4:1"}
	r := ringOf(64, shards...)
	counts := map[string]int{}
	keys := testKeys(8000)
	for _, key := range keys {
		counts[r.Replicas(key, 1)[0]]++
	}
	ideal := float64(len(keys)) / float64(len(shards))
	for s, c := range counts {
		if ratio := float64(c) / ideal; ratio < 0.5 || ratio > 2.0 {
			t.Errorf("shard %s owns %d keys (%.2fx ideal); vnode smoothing broken", s, c, ratio)
		}
	}
}
