package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"puppies/internal/faults"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/psp"
)

// testJPEG encodes a synthetic image to JPEG bytes.
func testJPEG(t testing.TB) []byte {
	t.Helper()
	const w, h = 32, 24
	img, err := imgplane.New(w, h, 3)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			img.Planes[0].Pix[i] = float32(100 + 80*math.Sin(float64(x)/6)*math.Cos(float64(y)/8))
			img.Planes[1].Pix[i] = float32(128 + 25*math.Sin(float64(x+y)/9))
			img.Planes[2].Pix[i] = float32(128 + 25*math.Cos(float64(x-y)/7))
		}
	}
	jimg, err := jpegc.FromPlanar(img, jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jimg.Encode(&buf, jpegc.EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testCluster is N real pspd handlers behind one gateway, with a fault-
// injecting partition on the gateway→shard links.
type testCluster struct {
	part   *faults.Partition
	shards []*httptest.Server
	hosts  []string
	gw     *Gateway
	srv    *httptest.Server
}

func newTestCluster(t *testing.T, n int, mod func(*Config)) *testCluster {
	t.Helper()
	tc := &testCluster{part: faults.NewPartition(1)}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s := httptest.NewServer(psp.NewServer().Handler())
		t.Cleanup(s.Close)
		tc.shards = append(tc.shards, s)
		tc.hosts = append(tc.hosts, strings.TrimPrefix(s.URL, "http://"))
		urls[i] = s.URL
	}
	cfg := Config{
		Shards:       urls,
		Replicas:     3,
		WriteQuorum:  2,
		Transport:    tc.part.Transport(nil),
		ShardTimeout: 1 * time.Second,
		HedgeDelay:   25 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.gw = gw
	tc.srv = httptest.NewServer(gw.Handler())
	t.Cleanup(tc.srv.Close)
	return tc
}

// hostOf maps a shard URL back to its host (the partition key).
func hostOf(url string) string { return strings.TrimPrefix(url, "http://") }

// upload POSTs jpeg through the gateway with the given idempotency key and
// returns the assigned image ID.
func (tc *testCluster) upload(t *testing.T, jpeg []byte, key string) string {
	t.Helper()
	id, status, body := tc.tryUpload(t, jpeg, key)
	if status != http.StatusOK {
		t.Fatalf("upload: HTTP %d: %s", status, body)
	}
	return id
}

func (tc *testCluster) tryUpload(t *testing.T, jpeg []byte, key string) (id string, status int, body []byte) {
	t.Helper()
	reqBody, err := json.Marshal(psp.UploadRequest{Image: jpeg})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, tc.srv.URL+"/v1/images", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", resp.StatusCode, body
	}
	var ur psp.UploadResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatalf("decode upload response: %v", err)
	}
	return ur.ID, resp.StatusCode, body
}

// getBytes GETs a URL and returns status, headers, body.
func getBytes(t *testing.T, url string, hdr http.Header) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// shardHas reports whether the shard at url serves id with exactly jpeg.
func shardHas(t *testing.T, url, id string, jpeg []byte) bool {
	t.Helper()
	status, _, body := getBytes(t, url+"/v1/images/"+id, nil)
	return status == http.StatusOK && bytes.Equal(body, jpeg)
}

func TestGatewayConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted an empty shard list")
	}
	if _, err := New(Config{Shards: []string{"http://a:1"}, Replicas: 2, WriteQuorum: 3}); err == nil {
		t.Error("New accepted write quorum > replicas")
	}
	if _, err := New(Config{Shards: []string{"ftp://a:1"}}); err == nil {
		t.Error("New accepted a non-http shard URL")
	}
}

func TestGatewayUploadReplicatesToAllReplicas(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	jpeg := testJPEG(t)
	id := tc.upload(t, jpeg, "key-replicate")

	if want := deriveID("key-replicate"); id != want {
		t.Fatalf("assigned id %q, want derived %q", id, want)
	}
	order := tc.gw.ReplicaOrder(id)
	if len(order) != 3 {
		t.Fatalf("replica order %v, want 3 shards", order)
	}
	// The client is acked at quorum 2; the third replica lands async.
	waitFor(t, 3*time.Second, "full replication", func() bool {
		for _, u := range order {
			if !shardHas(t, u, id, jpeg) {
				return false
			}
		}
		return true
	})

	// The gateway serves it back byte-identically.
	status, hdr, body := getBytes(t, tc.srv.URL+"/v1/images/"+id, nil)
	if status != http.StatusOK || !bytes.Equal(body, jpeg) {
		t.Fatalf("gateway GET: status %d, %d bytes (want 200, %d bytes)", status, len(body), len(jpeg))
	}
	if hdr.Get("ETag") == "" {
		t.Error("gateway GET dropped the shard ETag")
	}
}

func TestGatewayUploadIdempotentRetry(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	jpeg := testJPEG(t)
	id1 := tc.upload(t, jpeg, "key-retry")
	id2 := tc.upload(t, jpeg, "key-retry")
	if id1 != id2 {
		t.Fatalf("retry with the same key assigned %q then %q", id1, id2)
	}
	// No shard accumulated duplicates.
	for _, s := range tc.shards {
		status, _, body := getBytes(t, s.URL+"/v1/images", nil)
		if status != http.StatusOK {
			t.Fatalf("shard list: HTTP %d", status)
		}
		var lr psp.ListResponse
		if err := json.Unmarshal(body, &lr); err != nil {
			t.Fatal(err)
		}
		if len(lr.IDs) > 1 {
			t.Fatalf("shard %s stores %v, want at most one id", s.URL, lr.IDs)
		}
	}
}

func TestGatewayUploadQuorumFailure(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	id := deriveID("key-quorum-fail")
	order := tc.gw.ReplicaOrder(id)
	tc.part.Isolate(hostOf(order[0]), faults.LinkUnreachable)
	tc.part.Isolate(hostOf(order[1]), faults.LinkUnreachable)

	_, status, _ := tc.tryUpload(t, testJPEG(t), "key-quorum-fail")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("upload with 2/3 replicas down: HTTP %d, want 503", status)
	}
	if got := tc.gw.Stats().UploadQuorumFailures; got != 1 {
		t.Fatalf("UploadQuorumFailures=%d, want 1", got)
	}

	// A retry with the same key after the partition heals targets the same
	// id and succeeds.
	tc.part.HealAll()
	if got := tc.upload(t, testJPEG(t), "key-quorum-fail"); got != id {
		t.Fatalf("post-heal retry assigned %q, want %q", got, id)
	}
}

func TestGatewayUploadRejectsGarbageUnanimously(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	_, status, body := tc.tryUpload(t, []byte("not a jpeg"), "key-garbage")
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("garbage upload: HTTP %d (%s), want 422 passthrough", status, body)
	}
	if tc.gw.Stats().UploadQuorumFailures != 0 {
		t.Error("deterministic rejection was miscounted as a quorum failure")
	}
}

// TestGatewayCrashPartitionMatrix is the fault matrix: with one replica's
// link failing in each mode, both uploads and reads keep succeeding with
// zero client-visible errors.
func TestGatewayCrashPartitionMatrix(t *testing.T) {
	modes := []struct {
		name string
		mode faults.LinkMode
	}{
		{"unreachable", faults.LinkUnreachable},
		{"blackhole", faults.LinkBlackhole},
		{"drop-replies", faults.LinkDropReplies},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			tc := newTestCluster(t, 3, func(cfg *Config) {
				cfg.ShardTimeout = 300 * time.Millisecond
			})
			jpeg := testJPEG(t)

			// Seed one image while healthy and let it reach all replicas.
			seedID := tc.upload(t, jpeg, "seed-"+m.name)
			waitFor(t, 3*time.Second, "seed replication", func() bool {
				for _, u := range tc.gw.ReplicaOrder(seedID) {
					if !shardHas(t, u, seedID, jpeg) {
						return false
					}
				}
				return true
			})

			// Fault the seed's primary link, then read through the gateway:
			// the request must fail over (or hedge past the hang) and serve
			// identical bytes.
			primary := tc.gw.ReplicaOrder(seedID)[0]
			tc.part.Isolate(hostOf(primary), m.mode)
			for i := 0; i < 3; i++ {
				status, _, body := getBytes(t, tc.srv.URL+"/v1/images/"+seedID, nil)
				if status != http.StatusOK || !bytes.Equal(body, jpeg) {
					t.Fatalf("GET %d under %s: status %d, want clean 200", i, m.name, status)
				}
			}

			// Uploads also keep working: any key whose replica set includes
			// the faulted shard still reaches quorum 2/3.
			upID := tc.upload(t, jpeg, "up-"+m.name)
			status, _, body := getBytes(t, tc.srv.URL+"/v1/images/"+upID, nil)
			if status != http.StatusOK || !bytes.Equal(body, jpeg) {
				t.Fatalf("read-back of upload under %s: status %d", m.name, status)
			}
			if tc.gw.Stats().Failovers == 0 && tc.gw.Stats().Hedges == 0 {
				t.Error("no failover or hedge recorded though the primary link was down")
			}
		})
	}
}

// TestGatewayHeaderPassthrough pins the proxy's response contract: status
// codes and the psp protocol headers cross the gateway unchanged.
func TestGatewayHeaderPassthrough(t *testing.T) {
	cases := []struct {
		name       string
		status     int
		hdr        map[string]string
		body       string
		wantStatus int
		wantHdr    map[string]string
	}{
		{
			name:       "ok-with-validators",
			status:     http.StatusOK,
			hdr:        map[string]string{"ETag": `"abc123"`, "Cache-Control": "no-cache", "Content-Type": "image/jpeg"},
			body:       "JPEGBYTES",
			wantStatus: http.StatusOK,
			wantHdr:    map[string]string{"ETag": `"abc123"`, "Cache-Control": "no-cache", "Content-Type": "image/jpeg"},
		},
		{
			name:       "corrupt-class",
			status:     http.StatusInternalServerError,
			hdr:        map[string]string{psp.ErrorClassHeader: psp.ErrorClassCorrupt},
			body:       "stored image is damaged",
			wantStatus: http.StatusInternalServerError,
			wantHdr:    map[string]string{psp.ErrorClassHeader: psp.ErrorClassCorrupt},
		},
		{
			name:       "retry-after-on-503",
			status:     http.StatusServiceUnavailable,
			hdr:        map[string]string{"Retry-After": "7"},
			body:       "overloaded",
			wantStatus: http.StatusServiceUnavailable,
			wantHdr:    map[string]string{"Retry-After": "7"},
		},
		{
			name:       "not-found",
			status:     http.StatusNotFound,
			wantStatus: http.StatusNotFound,
		},
		{
			name:       "deterministic-400",
			status:     http.StatusBadRequest,
			body:       "bad spec",
			wantStatus: http.StatusBadRequest,
		},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			var hits atomic.Int64
			stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits.Add(1)
				for k, v := range tt.hdr {
					w.Header().Set(k, v)
				}
				w.WriteHeader(tt.status)
				_, _ = io.WriteString(w, tt.body)
			}))
			defer stub.Close()
			gw, err := New(Config{
				Shards: []string{stub.URL}, Replicas: 1, WriteQuorum: 1,
				ShardTimeout: time.Second, DisableReadVerify: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(gw.Handler())
			defer srv.Close()

			status, hdr, body := getBytes(t, srv.URL+"/v1/images/abc", nil)
			if status != tt.wantStatus {
				t.Fatalf("status %d, want %d", status, tt.wantStatus)
			}
			for k, v := range tt.wantHdr {
				if got := hdr.Get(k); got != v {
					t.Errorf("header %s = %q, want %q", k, got, v)
				}
			}
			if tt.wantStatus == http.StatusOK && string(body) != tt.body {
				t.Errorf("body %q, want %q", body, tt.body)
			}
			// Status-dependent retry semantics live in the client; the
			// gateway must answer from its single replica without retrying
			// terminal statuses itself.
			if tt.wantStatus == http.StatusBadRequest && hits.Load() != 1 {
				t.Errorf("deterministic 400 hit the shard %d times, want 1", hits.Load())
			}
		})
	}
}

// TestGatewayTypedErrorsThroughClient is the end-to-end satellite check: a
// psp.Client pointed at the gateway still classifies errors (and stops
// retrying corrupt ones) because the class header crosses the proxy intact.
func TestGatewayTypedErrorsThroughClient(t *testing.T) {
	var hits atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set(psp.ErrorClassHeader, psp.ErrorClassCorrupt)
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = io.WriteString(w, "stored image is damaged")
	}))
	defer stub.Close()
	gw, err := New(Config{
		Shards: []string{stub.URL}, Replicas: 1, WriteQuorum: 1,
		ShardTimeout: time.Second, DisableReadVerify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	client := &psp.Client{BaseURL: srv.URL, MaxRetries: 3}
	_, err = client.FetchImage(context.Background(), "abc")
	if !errors.Is(err, psp.ErrCorrupt) {
		t.Fatalf("client error = %v, want ErrCorrupt", err)
	}
	if errors.Is(err, psp.ErrRetryable) {
		t.Fatal("corrupt-class error still classified retryable through the gateway")
	}
	if hits.Load() != 1 {
		t.Fatalf("corrupt response was retried: shard hit %d times, want 1", hits.Load())
	}
}

func TestGatewayRepairAfterPartitionHeals(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	jpeg := testJPEG(t)
	id := deriveID("key-repair")
	order := tc.gw.ReplicaOrder(id)

	// Third replica is dark during the upload: quorum 2/3 still acks.
	tc.part.Isolate(hostOf(order[2]), faults.LinkUnreachable)
	if got := tc.upload(t, jpeg, "key-repair"); got != id {
		t.Fatalf("id %q, want %q", got, id)
	}
	if shardHas(t, order[2], id, jpeg) {
		t.Fatal("partitioned shard received the upload")
	}

	// The straggler drain schedules an immediate background repair, which
	// must fail against the still-dark link (drop #2 after the upload's own
	// drop). Wait for it so the admin walk below is what restores the
	// replica, deterministically.
	waitFor(t, 3*time.Second, "in-partition repair attempt to fail", func() bool {
		return tc.part.Drops(hostOf(order[2])) >= 2
	})

	// Heal, then run the admin repair walk; the missing replica is restored
	// byte-identically.
	tc.part.HealAll()
	resp, err := http.Post(tc.srv.URL+"/v1/admin/repair", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep RepairReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Repaired < 1 {
		t.Fatalf("repair walk repaired %d replicas, want >= 1 (report %+v)", rep.Repaired, rep)
	}
	if !shardHas(t, order[2], id, jpeg) {
		t.Fatal("replica not byte-identical after repair walk")
	}
	if tc.gw.Stats().ReadRepairs < 1 {
		t.Error("statz readRepairs not incremented by the repair walk")
	}
}

// TestGatewayReadVerifyRepairsOrganically: serving a GET triggers the
// one-shot quorum read verification, which finds the under-replicated copy
// and repairs it without any admin intervention.
func TestGatewayReadVerifyRepairsOrganically(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	jpeg := testJPEG(t)
	id := deriveID("key-verify")
	order := tc.gw.ReplicaOrder(id)

	tc.part.Isolate(hostOf(order[2]), faults.LinkUnreachable)
	tc.upload(t, jpeg, "key-verify")
	tc.part.HealAll()

	status, _, body := getBytes(t, tc.srv.URL+"/v1/images/"+id, nil)
	if status != http.StatusOK || !bytes.Equal(body, jpeg) {
		t.Fatalf("gateway GET: status %d", status)
	}
	waitFor(t, 3*time.Second, "read-verify repair", func() bool {
		return shardHas(t, order[2], id, jpeg)
	})
}

func TestGatewayBreakerEjectsAndReadmitsShard(t *testing.T) {
	clk := newStubClock()
	tc := newTestCluster(t, 3, func(cfg *Config) {
		cfg.FailThreshold = 2
		cfg.BreakerCooldown = 100 * time.Millisecond
		cfg.Now = clk.now
	})
	victim := tc.shards[0].URL
	tc.part.Isolate(hostOf(victim), faults.LinkUnreachable)

	// Two failed health probes open the breaker.
	tc.gw.probeOnce(context.Background())
	tc.gw.probeOnce(context.Background())
	st := tc.gw.Stats()
	if st.OpenBreakers != 1 || st.Shards[victim].BreakerState != "open" {
		t.Fatalf("after 2 failed probes: %d open breakers, victim state %q", st.OpenBreakers, st.Shards[victim].BreakerState)
	}

	// Gateway healthz reflects the ejection.
	status, _, body := getBytes(t, tc.srv.URL+"/v1/healthz", nil)
	var gh GatewayHealth
	if err := json.Unmarshal(body, &gh); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || gh.Status != "degraded" || gh.Healthy != 2 {
		t.Fatalf("healthz = %d %+v, want 200/degraded/2-healthy", status, gh)
	}

	// Heal the link; the next probe closes the breaker and the shard is
	// back in rotation.
	tc.part.HealAll()
	clk.advance(time.Second)
	tc.gw.probeOnce(context.Background())
	st = tc.gw.Stats()
	if st.OpenBreakers != 0 || st.Shards[victim].BreakerState != "closed" {
		t.Fatalf("after heal: %d open breakers, victim state %q", st.OpenBreakers, st.Shards[victim].BreakerState)
	}
	if st.Shards[victim].BreakerOpens < 1 {
		t.Error("statz breakerOpens not recorded")
	}
}

func TestGatewayStartProbesEjectCrashedShard(t *testing.T) {
	tc := newTestCluster(t, 3, func(cfg *Config) {
		cfg.FailThreshold = 2
		cfg.ProbeInterval = 20 * time.Millisecond
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tc.gw.Start(ctx)

	victim := tc.shards[0]
	victim.Close() // hard crash: connection refused from now on
	waitFor(t, 3*time.Second, "breaker ejection via Start probes", func() bool {
		return tc.gw.Stats().OpenBreakers == 1
	})
}

func TestGatewayListMergesAcrossShards(t *testing.T) {
	tc := newTestCluster(t, 3, func(cfg *Config) {
		cfg.Replicas = 2
		cfg.WriteQuorum = 2
	})
	jpeg := testJPEG(t)
	want := map[string]bool{}
	for i := 0; i < 5; i++ {
		want[tc.upload(t, jpeg, fmt.Sprintf("list-key-%d", i))] = true
	}

	// With R=2 every image survives any single dark shard; the merged
	// listing stays complete.
	tc.part.Isolate(tc.hosts[0], faults.LinkUnreachable)
	status, _, body := getBytes(t, tc.srv.URL+"/v1/images", nil)
	if status != http.StatusOK {
		t.Fatalf("list: HTTP %d", status)
	}
	var lr psp.ListResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.IDs) != len(want) {
		t.Fatalf("merged list has %d ids, want %d: %v", len(lr.IDs), len(want), lr.IDs)
	}
	for _, id := range lr.IDs {
		if !want[id] {
			t.Fatalf("unexpected id %q in merged list", id)
		}
	}
}

func TestGatewayMembershipJoinLeaveRebalance(t *testing.T) {
	tc := newTestCluster(t, 2, func(cfg *Config) {
		cfg.Replicas = 2
		cfg.WriteQuorum = 1
	})
	jpeg := testJPEG(t)
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, tc.upload(t, jpeg, fmt.Sprintf("member-key-%d", i)))
	}
	waitFor(t, 3*time.Second, "initial replication", func() bool {
		for _, id := range ids {
			for _, u := range tc.gw.ReplicaOrder(id) {
				if !shardHas(t, u, id, jpeg) {
					return false
				}
			}
		}
		return true
	})

	// Join a third shard: the synchronous rebalance walk must leave every
	// image fully replicated under the NEW placement.
	third := httptest.NewServer(psp.NewServer().Handler())
	t.Cleanup(third.Close)
	postJSON := func(path string, v any) (int, []byte) {
		body, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(tc.srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		rb, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, rb
	}
	status, body := postJSON("/v1/admin/shards", MembershipChange{Op: "join", Shard: third.URL})
	if status != http.StatusOK {
		t.Fatalf("join: HTTP %d: %s", status, body)
	}
	var mr MembershipResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Changed || len(mr.Shards) != 3 {
		t.Fatalf("join response %+v, want changed with 3 members", mr)
	}
	for _, id := range ids {
		for _, u := range tc.gw.ReplicaOrder(id) {
			if !shardHas(t, u, id, jpeg) {
				t.Fatalf("after join: image %s missing from new replica %s", id, u)
			}
		}
		if status, _, got := getBytes(t, tc.srv.URL+"/v1/images/"+id, nil); status != http.StatusOK || !bytes.Equal(got, jpeg) {
			t.Fatalf("after join: gateway GET %s: HTTP %d", id, status)
		}
	}

	// Leave: placement folds back onto the survivors, fully replicated
	// before the call returns.
	status, body = postJSON("/v1/admin/shards", MembershipChange{Op: "leave", Shard: third.URL})
	if status != http.StatusOK {
		t.Fatalf("leave: HTTP %d: %s", status, body)
	}
	for _, id := range ids {
		order := tc.gw.ReplicaOrder(id)
		if len(order) != 2 {
			t.Fatalf("after leave: replica order %v", order)
		}
		for _, u := range order {
			if !shardHas(t, u, id, jpeg) {
				t.Fatalf("after leave: image %s missing from replica %s", id, u)
			}
		}
	}

	// Removing the last shards is refused.
	for _, s := range tc.shards {
		postJSON("/v1/admin/shards", MembershipChange{Op: "leave", Shard: s.URL})
	}
	st := tc.gw.Stats()
	if st.RingShards != 1 {
		t.Fatalf("ring has %d members after leave-all, want the guarded last one", st.RingShards)
	}
}

// TestGatewayRescueServesFromNonReplicaMember: a record living outside its
// replica set (mid-rebalance state) is still served and re-replicated.
func TestGatewayRescueServesFromNonReplicaMember(t *testing.T) {
	tc := newTestCluster(t, 3, func(cfg *Config) {
		cfg.Replicas = 1
		cfg.WriteQuorum = 1
	})
	jpeg := testJPEG(t)

	// Find a key whose single replica is shard 0, store the record on a
	// DIFFERENT shard directly, bypassing placement.
	var id string
	for i := 0; ; i++ {
		key := fmt.Sprintf("rescue-key-%d", i)
		if tc.gw.ReplicaOrder(deriveID(key))[0] == tc.shards[0].URL {
			id = deriveID(key)
			break
		}
	}
	body, err := json.Marshal(psp.UploadRequest{Image: jpeg})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, tc.shards[1].URL+"/v1/images/"+id, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct shard PUT: HTTP %d", resp.StatusCode)
	}

	// The replica 404s; the gateway rescues from the off-placement member.
	status, _, got := getBytes(t, tc.srv.URL+"/v1/images/"+id, nil)
	if status != http.StatusOK || !bytes.Equal(got, jpeg) {
		t.Fatalf("rescue GET: HTTP %d", status)
	}
	// And the record is re-replicated onto its assigned replica.
	waitFor(t, 3*time.Second, "rescue re-replication", func() bool {
		return shardHas(t, tc.shards[0].URL, id, jpeg)
	})
}

func TestGatewayDrainingHealthz(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.gw.SetDraining(true)
	status, hdr, body := getBytes(t, tc.srv.URL+"/v1/healthz", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: HTTP %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining healthz missing Retry-After")
	}
	var gh GatewayHealth
	if err := json.Unmarshal(body, &gh); err != nil {
		t.Fatal(err)
	}
	if gh.Status != "draining" {
		t.Fatalf("status %q, want draining", gh.Status)
	}
	tc.gw.SetDraining(false)
	if status, _, _ := getBytes(t, tc.srv.URL+"/v1/healthz", nil); status != http.StatusOK {
		t.Fatalf("healthz after undrain: HTTP %d", status)
	}
}
