package cluster

import (
	"sync"
	"time"
)

// BreakerState is the circuit-breaker state for one shard.
type BreakerState int

const (
	// BreakerClosed routes traffic normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen ejects the shard: requests are not routed to it until
	// the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe request; its outcome
	// decides between closing and re-opening with a longer cooldown.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker default knobs; see Config for the gateway-level overrides.
const (
	DefaultFailThreshold      = 3
	DefaultBreakerCooldown    = 500 * time.Millisecond
	DefaultBreakerCooldownMax = 15 * time.Second
)

// Breaker is a per-shard circuit breaker. failThreshold consecutive
// failures open it; after the cooldown a single half-open probe is
// admitted. A successful probe closes the breaker and resets the cooldown;
// a failed probe re-opens it with the cooldown doubled (capped at max), so
// a flapping shard is ejected for exponentially longer stretches — the same
// backoff shape the PR 1 client uses between retries, applied to
// membership instead of requests.
type Breaker struct {
	mu            sync.Mutex
	failThreshold int
	cooldownBase  time.Duration
	cooldownMax   time.Duration
	now           func() time.Time

	state       BreakerState
	consecFails int
	cooldown    time.Duration
	openUntil   time.Time
	probing     bool
	opens       uint64
	recoveries  uint64
}

// NewBreaker builds a closed breaker. Zero arguments take the package
// defaults; now is stubbed in tests (nil means time.Now).
func NewBreaker(failThreshold int, cooldownBase, cooldownMax time.Duration, now func() time.Time) *Breaker {
	if failThreshold <= 0 {
		failThreshold = DefaultFailThreshold
	}
	if cooldownBase <= 0 {
		cooldownBase = DefaultBreakerCooldown
	}
	if cooldownMax <= 0 {
		cooldownMax = DefaultBreakerCooldownMax
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{
		failThreshold: failThreshold,
		cooldownBase:  cooldownBase,
		cooldownMax:   cooldownMax,
		now:           now,
		cooldown:      cooldownBase,
	}
}

// Allow reports whether a request may be routed to the shard right now.
// When the cooldown of an open breaker has elapsed, the first Allow call
// transitions to half-open and admits that caller as the probe; concurrent
// callers keep being refused until the probe resolves.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Before(b.openUntil) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// OnSuccess records a successful request or health probe.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.state = BreakerClosed
		b.cooldown = b.cooldownBase
		b.recoveries++
	}
}

// OnFailure records a failed request or health probe.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.failThreshold {
			b.open()
		}
	case BreakerHalfOpen:
		// The probe failed: back off twice as long before the next one.
		b.cooldown *= 2
		if b.cooldown > b.cooldownMax {
			b.cooldown = b.cooldownMax
		}
		b.open()
	case BreakerOpen:
		// Failures while open (e.g. last-resort routing) keep it open but
		// do not extend the window: recovery probing must still happen.
	}
}

func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openUntil = b.now().Add(b.cooldown)
	b.consecFails = 0
	b.opens++
}

// State returns the current state without advancing open→half-open.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens reports how many times the breaker has opened.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Recoveries reports how many times the breaker has closed again after
// being open — the "and recovered" half of what a chaos run asserts.
func (b *Breaker) Recoveries() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.recoveries
}
