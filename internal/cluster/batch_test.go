package cluster

import (
	"bytes"
	"encoding/json"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"testing"
	"time"

	"puppies/internal/psp"
)

// postBatch POSTs a hand-rolled multipart batch to the gateway and decodes
// the per-part results. Each part is an UploadRequest body with an optional
// Idempotency-Key part header (empty string omits it).
func postBatch(t *testing.T, url string, bodies [][]byte, keys []string) (int, psp.BatchResponse) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i, b := range bodies {
		hdr := textproto.MIMEHeader{}
		hdr.Set("Content-Disposition", `form-data; name="image"`)
		hdr.Set("Content-Type", "application/json")
		if keys[i] != "" {
			hdr.Set("Idempotency-Key", keys[i])
		}
		pw, err := mw.CreatePart(hdr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pw.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/images:batch", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br psp.BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatalf("decode batch response: %v", err)
		}
	}
	return resp.StatusCode, br
}

func uploadBody(t *testing.T, jpeg []byte) []byte {
	t.Helper()
	b, err := json.Marshal(psp.UploadRequest{Image: jpeg})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGatewayBatchUploadReplicatesAndReportsPerPart(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	jpeg := testJPEG(t)
	good := uploadBody(t, jpeg)
	bad := uploadBody(t, []byte("not a jpeg"))

	status, br := postBatch(t, tc.srv.URL,
		[][]byte{good, bad, good},
		[]string{"batch-a", "", "batch-b"})
	if status != http.StatusOK {
		t.Fatalf("batch: HTTP %d", status)
	}
	if len(br.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(br.Results))
	}

	// Good parts get IDs; keys route through deriveID like single uploads.
	for i, want := range map[int]string{0: deriveID("batch-a"), 2: deriveID("batch-b")} {
		r := br.Results[i]
		if r.Error != "" || r.ID != want {
			t.Fatalf("part %d: id=%q err=%q (want id %q)", i, r.ID, r.Error, want)
		}
	}
	// The bad part fails alone with the shard's client error passed through.
	if r := br.Results[1]; r.ID != "" || r.Status != http.StatusUnprocessableEntity || r.Error == "" {
		t.Fatalf("bad part: id=%q status=%d err=%q, want 422 with message", r.ID, r.Status, r.Error)
	}

	// Each stored part replicates to its full replica set and is readable
	// back through the gateway byte-identically.
	for _, id := range []string{br.Results[0].ID, br.Results[2].ID} {
		order := tc.gw.ReplicaOrder(id)
		waitFor(t, 3*time.Second, "batch part replication", func() bool {
			for _, u := range order {
				if !shardHas(t, u, id, jpeg) {
					return false
				}
			}
			return true
		})
		st, _, body := getBytes(t, tc.srv.URL+"/v1/images/"+id, nil)
		if st != http.StatusOK || !bytes.Equal(body, jpeg) {
			t.Fatalf("gateway GET %s: status %d, %d bytes", id, st, len(body))
		}
	}
}

func TestGatewayBatchDuplicateKeysConverge(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	jpeg := testJPEG(t)
	body := uploadBody(t, jpeg)

	status, br := postBatch(t, tc.srv.URL,
		[][]byte{body, body},
		[]string{"batch-dup", "batch-dup"})
	if status != http.StatusOK {
		t.Fatalf("batch: HTTP %d", status)
	}
	if len(br.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(br.Results))
	}
	if br.Results[0].Error != "" || br.Results[1].Error != "" {
		t.Fatalf("unexpected errors: %+v", br.Results)
	}
	if br.Results[0].ID != br.Results[1].ID {
		t.Fatalf("duplicate keys diverged: %q vs %q", br.Results[0].ID, br.Results[1].ID)
	}
	// A later single upload with the same key converges on the same ID too.
	if id := tc.upload(t, jpeg, "batch-dup"); id != br.Results[0].ID {
		t.Fatalf("single retry id %q, want %q", id, br.Results[0].ID)
	}
}

func TestGatewayBatchEmpty(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	status, _ := postBatch(t, tc.srv.URL, nil, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch: HTTP %d, want 400", status)
	}
}

func TestGatewayBatchRawParts(t *testing.T) {
	// Raw image/jpeg parts (with a paired params part) go through the
	// gateway's fast path: it wraps them into UploadRequest bodies so every
	// shard sees the same replicated PUT as a JSON item would produce.
	tc := newTestCluster(t, 3, nil)
	jpeg := testJPEG(t)
	params := []byte(`{"v":1}`)

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	hdr := textproto.MIMEHeader{}
	hdr.Set("Content-Disposition", `form-data; name="image"`)
	hdr.Set("Content-Type", "image/jpeg")
	hdr.Set("Idempotency-Key", "raw-batch")
	pw, err := mw.CreatePart(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(jpeg); err != nil {
		t.Fatal(err)
	}
	hdr = textproto.MIMEHeader{}
	hdr.Set("Content-Disposition", `form-data; name="params"`)
	hdr.Set("Content-Type", "application/json")
	if pw, err = mw.CreatePart(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(params); err != nil {
		t.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, tc.srv.URL+"/v1/images:batch", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw batch: HTTP %d", resp.StatusCode)
	}
	var br psp.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 1 || br.Results[0].Error != "" || br.Results[0].ID != deriveID("raw-batch") {
		t.Fatalf("raw batch results: %+v", br.Results)
	}
	id := br.Results[0].ID

	// Full replication, byte-identical image, params preserved.
	order := tc.gw.ReplicaOrder(id)
	waitFor(t, 3*time.Second, "raw batch replication", func() bool {
		for _, u := range order {
			if !shardHas(t, u, id, jpeg) {
				return false
			}
		}
		return true
	})
	st, _, body := getBytes(t, tc.srv.URL+"/v1/images/"+id, nil)
	if st != http.StatusOK || !bytes.Equal(body, jpeg) {
		t.Fatalf("gateway GET: status %d, %d bytes", st, len(body))
	}
	st, _, got := getBytes(t, tc.srv.URL+"/v1/images/"+id+"/params", nil)
	if st != http.StatusOK || !bytes.Equal(bytes.TrimSpace(got), params) {
		t.Fatalf("gateway params GET: status %d body %q, want %q", st, got, params)
	}
}
