package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"puppies/internal/psp"
)

// goRepair schedules an asynchronous repair of id onto target, deduplicating
// concurrent attempts for the same (id, shard) pair so a burst of failovers
// cannot stampede a recovering shard.
func (g *Gateway) goRepair(id string, target *shard) {
	key := id + "|" + target.url
	g.repairMu.Lock()
	if g.repairInflight[key] {
		g.repairMu.Unlock()
		return
	}
	g.repairInflight[key] = true
	g.repairMu.Unlock()
	go func() {
		defer func() {
			g.repairMu.Lock()
			delete(g.repairInflight, key)
			g.repairMu.Unlock()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 4*g.shardTimeout())
		defer cancel()
		g.repairSync(ctx, id, target)
	}()
}

// repairSync re-replicates id onto target: fetch the image and params from
// any replica (or any other member) that has them, then PUT them to target
// under the same ID. The shard-side PUT is a compare-on-conflict idempotent
// store, so repairs racing each other, racing the original upload, or
// re-running after a partial failure all converge on one byte-identical
// copy. Returns whether target now has the record because of this call.
func (g *Gateway) repairSync(ctx context.Context, id string, target *shard) bool {
	sources := g.replicaShards(id)
	sources = append(sources, g.otherMembers(id)...)
	for _, src := range sources {
		if src == target {
			continue
		}
		resp, err := g.attempt(ctx, src, http.MethodGet, "/v1/images/"+id, nil, nil)
		if err != nil || resp.status != http.StatusOK {
			continue
		}
		presp, err := g.attempt(ctx, src, http.MethodGet, "/v1/images/"+id+"/params", nil, nil)
		if err != nil || presp.status != http.StatusOK {
			continue
		}
		var params json.RawMessage
		if trimmed := bytes.TrimSpace(presp.body); !bytes.Equal(trimmed, []byte("null")) && len(trimmed) > 0 {
			params = presp.body
		}
		body, err := json.Marshal(psp.UploadRequest{Image: resp.body, Params: params})
		if err != nil {
			return false
		}
		put, err := g.attempt(ctx, target, http.MethodPut, "/v1/images/"+id, body,
			http.Header{"Content-Type": {"application/json"}})
		if err != nil {
			return false
		}
		switch put.status {
		case http.StatusOK:
			g.readRepairs.Add(1)
			target.readRepairs.Add(1)
			return true
		case http.StatusConflict:
			// Target holds different bytes under this ID. Never overwrite
			// silently; surface it as a divergence.
			g.divergences.Add(1)
			return false
		default:
			return false
		}
	}
	return false
}

// RepairReport summarizes one verify/re-replicate walk.
type RepairReport struct {
	// Checked is how many (image, replica) pairs were probed.
	Checked int `json:"checked"`
	// Repaired is how many missing replicas were restored.
	Repaired int `json:"repaired"`
	// Failed is how many missing replicas could not be restored (no
	// reachable source, or the target refused).
	Failed int `json:"failed"`
	// Images is how many distinct images the walk covered.
	Images int `json:"images"`
}

// RepairAll walks every image in the cluster and restores full R-way
// replication: for each image, each replica the ring assigns is existence-
// probed and re-uploaded from a surviving copy when missing. It is the
// rebalance mechanism after membership changes (new replica assignments
// start empty) and the recovery mechanism after a shard comes back from a
// crash. The walk is idempotent and safe to re-run at any time.
func (g *Gateway) RepairAll(ctx context.Context) (RepairReport, error) {
	ids, reachable := g.mergedIDs(ctx)
	if reachable == 0 {
		return RepairReport{}, fmt.Errorf("cluster: no shard reachable for repair walk")
	}
	var rep RepairReport
	rep.Images = len(ids)
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		for _, sh := range g.replicaShards(id) {
			rep.Checked++
			// Existence probe via /params: cheap (tiny body) and 404 is
			// authoritative for the whole record.
			resp, err := g.attempt(ctx, sh, http.MethodGet, "/v1/images/"+id+"/params", nil, nil)
			if err != nil || resp.status != http.StatusNotFound {
				continue
			}
			if g.repairSync(ctx, id, sh) {
				rep.Repaired++
			} else {
				rep.Failed++
			}
		}
	}
	return rep, nil
}

func (g *Gateway) handleRepair(w http.ResponseWriter, r *http.Request) {
	rep, err := g.RepairAll(r.Context())
	if err != nil {
		g.writeUnavailable(w, 0, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rep)
}

// MembershipChange is the POST /v1/admin/shards body.
type MembershipChange struct {
	// Op is "join" or "leave".
	Op string `json:"op"`
	// Shard is the shard base URL.
	Shard string `json:"shard"`
}

// MembershipResponse reports the membership after a change plus the
// rebalance walk it triggered.
type MembershipResponse struct {
	Shards    []string     `json:"shards"`
	Changed   bool         `json:"changed"`
	Rebalance RepairReport `json:"rebalance"`
}

// ShardInfo is one row of GET /v1/admin/shards.
type ShardInfo struct {
	URL          string `json:"url"`
	BreakerState string `json:"breakerState"`
}

func (g *Gateway) handleShardsGet(w http.ResponseWriter, r *http.Request) {
	g.mu.RLock()
	members := g.ring.Members()
	infos := make([]ShardInfo, 0, len(members))
	for _, u := range members {
		infos = append(infos, ShardInfo{URL: u, BreakerState: g.shards[u].breaker.State().String()})
	}
	g.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Shards []ShardInfo `json:"shards"`
	}{Shards: infos})
}

// handleShardsPost applies a join/leave and synchronously runs the
// rebalance walk, so when the call returns the new placement is fully
// replicated. Reads stay correct throughout: the rescue path in
// handleProxy falls back to non-replica members while records are still
// moving.
func (g *Gateway) handleShardsPost(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
		return
	}
	var ch MembershipChange
	if err := json.Unmarshal(body, &ch); err != nil {
		http.Error(w, fmt.Sprintf("decode request: %v", err), http.StatusBadRequest)
		return
	}
	var changed bool
	switch ch.Op {
	case "join":
		changed, err = g.addShard(ch.Shard)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	case "leave":
		changed, err = g.removeShard(ch.Shard)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		g.mu.RLock()
		remaining := g.ring.Size()
		g.mu.RUnlock()
		if remaining == 0 {
			http.Error(w, "cluster: refusing to remove the last shard", http.StatusConflict)
			// Roll back.
			_, _ = g.addShard(ch.Shard)
			return
		}
	default:
		http.Error(w, fmt.Sprintf("unknown op %q (want join or leave)", ch.Op), http.StatusBadRequest)
		return
	}

	rep, err := g.RepairAll(r.Context())
	if err != nil {
		g.writeUnavailable(w, 0, fmt.Sprintf("membership changed but rebalance failed: %v", err))
		return
	}
	g.mu.RLock()
	members := g.ring.Members()
	g.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(MembershipResponse{Shards: members, Changed: changed, Rebalance: rep})
}

// Start launches the background health checker: every ProbeInterval each
// shard's /v1/healthz is probed, feeding the per-shard breakers — so a
// crashed or draining shard (healthz 503 with Retry-After) is ejected from
// the routing order within a probe period, and a recovered shard is
// re-admitted through the breaker's half-open probe. Re-admission also
// re-arms read verification so post-recovery GETs re-check replica
// agreement. Start returns immediately; probing stops when ctx is done.
func (g *Gateway) Start(ctx context.Context) {
	interval := g.cfg.ProbeInterval
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				g.probeOnce(ctx)
			}
		}
	}()
}

// probeOnce health-checks every shard in parallel and waits for the round.
func (g *Gateway) probeOnce(ctx context.Context) {
	g.mu.RLock()
	members := make([]*shard, 0, len(g.shards))
	for _, sh := range g.shards {
		members = append(members, sh)
	}
	g.mu.RUnlock()
	done := make(chan struct{}, len(members))
	for _, sh := range members {
		go func(sh *shard) {
			defer func() { done <- struct{}{} }()
			sh.requests.Add(1)
			resp, err := g.attempt(ctx, sh, http.MethodGet, "/v1/healthz", nil, nil)
			if err != nil || resp.status != http.StatusOK {
				sh.failures.Add(1)
				sh.breaker.OnFailure()
				return
			}
			wasEjected := sh.breaker.State() != BreakerClosed
			sh.breaker.OnSuccess()
			if wasEjected {
				// The shard may have restarted with holes (e.g. writes it
				// missed while down): make reads re-verify replica
				// agreement so read repair can fill them.
				g.clearVerified()
			}
		}(sh)
	}
	for range members {
		<-done
	}
}
