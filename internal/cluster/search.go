package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"puppies/internal/psp"
	"puppies/internal/searchidx"
)

// Cluster search (GET/POST /v1/search): signatures are indexed
// shard-locally on every shard holding a replica of an image, so cluster
// k-NN is a scatter-gather — the query fans out to every member, each
// answers from its own index, and the gateway merges by minimum distance
// per image ID (replicas surface the same ID from R shards). Shards that
// cannot answer inside the per-shard timeout degrade the response instead
// of failing it: the merge proceeds over the reachable shards and the
// response carries partial=true, so callers know the k-NN set may be
// missing images whose replicas were all unreachable.
//
// A by-ID query 404s on shards that don't hold the image — that is a
// complete answer from a healthy shard, not a failure; the query only 404s
// overall when every reachable shard said so.

// searchOutcome is one shard's classified /v1/search answer. A zero value
// means the shard could not answer (unreachable, overloaded, or 5xx).
type searchOutcome struct {
	resp       *psp.SearchResponse
	notFound   bool
	clientResp *shardResp
}

func (g *Gateway) handleSearch(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Method == http.MethodPost {
		limit := g.maxBody()
		b, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
		if err != nil {
			http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
			return
		}
		if int64(len(b)) > limit {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", limit), http.StatusRequestEntityTooLarge)
			return
		}
		body = b
	}
	pathQ := r.URL.Path
	if r.URL.RawQuery != "" {
		pathQ += "?" + r.URL.RawQuery
	}
	var hdr http.Header
	if ct := r.Header.Get("Content-Type"); ct != "" {
		hdr = http.Header{"Content-Type": {ct}}
	}

	g.mu.RLock()
	members := make([]*shard, 0, len(g.shards))
	for _, sh := range g.shards {
		members = append(members, sh)
	}
	g.mu.RUnlock()
	if len(members) == 0 {
		g.writeUnavailable(w, 0, "cluster: no shards")
		return
	}

	results := make(chan searchOutcome, len(members))
	for _, sh := range members {
		sh.requests.Add(1)
		go func(sh *shard) {
			// attempt applies the per-shard timeout; one slow or partitioned
			// shard delays the merge at most that long.
			resp, err := g.attempt(r.Context(), sh, r.Method, pathQ, body, hdr)
			if err != nil {
				sh.failures.Add(1)
				sh.breaker.OnFailure()
				results <- searchOutcome{}
				return
			}
			switch {
			case resp.status == http.StatusOK:
				sh.breaker.OnSuccess()
				var sr psp.SearchResponse
				if json.Unmarshal(resp.body, &sr) != nil {
					sh.failures.Add(1)
					results <- searchOutcome{}
					return
				}
				results <- searchOutcome{resp: &sr}
			case resp.status == http.StatusNotFound:
				sh.breaker.OnSuccess()
				results <- searchOutcome{notFound: true}
			case resp.status == http.StatusTooManyRequests:
				sh.overloads.Add(1)
				sh.breaker.OnSuccess()
				results <- searchOutcome{}
			case resp.status >= 500:
				sh.failures.Add(1)
				sh.breaker.OnFailure()
				results <- searchOutcome{}
			default:
				// Deterministic client error (bad k, undecodable query body):
				// every shard would say the same.
				sh.breaker.OnSuccess()
				results <- searchOutcome{clientResp: resp}
			}
		}(sh)
	}

	best := make(map[string]uint32)
	answered, notFound := 0, 0
	var clientResp *shardResp
	for range members {
		res := <-results
		switch {
		case res.resp != nil:
			answered++
			for _, hit := range res.resp.Results {
				if d, ok := best[hit.ID]; !ok || hit.Distance < d {
					best[hit.ID] = hit.Distance
				}
			}
		case res.notFound:
			notFound++
		case res.clientResp != nil:
			clientResp = res.clientResp
		}
	}

	switch {
	case answered == 0 && clientResp != nil:
		writeShardResp(w, clientResp)
		return
	case answered == 0 && notFound == len(members):
		// Every member answered and none holds the queried image.
		http.Error(w, "image not found on any shard", http.StatusNotFound)
		return
	case answered == 0:
		// Nothing reachable held an answer — and the shards that might have
		// (the queried image's replicas) were among the unreachable, so a
		// definitive 404 would be a lie. Tell the caller to retry.
		g.writeUnavailable(w, 0, "cluster: search replicas unreachable")
		return
	}

	merged := make([]sortableHit, 0, len(best))
	for id, d := range best {
		merged = append(merged, sortableHit{id, d})
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].d != merged[j].d {
			return merged[i].d < merged[j].d
		}
		return merged[i].id < merged[j].id
	})
	k := searchK(r)
	if len(merged) > k {
		merged = merged[:k]
	}
	out := psp.SearchResponse{
		Results: make([]searchidx.Result, 0, len(merged)),
		Partial: answered+notFound < len(members),
	}
	for _, h := range merged {
		out.Results = append(out.Results, searchidx.Result{ID: h.id, Distance: h.d})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

type sortableHit struct {
	id string
	d  uint32
}

// searchK mirrors the shard-side default: the shards have already validated
// the parameter (a bad k came back as a unanimous 400), so parsing here
// only has to agree with them on the default.
func searchK(r *http.Request) int {
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		fmt.Sscanf(raw, "%d", &k)
	}
	if k < 1 {
		k = 1
	}
	return k
}
