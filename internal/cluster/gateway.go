package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"puppies/internal/admission"
	"puppies/internal/psp"
	"puppies/internal/stats"
)

// Gateway defaults; every knob is a Config field.
const (
	DefaultReplicas      = 3
	DefaultHedgeDelay    = 100 * time.Millisecond
	DefaultShardTimeout  = 15 * time.Second
	DefaultProbeInterval = 1 * time.Second
)

// Batch route limits, mirroring internal/psp's: per-part bodies are bounded
// by Config.MaxBody, the whole multipart envelope by batchBodyFactor times
// that, and part count by batchMaxParts. batchReplicateConcurrency bounds
// how many parts replicate to their quorums at once — each part already
// fans out to R shards, so this multiplies into in-flight shard requests.
const (
	batchMaxParts             = 1024
	batchBodyFactor           = 16
	batchReplicateConcurrency = 8
)

// Config parameterizes a Gateway.
type Config struct {
	// Shards is the initial shard membership (base URLs, e.g.
	// "http://127.0.0.1:8754"). At least one is required; membership can
	// change later through the admin endpoint.
	Shards []string
	// Replicas (R) is how many shards store each image. Zero means
	// DefaultReplicas; values above the member count are capped per key.
	Replicas int
	// WriteQuorum (W) is how many replica acks an upload needs before the
	// client is answered. Zero means R/2+1. Must not exceed Replicas.
	WriteQuorum int
	// VNodes is the virtual-node count per shard on the ring (0 means
	// DefaultVNodes).
	VNodes int
	// Transport carries gateway→shard traffic; nil means
	// http.DefaultTransport. Tests inject faults.Partition here.
	Transport http.RoundTripper
	// ShardTimeout bounds each shard attempt (0 means
	// DefaultShardTimeout).
	ShardTimeout time.Duration
	// HedgeDelay is how long a GET waits on one replica before hedging
	// the request to the next one (0 means DefaultHedgeDelay; the slow
	// attempt keeps running and the first success wins).
	HedgeDelay time.Duration
	// MaxBody caps request/response bodies (0 means psp.DefaultMaxUpload).
	MaxBody int64
	// FailThreshold consecutive failures open a shard's breaker;
	// BreakerCooldown/BreakerCooldownMax shape the doubling ejection
	// window. Zeros take the Breaker defaults.
	FailThreshold      int
	BreakerCooldown    time.Duration
	BreakerCooldownMax time.Duration
	// ProbeInterval is the health-check period for Start (0 means
	// DefaultProbeInterval).
	ProbeInterval time.Duration
	// DisableReadVerify turns off the asynchronous quorum read
	// verification that runs behind raw-image GETs.
	DisableReadVerify bool
	// MaxInflight caps concurrently served client requests in weighted
	// units (transform proxies count double). Zero means
	// DefaultGatewayInflightPerProc per GOMAXPROCS; negative disables
	// admission control. AdmitWait, AdmitQueue, and AdmitRetryAfter shape
	// the wait bound, queue cap, and shed Retry-After hint exactly as on
	// psp.Server; zeros take the admission package defaults.
	MaxInflight     int
	AdmitWait       time.Duration
	AdmitQueue      int
	AdmitRetryAfter time.Duration
	// Now is stubbed in tests (nil means time.Now).
	Now func() time.Time
}

// DefaultGatewayInflightPerProc scales the gateway's default admission
// capacity. Larger than the PSP's because gateway units are mostly I/O
// (proxying, fan-out) rather than DCT work.
const DefaultGatewayInflightPerProc = 32

// shard is the gateway's live state for one member.
type shard struct {
	url     string
	breaker *Breaker

	requests    atomic.Uint64
	failures    atomic.Uint64
	readRepairs atomic.Uint64
	// overloads counts 429 answers from this shard. A shedding shard is
	// alive — its sheds feed failover, not the breaker.
	overloads atomic.Uint64
}

// Gateway fronts N pspd shards as a single PSP endpoint: consistent-hash
// placement, R-way replicated uploads with quorum acks, hedged failover
// reads with asynchronous read repair, per-shard circuit breakers fed by
// health probes and live traffic, and an online rebalance walk on
// membership changes. The shard API it speaks is exactly internal/psp's
// HTTP surface, so clients talk to the gateway with an unchanged
// psp.Client.
type Gateway struct {
	cfg    Config
	client *http.Client

	mu     sync.RWMutex // guards ring + shards
	ring   *Ring
	shards map[string]*shard

	draining atomic.Bool

	admitOnce sync.Once
	admit     *admission.Controller

	latOnce sync.Once
	lat     map[string]*stats.Histogram

	uploads              atomic.Uint64
	uploadQuorumFailures atomic.Uint64
	failovers            atomic.Uint64
	hedges               atomic.Uint64
	readRepairs          atomic.Uint64
	divergences          atomic.Uint64

	repairMu       sync.Mutex
	repairInflight map[string]bool

	verifyMu sync.Mutex
	verified map[string]bool
}

// New builds a Gateway over the configured shards.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = cfg.Replicas/2 + 1
	}
	if cfg.WriteQuorum > cfg.Replicas {
		return nil, fmt.Errorf("cluster: write quorum %d exceeds replicas %d", cfg.WriteQuorum, cfg.Replicas)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	g := &Gateway{
		cfg:            cfg,
		client:         &http.Client{Transport: cfg.Transport},
		ring:           NewRing(cfg.VNodes),
		shards:         make(map[string]*shard),
		repairInflight: make(map[string]bool),
		verified:       make(map[string]bool),
	}
	for _, raw := range cfg.Shards {
		if _, err := g.addShard(raw); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func normalizeShardURL(raw string) (string, error) {
	u := strings.TrimRight(strings.TrimSpace(raw), "/")
	if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
		return "", fmt.Errorf("cluster: shard %q is not an http(s) URL", raw)
	}
	return u, nil
}

// addShard registers url on the ring; reports whether membership changed.
// Caller must not hold g.mu.
func (g *Gateway) addShard(raw string) (bool, error) {
	u, err := normalizeShardURL(raw)
	if err != nil {
		return false, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.ring.Add(u) {
		return false, nil
	}
	g.shards[u] = &shard{
		url:     u,
		breaker: NewBreaker(g.cfg.FailThreshold, g.cfg.BreakerCooldown, g.cfg.BreakerCooldownMax, g.cfg.Now),
	}
	return true, nil
}

// removeShard drops url from the ring; reports whether membership changed.
func (g *Gateway) removeShard(raw string) (bool, error) {
	u, err := normalizeShardURL(raw)
	if err != nil {
		return false, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.ring.Remove(u) {
		return false, nil
	}
	delete(g.shards, u)
	return true, nil
}

func (g *Gateway) shardTimeout() time.Duration {
	if g.cfg.ShardTimeout > 0 {
		return g.cfg.ShardTimeout
	}
	return DefaultShardTimeout
}

func (g *Gateway) hedgeDelay() time.Duration {
	if g.cfg.HedgeDelay > 0 {
		return g.cfg.HedgeDelay
	}
	return DefaultHedgeDelay
}

func (g *Gateway) maxBody() int64 {
	if g.cfg.MaxBody > 0 {
		return g.cfg.MaxBody
	}
	return psp.DefaultMaxUpload
}

// SetDraining flips the gateway's own healthz to 503 so an upstream load
// balancer stops routing to it before shutdown. Admission tightens too:
// requests that would queue are shed immediately.
func (g *Gateway) SetDraining(v bool) {
	g.draining.Store(v)
	g.admission().SetDraining(v)
}

// Route names for admission weights and latency histograms. The client-facing
// surface mirrors internal/psp, so the names match the PSP's.
var gatewayRouteWeights = map[string]int{
	"upload":      1,
	"batch":       0, // items pay per unit inside the worker pool
	"list":        1,
	"get":         1,
	"params":      1,
	"transformed": 2,
	"pixels":      2,
	"search":      2, // fans out to every shard, so it pays the heavy weight
}

// admission returns the gateway's admission controller, built on first use.
// A negative MaxInflight yields nil, which admits everything.
func (g *Gateway) admission() *admission.Controller {
	g.admitOnce.Do(func() {
		if g.cfg.MaxInflight < 0 {
			return
		}
		capacity := g.cfg.MaxInflight
		if capacity == 0 {
			capacity = DefaultGatewayInflightPerProc * runtime.GOMAXPROCS(0)
		}
		g.admit = admission.New(admission.Config{
			Capacity:   capacity,
			MaxWait:    g.cfg.AdmitWait,
			MaxQueue:   g.cfg.AdmitQueue,
			RetryAfter: g.cfg.AdmitRetryAfter,
		})
		g.admit.SetDraining(g.draining.Load())
	})
	return g.admit
}

// latency returns the route's histogram from the fixed, read-only map.
func (g *Gateway) latency(route string) *stats.Histogram {
	g.latOnce.Do(func() {
		g.lat = make(map[string]*stats.Histogram, len(gatewayRouteWeights))
		for name := range gatewayRouteWeights {
			g.lat[name] = &stats.Histogram{}
		}
	})
	return g.lat[route]
}

// withAdmission fronts a client-facing route with admission control and
// latency recording, mirroring the PSP server's behavior: sheds answer 429
// with a fractional-seconds Retry-After and the overloaded error class.
func (g *Gateway) withAdmission(route string, h http.HandlerFunc) http.HandlerFunc {
	weight := gatewayRouteWeights[route]
	hist := g.latency(route)
	return func(w http.ResponseWriter, r *http.Request) {
		if weight > 0 {
			ctl := g.admission()
			release, out := ctl.Acquire(r.Context(), weight)
			if out != admission.Admitted {
				writeGatewayOverloaded(w, ctl.RetryAfterHint(), out)
				return
			}
			defer release()
		}
		start := time.Now()
		h(w, r)
		hist.Record(time.Since(start))
	}
}

func writeGatewayOverloaded(w http.ResponseWriter, hint time.Duration, out admission.Outcome) {
	if hint > 0 {
		w.Header().Set("Retry-After", strconv.FormatFloat(hint.Seconds(), 'f', 3, 64))
	}
	w.Header().Set(psp.ErrorClassHeader, psp.ErrorClassOverloaded)
	http.Error(w, fmt.Sprintf("overloaded (%s)", out), http.StatusTooManyRequests)
}

// replicaShards returns the shard structs for key's replica set, ring
// order.
func (g *Gateway) replicaShards(key string) []*shard {
	g.mu.RLock()
	defer g.mu.RUnlock()
	reps := g.ring.Replicas(key, g.cfg.Replicas)
	out := make([]*shard, 0, len(reps))
	for _, u := range reps {
		if sh := g.shards[u]; sh != nil {
			out = append(out, sh)
		}
	}
	return out
}

// ReplicaOrder exposes key's replica URLs in ring order (debugging, tests).
func (g *Gateway) ReplicaOrder(key string) []string {
	shs := g.replicaShards(key)
	out := make([]string, len(shs))
	for i, sh := range shs {
		out[i] = sh.url
	}
	return out
}

// routeOrder is replicaShards reordered for reads: breaker-admitted shards
// first (ring order preserved), ejected shards appended as a last resort so
// a stale breaker can never turn a servable request into an error.
func (g *Gateway) routeOrder(key string) []*shard {
	reps := g.replicaShards(key)
	allowed := make([]*shard, 0, len(reps))
	var blocked []*shard
	for _, sh := range reps {
		if sh.breaker.Allow() {
			allowed = append(allowed, sh)
		} else {
			blocked = append(blocked, sh)
		}
	}
	return append(allowed, blocked...)
}

// otherMembers returns members outside key's replica set — the rescue path
// for GETs racing a rebalance.
func (g *Gateway) otherMembers(key string) []*shard {
	g.mu.RLock()
	defer g.mu.RUnlock()
	reps := g.ring.Replicas(key, g.cfg.Replicas)
	in := make(map[string]bool, len(reps))
	for _, u := range reps {
		in[u] = true
	}
	var out []*shard
	for _, u := range g.ring.Members() {
		if !in[u] {
			out = append(out, g.shards[u])
		}
	}
	return out
}

// shardResp is one fully buffered shard response.
type shardResp struct {
	status int
	header http.Header
	body   []byte
}

// attempt performs one bounded HTTP exchange with a shard and buffers the
// response. Bodies over MaxBody surface as errors, never truncated bytes.
func (g *Gateway) attempt(ctx context.Context, sh *shard, method, pathQuery string, body []byte, hdr http.Header) (*shardResp, error) {
	ctx, cancel := context.WithTimeout(ctx, g.shardTimeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, sh.url+pathQuery, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	limit := g.maxBody()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(respBody)) > limit {
		return nil, fmt.Errorf("cluster: response from %s exceeds %d bytes", sh.url, limit)
	}
	return &shardResp{status: resp.StatusCode, header: resp.Header, body: respBody}, nil
}

// passthroughHeaders are copied from shard responses verbatim so clients
// keep the single-node response contract: strong ETags stay revalidatable
// and X-PSP-Error-Class/Retry-After keep psp.Client's typed-error and
// backoff semantics end-to-end.
var passthroughHeaders = []string{
	"Content-Type",
	"ETag",
	"Cache-Control",
	"Retry-After",
	psp.ErrorClassHeader,
}

func writeShardResp(w http.ResponseWriter, resp *shardResp) {
	for _, k := range passthroughHeaders {
		if v := resp.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	if resp.status != http.StatusNotModified {
		w.Header().Set("Content-Length", strconv.Itoa(len(resp.body)))
	}
	w.WriteHeader(resp.status)
	if resp.status != http.StatusNotModified {
		_, _ = w.Write(resp.body)
	}
}

// writeUnavailable answers 503 with a Retry-After of at least one second
// (or the largest shard-provided value), keeping gateway failures inside
// the client's retry protocol.
func (g *Gateway) writeUnavailable(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	secs := int64(1)
	if s := int64((retryAfter + time.Second - 1) / time.Second); s > secs {
		secs = s
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	http.Error(w, msg, http.StatusServiceUnavailable)
}

// isCorrupt reports whether a shard response carries the corrupt error
// class: the shard is healthy but its stored copy is damaged.
func isCorrupt(resp *shardResp) bool {
	return resp.header.Get(psp.ErrorClassHeader) == psp.ErrorClassCorrupt
}

// Handler returns the gateway HTTP API. Client-facing routes mirror
// internal/psp exactly; /v1/admin/* adds membership and repair control:
//
//	GET  /v1/healthz                      gateway + shard health
//	GET  /v1/statz                        cluster + per-shard counters
//	GET  /v1/images                       merged listing across shards
//	POST /v1/images                       replicated upload (quorum W)
//	POST /v1/images:batch                 multipart batch of replicated uploads
//	GET  /v1/images/{id}[...]             failover proxy to replicas
//	GET  /v1/admin/shards                 membership + breaker states
//	POST /v1/admin/shards                 {"op":"join"|"leave","shard":URL}
//	POST /v1/admin/repair                 full verify/re-replicate walk
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	// healthz, statz, and admin routes bypass admission: they are how
	// operators observe and repair an overloaded cluster.
	mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	mux.HandleFunc("GET /v1/statz", g.handleStatz)
	mux.HandleFunc("GET /v1/admin/shards", g.handleShardsGet)
	mux.HandleFunc("POST /v1/admin/shards", g.handleShardsPost)
	mux.HandleFunc("POST /v1/admin/repair", g.handleRepair)
	mux.HandleFunc("GET /v1/images", g.withAdmission("list", g.handleList))
	mux.HandleFunc("POST /v1/images", g.withAdmission("upload", g.handleUpload))
	mux.HandleFunc("POST /v1/images:batch", g.withAdmission("batch", g.handleBatch))
	mux.HandleFunc("GET /v1/images/{id}", g.withAdmission("get", g.handleProxy))
	mux.HandleFunc("GET /v1/images/{id}/params", g.withAdmission("params", g.handleProxy))
	mux.HandleFunc("GET /v1/images/{id}/transformed", g.withAdmission("transformed", g.handleProxy))
	mux.HandleFunc("GET /v1/images/{id}/pixels", g.withAdmission("pixels", g.handleProxy))
	mux.HandleFunc("GET /v1/search", g.withAdmission("search", g.handleSearch))
	mux.HandleFunc("POST /v1/search", g.withAdmission("search", g.handleSearch))
	return mux
}

// GatewayHealth is the gateway's GET /v1/healthz body.
type GatewayHealth struct {
	Status  string `json:"status"`
	Shards  int    `json:"shards"`
	Healthy int    `json:"healthy"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(GatewayHealth{Status: "draining"})
		return
	}
	g.mu.RLock()
	total := len(g.shards)
	healthy := 0
	for _, sh := range g.shards {
		if sh.breaker.State() != BreakerOpen {
			healthy++
		}
	}
	g.mu.RUnlock()
	h := GatewayHealth{Status: "ok", Shards: total, Healthy: healthy}
	w.Header().Set("Content-Type", "application/json")
	if healthy == 0 {
		h.Status = "unavailable"
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	} else if healthy < total {
		h.Status = "degraded"
	}
	_ = json.NewEncoder(w).Encode(h)
}

// ShardStatz is the per-shard block of the statz body. BreakerState,
// BreakerOpens, and BreakerRecoveries together let a chaos run assert the
// full ejection lifecycle: the breaker tripped (opens > 0) AND recovered
// (recoveries > 0, state back to closed).
type ShardStatz struct {
	Requests          uint64 `json:"requests"`
	Failures          uint64 `json:"failures"`
	Overloads         uint64 `json:"overloads"`
	ReadRepairs       uint64 `json:"readRepairs"`
	BreakerState      string `json:"breakerState"`
	BreakerOpens      uint64 `json:"breakerOpens"`
	BreakerRecoveries uint64 `json:"breakerRecoveries"`
}

// Statz is the gateway's GET /v1/statz body.
type Statz struct {
	RingShards           int                   `json:"ringShards"`
	RingPoints           int                   `json:"ringPoints"`
	Replicas             int                   `json:"replicas"`
	WriteQuorum          int                   `json:"writeQuorum"`
	Uploads              uint64                `json:"uploads"`
	UploadQuorumFailures uint64                `json:"uploadQuorumFailures"`
	Failovers            uint64                `json:"failovers"`
	Hedges               uint64                `json:"hedges"`
	ReadRepairs          uint64                `json:"readRepairs"`
	Divergences          uint64                `json:"divergences"`
	OpenBreakers         int                   `json:"openBreakers"`
	Shards               map[string]ShardStatz `json:"shards"`

	Admission admission.Stats                    `json:"admission"`
	LatencyNs map[string]stats.HistogramSnapshot `json:"latencyNs"`
}

// Stats snapshots the cluster counters (the /v1/statz body).
func (g *Gateway) Stats() Statz {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := Statz{
		RingShards:           g.ring.Size(),
		RingPoints:           g.ring.Points(),
		Replicas:             g.cfg.Replicas,
		WriteQuorum:          g.cfg.WriteQuorum,
		Uploads:              g.uploads.Load(),
		UploadQuorumFailures: g.uploadQuorumFailures.Load(),
		Failovers:            g.failovers.Load(),
		Hedges:               g.hedges.Load(),
		ReadRepairs:          g.readRepairs.Load(),
		Divergences:          g.divergences.Load(),
		Shards:               make(map[string]ShardStatz, len(g.shards)),
	}
	for u, sh := range g.shards {
		st := sh.breaker.State()
		if st == BreakerOpen {
			out.OpenBreakers++
		}
		out.Shards[u] = ShardStatz{
			Requests:          sh.requests.Load(),
			Failures:          sh.failures.Load(),
			Overloads:         sh.overloads.Load(),
			ReadRepairs:       sh.readRepairs.Load(),
			BreakerState:      st.String(),
			BreakerOpens:      sh.breaker.Opens(),
			BreakerRecoveries: sh.breaker.Recoveries(),
		}
	}
	out.Admission = g.admission().Stats()
	out.LatencyNs = make(map[string]stats.HistogramSnapshot, len(gatewayRouteWeights))
	for name := range gatewayRouteWeights {
		if h := g.latency(name); h.Count() > 0 {
			out.LatencyNs[name] = h.Snapshot()
		}
	}
	return out
}

func (g *Gateway) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(g.Stats())
}

// deriveID maps an idempotency key to the image ID deterministically, so a
// client retry (same key) re-targets the same ID and the same replica set,
// and per-shard PUT-by-ID dedupe makes the retry a no-op. The gateway holds
// no upload state at all.
func deriveID(key string) string {
	sum := sha256.Sum256([]byte("psp-gw-id\x00" + key))
	return hex.EncodeToString(sum[:12])
}

func newUploadKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("gwk-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// uploadAck is one shard's classified PUT outcome.
type uploadAck struct {
	sh *shard
	// ok means the shard durably stored the image under the derived ID.
	ok bool
	// repairable marks failures worth re-replicating later (down shard,
	// 5xx); a deterministic 4xx rejection is not.
	repairable bool
	resp       *shardResp
}

// uploadOutcome is a replicated upload's result, decoupled from the HTTP
// response so the single and batch upload routes share one replication
// path.
type uploadOutcome struct {
	// id is set on quorum success.
	id string
	// clientResp passes through a unanimous deterministic shard rejection.
	clientResp *shardResp
	// unavailable marks a quorum failure; msg and retryAfter shape the 503.
	unavailable bool
	retryAfter  time.Duration
	msg         string
}

// replicateUpload fans one upload body out to the replica set of its
// derived ID and waits for write quorum (the body of POST /v1/images,
// shared with the batch route).
func (g *Gateway) replicateUpload(body []byte, key, contentType string) uploadOutcome {
	id := deriveID(key)
	replicas := g.replicaShards(id)
	if len(replicas) == 0 {
		return uploadOutcome{unavailable: true, msg: "cluster: no shards"}
	}
	hdr := http.Header{
		"Content-Type":    {"application/json"},
		"Idempotency-Key": {key},
	}
	if contentType != "" {
		hdr.Set("Content-Type", contentType)
	}

	// Fan out to every replica on a detached context: the client is
	// answered at quorum W, and straggler acks (or failures feeding read
	// repair) complete in the background — a canceled fan-out would
	// under-replicate silently.
	acks := make(chan uploadAck, len(replicas))
	for _, sh := range replicas {
		sh.requests.Add(1)
		go func(sh *shard) {
			ctx, cancel := context.WithTimeout(context.Background(), g.shardTimeout())
			defer cancel()
			resp, err := g.attempt(ctx, sh, http.MethodPut, "/v1/images/"+id, body, hdr)
			acks <- g.classifyUpload(sh, id, resp, err)
		}(sh)
	}

	g.uploads.Add(1)
	ackCount := 0
	var failed []*shard
	var clientErr *shardResp
	var retryAfter time.Duration
	for i := 0; i < len(replicas); i++ {
		a := <-acks
		switch {
		case a.ok:
			ackCount++
		case a.repairable:
			failed = append(failed, a.sh)
			if a.resp != nil {
				if ra := psp.ParseRetryAfter(a.resp.header); ra > retryAfter {
					retryAfter = ra
				}
			}
		default:
			clientErr = a.resp
		}
		if ackCount >= g.cfg.WriteQuorum {
			// Quorum reached: ack the client now, then keep collecting
			// straggler outcomes so failed replicas get re-replicated.
			remaining := len(replicas) - i - 1
			toRepair := append([]*shard(nil), failed...)
			go func() {
				for j := 0; j < remaining; j++ {
					if a := <-acks; !a.ok && a.repairable {
						toRepair = append(toRepair, a.sh)
					}
				}
				for _, sh := range toRepair {
					g.goRepair(id, sh)
				}
			}()
			return uploadOutcome{id: id}
		}
	}
	// Quorum unreachable. A unanimous deterministic rejection (bad JSON,
	// undecodable JPEG, key conflict) passes through as the shard said it;
	// anything else is a retryable 503.
	if clientErr != nil && ackCount == 0 && len(failed) == 0 {
		return uploadOutcome{clientResp: clientErr}
	}
	g.uploadQuorumFailures.Add(1)
	return uploadOutcome{
		unavailable: true,
		retryAfter:  retryAfter,
		msg:         fmt.Sprintf("cluster: %d/%d replica acks, write quorum %d not met", ackCount, len(replicas), g.cfg.WriteQuorum),
	}
}

func (g *Gateway) handleUpload(w http.ResponseWriter, r *http.Request) {
	limit := g.maxBody()
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > limit {
		http.Error(w, fmt.Sprintf("body exceeds %d bytes", limit), http.StatusRequestEntityTooLarge)
		return
	}
	key := strings.TrimSpace(r.Header.Get("Idempotency-Key"))
	if key == "" {
		key = newUploadKey()
	}
	out := g.replicateUpload(body, key, r.Header.Get("Content-Type"))
	switch {
	case out.id != "":
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(psp.UploadResponse{ID: out.id})
	case out.clientResp != nil:
		writeShardResp(w, out.clientResp)
	default:
		g.writeUnavailable(w, out.retryAfter, out.msg)
	}
}

// gatewayBatchItem is one in-flight batch entry: the reader loop fills it,
// a worker replicates it and writes *slot. Workers never touch the slot
// slice itself, so the reader can keep appending without a lock.
type gatewayBatchItem struct {
	slot   *psp.BatchResult
	key    string
	raw    bool // body is raw JPEG bytes, not UploadRequest JSON
	body   []byte
	params []byte
	failed bool
}

// handleBatch accepts the same multipart batch protocol as the PSP's
// /v1/images:batch (JSON parts carrying an UploadRequest body, or raw
// image/jpeg parts with an optional adjacent params part, each with an
// optional per-part Idempotency-Key) and replicates every item through the
// ring — items hash to different replica sets, so a batch spreads across
// the cluster. Raw items are wrapped into an UploadRequest document before
// replication, so shards see the same PUT body either way. Items replicate
// with bounded concurrency while later parts are still streaming in;
// results keep item order.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	limit := g.maxBody()
	r.Body = http.MaxBytesReader(w, r.Body, batchBodyFactor*limit)
	mr, err := r.MultipartReader()
	if err != nil {
		http.Error(w, fmt.Sprintf("batch requires multipart/form-data: %v", err), http.StatusBadRequest)
		return
	}
	var (
		wg    sync.WaitGroup
		slots []*psp.BatchResult
	)
	sem := make(chan struct{}, batchReplicateConcurrency)
	dispatch := func(it *gatewayBatchItem) {
		if it == nil || it.failed {
			return
		}
		wg.Add(1)
		// Acquire the slot inside the goroutine so the read loop never
		// stops draining the socket (a paused reader closes the TCP window
		// and the client stalls on the persist timer); buffered parts are
		// bounded by the whole-batch body cap regardless.
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Per-item admission, mirroring the PSP batch route: the
			// envelope was free, each replicated item pays one unit, and a
			// shed lands as a 429 in that item's result slot.
			ctl := g.admission()
			release, admitted := ctl.Acquire(r.Context(), 1)
			if admitted != admission.Admitted {
				*it.slot = psp.BatchResult{
					Error:  fmt.Sprintf("overloaded (%s); retry after %.3fs", admitted, ctl.RetryAfterHint().Seconds()),
					Status: http.StatusTooManyRequests,
				}
				return
			}
			defer release()
			body := it.body
			if it.raw {
				wrapped, err := json.Marshal(psp.UploadRequest{Image: it.body, Params: it.params})
				if err != nil {
					*it.slot = psp.BatchResult{Error: fmt.Sprintf("encode upload: %v", err), Status: http.StatusInternalServerError}
					return
				}
				body = wrapped
			}
			out := g.replicateUpload(body, it.key, "application/json")
			res := psp.BatchResult{ID: out.id}
			switch {
			case out.clientResp != nil:
				res = psp.BatchResult{
					Error:  string(bytes.TrimSpace(out.clientResp.body)),
					Status: out.clientResp.status,
				}
			case out.unavailable:
				res = psp.BatchResult{Error: out.msg, Status: http.StatusServiceUnavailable}
			}
			*it.slot = res
		}()
	}
	var pending *gatewayBatchItem
	fail := func(status int, format string, args ...any) {
		dispatch(pending)
		wg.Wait()
		if status != 0 {
			http.Error(w, fmt.Sprintf(format, args...), status)
		}
	}
	for i := 0; ; i++ {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				fail(http.StatusRequestEntityTooLarge, "batch body exceeds %d bytes", mbe.Limit)
				return
			}
			fail(0, "") // stream died mid-batch: no one to answer
			return
		}
		if i >= batchMaxParts {
			fail(http.StatusBadRequest, "batch exceeds %d parts", batchMaxParts)
			return
		}

		isParams := part.FormName() == psp.BatchParamsPart
		if isParams && (pending == nil || !pending.raw) {
			fail(http.StatusBadRequest, "params part without a preceding image part")
			return
		}

		var buf bytes.Buffer
		n, rerr := io.Copy(&buf, io.LimitReader(part, limit+1))
		if rerr != nil {
			var mbe *http.MaxBytesError
			if errors.As(rerr, &mbe) {
				fail(http.StatusRequestEntityTooLarge, "batch body exceeds %d bytes", mbe.Limit)
				return
			}
			fail(0, "")
			return
		}

		if isParams {
			if n > limit {
				pending.slot.Error = fmt.Sprintf("params part exceeds %d bytes", limit)
				pending.slot.Status = http.StatusRequestEntityTooLarge
				pending.failed = true
			} else if !pending.failed {
				pending.params = buf.Bytes()
			}
			dispatch(pending)
			pending = nil
			continue
		}

		dispatch(pending)
		pending = nil

		key := strings.TrimSpace(part.Header.Get("Idempotency-Key"))
		if key == "" {
			key = newUploadKey()
		}
		it := &gatewayBatchItem{
			slot: new(psp.BatchResult),
			key:  key,
			raw:  strings.HasPrefix(part.Header.Get("Content-Type"), "image/"),
			body: buf.Bytes(),
		}
		slots = append(slots, it.slot)
		if n > limit {
			it.body = nil
			it.failed = true
			*it.slot = psp.BatchResult{
				Error:  fmt.Sprintf("part exceeds %d bytes", limit),
				Status: http.StatusRequestEntityTooLarge,
			}
		}
		if it.raw {
			pending = it
		} else if !it.failed {
			dispatch(it)
		}
	}
	dispatch(pending)
	wg.Wait()
	if len(slots) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	results := make([]psp.BatchResult, len(slots))
	for i, slot := range slots {
		results[i] = *slot
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(psp.BatchResponse{Results: results})
}

// classifyUpload folds one PUT outcome into breaker state and an ack.
func (g *Gateway) classifyUpload(sh *shard, id string, resp *shardResp, err error) uploadAck {
	if err != nil {
		sh.failures.Add(1)
		sh.breaker.OnFailure()
		return uploadAck{sh: sh, repairable: true}
	}
	switch {
	case resp.status == http.StatusOK:
		var ur psp.UploadResponse
		if json.Unmarshal(resp.body, &ur) == nil && ur.ID == id {
			sh.breaker.OnSuccess()
			return uploadAck{sh: sh, ok: true}
		}
		// The shard acked under a different ID (a pre-existing key
		// mapping): its copy is not addressable at our ID.
		sh.breaker.OnSuccess()
		g.divergences.Add(1)
		return uploadAck{sh: sh, repairable: true}
	case resp.status == http.StatusTooManyRequests:
		// The shard shed this write under admission control: it is alive
		// and answering, so the breaker must not treat it as failing —
		// ejecting a merely-busy shard shifts its load onto the others and
		// cascades. The write still did not land, so it is repairable, and
		// the shard's Retry-After propagates into the quorum-failure hint.
		sh.overloads.Add(1)
		sh.breaker.OnSuccess()
		return uploadAck{sh: sh, repairable: true, resp: resp}
	case resp.status >= 500:
		sh.failures.Add(1)
		sh.breaker.OnFailure()
		return uploadAck{sh: sh, repairable: true, resp: resp}
	default:
		sh.breaker.OnSuccess()
		return uploadAck{sh: sh, resp: resp}
	}
}

// handleProxy serves every GET /v1/images/{id}[...] route by trying the
// replica set in ring order with hedged failover: a replica that errors,
// 404s, or reports corruption moves the request to the next one, and a
// replica that merely stalls past HedgeDelay gets raced against the next
// without being abandoned. First usable answer wins; replicas seen missing
// or corrupt are repaired asynchronously.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	order := g.routeOrder(id)
	if len(order) == 0 {
		g.writeUnavailable(w, 0, "cluster: no shards")
		return
	}
	pathQ := r.URL.Path
	if r.URL.RawQuery != "" {
		pathQ += "?" + r.URL.RawQuery
	}
	var hdr http.Header
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		hdr = http.Header{"If-None-Match": {inm}}
	}

	type outcome struct {
		sh   *shard
		resp *shardResp
		err  error
	}
	results := make(chan outcome, len(order))
	next := 0
	launch := func() {
		sh := order[next]
		next++
		sh.requests.Add(1)
		go func() {
			resp, err := g.attempt(r.Context(), sh, http.MethodGet, pathQ, nil, hdr)
			results <- outcome{sh: sh, resp: resp, err: err}
		}()
	}
	launch()
	outstanding := 1
	hedge := time.NewTimer(g.hedgeDelay())
	defer hedge.Stop()

	var missing, corrupt []*shard
	var corruptResp *shardResp
	var retryAfter time.Duration
	n404 := 0
	for outstanding > 0 {
		failover := false
		select {
		case res := <-results:
			outstanding--
			switch {
			case res.err != nil:
				res.sh.failures.Add(1)
				res.sh.breaker.OnFailure()
				failover = true
			case res.resp.status == http.StatusOK || res.resp.status == http.StatusNotModified:
				res.sh.breaker.OnSuccess()
				g.serveProxied(w, r, id, res.sh, res.resp, missing, corrupt)
				return
			case res.resp.status == http.StatusNotFound:
				res.sh.breaker.OnSuccess()
				n404++
				missing = append(missing, res.sh)
				failover = true
			case isCorrupt(res.resp):
				// The shard is healthy; its stored copy is damaged.
				res.sh.breaker.OnSuccess()
				corrupt = append(corrupt, res.sh)
				corruptResp = res.resp
				failover = true
			case res.resp.status == http.StatusTooManyRequests:
				// Shed by a live shard: fail over to a replica without
				// charging the breaker — overload is not death.
				res.sh.overloads.Add(1)
				res.sh.breaker.OnSuccess()
				if ra := psp.ParseRetryAfter(res.resp.header); ra > retryAfter {
					retryAfter = ra
				}
				failover = true
			case res.resp.status >= 500:
				res.sh.failures.Add(1)
				res.sh.breaker.OnFailure()
				if ra := psp.ParseRetryAfter(res.resp.header); ra > retryAfter {
					retryAfter = ra
				}
				failover = true
			default:
				// Deterministic client error (bad spec, …): every replica
				// would say the same; pass it through.
				res.sh.breaker.OnSuccess()
				writeShardResp(w, res.resp)
				return
			}
			if failover && next < len(order) {
				g.failovers.Add(1)
				launch()
				outstanding++
			}
		case <-hedge.C:
			if next < len(order) {
				g.hedges.Add(1)
				launch()
				outstanding++
				hedge.Reset(g.hedgeDelay())
			}
		}
	}

	// Every replica answered and none could serve. If all of them said
	// 404, the record may still live on a non-replica member (a GET racing
	// a rebalance): rescue from there and schedule the re-replication.
	if n404 == len(order) {
		for _, sh := range g.otherMembers(id) {
			sh.requests.Add(1)
			resp, err := g.attempt(r.Context(), sh, http.MethodGet, pathQ, nil, hdr)
			if err == nil && (resp.status == http.StatusOK || resp.status == http.StatusNotModified) {
				g.failovers.Add(1)
				g.serveProxied(w, r, id, sh, resp, missing, corrupt)
				return
			}
		}
		http.Error(w, fmt.Sprintf("image %q not found on any replica", id), http.StatusNotFound)
		return
	}
	if corruptResp != nil {
		writeShardResp(w, corruptResp)
		return
	}
	g.writeUnavailable(w, retryAfter, "cluster: all replicas failed")
}

// serveProxied writes the winning shard response and schedules the
// asynchronous follow-ups: repair of replicas observed missing/corrupt
// during failover and, for raw-image GETs, a one-shot quorum verification
// of the remaining replicas against the served ETag.
func (g *Gateway) serveProxied(w http.ResponseWriter, r *http.Request, id string, from *shard, resp *shardResp, missing, corrupt []*shard) {
	for _, sh := range missing {
		g.goRepair(id, sh)
	}
	for _, sh := range corrupt {
		g.goRepair(id, sh)
	}
	if !g.cfg.DisableReadVerify && r.URL.Path == "/v1/images/"+id {
		if etag := resp.header.Get("ETag"); etag != "" && g.markVerified(id) {
			go g.verifyReplicas(id, etag, from)
		}
	}
	writeShardResp(w, resp)
}

// markVerified reserves the one read verification this gateway runs per
// image; clearVerified (on shard re-admission) re-arms all of them.
func (g *Gateway) markVerified(id string) bool {
	g.verifyMu.Lock()
	defer g.verifyMu.Unlock()
	if len(g.verified) > 1<<16 {
		g.verified = make(map[string]bool)
	}
	if g.verified[id] {
		return false
	}
	g.verified[id] = true
	return true
}

func (g *Gateway) clearVerified() {
	g.verifyMu.Lock()
	g.verified = make(map[string]bool)
	g.verifyMu.Unlock()
}

// verifyReplicas is the quorum read check: conditional-GET every other
// replica with the served ETag. 304 means the replica agrees byte-for-byte
// (strong validator), 404 triggers read repair, and a 200 with a different
// validator is a divergence — counted, surfaced in statz, never silently
// overwritten.
func (g *Gateway) verifyReplicas(id, etag string, served *shard) {
	ctx, cancel := context.WithTimeout(context.Background(), 4*g.shardTimeout())
	defer cancel()
	hdr := http.Header{"If-None-Match": {etag}}
	for _, sh := range g.replicaShards(id) {
		if sh == served {
			continue
		}
		resp, err := g.attempt(ctx, sh, http.MethodGet, "/v1/images/"+id, nil, hdr)
		if err != nil {
			continue
		}
		switch {
		case resp.status == http.StatusNotModified:
			// Replica agrees.
		case resp.status == http.StatusNotFound:
			g.repairSync(ctx, id, sh)
		case resp.status == http.StatusOK:
			g.divergences.Add(1)
		case isCorrupt(resp):
			g.goRepair(id, sh)
		}
	}
}

func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	ids, reachable := g.mergedIDs(r.Context())
	if reachable == 0 {
		g.writeUnavailable(w, 0, "cluster: no shard reachable for listing")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(psp.ListResponse{IDs: ids})
}

// mergedIDs unions /v1/images across every member. With R-way replication
// the union over reachable shards is complete as long as each image keeps
// one live replica — the same condition reads need anyway.
func (g *Gateway) mergedIDs(ctx context.Context) (ids []string, reachable int) {
	g.mu.RLock()
	members := make([]*shard, 0, len(g.shards))
	for _, sh := range g.shards {
		members = append(members, sh)
	}
	g.mu.RUnlock()
	type listResult struct {
		ids []string
		ok  bool
	}
	results := make(chan listResult, len(members))
	for _, sh := range members {
		go func(sh *shard) {
			resp, err := g.attempt(ctx, sh, http.MethodGet, "/v1/images", nil, nil)
			if err != nil || resp.status != http.StatusOK {
				results <- listResult{}
				return
			}
			var lr psp.ListResponse
			if json.Unmarshal(resp.body, &lr) != nil {
				results <- listResult{}
				return
			}
			results <- listResult{ids: lr.IDs, ok: true}
		}(sh)
	}
	set := make(map[string]bool)
	for range members {
		res := <-results
		if !res.ok {
			continue
		}
		reachable++
		for _, id := range res.ids {
			set[id] = true
		}
	}
	ids = make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, reachable
}
