// Package cluster turns N independent pspd shards into one fault-tolerant
// PSP: a consistent-hash ring places every image on an ordered replica set,
// a routing gateway fans uploads out to R replicas (quorum W acks) and fails
// GETs over between replicas, per-shard circuit breakers eject unhealthy
// shards, and read repair plus a rebalance walk restore full replication
// after crashes and membership changes.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per shard. 64 vnodes keep the
// per-shard load imbalance within a few percent at single-digit shard
// counts while the full ring stays tiny (N*64 points).
const DefaultVNodes = 64

// point is one virtual node: a position on the ring owned by a shard.
type point struct {
	hash  uint64
	shard string
}

// Ring is a consistent-hash ring with virtual nodes. Placement is a pure
// function of (membership, vnode count): points are derived by hashing
// "shard\x00index" with SHA-256, so two Rings built from the same members —
// in any insertion order, in any process — produce identical replica sets
// for every key. Removing a shard only remaps keys that listed it, which is
// the property that makes shard leave/join an O(K/N) data move.
//
// Ring is not goroutine-safe; the Gateway serializes access.
type Ring struct {
	vnodes  int
	points  []point // sorted by (hash, shard)
	members map[string]bool
}

// NewRing returns an empty ring with the given vnode count per shard
// (<= 0 means DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// hash64 maps b to a ring position. SHA-256 (truncated) rather than a
// cheaper hash: point placement must be uniform for the 1/N movement bound
// to hold, and ring lookups hash only the key, never the whole ring.
func hash64(b []byte) uint64 {
	sum := sha256.Sum256(b)
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts shard with vnodes points. Re-adding a member is a no-op;
// returns whether membership changed.
func (r *Ring) Add(shard string) bool {
	if r.members[shard] {
		return false
	}
	r.members[shard] = true
	for i := 0; i < r.vnodes; i++ {
		h := hash64([]byte(shard + "\x00" + strconv.Itoa(i)))
		r.points = append(r.points, point{hash: h, shard: shard})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return true
}

// Remove deletes shard's points; returns whether membership changed.
func (r *Ring) Remove(shard string) bool {
	if !r.members[shard] {
		return false
	}
	delete(r.members, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Members returns the sorted member list.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size reports the member count and Points the vnode count.
func (r *Ring) Size() int   { return len(r.members) }
func (r *Ring) Points() int { return len(r.points) }

// Replicas returns the ordered replica set for key: walk the ring clockwise
// from hash(key), collecting the first n distinct shards. The first entry
// is the primary. Fewer than n members returns them all, ring order.
func (r *Ring) Replicas(key string, n int) []string {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64([]byte(key))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}
