package parallel

import (
	"sync/atomic"
	"testing"
)

// withWorkers runs fn with the worker count pinned to n, restoring the
// previous override afterwards.
func withWorkers(n int, fn func()) {
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	fn()
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			for _, grain := range []int{1, 3, 64, 2000} {
				hits := make([]int32, n)
				withWorkers(workers, func() {
					For(n, grain, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestForChunksBoundariesIndependentOfWorkers(t *testing.T) {
	collect := func(workers, n, grain int) map[int][2]int {
		got := make(map[int][2]int)
		ch := make(chan [3]int, numChunks(n, grain))
		withWorkers(workers, func() {
			ForChunks(n, grain, func(chunk, lo, hi int) {
				ch <- [3]int{chunk, lo, hi}
			})
		})
		close(ch)
		for c := range ch {
			got[c[0]] = [2]int{c[1], c[2]}
		}
		return got
	}
	serial := collect(1, 103, 10)
	for _, workers := range []int{2, 4} {
		par := collect(workers, 103, 10)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d chunks, want %d", workers, len(par), len(serial))
		}
		for c, b := range serial {
			if par[c] != b {
				t.Fatalf("workers=%d: chunk %d bounds %v, want %v", workers, c, par[c], b)
			}
		}
	}
}

func TestMapMergesInChunkOrder(t *testing.T) {
	for _, workers := range []int{1, 3} {
		withWorkers(workers, func() {
			parts := Map(100, 7, func(lo, hi int) int {
				sum := 0
				for i := lo; i < hi; i++ {
					sum += i
				}
				return sum
			})
			if len(parts) != numChunks(100, 7) {
				t.Fatalf("workers=%d: %d parts, want %d", workers, len(parts), numChunks(100, 7))
			}
			total := 0
			for _, p := range parts {
				total += p
			}
			if total != 99*100/2 {
				t.Fatalf("workers=%d: sum %d, want %d", workers, total, 99*100/2)
			}
		})
	}
}

func TestSetWorkersRestore(t *testing.T) {
	prev := SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(prev)
}

func TestScratchPoolsReturnZeroed(t *testing.T) {
	s := GetUint64(16)
	for i := range s {
		s[i] = ^uint64(0)
	}
	PutUint64(s)
	s2 := GetUint64(8)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("recycled slice not zeroed at %d: %x", i, v)
		}
	}
	// Growing within the recycled capacity must expose only zeroed memory,
	// including the poisoned bytes past the previous length.
	for i := range s2 {
		s2[i] = ^uint64(0)
	}
	PutUint64(s2)
	s3 := GetUint64(16)
	for i, v := range s3 {
		if v != 0 {
			t.Fatalf("regrown slice not zeroed at %d: %x", i, v)
		}
	}
	PutUint64(s3)
	// A request past any recycled capacity allocates fresh (zeroed) memory.
	big := GetUint64(1 << 12)
	for i, v := range big {
		if v != 0 {
			t.Fatalf("oversized slice not zeroed at %d: %x", i, v)
		}
	}
	PutUint64(big)
}
