// Package parallel provides the shared work-distribution substrate for the
// block-grid hot paths: a GOMAXPROCS-aware chunked worker pool and
// sync.Pool-backed scratch buffers.
//
// Determinism contract: For and ForChunks split the index space [0, n) into
// fixed-size chunks whose boundaries depend only on n and grain — never on
// the worker count. Workers only decide how many chunks execute
// concurrently. A caller that (a) writes each output location from exactly
// one index, or (b) accumulates per-chunk partial results and merges them in
// chunk order, therefore produces bit-identical output at any parallelism,
// including the serial fallback. The codec determinism tests
// (TestParallelDeterminism*) enforce this across the pipeline.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// workerOverride holds a positive worker-count override, or 0 for the
// GOMAXPROCS default. Stored atomically so tests can flip it under -race.
var workerOverride atomic.Int64

func init() {
	// PUPPIES_WORKERS pins the worker count for reproducible measurements
	// (e.g. PUPPIES_WORKERS=1 serializes every pipeline).
	if s := os.Getenv("PUPPIES_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			workerOverride.Store(int64(n))
		}
	}
}

// Workers returns the effective worker count: the SetWorkers override if
// set, otherwise GOMAXPROCS.
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the worker count (n <= 0 restores the GOMAXPROCS
// default) and returns the previous override (0 if none). Intended for
// tests and benchmarks that sweep parallelism levels.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workerOverride.Swap(int64(n)))
}

// MinGrain is the default smallest chunk size: below this, goroutine
// scheduling overhead outweighs the work.
const MinGrain = 1

// numChunks returns how many fixed-size chunks [0, n) splits into.
func numChunks(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// ForChunks runs fn once per fixed-size chunk of [0, n): fn(chunk, lo, hi)
// with lo/hi the chunk's half-open index range. Chunk boundaries depend only
// on n and grain, so per-chunk partial results merged in chunk order are
// identical at any worker count. fn runs concurrently across chunks when
// more than one worker is available; it must not touch state shared with
// other chunks except through its own chunk-indexed slot.
func ForChunks(n, grain int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := numChunks(n, grain)
	workers := Workers()
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(c, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(c, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// For runs fn over [0, n) in deterministic fixed-size chunks of at most
// grain indices. fn(lo, hi) must write only state owned by indices in
// [lo, hi).
func For(n, grain int, fn func(lo, hi int)) {
	ForChunks(n, grain, func(_, lo, hi int) { fn(lo, hi) })
}

// Map runs fn once per chunk and returns the per-chunk results in chunk
// order, for deterministic reductions: merge the returned slice left to
// right and the result is independent of the worker count.
func Map[T any](n, grain int, fn func(lo, hi int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, numChunks(n, grain))
	ForChunks(n, grain, func(chunk, lo, hi int) {
		out[chunk] = fn(lo, hi)
	})
	return out
}
