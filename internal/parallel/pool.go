package parallel

import "sync"

// slicePool recycles variable-length scratch slices. Get returns a zeroed
// slice of length n; Put recycles the backing array for a later Get of any
// length that fits its capacity.
type slicePool[T any] struct{ p sync.Pool }

func (sp *slicePool[T]) get(n int) []T {
	if v := sp.p.Get(); v != nil {
		s := *v.(*[]T)
		if cap(s) >= n {
			s = s[:n]
			clear(s)
			return s
		}
	}
	return make([]T, n)
}

func (sp *slicePool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	sp.p.Put(&s)
}

var u64Pool slicePool[uint64]

// GetUint64 returns a zeroed scratch []uint64 of length n (bitset backing).
func GetUint64(n int) []uint64 { return u64Pool.get(n) }

// PutUint64 recycles a scratch slice obtained from GetUint64.
func PutUint64(s []uint64) { u64Pool.put(s) }
