package experiments

import (
	"strings"
	"testing"

	"puppies/internal/core"
)

// tiny is the fast test configuration; the assertions below verify the
// *shape* of each paper result, which must hold even at small sample sizes.
var tiny = Config{Seed: 5, PascalN: 5, InriaN: 2, FeretN: 100, CaltechN: 5}

func TestTable1Shape(t *testing.T) {
	rows, tbl, err := Table1(tiny)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	pup := byName["PuPPIeS (ours)"]
	if !pup.Verified || !pup.PartialSharing || !pup.Scaling || !pup.Cropping ||
		!pup.Compression || !pup.Rotation {
		t.Errorf("PuPPIeS row %+v; paper Table I has all capabilities", pup)
	}
	p3row := byName["P3 [13]"]
	if !p3row.Verified {
		t.Error("P3 row not verified")
	}
	if p3row.PartialSharing || p3row.Scaling || p3row.Cropping {
		t.Errorf("P3 row %+v; paper says no partial/scaling/cropping", p3row)
	}
	if !p3row.Compression || !p3row.Rotation {
		t.Errorf("P3 row %+v; paper says compression and rotation supported", p3row)
	}
	if len(rows) != 9 {
		t.Errorf("Table I has %d rows, want 9", len(rows))
	}
	if !strings.Contains(tbl.String(), "PuPPIeS") {
		t.Error("table rendering broken")
	}
}

func TestTable2Shape(t *testing.T) {
	rows, _, err := Table2(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	b, c, z := rows[0].Summary, rows[1].Summary, rows[2].Summary
	// Paper Table II: -B ~10x, -C ~1.46, -Z ~1.23.
	if b.Mean < 3 {
		t.Errorf("PuPPIeS-B blowup %.2fx; paper reports ~10x", b.Mean)
	}
	if b.Mean <= c.Mean*2 {
		t.Errorf("-B (%.2f) should dwarf -C (%.2f)", b.Mean, c.Mean)
	}
	if c.Mean <= z.Mean {
		// -C must cost more than -Z (paper: 1.46 vs 1.23).
		t.Errorf("-C mean %.3f not above -Z mean %.3f", c.Mean, z.Mean)
	}
	if z.Mean < 1 || z.Mean > 2.5 {
		t.Errorf("-Z mean %.3f outside plausible band", z.Mean)
	}
}

func TestTable4Values(t *testing.T) {
	rows, _, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].MR != 1 || rows[0].K != 1 || rows[1].MR != 32 || rows[1].K != 8 ||
		rows[2].MR != 2048 || rows[2].K != 64 {
		t.Errorf("Table IV parameters wrong: %+v", rows)
	}
	if !(rows[0].TotalBits < rows[1].TotalBits && rows[1].TotalBits < rows[2].TotalBits) {
		t.Error("secure bits not increasing with level")
	}
}

func TestTable5Shape(t *testing.T) {
	rows, _, err := Table5(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	inria, pascal := rows[0], rows[1]
	if inria.Corpus != "inria" || pascal.Corpus != "pascal" {
		t.Fatalf("unexpected corpus order: %+v", rows)
	}
	// INRIA images are ~12x the pixels of PASCAL; timing must reflect it.
	if inria.Millis.Mean <= pascal.Millis.Mean {
		t.Errorf("INRIA (%.1f ms) not slower than PASCAL (%.1f ms)",
			inria.Millis.Mean, pascal.Millis.Mean)
	}
}

func TestFig4Shape(t *testing.T) {
	res, _, err := Fig4(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExactCount != res.N {
		t.Errorf("PuPPIeS exact on %d/%d images; paper claims exact recovery", res.ExactCount, res.N)
	}
	if res.P3PSNR.Mean >= exactPSNR {
		t.Errorf("P3 mean PSNR %.1f dB; paper shows visible detail loss", res.P3PSNR.Mean)
	}
	if res.PuppiesPSNR.Min <= res.P3PSNR.Max {
		t.Errorf("PuPPIeS worst case (%.1f) should beat P3 best case (%.1f)",
			res.PuppiesPSNR.Min, res.P3PSNR.Max)
	}
}

func TestFig11Shape(t *testing.T) {
	res, _, err := Fig11(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// PuPPIeS grows linearly with matrix count.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].PuppiesBytes <= res.Points[i-1].PuppiesBytes {
			t.Error("private size not increasing with matrices")
		}
	}
	// P3-INRIA private parts are much larger than P3-PASCAL (bigger
	// images), and both dwarf PuPPIeS at small matrix counts.
	if res.P3InriaMean <= res.P3PascalMean*2 {
		t.Errorf("P3 INRIA private (%.0f) not well above PASCAL (%.0f)", res.P3InriaMean, res.P3PascalMean)
	}
	if first := res.Points[0]; float64(first.PuppiesBytes) > res.P3PascalMean*0.2 {
		t.Errorf("PuPPIeS private at %d matrices (%d B) not tiny vs P3-PASCAL (%.0f B)",
			first.Matrices, first.PuppiesBytes, res.P3PascalMean)
	}
	// The crossover against P3-PASCAL exists at a moderate matrix count
	// (paper: 26 on real PASCAL; larger here because the synthetic P3
	// private part is bigger — see EXPERIMENTS.md).
	if res.CrossoverPascal <= 2 {
		t.Errorf("no PASCAL crossover found (%d)", res.CrossoverPascal)
	}
	// At the crossover, PuPPIeS should still be far below P3-INRIA (paper:
	// >93% savings for high-resolution images).
	cross := keysBytesAt(res, res.CrossoverPascal)
	if cross <= 0 || float64(cross) > res.P3InriaMean*0.5 {
		t.Errorf("at crossover (%d matrices, %d B) PuPPIeS not well below P3-INRIA (%.0f B)",
			res.CrossoverPascal, cross, res.P3InriaMean)
	}
}

func keysBytesAt(res *Fig11Result, matrices int) int {
	for _, pt := range res.Points {
		if pt.Matrices == matrices {
			return pt.PuppiesBytes
		}
	}
	return -1
}

func TestFig17Shape(t *testing.T) {
	rows, _, err := Fig17(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Index rows by corpus/level/scheme.
	get := func(corpus string, level core.PrivacyLevel, scheme string) float64 {
		for _, r := range rows {
			if r.Corpus == corpus && r.Level == level && r.Scheme == scheme {
				return r.Summary.Mean
			}
		}
		t.Fatalf("row %s/%s/%s missing", corpus, level, scheme)
		return 0
	}
	for _, corpus := range []string{"pascal", "inria"} {
		for _, scheme := range []string{"PuPPIeS-Compression", "PuPPIeS-Zero"} {
			low := get(corpus, core.LevelLow, scheme)
			med := get(corpus, core.LevelMedium, scheme)
			high := get(corpus, core.LevelHigh, scheme)
			if !(low <= med && med <= high) {
				t.Errorf("%s/%s: sizes not increasing with level: %.2f %.2f %.2f",
					corpus, scheme, low, med, high)
			}
			// Low privacy (DC only) is near-free (paper: negligible).
			if low > 1.3 {
				t.Errorf("%s/%s: low-privacy size %.2f not negligible", corpus, scheme, low)
			}
		}
		// The -C/-Z gap widens with privacy level.
		gapMed := get(corpus, core.LevelMedium, "PuPPIeS-Compression") - get(corpus, core.LevelMedium, "PuPPIeS-Zero")
		gapHigh := get(corpus, core.LevelHigh, "PuPPIeS-Compression") - get(corpus, core.LevelHigh, "PuPPIeS-Zero")
		if gapHigh < gapMed {
			t.Errorf("%s: -C/-Z gap does not widen with level (%.3f -> %.3f)", corpus, gapMed, gapHigh)
		}
	}
}

func TestFig18Shape(t *testing.T) {
	rows, _, err := Fig18(tiny)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, r := range rows {
		series[r.Scheme] = append(series[r.Scheme], r.Summary.Mean)
	}
	for _, name := range []string{"PuPPIeS-Compression", "PuPPIeS-Zero", "PuPPIeS-Zero--no newZeroIndex"} {
		s := series[name]
		if len(s) != 5 {
			t.Fatalf("%s has %d points", name, len(s))
		}
		if s[4] <= s[0] {
			t.Errorf("%s: public size not increasing with ROI area (%.3f -> %.3f)", name, s[0], s[4])
		}
	}
	// ZInd overhead: -Z with index above -Z without.
	withIdx, without := series["PuPPIeS-Zero"], series["PuPPIeS-Zero--no newZeroIndex"]
	for i := range withIdx {
		if withIdx[i] < without[i] {
			t.Errorf("point %d: ZInd made the public part smaller", i)
		}
	}
	// P3's public part is smaller than PuPPIeS's (paper: "much less").
	p3s := series["P3"]
	if p3s[0] >= series["PuPPIeS-Compression"][4] {
		t.Errorf("P3 public (%.3f) not below PuPPIeS full-ROI public (%.3f)",
			p3s[0], series["PuPPIeS-Compression"][4])
	}
}

func TestFig19Shape(t *testing.T) {
	res, _, err := Fig19(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.PuppiesPrivateBytes <= 0 || res.P3PrivateBytes <= 0 {
		t.Fatal("missing sizes")
	}
	// The private part of PuPPIeS (two matrices) is orders of magnitude
	// smaller than P3's private image.
	if int64(res.PuppiesPrivateBytes)*20 > res.P3PrivateBytes {
		t.Errorf("PuPPIeS private %d B vs P3 %d B: expected >20x gap",
			res.PuppiesPrivateBytes, res.P3PrivateBytes)
	}
	// PuPPIeS shifts volume to the public cloud: its public part exceeds
	// P3's.
	if res.PuppiesPublicBytes <= res.P3PublicBytes {
		t.Errorf("PuPPIeS public %d B not above P3 public %d B",
			res.PuppiesPublicBytes, res.P3PublicBytes)
	}
}

func TestFig16Shape(t *testing.T) {
	res, _, err := Fig16(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.RotationExact != res.N || res.ScalingExact != res.N {
		t.Errorf("round trips not exact: rotation %d/%d, scaling %d/%d",
			res.RotationExact, res.N, res.ScalingExact, res.N)
	}
}

func TestROITimingShape(t *testing.T) {
	res, _, err := ROITiming(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMillis.Mean <= 0 {
		t.Error("no time measured")
	}
	if res.ObjectShare < 0 || res.ObjectShare > 1 {
		t.Errorf("object share %v out of range", res.ObjectShare)
	}
}

func TestBruteForceTableShape(t *testing.T) {
	reports, tbl, err := BruteForceTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	if !strings.Contains(tbl.String(), "NIST") {
		t.Error("table missing NIST column")
	}
}

func TestFig23Shape(t *testing.T) {
	results, _, err := Fig23(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d attack results", len(results))
	}
	for _, r := range results {
		// Paper: "all three methods cannot recover any of the perturbed
		// part". SSIM near 1 or PSNR near lossless would falsify that.
		if r.PSNR > 30 {
			t.Errorf("%s: PSNR %.1f dB too high; attack should fail", r.Attack, r.PSNR)
		}
		if r.SSIM > 0.8 {
			t.Errorf("%s: SSIM %.2f too high; attack should fail", r.Attack, r.SSIM)
		}
	}
}
