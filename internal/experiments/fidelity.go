package experiments

import (
	"math"

	"puppies/internal/core"
	"puppies/internal/dataset"
	"puppies/internal/imgplane"
	"puppies/internal/keys"
	"puppies/internal/p3"
	"puppies/internal/stats"
	"puppies/internal/transform"
)

// Fig4Result compares recovery fidelity after a PSP-side downscale:
// PuPPIeS recovers the scaled original exactly (lossless delivery path)
// while P3's recombination through standard clamped pipelines loses detail.
type Fig4Result struct {
	// PSNR of the recovered image against the scaled original; +Inf or
	// >= 55 dB means exact.
	PuppiesPSNR stats.Summary
	P3PSNR      stats.Summary
	// ExactCount is the number of images PuPPIeS recovered exactly.
	ExactCount int
	N          int
}

// Fig4 reproduces Fig. 4 quantitatively on the PASCAL-like corpus.
func Fig4(cfg Config) (*Fig4Result, *stats.Table, error) {
	corpus, err := cfg.corpus(dataset.PASCAL, cfg.PascalN)
	if err != nil {
		return nil, nil, err
	}
	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}
	var pupPSNRs, p3PSNRs []float64
	exact := 0
	for i, ci := range corpus {
		basePix, err := ci.img.ToPlanar()
		if err != nil {
			return nil, nil, err
		}
		want, err := transform.ApplyPlanar(basePix, spec)
		if err != nil {
			return nil, nil, err
		}

		// PuPPIeS: whole-image protection, PSP scales pixels, receiver
		// subtracts the scaled shadow.
		perturbed, pd, pair, err := perturbWhole(ci.img, core.Params{
			Variant: core.VariantC, MR: 32, K: 8, Wrap: core.WrapRecorded,
		}, int64(5000+i))
		if err != nil {
			return nil, nil, err
		}
		pertPix, err := perturbed.ToPlanar()
		if err != nil {
			return nil, nil, err
		}
		transformed, err := transform.ApplyPlanar(pertPix, spec)
		if err != nil {
			return nil, nil, err
		}
		pdT := *pd
		pdT.Transform = spec
		got, err := core.ReconstructPixels(transformed, &pdT, map[string]*keys.Pair{pair.ID: pair})
		if err != nil {
			return nil, nil, err
		}
		psnr, err := imgplane.ImagePSNR(got, want)
		if err != nil {
			return nil, nil, err
		}
		if math.IsInf(psnr, 1) || psnr >= exactPSNR {
			exact++
		}
		pupPSNRs = append(pupPSNRs, capPSNR(psnr))

		// P3: both parts through the standard clamped pipeline.
		split, err := p3.SplitImage(ci.img, p3.DefaultThreshold)
		if err != nil {
			return nil, nil, err
		}
		pubPix, err := split.PublicPixels()
		if err != nil {
			return nil, nil, err
		}
		privPix, err := split.PrivatePixels()
		if err != nil {
			return nil, nil, err
		}
		pubT, err := transform.ApplyPlanar(pubPix, spec)
		if err != nil {
			return nil, nil, err
		}
		privT, err := transform.ApplyPlanar(privPix, spec)
		if err != nil {
			return nil, nil, err
		}
		rec, err := p3.CombinePixels(pubT.Clamp8(), privT.Clamp8())
		if err != nil {
			return nil, nil, err
		}
		wantClamped := want.Clone().Clamp8()
		p3PSNR, err := imgplane.ImagePSNR(rec, wantClamped)
		if err != nil {
			return nil, nil, err
		}
		p3PSNRs = append(p3PSNRs, capPSNR(p3PSNR))
	}

	res := &Fig4Result{ExactCount: exact, N: len(corpus)}
	if res.PuppiesPSNR, err = stats.Summarize(pupPSNRs); err != nil {
		return nil, nil, err
	}
	if res.P3PSNR, err = stats.Summarize(p3PSNRs); err != nil {
		return nil, nil, err
	}
	tbl := &stats.Table{
		Title:   "Fig 4: recovery fidelity after PSP 0.5x scaling (PSNR dB, capped at 99)",
		Columns: []string{"scheme", "mean", "median", "min", "exact images"},
	}
	tbl.AddRow("PuPPIeS", res.PuppiesPSNR.Mean, res.PuppiesPSNR.Median, res.PuppiesPSNR.Min,
		res.ExactCount)
	tbl.AddRow("P3", res.P3PSNR.Mean, res.P3PSNR.Median, res.P3PSNR.Min, 0)
	return res, tbl, nil
}

// capPSNR folds +Inf (bit-exact) into 99 dB so summaries stay finite.
func capPSNR(v float64) float64 {
	if math.IsInf(v, 1) || v > 99 {
		return 99
	}
	return v
}

// Fig16Result checks the rotate/scale round-trip pipeline of Figs. 10/16:
// perturb, PSP-transform, reconstruct; recovery must be exact.
type Fig16Result struct {
	RotationExact int
	ScalingExact  int
	N             int
}

// Fig16 reproduces the Figs. 10/16 pipelines quantitatively.
func Fig16(cfg Config) (*Fig16Result, *stats.Table, error) {
	corpus, err := cfg.corpus(dataset.PASCAL, cfg.PascalN)
	if err != nil {
		return nil, nil, err
	}
	res := &Fig16Result{N: len(corpus)}
	for i, ci := range corpus {
		perturbed, pd, pair, err := perturbWhole(ci.img, core.Params{
			Variant: core.VariantC, MR: 32, K: 8, Wrap: core.WrapRecorded,
		}, int64(6000+i))
		if err != nil {
			return nil, nil, err
		}
		pairs := map[string]*keys.Pair{pair.ID: pair}

		// Fig 10: 180-degree rotation at the PSP, coefficient domain.
		rot, err := transform.Rotate180(perturbed)
		if err != nil {
			return nil, nil, err
		}
		pdR := *pd
		pdR.Transform = transform.Spec{Op: transform.OpRotate180}
		gotR, err := core.ReconstructCoeff(rot, &pdR, pairs)
		if err != nil {
			return nil, nil, err
		}
		wantR, err := transform.Rotate180(ci.img)
		if err != nil {
			return nil, nil, err
		}
		if coeffImagesEqual(gotR, wantR) {
			res.RotationExact++
		}

		// Fig 16: downscale at the PSP, pixel domain, lossless delivery.
		spec := transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}
		pertPix, err := perturbed.ToPlanar()
		if err != nil {
			return nil, nil, err
		}
		transformed, err := transform.ApplyPlanar(pertPix, spec)
		if err != nil {
			return nil, nil, err
		}
		pdS := *pd
		pdS.Transform = spec
		gotS, err := core.ReconstructPixels(transformed, &pdS, pairs)
		if err != nil {
			return nil, nil, err
		}
		basePix, err := ci.img.ToPlanar()
		if err != nil {
			return nil, nil, err
		}
		wantS, err := transform.ApplyPlanar(basePix, spec)
		if err != nil {
			return nil, nil, err
		}
		psnr, err := imgplane.ImagePSNR(gotS, wantS)
		if err != nil {
			return nil, nil, err
		}
		if math.IsInf(psnr, 1) || psnr >= exactPSNR {
			res.ScalingExact++
		}
	}
	tbl := &stats.Table{
		Title:   "Figs 10/16: perturb -> PSP transform -> reconstruct round trips",
		Columns: []string{"pipeline", "exact", "of"},
	}
	tbl.AddRow("rotate180 (coefficient domain)", res.RotationExact, res.N)
	tbl.AddRow("scale 0.5x (pixel domain)", res.ScalingExact, res.N)
	return res, tbl, nil
}
