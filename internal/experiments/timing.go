package experiments

import (
	"time"

	"puppies/internal/core"
	"puppies/internal/dataset"
	"puppies/internal/keys"
	"puppies/internal/roi"
	"puppies/internal/stats"
)

// Table5Row is one corpus's encryption+decryption timing summary.
type Table5Row struct {
	Corpus string
	// Millis summarizes per-image encrypt+decrypt wall time in
	// milliseconds (whole-image ROI, the paper's upper bound).
	Millis stats.Summary
}

// Table5 reproduces Table V: upper-bound encryption/decryption time of
// PuPPIeS-Z on the INRIA-like and PASCAL-like corpora. The paper reports
// laptop milliseconds; absolute values differ by machine, the shape
// (time scales with pixel count; INRIA >> PASCAL) is the target.
func Table5(cfg Config) ([]Table5Row, *stats.Table, error) {
	var rows []Table5Row
	tbl := &stats.Table{
		Title:   "Table V: PuPPIeS-Z whole-image encrypt+decrypt time (ms)",
		Columns: []string{"corpus", "mean", "median", "max", "min", "std"},
	}
	corpora := []struct {
		profile  dataset.Profile
		override int
	}{
		{dataset.INRIA, cfg.InriaN},
		{dataset.PASCAL, cfg.PascalN},
	}
	for _, c := range corpora {
		corpus, err := cfg.corpus(c.profile, c.override)
		if err != nil {
			return nil, nil, err
		}
		sch, err := core.NewScheme(core.Params{Variant: core.VariantZ, MR: 32, K: 8})
		if err != nil {
			return nil, nil, err
		}
		var samples []float64
		for i, ci := range corpus {
			pair := keys.NewPairDeterministic(int64(4000 + i))
			img := ci.img.Clone()
			x, y, w, h := wholeImageROI(img)

			start := time.Now()
			pd, _, err := sch.EncryptImage(img, []core.RegionAssignment{
				{ROI: core.ROI{X: x, Y: y, W: w, H: h}, Pair: pair},
			})
			if err != nil {
				return nil, nil, err
			}
			if _, err := core.DecryptImage(img, pd, map[string]*keys.Pair{pair.ID: pair}); err != nil {
				return nil, nil, err
			}
			samples = append(samples, float64(time.Since(start).Microseconds())/1000)
		}
		s, err := stats.Summarize(samples)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Table5Row{Corpus: c.profile.Name, Millis: s})
		tbl.AddRow(c.profile.Name, s.Mean, s.Median, s.Max, s.Min, s.Std)
	}
	return rows, tbl, nil
}

// ROITimingResult is the §V-C ROI detection latency breakdown.
type ROITimingResult struct {
	TotalMillis  stats.Summary
	FaceMillis   stats.Summary
	TextMillis   stats.Summary
	ObjectMillis stats.Summary
	// ObjectShare is the mean fraction of total time spent in object
	// detection (the paper reports >99% for their objectness detector).
	ObjectShare float64
}

// ROITiming measures ROI detection and recommendation latency (paper §V-C)
// on the PASCAL-like corpus.
func ROITiming(cfg Config) (*ROITimingResult, *stats.Table, error) {
	corpus, err := cfg.corpus(dataset.PASCAL, cfg.PascalN)
	if err != nil {
		return nil, nil, err
	}
	det := roi.NewDetector()
	var total, face, text, object []float64
	for _, ci := range corpus {
		img := ci.item.Image

		t0 := time.Now()
		_ = det.DetectFaces(img)
		tFace := time.Since(t0)

		t1 := time.Now()
		_ = det.DetectText(img)
		tText := time.Since(t1)

		t2 := time.Now()
		_ = det.DetectObjects(img)
		tObj := time.Since(t2)

		t3 := time.Now()
		_ = det.Recommend(img)
		tAll := time.Since(t3)

		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		face = append(face, ms(tFace))
		text = append(text, ms(tText))
		object = append(object, ms(tObj))
		total = append(total, ms(tAll))
	}
	res := &ROITimingResult{}
	var errSum error
	summarize := func(v []float64) stats.Summary {
		s, err := stats.Summarize(v)
		if err != nil && errSum == nil {
			errSum = err
		}
		return s
	}
	res.TotalMillis = summarize(total)
	res.FaceMillis = summarize(face)
	res.TextMillis = summarize(text)
	res.ObjectMillis = summarize(object)
	if errSum != nil {
		return nil, nil, errSum
	}
	perDet := res.FaceMillis.Mean + res.TextMillis.Mean + res.ObjectMillis.Mean
	if perDet > 0 {
		res.ObjectShare = res.ObjectMillis.Mean / perDet
	}

	tbl := &stats.Table{
		Title:   "§V-C: ROI detection latency (ms)",
		Columns: []string{"stage", "mean", "median", "max", "min"},
	}
	tbl.AddRow("face detector", res.FaceMillis.Mean, res.FaceMillis.Median, res.FaceMillis.Max, res.FaceMillis.Min)
	tbl.AddRow("text detector", res.TextMillis.Mean, res.TextMillis.Median, res.TextMillis.Max, res.TextMillis.Min)
	tbl.AddRow("object detector", res.ObjectMillis.Mean, res.ObjectMillis.Median, res.ObjectMillis.Max, res.ObjectMillis.Min)
	tbl.AddRow("full recommend", res.TotalMillis.Mean, res.TotalMillis.Median, res.TotalMillis.Max, res.TotalMillis.Min)
	return res, tbl, nil
}
