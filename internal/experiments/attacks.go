package experiments

import (
	"fmt"
	"math"

	"puppies/internal/attack"
	"puppies/internal/core"
	"puppies/internal/dataset"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/p3"
	"puppies/internal/roi"
	"puppies/internal/stats"
)

// attackQuality pins the inference-attack experiments to the libjpeg
// default quality the paper's implementation used. The perturbation's
// visual destructiveness scales with the quantization step size (a 2048-
// range coefficient perturbation moves pixels by step*range/8), so at very
// fine quantization (quality >= 90) more structure survives in unperturbed
// mid/high-frequency coefficients — a sensitivity documented in
// EXPERIMENTS.md.
func attackQuality(cfg Config) Config {
	if cfg.Quality == 0 {
		cfg.Quality = 75
	}
	return cfg
}

// perturbedPixels perturbs the whole image with the given variant and
// returns the 8-bit pixels an attacker at the PSP sees.
func perturbedPixels(img *jpegc.Image, v core.Variant, seed int64) (*imgplane.Image, error) {
	perturbed, _, _, err := perturbWhole(img, core.Params{Variant: v, MR: 32, K: 8}, seed)
	if err != nil {
		return nil, err
	}
	return pixOf(perturbed)
}

// p3PublicPixels returns the 8-bit pixels of the P3 public part.
func p3PublicPixels(img *jpegc.Image) (*imgplane.Image, error) {
	split, err := p3.SplitImage(img, p3.DefaultThreshold)
	if err != nil {
		return nil, err
	}
	return split.PublicPixels()
}

// Fig20Result summarizes the SIFT feature attack.
type Fig20Result struct {
	MeanOriginalFeatures float64
	MeanMatchesPuppies   float64
	MeanMatchesP3        float64
	// ZeroMatchFraction is the fraction of images with no surviving match
	// (paper: > 90%).
	ZeroMatchFractionPuppies float64
	ZeroMatchFractionP3      float64
	N                        int
}

// Fig20 reproduces Fig. 20 / §VI-B.1: SIFT features matched between
// originals and their protected versions.
func Fig20(cfg Config) (*Fig20Result, *stats.Table, error) {
	cfg = attackQuality(cfg)
	corpus, err := cfg.corpus(dataset.PASCAL, cfg.PascalN)
	if err != nil {
		return nil, nil, err
	}
	var feats, mPup, mP3 []float64
	for i, ci := range corpus {
		origPix, err := pixOf(ci.img)
		if err != nil {
			return nil, nil, err
		}
		orig := attack.SIFT(origPix, attack.SIFTParams{})
		feats = append(feats, float64(len(orig)))

		pupPix, err := perturbedPixels(ci.img, core.VariantZ, int64(7000+i))
		if err != nil {
			return nil, nil, err
		}
		pup := attack.SIFT(pupPix, attack.SIFTParams{})
		mPup = append(mPup, float64(len(attack.MatchSIFT(orig, pup, 0))))

		p3Pix, err := p3PublicPixels(ci.img)
		if err != nil {
			return nil, nil, err
		}
		p3Kps := attack.SIFT(p3Pix, attack.SIFTParams{})
		mP3 = append(mP3, float64(len(attack.MatchSIFT(orig, p3Kps, 0))))
	}
	res := &Fig20Result{N: len(corpus)}
	sf, err := stats.Summarize(feats)
	if err != nil {
		return nil, nil, err
	}
	sp, err := stats.Summarize(mPup)
	if err != nil {
		return nil, nil, err
	}
	s3, err := stats.Summarize(mP3)
	if err != nil {
		return nil, nil, err
	}
	res.MeanOriginalFeatures = sf.Mean
	res.MeanMatchesPuppies = sp.Mean
	res.MeanMatchesP3 = s3.Mean
	res.ZeroMatchFractionPuppies = stats.Fraction(mPup, func(v float64) bool { return v == 0 })
	res.ZeroMatchFractionP3 = stats.Fraction(mP3, func(v float64) bool { return v == 0 })

	tbl := &stats.Table{
		Title:   "Fig 20 / §VI-B.1: SIFT feature matching, original vs protected",
		Columns: []string{"quantity", "value"},
	}
	tbl.AddRow("mean features per original", res.MeanOriginalFeatures)
	tbl.AddRow("mean matches vs PuPPIeS-Z", res.MeanMatchesPuppies)
	tbl.AddRow("mean matches vs P3 public", res.MeanMatchesP3)
	tbl.AddRow("images with 0 matches (PuPPIeS)", res.ZeroMatchFractionPuppies)
	tbl.AddRow("images with 0 matches (P3)", res.ZeroMatchFractionP3)
	return res, tbl, nil
}

// Fig21Result is the edge-detection attack outcome.
type Fig21Result struct {
	// OverlapCDF* are empirical CDFs of the fraction of original edge
	// pixels surviving in the protected image.
	OverlapCDFPuppies []stats.CDFPoint
	OverlapCDFP3      []stats.CDFPoint
	// Below5PctPuppies is the fraction of images leaking < 5% of edges
	// (the paper's headline: "less than 5% detected pixels").
	Below5PctPuppies float64
	Below5PctP3      float64
}

// Fig21 reproduces Fig. 21 / §VI-B.2: Canny edge survival CDFs.
func Fig21(cfg Config) (*Fig21Result, *stats.Table, error) {
	cfg = attackQuality(cfg)
	corpus, err := cfg.corpus(dataset.PASCAL, cfg.PascalN)
	if err != nil {
		return nil, nil, err
	}
	var ovPup, ovP3 []float64
	for i, ci := range corpus {
		origPix, err := pixOf(ci.img)
		if err != nil {
			return nil, nil, err
		}
		refEdges, err := attack.Canny(origPix, attack.CannyParams{})
		if err != nil {
			return nil, nil, err
		}

		pupPix, err := perturbedPixels(ci.img, core.VariantZ, int64(8000+i))
		if err != nil {
			return nil, nil, err
		}
		pupEdges, err := attack.Canny(pupPix, attack.CannyParams{})
		if err != nil {
			return nil, nil, err
		}
		ov, err := attack.EdgeOverlap(refEdges, pupEdges)
		if err != nil {
			return nil, nil, err
		}
		ovPup = append(ovPup, ov)

		p3Pix, err := p3PublicPixels(ci.img)
		if err != nil {
			return nil, nil, err
		}
		p3Edges, err := attack.Canny(p3Pix, attack.CannyParams{})
		if err != nil {
			return nil, nil, err
		}
		ov3, err := attack.EdgeOverlap(refEdges, p3Edges)
		if err != nil {
			return nil, nil, err
		}
		ovP3 = append(ovP3, ov3)
	}
	res := &Fig21Result{
		Below5PctPuppies: stats.Fraction(ovPup, func(v float64) bool { return v < 0.05 }),
		Below5PctP3:      stats.Fraction(ovP3, func(v float64) bool { return v < 0.05 }),
	}
	if res.OverlapCDFPuppies, err = stats.CDF(ovPup, 10); err != nil {
		return nil, nil, err
	}
	if res.OverlapCDFP3, err = stats.CDF(ovP3, 10); err != nil {
		return nil, nil, err
	}
	tbl := &stats.Table{
		Title:   "Fig 21 / §VI-B.2: edge survival CDF (fraction of original edges found)",
		Columns: []string{"scheme", "P", "edge overlap <= x"},
	}
	for _, pt := range res.OverlapCDFPuppies {
		tbl.AddRow("PuPPIeS-Zero", pt.P, pt.X)
	}
	for _, pt := range res.OverlapCDFP3 {
		tbl.AddRow("P3", pt.P, pt.X)
	}
	return res, tbl, nil
}

// Fig22Result is the cumulative face-recognition attack curve.
type Fig22Result struct {
	Ranks []int
	// Ratio*[i] is the fraction of probes whose true identity appears in
	// the top Ranks[i] candidates.
	RatioPuppies []float64
	RatioP3      []float64
	RatioClean   []float64
}

// Fig22 reproduces Fig. 22 / §VI-B.4: PCA eigenface recognition on
// protected probes, cumulative match ratio at ranks 1..50 (capped at the
// identity count).
func Fig22(cfg Config) (*Fig22Result, *stats.Table, error) {
	cfg = attackQuality(cfg)
	n := cfg.count(dataset.FERET, cfg.FeretN)
	gen, err := dataset.NewGenerator(dataset.FERET, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	identities := dataset.FERET.Identities
	galleryPerID := 2
	galleryN := identities * galleryPerID
	probeN := n - galleryN
	if probeN < identities {
		probeN = identities
	}
	if probeN > 60 {
		probeN = 60
	}

	ts := &attack.TrainingSet{}
	for i := 0; i < galleryN; i++ {
		item := gen.Item(i)
		a := item.Annotations[0]
		if err := ts.Add(item.Image, a.X, a.Y, a.W, a.H, a.Identity); err != nil {
			return nil, nil, err
		}
	}
	model, err := attack.Train(ts, 30)
	if err != nil {
		return nil, nil, err
	}

	maxRank := 50
	if maxRank > identities {
		maxRank = identities
	}
	cleanHits := make([]int, maxRank+1)
	pupHits := make([]int, maxRank+1)
	p3Hits := make([]int, maxRank+1)
	probes := 0
	for i := galleryN; i < galleryN+probeN; i++ {
		item := gen.Item(i)
		a := item.Annotations[0]
		probes++

		record := func(img *imgplane.Image, hits []int) error {
			ranked, err := model.Recognize(img, a.X, a.Y, a.W, a.H)
			if err != nil {
				return err
			}
			if r := attack.RankOf(ranked, a.Identity); r > 0 && r <= maxRank {
				hits[r]++
			}
			return nil
		}
		if err := record(item.Image, cleanHits); err != nil {
			return nil, nil, err
		}

		cimg, err := jpegc.FromPlanar(item.Image, jpegc.Options{Quality: cfg.quality()})
		if err != nil {
			return nil, nil, err
		}
		pupPix, err := perturbedPixels(cimg, core.VariantZ, int64(9000+i))
		if err != nil {
			return nil, nil, err
		}
		if err := record(pupPix, pupHits); err != nil {
			return nil, nil, err
		}
		p3Pix, err := p3PublicPixels(cimg)
		if err != nil {
			return nil, nil, err
		}
		if err := record(p3Pix, p3Hits); err != nil {
			return nil, nil, err
		}
	}

	res := &Fig22Result{}
	cum := func(hits []int) []float64 {
		out := make([]float64, 0, maxRank)
		total := 0
		for r := 1; r <= maxRank; r++ {
			total += hits[r]
			out = append(out, float64(total)/float64(probes))
		}
		return out
	}
	for r := 1; r <= maxRank; r++ {
		res.Ranks = append(res.Ranks, r)
	}
	res.RatioClean = cum(cleanHits)
	res.RatioPuppies = cum(pupHits)
	res.RatioP3 = cum(p3Hits)

	tbl := &stats.Table{
		Title:   "Fig 22 / §VI-B.4: cumulative face recognition ratio vs rank",
		Columns: []string{"rank", "clean", "P3 public", "PuPPIeS-Zero"},
	}
	for _, r := range []int{1, 5, 10, 20, maxRank} {
		if r > maxRank {
			continue
		}
		tbl.AddRow(r, res.RatioClean[r-1], res.RatioP3[r-1], res.RatioPuppies[r-1])
	}
	return res, tbl, nil
}

// Fig23Result scores the three signal-correlation attacks on the
// "Hello World" image (paper Fig. 23). Low PSNR/SSIM = attack failed.
type Fig23Result struct {
	Attack string
	PSNR   float64
	SSIM   float64
}

// Fig23 reproduces Fig. 23: a white image with "HELLO WORLD!" in the
// foreground, text area perturbed, attacked with matrix inference,
// neighbour interpolation and PCA reconstruction.
func Fig23(cfg Config) ([]Fig23Result, *stats.Table, error) {
	img, region, err := helloWorldImage()
	if err != nil {
		return nil, nil, err
	}
	cimg, err := jpegc.FromPlanar(img, jpegc.Options{Quality: cfg.quality()})
	if err != nil {
		return nil, nil, err
	}
	orig, err := pixOf(cimg)
	if err != nil {
		return nil, nil, err
	}
	sch, err := core.NewScheme(core.Params{Variant: core.VariantC, MR: 32, K: 8})
	if err != nil {
		return nil, nil, err
	}
	perturbed := cimg.Clone()
	pair := keys.NewPairDeterministic(12)
	pd, _, err := sch.EncryptImage(perturbed, []core.RegionAssignment{{ROI: region, Pair: pair}})
	if err != nil {
		return nil, nil, err
	}
	perturbedPix, err := pixOf(perturbed)
	if err != nil {
		return nil, nil, err
	}

	rec1, err := attack.InferMatrixAttack(perturbed, pd)
	if err != nil {
		return nil, nil, err
	}
	rec2, err := attack.NeighborInterpolationAttack(perturbedPix, pd)
	if err != nil {
		return nil, nil, err
	}
	rec3, err := attack.PCAAttack(perturbedPix, 6)
	if err != nil {
		return nil, nil, err
	}

	var out []Fig23Result
	tbl := &stats.Table{
		Title:   "Fig 23 / §VI-B.5: signal correlation attacks on 'HELLO WORLD!'",
		Columns: []string{"attack", "PSNR (dB)", "SSIM"},
	}
	for _, e := range []struct {
		name string
		img  *imgplane.Image
	}{
		{"matrix inference", rec1},
		{"neighbor interpolation", rec2},
		{"PCA reconstruction", rec3},
	} {
		psnr := regionPSNR(orig, e.img, region)
		ssim, err := regionSSIM(orig, e.img, region)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, Fig23Result{Attack: e.name, PSNR: psnr, SSIM: ssim})
		tbl.AddRow(e.name, psnr, ssim)
	}
	return out, tbl, nil
}

// helloWorldImage renders the paper's simplest attack target.
func helloWorldImage() (*imgplane.Image, core.ROI, error) {
	gen, err := dataset.NewGenerator(dataset.Profile{
		Name: "hello", W: 256, H: 128, SampleCount: 1, FullCount: 1, Kind: dataset.KindObjects,
	}, 99)
	if err != nil {
		return nil, core.ROI{}, err
	}
	// Build a white canvas manually; the generator is only used for module
	// symmetry. Draw via a white image then text pixels in dark gray.
	_ = gen
	img, err := imgplane.New(256, 128, 3)
	if err != nil {
		return nil, core.ROI{}, err
	}
	for i := range img.Planes[0].Pix {
		img.Planes[0].Pix[i] = 250
		img.Planes[1].Pix[i] = 128
		img.Planes[2].Pix[i] = 128
	}
	drawHello(img)
	region := core.ROI{X: 16, Y: 40, W: 224, H: 48}
	return img, region, nil
}

// drawHello renders "HELLO WORLD!" with a blocky 5x7-ish pattern by
// darkening pixels; precise glyph fidelity is irrelevant to the attack.
func drawHello(img *imgplane.Image) {
	text := "HELLO WORLD!"
	scale := 3
	x0, y0 := 24, 52
	for i, ch := range text {
		if ch == ' ' {
			continue
		}
		// Simple per-character block pattern derived from the rune value:
		// enough structure for edge/PCA attacks to have a target.
		for ry := 0; ry < 7; ry++ {
			for rx := 0; rx < 5; rx++ {
				if (int(ch)*(ry+1)+(rx+1)*3)%4 != 0 {
					for sy := 0; sy < scale; sy++ {
						for sx := 0; sx < scale; sx++ {
							px := x0 + i*6*scale + rx*scale + sx
							py := y0 + ry*scale + sy
							idx := py*img.W() + px
							if idx >= 0 && idx < len(img.Planes[0].Pix) {
								img.Planes[0].Pix[idx] = 30
							}
						}
					}
				}
			}
		}
	}
}

func regionPSNR(a, b *imgplane.Image, r core.ROI) float64 {
	var mse float64
	var n int
	for ci := range a.Planes {
		for y := r.Y; y < r.Y+r.H; y++ {
			for x := r.X; x < r.X+r.W; x++ {
				d := float64(a.Planes[ci].At(x, y) - b.Planes[ci].At(x, y))
				mse += d * d
				n++
			}
		}
	}
	mse /= float64(n)
	if mse == 0 {
		return 99
	}
	p := 10 * logTen(255*255/mse)
	if p > 99 {
		return 99
	}
	return p
}

func regionSSIM(a, b *imgplane.Image, r core.ROI) (float64, error) {
	cropA, err := cropPlane(a.Planes[0], r)
	if err != nil {
		return 0, err
	}
	cropB, err := cropPlane(b.Planes[0], r)
	if err != nil {
		return 0, err
	}
	return imgplane.SSIM(cropA, cropB)
}

func cropPlane(p *imgplane.Plane, r core.ROI) (*imgplane.Plane, error) {
	out := imgplane.NewPlane(r.W, r.H)
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			out.Pix[y*r.W+x] = p.At(r.X+x, r.Y+y)
		}
	}
	return out, nil
}

func logTen(v float64) float64 {
	return math.Log10(v)
}

// FaceDetectionResult is the §VI-B.3 face-detection attack outcome.
type FaceDetectionResult struct {
	GroundTruthFaces int
	DetectedOriginal int
	DetectedPuppiesC int
	DetectedPuppiesZ int
	DetectedP3       int
}

// FaceDetection reproduces §VI-B.3 on the Caltech-like corpus: run the face
// detector on originals, PuPPIeS-C/-Z perturbed images and P3 public parts,
// counting correctly detected (ground-truth-overlapping) faces.
func FaceDetection(cfg Config) (*FaceDetectionResult, *stats.Table, error) {
	cfg = attackQuality(cfg)
	corpus, err := cfg.corpus(dataset.Caltech, cfg.CaltechN)
	if err != nil {
		return nil, nil, err
	}
	det := roi.NewDetector()
	res := &FaceDetectionResult{}
	countHits := func(img *imgplane.Image, anns []dataset.Annotation) int {
		dets := det.DetectFaces(img)
		hits := 0
		for _, a := range anns {
			if a.Class != dataset.ClassFace {
				continue
			}
			for _, d := range dets {
				if rectIoU(d.Rect, a) > 0.25 {
					hits++
					break
				}
			}
		}
		return hits
	}
	for i, ci := range corpus {
		for _, a := range ci.item.Annotations {
			if a.Class == dataset.ClassFace {
				res.GroundTruthFaces++
			}
		}
		origPix, err := pixOf(ci.img)
		if err != nil {
			return nil, nil, err
		}
		res.DetectedOriginal += countHits(origPix, ci.item.Annotations)

		pixC, err := perturbedPixels(ci.img, core.VariantC, int64(10000+i))
		if err != nil {
			return nil, nil, err
		}
		res.DetectedPuppiesC += countHits(pixC, ci.item.Annotations)

		pixZ, err := perturbedPixels(ci.img, core.VariantZ, int64(11000+i))
		if err != nil {
			return nil, nil, err
		}
		res.DetectedPuppiesZ += countHits(pixZ, ci.item.Annotations)

		p3Pix, err := p3PublicPixels(ci.img)
		if err != nil {
			return nil, nil, err
		}
		res.DetectedP3 += countHits(p3Pix, ci.item.Annotations)
	}
	tbl := &stats.Table{
		Title:   "§VI-B.3: face detection attack (correctly detected faces)",
		Columns: []string{"image set", "faces detected", "of ground truth"},
	}
	tbl.AddRow("originals", res.DetectedOriginal, res.GroundTruthFaces)
	tbl.AddRow("PuPPIeS-C perturbed", res.DetectedPuppiesC, res.GroundTruthFaces)
	tbl.AddRow("PuPPIeS-Z perturbed", res.DetectedPuppiesZ, res.GroundTruthFaces)
	tbl.AddRow("P3 public part", res.DetectedP3, res.GroundTruthFaces)
	return res, tbl, nil
}

func rectIoU(r core.ROI, a dataset.Annotation) float64 {
	b := core.ROI{X: a.X, Y: a.Y, W: a.W, H: a.H}
	inter, ok := r.Intersect(b)
	if !ok {
		return 0
	}
	ia := inter.Area()
	return float64(ia) / float64(r.Area()+b.Area()-ia)
}

// BruteForceTable renders the §VI-A accounting.
func BruteForceTable() ([]attack.BruteForceReport, *stats.Table, error) {
	reports, err := attack.BruteForceAll(0)
	if err != nil {
		return nil, nil, err
	}
	tbl := &stats.Table{
		Title:   "§VI-A: brute force search space",
		Columns: []string{"level", "mR", "K", "DC bits", "AC bits", "total", "paper claims", ">=256 (NIST)"},
	}
	for _, r := range reports {
		tbl.AddRow(string(r.Level), r.MR, r.K, r.DCBits, r.ACBits, r.TotalBits, r.PaperClaimBits, fmt.Sprintf("%v", r.MeetsNIST))
	}
	return reports, tbl, nil
}
