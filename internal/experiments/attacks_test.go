package experiments

import "testing"

// Smaller corpora: the attack experiments run SIFT pyramids and PCA, the
// heaviest code in the repository.
var attackCfg = Config{Seed: 9, PascalN: 4, CaltechN: 4, InriaN: 1}

func TestFig20Shape(t *testing.T) {
	res, _, err := Fig20(attackCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanOriginalFeatures < 20 {
		t.Fatalf("only %.0f SIFT features per original; detector too weak", res.MeanOriginalFeatures)
	}
	// Paper: matches collapse (far below the original feature count), and
	// PuPPIeS protects at least as well as P3.
	if res.MeanMatchesPuppies > res.MeanOriginalFeatures*0.05 {
		t.Errorf("PuPPIeS retains %.1f/%.0f SIFT matches (>5%%)",
			res.MeanMatchesPuppies, res.MeanOriginalFeatures)
	}
	if res.MeanMatchesPuppies > res.MeanMatchesP3 {
		t.Errorf("PuPPIeS (%.1f matches) leaks more than P3 (%.1f)",
			res.MeanMatchesPuppies, res.MeanMatchesP3)
	}
	if res.ZeroMatchFractionPuppies < res.ZeroMatchFractionP3 {
		t.Errorf("fewer zero-match images for PuPPIeS (%.2f) than P3 (%.2f)",
			res.ZeroMatchFractionPuppies, res.ZeroMatchFractionP3)
	}
}

func TestFig21Shape(t *testing.T) {
	res, _, err := Fig21(attackCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OverlapCDFPuppies) == 0 || len(res.OverlapCDFP3) == 0 {
		t.Fatal("missing CDFs")
	}
	// Most original edge structure must be destroyed on every image: the
	// worst image may retain at most half its edges, and PuPPIeS must be in
	// P3's ballpark (paper: "similar performance").
	worstPup := res.OverlapCDFPuppies[len(res.OverlapCDFPuppies)-1]
	if worstPup.P != 1 {
		t.Errorf("CDF does not reach 1: %+v", worstPup)
	}
	if worstPup.X > 0.5 {
		t.Errorf("an image retained %.0f%% of its edges after PuPPIeS-Z", worstPup.X*100)
	}
	worstP3 := res.OverlapCDFP3[len(res.OverlapCDFP3)-1]
	if worstPup.X > 2*worstP3.X+0.1 {
		t.Errorf("PuPPIeS edge leak (%.2f) far above P3 (%.2f)", worstPup.X, worstP3.X)
	}
}

func TestFig22Shape(t *testing.T) {
	res, _, err := Fig22(attackCfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Ranks)
	if n < 10 {
		t.Fatalf("only %d ranks", n)
	}
	identities := float64(n) // maxRank == identity count at test sizes
	randomAt10 := 10 / identities

	// Clean probes recognize at rank 1 (sanity of the attack model).
	if res.RatioClean[0] < 0.5 {
		t.Errorf("clean rank-1 recognition %.2f; model too weak", res.RatioClean[0])
	}
	// PuPPIeS probes behave like random guessing: near the chance floor at
	// rank 10 and near zero at rank 1 (paper: <=5% at rank 50 of a large
	// gallery).
	if res.RatioPuppies[0] > 0.15 {
		t.Errorf("PuPPIeS rank-1 recognition %.2f; should be chance-level", res.RatioPuppies[0])
	}
	if res.RatioPuppies[9] > 2*randomAt10 {
		t.Errorf("PuPPIeS rank-10 recognition %.2f vs chance %.2f", res.RatioPuppies[9], randomAt10)
	}
	// P3 leaks at least as much as PuPPIeS (paper: far more).
	if res.RatioPuppies[9] > res.RatioP3[9]+0.05 {
		t.Errorf("PuPPIeS (%.2f) leaks more than P3 (%.2f) at rank 10",
			res.RatioPuppies[9], res.RatioP3[9])
	}
	// Monotone non-decreasing curves.
	for i := 1; i < n; i++ {
		if res.RatioPuppies[i] < res.RatioPuppies[i-1] || res.RatioP3[i] < res.RatioP3[i-1] {
			t.Fatal("cumulative curve decreasing")
		}
	}
}

func TestFaceDetectionShape(t *testing.T) {
	res, _, err := FaceDetection(attackCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GroundTruthFaces == 0 {
		t.Fatal("no ground-truth faces")
	}
	// The detector must work on originals (paper detects 596 in Caltech)...
	if res.DetectedOriginal < res.GroundTruthFaces/2 {
		t.Errorf("only %d/%d faces detected on originals", res.DetectedOriginal, res.GroundTruthFaces)
	}
	// ...and collapse on perturbed images (paper: <9%).
	for name, got := range map[string]int{
		"PuPPIeS-C": res.DetectedPuppiesC,
		"PuPPIeS-Z": res.DetectedPuppiesZ,
	} {
		if got*2 > res.DetectedOriginal {
			t.Errorf("%s: %d faces still detected (originals: %d)", name, got, res.DetectedOriginal)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	cfg := Config{Seed: 9, PascalN: 14}
	res, _, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 2: partial perturbation keeps retrieval results "highly
	// overlapped"; whole-image perturbation must do visibly worse.
	if res.PartialOverlap10.Mean < 6 {
		t.Errorf("partial-perturbation overlap %.1f/10; paper shows high overlap", res.PartialOverlap10.Mean)
	}
	if res.PartialOverlap10.Mean <= res.FullOverlap10.Mean {
		t.Errorf("partial (%.1f) not above full perturbation (%.1f)",
			res.PartialOverlap10.Mean, res.FullOverlap10.Mean)
	}
	if res.PartialSelfRank1 < res.N/2 {
		t.Errorf("only %d/%d partially protected queries still retrieve their original first",
			res.PartialSelfRank1, res.N)
	}
}
