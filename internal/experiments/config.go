// Package experiments reproduces every table and figure of the paper's
// evaluation (§V–§VI). Each function returns both structured results and a
// formatted table whose rows mirror what the paper reports; DESIGN.md §3
// maps experiment IDs to functions, and EXPERIMENTS.md records
// paper-vs-measured outcomes.
package experiments

import (
	"fmt"

	"puppies/internal/dataset"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
)

// Config sizes the experiment corpora. Zero values select laptop-scale
// defaults (the profile sample counts); Full selects paper-scale counts.
type Config struct {
	// Seed makes every run reproducible.
	Seed int64
	// PascalN, InriaN, FeretN, CaltechN override per-corpus image counts.
	PascalN, InriaN, FeretN, CaltechN int
	// Quality is the JPEG encode quality for corpus images (0 = 75).
	Quality int
	// Full restores the paper-scale corpus sizes (hours of compute).
	Full bool
}

func (c Config) count(p dataset.Profile, override int) int {
	if override > 0 {
		return override
	}
	if c.Full {
		return p.FullCount
	}
	return p.SampleCount
}

func (c Config) quality() int {
	if c.Quality == 0 {
		// Photos shared on OSNs are typically stored near quality 90; the
		// higher base entropy also matches the paper's per-image bitrates
		// more closely than the libjpeg default of 75.
		return 90
	}
	return c.Quality
}

// corpus materializes n coefficient images from a profile.
type corpusItem struct {
	item *dataset.Item
	img  *jpegc.Image
}

func (c Config) corpus(p dataset.Profile, override int) ([]corpusItem, error) {
	n := c.count(p, override)
	gen, err := dataset.NewGenerator(p, c.Seed)
	if err != nil {
		return nil, err
	}
	out := make([]corpusItem, 0, n)
	for i := 0; i < n; i++ {
		item := gen.Item(i)
		img, err := jpegc.FromPlanar(item.Image, jpegc.Options{Quality: c.quality()})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s item %d: %w", p.Name, i, err)
		}
		out = append(out, corpusItem{item: item, img: img})
	}
	return out, nil
}

// wholeImageROI returns the largest block-aligned ROI of an image.
func wholeImageROI(img *jpegc.Image) (x, y, w, h int) {
	return 0, 0, (img.W / 8) * 8, (img.H / 8) * 8
}

// pixOf decodes an image to pixels, 8-bit quantized (what a viewer sees).
func pixOf(img *jpegc.Image) (*imgplane.Image, error) {
	pix, err := img.ToPlanar()
	if err != nil {
		return nil, err
	}
	return pix.Quantize8(), nil
}
