package experiments

import (
	"puppies/internal/core"
	"puppies/internal/dataset"
	"puppies/internal/keys"
	"puppies/internal/retrieval"
	"puppies/internal/stats"
)

// Fig2Result quantifies the paper's Fig. 2 usability argument with a local
// retrieval engine: top-10 overlap between querying with the original and
// querying with a protected version.
type Fig2Result struct {
	// PartialOverlap10 summarizes top-10 overlap when only a centered 30%
	// ROI is perturbed (paper: "highly overlapped").
	PartialOverlap10 stats.Summary
	// FullOverlap10 is the same with the whole image perturbed (the
	// usability an owner gives up by over-protecting).
	FullOverlap10 stats.Summary
	// PartialSelfRank counts queries whose protected version still ranks
	// its own original first.
	PartialSelfRank1 int
	N                int
}

// Fig2 reproduces Fig. 2: index the PASCAL-like corpus, query with
// original, partially perturbed, and fully perturbed versions, and compare
// top-10 result lists.
func Fig2(cfg Config) (*Fig2Result, *stats.Table, error) {
	cfg = attackQuality(cfg)
	corpus, err := cfg.corpus(dataset.PASCAL, cfg.PascalN)
	if err != nil {
		return nil, nil, err
	}
	ix := retrieval.NewIndex()
	for _, ci := range corpus {
		pix, err := pixOf(ci.img)
		if err != nil {
			return nil, nil, err
		}
		if err := ix.Add(ci.item.Name, pix); err != nil {
			return nil, nil, err
		}
	}

	const topK = 10
	nQueries := len(corpus)
	if nQueries > 12 {
		nQueries = 12
	}
	res := &Fig2Result{N: nQueries}
	var partialOv, fullOv []float64
	for i := 0; i < nQueries; i++ {
		ci := corpus[i]
		origPix, err := pixOf(ci.img)
		if err != nil {
			return nil, nil, err
		}
		origTop, err := ix.Query(origPix, topK)
		if err != nil {
			return nil, nil, err
		}

		// Partial: centered 30% ROI perturbed (the Fig. 1 scenario:
		// sensitive people in front of a landmark background).
		roi, err := centeredROI(ci.img, 30)
		if err != nil {
			return nil, nil, err
		}
		sch, err := core.NewScheme(core.Params{Variant: core.VariantZ, MR: 32, K: 8})
		if err != nil {
			return nil, nil, err
		}
		partial := ci.img.Clone()
		pair := keys.NewPairDeterministic(int64(12000 + i))
		if _, _, err := sch.EncryptImage(partial, []core.RegionAssignment{{ROI: roi, Pair: pair}}); err != nil {
			return nil, nil, err
		}
		partialPix, err := pixOf(partial)
		if err != nil {
			return nil, nil, err
		}
		partialTop, err := ix.Query(partialPix, topK)
		if err != nil {
			return nil, nil, err
		}
		partialOv = append(partialOv, float64(retrieval.Overlap(origTop, partialTop)))
		if partialTop[0].ID == ci.item.Name {
			res.PartialSelfRank1++
		}

		// Full: whole image perturbed.
		fullPix, err := perturbedPixels(ci.img, core.VariantZ, int64(13000+i))
		if err != nil {
			return nil, nil, err
		}
		fullTop, err := ix.Query(fullPix, topK)
		if err != nil {
			return nil, nil, err
		}
		fullOv = append(fullOv, float64(retrieval.Overlap(origTop, fullTop)))
	}
	if res.PartialOverlap10, err = stats.Summarize(partialOv); err != nil {
		return nil, nil, err
	}
	if res.FullOverlap10, err = stats.Summarize(fullOv); err != nil {
		return nil, nil, err
	}

	tbl := &stats.Table{
		Title:   "Fig 2: top-10 retrieval overlap, protected query vs original query",
		Columns: []string{"query version", "mean overlap /10", "min", "self still rank-1"},
	}
	tbl.AddRow("partial perturbation (30% ROI)", res.PartialOverlap10.Mean, res.PartialOverlap10.Min, res.PartialSelfRank1)
	tbl.AddRow("whole-image perturbation", res.FullOverlap10.Mean, res.FullOverlap10.Min, "-")
	return res, tbl, nil
}
