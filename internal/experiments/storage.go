package experiments

import (
	"fmt"
	"math"

	"puppies/internal/core"
	"puppies/internal/dataset"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/p3"
	"puppies/internal/stats"
)

// perturbWhole encrypts the whole (block-aligned) image with the given
// scheme, returning the perturbed image and its public data.
func perturbWhole(base *jpegc.Image, params core.Params, seed int64) (*jpegc.Image, *core.PublicData, *keys.Pair, error) {
	sch, err := core.NewScheme(params)
	if err != nil {
		return nil, nil, nil, err
	}
	pair := keys.NewPairDeterministic(seed)
	img := base.Clone()
	x, y, w, h := wholeImageROI(base)
	pd, _, err := sch.EncryptImage(img, []core.RegionAssignment{
		{ROI: core.ROI{X: x, Y: y, W: w, H: h}, Pair: pair},
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return img, pd, pair, nil
}

// encodeOptionsFor mirrors Scheme.EncodeOptions without constructing one.
func encodeOptionsFor(v core.Variant) jpegc.EncodeOptions {
	if v == core.VariantC || v == core.VariantZ {
		return jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}
	}
	return jpegc.EncodeOptions{Tables: jpegc.TablesDefault}
}

// Table2Row is one scheme's normalized whole-image perturbed size.
type Table2Row struct {
	Scheme  string
	Summary stats.Summary
}

// Table2 reproduces Table II: normalized perturbed-image size on the
// PASCAL-like corpus when the whole image is perturbed (worst case), for
// PuPPIeS-B (default Huffman tables), -C and -Z (optimized tables), at the
// medium privacy level.
func Table2(cfg Config) ([]Table2Row, *stats.Table, error) {
	corpus, err := cfg.corpus(dataset.PASCAL, cfg.PascalN)
	if err != nil {
		return nil, nil, err
	}
	variants := []core.Variant{core.VariantB, core.VariantC, core.VariantZ}
	ratios := map[core.Variant][]float64{}
	for i, ci := range corpus {
		origSize, err := ci.img.EncodedSize(jpegc.EncodeOptions{})
		if err != nil {
			return nil, nil, err
		}
		for _, v := range variants {
			params := core.Params{Variant: v, MR: 32, K: 8}
			perturbed, _, _, err := perturbWhole(ci.img, params, int64(1000+i))
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: %s on item %d: %w", v, i, err)
			}
			size, err := perturbed.EncodedSize(encodeOptionsFor(v))
			if err != nil {
				return nil, nil, err
			}
			ratios[v] = append(ratios[v], float64(size)/float64(origSize))
		}
	}
	var rows []Table2Row
	tbl := &stats.Table{
		Title:   "Table II: normalized perturbed image size, PASCAL-like (whole image, medium privacy)",
		Columns: []string{"scheme", "mean", "median", "std", "min", "max"},
	}
	names := map[core.Variant]string{
		core.VariantB: "PuPPIeS-Base",
		core.VariantC: "PuPPIeS-Compression",
		core.VariantZ: "PuPPIeS-Zero",
	}
	for _, v := range variants {
		s, err := stats.Summarize(ratios[v])
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Table2Row{Scheme: names[v], Summary: s})
		tbl.AddRow(names[v], s.Mean, s.Median, s.Std, s.Min, s.Max)
	}
	return rows, tbl, nil
}

// Table4Row maps a privacy level to its parameters and secure bits.
type Table4Row struct {
	Level          core.PrivacyLevel
	MR, K          int
	DCBits, ACBits int
	TotalBits      int
}

// Table4 reproduces Table IV plus the §VI-A secure-bit accounting.
func Table4() ([]Table4Row, *stats.Table, error) {
	var rows []Table4Row
	tbl := &stats.Table{
		Title:   "Table IV: privacy level -> parameters (+ computed secure bits)",
		Columns: []string{"level", "mR", "K", "DC bits", "AC bits", "total bits"},
	}
	for _, level := range []core.PrivacyLevel{core.LevelLow, core.LevelMedium, core.LevelHigh} {
		mR, k, err := core.LevelParams(level)
		if err != nil {
			return nil, nil, err
		}
		dc, ac, err := core.SecureBits(mR, k)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Table4Row{Level: level, MR: mR, K: k, DCBits: dc, ACBits: ac, TotalBits: dc + ac})
		tbl.AddRow(string(level), mR, k, dc, ac, dc+ac)
	}
	return rows, tbl, nil
}

// Fig11Point is one point of the private-part size comparison.
type Fig11Point struct {
	Matrices     int
	PuppiesBytes int
}

// Fig11Result compares PuPPIeS private-part size (linear in the number of
// matrix pairs) with P3's private images (constant per dataset, large).
type Fig11Result struct {
	Points          []Fig11Point
	P3PascalMean    float64
	P3InriaMean     float64
	CrossoverPascal int // matrix pairs at which PuPPIeS exceeds P3 (PASCAL)
}

// Fig11 reproduces Fig. 11.
func Fig11(cfg Config) (*Fig11Result, *stats.Table, error) {
	res := &Fig11Result{}
	// The paper's x-axis counts single matrices (two per pair). The paper
	// plots 2..32 with a crossover against P3-PASCAL at 26; our synthetic
	// corpus yields a somewhat larger P3 private part (4:4:4 chroma, no
	// subsampling), so the axis extends until the crossover is visible.
	for n := 2; n <= 120; n += 2 {
		res.Points = append(res.Points, Fig11Point{
			Matrices:     n,
			PuppiesBytes: keys.PrivateSizeBytesMatrices(n),
		})
	}
	p3Mean := func(p dataset.Profile, override int) (float64, error) {
		corpus, err := cfg.corpus(p, override)
		if err != nil {
			return 0, err
		}
		var sizes []float64
		for _, ci := range corpus {
			split, err := p3.SplitImage(ci.img, p3.DefaultThreshold)
			if err != nil {
				return 0, err
			}
			_, priv, err := split.Sizes()
			if err != nil {
				return 0, err
			}
			sizes = append(sizes, float64(priv))
		}
		s, err := stats.Summarize(sizes)
		if err != nil {
			return 0, err
		}
		return s.Mean, nil
	}
	var err error
	if res.P3PascalMean, err = p3Mean(dataset.PASCAL, cfg.PascalN); err != nil {
		return nil, nil, err
	}
	if res.P3InriaMean, err = p3Mean(dataset.INRIA, cfg.InriaN); err != nil {
		return nil, nil, err
	}
	res.CrossoverPascal = -1
	for _, pt := range res.Points {
		if float64(pt.PuppiesBytes) > res.P3PascalMean {
			res.CrossoverPascal = pt.Matrices
			break
		}
	}

	tbl := &stats.Table{
		Title:   "Fig 11: private part size (bytes)",
		Columns: []string{"matrices", "PuPPIeS", "P3-PASCAL (mean)", "P3-INRIA (mean)"},
	}
	for _, pt := range res.Points {
		tbl.AddRow(pt.Matrices, pt.PuppiesBytes, res.P3PascalMean, res.P3InriaMean)
	}
	return res, tbl, nil
}

// Fig17Row is one (corpus, level, scheme) size measurement.
type Fig17Row struct {
	Corpus  string
	Level   core.PrivacyLevel
	Scheme  string
	Summary stats.Summary
}

// Fig17 reproduces Fig. 17: normalized whole-image perturbed size vs
// privacy level, for PuPPIeS-C and -Z on the PASCAL-like and INRIA-like
// corpora.
func Fig17(cfg Config) ([]Fig17Row, *stats.Table, error) {
	var rows []Fig17Row
	tbl := &stats.Table{
		Title:   "Fig 17: normalized perturbed size vs privacy level",
		Columns: []string{"corpus", "level", "scheme", "mean", "std"},
	}
	corpora := []struct {
		profile  dataset.Profile
		override int
	}{
		{dataset.PASCAL, cfg.PascalN},
		{dataset.INRIA, cfg.InriaN},
	}
	for _, c := range corpora {
		corpus, err := cfg.corpus(c.profile, c.override)
		if err != nil {
			return nil, nil, err
		}
		for _, level := range []core.PrivacyLevel{core.LevelLow, core.LevelMedium, core.LevelHigh} {
			mR, k, err := core.LevelParams(level)
			if err != nil {
				return nil, nil, err
			}
			for _, v := range []core.Variant{core.VariantC, core.VariantZ} {
				var ratios []float64
				for i, ci := range corpus {
					origSize, err := ci.img.EncodedSize(jpegc.EncodeOptions{})
					if err != nil {
						return nil, nil, err
					}
					perturbed, _, _, err := perturbWhole(ci.img, core.Params{Variant: v, MR: mR, K: k}, int64(2000+i))
					if err != nil {
						return nil, nil, err
					}
					size, err := perturbed.EncodedSize(encodeOptionsFor(v))
					if err != nil {
						return nil, nil, err
					}
					ratios = append(ratios, float64(size)/float64(origSize))
				}
				s, err := stats.Summarize(ratios)
				if err != nil {
					return nil, nil, err
				}
				name := "PuPPIeS-Compression"
				if v == core.VariantZ {
					name = "PuPPIeS-Zero"
				}
				rows = append(rows, Fig17Row{Corpus: c.profile.Name, Level: level, Scheme: name, Summary: s})
				tbl.AddRow(c.profile.Name, string(level), name, s.Mean, s.Std)
			}
		}
	}
	return rows, tbl, nil
}

// Fig18Row is one (scheme, ROI-percentage) public-part size measurement.
type Fig18Row struct {
	Scheme  string
	ROIPct  int
	Summary stats.Summary
}

// Fig18 reproduces Fig. 18: normalized public-part size (perturbed image +
// public parameters) as the ROI grows from 20% to 100% of the image, for
// PuPPIeS-C, -Z, -Z without ZInd, and P3 (whose public part is constant).
func Fig18(cfg Config) ([]Fig18Row, *stats.Table, error) {
	corpus, err := cfg.corpus(dataset.PASCAL, cfg.PascalN)
	if err != nil {
		return nil, nil, err
	}
	var rows []Fig18Row
	tbl := &stats.Table{
		Title:   "Fig 18: normalized public part size vs ROI area%",
		Columns: []string{"scheme", "roi%", "mean", "std"},
	}

	// P3 is whole-image and constant in ROI size.
	var p3Ratios []float64
	for _, ci := range corpus {
		origSize, err := ci.img.EncodedSize(jpegc.EncodeOptions{})
		if err != nil {
			return nil, nil, err
		}
		split, err := p3.SplitImage(ci.img, p3.DefaultThreshold)
		if err != nil {
			return nil, nil, err
		}
		pub, _, err := split.Sizes()
		if err != nil {
			return nil, nil, err
		}
		p3Ratios = append(p3Ratios, float64(pub)/float64(origSize))
	}
	p3Summary, err := stats.Summarize(p3Ratios)
	if err != nil {
		return nil, nil, err
	}

	for _, pct := range []int{20, 40, 60, 80, 100} {
		ratiosC := []float64{}
		ratiosZ := []float64{}
		ratiosZNoIdx := []float64{}
		for i, ci := range corpus {
			origSize, err := ci.img.EncodedSize(jpegc.EncodeOptions{})
			if err != nil {
				return nil, nil, err
			}
			roi, err := centeredROI(ci.img, pct)
			if err != nil {
				return nil, nil, err
			}
			for _, v := range []core.Variant{core.VariantC, core.VariantZ} {
				sch, err := core.NewScheme(core.Params{Variant: v, MR: 32, K: 8})
				if err != nil {
					return nil, nil, err
				}
				img := ci.img.Clone()
				pair := keys.NewPairDeterministic(int64(3000 + i))
				pd, _, err := sch.EncryptImage(img, []core.RegionAssignment{{ROI: roi, Pair: pair}})
				if err != nil {
					return nil, nil, err
				}
				size, err := img.EncodedSize(encodeOptionsFor(v))
				if err != nil {
					return nil, nil, err
				}
				withParams := float64(size+int64(pd.ParamsSizeBytes())) / float64(origSize)
				switch v {
				case core.VariantC:
					ratiosC = append(ratiosC, withParams)
				case core.VariantZ:
					ratiosZ = append(ratiosZ, withParams)
					ratiosZNoIdx = append(ratiosZNoIdx, float64(size)/float64(origSize))
				}
			}
		}
		for _, e := range []struct {
			name    string
			samples []float64
		}{
			{"PuPPIeS-Compression", ratiosC},
			{"PuPPIeS-Zero", ratiosZ},
			{"PuPPIeS-Zero--no newZeroIndex", ratiosZNoIdx},
		} {
			s, err := stats.Summarize(e.samples)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, Fig18Row{Scheme: e.name, ROIPct: pct, Summary: s})
			tbl.AddRow(e.name, pct, s.Mean, s.Std)
		}
		rows = append(rows, Fig18Row{Scheme: "P3", ROIPct: pct, Summary: p3Summary})
		tbl.AddRow("P3", pct, p3Summary.Mean, p3Summary.Std)
	}
	return rows, tbl, nil
}

// centeredROI returns a block-aligned centered rectangle covering
// approximately pct% of the image area.
func centeredROI(img *jpegc.Image, pct int) (core.ROI, error) {
	if pct <= 0 || pct > 100 {
		return core.ROI{}, fmt.Errorf("experiments: roi pct %d out of range", pct)
	}
	_, _, fullW, fullH := wholeImageROI(img)
	if pct == 100 {
		return core.ROI{X: 0, Y: 0, W: fullW, H: fullH}, nil
	}
	// Scale both dimensions by sqrt(pct/100).
	frac := math.Sqrt(float64(pct) / 100)
	w := int(float64(fullW) * frac)
	h := int(float64(fullH) * frac)
	w = (w / 8) * 8
	h = (h / 8) * 8
	if w < 8 {
		w = 8
	}
	if h < 8 {
		h = 8
	}
	x := ((fullW - w) / 16) * 8
	y := ((fullH - h) / 16) * 8
	return core.ROI{X: x, Y: y, W: w, H: h}, nil
}

// Fig19Result compares one image's public/private decomposition across
// schemes (the Fig. 19 example, quantified).
type Fig19Result struct {
	OriginalBytes       int64
	PuppiesPublicBytes  int64
	PuppiesParamsBytes  int
	PuppiesPrivateBytes int
	P3PublicBytes       int64
	P3PrivateBytes      int64
}

// Fig19 reproduces Fig. 19's decomposition on one PASCAL-like image with a
// centered 40% ROI for PuPPIeS-Z.
func Fig19(cfg Config) (*Fig19Result, *stats.Table, error) {
	gen, err := dataset.NewGenerator(dataset.PASCAL, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	item := gen.Item(1)
	base, err := jpegc.FromPlanar(item.Image, jpegc.Options{Quality: cfg.quality()})
	if err != nil {
		return nil, nil, err
	}
	res := &Fig19Result{}
	if res.OriginalBytes, err = base.EncodedSize(jpegc.EncodeOptions{}); err != nil {
		return nil, nil, err
	}

	roi, err := centeredROI(base, 40)
	if err != nil {
		return nil, nil, err
	}
	sch, err := core.NewScheme(core.Params{Variant: core.VariantZ, MR: 32, K: 8})
	if err != nil {
		return nil, nil, err
	}
	img := base.Clone()
	pair := keys.NewPairDeterministic(11)
	pd, _, err := sch.EncryptImage(img, []core.RegionAssignment{{ROI: roi, Pair: pair}})
	if err != nil {
		return nil, nil, err
	}
	if res.PuppiesPublicBytes, err = img.EncodedSize(encodeOptionsFor(core.VariantZ)); err != nil {
		return nil, nil, err
	}
	res.PuppiesParamsBytes = pd.ParamsSizeBytes()
	res.PuppiesPrivateBytes = keys.PrivateSizeBytes(1)

	split, err := p3.SplitImage(base, p3.DefaultThreshold)
	if err != nil {
		return nil, nil, err
	}
	if res.P3PublicBytes, res.P3PrivateBytes, err = split.Sizes(); err != nil {
		return nil, nil, err
	}

	tbl := &stats.Table{
		Title:   "Fig 19: public/private decomposition of one image (bytes)",
		Columns: []string{"quantity", "PuPPIeS-Z", "P3"},
	}
	tbl.AddRow("original image", res.OriginalBytes, res.OriginalBytes)
	tbl.AddRow("public part", res.PuppiesPublicBytes, res.P3PublicBytes)
	tbl.AddRow("public parameters", res.PuppiesParamsBytes, 0)
	tbl.AddRow("private part", res.PuppiesPrivateBytes, res.P3PrivateBytes)
	return res, tbl, nil
}
