package experiments

import (
	"fmt"
	"math"

	"puppies/internal/core"
	"puppies/internal/dataset"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/p3"
	"puppies/internal/stats"
	"puppies/internal/transform"
)

// Table1Row is one scheme's capability row (paper Table I).
type Table1Row struct {
	Method         string
	PartialSharing bool
	Scaling        bool
	Cropping       bool
	Compression    bool
	Rotation       bool
	// Verified is true when the row was established by round-trip
	// measurement in this codebase (PuPPIeS and P3); false rows restate the
	// paper's literature survey.
	Verified bool
}

// exactPSNR is the threshold above which a recovery counts as supporting
// the transformation (55 dB ~ exact up to float32 precision).
const exactPSNR = 55

// Table1 reproduces the capability matrix. PuPPIeS and P3 rows are
// measured by actual transform-then-recover round trips; the remaining
// literature rows are restated from the paper for context.
func Table1(cfg Config) ([]Table1Row, *stats.Table, error) {
	gen, err := dataset.NewGenerator(dataset.PASCAL, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	// A capability counts as supported only if recovery is exact on every
	// probe image (a single smooth image can mask clamping losses).
	const probes = 3
	pup := Table1Row{Method: "PuPPIeS (ours)", Verified: true,
		PartialSharing: true, Scaling: true, Cropping: true, Compression: true, Rotation: true}
	p3row := Table1Row{Method: "P3 [13]", Verified: true,
		PartialSharing: false, Scaling: true, Cropping: true, Compression: true, Rotation: true}
	for i := 0; i < probes; i++ {
		item := gen.Item(i)
		base, err := jpegc.FromPlanar(item.Image, jpegc.Options{Quality: cfg.quality()})
		if err != nil {
			return nil, nil, err
		}
		p, err := measurePuppiesCapabilities(base)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: puppies capabilities: %w", err)
		}
		pup.PartialSharing = pup.PartialSharing && p.PartialSharing
		pup.Scaling = pup.Scaling && p.Scaling
		pup.Cropping = pup.Cropping && p.Cropping
		pup.Compression = pup.Compression && p.Compression
		pup.Rotation = pup.Rotation && p.Rotation

		q, err := measureP3Capabilities(base)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: p3 capabilities: %w", err)
		}
		p3row.Scaling = p3row.Scaling && q.Scaling
		p3row.Cropping = p3row.Cropping && q.Cropping
		p3row.Compression = p3row.Compression && q.Compression
		p3row.Rotation = p3row.Rotation && q.Rotation
	}

	rows := []Table1Row{
		{Method: "Cryptagram [14]", PartialSharing: true},
		{Method: "MHT [8]", Compression: true},
		{Method: "Chang et al. [9]", Compression: true, Rotation: true},
		{Method: "Aharon et al. [10]", Compression: true, Rotation: true},
		{Method: "Unterweger et al. [11]", Compression: true, Rotation: true},
		{Method: "Dufaux et al. [12]", Compression: true, Rotation: true},
		{Method: "Steganography [15]", PartialSharing: true, Rotation: true},
		p3row,
		pup,
	}

	tbl := &stats.Table{
		Title:   "Table I: capability comparison (✓ = supported)",
		Columns: []string{"method", "partial", "scaling", "cropping", "compression", "rotation", "verified"},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, r := range rows {
		tbl.AddRow(r.Method, mark(r.PartialSharing), mark(r.Scaling), mark(r.Cropping),
			mark(r.Compression), mark(r.Rotation), mark(r.Verified))
	}
	return rows, tbl, nil
}

func coeffImagesEqual(a, b *jpegc.Image) bool {
	if a.W != b.W || a.H != b.H || len(a.Comps) != len(b.Comps) {
		return false
	}
	for ci := range a.Comps {
		for bi := range a.Comps[ci].Blocks {
			if a.Comps[ci].Blocks[bi] != b.Comps[ci].Blocks[bi] {
				return false
			}
		}
	}
	return true
}

func measurePuppiesCapabilities(base *jpegc.Image) (Table1Row, error) {
	row := Table1Row{Method: "PuPPIeS (ours)", Verified: true}
	pair := keys.NewPairDeterministic(101)
	pairs := map[string]*keys.Pair{pair.ID: pair}
	x, y, w, h := wholeImageROI(base)

	// Partial sharing: protect a strict sub-region; outside must be
	// untouched, inside recoverable.
	sch, err := core.NewScheme(core.Params{
		Variant: core.VariantC, MR: 32, K: 8, Wrap: core.WrapRecorded,
	})
	if err != nil {
		return row, err
	}
	sub := base.Clone()
	subROI := core.ROI{X: x + 8, Y: y + 8, W: 32, H: 32}
	pdSub, _, err := sch.EncryptImage(sub, []core.RegionAssignment{{ROI: subROI, Pair: pair}})
	if err != nil {
		return row, err
	}
	if _, err := core.DecryptImage(sub, pdSub, pairs); err != nil {
		return row, err
	}
	row.PartialSharing = coeffImagesEqual(sub, base)

	// Whole-image protection shared by the transform checks.
	protected := base.Clone()
	pd, _, err := sch.EncryptImage(protected, []core.RegionAssignment{
		{ROI: core.ROI{X: x, Y: y, W: w, H: h}, Pair: pair},
	})
	if err != nil {
		return row, err
	}
	basePix, err := base.ToPlanar()
	if err != nil {
		return row, err
	}
	protPix, err := protected.ToPlanar()
	if err != nil {
		return row, err
	}

	pixelCheck := func(spec transform.Spec) (bool, error) {
		transformed, err := transform.ApplyPlanar(protPix, spec)
		if err != nil {
			return false, err
		}
		pdT := *pd
		pdT.Transform = spec
		got, err := core.ReconstructPixels(transformed, &pdT, pairs)
		if err != nil {
			return false, err
		}
		want, err := transform.ApplyPlanar(basePix, spec)
		if err != nil {
			return false, err
		}
		psnr, err := imgplane.ImagePSNR(got, want)
		if err != nil {
			return false, err
		}
		return psnr >= exactPSNR, nil
	}

	if row.Scaling, err = pixelCheck(transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}); err != nil {
		return row, err
	}
	// Cropping: deliberately unaligned and covering most of the image so
	// the window includes high-detail content.
	if row.Cropping, err = pixelCheck(transform.Spec{
		Op: transform.OpCrop, X: 12, Y: 4, W: base.W - 28, H: base.H - 12,
	}); err != nil {
		return row, err
	}

	// Compression (§IV-C.2).
	got, err := core.ReconstructCompressed(protected, pd, pairs, 40)
	if err != nil {
		return row, err
	}
	want, err := transform.Recompress(base, 40)
	if err != nil {
		return row, err
	}
	row.Compression = coeffImagesEqual(got, want)

	// Rotation (coefficient domain, exact).
	rot, err := transform.Rotate90(protected)
	if err != nil {
		return row, err
	}
	pdR := *pd
	pdR.Transform = transform.Spec{Op: transform.OpRotate90}
	gotR, err := core.ReconstructCoeff(rot, &pdR, pairs)
	if err != nil {
		return row, err
	}
	wantR, err := transform.Rotate90(base)
	if err != nil {
		return row, err
	}
	row.Rotation = coeffImagesEqual(gotR, wantR)
	return row, nil
}

func measureP3Capabilities(base *jpegc.Image) (Table1Row, error) {
	row := Table1Row{Method: "P3 [13]", Verified: true}
	split, err := p3.SplitImage(base, p3.DefaultThreshold)
	if err != nil {
		return row, err
	}
	// Partial sharing: P3 splits whole images only (structural property).
	row.PartialSharing = false

	basePix, err := base.ToPlanar()
	if err != nil {
		return row, err
	}
	pubPix, err := split.PublicPixels()
	if err != nil {
		return row, err
	}
	privPix, err := split.PrivatePixels()
	if err != nil {
		return row, err
	}

	// Pixel-path check: PSP transforms the public part, the client replays
	// the transform on the private part through the same standard clamped
	// pipeline, then combines (paper §V-D).
	pixelCheck := func(spec transform.Spec) (bool, error) {
		pubT, err := transform.ApplyPlanar(pubPix, spec)
		if err != nil {
			return false, err
		}
		privT, err := transform.ApplyPlanar(privPix, spec)
		if err != nil {
			return false, err
		}
		got, err := p3.CombinePixels(pubT.Clamp8(), privT.Clamp8())
		if err != nil {
			return false, err
		}
		want, err := transform.ApplyPlanar(basePix, spec)
		if err != nil {
			return false, err
		}
		psnr, err := imgplane.ImagePSNR(got, want.Clamp8())
		if err != nil {
			return false, err
		}
		return !math.IsInf(psnr, 1) && psnr >= exactPSNR, nil
	}
	if row.Scaling, err = pixelCheck(transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}); err != nil {
		return row, err
	}
	if row.Cropping, err = pixelCheck(transform.Spec{
		Op: transform.OpCrop, X: 12, Y: 4, W: base.W - 28, H: base.H - 12,
	}); err != nil {
		return row, err
	}

	// Compression: the client recovers exactly from the untransformed parts
	// and recompresses locally — supported.
	rec, err := p3.Recover(split)
	if err != nil {
		return row, err
	}
	gotC, err := transform.Recompress(rec, 40)
	if err != nil {
		return row, err
	}
	wantC, err := transform.Recompress(base, 40)
	if err != nil {
		return row, err
	}
	row.Compression = coeffImagesEqual(gotC, wantC)

	// Rotation: invertible in the coefficient domain, so the client can
	// un-rotate the PSP's copy losslessly, combine exactly, and re-rotate.
	pubRot, err := transform.Rotate180(split.Public)
	if err != nil {
		return row, err
	}
	pubBack, err := transform.Rotate180(pubRot)
	if err != nil {
		return row, err
	}
	recR, err := p3.Recover(&p3.Split{Public: pubBack, Private: split.Private, Threshold: split.Threshold})
	if err != nil {
		return row, err
	}
	gotR, err := transform.Rotate180(recR)
	if err != nil {
		return row, err
	}
	wantR, err := transform.Rotate180(base)
	if err != nil {
		return row, err
	}
	row.Rotation = coeffImagesEqual(gotR, wantR)
	return row, nil
}
