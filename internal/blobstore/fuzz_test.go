package blobstore

import (
	"bytes"
	"testing"
)

// FuzzEnvelope feeds arbitrary bytes to the envelope decoder. The contract
// under fuzzing: never panic, and never return a payload that differs from
// what a valid envelope of those exact bytes would carry — i.e. random
// corruption must surface as an error, not as silently wrong bytes. We
// check the second half by re-encoding any successfully decoded record and
// demanding it reproduce the input byte-for-byte (the v1 envelope is
// canonical: one record has exactly one encoding).
func FuzzEnvelope(f *testing.F) {
	good, err := encodeEnvelope(&Record{
		ID:     "fuzz-seed-0001",
		JPEG:   []byte{0xFF, 0xD8, 0xFF, 0xD9},
		Params: []byte(`{"v":1}`),
		Key:    "ik-fuzz",
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("PSPB"))
	f.Add(bytes.Repeat([]byte{0xAA}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeEnvelope(data)
		if err != nil {
			return
		}
		re, rerr := encodeEnvelope(rec)
		if rerr != nil {
			t.Fatalf("decoded record fails to re-encode: %v", rerr)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical decode: %d input bytes accepted but re-encode to %d different bytes", len(data), len(re))
		}
	})
}
