package blobstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
)

func sampleRecord() *Record {
	return &Record{
		ID:     "0123456789abcdef01234567",
		JPEG:   bytes.Repeat([]byte{0xFF, 0xD8, 0x42, 0x00}, 200),
		Params: []byte(`{"v":1,"w":64,"h":48}`),
		Key:    "ik-roundtrip",
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	rec := sampleRecord()
	env, err := encodeEnvelope(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != rec.ID || got.Key != rec.Key ||
		!bytes.Equal(got.JPEG, rec.JPEG) || !bytes.Equal(got.Params, rec.Params) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestEnvelopeRoundTripEmptyOptionalFields(t *testing.T) {
	rec := &Record{ID: "x", JPEG: []byte{1}}
	env, err := encodeEnvelope(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != "" || got.Params != nil || !bytes.Equal(got.JPEG, []byte{1}) {
		t.Fatalf("got %+v", got)
	}
}

// TestEnvelopeDetectsEveryByteCorruption flips every byte of a small
// envelope in turn; decode must either fail (ErrCorrupt /
// ErrUnsupportedVersion) or — never — return a record that differs from the
// original. This is the acceptance criterion "checksum catches every
// injected corruption" in exhaustive form.
func TestEnvelopeDetectsEveryByteCorruption(t *testing.T) {
	rec := &Record{ID: "abc123", JPEG: []byte("jpeg-payload-bytes"), Params: []byte(`{"p":2}`), Key: "k1"}
	env, err := encodeEnvelope(rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range env {
		for _, delta := range []byte{0x01, 0x80, 0xFF} {
			mut := append([]byte(nil), env...)
			mut[i] ^= delta
			got, derr := decodeEnvelope(mut)
			if derr != nil {
				if !errors.Is(derr, ErrCorrupt) && !errors.Is(derr, ErrUnsupportedVersion) {
					t.Fatalf("byte %d ^ %#x: untyped error %v", i, delta, derr)
				}
				continue
			}
			if got.ID != rec.ID || got.Key != rec.Key ||
				!bytes.Equal(got.JPEG, rec.JPEG) || !bytes.Equal(got.Params, rec.Params) {
				t.Fatalf("byte %d ^ %#x: corruption decoded as a different record", i, delta)
			}
		}
	}
}

func TestEnvelopeTruncationDetected(t *testing.T) {
	env, err := encodeEnvelope(sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, envHeaderLen - 1, envHeaderLen, len(env) / 2, len(env) - 1} {
		if _, derr := decodeEnvelope(env[:n]); !errors.Is(derr, ErrCorrupt) {
			t.Errorf("truncation to %d bytes: err = %v, want ErrCorrupt", n, derr)
		}
	}
	// Trailing garbage must also be rejected, not silently ignored.
	if _, derr := decodeEnvelope(append(append([]byte(nil), env...), 0x00)); !errors.Is(derr, ErrCorrupt) {
		t.Errorf("trailing byte: err = %v, want ErrCorrupt", derr)
	}
}

// TestEnvelopeFutureVersionTyped rebuilds a structurally valid envelope
// with a bumped version (header CRC recomputed, so only the version field
// differs) and demands the typed sentinel, not ErrCorrupt.
func TestEnvelopeFutureVersionTyped(t *testing.T) {
	env, err := encodeEnvelope(sampleRecord())
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint16(env[4:6], envVersion+1)
	binary.BigEndian.PutUint32(env[28:32], crc32Header(env))
	_, derr := decodeEnvelope(env)
	if !errors.Is(derr, ErrUnsupportedVersion) {
		t.Fatalf("future version: err = %v, want ErrUnsupportedVersion", derr)
	}
	if errors.Is(derr, ErrCorrupt) {
		t.Fatal("future version misclassified as corruption")
	}
}

func crc32Header(env []byte) uint32 {
	return crc32.Checksum(env[:28], castagnoli)
}

func TestEnvelopeRejectsOversizedFields(t *testing.T) {
	if _, err := encodeEnvelope(&Record{ID: strings.Repeat("a", maxIDLen+1), JPEG: []byte{1}}); err == nil {
		t.Error("oversized id accepted")
	}
	if _, err := encodeEnvelope(&Record{ID: "x", JPEG: []byte{1}, Key: strings.Repeat("k", maxKeyLen+1)}); err == nil {
		t.Error("oversized key accepted")
	}
	if _, err := encodeEnvelope(&Record{JPEG: []byte{1}}); err == nil {
		t.Error("empty id accepted")
	}
}
