package blobstore_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"puppies/internal/blobstore"
	"puppies/internal/faults"
)

func mustOpen(t *testing.T, dir string, opts blobstore.Options) (*blobstore.Store, *blobstore.RecoveryReport) {
	t.Helper()
	s, report, err := blobstore.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, report
}

func jpegBytes(i int) []byte {
	return bytes.Repeat([]byte{0xFF, 0xD8, byte(i), byte(i >> 8)}, 100+i)
}

func paramsBytes(i int) []byte {
	return []byte(fmt.Sprintf(`{"v":1,"n":%d}`, i))
}

func TestPutGetSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, report := mustOpen(t, dir, blobstore.Options{})
	if report.Loaded != 0 || len(report.Quarantined) != 0 {
		t.Fatalf("fresh dir report: %+v", report)
	}
	const n = 7
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("img-%04d", i)
		got, err := s.Put(id, jpegBytes(i), paramsBytes(i), fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if got != id {
			t.Fatalf("Put returned %q, want %q", got, id)
		}
	}
	s.Close()

	s2, report2 := mustOpen(t, dir, blobstore.Options{})
	if report2.Loaded != n {
		t.Fatalf("restart loaded %d records, want %d; report %+v", report2.Loaded, n, report2)
	}
	if len(report2.Quarantined) != 0 || len(report2.PendingUploads) != 0 {
		t.Fatalf("clean restart produced noise: %+v", report2)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("img-%04d", i)
		jpeg, params, ok, err := s2.Get(id)
		if err != nil || !ok {
			t.Fatalf("Get(%s) after restart: ok=%v err=%v", id, ok, err)
		}
		if !bytes.Equal(jpeg, jpegBytes(i)) || !bytes.Equal(params, paramsBytes(i)) {
			t.Fatalf("record %s not byte-identical after restart", id)
		}
		// The idempotency index must survive the restart too.
		if got, ok := s2.IDForKey(fmt.Sprintf("key-%d", i)); !ok || got != id {
			t.Fatalf("IDForKey(key-%d) = %q,%v after restart", i, got, ok)
		}
	}
}

func TestPutIdempotencyAndDuplicateID(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), blobstore.Options{})
	id1, err := s.Put("a1", jpegBytes(1), nil, "same-key")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Put("a2", jpegBytes(2), nil, "same-key")
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id1 {
		t.Fatalf("retry with same key stored a duplicate: %q vs %q", id2, id1)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if _, err := s.Put("a1", jpegBytes(3), nil, ""); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := s.Put("../evil", jpegBytes(4), nil, ""); err == nil {
		t.Fatal("path-traversal id accepted")
	}
}

func TestKeyIndexCapEvictsOldest(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), blobstore.Options{MaxKeys: 3})
	for i := 0; i < 5; i++ {
		if _, err := s.Put(fmt.Sprintf("b%d", i), jpegBytes(i), nil, fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.IDForKey("k0"); ok {
		t.Error("k0 should have been evicted")
	}
	if _, ok := s.IDForKey("k4"); !ok {
		t.Error("k4 should be present")
	}
	// Evicted key falls back to normal upload semantics: a new store.
	id, err := s.Put("b9", jpegBytes(9), nil, "k0")
	if err != nil || id != "b9" {
		t.Fatalf("evicted-key re-upload: %q, %v", id, err)
	}
}

// TestOnDiskCorruptionQuarantined flips one byte of a committed record and
// verifies the next open refuses to serve wrong bytes: the file is
// quarantined (not deleted) with a reason, and the good records still load.
func TestOnDiskCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, blobstore.Options{})
	if _, err := s.Put("good", jpegBytes(1), paramsBytes(1), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("bad", jpegBytes(2), paramsBytes(2), ""); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, "records", "bad.psp")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, report := mustOpen(t, dir, blobstore.Options{})
	if report.Loaded != 1 {
		t.Fatalf("loaded %d, want 1", report.Loaded)
	}
	if len(report.Quarantined) != 1 {
		t.Fatalf("quarantined %d files, want 1: %+v", len(report.Quarantined), report)
	}
	q := report.Quarantined[0]
	if q.Reason == "" || !strings.Contains(q.To, "quarantine") {
		t.Fatalf("bad quarantine entry: %+v", q)
	}
	if _, err := os.Stat(q.To); err != nil {
		t.Fatalf("quarantined file missing (deleted?): %v", err)
	}
	if _, _, ok, _ := s2.Get("bad"); ok {
		t.Fatal("corrupt record served")
	}
	jpeg, _, ok, _ := s2.Get("good")
	if !ok || !bytes.Equal(jpeg, jpegBytes(1)) {
		t.Fatal("good record damaged by recovery")
	}
}

// TestIDFilenameMismatchQuarantined renames a valid record file so the
// embedded ID no longer matches; recovery must set it aside.
func TestIDFilenameMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, blobstore.Options{})
	if _, err := s.Put("original", jpegBytes(1), nil, ""); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.Rename(filepath.Join(dir, "records", "original.psp"),
		filepath.Join(dir, "records", "impostor.psp")); err != nil {
		t.Fatal(err)
	}
	_, report := mustOpen(t, dir, blobstore.Options{})
	if report.Loaded != 0 || len(report.Quarantined) != 1 {
		t.Fatalf("report %+v", report)
	}
}

// crashPoint is one entry in the crash matrix: a fault script applied to a
// fresh store, after which the Put must fail, and a reopen with a clean
// filesystem must leave the acknowledged world intact.
type crashPoint struct {
	name string
	// fault configures the injector for the second Put.
	fault func(*faults.FaultFS)
	// wantStored reports whether the crashed record may legitimately be
	// complete on disk after recovery (kill after rename).
	wantStored bool
}

// TestCrashMatrix drives a Put through every injected fault point. In all
// cases: Put reports an error (never a false ack), a restart over the same
// directory serves the earlier acknowledged record byte-identically, and
// the unacknowledged record is either absent/quarantined or — only for
// faults after the atomic rename — complete and valid. Never torn, never
// silently wrong.
func TestCrashMatrix(t *testing.T) {
	points := []crashPoint{
		{
			name: "torn write then crash",
			fault: func(f *faults.FaultFS) {
				f.ScriptOn(faults.OpWrite, "tmp/", faults.FSFault{Kind: faults.FSTornCrash})
			},
		},
		{
			name: "torn write transient",
			fault: func(f *faults.FaultFS) {
				f.ScriptOn(faults.OpWrite, "tmp/", faults.FSFault{Kind: faults.FSTorn, KeepBytes: 10})
			},
		},
		{
			name: "fsync error on staged file",
			fault: func(f *faults.FaultFS) {
				f.ScriptOn(faults.OpSync, "tmp/", faults.FSFault{Kind: faults.FSErr})
			},
		},
		{
			name: "crash before rename",
			fault: func(f *faults.FaultFS) {
				f.ScriptOn(faults.OpRename, "records/", faults.FSFault{Kind: faults.FSCrashBefore})
			},
		},
		{
			name: "crash after rename",
			fault: func(f *faults.FaultFS) {
				f.ScriptOn(faults.OpRename, "records/", faults.FSFault{Kind: faults.FSCrashAfter})
			},
			wantStored: true,
		},
		{
			name: "rename fails transiently",
			fault: func(f *faults.FaultFS) {
				f.ScriptOn(faults.OpRename, "records/", faults.FSFault{Kind: faults.FSErr})
			},
		},
		{
			name: "crash during journal begin sync",
			fault: func(f *faults.FaultFS) {
				f.ScriptOn(faults.OpSync, "journal", faults.FSFault{Kind: faults.FSCrashAfter})
			},
		},
		{
			name: "directory fsync error",
			fault: func(f *faults.FaultFS) {
				f.ScriptOn(faults.OpSyncDir, "records", faults.FSFault{Kind: faults.FSErr})
			},
			// The rename completed; the record is durable-modulo-dirent
			// and recovery may legitimately serve it.
			wantStored: true,
		},
	}

	for _, pt := range points {
		t.Run(pt.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := faults.NewFS(nil)
			s, _ := mustOpen(t, dir, blobstore.Options{FS: inj})
			if _, err := s.Put("acked", jpegBytes(1), paramsBytes(1), "key-acked"); err != nil {
				t.Fatal(err)
			}
			pt.fault(inj)
			if _, err := s.Put("doomed", jpegBytes(2), paramsBytes(2), "key-doomed"); err == nil {
				t.Fatal("faulted Put acknowledged the upload")
			}

			// "Reboot": reopen over the same directory with a clean FS.
			s2, report := mustOpen(t, dir, blobstore.Options{})
			jpeg, params, ok, err := s2.Get("acked")
			if err != nil || !ok {
				t.Fatalf("acknowledged record lost: ok=%v err=%v report=%+v", ok, err, report)
			}
			if !bytes.Equal(jpeg, jpegBytes(1)) || !bytes.Equal(params, paramsBytes(1)) {
				t.Fatal("acknowledged record not byte-identical after crash recovery")
			}
			jpeg2, _, ok2, err := s2.Get("doomed")
			if err != nil {
				t.Fatal(err)
			}
			if ok2 {
				if !pt.wantStored {
					t.Fatalf("%s: unacknowledged record served", pt.name)
				}
				// If served at all it must be complete, never torn.
				if !bytes.Equal(jpeg2, jpegBytes(2)) {
					t.Fatal("recovered record is torn/wrong")
				}
			}
			// Whatever is neither loaded nor still staged must have been
			// quarantined, never deleted silently: staged leftovers from
			// the crash show up in the report.
			for _, q := range report.Quarantined {
				if q.Reason == "" {
					t.Fatalf("quarantine without reason: %+v", q)
				}
			}
		})
	}
}

// TestCrashAfterRenameKeepsIdempotency covers the nastiest corner: the
// record hit disk (rename done) but the client never got the ack. On
// recovery the embedded idempotency key must be re-indexed so the client's
// retry deduplicates instead of double-storing.
func TestCrashAfterRenameKeepsIdempotency(t *testing.T) {
	dir := t.TempDir()
	inj := faults.NewFS(nil)
	s, _ := mustOpen(t, dir, blobstore.Options{FS: inj})
	inj.ScriptOn(faults.OpRename, "records/", faults.FSFault{Kind: faults.FSCrashAfter})
	if _, err := s.Put("ghost", jpegBytes(3), nil, "retry-key"); err == nil {
		t.Fatal("crashed Put acked")
	}

	s2, report := mustOpen(t, dir, blobstore.Options{})
	if report.Loaded != 1 {
		t.Fatalf("loaded %d, want 1", report.Loaded)
	}
	id, err := s2.Put("ghost2", jpegBytes(3), nil, "retry-key")
	if err != nil {
		t.Fatal(err)
	}
	if id != "ghost" {
		t.Fatalf("retry after crash stored duplicate: got id %q", id)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
}

func TestConcurrentPutsDistinctIDs(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), blobstore.Options{})
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Put(fmt.Sprintf("c%02d", i), jpegBytes(i), paramsBytes(i), "")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	if got := len(s.IDs()); got != n {
		t.Fatalf("IDs() returned %d entries", got)
	}
}

func TestConcurrentSameKeySingleStore(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), blobstore.Options{})
	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := s.Put(fmt.Sprintf("d%02d", i), jpegBytes(0), nil, "shared-key")
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (concurrent retries double-stored)", s.Len())
	}
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("divergent ids %q vs %q", ids[i], ids[0])
		}
	}
}

// TestTornJournalTailTolerated chops the journal mid-line; open must not
// fail and must not misparse the torn tail.
func TestTornJournalTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, blobstore.Options{})
	if _, err := s.Put("j1", jpegBytes(1), nil, ""); err != nil {
		t.Fatal(err)
	}
	s.Close()
	jpath := filepath.Join(dir, "journal")
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, []byte("deadbeef B half-written-lin")...)
	if err := os.WriteFile(jpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, report := mustOpen(t, dir, blobstore.Options{})
	if report.Loaded != 1 {
		t.Fatalf("loaded %d, want 1", report.Loaded)
	}
	if _, _, ok, _ := s2.Get("j1"); !ok {
		t.Fatal("record lost to torn journal")
	}
}

func TestClosedStoreRefusesPuts(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), blobstore.Options{})
	s.Close()
	if _, err := s.Put("x", jpegBytes(1), nil, ""); err == nil {
		t.Fatal("Put after Close succeeded")
	}
}

func TestUnsupportedVersionSentinelExported(t *testing.T) {
	if !errors.Is(fmt.Errorf("wrap: %w", blobstore.ErrUnsupportedVersion), blobstore.ErrUnsupportedVersion) {
		t.Fatal("sentinel identity broken")
	}
}
