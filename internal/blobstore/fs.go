// Package blobstore is the PSP's crash-safe, content-checksummed record
// store. Each record (perturbed JPEG + public-parameter JSON + optional
// idempotency key) is serialized into a versioned envelope (magic, format
// version, lengths, CRC32C over header and payload) and persisted with the
// classic durable-write sequence: write to a temp file, fsync, atomic
// rename into place, fsync the directory. A small journal stages
// multi-step uploads so a crash at any point leaves either the complete
// record or nothing; on startup the store scans the directory, verifies
// every checksum, loads good records, and quarantines (never deletes)
// torn or corrupt files with a structured report.
//
// All filesystem access goes through the FS interface so tests can inject
// faults (torn writes, fsync errors, rename failures, mid-operation
// crashes) via internal/faults.
package blobstore

import (
	"io"
	"io/fs"
	"os"
)

// File is the writable-file surface the store needs: sequential writes, a
// durability barrier, and close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations behind the store's durability
// protocol. OSFS is the real implementation; internal/faults wraps any FS
// with deterministic fault injection.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	// OpenFile opens a file for writing (create/append per flag).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory so a preceding rename survives power loss.
	SyncDir(name string) error
}

// OSFS is the passthrough FS backed by the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Stat implements FS.
func (OSFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// SyncDir implements FS: open the directory and fsync it, which is how
// POSIX makes a completed rename durable.
func (OSFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
