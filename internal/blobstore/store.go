package blobstore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store layout under the data directory:
//
//	records/<id>.psp   committed envelopes (one per image)
//	tmp/               staging area for in-flight uploads
//	quarantine/        damaged files set aside by recovery, never deleted
//	journal            upload intent log (begin/commit, CRC per line)
//
// Durability protocol for Put: journal BEGIN (fsync) -> write envelope to
// tmp (fsync) -> rename into records/ (atomic) -> fsync records/ -> journal
// COMMIT. A crash at any point leaves either a complete, checksummed record
// or staged garbage that recovery quarantines; the envelope checksums — not
// the journal — are the authority on whether a record is served.
const (
	recordsDir    = "records"
	tmpDir        = "tmp"
	quarantineDir = "quarantine"
	journalName   = "journal"
	recordExt     = ".psp"

	// DefaultMaxKeys bounds the rebuilt idempotency-key index. Keys beyond
	// the cap are evicted oldest-first; an evicted key simply falls back to
	// normal upload semantics (a retry stores a second copy under a new ID
	// instead of deduplicating — safe, just not deduplicated).
	DefaultMaxKeys = 1 << 16
)

// Options configure Open.
type Options struct {
	// FS overrides the filesystem (fault injection in tests). Nil means
	// the real OS filesystem.
	FS FS
	// MaxKeys caps the in-memory idempotency index. Zero means
	// DefaultMaxKeys; negative disables the index entirely.
	MaxKeys int
}

// QuarantinedFile describes one damaged file recovery set aside.
type QuarantinedFile struct {
	// From is the original path, To where it now lives under quarantine/.
	From, To string
	// Reason is the decode failure that condemned it.
	Reason string
}

// RecoveryReport is the structured result of the startup scan.
type RecoveryReport struct {
	// Loaded counts records that passed both checksums.
	Loaded int
	// Quarantined lists torn/corrupt files renamed into quarantine/.
	Quarantined []QuarantinedFile
	// Unsupported lists record files from a newer envelope version: left
	// exactly where they are (a newer build can still read them), not
	// loaded, not quarantined.
	Unsupported []string
	// PendingUploads are journaled BEGIN entries with no COMMIT: uploads
	// in flight at crash time. Their staged temp files (if any) appear in
	// Quarantined; the IDs here are informational.
	PendingUploads []string
}

// Store is a crash-safe on-disk record store. All methods are safe for
// concurrent use; writes are serialized (one durable upload at a time).
type Store struct {
	dir     string
	fsys    FS
	maxKeys int

	mu      sync.RWMutex
	recs    map[string]*Record
	byKey   map[string]string
	keyAge  []string // oldest-first insertion order for cap eviction
	journal File
	closed  bool
}

// Open loads (or creates) a store rooted at dir, verifying every record's
// checksums and quarantining damage. It never deletes data: damaged files
// are renamed into quarantine/ for forensics.
func Open(dir string, opts Options) (*Store, *RecoveryReport, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	maxKeys := opts.MaxKeys
	if maxKeys == 0 {
		maxKeys = DefaultMaxKeys
	}
	s := &Store{
		dir:     dir,
		fsys:    fsys,
		maxKeys: maxKeys,
		recs:    make(map[string]*Record),
		byKey:   make(map[string]string),
	}
	for _, d := range []string{dir, filepath.Join(dir, recordsDir), filepath.Join(dir, tmpDir), filepath.Join(dir, quarantineDir)} {
		if err := fsys.MkdirAll(d, 0o755); err != nil {
			return nil, nil, fmt.Errorf("blobstore: create %s: %w", d, err)
		}
	}
	report := &RecoveryReport{}
	if err := s.recover(report); err != nil {
		return nil, nil, err
	}
	// Compact the journal now that every pending upload is resolved, then
	// keep it open for appends.
	if err := s.resetJournal(); err != nil {
		return nil, nil, err
	}
	return s, report, nil
}

// recover scans the journal, record files, and staging area.
func (s *Store) recover(report *RecoveryReport) error {
	pending, err := s.readJournal()
	if err != nil {
		return err
	}
	recDir := filepath.Join(s.dir, recordsDir)
	entries, err := s.fsys.ReadDir(recDir)
	if err != nil {
		return fmt.Errorf("blobstore: scan %s: %w", recDir, err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic load and key-index order
	for _, name := range names {
		path := filepath.Join(recDir, name)
		data, err := s.fsys.ReadFile(path)
		if err != nil {
			return fmt.Errorf("blobstore: read %s: %w", path, err)
		}
		rec, derr := decodeEnvelope(data)
		switch {
		case errors.Is(derr, ErrUnsupportedVersion):
			report.Unsupported = append(report.Unsupported, path)
			continue
		case derr != nil:
			if err := s.quarantine(path, derr.Error(), report); err != nil {
				return err
			}
			continue
		}
		if want := strings.TrimSuffix(name, recordExt); rec.ID != want {
			if err := s.quarantine(path, fmt.Sprintf("envelope id %q does not match filename", rec.ID), report); err != nil {
				return err
			}
			continue
		}
		s.recs[rec.ID] = rec
		if rec.Key != "" {
			s.addKeyLocked(rec.Key, rec.ID)
		}
		report.Loaded++
		delete(pending, rec.ID)
	}
	// Anything still staged never committed: a crash mid-upload. Set it
	// aside rather than deleting — the operator may want the evidence.
	stageDir := filepath.Join(s.dir, tmpDir)
	staged, err := s.fsys.ReadDir(stageDir)
	if err != nil {
		return fmt.Errorf("blobstore: scan %s: %w", stageDir, err)
	}
	for _, e := range staged {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(stageDir, e.Name())
		if err := s.quarantine(path, "staged upload never committed (crash mid-upload)", report); err != nil {
			return err
		}
	}
	for id := range pending {
		report.PendingUploads = append(report.PendingUploads, id)
	}
	sort.Strings(report.PendingUploads)
	return nil
}

// quarantine renames a damaged file into quarantine/, avoiding name
// collisions across repeated recoveries.
func (s *Store) quarantine(path, reason string, report *RecoveryReport) error {
	base := filepath.Base(path)
	dst := filepath.Join(s.dir, quarantineDir, base)
	for n := 1; ; n++ {
		if _, err := s.fsys.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(s.dir, quarantineDir, fmt.Sprintf("%s.%d", base, n))
	}
	if err := s.fsys.Rename(path, dst); err != nil {
		return fmt.Errorf("blobstore: quarantine %s: %w", path, err)
	}
	report.Quarantined = append(report.Quarantined, QuarantinedFile{From: path, To: dst, Reason: reason})
	return nil
}

// Journal lines are "crc32c(hex) op id\n" with op B (begin) or C (commit).
// Each line carries its own checksum so a torn tail (crash mid-append) is
// detected and ignored rather than misparsed.

func journalLine(op, id string) string {
	body := op + " " + id
	return fmt.Sprintf("%08x %s\n", crc32.Checksum([]byte(body), castagnoli), body)
}

// readJournal returns the set of BEGIN ids with no matching COMMIT.
// Malformed or checksum-failing lines end the useful prefix (they can only
// come from a torn final append or external damage; everything after them
// is untrustworthy).
func (s *Store) readJournal() (map[string]bool, error) {
	pending := make(map[string]bool)
	data, err := s.fsys.ReadFile(filepath.Join(s.dir, journalName))
	if err != nil {
		if os.IsNotExist(err) {
			return pending, nil
		}
		return nil, fmt.Errorf("blobstore: read journal: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, " ", 3)
		if len(parts) != 3 {
			return pending, nil
		}
		var crc uint32
		if _, err := fmt.Sscanf(parts[0], "%08x", &crc); err != nil {
			return pending, nil
		}
		body := parts[1] + " " + parts[2]
		if crc32.Checksum([]byte(body), castagnoli) != crc {
			return pending, nil
		}
		switch parts[1] {
		case "B":
			pending[parts[2]] = true
		case "C":
			delete(pending, parts[2])
		default:
			return pending, nil
		}
	}
	return pending, nil
}

// resetJournal truncates the journal (every recovered upload is resolved)
// and keeps the handle open for future appends.
func (s *Store) resetJournal() error {
	f, err := s.fsys.OpenFile(filepath.Join(s.dir, journalName), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("blobstore: open journal: %w", err)
	}
	s.journal = f
	return nil
}

// appendJournal writes one line; sync is required only for BEGIN entries
// (a lost COMMIT is harmless: recovery re-verifies the record itself).
func (s *Store) appendJournal(op, id string, sync bool) error {
	if _, err := s.journal.Write([]byte(journalLine(op, id))); err != nil {
		return fmt.Errorf("blobstore: journal append: %w", err)
	}
	if sync {
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("blobstore: journal sync: %w", err)
		}
	}
	return nil
}

// validID rejects ids that cannot serve as safe file names.
func validID(id string) error {
	if id == "" || len(id) > maxIDLen {
		return fmt.Errorf("blobstore: id length %d out of range", len(id))
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("blobstore: id %q contains unsafe character %q", id, r)
		}
	}
	if strings.HasPrefix(id, ".") {
		return fmt.Errorf("blobstore: id %q may not start with a dot", id)
	}
	return nil
}

// Put durably stores a record. If key is non-empty and already mapped, the
// previously assigned ID is returned and nothing is written (idempotent
// retry); otherwise the returned ID equals the argument. When Put returns
// an error the record is not acknowledged: a crash right now leaves at most
// staged garbage that the next Open quarantines.
func (s *Store) Put(id string, jpeg, params []byte, key string) (string, error) {
	if err := validID(id); err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", errors.New("blobstore: store is closed")
	}
	if key != "" {
		if prev, ok := s.byKey[key]; ok {
			return prev, nil
		}
	}
	if _, ok := s.recs[id]; ok {
		return "", fmt.Errorf("blobstore: id %q already stored", id)
	}
	rec := &Record{ID: id, JPEG: jpeg, Params: params, Key: key}
	env, err := encodeEnvelope(rec)
	if err != nil {
		return "", err
	}
	if err := s.appendJournal("B", id, true); err != nil {
		return "", err
	}
	tmpPath := filepath.Join(s.dir, tmpDir, id+recordExt)
	finalPath := filepath.Join(s.dir, recordsDir, id+recordExt)
	if err := s.writeFileDurable(tmpPath, env); err != nil {
		// Best-effort unstage; recovery quarantines whatever remains.
		_ = s.fsys.Remove(tmpPath)
		return "", err
	}
	if err := s.fsys.Rename(tmpPath, finalPath); err != nil {
		_ = s.fsys.Remove(tmpPath)
		return "", fmt.Errorf("blobstore: commit %s: %w", id, err)
	}
	if err := s.fsys.SyncDir(filepath.Join(s.dir, recordsDir)); err != nil {
		// The rename happened but may not survive a power cut, so the
		// upload must not be acknowledged. The complete record file stays
		// behind; if it does survive, a later recovery loads it and its
		// embedded idempotency key, so the client's retry still
		// deduplicates (at-least-once, never silent loss).
		return "", fmt.Errorf("blobstore: sync records dir: %w", err)
	}
	if err := s.appendJournal("C", id, false); err != nil {
		return "", err
	}
	s.recs[id] = rec
	if key != "" {
		s.addKeyLocked(key, id)
	}
	return id, nil
}

// writeFileDurable creates path exclusively, writes data, and fsyncs it.
func (s *Store) writeFileDurable(path string, data []byte) error {
	f, err := s.fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("blobstore: stage %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("blobstore: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("blobstore: fsync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("blobstore: close %s: %w", path, err)
	}
	return nil
}

// addKeyLocked indexes key -> id, evicting oldest entries beyond the cap.
// Caller holds mu.
func (s *Store) addKeyLocked(key, id string) {
	if s.maxKeys < 0 {
		return
	}
	if _, ok := s.byKey[key]; ok {
		return
	}
	s.byKey[key] = id
	s.keyAge = append(s.keyAge, key)
	for len(s.byKey) > s.maxKeys && len(s.keyAge) > 0 {
		delete(s.byKey, s.keyAge[0])
		s.keyAge = s.keyAge[1:]
	}
}

// Get returns the stored record's payloads. The slices alias store-internal
// buffers and must not be mutated.
func (s *Store) Get(id string) (jpeg, params []byte, ok bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.recs[id]
	if !ok {
		return nil, nil, false, nil
	}
	return rec.JPEG, rec.Params, true, nil
}

// IDForKey resolves an idempotency key to its assigned image ID.
func (s *Store) IDForKey(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.byKey[key]
	return id, ok
}

// IDs returns every stored image ID in sorted order.
func (s *Store) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.recs))
	for id := range s.recs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Len reports how many records are loaded.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Close releases the journal handle. Further Puts fail; Gets keep working
// from memory.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.journal.Close()
}
