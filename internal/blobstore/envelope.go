package blobstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Envelope format v1. All integers are big-endian.
//
//	offset size  field
//	0      4     magic "PSPB"
//	4      2     format version (currently 1)
//	6      2     reserved flags (must be 0)
//	8      2     id length
//	10     2     idempotency-key length
//	12     8     JPEG payload length
//	20     8     params payload length
//	28     4     CRC32C over header bytes [0, 28)
//	32     -     id, key, JPEG, params (concatenated, no padding)
//	end    4     CRC32C over the concatenated payload
//
// The header checksum lets recovery distinguish a torn/garbage header
// (quarantine, lengths untrustworthy) from payload corruption, and keeps a
// corrupt length field from driving a huge allocation. The payload checksum
// guarantees that every byte served back to a client is the byte that was
// acknowledged at upload time.
const (
	envMagic      = "PSPB"
	envVersion    = 1
	envHeaderLen  = 32
	envTrailerLen = 4

	// maxIDLen / maxKeyLen / maxBlobLen bound decoded lengths so a header
	// that passes its CRC by chance still cannot demand absurd allocations.
	maxIDLen   = 1 << 10
	maxKeyLen  = 1 << 10
	maxBlobLen = 1 << 31
)

// castagnoli is the CRC32C table (the polynomial with hardware support on
// amd64/arm64, and the one used by ext4, btrfs, and iSCSI).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed envelope decode failures. ErrCorrupt covers checksum and framing
// damage; ErrUnsupportedVersion means a structurally sound envelope from a
// future format that this build must not guess its way through.
var (
	ErrCorrupt            = errors.New("blobstore: corrupt envelope")
	ErrUnsupportedVersion = errors.New("blobstore: unsupported envelope version")
)

// Record is one stored image: the acknowledged JPEG bytes, the opaque
// public-parameter document, and the idempotency key (empty if the upload
// carried none).
type Record struct {
	ID     string
	JPEG   []byte
	Params []byte
	Key    string
}

// EncodeRecord serializes the record into the checksummed v1 envelope.
// Exported so sibling subsystems (the search-index snapshot) persist
// through the same self-verifying framing instead of inventing their own.
func EncodeRecord(rec *Record) ([]byte, error) { return encodeEnvelope(rec) }

// DecodeRecord parses and verifies an envelope produced by EncodeRecord.
// Framing or checksum damage yields ErrCorrupt; a valid header from a newer
// format yields ErrUnsupportedVersion. The returned slices alias data.
func DecodeRecord(data []byte) (*Record, error) { return decodeEnvelope(data) }

// encodeEnvelope serializes the record into the v1 envelope.
func encodeEnvelope(rec *Record) ([]byte, error) {
	if len(rec.ID) == 0 || len(rec.ID) > maxIDLen {
		return nil, fmt.Errorf("blobstore: id length %d out of range", len(rec.ID))
	}
	if len(rec.Key) > maxKeyLen {
		return nil, fmt.Errorf("blobstore: key length %d exceeds %d", len(rec.Key), maxKeyLen)
	}
	if len(rec.JPEG) >= maxBlobLen || len(rec.Params) >= maxBlobLen {
		return nil, fmt.Errorf("blobstore: payload too large (%d + %d bytes)", len(rec.JPEG), len(rec.Params))
	}
	payloadLen := len(rec.ID) + len(rec.Key) + len(rec.JPEG) + len(rec.Params)
	buf := make([]byte, envHeaderLen+payloadLen+envTrailerLen)
	copy(buf[0:4], envMagic)
	binary.BigEndian.PutUint16(buf[4:6], envVersion)
	binary.BigEndian.PutUint16(buf[6:8], 0)
	binary.BigEndian.PutUint16(buf[8:10], uint16(len(rec.ID)))
	binary.BigEndian.PutUint16(buf[10:12], uint16(len(rec.Key)))
	binary.BigEndian.PutUint64(buf[12:20], uint64(len(rec.JPEG)))
	binary.BigEndian.PutUint64(buf[20:28], uint64(len(rec.Params)))
	binary.BigEndian.PutUint32(buf[28:32], crc32.Checksum(buf[0:28], castagnoli))
	p := buf[envHeaderLen:envHeaderLen]
	p = append(p, rec.ID...)
	p = append(p, rec.Key...)
	p = append(p, rec.JPEG...)
	p = append(p, rec.Params...)
	binary.BigEndian.PutUint32(buf[envHeaderLen+payloadLen:], crc32.Checksum(p, castagnoli))
	return buf, nil
}

// decodeEnvelope parses and verifies an envelope. Any framing or checksum
// damage yields ErrCorrupt; a valid header from a newer format version
// yields ErrUnsupportedVersion. The returned slices alias data.
func decodeEnvelope(data []byte) (*Record, error) {
	if len(data) < envHeaderLen+envTrailerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the minimum envelope", ErrCorrupt, len(data))
	}
	if string(data[0:4]) != envMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[0:4])
	}
	if got, want := binary.BigEndian.Uint32(data[28:32]), crc32.Checksum(data[0:28], castagnoli); got != want {
		return nil, fmt.Errorf("%w: header checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != envVersion {
		return nil, fmt.Errorf("%w: version %d (this build reads %d)", ErrUnsupportedVersion, v, envVersion)
	}
	if f := binary.BigEndian.Uint16(data[6:8]); f != 0 {
		return nil, fmt.Errorf("%w: reserved flags %#x set", ErrCorrupt, f)
	}
	idLen := int(binary.BigEndian.Uint16(data[8:10]))
	keyLen := int(binary.BigEndian.Uint16(data[10:12]))
	jpegLen := binary.BigEndian.Uint64(data[12:20])
	paramsLen := binary.BigEndian.Uint64(data[20:28])
	if idLen == 0 || idLen > maxIDLen || keyLen > maxKeyLen ||
		jpegLen >= maxBlobLen || paramsLen >= maxBlobLen {
		return nil, fmt.Errorf("%w: implausible lengths id=%d key=%d jpeg=%d params=%d",
			ErrCorrupt, idLen, keyLen, jpegLen, paramsLen)
	}
	payloadLen := idLen + keyLen + int(jpegLen) + int(paramsLen)
	if len(data) != envHeaderLen+payloadLen+envTrailerLen {
		return nil, fmt.Errorf("%w: %d bytes, header promises %d", ErrCorrupt, len(data), envHeaderLen+payloadLen+envTrailerLen)
	}
	payload := data[envHeaderLen : envHeaderLen+payloadLen]
	if got, want := binary.BigEndian.Uint32(data[envHeaderLen+payloadLen:]), crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: payload checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	rec := &Record{
		ID:     string(payload[:idLen]),
		Key:    string(payload[idLen : idLen+keyLen]),
		JPEG:   payload[idLen+keyLen : idLen+keyLen+int(jpegLen)],
		Params: payload[idLen+keyLen+int(jpegLen):],
	}
	if len(rec.Params) == 0 {
		rec.Params = nil
	}
	if len(rec.JPEG) == 0 {
		rec.JPEG = nil
	}
	return rec, nil
}
