package servecache

import (
	"sync"
	"sync/atomic"
)

// Group collapses concurrent calls with the same key into one execution of
// fn; every caller gets the leader's result. The zero value is ready to
// use. Unlike golang.org/x/sync/singleflight this Group is typed and counts
// collapsed calls, which the PSP exposes through /v1/statz.
//
// Results are not cached: once the leader finishes, the next Do with the
// same key runs fn again. Pair a Group with a Cache so that only genuinely
// concurrent duplicate work is collapsed.
type Group[V any] struct {
	mu       sync.Mutex
	inflight map[string]*call[V]
	// collapsed counts calls that waited on another caller's execution
	// instead of running fn themselves.
	collapsed atomic.Uint64
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do executes fn once per key per concurrent burst. The returned shared
// flag is true for callers that received another execution's result. If the
// leader's fn panics, the panic propagates to the leader and waiters
// receive the error form of the panic rather than blocking forever.
func (g *Group[V]) Do(key string, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.inflight == nil {
		g.inflight = make(map[string]*call[V])
	}
	if c, ok := g.inflight[key]; ok {
		g.mu.Unlock()
		g.collapsed.Add(1)
		<-c.done
		return c.val, c.err, true
	}
	c := &call[V]{done: make(chan struct{})}
	g.inflight[key] = c
	g.mu.Unlock()

	normal := false
	defer func() {
		if !normal {
			// fn panicked: release waiters with an error before the
			// panic unwinds through the leader.
			c.err = &panicError{key: key}
		}
		g.mu.Lock()
		delete(g.inflight, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	normal = true
	return c.val, c.err, false
}

// Collapsed reports how many calls were collapsed into another execution
// since the Group was created.
func (g *Group[V]) Collapsed() uint64 { return g.collapsed.Load() }

type panicError struct{ key string }

func (e *panicError) Error() string {
	return "servecache: singleflight leader panicked for key " + e.key
}
