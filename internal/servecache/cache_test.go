package servecache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewSharded[string](1<<20, 4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	if !c.Add("a", "va", 10) {
		t.Fatal("add rejected")
	}
	v, ok := c.Get("a")
	if !ok || v != "va" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Errorf("stats = %+v", st)
	}
	if st.MaxBytes != 1<<20 {
		t.Errorf("maxBytes = %d", st.MaxBytes)
	}
}

func TestCacheByteBudgetEviction(t *testing.T) {
	// Single shard => deterministic global LRU order.
	c := NewSharded[int](100, 1)
	for i := 0; i < 10; i++ {
		c.Add(fmt.Sprintf("k%d", i), i, 30)
	}
	if got := c.Bytes(); got > 100 {
		t.Errorf("bytes %d exceeds budget 100", got)
	}
	if got := c.Len(); got != 3 {
		t.Errorf("len = %d, want 3 (3*30 <= 100 < 4*30)", got)
	}
	// Only the most recent three survive.
	for i := 0; i < 7; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			t.Errorf("k%d should have been evicted", i)
		}
	}
	for i := 7; i < 10; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d missing", i)
		}
	}
	if ev := c.Stats().Evictions; ev != 7 {
		t.Errorf("evictions = %d, want 7", ev)
	}
}

func TestCacheLRUOrderRespectsGets(t *testing.T) {
	c := NewSharded[int](90, 1) // fits 3 x 30
	c.Add("a", 1, 30)
	c.Add("b", 2, 30)
	c.Add("c", 3, 30)
	c.Get("a") // a becomes MRU; b is now LRU
	c.Add("d", 4, 30)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used a evicted")
	}
}

func TestCacheOversizedEntryRejected(t *testing.T) {
	c := NewSharded[int](100, 1)
	c.Add("small", 1, 40)
	if c.Add("huge", 2, 101) {
		t.Fatal("entry above budget accepted")
	}
	if _, ok := c.Get("small"); !ok {
		t.Error("oversized add disturbed existing entries")
	}
	if c.Add("zero", 3, 0) {
		t.Error("zero-cost entry accepted")
	}
}

func TestCacheUpdateExistingAdjustsBytes(t *testing.T) {
	c := NewSharded[int](100, 1)
	c.Add("a", 1, 30)
	c.Add("a", 2, 50)
	if got := c.Bytes(); got != 50 {
		t.Errorf("bytes = %d, want 50 after in-place update", got)
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Errorf("value = %d, want 2", v)
	}
	if got := c.Len(); got != 1 {
		t.Errorf("len = %d, want 1", got)
	}
}

func TestCacheContainsDoesNotTouchStats(t *testing.T) {
	c := NewSharded[int](100, 1)
	c.Add("a", 1, 10)
	c.Contains("a")
	c.Contains("missing")
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Contains moved counters: %+v", st)
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache[[]byte]
	if _, ok := c.Get("a"); ok {
		t.Error("nil cache hit")
	}
	if c.Add("a", nil, 10) {
		t.Error("nil cache accepted add")
	}
	if c.Contains("a") || c.Len() != 0 || c.Bytes() != 0 {
		t.Error("nil cache reports contents")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}

func TestCacheConcurrentBudgetHeld(t *testing.T) {
	const budget = 64 << 10
	c := New[[]byte](budget)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("g%d-i%d", g, i%50)
				if _, ok := c.Get(key); !ok {
					c.Add(key, make([]byte, 512), 512)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Bytes(); got > budget {
		t.Errorf("bytes %d exceeds budget %d", got, budget)
	}
}

func TestGroupCollapsesConcurrentCalls(t *testing.T) {
	var g Group[int]
	var computations atomic.Int64
	gate := make(chan struct{})
	const callers = 32

	var wg sync.WaitGroup
	results := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.Do("key", func() (int, error) {
				computations.Add(1)
				<-gate // hold all followers in the collapse window
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let the followers queue up behind the leader, then release it.
	for g.Collapsed() < callers-1 {
	}
	close(gate)
	wg.Wait()

	if n := computations.Load(); n != 1 {
		t.Errorf("%d computations, want 1", n)
	}
	if got := g.Collapsed(); got != callers-1 {
		t.Errorf("collapsed = %d, want %d", got, callers-1)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("caller %d got %d", i, v)
		}
	}
}

func TestGroupSequentialCallsRecompute(t *testing.T) {
	var g Group[int]
	n := 0
	for i := 0; i < 3; i++ {
		v, err, shared := g.Do("k", func() (int, error) { n++; return n, nil })
		if err != nil || shared || v != i+1 {
			t.Fatalf("call %d: v=%d err=%v shared=%v", i, v, err, shared)
		}
	}
	if g.Collapsed() != 0 {
		t.Errorf("sequential calls collapsed: %d", g.Collapsed())
	}
}

func TestGroupLeaderPanicReleasesWaiters(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	waiterDone := make(chan error, 1)

	go func() {
		defer func() { recover() }()
		g.Do("k", func() (int, error) {
			close(gate)
			// Wait for the second caller to be enqueued before panicking.
			for g.Collapsed() == 0 {
			}
			panic("boom")
		})
	}()
	<-gate
	_, err, _ := g.Do("k", func() (int, error) { return 7, nil })
	waiterDone <- err
	if err := <-waiterDone; err == nil {
		t.Fatal("waiter got nil error from panicked leader")
	}
}
