// Package servecache provides the serving-path caching primitives for the
// PSP: a byte-budgeted, sharded LRU cache and a singleflight group that
// collapses concurrent identical computations.
//
// The package is deliberately generic — it knows nothing about JPEGs or
// transform specs. The PSP composes two Cache instances (encoded transform
// outputs over decoded coefficient images) plus two Groups (one per
// computation kind) into its serving path; see internal/psp. Entries are
// never invalidated, only evicted: stored images are immutable once
// uploaded, so a cached value can only become cold, never wrong.
package servecache

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used by New. Sharding bounds lock
// contention under concurrent serving: a Get/Add only locks the shard its
// key hashes to.
const DefaultShards = 16

// Stats is a point-in-time snapshot of a cache's counters. Counters are
// read individually without a global lock, so a snapshot taken under
// concurrent traffic is approximate (each number is exact at *some* recent
// instant, but not all at the same one).
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"maxBytes"`
}

// Cache is a sharded, byte-budgeted LRU map from string keys to values.
// All methods are safe for concurrent use. A nil *Cache is a valid,
// always-miss cache: Get misses, Add drops, Stats is zero — callers can
// disable caching by leaving the pointer nil.
type Cache[V any] struct {
	shardMax int64 // per-shard byte budget
	seed     maphash.Seed
	shards   []shard[V]

	hits, misses, evictions atomic.Uint64
}

type shard[V any] struct {
	mu    sync.Mutex
	bytes int64
	byKey map[string]*list.Element
	order *list.List // front = most recently used
}

type centry[V any] struct {
	key  string
	val  V
	cost int64
}

// New returns a cache holding at most maxBytes of entry cost across
// DefaultShards shards. maxBytes must be positive.
func New[V any](maxBytes int64) *Cache[V] {
	return NewSharded[V](maxBytes, DefaultShards)
}

// NewSharded is New with an explicit shard count (tests use 1 shard for a
// deterministic global LRU order). The byte budget is split evenly across
// shards, so a single entry can never exceed maxBytes/nShards.
func NewSharded[V any](maxBytes int64, nShards int) *Cache[V] {
	if maxBytes <= 0 {
		panic("servecache: non-positive byte budget")
	}
	if nShards < 1 {
		nShards = 1
	}
	if int64(nShards) > maxBytes {
		nShards = 1
	}
	c := &Cache[V]{
		shardMax: maxBytes / int64(nShards),
		seed:     maphash.MakeSeed(),
		shards:   make([]shard[V], nShards),
	}
	for i := range c.shards {
		c.shards[i].byKey = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

func (c *Cache[V]) shard(key string) *shard[V] {
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.byKey[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return zero, false
	}
	s.order.MoveToFront(el)
	v := el.Value.(*centry[V]).val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Contains reports whether key is cached without touching LRU order or
// hit/miss counters (used for conditional-GET existence checks).
func (c *Cache[V]) Contains(key string) bool {
	if c == nil {
		return false
	}
	s := c.shard(key)
	s.mu.Lock()
	_, ok := s.byKey[key]
	s.mu.Unlock()
	return ok
}

// Add inserts or refreshes an entry, evicting least-recently-used entries
// from the key's shard until the shard fits its budget. cost must be the
// entry's resident size in bytes; entries costing more than one shard's
// budget are rejected (returns false) rather than wiping the shard.
func (c *Cache[V]) Add(key string, v V, cost int64) bool {
	if c == nil || cost <= 0 || cost > c.shardMax {
		return false
	}
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		e := el.Value.(*centry[V])
		s.bytes += cost - e.cost
		e.val, e.cost = v, cost
		s.order.MoveToFront(el)
	} else {
		s.byKey[key] = s.order.PushFront(&centry[V]{key: key, val: v, cost: cost})
		s.bytes += cost
	}
	var evicted uint64
	for s.bytes > c.shardMax {
		oldest := s.order.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*centry[V])
		s.order.Remove(oldest)
		delete(s.byKey, e.key)
		s.bytes -= e.cost
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
	return true
}

// Len reports the live entry count.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.byKey)
		s.mu.Unlock()
	}
	return n
}

// Bytes reports the summed cost of live entries.
func (c *Cache[V]) Bytes() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Bytes:     c.Bytes(),
		MaxBytes:  c.shardMax * int64(len(c.shards)),
	}
}
