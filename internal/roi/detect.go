package roi

import (
	"math"
	"sort"

	"puppies/internal/core"
	"puppies/internal/imgplane"
)

// Detector runs the three region detectors. The zero value is not usable;
// call NewDetector.
type Detector struct {
	// MinFaceArea is the minimum face component area in pixels (at full
	// resolution) before a candidate is kept.
	MinFaceArea int
	// TopObjects caps the number of object detections returned ("top-N
	// general objects", paper §IV-A).
	TopObjects int
}

// NewDetector returns a detector with the defaults used in the experiments.
func NewDetector() *Detector {
	return &Detector{MinFaceArea: 400, TopObjects: 3}
}

// DetectAll runs the face, text and object detectors and returns their raw
// (possibly overlapping) hits.
func (d *Detector) DetectAll(img *imgplane.Image) []Detection {
	var out []Detection
	out = append(out, d.DetectFaces(img)...)
	out = append(out, d.DetectText(img)...)
	out = append(out, d.DetectObjects(img)...)
	return out
}

// Recommend runs all detectors and returns disjoint, block-aligned
// rectangles ready for encryption — the recommendation shown to the image
// owner (paper §IV-A, Fig. 12).
func (d *Detector) Recommend(img *imgplane.Image) []core.ROI {
	dets := d.DetectAll(img)
	rects := make([]core.ROI, len(dets))
	for i, det := range dets {
		rects[i] = det.Rect
	}
	return AlignAll(SplitDisjoint(rects), img.W(), img.H())
}

// component is a connected region of a boolean mask.
type component struct {
	minX, minY, maxX, maxY int
	area                   int
}

// components labels 8-connected regions of mask (w x h, row-major).
func components(mask []bool, w, h int) []component {
	labels := make([]int32, len(mask))
	for i := range labels {
		labels[i] = -1
	}
	var comps []component
	var stack []int
	for start := range mask {
		if !mask[start] || labels[start] >= 0 {
			continue
		}
		id := int32(len(comps))
		comp := component{minX: w, minY: h, maxX: -1, maxY: -1}
		stack = append(stack[:0], start)
		labels[start] = id
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := idx%w, idx/w
			comp.area++
			if x < comp.minX {
				comp.minX = x
			}
			if y < comp.minY {
				comp.minY = y
			}
			if x > comp.maxX {
				comp.maxX = x
			}
			if y > comp.maxY {
				comp.maxY = y
			}
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if nx < 0 || ny < 0 || nx >= w || ny >= h {
						continue
					}
					ni := ny*w + nx
					if mask[ni] && labels[ni] < 0 {
						labels[ni] = id
						stack = append(stack, ni)
					}
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// DetectFaces finds skin-toned elliptical regions containing dark interior
// features (eyes) — a classical color-and-shape face detector.
func (d *Detector) DetectFaces(img *imgplane.Image) []Detection {
	if img.Channels() != 3 {
		return nil
	}
	const ds = 4 // downsample factor
	w, h := img.W()/ds, img.H()/ds
	if w < 4 || h < 4 {
		return nil
	}
	skin := make([]bool, w*h)
	yPlane := img.Planes[0]
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := (y * ds * img.W()) + x*ds
			r, g, b := imgplane.YUVToRGB(img.Planes[0].Pix[i], img.Planes[1].Pix[i], img.Planes[2].Pix[i])
			if r > 95 && g > 40 && b > 20 && r > g && r > b &&
				r-minf(g, b) > 15 && absf(r-g) > 15 {
				skin[y*w+x] = true
			}
		}
	}
	var out []Detection
	for _, c := range components(skin, w, h) {
		area := c.area * ds * ds
		if area < d.MinFaceArea {
			continue
		}
		bw, bh := c.maxX-c.minX+1, c.maxY-c.minY+1
		aspect := float64(bw) / float64(bh)
		if aspect < 0.4 || aspect > 1.6 {
			continue
		}
		fill := float64(c.area) / float64(bw*bh)
		if fill < 0.4 {
			continue
		}
		// Eye evidence: dark pixels in the upper half of the candidate box.
		dark := 0
		for y := c.minY; y <= c.minY+bh/2; y++ {
			for x := c.minX; x <= c.maxX; x++ {
				if yPlane.At(x*ds, y*ds) < 80 {
					dark++
				}
			}
		}
		if dark < bw*bh/40 {
			continue
		}
		out = append(out, Detection{
			Class: ClassFace,
			Rect: core.ROI{
				X: c.minX * ds, Y: c.minY * ds,
				W: bw * ds, H: bh * ds,
			},
			Score: float64(area),
		})
	}
	return out
}

// DetectText finds horizontally elongated regions of dense high-contrast
// edges — the classical stroke/edge-density text locator standing in for
// OCR-based detection.
func (d *Detector) DetectText(img *imgplane.Image) []Detection {
	y := img.Planes[0]
	const cell = 8
	cw, ch := y.W/cell, y.H/cell
	if cw < 2 || ch < 2 {
		return nil
	}
	dense := make([]bool, cw*ch)
	for cy := 0; cy < ch; cy++ {
		for cx := 0; cx < cw; cx++ {
			edges := 0
			lo, hi := float32(255), float32(0)
			for py := 0; py < cell; py++ {
				for px := 0; px < cell; px++ {
					xx, yy := cx*cell+px, cy*cell+py
					v := y.At(xx, yy)
					gx := y.At(xx+1, yy) - v
					gy := y.At(xx, yy+1) - v
					if absf(gx)+absf(gy) > 70 {
						edges++
					}
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
			}
			// Text cells have many sharp edges AND full dark-light swing.
			if edges >= cell*cell/4 && hi-lo > 110 {
				dense[cy*cw+cx] = true
			}
		}
	}
	var out []Detection
	for _, c := range components(dense, cw, ch) {
		bw, bh := c.maxX-c.minX+1, c.maxY-c.minY+1
		if c.area < 3 || bw < 2 {
			continue
		}
		if float64(bw)/float64(bh) < 1.2 {
			continue
		}
		out = append(out, Detection{
			Class: ClassText,
			Rect: core.ROI{
				X: c.minX * cell, Y: c.minY * cell,
				W: bw * cell, H: bh * cell,
			},
			Score: float64(c.area),
		})
	}
	return out
}

// DetectObjects finds the top-N globally salient color blobs (regions whose
// color deviates strongly from the image mean) — a center-surround
// saliency proxy for generic objectness.
func (d *Detector) DetectObjects(img *imgplane.Image) []Detection {
	const ds = 8
	w, h := img.W()/ds, img.H()/ds
	if w < 4 || h < 4 {
		return nil
	}
	n := w * h
	type vec3 struct{ a, b, c float64 }
	px := make([]vec3, n)
	var mean vec3
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*ds*img.W() + x*ds
			v := vec3{float64(img.Planes[0].Pix[i]), 128, 128}
			if img.Channels() == 3 {
				v.b = float64(img.Planes[1].Pix[i])
				v.c = float64(img.Planes[2].Pix[i])
			}
			px[y*w+x] = v
			mean.a += v.a
			mean.b += v.b
			mean.c += v.c
		}
	}
	mean.a /= float64(n)
	mean.b /= float64(n)
	mean.c /= float64(n)

	sal := make([]float64, n)
	var salMean, salStd float64
	for i, v := range px {
		da, db, dc := v.a-mean.a, v.b-mean.b, v.c-mean.c
		sal[i] = math.Sqrt(da*da + db*db + dc*dc)
		salMean += sal[i]
	}
	salMean /= float64(n)
	for _, s := range sal {
		salStd += (s - salMean) * (s - salMean)
	}
	salStd = math.Sqrt(salStd / float64(n))

	mask := make([]bool, n)
	thr := salMean + salStd
	for i, s := range sal {
		mask[i] = s > thr
	}
	comps := components(mask, w, h)
	sort.Slice(comps, func(i, j int) bool { return comps[i].area > comps[j].area })
	var out []Detection
	for i, c := range comps {
		if i >= d.TopObjects {
			break
		}
		if c.area < 6 {
			continue
		}
		out = append(out, Detection{
			Class: ClassObject,
			Rect: core.ROI{
				X: c.minX * ds, Y: c.minY * ds,
				W: (c.maxX - c.minX + 1) * ds, H: (c.maxY - c.minY + 1) * ds,
			},
			Score: float64(c.area),
		})
	}
	return out
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func absf(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
