// Package roi implements sender-side region-of-interest detection and
// recommendation (paper §IV-A).
//
// The paper runs three detectors — face detection, OCR text detection, and
// generic object detection — merges their overlapping hits, and splits the
// union into disjoint rectangles so each can be encrypted with its own
// private matrix. The original system used OpenCV Haar cascades, Tesseract
// and the objectness measure of Alexe et al.; those depend on shipped model
// weights, so this package substitutes classical heuristics with the same
// contract (DESIGN.md §5): a skin-tone/shape face detector, an
// edge-density text detector, and a color-contrast saliency object
// detector, each effective on the synthetic corpora and — like any
// pixel-pattern detector — defeated by PuPPIeS perturbation, which is the
// property §VI-B.3 measures.
package roi

import (
	"sort"

	"puppies/internal/core"
)

// Class labels a detection.
type Class string

// Detection classes.
const (
	ClassFace   Class = "face"
	ClassText   Class = "text"
	ClassObject Class = "object"
)

// Detection is one detector hit.
type Detection struct {
	Class Class
	Rect  core.ROI
	// Score orders detections within a class (larger = stronger).
	Score float64
}

// SplitDisjoint converts an arbitrary set of (possibly overlapping)
// rectangles into disjoint rectangles exactly covering their union — the
// paper's region-splitting step, which lets owners secure each part with a
// different private matrix. The output is deterministic: maximal-height
// runs over the compressed coordinate grid, scanned left-to-right,
// top-to-bottom.
func SplitDisjoint(rects []core.ROI) []core.ROI {
	rects = nonEmpty(rects)
	if len(rects) <= 1 {
		return rects
	}
	xs := boundaries(rects, func(r core.ROI) (int, int) { return r.X, r.X + r.W })
	ys := boundaries(rects, func(r core.ROI) (int, int) { return r.Y, r.Y + r.H })

	nx, ny := len(xs)-1, len(ys)-1
	covered := make([][]bool, ny)
	for j := range covered {
		covered[j] = make([]bool, nx)
		for i := range covered[j] {
			cx, cy := xs[i], ys[j]
			for _, r := range rects {
				if cx >= r.X && cx < r.X+r.W && cy >= r.Y && cy < r.Y+r.H {
					covered[j][i] = true
					break
				}
			}
		}
	}

	used := make([][]bool, ny)
	for j := range used {
		used[j] = make([]bool, nx)
	}
	var out []core.ROI
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if !covered[j][i] || used[j][i] {
				continue
			}
			// Extend right.
			i2 := i
			for i2+1 < nx && covered[j][i2+1] && !used[j][i2+1] {
				i2++
			}
			// Extend down while the whole row span is available.
			j2 := j
			for j2+1 < ny {
				ok := true
				for k := i; k <= i2; k++ {
					if !covered[j2+1][k] || used[j2+1][k] {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
				j2++
			}
			for jj := j; jj <= j2; jj++ {
				for ii := i; ii <= i2; ii++ {
					used[jj][ii] = true
				}
			}
			out = append(out, core.ROI{X: xs[i], Y: ys[j], W: xs[i2+1] - xs[i], H: ys[j2+1] - ys[j]})
		}
	}
	return out
}

func nonEmpty(rects []core.ROI) []core.ROI {
	out := rects[:0:0]
	for _, r := range rects {
		if r.W > 0 && r.H > 0 {
			out = append(out, r)
		}
	}
	return out
}

func boundaries(rects []core.ROI, f func(core.ROI) (int, int)) []int {
	set := map[int]bool{}
	for _, r := range rects {
		a, b := f(r)
		set[a] = true
		set[b] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// AlignAll expands every rectangle to the 8-pixel block grid of a wxh image
// and drops rectangles that align to nothing. Overlaps created by the
// expansion are re-split.
func AlignAll(rects []core.ROI, w, h int) []core.ROI {
	aligned := make([]core.ROI, 0, len(rects))
	for _, r := range rects {
		a, err := r.AlignToBlocks(w, h)
		if err != nil {
			continue
		}
		aligned = append(aligned, a)
	}
	// Alignment can introduce overlaps between previously disjoint rects.
	for i := range aligned {
		for j := i + 1; j < len(aligned); j++ {
			if aligned[i].Overlaps(aligned[j]) {
				return SplitDisjoint(aligned)
			}
		}
	}
	return aligned
}

// Union-area of rectangles, for tests and coverage accounting.
func unionArea(rects []core.ROI) int {
	if len(rects) == 0 {
		return 0
	}
	xs := boundaries(rects, func(r core.ROI) (int, int) { return r.X, r.X + r.W })
	ys := boundaries(rects, func(r core.ROI) (int, int) { return r.Y, r.Y + r.H })
	area := 0
	for j := 0; j+1 < len(ys); j++ {
		for i := 0; i+1 < len(xs); i++ {
			cx, cy := xs[i], ys[j]
			for _, r := range rects {
				if cx >= r.X && cx < r.X+r.W && cy >= r.Y && cy < r.Y+r.H {
					area += (xs[i+1] - xs[i]) * (ys[j+1] - ys[j])
					break
				}
			}
		}
	}
	return area
}
