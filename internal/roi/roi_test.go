package roi

import (
	"math/rand"
	"testing"

	"puppies/internal/core"
	"puppies/internal/dataset"
)

func TestSplitDisjointBasic(t *testing.T) {
	in := []core.ROI{
		{X: 0, Y: 0, W: 10, H: 10},
		{X: 5, Y: 5, W: 10, H: 10},
	}
	out := SplitDisjoint(in)
	assertDisjointCover(t, in, out)
}

func TestSplitDisjointPreservesDisjointInput(t *testing.T) {
	in := []core.ROI{
		{X: 0, Y: 0, W: 8, H: 8},
		{X: 16, Y: 16, W: 8, H: 8},
	}
	out := SplitDisjoint(in)
	if len(out) != 2 {
		t.Fatalf("disjoint input split into %d parts", len(out))
	}
	assertDisjointCover(t, in, out)
}

func TestSplitDisjointRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		in := make([]core.ROI, n)
		for i := range in {
			in[i] = core.ROI{
				X: rng.Intn(80), Y: rng.Intn(80),
				W: 1 + rng.Intn(40), H: 1 + rng.Intn(40),
			}
		}
		out := SplitDisjoint(in)
		assertDisjointCover(t, in, out)
	}
}

func TestSplitDisjointEdgeCases(t *testing.T) {
	if got := SplitDisjoint(nil); len(got) != 0 {
		t.Errorf("nil input: %v", got)
	}
	if got := SplitDisjoint([]core.ROI{{X: 1, Y: 1, W: 0, H: 5}}); len(got) != 0 {
		t.Errorf("empty rect kept: %v", got)
	}
	single := []core.ROI{{X: 3, Y: 4, W: 5, H: 6}}
	if got := SplitDisjoint(single); len(got) != 1 || got[0] != single[0] {
		t.Errorf("single rect altered: %v", got)
	}
	// Identical duplicates collapse to one region.
	dup := []core.ROI{{X: 0, Y: 0, W: 4, H: 4}, {X: 0, Y: 0, W: 4, H: 4}}
	out := SplitDisjoint(dup)
	if unionArea(out) != 16 {
		t.Errorf("duplicate rects: union area %d", unionArea(out))
	}
	assertDisjointCover(t, dup, out)
}

func assertDisjointCover(t *testing.T, in, out []core.ROI) {
	t.Helper()
	for i := range out {
		if out[i].W <= 0 || out[i].H <= 0 {
			t.Fatalf("empty output rect %+v", out[i])
		}
		for j := i + 1; j < len(out); j++ {
			if out[i].Overlaps(out[j]) {
				t.Fatalf("output rects %+v and %+v overlap", out[i], out[j])
			}
		}
	}
	if got, want := unionArea(out), unionArea(in); got != want {
		t.Fatalf("output covers %d pixels, union is %d", got, want)
	}
}

func TestAlignAllProducesAlignedDisjoint(t *testing.T) {
	in := []core.ROI{
		{X: 3, Y: 5, W: 13, H: 9},
		{X: 14, Y: 10, W: 20, H: 12},
	}
	out := AlignAll(in, 128, 128)
	if len(out) == 0 {
		t.Fatal("no aligned regions")
	}
	for i, r := range out {
		if err := r.Validate(128, 128); err != nil {
			t.Errorf("region %d: %v", i, err)
		}
		for j := i + 1; j < len(out); j++ {
			if r.Overlaps(out[j]) {
				t.Errorf("aligned regions %d and %d overlap", i, j)
			}
		}
	}
}

func iou(a core.ROI, x, y, w, h int) float64 {
	b := core.ROI{X: x, Y: y, W: w, H: h}
	inter, ok := a.Intersect(b)
	if !ok {
		return 0
	}
	ia := inter.Area()
	return float64(ia) / float64(a.Area()+b.Area()-ia)
}

func TestDetectFacesOnPortraits(t *testing.T) {
	g, err := dataset.NewGenerator(dataset.FERET, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector()
	hits := 0
	const n = 10
	for i := 0; i < n; i++ {
		item := g.Item(i)
		dets := d.DetectFaces(item.Image)
		for _, a := range item.Annotations {
			if a.Class != dataset.ClassFace {
				continue
			}
			for _, det := range dets {
				if iou(det.Rect, a.X, a.Y, a.W, a.H) > 0.3 {
					hits++
					break
				}
			}
		}
	}
	if hits < n*6/10 {
		t.Errorf("face detector found %d/%d portraits; too weak for the experiments", hits, n)
	}
}

func TestDetectTextOnPascal(t *testing.T) {
	g, err := dataset.NewGenerator(dataset.PASCAL, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector()
	textAnns, hits := 0, 0
	for i := 0; i < 10; i++ {
		item := g.Item(i)
		dets := d.DetectText(item.Image)
		for _, a := range item.Annotations {
			if a.Class != dataset.ClassText {
				continue
			}
			textAnns++
			for _, det := range dets {
				if iou(det.Rect, a.X, a.Y, a.W, a.H) > 0.2 {
					hits++
					break
				}
			}
		}
	}
	if textAnns == 0 {
		t.Fatal("no text annotations generated")
	}
	if hits < textAnns/2 {
		t.Errorf("text detector found %d/%d regions", hits, textAnns)
	}
}

func TestDetectObjectsFindsSomething(t *testing.T) {
	g, err := dataset.NewGenerator(dataset.PASCAL, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector()
	found := 0
	for i := 0; i < 5; i++ {
		if len(d.DetectObjects(g.Item(i).Image)) > 0 {
			found++
		}
	}
	if found < 3 {
		t.Errorf("object detector fired on %d/5 images", found)
	}
}

func TestRecommendProducesEncryptableRegions(t *testing.T) {
	g, err := dataset.NewGenerator(dataset.PASCAL, 6)
	if err != nil {
		t.Fatal(err)
	}
	item := g.Item(0)
	recs := NewDetector().Recommend(item.Image)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	for i, r := range recs {
		if err := r.Validate(item.Image.W(), item.Image.H()); err != nil {
			t.Errorf("recommendation %d not encryptable: %v", i, err)
		}
		for j := i + 1; j < len(recs); j++ {
			if r.Overlaps(recs[j]) {
				t.Errorf("recommendations %d and %d overlap", i, j)
			}
		}
	}
}

func TestDetectorsOnTinyImages(t *testing.T) {
	g, _ := dataset.NewGenerator(dataset.Profile{
		Name: "tiny", W: 64, H: 64, SampleCount: 1, FullCount: 1, Kind: dataset.KindObjects,
	}, 1)
	item := g.Item(0)
	d := NewDetector()
	// Must not panic on small inputs.
	_ = d.DetectAll(item.Image)
}
