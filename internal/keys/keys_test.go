package keys

import (
	"bytes"
	"testing"
)

func TestNewPairValid(t *testing.T) {
	p, err := NewPair()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if len(p.ID) != 32 {
		t.Errorf("ID length %d, want 32 hex chars", len(p.ID))
	}
	q, err := NewPair()
	if err != nil {
		t.Fatal(err)
	}
	if q.ID == p.ID {
		t.Error("two generated pairs share an ID")
	}
	if q.DC == p.DC && q.AC == p.AC {
		t.Error("two generated pairs share matrices")
	}
}

func TestNewPairDeterministic(t *testing.T) {
	a := NewPairDeterministic(7)
	b := NewPairDeterministic(7)
	c := NewPairDeterministic(8)
	if a.DC != b.DC || a.AC != b.AC || a.ID != b.ID {
		t.Error("same seed produced different pairs")
	}
	if a.DC == c.DC {
		t.Error("different seeds produced identical DC matrices")
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPairBinaryRoundTrip(t *testing.T) {
	p, err := NewPair()
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Pair
	if err := q.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if q.ID != p.ID || q.DC != p.DC || q.AC != p.AC {
		t.Error("binary round trip lost data")
	}
	if err := q.UnmarshalBinary(data[:10]); err == nil {
		t.Error("truncated data should fail")
	}
}

func TestMatrixValidate(t *testing.T) {
	var m Matrix
	if err := m.Validate(); err != nil {
		t.Errorf("zero matrix should be valid: %v", err)
	}
	m[5] = 2048
	if err := m.Validate(); err == nil {
		t.Error("entry 2048 should be invalid")
	}
	m[5] = -1
	if err := m.Validate(); err == nil {
		t.Error("negative entry should be invalid")
	}
}

func TestSealOpen(t *testing.T) {
	receiver, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := NewPair()
	p2, _ := NewPair()
	env, err := Seal(receiver.PublicKey(), []*Pair{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := receiver.Open(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d pairs, want 2", len(got))
	}
	byID := map[string]*Pair{got[0].ID: got[0], got[1].ID: got[1]}
	for _, want := range []*Pair{p1, p2} {
		g, ok := byID[want.ID]
		if !ok || g.DC != want.DC || g.AC != want.AC {
			t.Errorf("pair %s not recovered intact", want.ID)
		}
	}
}

func TestOpenWrongIdentityFails(t *testing.T) {
	alice, _ := NewIdentity()
	eve, _ := NewIdentity()
	p, _ := NewPair()
	env, err := Seal(alice.PublicKey(), []*Pair{p})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eve.Open(env); err == nil {
		t.Error("wrong identity opened the envelope")
	}
}

func TestOpenTamperedEnvelopeFails(t *testing.T) {
	alice, _ := NewIdentity()
	p, _ := NewPair()
	env, err := Seal(alice.PublicKey(), []*Pair{p})
	if err != nil {
		t.Fatal(err)
	}
	env.Ciphertext[0] ^= 0xff
	if _, err := alice.Open(env); err == nil {
		t.Error("tampered ciphertext accepted")
	}
}

func TestSealValidation(t *testing.T) {
	if _, err := Seal([]byte("short"), []*Pair{NewPairDeterministic(1)}); err == nil {
		t.Error("bad public key accepted")
	}
	alice, _ := NewIdentity()
	if _, err := Seal(alice.PublicKey(), nil); err == nil {
		t.Error("empty pair list accepted")
	}
}

func TestStoreGrantFlow(t *testing.T) {
	s := NewStore()
	p1, _ := NewPair()
	p2, _ := NewPair()
	if err := s.Add(p1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(p2); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(p1); err == nil {
		t.Error("duplicate add accepted")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}

	if err := s.Grant("bob", p1.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Grant("bob", "nonexistent"); err == nil {
		t.Error("grant of unknown pair accepted")
	}

	bob, _ := NewIdentity()
	env, err := s.SealFor("bob", bob.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := bob.Open(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].ID != p1.ID {
		t.Errorf("bob received %d pairs", len(pairs))
	}

	// Carol has no grants.
	carol, _ := NewIdentity()
	if _, err := s.SealFor("carol", carol.PublicKey()); err == nil {
		t.Error("ungranted receiver got an envelope")
	}

	// Revocation removes future access.
	s.Revoke("bob", p1.ID)
	if _, err := s.SealFor("bob", bob.PublicKey()); err == nil {
		t.Error("revoked receiver got an envelope")
	}
}

func TestStoreGet(t *testing.T) {
	s := NewStore()
	p, _ := NewPair()
	if err := s.Add(p); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(p.ID)
	if err != nil || got.ID != p.ID {
		t.Errorf("Get: %v, %v", got, err)
	}
	if _, err := s.Get("missing"); err == nil {
		t.Error("Get of missing pair succeeded")
	}
}

func TestPrivateSizeBytes(t *testing.T) {
	// One pair: 2 matrices x 64 entries x 11 bits = 1408 bits = 176 bytes,
	// plus the 16-byte ID.
	if got := PrivateSizeBytes(1); got != 192 {
		t.Errorf("PrivateSizeBytes(1) = %d, want 192", got)
	}
	if got := PrivateSizeBytes(10); got != 1920 {
		t.Errorf("PrivateSizeBytes(10) = %d, want 1920", got)
	}
	if got := PrivateSizeBytes(0); got != 0 {
		t.Errorf("PrivateSizeBytes(0) = %d, want 0", got)
	}
}

func TestPairMarshalRejectsBadID(t *testing.T) {
	p := NewPairDeterministic(3)
	p.ID = "not-hex"
	if _, err := p.MarshalBinary(); err == nil {
		t.Error("bad ID accepted")
	}
}

func TestEnvelopeDistinctNonces(t *testing.T) {
	alice, _ := NewIdentity()
	p, _ := NewPair()
	e1, err := Seal(alice.PublicKey(), []*Pair{p})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Seal(alice.PublicKey(), []*Pair{p})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(e1.Nonce, e2.Nonce) && bytes.Equal(e1.SenderPub, e2.SenderPub) {
		t.Error("two seals reused nonce and ephemeral key")
	}
}
