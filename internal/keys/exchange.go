package keys

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
)

// Identity is one participant's long-term X25519 key pair.
type Identity struct {
	priv *ecdh.PrivateKey
}

// NewIdentity generates a fresh X25519 identity.
func NewIdentity() (*Identity, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("keys: generate identity: %w", err)
	}
	return &Identity{priv: priv}, nil
}

// PublicKey returns the identity's public key bytes, shareable in the clear.
func (id *Identity) PublicKey() []byte {
	return id.priv.PublicKey().Bytes()
}

// Envelope is a sealed batch of matrix pairs in transit from sender to
// receiver over an insecure channel.
type Envelope struct {
	// SenderPub is the sender's ephemeral X25519 public key.
	SenderPub []byte `json:"senderPub"`
	// Nonce is the AES-GCM nonce.
	Nonce []byte `json:"nonce"`
	// Ciphertext is the sealed concatenation of serialized pairs.
	Ciphertext []byte `json:"ciphertext"`
}

// deriveKey computes the AES-256 key for a (shared secret, context) pair.
func deriveKey(shared []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("puppies/keys/v1"))
	h.Write(shared)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Seal encrypts matrix pairs to the receiver identified by its public key,
// using an ephemeral ECDH exchange (sender needs no long-term identity).
func Seal(receiverPub []byte, pairs []*Pair) (*Envelope, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("keys: no pairs to seal")
	}
	remote, err := ecdh.X25519().NewPublicKey(receiverPub)
	if err != nil {
		return nil, fmt.Errorf("keys: invalid receiver public key: %w", err)
	}
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("keys: ephemeral key: %w", err)
	}
	shared, err := eph.ECDH(remote)
	if err != nil {
		return nil, fmt.Errorf("keys: ECDH: %w", err)
	}
	key := deriveKey(shared)

	var plain []byte
	for _, p := range pairs {
		b, err := p.MarshalBinary()
		if err != nil {
			return nil, err
		}
		plain = append(plain, b...)
	}

	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("keys: nonce: %w", err)
	}
	return &Envelope{
		SenderPub:  eph.PublicKey().Bytes(),
		Nonce:      nonce,
		Ciphertext: gcm.Seal(nil, nonce, plain, nil),
	}, nil
}

// Open decrypts an envelope with the receiver's identity, returning the
// contained matrix pairs.
func (id *Identity) Open(env *Envelope) ([]*Pair, error) {
	remote, err := ecdh.X25519().NewPublicKey(env.SenderPub)
	if err != nil {
		return nil, fmt.Errorf("keys: invalid sender public key: %w", err)
	}
	shared, err := id.priv.ECDH(remote)
	if err != nil {
		return nil, fmt.Errorf("keys: ECDH: %w", err)
	}
	key := deriveKey(shared)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	plain, err := gcm.Open(nil, env.Nonce, env.Ciphertext, nil)
	if err != nil {
		return nil, fmt.Errorf("keys: open envelope: %w", err)
	}
	if len(plain)%pairWireLen != 0 {
		return nil, fmt.Errorf("keys: envelope payload length %d not a multiple of %d", len(plain), pairWireLen)
	}
	pairs := make([]*Pair, 0, len(plain)/pairWireLen)
	for off := 0; off < len(plain); off += pairWireLen {
		var p Pair
		if err := p.UnmarshalBinary(plain[off : off+pairWireLen]); err != nil {
			return nil, err
		}
		pairs = append(pairs, &p)
	}
	return pairs, nil
}

// Store is the image owner's local key store: matrix pairs by ID plus
// per-receiver grants (paper challenge C3, personalized privacy).
type Store struct {
	pairs  map[string]*Pair
	grants map[string]map[string]bool // receiver -> set of pair IDs
}

// NewStore returns an empty key store.
func NewStore() *Store {
	return &Store{
		pairs:  make(map[string]*Pair),
		grants: make(map[string]map[string]bool),
	}
}

// Add registers a pair in the store.
func (s *Store) Add(p *Pair) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, ok := s.pairs[p.ID]; ok {
		return fmt.Errorf("keys: pair %s already in store", p.ID)
	}
	s.pairs[p.ID] = p
	return nil
}

// Get returns the pair with the given ID.
func (s *Store) Get(id string) (*Pair, error) {
	p, ok := s.pairs[id]
	if !ok {
		return nil, fmt.Errorf("keys: pair %s not in store", id)
	}
	return p, nil
}

// Len returns the number of stored pairs.
func (s *Store) Len() int { return len(s.pairs) }

// Grant records that the named receiver may obtain the given pair IDs.
func (s *Store) Grant(receiver string, pairIDs ...string) error {
	for _, id := range pairIDs {
		if _, ok := s.pairs[id]; !ok {
			return fmt.Errorf("keys: cannot grant unknown pair %s", id)
		}
	}
	g := s.grants[receiver]
	if g == nil {
		g = make(map[string]bool)
		s.grants[receiver] = g
	}
	for _, id := range pairIDs {
		g[id] = true
	}
	return nil
}

// Revoke removes a receiver's grant for the given pair IDs. Revocation only
// affects future SealFor calls; keys already delivered cannot be recalled
// (paper §VI-C discusses this limit).
func (s *Store) Revoke(receiver string, pairIDs ...string) {
	g := s.grants[receiver]
	for _, id := range pairIDs {
		delete(g, id)
	}
}

// Granted returns the pair IDs the receiver currently holds grants for.
func (s *Store) Granted(receiver string) []string {
	var ids []string
	for id := range s.grants[receiver] {
		ids = append(ids, id)
	}
	return ids
}

// SealFor seals every pair granted to the receiver into an envelope for its
// public key. It returns an error if the receiver has no grants.
func (s *Store) SealFor(receiver string, receiverPub []byte) (*Envelope, error) {
	ids := s.Granted(receiver)
	if len(ids) == 0 {
		return nil, fmt.Errorf("keys: receiver %q has no granted pairs", receiver)
	}
	pairs := make([]*Pair, 0, len(ids))
	for _, id := range ids {
		pairs = append(pairs, s.pairs[id])
	}
	return Seal(receiverPub, pairs)
}
