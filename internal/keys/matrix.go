// Package keys implements the private-matrix key material of PuPPIeS and
// its distribution.
//
// A PuPPIeS region key is a pair of 8x8 private matrices (P_DC, P_AC) whose
// entries are uniform random values normalized to [0, 2047] (paper §IV-B and
// Lemma III.1). The image owner stores matrices locally (the "private part")
// and distributes them to authorized receivers over a secure channel; here
// the channel is X25519 ECDH key agreement plus AES-256-GCM sealing
// ("standard crypto method", paper §III-A).
package keys

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	mrand "math/rand"
)

// MatrixLen is the number of entries in a private matrix (8x8, vectorized).
const MatrixLen = 64

// EntryRange is the exclusive upper bound of matrix entries: entries are
// normalized to [0, EntryRange-1] per Lemma III.1.
const EntryRange = 2048

// EntryBits is the number of bits needed per matrix entry (11, paper §VI-A).
const EntryBits = 11

// Matrix is one vectorized 8x8 private matrix P' with entries in [0, 2047].
type Matrix [MatrixLen]int32

// Validate checks all entries are within the normalized range.
func (m *Matrix) Validate() error {
	for i, v := range m {
		if v < 0 || v >= EntryRange {
			return fmt.Errorf("keys: matrix entry %d = %d outside [0, %d)", i, v, EntryRange)
		}
	}
	return nil
}

// Pair is the (P_DC, P_AC) matrix pair used to perturb one or more regions
// (paper §IV-D): DC coefficients are perturbed from P_DC, AC coefficients
// from P_AC, which doubles the brute-force search space.
type Pair struct {
	// ID identifies the pair; it is public (receivers use it to select which
	// shared key decrypts which region).
	ID string
	// DC and AC are the private matrices. They are the secret.
	DC Matrix
	AC Matrix
}

// Validate checks the pair's structure.
func (p *Pair) Validate() error {
	if len(p.ID) == 0 {
		return fmt.Errorf("keys: pair has empty ID")
	}
	if err := p.DC.Validate(); err != nil {
		return fmt.Errorf("keys: DC: %w", err)
	}
	if err := p.AC.Validate(); err != nil {
		return fmt.Errorf("keys: AC: %w", err)
	}
	return nil
}

// NewPair generates a cryptographically random matrix pair.
func NewPair() (*Pair, error) {
	return newPairFrom(rand.Reader)
}

func newPairFrom(r io.Reader) (*Pair, error) {
	var idBytes [16]byte
	if _, err := io.ReadFull(r, idBytes[:]); err != nil {
		return nil, fmt.Errorf("keys: generate id: %w", err)
	}
	p := &Pair{ID: hex.EncodeToString(idBytes[:])}
	fill := func(m *Matrix) error {
		// Rejection-sampled uniform values in [0, 2048): 2048 divides 65536,
		// so a simple mask is exact.
		var buf [2 * MatrixLen]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return fmt.Errorf("keys: generate matrix: %w", err)
		}
		for i := 0; i < MatrixLen; i++ {
			v := binary.BigEndian.Uint16(buf[2*i:])
			m[i] = int32(v % EntryRange)
		}
		return nil
	}
	if err := fill(&p.DC); err != nil {
		return nil, err
	}
	if err := fill(&p.AC); err != nil {
		return nil, err
	}
	return p, nil
}

// NewPairDeterministic generates a pair from a fixed seed. It exists for
// reproducible benchmarks and tests only; production callers must use
// NewPair.
func NewPairDeterministic(seed int64) *Pair {
	rng := mrand.New(mrand.NewSource(seed))
	p := &Pair{ID: fmt.Sprintf("%032x", uint64(seed))}
	for i := 0; i < MatrixLen; i++ {
		p.DC[i] = int32(rng.Intn(EntryRange))
		p.AC[i] = int32(rng.Intn(EntryRange))
	}
	return p
}

// pairWireLen is the serialized pair length: 16-byte ID + 2 matrices of
// 64 uint16 entries.
const pairWireLen = 16 + 2*2*MatrixLen

// MarshalBinary serializes the pair (ID + both matrices, big-endian uint16
// entries).
func (p *Pair) MarshalBinary() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	idBytes, err := hex.DecodeString(p.ID)
	if err != nil || len(idBytes) != 16 {
		return nil, fmt.Errorf("keys: pair ID %q is not a 16-byte hex string", p.ID)
	}
	out := make([]byte, 0, pairWireLen)
	out = append(out, idBytes...)
	for _, m := range []*Matrix{&p.DC, &p.AC} {
		for _, v := range m {
			out = binary.BigEndian.AppendUint16(out, uint16(v))
		}
	}
	return out, nil
}

// UnmarshalBinary parses a serialized pair.
func (p *Pair) UnmarshalBinary(data []byte) error {
	if len(data) != pairWireLen {
		return fmt.Errorf("keys: pair wire length %d, want %d", len(data), pairWireLen)
	}
	p.ID = hex.EncodeToString(data[:16])
	off := 16
	for _, m := range []*Matrix{&p.DC, &p.AC} {
		for i := 0; i < MatrixLen; i++ {
			m[i] = int32(binary.BigEndian.Uint16(data[off:]))
			off += 2
		}
	}
	return p.Validate()
}

// PrivateSizeBytes returns the local storage cost of n matrix pairs: each
// pair is two 64-entry 11-bit matrices plus a 16-byte identifier.
func PrivateSizeBytes(nPairs int) int {
	bitsPerPair := 2 * MatrixLen * EntryBits
	return nPairs * (16 + (bitsPerPair+7)/8)
}

// PrivateSizeBytesMatrices returns the storage cost of n single private
// matrices — the x-axis unit of the paper's Fig. 11 ("number of private
// matrices", two per pair). Identifiers are amortized one per pair.
func PrivateSizeBytesMatrices(n int) int {
	matrixBytes := (MatrixLen*EntryBits + 7) / 8
	ids := (n + 1) / 2
	return n*matrixBytes + ids*16
}
