package searchidx

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randomSig draws a plausible post-normalization signature: cells around
// 128 with sigma 40, clamped to bytes — the same distribution Compute
// produces, so bucket occupancy in tests matches production.
func randomSig(rng *rand.Rand) Signature {
	var s Signature
	for i := range s {
		v := 128 + 40*rng.NormFloat64()
		switch {
		case v < 0:
			s[i] = 0
		case v > 255:
			s[i] = 255
		default:
			s[i] = byte(v)
		}
	}
	return s
}

// noisySig perturbs a signature with per-cell Gaussian noise — the model
// of recompression/transform drift used by the recall tests.
func noisySig(rng *rand.Rand, base Signature, sigma float64) Signature {
	var s Signature
	for i := range s {
		v := float64(base[i]) + sigma*rng.NormFloat64()
		switch {
		case v < 0:
			s[i] = 0
		case v > 255:
			s[i] = 255
		default:
			s[i] = byte(v)
		}
	}
	return s
}

func TestKernelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	slab := make([]byte, SigBytes*64)
	rng.Read(slab)
	for i := 0; i < 64; i++ {
		q := randomSig(rng)
		want := sadNaive(slab, i*SigBytes, &q)
		if got := sad64(slab, i*SigBytes, &q); got != want {
			t.Fatalf("sad64 = %d, naive = %d at %d", got, want, i)
		}
		if got := sad64Early(slab, i*SigBytes, &q, ^uint32(0)); got != want {
			t.Fatalf("sad64Early(no limit) = %d, naive = %d at %d", got, want, i)
		}
		// With the limit below the true distance the early path may stop
		// short, but must still report a value exceeding the limit.
		if want > 0 {
			if got := sad64Early(slab, i*SigBytes, &q, want-1); got <= want-1 {
				t.Fatalf("sad64Early(limit %d) = %d, want > limit", want-1, got)
			}
		}
	}
}

func TestDihedralVariantsAreClosedGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := randomSig(rng)
	vars := s.Variants()
	if vars[0] != s {
		t.Fatal("variant 0 is not the identity")
	}
	// All 8 variants are distinct for a generic signature, and every
	// variant's variant set is the same set (group closure) — which is what
	// makes query-side probing equivalent to canonicalization.
	set := map[Signature]bool{}
	for _, v := range vars {
		set[v] = true
	}
	if len(set) != 8 {
		t.Fatalf("expected 8 distinct variants, got %d", len(set))
	}
	for _, v := range vars {
		for _, vv := range v.Variants() {
			if !set[vv] {
				t.Fatal("dihedral variants are not closed under composition")
			}
		}
	}
}

func TestIndexAddLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ix := New()
	sigs := make([]Signature, 200)
	for i := range sigs {
		sigs[i] = randomSig(rng)
		ix.Add(fmt.Sprintf("id-%03d", i), sigs[i])
	}
	if ix.Len() != 200 {
		t.Fatalf("Len = %d, want 200", ix.Len())
	}
	for i := 0; i < 200; i += 17 {
		id := fmt.Sprintf("id-%03d", i)
		got, ok := ix.Get(id)
		if !ok || got != sigs[i] {
			t.Fatalf("Get(%s) = %v, %v", id, got, ok)
		}
		res := ix.Lookup(sigs[i], 3)
		if len(res) == 0 || res[0].ID != id || res[0].Distance != 0 {
			t.Fatalf("Lookup(%s) top-1 = %+v", id, res)
		}
	}
	// Replacing an ID must move it to the new signature's bucket.
	ns := randomSig(rng)
	ix.Add("id-000", ns)
	if ix.Len() != 200 {
		t.Fatalf("Len after replace = %d, want 200", ix.Len())
	}
	res := ix.Lookup(ns, 1)
	if len(res) != 1 || res[0].ID != "id-000" || res[0].Distance != 0 {
		t.Fatalf("Lookup after replace = %+v", res)
	}
}

func TestScanIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ix := New()
	type ref struct {
		id  string
		sig Signature
	}
	refs := make([]ref, 500)
	for i := range refs {
		refs[i] = ref{fmt.Sprintf("id-%04d", i), randomSig(rng)}
		ix.Add(refs[i].id, refs[i].sig)
	}
	for trial := 0; trial < 20; trial++ {
		q := randomSig(rng)
		got := ix.Scan(q, 10)
		// Brute-force reference over the raw signature list.
		best := make([]Result, 0, 10)
		for _, r := range refs {
			var d uint32
			for i := range q {
				d += absDiff(r.sig[i], q[i])
			}
			best = append(best, Result{ID: r.id, Distance: d})
		}
		top := newTopK(10)
		for _, r := range best {
			top.insert(r.ID, r.Distance)
		}
		want := top.results()
		if len(got) != len(want) {
			t.Fatalf("Scan returned %d results, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Distance != want[i].Distance {
				t.Fatalf("trial %d rank %d: Scan distance %d, want %d", trial, i, got[i].Distance, want[i].Distance)
			}
		}
	}
}

func TestLookupRecallClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix := New()
	const bases, variants = 500, 16
	baseSigs := make([]Signature, bases)
	ids := make([]string, 0, bases*variants)
	sigs := make([]Signature, 0, bases*variants)
	for b := range baseSigs {
		baseSigs[b] = randomSig(rng)
		for v := 0; v < variants; v++ {
			ids = append(ids, fmt.Sprintf("img-%04d-%02d", b, v))
			sigs = append(sigs, noisySig(rng, baseSigs[b], 4))
		}
	}
	ix.AddBatch(ids, sigs)
	if ix.Len() != bases*variants {
		t.Fatalf("Len = %d, want %d", ix.Len(), bases*variants)
	}
	const k = 10
	var recall float64
	const queries = 100
	for q := 0; q < queries; q++ {
		query := noisySig(rng, baseSigs[rng.Intn(bases)], 4)
		truth := ix.Scan(query, k)
		ann := ix.LookupPlain(query, k)
		kth := truth[len(truth)-1].Distance
		hits := 0
		for _, r := range ann {
			if r.Distance <= kth {
				hits++
			}
		}
		recall += float64(hits) / float64(k)
	}
	recall /= queries
	if recall < 0.9 {
		t.Fatalf("recall@10 = %.3f, want >= 0.9", recall)
	}
}

func TestConcurrentAddLookup(t *testing.T) {
	ix := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 200; i++ {
				sig := randomSig(rng)
				if w%2 == 0 {
					ix.Add(fmt.Sprintf("w%d-%03d", w, i), sig)
				} else {
					ix.Lookup(sig, 5)
					ix.Scan(sig, 5)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := ix.Len(); n != 4*200 {
		t.Fatalf("Len = %d, want %d", n, 4*200)
	}
}
