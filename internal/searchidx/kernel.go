package searchidx

// The inner distance kernel. Re-ranking touches a few hundred candidates
// per lookup and the exact scanner touches every stored signature, so the
// 64-byte SAD is the hottest loop in the subsystem. sad64 amortizes bounds
// checks to one per signature, unrolls by eight, and computes |a-b|
// branchlessly; sadNaive is the obvious loop it is benchmarked against
// (BenchmarkSADKernel vs BenchmarkSADNaive).

// sad64 returns the L1 distance between the 64-byte signature at a[off:]
// and q. The flat []byte layout (one contiguous slab per segment, 64-byte
// strides) keeps candidate re-ranking inside a handful of cache lines.
func sad64(a []byte, off int, q *Signature) uint32 {
	a = a[off : off+SigBytes : off+SigBytes]
	var s uint32
	for i := 0; i < SigBytes; i += 8 {
		s += absDiff(a[i], q[i]) +
			absDiff(a[i+1], q[i+1]) +
			absDiff(a[i+2], q[i+2]) +
			absDiff(a[i+3], q[i+3]) +
			absDiff(a[i+4], q[i+4]) +
			absDiff(a[i+5], q[i+5]) +
			absDiff(a[i+6], q[i+6]) +
			absDiff(a[i+7], q[i+7])
	}
	return s
}

// sad64Early is sad64 with an early exit: once the partial sum exceeds
// limit the candidate cannot enter the current top-k, so the remaining
// strides are skipped. Checked once per 16 bytes to keep the fast path
// branch-light.
func sad64Early(a []byte, off int, q *Signature, limit uint32) uint32 {
	a = a[off : off+SigBytes : off+SigBytes]
	var s uint32
	for i := 0; i < SigBytes; i += 16 {
		for j := i; j < i+16; j += 8 {
			s += absDiff(a[j], q[j]) +
				absDiff(a[j+1], q[j+1]) +
				absDiff(a[j+2], q[j+2]) +
				absDiff(a[j+3], q[j+3]) +
				absDiff(a[j+4], q[j+4]) +
				absDiff(a[j+5], q[j+5]) +
				absDiff(a[j+6], q[j+6]) +
				absDiff(a[j+7], q[j+7])
		}
		if s > limit {
			return s
		}
	}
	return s
}

// absDiff is branchless |a-b| for bytes: the sign of the 32-bit difference
// selects between d and -d with shifts and xors only.
func absDiff(a, b byte) uint32 {
	d := int32(a) - int32(b)
	m := d >> 31
	return uint32((d ^ m) - m)
}

// sadNaive is the reference kernel: per-byte branchy loop with a bounds
// check per access. Kept for differential tests and as the benchmark
// baseline the optimized kernel must beat.
func sadNaive(a []byte, off int, q *Signature) uint32 {
	var s uint32
	for i := 0; i < SigBytes; i++ {
		av, qv := a[off+i], q[i]
		if av > qv {
			s += uint32(av - qv)
		} else {
			s += uint32(qv - av)
		}
	}
	return s
}
