// Package searchidx is the catalog-scale encrypted-image search subsystem:
// compact coefficient-domain signatures, an in-memory bucketed/multi-probe
// ANN index with exact re-rank, and envelope-framed snapshot persistence.
//
// The PSP stores perturbed JPEGs it cannot view, yet the paper's usability
// argument rests on those images still being findable: PuPPIeS perturbs only
// the protected ROIs, so the unprotected background dominates the visual
// signature (mirroring Iida & Kiya's identification scheme for encrypted
// JPEGs). Signatures here are computed straight from entropy-decoded
// quantized DCT coefficients — no inverse transform, no pixel
// reconstruction — which makes upload-path indexing nearly free: the upload
// validator has already paid for the coefficient decode.
package searchidx

import (
	"encoding/json"
	"math"
	"sort"

	"puppies/internal/dct"
	"puppies/internal/jpegc"
)

// SigBytes is the signature size. 64 bytes = an 8x8 spatial grid of
// contrast-normalized luma statistics, one byte per cell — a million
// signatures occupy 64 MB flat, and the distance kernel runs over exactly
// one cache line.
const SigBytes = 64

// gridDim is the side of the spatial signature grid.
const gridDim = 8

// Signature is a compact perceptual signature of one stored image.
// Distances between signatures are L1 (sum of absolute differences).
type Signature [SigBytes]byte

// protectedWeight down-weights protected blocks in the grid accumulation:
// their features are DC-invariant but coarser, so the unprotected
// background should dominate ties — which is exactly the paper's Fig. 2
// argument for why partially protected images remain recognizable.
const protectedWeight = 0.25

// Border-fill taper thresholds: DC is coded level-shifted, so a flat black
// block dequantizes to -1024. Blocks whose mean sits below fillDCStart
// (mean luma < ~53) have their vote tapered linearly toward fillWeight at
// pure black.
const (
	fillDCStart = -600.0
	fillDCBlack = -1024.0
	fillWeight  = 0.0
)

// Rect is a pixel-space rectangle (matching core.ROI's JSON shape).
type Rect struct {
	X int `json:"x"`
	Y int `json:"y"`
	W int `json:"w"`
	H int `json:"h"`
}

// publicRegions is the lenient projection of a core.PublicData document:
// signature computation needs only the protected rectangles, and must keep
// working on documents from schemes (or format versions) it has never seen,
// so it deliberately avoids core's strict validation.
type publicRegions struct {
	Regions []struct {
		ROI Rect `json:"roi"`
	} `json:"regions"`
}

// ProtectedRects extracts the protected ROIs from an opaque public-parameter
// document. Undecodable or empty documents yield nil — every block is then
// treated as unprotected, which degrades matching between differently
// protected copies but never breaks self-matching (a stored image's own
// coefficients are stable whatever they encode).
func ProtectedRects(params []byte) []Rect {
	if len(params) == 0 {
		return nil
	}
	var pd publicRegions
	if err := json.Unmarshal(params, &pd); err != nil {
		return nil
	}
	out := make([]Rect, 0, len(pd.Regions))
	for _, r := range pd.Regions {
		if r.ROI.W > 0 && r.ROI.H > 0 {
			out = append(out, r.ROI)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Compute derives the signature from entropy-decoded coefficients. Only the
// luma component is read (chroma subsampling therefore cannot perturb the
// signature), and only O(1) coefficients per block:
//
//   - Unprotected blocks contribute their dequantized DC — the block's mean
//     luma, i.e. an 8x-downsampled grayscale thumbnail read directly from
//     the coefficient stream.
//   - Protected blocks (inside a params ROI) contribute the energy of the
//     low-frequency AC band instead: PuPPIeS perturbs DC hardest, while
//     low-AC structure survives several variants, so this feature is
//     DC-perturbation-invariant and lets two differently protected copies
//     of the same photo still meet. They are also down-weighted so the
//     unprotected background dominates.
//
// Each block's value is integrated into an 8x8 grid addressed in
// *normalized* image coordinates: the block's true pixel footprint (clipped
// to the visible W x H, so right/bottom padding blocks carry only the weight
// of their visible sliver) is intersected exactly with the grid-cell
// rectangles, and the value accumulates into every overlapped cell weighted
// by overlap area. Area integration — rather than point-splatting block
// centers — makes the grid a true box filter of the DC plane, so it is
// consistent across block-grid resolutions: scaling changes nothing,
// cropping only shifts mass smoothly between neighboring cells. The grid is
// then contrast-normalized (per-image z-score, quantized to bytes), which
// cancels recompression, quantization-table and brightness drift. Rotations
// and flips permute the grid; Lookup probes all eight dihedral orientations
// rather than trying to canonicalize (canonicalization is unstable for
// near-symmetric images).
func Compute(img *jpegc.Image, params []byte) Signature {
	var acc, wsum [SigBytes]float64
	if img == nil || len(img.Comps) == 0 {
		return quantize(&acc, &wsum)
	}
	computeComponent(img, 0, ProtectedRects(params), &acc, &wsum)
	return quantize(&acc, &wsum)
}

// computeComponent folds one component's DC plane into the grid
// accumulators. Only luma is folded in: chroma DC was measured to be a
// net loss — its per-image spread is tiny, so the contrast normalization
// amplifies it, and the extreme-saturation fill that pixel-domain
// transforms leave in chroma planes (zero samples, where neutral chroma
// is mid-scale) then swamps the border cells even under the darkness
// taper.
func computeComponent(img *jpegc.Image, ci int, rois []Rect, acc, wsum *[SigBytes]float64) {
	comp := &img.Comps[ci]
	bw, bh := comp.BlocksW, comp.BlocksH
	if bw <= 0 || bh <= 0 || len(comp.Blocks) < bw*bh {
		return
	}
	qdc := float64(comp.Quant[0])
	if qdc <= 0 {
		qdc = 1
	}
	// Grid cells per visible pixel of *this component's* plane: a
	// subsampled chroma plane covers the same normalized frame with fewer
	// blocks, and right/bottom padding blocks carry only the weight of
	// their visible sliver.
	pw, ph := comp.BlocksW*dct.BlockSize, comp.BlocksH*dct.BlockSize
	if img.W > 0 && img.H > 0 {
		cw, ch := img.CompDims(ci)
		if cw > 0 && cw < pw {
			pw = cw
		}
		if ch > 0 && ch < ph {
			ph = ch
		}
	}
	prot := protectedMask(scaleRects(rois, pw, ph, img.W, img.H), bw, bh)
	sx := gridDim / float64(pw)
	sy := gridDim / float64(ph)
	for by := 0; by < bh; by++ {
		y0 := float64(by*dct.BlockSize) * sy
		y1 := float64((by+1)*dct.BlockSize) * sy
		if lim := float64(ph) * sy; y1 > lim {
			y1 = lim
		}
		if y1 <= y0 {
			continue
		}
		for bx := 0; bx < bw; bx++ {
			x0 := float64(bx*dct.BlockSize) * sx
			x1 := float64((bx+1)*dct.BlockSize) * sx
			if lim := float64(pw) * sx; x1 > lim {
				x1 = lim
			}
			if x1 <= x0 {
				continue
			}
			b := &comp.Blocks[by*bw+bx]
			v := float64(b[0]) * qdc
			wt := 1.0
			switch {
			case prot != nil && prot[by*bw+bx]:
				v = lowACEnergy(b, &comp.Quant)
				wt = protectedWeight
			case v <= fillDCStart:
				// Border-fill taper (the letterbox heuristic of
				// perceptual-hash systems): blocks approaching pure black
				// are overwhelmingly synthetic fill — the zero wedges an
				// arbitrary-angle rotation leaves at the corners, partial
				// wedge blocks included — and letting them vote at full
				// strength would drag the border cells and the global
				// normalization. The weight ramps linearly from 1 at
				// fillDCStart down to fillWeight at pure black, so genuine
				// shadow detail keeps most of its vote.
				f := (v - fillDCBlack) / (fillDCStart - fillDCBlack)
				if f < fillWeight {
					f = fillWeight
				}
				wt = f
			}
			accumulate(acc, wsum, x0, y0, x1, y1, v, wt)
		}
	}
}

// scaleRects maps pixel-space ROIs from image coordinates onto a
// component plane's coordinates (identity when dimensions are unknown).
// Bounds are rounded outward so a partially covered block counts as
// protected.
func scaleRects(rois []Rect, pw, ph, iw, ih int) []Rect {
	if len(rois) == 0 || iw <= 0 || ih <= 0 || (pw == iw && ph == ih) {
		return rois
	}
	out := make([]Rect, len(rois))
	for i, r := range rois {
		x0 := r.X * pw / iw
		y0 := r.Y * ph / ih
		x1 := ((r.X+r.W)*pw + iw - 1) / iw
		y1 := ((r.Y+r.H)*ph + ih - 1) / ih
		out[i] = Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
	}
	return out
}

// protectedMask rasterizes pixel-space ROIs onto the luma block grid.
// Returns nil when nothing is protected so the hot loop skips the lookup.
func protectedMask(rois []Rect, bw, bh int) []bool {
	if len(rois) == 0 {
		return nil
	}
	mask := make([]bool, bw*bh)
	any := false
	for _, r := range rois {
		bx0 := r.X / dct.BlockSize
		by0 := r.Y / dct.BlockSize
		bx1 := (r.X + r.W + dct.BlockSize - 1) / dct.BlockSize
		by1 := (r.Y + r.H + dct.BlockSize - 1) / dct.BlockSize
		if bx0 < 0 {
			bx0 = 0
		}
		if by0 < 0 {
			by0 = 0
		}
		if bx1 > bw {
			bx1 = bw
		}
		if by1 > bh {
			by1 = bh
		}
		for by := by0; by < by1; by++ {
			for bx := bx0; bx < bx1; bx++ {
				mask[by*bw+bx] = true
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return mask
}

// lowACEnergy is the protected-block feature: RMS magnitude of the
// dequantized low-frequency AC band. The band is the 3x3 corner of the
// block minus DC — a set symmetric under transpose and sign-pattern flips,
// so the feature commutes with the lossless rotate/flip transforms (which
// permute and negate coefficients within that band).
func lowACEnergy(b *dct.Block, q *dct.QuantTable) float64 {
	var e float64
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if r == 0 && c == 0 {
				continue
			}
			i := r*dct.BlockSize + c
			d := float64(b[i]) * float64(q[i])
			e += d * d
		}
	}
	return math.Sqrt(e / 8)
}

// accumulate integrates one block's value over its grid-space footprint
// [x0,x1) x [y0,y1): every overlapped cell receives the value weighted by
// the exact overlap area (times wt). The soft area binning is what buys
// crop tolerance — shifting content by a fraction of a cell moves mass
// proportionally instead of flipping whole cells — and the exactness is what
// buys scale tolerance: any block-grid resolution integrates to the same
// box-filtered DC plane.
func accumulate(acc, wsum *[SigBytes]float64, x0, y0, x1, y1, v, wt float64) {
	cy0, cy1 := int(y0), int(math.Ceil(y1))
	cx0, cx1 := int(x0), int(math.Ceil(x1))
	if cy0 < 0 {
		cy0 = 0
	}
	if cx0 < 0 {
		cx0 = 0
	}
	if cy1 > gridDim {
		cy1 = gridDim
	}
	if cx1 > gridDim {
		cx1 = gridDim
	}
	for cy := cy0; cy < cy1; cy++ {
		oy := math.Min(y1, float64(cy+1)) - math.Max(y0, float64(cy))
		if oy <= 0 {
			continue
		}
		for cx := cx0; cx < cx1; cx++ {
			ox := math.Min(x1, float64(cx+1)) - math.Max(x0, float64(cx))
			if ox <= 0 {
				continue
			}
			w := ox * oy * wt
			acc[cy*gridDim+cx] += w * v
			wsum[cy*gridDim+cx] += w
		}
	}
}

// sigMean and sigDev place the z-scored cell values on the byte scale:
// byte = 128 + 40z clamped to [0,255], so ±3.2 sigma spans the range.
const (
	sigMean = 128
	sigDev  = 40
)

// quantize turns the grid accumulators into the final byte signature via
// per-image contrast normalization: center the cell values on their median
// and scale by their interquartile range (Gaussian-consistent: IQR/1.349
// estimates sigma), then quantize to bytes. Any per-image affine drift of
// the underlying values — brightness shifts, quantization-table rescaling
// under recompression — cancels exactly, and the *robust* location/scale
// pair keeps a handful of damaged cells (rotation fill, content a crop
// pushed out of frame) from rescaling the 60 cells that did not change,
// which plain mean/stddev normalization does.
func quantize(acc, wsum *[SigBytes]float64) Signature {
	var cells [SigBytes]float64
	live := make([]float64, 0, SigBytes)
	for i := range cells {
		if wsum[i] > 0 {
			cells[i] = acc[i] / wsum[i]
			live = append(live, cells[i])
		}
	}
	var sig Signature
	if len(live) == 0 {
		for i := range sig {
			sig[i] = sigMean
		}
		return sig
	}
	sort.Float64s(live)
	n := len(live)
	mean := live[n/2]
	dev := (live[(3*n)/4] - live[n/4]) / 1.349
	if dev < 1e-9 {
		for i := range sig {
			sig[i] = sigMean
		}
		return sig
	}
	for i := range cells {
		v := float64(sigMean)
		if wsum[i] > 0 {
			v = sigMean + sigDev*(cells[i]-mean)/dev
		}
		switch {
		case v < 0:
			sig[i] = 0
		case v > 255:
			sig[i] = 255
		default:
			sig[i] = byte(v + 0.5)
		}
	}
	return sig
}

// dihedral returns the k-th of the signature's eight dihedral variants
// (k in [0,8)): four rotations, then the four rotations of the horizontal
// mirror. Variant 0 is the identity. Querying all eight makes Lookup
// invariant to the lossless rotate90/180/270 and flip transforms without
// storing anything extra per image.
func (s *Signature) dihedral(k int) Signature {
	var out Signature
	for y := 0; y < gridDim; y++ {
		for x := 0; x < gridDim; x++ {
			sx, sy := x, y
			if k >= 4 {
				sx = gridDim - 1 - sx // horizontal mirror
			}
			switch k % 4 {
			case 1: // rotate 90° CW: source = rotate 90° CCW of dest
				sx, sy = sy, gridDim-1-sx
			case 2:
				sx, sy = gridDim-1-sx, gridDim-1-sy
			case 3:
				sx, sy = gridDim-1-sy, sx
			}
			out[y*gridDim+x] = s[sy*gridDim+sx]
		}
	}
	return out
}

// Variants returns all eight dihedral orientations of the signature,
// identity first.
func (s *Signature) Variants() [8]Signature {
	var out [8]Signature
	for k := 0; k < 8; k++ {
		out[k] = s.dihedral(k)
	}
	return out
}
