package searchidx

import (
	"sort"
	"sync"

	"puppies/internal/parallel"
)

// Index is the in-memory ANN structure: signatures live in flat contiguous
// per-segment slabs (64-byte strides, cache-line aligned reads), bucketed by
// a coarse-quantized 16-cell prefix of the signature. Lookups gather
// candidates from multi-probed buckets and re-rank them exactly with the
// SAD kernel; the segment RW locks mean concurrent lookups never block each
// other and an insert stalls only 1/numSegments of the key space.
type Index struct {
	segs [numSegments]segment

	// dir is the bucket directory, sharded by the high bits of the bucket
	// key (not by image ID like the slabs) so a probe touches one small map
	// per key instead of one map per segment per key — the map-access cost
	// of a lookup drops by numSegments x. Entries are packed (segment,
	// position) references into the slabs.
	dir [numDirShards]dirShard

	// persist, when non-nil, journals every Add for crash recovery between
	// snapshots (see snapshot.go).
	persist *persister
}

const (
	// numSegments shards the index by image ID. Power of two so the
	// segment pick is a mask.
	numSegments = 16

	// numDirShards shards the bucket directory by bucket-key high bits.
	numDirShards = 16

	// segShift packs a candidate reference as segment<<segShift | position;
	// 28 bits of position bound a segment at ~268M signatures, far past the
	// 10^6-scale design point.
	segShift = 28

	// keyCells is the number of key features folded into a bucket key: the
	// 8x8 grid collapsed to 4x4 quads (each the mean of a 2x2 cell block),
	// 1 bit each -> 16-bit key. Averaging quads instead of subsampling
	// single cells roughly halves the per-feature drift, which is what
	// keeps heavy transform drift (scale, crop, small-angle rotate) from
	// flipping key bits past the multi-probe horizon.
	keyCells = 16

	// maxProbes bounds the multi-probe expansion per lookup orientation.
	maxProbes = 96

	// probeDelta is how close (in byte units) a quad must sit to the
	// quantization boundary for the flipped bucket to be probed too. Quad
	// drift under the supported transforms is mostly within ~10 byte
	// units, so 20 covers the crossing risk band; cells beyond it flip
	// with low probability, and the greedy cheapest-first expansion
	// spends the probe budget on the likeliest crossings anyway.
	probeDelta = 20

	// orientationPrior is a flat distance penalty added to matches found
	// under a non-identity dihedral orientation of the query. Uploads are
	// overwhelmingly stored the way they are queried; a rotated/flipped
	// interpretation should only win when it is *clearly* closer, not on a
	// coin-flip margin between two near-tied neighbors. Genuine lossless
	// rotations still match easily — their variant distance sits far below
	// the inter-image floor — while the prior suppresses the dihedral
	// crosstalk near-ties that otherwise dominate the residual error of the
	// transform-invariance property.
	orientationPrior = 150

	// escalateDistance is the cascade boundary: when the probe phase finds
	// no candidate at least this close, the lookup escalates to an exact
	// pass. Near-duplicate matches (recompression, requantization, mild
	// scaling) land far below it, so the common path stays sublinear;
	// heavy re-framing transforms (crop, arbitrary-angle rotation) drift
	// past the bucket quantization and are recovered by the exact tier
	// instead of silently returning a wrong neighbor.
	escalateDistance = 700
)

// levelThreshold cuts a quad value into 2 levels. The signature is
// z-normalized around 128, so the median cut gives balanced occupancy; one
// boundary per quad keeps the crossing probability (and therefore the
// multi-probe burden) low.
const levelThreshold = 128

// quadValues collapses the 8x8 signature to its 4x4 quad means, the
// features the bucket key quantizes. Integer math: each quad is the exact
// mean of 4 cells, in [0,255].
func quadValues(s *Signature) [keyCells]int {
	var out [keyCells]int
	for qy := 0; qy < gridDim/2; qy++ {
		for qx := 0; qx < gridDim/2; qx++ {
			i := (2*qy)*gridDim + 2*qx
			sum := int(s[i]) + int(s[i+1]) + int(s[i+gridDim]) + int(s[i+gridDim+1])
			out[qy*(gridDim/2)+qx] = (sum + 2) / 4
		}
	}
	return out
}

func level(v int) uint32 {
	if v < levelThreshold {
		return 0
	}
	return 1
}

type segment struct {
	mu   sync.RWMutex
	ids  []string
	sigs []byte // SigBytes * len(ids), flat
	byID map[string]uint32
}

// dirShard is one lock's worth of the bucket directory. Lock order is
// always segment before directory: writers hold their segment lock across
// the directory update (so a replace's rebucketing is atomic), and lookups
// acquire every segment read-lock up front before touching the directory.
type dirShard struct {
	mu      sync.RWMutex
	buckets map[uint32][]uint32 // bucket key -> packed (segment, position)
}

func pack(si int, pos uint32) uint32 { return uint32(si)<<segShift | pos }

// New returns an empty index.
func New() *Index {
	ix := &Index{}
	for i := range ix.segs {
		ix.segs[i].byID = make(map[string]uint32)
	}
	for i := range ix.dir {
		ix.dir[i].buckets = make(map[uint32][]uint32)
	}
	return ix
}

// fnv32a hashes an ID onto a segment.
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

func segIdx(id string) int {
	return int(fnv32a(id) & (numSegments - 1))
}

func (ix *Index) dirFor(key uint32) *dirShard {
	return &ix.dir[key>>12&(numDirShards-1)]
}

// bucketKey folds the signature's quantized quad means into the 32-bit
// bucket key.
func bucketKey(s *Signature) uint32 {
	quads := quadValues(s)
	var key uint32
	for c, v := range quads {
		key |= level(v) << c
	}
	return key
}

// Add inserts (or replaces) one signature. Safe for concurrent use with
// lookups and other adds.
func (ix *Index) Add(id string, sig Signature) {
	ix.add(segIdx(id), id, sig)
	if ix.persist != nil {
		ix.persist.record(id, sig)
	}
}

func (ix *Index) add(si int, id string, sig Signature) {
	sg := &ix.segs[si]
	key := bucketKey(&sig)
	sg.mu.Lock()
	defer sg.mu.Unlock()
	if pos, ok := sg.byID[id]; ok {
		old := posSig(sg.sigs, int(pos))
		oldKey := bucketKey(old)
		copy(sg.sigs[int(pos)*SigBytes:], sig[:])
		if oldKey != key {
			ix.rebucket(pack(si, pos), oldKey, key)
		}
		return
	}
	pos := uint32(len(sg.ids))
	sg.ids = append(sg.ids, id)
	sg.sigs = append(sg.sigs, sig[:]...)
	sg.byID[id] = pos
	ds := ix.dirFor(key)
	ds.mu.Lock()
	ds.buckets[key] = append(ds.buckets[key], pack(si, pos))
	ds.mu.Unlock()
}

// rebucket moves a packed reference between bucket keys, taking both
// directory shard locks in index order so concurrent rebuckets can't
// deadlock.
func (ix *Index) rebucket(pk, oldKey, newKey uint32) {
	ia := int(oldKey >> 12 & (numDirShards - 1))
	ib := int(newKey >> 12 & (numDirShards - 1))
	a, b := &ix.dir[ia], &ix.dir[ib]
	if ia == ib {
		a.mu.Lock()
		a.buckets[oldKey] = removePos(a.buckets[oldKey], pk)
		a.buckets[newKey] = append(a.buckets[newKey], pk)
		a.mu.Unlock()
		return
	}
	lo, hi := a, b
	if ia > ib {
		lo, hi = hi, lo
	}
	lo.mu.Lock()
	hi.mu.Lock()
	a.buckets[oldKey] = removePos(a.buckets[oldKey], pk)
	b.buckets[newKey] = append(b.buckets[newKey], pk)
	hi.mu.Unlock()
	lo.mu.Unlock()
}

func removePos(list []uint32, pos uint32) []uint32 {
	for i, p := range list {
		if p == pos {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

func posSig(sigs []byte, pos int) *Signature {
	return (*Signature)(sigs[pos*SigBytes : pos*SigBytes+SigBytes])
}

// AddBatch bulk-loads many signatures, parallelizing across segments
// through internal/parallel (items are pre-grouped by segment so workers
// never contend on a lock).
func (ix *Index) AddBatch(ids []string, sigs []Signature) {
	if len(ids) != len(sigs) || len(ids) == 0 {
		return
	}
	groups := make([][]int, numSegments)
	for i, id := range ids {
		s := fnv32a(id) & (numSegments - 1)
		groups[s] = append(groups[s], i)
	}
	parallel.For(numSegments, 1, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			for _, i := range groups[s] {
				ix.add(s, ids[i], sigs[i])
			}
		}
	})
	if ix.persist != nil {
		for i := range ids {
			ix.persist.record(ids[i], sigs[i])
		}
	}
}

// Len reports the number of indexed signatures.
func (ix *Index) Len() int {
	n := 0
	for i := range ix.segs {
		sg := &ix.segs[i]
		sg.mu.RLock()
		n += len(sg.ids)
		sg.mu.RUnlock()
	}
	return n
}

// Get returns the stored signature for an ID.
func (ix *Index) Get(id string) (Signature, bool) {
	sg := &ix.segs[segIdx(id)]
	sg.mu.RLock()
	defer sg.mu.RUnlock()
	pos, ok := sg.byID[id]
	if !ok {
		return Signature{}, false
	}
	return *posSig(sg.sigs, int(pos)), true
}

// Result is one k-NN answer: the image ID and its L1 signature distance
// (0 = identical signature; the scale is bytes summed over 64 cells).
type Result struct {
	ID       string `json:"id"`
	Distance uint32 `json:"distance"`
}

// Lookup answers k-NN over the index for all eight dihedral orientations of
// the query — the serving-path entry point, invariant to the lossless
// rotate/flip transforms. It returns up to k results: once a confident
// match is in hand the probe phase does not escalate to a full scan just to
// pad the list with far-away candidates. Distance per candidate is the minimum over
// orientations, with non-identity orientations carrying orientationPrior
// so a rotated interpretation only wins when it is clearly closer.
func (ix *Index) Lookup(q Signature, k int) []Result {
	vars := q.Variants()
	return ix.lookup(vars[:], k)
}

// LookupPlain answers k-NN for the query's stored orientation only — the
// like-for-like counterpart of Scan used by benchmarks and recall
// measurement.
func (ix *Index) LookupPlain(q Signature, k int) []Result {
	return ix.lookup([]Signature{q}, k)
}

// lookup gathers bucket candidates for every query orientation and
// re-ranks them exactly. Buckets are disjoint per orientation (a stored
// signature lives in exactly one bucket), so duplicates only arise across
// orientations and are merged by keeping the minimum distance. When the
// probe phase yields no confident match (best distance above
// escalateDistance) the lookup escalates to the exact tier — a full SAD
// pass minimized over the query orientations — trading the sublinear path
// for guaranteed-correct neighbors on heavily transformed queries.
func (ix *Index) lookup(variants []Signature, k int) []Result {
	if k <= 0 {
		return nil
	}
	top := ix.probePhase(variants, k)
	if len(top.res) == 0 || top.res[0].Distance > escalateDistance {
		top = ix.exactPhase(variants, k)
	}
	return top.results()
}

// probePhase is the sublinear candidate tier of lookup. All segment read
// locks are taken up front (candidates from one bucket span segments), then
// each probed key costs a single directory access.
func (ix *Index) probePhase(variants []Signature, k int) *topK {
	top := newTopK(k)
	var seen map[uint32]uint32
	if len(variants) > 1 {
		seen = make(map[uint32]uint32, 64)
	}
	for si := range ix.segs {
		ix.segs[si].mu.RLock()
	}
	defer func() {
		for si := range ix.segs {
			ix.segs[si].mu.RUnlock()
		}
	}()
	for vi := range variants {
		q := &variants[vi]
		var prior uint32
		if vi > 0 {
			prior = orientationPrior
		}
		for _, key := range probeKeys(q) {
			ds := ix.dirFor(key)
			ds.mu.RLock()
			for _, pk := range ds.buckets[key] {
				sg := &ix.segs[pk>>segShift]
				pos := pk & (1<<segShift - 1)
				limit := top.limit()
				if limit != ^uint32(0) {
					if limit < prior {
						continue
					}
					limit -= prior
				}
				d := sad64Early(sg.sigs, int(pos)*SigBytes, q, limit)
				if d > limit {
					continue
				}
				d += prior
				if seen != nil {
					if prev, ok := seen[pk]; ok && prev <= d {
						continue
					}
					seen[pk] = d
					top.insertOrImprove(sg.ids[pos], d)
					continue
				}
				top.insert(sg.ids[pos], d)
			}
			ds.mu.RUnlock()
		}
	}
	return top
}

// exactPhase is the escalation tier: a full pass over every stored
// signature, each scored by its minimum distance over the query
// orientations.
func (ix *Index) exactPhase(variants []Signature, k int) *topK {
	top := newTopK(k)
	for si := range ix.segs {
		sg := &ix.segs[si]
		sg.mu.RLock()
		n := len(sg.ids)
		for pos := 0; pos < n; pos++ {
			limit := top.limit()
			best := ^uint32(0)
			for vi := range variants {
				lim := limit
				var prior uint32
				if vi > 0 {
					prior = orientationPrior
				}
				if lim != ^uint32(0) {
					if lim < prior {
						continue
					}
					lim -= prior
				}
				d := sad64Early(sg.sigs, pos*SigBytes, &variants[vi], lim)
				if d > lim {
					continue
				}
				if d+prior < best {
					best = d + prior
				}
			}
			if best <= limit {
				top.insert(sg.ids[pos], best)
			}
		}
		sg.mu.RUnlock()
	}
	return top
}

// Scan is the exact brute-force k-NN: a full SAD pass over every stored
// signature. It is the recall ground truth and the baseline the indexed
// lookup is gated against (>= 50x at 10^5).
func (ix *Index) Scan(q Signature, k int) []Result {
	if k <= 0 {
		return nil
	}
	top := newTopK(k)
	for si := range ix.segs {
		sg := &ix.segs[si]
		sg.mu.RLock()
		n := len(sg.ids)
		for pos := 0; pos < n; pos++ {
			limit := top.limit()
			d := sad64Early(sg.sigs, pos*SigBytes, &q, limit)
			if d <= limit {
				top.insert(sg.ids[pos], d)
			}
		}
		sg.mu.RUnlock()
	}
	return top.results()
}

// probeKeys returns the bucket keys to visit for one query orientation:
// the primary key first, then multi-probe variants flipping the key quads
// that sit within probeDelta of a quantization boundary, cheapest flips
// first, capped at maxProbes.
func probeKeys(s *Signature) []uint32 {
	quads := quadValues(s)
	var key uint32
	type flip struct {
		mask uint32
		cost int
	}
	var flips []flip
	for c, v := range quads {
		key |= level(v) << c
		cost := v - levelThreshold
		if cost < 0 {
			cost = levelThreshold - 1 - v
		}
		if cost <= probeDelta {
			flips = append(flips, flip{1 << c, cost})
		}
	}
	sort.Slice(flips, func(i, j int) bool { return flips[i].cost < flips[j].cost })
	keys := make([]uint32, 1, maxProbes)
	keys[0] = key
	for _, f := range flips {
		n := len(keys)
		for j := 0; j < n && len(keys) < maxProbes; j++ {
			keys = append(keys, keys[j]^f.mask)
		}
		if len(keys) >= maxProbes {
			break
		}
	}
	return keys
}

// topK is a bounded best-k accumulator: a sorted insertion slice, cheap for
// the small k of interactive search, with limit() feeding the SAD early
// exit.
type topK struct {
	k   int
	res []Result
}

func newTopK(k int) *topK {
	return &topK{k: k, res: make([]Result, 0, k)}
}

// limit is the worst distance that could still matter: the current k-th
// best once the set is full, otherwise unbounded.
func (t *topK) limit() uint32 {
	if len(t.res) < t.k {
		return ^uint32(0)
	}
	return t.res[len(t.res)-1].Distance
}

func (t *topK) insert(id string, d uint32) {
	if len(t.res) == t.k && d >= t.res[len(t.res)-1].Distance {
		return
	}
	i := sort.Search(len(t.res), func(i int) bool { return t.res[i].Distance > d })
	if len(t.res) < t.k {
		t.res = append(t.res, Result{})
	}
	copy(t.res[i+1:], t.res[i:])
	t.res[i] = Result{ID: id, Distance: d}
}

// insertOrImprove replaces an existing entry for id if the new distance is
// better; used on the multi-orientation path where the same image can
// surface from two orientations.
func (t *topK) insertOrImprove(id string, d uint32) {
	for i := range t.res {
		if t.res[i].ID == id {
			if d >= t.res[i].Distance {
				return
			}
			copy(t.res[i:], t.res[i+1:])
			t.res = t.res[:len(t.res)-1]
			break
		}
	}
	t.insert(id, d)
}

func (t *topK) results() []Result {
	return t.res
}
