package searchidx

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// knn collects k-NN answers for a set of queries — the unit of comparison
// for the restart tests: a reloaded index must answer bit-identically.
func knn(ix *Index, queries []Signature, k int) [][]Result {
	out := make([][]Result, len(queries))
	for i, q := range queries {
		out[i] = ix.Lookup(q, k)
	}
	return out
}

func TestSnapshotRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(21))
	ix, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	var queries []Signature
	for i := 0; i < 300; i++ {
		sig := randomSig(rng)
		ix.Add(fmt.Sprintf("id-%04d", i), sig)
		if i%30 == 0 {
			queries = append(queries, noisySig(rng, sig, 4))
		}
	}
	if err := ix.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Post-snapshot adds land only in the journal.
	for i := 300; i < 350; i++ {
		ix.Add(fmt.Sprintf("id-%04d", i), randomSig(rng))
	}
	want := knn(ix, queries, 10)
	if err := ix.persist.f.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}

	re, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if re.Len() != 350 {
		t.Fatalf("reloaded Len = %d, want 350", re.Len())
	}
	got := knn(re, queries, 10)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reloaded k-NN differs:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(22))
	ix, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sigs := make([]Signature, 5)
	for i := range sigs {
		sigs[i] = randomSig(rng)
		ix.Add(fmt.Sprintf("id-%d", i), sigs[i])
	}
	ix.persist.f.Close()
	// Simulate a crash mid-append: garbage after the valid prefix.
	jp := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("deadbeef torn-line-without-valid-")
	f.Close()

	re, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if re.Len() != 5 {
		t.Fatalf("Len = %d after torn tail, want the 5 intact entries", re.Len())
	}
	for i := range sigs {
		if got, ok := re.Get(fmt.Sprintf("id-%d", i)); !ok || got != sigs[i] {
			t.Fatalf("entry id-%d lost or damaged after torn-tail recovery", i)
		}
	}
}

func TestSnapshotCorruptIsError(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	ix.Add("only", randomSig(rng))
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	ix.persist.f.Close()
	sp := filepath.Join(dir, snapshotFile)
	data, err := os.ReadFile(sp)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(sp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir); err == nil {
		t.Fatal("OpenDir accepted a corrupt snapshot")
	}
}

func TestSnapshotRoundTripEmptyAndOrder(t *testing.T) {
	// Empty index round-trips.
	data, err := encodeSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := decodeSnapshot(data)
	if err != nil || len(entries) != 0 {
		t.Fatalf("empty snapshot round-trip: %v, %d entries", err, len(entries))
	}
	// Snapshots are byte-identical regardless of insertion order.
	rng := rand.New(rand.NewSource(24))
	sigs := []Signature{randomSig(rng), randomSig(rng), randomSig(rng)}
	a, b := New(), New()
	for i, s := range sigs {
		a.Add(fmt.Sprintf("id-%d", i), s)
	}
	for i := len(sigs) - 1; i >= 0; i-- {
		b.Add(fmt.Sprintf("id-%d", i), sigs[i])
	}
	ea, _ := encodeSnapshot(a.entries())
	eb, _ := encodeSnapshot(b.entries())
	if string(ea) != string(eb) {
		t.Fatal("snapshot bytes depend on insertion order")
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	n := compactEvery + 10
	for i := 0; i < n; i++ {
		ix.Add(fmt.Sprintf("id-%05d", i), randomSig(rng))
	}
	// Compaction must have folded the journal into the snapshot.
	if ix.persist.pending >= compactEvery {
		t.Fatalf("journal holds %d entries, compaction never ran", ix.persist.pending)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("snapshot missing after compaction: %v", err)
	}
	ix.persist.f.Close()
	re, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != n {
		t.Fatalf("reloaded Len = %d, want %d", re.Len(), n)
	}
}
