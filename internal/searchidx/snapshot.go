package searchidx

import (
	"bufio"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"puppies/internal/blobstore"
)

// Persistence: the index snapshots into a single blobstore-envelope file
// (magic, header CRC32C, payload CRC32C — the same self-verifying framing
// the durable image store uses) plus a line-oriented add journal for the
// increments between snapshots. Boot loads the snapshot, replays the
// journal's intact prefix (a torn tail from a crash is dropped, exactly
// like the blob store's journal), and re-attaches the journal for future
// adds. Every compactEvery journaled adds the journal is folded into a
// fresh snapshot written atomically (temp + fsync + rename + dir sync).

const (
	snapshotFile = "searchidx.snap"
	journalFile  = "searchidx.journal"

	// snapshotRecordID names the envelope record holding the snapshot.
	snapshotRecordID = "searchidx-snapshot"

	// snapVersion versions the snapshot payload inside the envelope.
	snapVersion = 1

	// compactEvery bounds journal growth: after this many journaled adds
	// the journal is folded into the snapshot.
	compactEvery = 4096

	// maxSnapIDLen bounds decoded ID lengths so a corrupt count or length
	// field cannot demand absurd allocations (the envelope CRC already
	// makes this vanishingly unlikely; the bound makes it impossible).
	maxSnapIDLen = 1 << 10
)

// ErrSnapshotCorrupt marks a snapshot payload that fails structural
// validation after the envelope checksums passed.
var ErrSnapshotCorrupt = errors.New("searchidx: corrupt snapshot")

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

type snapEntry struct {
	id  string
	sig Signature
}

// persister is the journal attachment: an append handle plus the count of
// journaled adds since the last snapshot.
type persister struct {
	mu      sync.Mutex
	dir     string
	f       *os.File
	pending int
	ix      *Index
}

// OpenDir loads (or initializes) a persistent index rooted at dir: the
// snapshot is decoded, the journal's intact prefix replayed, and the
// journal attached so subsequent Adds survive a crash. A missing dir or
// files mean an empty index; a corrupt snapshot is an error (the caller
// decides whether to rebuild).
func OpenDir(dir string) (*Index, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("searchidx: create dir: %w", err)
	}
	ix := New()
	snapPath := filepath.Join(dir, snapshotFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		entries, derr := decodeSnapshot(data)
		if derr != nil {
			return nil, fmt.Errorf("searchidx: snapshot %s: %w", snapPath, derr)
		}
		ids := make([]string, len(entries))
		sigs := make([]Signature, len(entries))
		for i, e := range entries {
			ids[i] = e.id
			sigs[i] = e.sig
		}
		ix.AddBatch(ids, sigs)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("searchidx: read snapshot: %w", err)
	}
	replayed := replayJournal(ix, filepath.Join(dir, journalFile))
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("searchidx: open journal: %w", err)
	}
	ix.persist = &persister{dir: dir, f: f, pending: replayed, ix: ix}
	return ix, nil
}

// Save forces a snapshot of the current contents and truncates the journal.
// No-op (nil) on a purely in-memory index.
func (ix *Index) Save() error {
	if ix.persist == nil {
		return nil
	}
	ix.persist.mu.Lock()
	defer ix.persist.mu.Unlock()
	return ix.persist.compactLocked()
}

// Close releases the journal handle after a final snapshot.
func (ix *Index) Close() error {
	if ix.persist == nil {
		return nil
	}
	ix.persist.mu.Lock()
	defer ix.persist.mu.Unlock()
	err := ix.persist.compactLocked()
	cerr := ix.persist.f.Close()
	ix.persist = nil
	if err != nil {
		return err
	}
	return cerr
}

// record journals one add and compacts when the journal has grown enough.
// Called outside any segment lock.
func (p *persister) record(id string, sig Signature) {
	p.mu.Lock()
	defer p.mu.Unlock()
	line := journalLine(id, sig)
	if _, err := p.f.WriteString(line); err != nil {
		return // journal is best-effort between snapshots
	}
	p.pending++
	if p.pending >= compactEvery {
		_ = p.compactLocked()
	}
}

// compactLocked writes a full snapshot atomically and truncates the
// journal. Caller holds p.mu.
func (p *persister) compactLocked() error {
	data, err := encodeSnapshot(p.ix.entries())
	if err != nil {
		return err
	}
	path := filepath.Join(p.dir, snapshotFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("searchidx: snapshot temp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("searchidx: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("searchidx: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("searchidx: snapshot rename: %w", err)
	}
	syncDir(p.dir)
	if err := p.f.Truncate(0); err != nil {
		return fmt.Errorf("searchidx: truncate journal: %w", err)
	}
	if _, err := p.f.Seek(0, 0); err != nil {
		return err
	}
	p.pending = 0
	return nil
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// entries snapshots the full index contents, sorted by ID so snapshots of
// equal contents are byte-identical regardless of insertion order.
func (ix *Index) entries() []snapEntry {
	var out []snapEntry
	for i := range ix.segs {
		sg := &ix.segs[i]
		sg.mu.RLock()
		for p := range sg.ids {
			out = append(out, snapEntry{id: sg.ids[p], sig: *posSig(sg.sigs, p)})
		}
		sg.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// encodeSnapshot serializes entries into an envelope-framed snapshot:
//
//	payload: u8 version, u32 count, then per entry u16 idLen, id, 64B sig
//
// wrapped in the blobstore v1 envelope (header + payload CRC32C).
func encodeSnapshot(entries []snapEntry) ([]byte, error) {
	size := 5
	for _, e := range entries {
		if len(e.id) == 0 || len(e.id) > maxSnapIDLen {
			return nil, fmt.Errorf("searchidx: id length %d out of range", len(e.id))
		}
		size += 2 + len(e.id) + SigBytes
	}
	payload := make([]byte, 0, size)
	payload = append(payload, snapVersion)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(entries)))
	for _, e := range entries {
		payload = binary.BigEndian.AppendUint16(payload, uint16(len(e.id)))
		payload = append(payload, e.id...)
		payload = append(payload, e.sig[:]...)
	}
	return blobstore.EncodeRecord(&blobstore.Record{ID: snapshotRecordID, JPEG: payload})
}

// decodeSnapshot parses and validates an envelope-framed snapshot. It never
// panics on arbitrary input (fuzzed by FuzzIndexSnapshot) and never
// allocates more than the input length implies.
func decodeSnapshot(data []byte) ([]snapEntry, error) {
	rec, err := blobstore.DecodeRecord(data)
	if err != nil {
		return nil, err
	}
	if rec.ID != snapshotRecordID {
		return nil, fmt.Errorf("%w: envelope record %q, want %q", ErrSnapshotCorrupt, rec.ID, snapshotRecordID)
	}
	payload := rec.JPEG
	if len(payload) < 5 {
		return nil, fmt.Errorf("%w: %d-byte payload", ErrSnapshotCorrupt, len(payload))
	}
	if payload[0] != snapVersion {
		return nil, fmt.Errorf("%w: payload version %d (this build reads %d)", ErrSnapshotCorrupt, payload[0], snapVersion)
	}
	count := int(binary.BigEndian.Uint32(payload[1:5]))
	// Each entry occupies at least 2+1+SigBytes bytes, so an honest count
	// is bounded by the payload size.
	if count < 0 || count > len(payload)/(3+SigBytes) {
		return nil, fmt.Errorf("%w: implausible entry count %d for %d bytes", ErrSnapshotCorrupt, count, len(payload))
	}
	off := 5
	out := make([]snapEntry, 0, count)
	for i := 0; i < count; i++ {
		if off+2 > len(payload) {
			return nil, fmt.Errorf("%w: truncated at entry %d", ErrSnapshotCorrupt, i)
		}
		idLen := int(binary.BigEndian.Uint16(payload[off : off+2]))
		off += 2
		if idLen == 0 || idLen > maxSnapIDLen || off+idLen+SigBytes > len(payload) {
			return nil, fmt.Errorf("%w: entry %d id length %d", ErrSnapshotCorrupt, i, idLen)
		}
		var e snapEntry
		e.id = string(payload[off : off+idLen])
		off += idLen
		copy(e.sig[:], payload[off:off+SigBytes])
		off += SigBytes
		out = append(out, e)
	}
	if off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(payload)-off)
	}
	return out, nil
}

// journalLine formats one add: CRC32C over "id sig", then the fields.
// IDs never contain spaces (the server validates them), so the line is
// splittable; the CRC catches torn or bit-flipped tails on replay.
func journalLine(id string, sig Signature) string {
	b64 := base64.RawStdEncoding.EncodeToString(sig[:])
	sum := crc32.Checksum([]byte(id+" "+b64), snapCRC)
	return fmt.Sprintf("%08x %s %s\n", sum, id, b64)
}

// parseJournalLine inverts journalLine, rejecting any damage.
func parseJournalLine(line string) (string, Signature, bool) {
	var sig Signature
	parts := strings.Split(line, " ")
	if len(parts) != 3 || len(parts[0]) != 8 {
		return "", sig, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(parts[0], "%08x", &sum); err != nil {
		return "", sig, false
	}
	if crc32.Checksum([]byte(parts[1]+" "+parts[2]), snapCRC) != sum {
		return "", sig, false
	}
	raw, err := base64.RawStdEncoding.DecodeString(parts[2])
	if err != nil || len(raw) != SigBytes || len(parts[1]) == 0 {
		return "", sig, false
	}
	copy(sig[:], raw)
	return parts[1], sig, true
}

// replayJournal applies the journal's intact prefix and reports how many
// entries it held. A corrupt line ends replay: everything after a torn
// write is untrusted, mirroring the blob store's recovery rule.
func replayJournal(ix *Index, path string) int {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 4096), 1<<20)
	for sc.Scan() {
		id, sig, ok := parseJournalLine(sc.Text())
		if !ok {
			break
		}
		ix.add(segIdx(id), id, sig)
		n++
	}
	return n
}
