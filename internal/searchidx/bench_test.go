package searchidx

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// Benchmarks for BENCH_PR9.json. The headline rows and their gates
// (Makefile search-gate / bench-compare):
//
//	BenchmarkSearchLookup10k/100k/1M   indexed k-NN, ns/op + p50-ns/p99-ns
//	BenchmarkSearchScan100k            exact brute-force baseline
//	BenchmarkSearchSLO                 constants row: the SLO thresholds
//
//	BenchmarkSearchScan100k/BenchmarkSearchLookup100k >= 50   (ns/op)
//	BenchmarkSearchLookup100k/BenchmarkSearchSLO      >= 1    (recall-k10)
//	BenchmarkSearchSLO/BenchmarkSearchLookup100k      >= 1    (p99-ns)
//
// The corpus is synthetic and clustered: groups of sigma-4 noisy copies
// around random base signatures, queried with fresh noisy copies of a base.
// That is the near-duplicate regime the index serves (recompressed and
// transformed copies of a stored image, per the invariance tests): the k
// nearest neighbors are the cluster members, far below the inter-image
// distance floor, and recall@10 measures whether the probe set finds them.

// benchIndexes caches built indexes across -count runs and sub-benchmarks;
// a 10^6 build is far too expensive to repeat per run.
var benchIndexes = map[int]*benchCorpus{}

type benchCorpus struct {
	ix      *Index
	queries []Signature
}

const (
	benchQueries     = 512
	benchClusterSize = 16
	benchSigma       = 4
)

func corpusFor(b *testing.B, n int) *benchCorpus {
	b.Helper()
	if c, ok := benchIndexes[n]; ok {
		return c
	}
	rng := rand.New(rand.NewSource(int64(7 + n)))
	bases := make([]Signature, n/benchClusterSize)
	for i := range bases {
		bases[i] = randomSig(rng)
	}
	ids := make([]string, n)
	sigs := make([]Signature, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("b-%07d", i)
		sigs[i] = noisySig(rng, bases[i/benchClusterSize], benchSigma)
	}
	ix := New()
	ix.AddBatch(ids, sigs)
	c := &benchCorpus{ix: ix, queries: make([]Signature, benchQueries)}
	for i := range c.queries {
		c.queries[i] = noisySig(rng, bases[rng.Intn(len(bases))], benchSigma)
	}
	benchIndexes[n] = c
	return c
}

// benchmarkLookup measures per-query latency and reports the p50/p99
// quantiles alongside the standard ns/op.
func benchmarkLookup(b *testing.B, n int) {
	c := corpusFor(b, n)
	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		_ = c.ix.LookupPlain(c.queries[i%len(c.queries)], 10)
		durs = append(durs, time.Since(t0))
	}
	b.StopTimer()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	q := func(p float64) float64 {
		i := int(p * float64(len(durs)-1))
		return float64(durs[i])
	}
	b.ReportMetric(q(0.50), "p50-ns")
	b.ReportMetric(q(0.99), "p99-ns")
	if n == 100_000 {
		b.ReportMetric(measureRecall(c, 10, 200), "recall-k10")
	}
}

// measureRecall computes recall@k of the indexed lookup against the exact
// scanner over m held-out queries, counting ties at the k-th distance as
// acceptable answers (both orders are correct k-NN sets).
func measureRecall(c *benchCorpus, k, m int) float64 {
	hits, total := 0, 0
	for i := 0; i < m; i++ {
		q := c.queries[i%len(c.queries)]
		want := c.ix.Scan(q, k)
		got := c.ix.LookupPlain(q, k)
		if len(want) == 0 {
			continue
		}
		kth := want[len(want)-1].Distance
		ok := make(map[string]bool, len(want))
		for _, r := range want {
			ok[r.ID] = true
		}
		for _, r := range got {
			total++
			if ok[r.ID] || r.Distance <= kth {
				hits++
			}
		}
		total += len(want) - len(got)
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

func BenchmarkSearchLookup10k(b *testing.B)  { benchmarkLookup(b, 10_000) }
func BenchmarkSearchLookup100k(b *testing.B) { benchmarkLookup(b, 100_000) }
func BenchmarkSearchLookup1M(b *testing.B)   { benchmarkLookup(b, 1_000_000) }

// BenchmarkSearchScan100k is the brute-force baseline the indexed lookup is
// gated 50x against.
func BenchmarkSearchScan100k(b *testing.B) {
	c := corpusFor(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.ix.Scan(c.queries[i%len(c.queries)], 10)
	}
}

// BenchmarkSearchBuild100k measures bulk index construction (AddBatch
// through internal/parallel) and reports build throughput.
func BenchmarkSearchBuild100k(b *testing.B) {
	const n = 100_000
	rng := rand.New(rand.NewSource(11))
	ids := make([]string, n)
	sigs := make([]Signature, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("b-%07d", i)
		sigs[i] = randomSig(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := New()
		ix.AddBatch(ids, sigs)
	}
	b.StopTimer()
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "sigs/s")
}

// BenchmarkSADKernel vs BenchmarkSADNaive: the optimized 64-byte SAD
// against the obvious loop it replaced.
func benchmarkSAD(b *testing.B, f func(a []byte, off int, q *Signature) uint32) {
	rng := rand.New(rand.NewSource(13))
	const lanes = 1024
	slab := make([]byte, lanes*SigBytes)
	rng.Read(slab)
	q := randomSig(rng)
	b.SetBytes(SigBytes)
	b.ResetTimer()
	var s uint32
	for i := 0; i < b.N; i++ {
		s += f(slab, (i%lanes)*SigBytes, &q)
	}
	sink = s
}

var sink uint32

func BenchmarkSADKernel(b *testing.B) { benchmarkSAD(b, sad64) }
func BenchmarkSADNaive(b *testing.B)  { benchmarkSAD(b, sadNaive) }

// BenchmarkSearchSLO is a constants row: it performs no work and only
// publishes the SLO thresholds, so benchfmt ratio gates can assert
// measured-vs-threshold from a single report (p99 under 1ms at 10^5,
// recall@10 at least 0.9).
func BenchmarkSearchSLO(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
	b.ReportMetric(1e6, "p99-ns")
	b.ReportMetric(0.9, "recall-k10")
}
