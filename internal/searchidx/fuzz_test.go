package searchidx

import (
	"bytes"
	"math/rand"
	"testing"

	"puppies/internal/dct"
	"puppies/internal/jpegc"
)

// FuzzSignature exercises the signature codec and computation against
// arbitrary input: journal lines must round-trip or be rejected (never
// panic, never alias), and Compute must be total and deterministic over
// arbitrary coefficient content and arbitrary params documents.
func FuzzSignature(f *testing.F) {
	f.Add([]byte("seed"), []byte(`{"regions":[{"roi":{"x":0,"y":0,"w":16,"h":16}}]}`))
	f.Add([]byte{0xff, 0x00, 0x80}, []byte(`not json`))
	var sig Signature
	for i := range sig {
		sig[i] = byte(i * 4)
	}
	f.Add([]byte(journalLine("some-id", sig)), []byte(`{}`))
	f.Fuzz(func(t *testing.T, line, params []byte) {
		// Codec: parse arbitrary bytes as a journal line; an accepted line
		// must re-encode to the identical text.
		text := string(line)
		if n := len(text); n > 0 && text[n-1] == '\n' {
			text = text[:n-1]
		}
		if id, got, ok := parseJournalLine(text); ok {
			if re := journalLine(id, got); re != text+"\n" {
				t.Fatalf("journal line not canonical:\n in %q\nout %q", text, re)
			}
		}
		// Computation: build a small coefficient image from the fuzz bytes
		// and require Compute to be total and deterministic.
		img := imageFromFuzz(line)
		s1 := Compute(img, params)
		s2 := Compute(img, params)
		if s1 != s2 {
			t.Fatal("Compute is not deterministic")
		}
		// Protected rects from arbitrary params must never panic and the
		// result must be reusable.
		_ = ProtectedRects(params)
	})
}

// imageFromFuzz deterministically derives a small coefficient image from
// fuzz bytes, covering odd grids and extreme coefficient values.
func imageFromFuzz(data []byte) *jpegc.Image {
	rng := rand.New(rand.NewSource(int64(len(data)) + 1))
	bw := 1 + len(data)%7
	bh := 1 + (len(data)/3)%5
	comp := jpegc.Component{BlocksW: bw, BlocksH: bh, Blocks: make([]dct.Block, bw*bh)}
	for i := range comp.Quant {
		comp.Quant[i] = uint16(1 + rng.Intn(64))
	}
	for i := range comp.Blocks {
		for c := range comp.Blocks[i] {
			if len(data) > 0 {
				comp.Blocks[i][c] = int32(int8(data[(i*64+c)%len(data)])) * 9
			}
		}
	}
	return &jpegc.Image{W: bw * 8, H: bh * 8, Comps: []jpegc.Component{comp}}
}

// FuzzIndexSnapshot hardens the snapshot decoder: arbitrary bytes must be
// cleanly rejected or decoded, and a successful decode must re-encode to a
// decodable equivalent (envelope framing, counts, and lengths all agree).
func FuzzIndexSnapshot(f *testing.F) {
	rng := rand.New(rand.NewSource(31))
	var entries []snapEntry
	for i := 0; i < 3; i++ {
		entries = append(entries, snapEntry{id: string(rune('a' + i)), sig: randomSig(rng)})
	}
	if seed, err := encodeSnapshot(entries); err == nil {
		f.Add(seed)
		// A truncated and a bit-flipped valid snapshot.
		f.Add(seed[:len(seed)-3])
		flip := bytes.Clone(seed)
		flip[len(flip)/3] ^= 1
		f.Add(flip)
	}
	f.Add([]byte("PSPB"))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		re, err := encodeSnapshot(entries)
		if err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
		back, err := decodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("entry count changed across round-trip: %d != %d", len(back), len(entries))
		}
		for i := range back {
			if back[i].id != entries[i].id || back[i].sig != entries[i].sig {
				t.Fatalf("entry %d changed across round-trip", i)
			}
		}
	})
}
