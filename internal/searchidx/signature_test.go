package searchidx

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"puppies/internal/dataset"
	"puppies/internal/dct"
	"puppies/internal/jpegc"
	"puppies/internal/parallel"
	"puppies/internal/transform"
)

// corpusSize satisfies the acceptance bar: the transform property test
// runs on a >= 500-image corpus.
const corpusSize = 500

// testCorpus generates corpusSize distinct coefficient images (small
// resolution keeps the full transform sweep fast; the signature is
// resolution-normalized so the size is immaterial to what is being tested).
func testCorpus(t testing.TB) []*jpegc.Image {
	t.Helper()
	profile := dataset.PASCAL
	profile.W, profile.H = 336, 224
	gen, err := dataset.NewGenerator(profile, 99)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	imgs := make([]*jpegc.Image, corpusSize)
	parallel.For(corpusSize, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			item := gen.Item(i)
			img, err := jpegc.FromPlanar(item.Image, jpegc.Options{Quality: 85})
			if err != nil {
				panic(fmt.Sprintf("FromPlanar item %d: %v", i, err))
			}
			imgs[i] = img
		}
	})
	return imgs
}

// corpusID names image i in the index.
func corpusID(i int) string { return fmt.Sprintf("corpus-%04d", i) }

// transformSweep is every operation in the transform library with
// representative parameters: the invariance set the signature is designed
// for. Crop is modest (the paper's PSPs crop for layout, not to excise the
// subject); rotate covers both the lossless right angles and a small
// arbitrary angle.
func transformSweep() []transform.Spec {
	return []transform.Spec{
		{Op: transform.OpNone},
		{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5},
		{Op: transform.OpCrop, X: 24, Y: 12, W: 288, H: 200},
		{Op: transform.OpRotate90},
		{Op: transform.OpRotate180},
		{Op: transform.OpRotate270},
		{Op: transform.OpFlipH},
		{Op: transform.OpFlipV},
		{Op: transform.OpRotate, Angle: 3},
		{Op: transform.OpFilter, Kernel: "gaussian3"},
		{Op: transform.OpCompress, Quality: 60},
	}
}

// TestSignatureTransformInvariance is the acceptance property: for every
// transform in the library, the transformed image's signature must retrieve
// the original as top-1 out of the 500-image corpus.
func TestSignatureTransformInvariance(t *testing.T) {
	imgs := testCorpus(t)
	ix := New()
	for i, img := range imgs {
		ix.Add(corpusID(i), Compute(img, nil))
	}
	specs := transformSweep()
	type miss struct {
		img  int
		spec transform.Spec
		got  []Result
	}
	misses := parallel.Map(len(imgs), 8, func(lo, hi int) []miss {
		var out []miss
		for i := lo; i < hi; i++ {
			for _, spec := range specs {
				timg, err := transform.Apply(imgs[i], spec)
				if err != nil {
					panic(fmt.Sprintf("transform %s on image %d: %v", spec.Op, i, err))
				}
				res := ix.Lookup(Compute(timg, nil), 1)
				if len(res) != 1 || res[0].ID != corpusID(i) {
					out = append(out, miss{img: i, spec: spec, got: res})
				}
			}
		}
		return out
	})
	total := 0
	for _, chunk := range misses {
		for _, m := range chunk {
			total++
			if total <= 10 {
				t.Errorf("image %d under %s%+v: top-1 = %+v, want %s",
					m.img, m.spec.Op, m.spec, m.got, corpusID(m.img))
			}
		}
	}
	if total > 0 {
		t.Fatalf("%d/%d transform queries missed top-1", total, len(imgs)*len(specs))
	}
}

// TestSignatureRecompressionRoundTrip checks stability across a full
// encode/decode cycle (entropy coding plus fresh optimized tables), not
// just the coefficient-domain requantization op.
func TestSignatureRecompressionRoundTrip(t *testing.T) {
	imgs := testCorpus(t)
	ix := New()
	for i, img := range imgs {
		ix.Add(corpusID(i), Compute(img, nil))
	}
	for i := 0; i < len(imgs); i += 7 {
		var buf bytes.Buffer
		if err := imgs[i].Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
		dec, err := jpegc.Decode(&buf)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		res := ix.Lookup(Compute(dec, nil), 1)
		if len(res) != 1 || res[0].ID != corpusID(i) {
			t.Fatalf("round-tripped image %d: top-1 = %+v", i, res)
		}
	}
}

// protectDC simulates a PuPPIeS-style protection pass: DC coefficients
// inside the ROI's luma blocks are replaced with seeded random values (the
// dominant effect of the paper's DC perturbation). Two different seeds
// model the same photo protected under two different keys.
func protectDC(img *jpegc.Image, roi Rect, seed int64) *jpegc.Image {
	out := &jpegc.Image{W: img.W, H: img.H, Comps: make([]jpegc.Component, len(img.Comps))}
	for i := range img.Comps {
		out.Comps[i] = img.Comps[i].Clone()
	}
	rng := rand.New(rand.NewSource(seed))
	comp := &out.Comps[0]
	bx0, by0 := roi.X/dct.BlockSize, roi.Y/dct.BlockSize
	bx1 := (roi.X + roi.W + dct.BlockSize - 1) / dct.BlockSize
	by1 := (roi.Y + roi.H + dct.BlockSize - 1) / dct.BlockSize
	for by := by0; by < by1 && by < comp.BlocksH; by++ {
		for bx := bx0; bx < bx1 && bx < comp.BlocksW; bx++ {
			comp.Block(bx, by)[0] = int32(rng.Intn(1024) - 512)
		}
	}
	return out
}

// TestSignatureProtectedInvariance: two copies of the same photo protected
// under different keys (different DC garbage in the ROI) must still match
// each other top-1, because protected blocks contribute only DC-invariant
// low-AC features. Without the params-aware weighting the perturbed DC
// would dominate the ROI cells and the copies would drift apart.
func TestSignatureProtectedInvariance(t *testing.T) {
	imgs := testCorpus(t)
	roi := Rect{X: 96, Y: 48, W: 128, H: 128}
	params, err := json.Marshal(map[string]interface{}{
		"regions": []map[string]interface{}{{"roi": roi}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := New()
	for i, img := range imgs {
		// Index the key-A protected copy of every image.
		ix.Add(corpusID(i), Compute(protectDC(img, roi, int64(1000+i)), params))
	}
	for i := 0; i < len(imgs); i += 11 {
		// Query with the key-B protected copy.
		q := Compute(protectDC(imgs[i], roi, int64(2000+i)), params)
		res := ix.Lookup(q, 1)
		if len(res) != 1 || res[0].ID != corpusID(i) {
			t.Fatalf("protected copy of image %d: top-1 = %+v", i, res)
		}
	}
}

func TestProtectedRects(t *testing.T) {
	if got := ProtectedRects(nil); got != nil {
		t.Fatalf("nil params -> %v", got)
	}
	if got := ProtectedRects([]byte("not json")); got != nil {
		t.Fatalf("bad params -> %v", got)
	}
	doc := []byte(`{"w":100,"h":80,"regions":[{"roi":{"x":8,"y":8,"w":16,"h":24}},{"roi":{"x":0,"y":0,"w":0,"h":0}}]}`)
	got := ProtectedRects(doc)
	if len(got) != 1 || got[0] != (Rect{X: 8, Y: 8, W: 16, H: 24}) {
		t.Fatalf("ProtectedRects = %+v", got)
	}
}
