package faults

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	mrand "math/rand"
)

// LinkMode describes how a network link between the caller and one host is
// failing. A Partition models per-host link state, which is what cluster
// tests need: a gateway talks to N shards over N independent links, and a
// real-world partition takes out some links while leaving others intact.
type LinkMode int

const (
	// LinkHealthy passes traffic through untouched.
	LinkHealthy LinkMode = iota
	// LinkBlackhole is a symmetric partition as routers actually produce
	// it: the request vanishes and the caller hangs until its context
	// expires. Callers without deadlines hang forever, exactly like real
	// blackholed TCP — pair this mode with per-attempt timeouts.
	LinkBlackhole
	// LinkUnreachable is a symmetric partition with fast failure: the
	// request is never delivered and the caller sees an immediate
	// connection reset. The server does no work.
	LinkUnreachable
	// LinkDropReplies is the asymmetric partition: the request is
	// delivered and the server fully executes it (side effects are real),
	// but the response is dropped and the caller sees a connection reset.
	// This is the mode that makes replica divergence observable.
	LinkDropReplies
)

func (m LinkMode) String() string {
	switch m {
	case LinkHealthy:
		return "healthy"
	case LinkBlackhole:
		return "blackhole"
	case LinkUnreachable:
		return "unreachable"
	case LinkDropReplies:
		return "drop-replies"
	}
	return "unknown"
}

// link is the state of one host's link.
type link struct {
	mode LinkMode
	// rate in (0,1] drops each request with this probability from the
	// partition's seeded RNG; 1 (the default) drops every request.
	rate float64
	// healAt, when non-zero, removes the link fault at that instant
	// (evaluated lazily against the partition's clock).
	healAt time.Time
}

// Partition is a deterministic per-host link-fault injector for HTTP
// clients. Wrap a transport with Transport and then Isolate hosts; requests
// to isolated hosts fail according to the link's mode while other hosts pass
// through. All probabilistic draws come from a single seeded RNG, so a fixed
// seed plus a fixed request sequence yields the same drop pattern every run.
//
// The zero clock is time.Now; SetClock stubs it so heal-at-time behavior is
// testable without sleeping.
type Partition struct {
	mu    sync.Mutex
	rng   *mrand.Rand
	now   func() time.Time
	links map[string]*link
	drops map[string]int
}

// NewPartition returns a partition whose lossy-link draws derive from seed.
func NewPartition(seed int64) *Partition {
	return &Partition{
		rng:   mrand.New(mrand.NewSource(seed)),
		now:   time.Now,
		links: make(map[string]*link),
		drops: make(map[string]int),
	}
}

// SetClock stubs the clock used for heal-at-time evaluation.
func (p *Partition) SetClock(now func() time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.now = now
}

// Isolate puts host's link into mode until healed explicitly.
func (p *Partition) Isolate(host string, mode LinkMode) {
	p.set(host, &link{mode: mode, rate: 1})
}

// IsolateUntil puts host's link into mode and heals it automatically at
// healAt. Healing is lazy: the first request at or after healAt passes
// through and removes the fault.
func (p *Partition) IsolateUntil(host string, mode LinkMode, healAt time.Time) {
	p.set(host, &link{mode: mode, rate: 1, healAt: healAt})
}

// IsolateLossy makes host's link flaky: each request is dropped (per mode)
// with probability rate, drawn from the seeded RNG.
func (p *Partition) IsolateLossy(host string, mode LinkMode, rate float64) {
	p.set(host, &link{mode: mode, rate: rate})
}

func (p *Partition) set(host string, l *link) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if l.mode == LinkHealthy {
		delete(p.links, host)
		return
	}
	p.links[host] = l
}

// Heal restores host's link.
func (p *Partition) Heal(host string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.links, host)
}

// HealAll restores every link.
func (p *Partition) HealAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.links = make(map[string]*link)
}

// Drops reports how many requests to host were dropped (any mode).
func (p *Partition) Drops(host string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drops[host]
}

// decide resolves the link mode for one request to host, applying lazy
// heal-at-time and lossy-rate draws, and counts the drop if any.
func (p *Partition) decide(host string) LinkMode {
	p.mu.Lock()
	defer p.mu.Unlock()
	l, ok := p.links[host]
	if !ok {
		return LinkHealthy
	}
	if !l.healAt.IsZero() && !p.now().Before(l.healAt) {
		delete(p.links, host)
		return LinkHealthy
	}
	if l.rate < 1 && p.rng.Float64() >= l.rate {
		return LinkHealthy
	}
	p.drops[host]++
	return l.mode
}

// Transport wraps an http.RoundTripper with the partition. inner may be
// nil, in which case http.DefaultTransport is used. Link state is keyed by
// request host (URL.Host, including port).
func (p *Partition) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &partitionTransport{p: p, inner: inner}
}

type partitionTransport struct {
	p     *Partition
	inner http.RoundTripper
}

func (t *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.p.decide(req.URL.Host) {
	case LinkBlackhole:
		drainRequest(req)
		<-req.Context().Done()
		return nil, fmt.Errorf("faults: blackholed request to %s: %w", req.URL.Host, req.Context().Err())

	case LinkUnreachable:
		drainRequest(req)
		return nil, connReset()

	case LinkDropReplies:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, connReset()
	}
	return t.inner.RoundTrip(req)
}
