package faults

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"sync"

	"puppies/internal/blobstore"
)

// Filesystem fault injection, mirroring the HTTP Transport/Middleware
// design: rules match operations, each rule carries a script consumed one
// fault per matching operation, and the envelope/durability tests drive a
// blobstore.Store through every crash point deterministically.

// FSOp names a filesystem operation for rule matching.
type FSOp string

// The operations FaultFS distinguishes.
const (
	OpMkdirAll FSOp = "mkdirall"
	OpOpen     FSOp = "open"
	OpWrite    FSOp = "write"
	OpSync     FSOp = "sync"
	OpClose    FSOp = "close"
	OpRename   FSOp = "rename"
	OpRemove   FSOp = "remove"
	OpReadDir  FSOp = "readdir"
	OpReadFile FSOp = "readfile"
	OpStat     FSOp = "stat"
	OpSyncDir  FSOp = "syncdir"
)

// FSKind enumerates injectable filesystem failure modes.
type FSKind int

const (
	// FSNone lets the operation through (useful to skip early matches in
	// a script).
	FSNone FSKind = iota
	// FSErr fails the operation without performing it: a transient I/O
	// error (EIO from fsync, a failed rename). The process keeps running.
	FSErr
	// FSTorn performs a write partially — only KeepBytes bytes reach the
	// file — then fails the operation. Models a short/torn write.
	FSTorn
	// FSCrashBefore simulates the process dying before the operation:
	// nothing is performed, and this plus every subsequent operation
	// fails with ErrCrashed. The on-disk state is frozen at the crash
	// point for a recovery test to reopen.
	FSCrashBefore
	// FSCrashAfter performs the operation fully, then "crashes": the
	// operation reports ErrCrashed and all later operations fail too.
	// Models dying just after a rename or fsync returned.
	FSCrashAfter
	// FSTornCrash writes KeepBytes bytes, then crashes: the post-crash
	// partial file is exactly what a power cut mid-write leaves behind.
	FSTornCrash
)

func (k FSKind) String() string {
	switch k {
	case FSNone:
		return "none"
	case FSErr:
		return "err"
	case FSTorn:
		return "torn"
	case FSCrashBefore:
		return "crash-before"
	case FSCrashAfter:
		return "crash-after"
	case FSTornCrash:
		return "torn-crash"
	}
	return "unknown"
}

// Injection sentinels. ErrCrashed marks every operation refused because the
// simulated process is dead; ErrInjected is the default transient error.
var (
	ErrInjected = errors.New("faults: injected I/O error")
	ErrCrashed  = errors.New("faults: filesystem crashed (simulated)")
)

// FSFault is one scheduled filesystem failure.
type FSFault struct {
	Kind FSKind
	// KeepBytes bounds how much of a torn write persists. Zero means half
	// the buffer.
	KeepBytes int
	// Err overrides the reported error (defaults to ErrInjected, or
	// ErrCrashed for crash kinds).
	Err error
}

// FSRule matches operations and schedules faults for them.
type FSRule struct {
	// Op restricts the rule to one operation; empty matches all.
	Op FSOp
	// PathContains restricts the rule to paths containing the substring;
	// empty matches all. Rename/rename-like ops match on the destination.
	PathContains string
	// Script is consumed one fault per matching operation, in order;
	// after exhaustion the rule no longer fires.
	Script []FSFault

	seen int
}

// FaultFS wraps a blobstore.FS with deterministic fault injection. It is
// safe for concurrent use.
type FaultFS struct {
	inner blobstore.FS

	mu      sync.Mutex
	rules   []*FSRule
	crashed bool
	stats   map[FSKind]int
}

// NewFS wraps inner (nil means the real OS filesystem).
func NewFS(inner blobstore.FS) *FaultFS {
	if inner == nil {
		inner = blobstore.OSFS{}
	}
	return &FaultFS{inner: inner, stats: make(map[FSKind]int)}
}

// Rule appends a rule; rules are evaluated in order and the first matching
// rule with script remaining wins.
func (f *FaultFS) Rule(r FSRule) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &r)
	return f
}

// ScriptOn is shorthand for a single-rule schedule on one operation/path.
func (f *FaultFS) ScriptOn(op FSOp, pathContains string, faults ...FSFault) *FaultFS {
	return f.Rule(FSRule{Op: op, PathContains: pathContains, Script: faults})
}

// Crashed reports whether a crash fault has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Count reports how many faults of kind k fired.
func (f *FaultFS) Count(k FSKind) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats[k]
}

// next picks the fault for (op, path). A dead filesystem fails everything.
func (f *FaultFS) next(op FSOp, path string) (FSFault, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return FSFault{}, ErrCrashed
	}
	for _, r := range f.rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		if r.seen >= len(r.Script) {
			continue
		}
		ft := r.Script[r.seen]
		r.seen++
		if ft.Kind == FSNone {
			return FSFault{}, nil
		}
		f.stats[ft.Kind]++
		switch ft.Kind {
		case FSCrashBefore, FSCrashAfter, FSTornCrash:
			f.crashed = true
		}
		return ft, nil
	}
	return FSFault{}, nil
}

func (ft FSFault) err() error {
	if ft.Err != nil {
		return ft.Err
	}
	switch ft.Kind {
	case FSCrashBefore, FSCrashAfter, FSTornCrash:
		return ErrCrashed
	}
	return ErrInjected
}

// injectSimple handles the op-level fault plumbing shared by every
// non-write operation: run reports whether the real operation should be
// performed, and retErr the error to return (nil for none).
func (f *FaultFS) injectSimple(op FSOp, path string) (run bool, retErr error) {
	ft, err := f.next(op, path)
	if err != nil {
		return false, err
	}
	switch ft.Kind {
	case FSNone:
		return true, nil
	case FSErr:
		return false, fmt.Errorf("faults: %s %s: %w", op, path, ft.err())
	case FSCrashBefore:
		return false, fmt.Errorf("faults: %s %s: %w", op, path, ft.err())
	case FSCrashAfter:
		return true, fmt.Errorf("faults: %s %s: %w", op, path, ft.err())
	case FSTorn, FSTornCrash:
		// Torn kinds only make sense on writes; treat as FSErr here.
		return false, fmt.Errorf("faults: %s %s: %w", op, path, ft.err())
	}
	return true, nil
}

// MkdirAll implements blobstore.FS.
func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	run, retErr := f.injectSimple(OpMkdirAll, path)
	if run {
		if err := f.inner.MkdirAll(path, perm); err != nil {
			return err
		}
	}
	return retErr
}

// OpenFile implements blobstore.FS.
func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (blobstore.File, error) {
	run, retErr := f.injectSimple(OpOpen, name)
	if !run || retErr != nil {
		return nil, retErr
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: inner}, nil
}

// Rename implements blobstore.FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	run, retErr := f.injectSimple(OpRename, newpath)
	if run {
		if err := f.inner.Rename(oldpath, newpath); err != nil {
			return err
		}
	}
	return retErr
}

// Remove implements blobstore.FS.
func (f *FaultFS) Remove(name string) error {
	run, retErr := f.injectSimple(OpRemove, name)
	if run {
		if err := f.inner.Remove(name); err != nil {
			return err
		}
	}
	return retErr
}

// ReadDir implements blobstore.FS.
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	run, retErr := f.injectSimple(OpReadDir, name)
	if !run || retErr != nil {
		return nil, retErr
	}
	return f.inner.ReadDir(name)
}

// ReadFile implements blobstore.FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	run, retErr := f.injectSimple(OpReadFile, name)
	if !run || retErr != nil {
		return nil, retErr
	}
	return f.inner.ReadFile(name)
}

// Stat implements blobstore.FS.
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	run, retErr := f.injectSimple(OpStat, name)
	if !run || retErr != nil {
		return nil, retErr
	}
	return f.inner.Stat(name)
}

// SyncDir implements blobstore.FS.
func (f *FaultFS) SyncDir(name string) error {
	run, retErr := f.injectSimple(OpSyncDir, name)
	if run {
		if err := f.inner.SyncDir(name); err != nil {
			return err
		}
	}
	return retErr
}

// faultFile wraps an open file so writes, syncs, and closes pass through
// the schedule. Torn-write faults land here.
type faultFile struct {
	fs    *FaultFS
	name  string
	inner blobstore.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ft, err := ff.fs.next(OpWrite, ff.name)
	if err != nil {
		return 0, err
	}
	switch ft.Kind {
	case FSNone:
		return ff.inner.Write(p)
	case FSErr, FSCrashBefore:
		return 0, fmt.Errorf("faults: write %s: %w", ff.name, ft.err())
	case FSCrashAfter:
		n, werr := ff.inner.Write(p)
		if werr != nil {
			return n, werr
		}
		return n, fmt.Errorf("faults: write %s: %w", ff.name, ft.err())
	case FSTorn, FSTornCrash:
		keep := ft.KeepBytes
		if keep <= 0 {
			keep = len(p) / 2
		}
		if keep > len(p) {
			keep = len(p)
		}
		n, werr := ff.inner.Write(p[:keep])
		if werr != nil {
			return n, werr
		}
		return n, fmt.Errorf("faults: torn write %s (%d of %d bytes): %w", ff.name, keep, len(p), ft.err())
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	run, retErr := ff.fs.injectSimple(OpSync, ff.name)
	if run {
		if err := ff.inner.Sync(); err != nil {
			return err
		}
	}
	return retErr
}

func (ff *faultFile) Close() error {
	run, retErr := ff.fs.injectSimple(OpClose, ff.name)
	// Always release the real handle, even on injected failure — the
	// simulated crash kills the process, not the test harness.
	if err := ff.inner.Close(); err != nil && run && retErr == nil {
		return err
	}
	return retErr
}
