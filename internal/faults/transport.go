package faults

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"time"
)

// Transport wraps an http.RoundTripper with client-side fault injection.
// inner may be nil, in which case http.DefaultTransport is used.
func (in *Injector) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &faultTransport{in: in, inner: inner}
}

type faultTransport struct {
	in    *Injector
	inner http.RoundTripper
}

// connReset is the transport error used for Drop/DropResponse; clients see
// it exactly as they would a mid-flight TCP reset.
func connReset() error {
	return &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
}

func retryAfterValue(d time.Duration) string {
	secs := d.Seconds()
	if secs == float64(int64(secs)) {
		return fmt.Sprintf("%d", int64(secs))
	}
	return fmt.Sprintf("%g", secs)
}

func synthesized503(req *http.Request, f Fault) *http.Response {
	const body = "faults: injected 503"
	h := http.Header{"Content-Type": {"text/plain; charset=utf-8"}}
	if f.RetryAfter > 0 {
		h.Set("Retry-After", retryAfterValue(f.RetryAfter))
	}
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.in.next(req)
	switch f.Kind {
	case Status503:
		drainRequest(req)
		return synthesized503(req, f), nil

	case Drop:
		drainRequest(req)
		return nil, connReset()

	case DropResponse:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, connReset()

	case Latency:
		timer := time.NewTimer(f.Delay)
		defer timer.Stop()
		select {
		case <-req.Context().Done():
			drainRequest(req)
			return nil, req.Context().Err()
		case <-timer.C:
		}
		return t.inner.RoundTrip(req)

	case Truncate:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return mutateBody(resp, func(b []byte) []byte { return b[:len(b)/2] })

	case BitFlip:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return mutateBody(resp, t.in.flipBit)
	}
	return t.inner.RoundTrip(req)
}

// drainRequest consumes and closes the outgoing body, which RoundTrip
// implementations must do even when they never contact the origin.
func drainRequest(req *http.Request) {
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

// mutateBody reads the full response body, applies fn, and reinstalls the
// result with consistent framing, so the corruption is invisible at the
// HTTP layer and only a decoder can notice.
func mutateBody(resp *http.Response, fn func([]byte) []byte) (*http.Response, error) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	out := fn(body)
	resp.Body = io.NopCloser(bytes.NewReader(out))
	resp.ContentLength = int64(len(out))
	resp.Header.Set("Content-Length", fmt.Sprintf("%d", len(out)))
	resp.TransferEncoding = nil
	return resp, nil
}
