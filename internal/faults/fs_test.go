package faults_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"puppies/internal/faults"
)

func TestFaultFSTornWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	fsys := faults.NewFS(nil)
	fsys.ScriptOn(faults.OpWrite, "victim", faults.FSFault{Kind: faults.FSTorn, KeepBytes: 5})

	path := filepath.Join(dir, "victim")
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	_, werr := f.Write([]byte("0123456789"))
	if !errors.Is(werr, faults.ErrInjected) {
		t.Fatalf("torn write err = %v", werr)
	}
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("on-disk prefix %q, want %q", got, "01234")
	}
	if fsys.Count(faults.FSTorn) != 1 {
		t.Fatalf("torn count = %d", fsys.Count(faults.FSTorn))
	}
}

func TestFaultFSCrashFreezesEverything(t *testing.T) {
	dir := t.TempDir()
	fsys := faults.NewFS(nil)
	fsys.ScriptOn(faults.OpRename, "", faults.FSFault{Kind: faults.FSCrashBefore})

	src := filepath.Join(dir, "a")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := fsys.Rename(src, filepath.Join(dir, "b"))
	if !errors.Is(err, faults.ErrCrashed) {
		t.Fatalf("rename err = %v", err)
	}
	if _, serr := os.Stat(src); serr != nil {
		t.Fatal("crash-before performed the rename anyway")
	}
	if !fsys.Crashed() {
		t.Fatal("Crashed() = false")
	}
	// Every later operation on the dead filesystem fails too.
	if _, err := fsys.ReadFile(src); !errors.Is(err, faults.ErrCrashed) {
		t.Fatalf("post-crash read err = %v", err)
	}
	if err := fsys.SyncDir(dir); !errors.Is(err, faults.ErrCrashed) {
		t.Fatalf("post-crash syncdir err = %v", err)
	}
}

func TestFaultFSCrashAfterPerformsOp(t *testing.T) {
	dir := t.TempDir()
	fsys := faults.NewFS(nil)
	fsys.ScriptOn(faults.OpRename, "", faults.FSFault{Kind: faults.FSCrashAfter})
	src, dst := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(src, dst); !errors.Is(err, faults.ErrCrashed) {
		t.Fatalf("rename err = %v", err)
	}
	if _, serr := os.Stat(dst); serr != nil {
		t.Fatal("crash-after did not perform the rename")
	}
}

func TestFaultFSScriptOrderAndPassthrough(t *testing.T) {
	dir := t.TempDir()
	fsys := faults.NewFS(nil)
	fsys.ScriptOn(faults.OpSync, "", faults.FSFault{Kind: faults.FSNone}, faults.FSFault{Kind: faults.FSErr})

	path := filepath.Join(dir, "f")
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync (scripted None) failed: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("second sync err = %v, want injected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync (script exhausted) failed: %v", err)
	}
}
