package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func getReq(t *testing.T, path string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://psp.test"+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestScriptConsumedInOrder(t *testing.T) {
	in := New(1).Script(nil,
		Fault{Kind: Status503},
		Fault{Kind: None},
		Fault{Kind: Drop},
	)
	want := []Kind{Status503, None, Drop, None, None}
	for i, w := range want {
		got := in.next(getReq(t, "/x")).Kind
		if got != w {
			t.Errorf("request %d: fault %s, want %s", i, got, w)
		}
	}
	if n := in.Count(Status503); n != 1 {
		t.Errorf("503 count = %d, want 1", n)
	}
	if n := in.Count(Drop); n != 1 {
		t.Errorf("drop count = %d, want 1", n)
	}
}

func TestMatchersScopeRules(t *testing.T) {
	in := New(1).Script(PathContains("/transformed"), Fault{Kind: Truncate})
	if k := in.next(getReq(t, "/v1/images/abc")).Kind; k != None {
		t.Errorf("non-matching path got %s", k)
	}
	if k := in.next(getReq(t, "/v1/images/abc/transformed")).Kind; k != Truncate {
		t.Errorf("matching path got %s", k)
	}
	// Script already consumed by the matching request.
	if k := in.next(getReq(t, "/v1/images/abc/transformed")).Kind; k != None {
		t.Errorf("post-script request got %s", k)
	}

	post := New(1).Script(MethodIs(http.MethodPost), Fault{Kind: Drop})
	if k := post.next(getReq(t, "/v1/images")).Kind; k != None {
		t.Errorf("GET matched a POST rule: %s", k)
	}
}

func TestRateIsDeterministicUnderSeed(t *testing.T) {
	draw := func(seed int64) []Kind {
		in := New(seed)
		in.Rule(Rule{Rate: 0.5, Fault: Fault{Kind: Status503}})
		out := make([]Kind, 64)
		for i := range out {
			out[i] = in.next(getReq(t, "/x")).Kind
		}
		return out
	}
	a, b := draw(42), draw(42)
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged under identical seed: %s vs %s", i, a[i], b[i])
		}
		if a[i] == Status503 {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Errorf("rate 0.5 injected %d/%d, want a mix", injected, len(a))
	}
}

func TestTransportFaults(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("hello, puppies"))
	}))
	defer origin.Close()

	in := New(7).Script(nil,
		Fault{Kind: Status503, RetryAfter: 1500 * time.Millisecond},
		Fault{Kind: Drop},
		Fault{Kind: Truncate},
		Fault{Kind: BitFlip},
	)
	client := &http.Client{Transport: in.Transport(nil)}

	resp, err := client.Get(origin.URL)
	if err != nil {
		t.Fatalf("injected 503 surfaced as transport error: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1.5" {
		t.Errorf("Retry-After %q, want \"1.5\"", got)
	}
	resp.Body.Close()

	if _, err := client.Get(origin.URL); err == nil {
		t.Error("injected drop returned a response")
	} else if !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("drop error %v, want ECONNRESET in chain", err)
	}

	resp, err = client.Get(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != len("hello, puppies")/2 {
		t.Errorf("truncated body %d bytes, want %d", len(body), len("hello, puppies")/2)
	}

	resp, err = client.Get(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	diff := 0
	for i := range body {
		if body[i] != "hello, puppies"[i] {
			diff++
		}
	}
	if len(body) != len("hello, puppies") || diff != 1 {
		t.Errorf("bitflip changed %d bytes of %d, want exactly 1 byte changed", diff, len(body))
	}

	// Script exhausted: traffic passes untouched.
	resp, err = client.Get(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello, puppies" {
		t.Errorf("pass-through body %q", body)
	}
}

func TestMiddlewareFaults(t *testing.T) {
	var handled atomic.Int32
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handled.Add(1)
		_, _ = w.Write([]byte("hello, puppies"))
	})

	in := New(9).Script(nil,
		Fault{Kind: Status503, RetryAfter: 2 * time.Second},
		Fault{Kind: DropResponse},
		Fault{Kind: Truncate},
	)
	srv := httptest.NewServer(in.Middleware(inner))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After %q, want \"2\"", got)
	}
	if n := handled.Load(); n != 0 {
		t.Errorf("503 reached the handler (%d calls)", n)
	}

	// DropResponse: the handler runs, the client sees a severed stream.
	if _, err := http.Get(srv.URL); err == nil {
		t.Error("drop-response delivered a response")
	}
	if n := handled.Load(); n != 1 {
		t.Errorf("drop-response handler calls = %d, want 1", n)
	}

	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != len("hello, puppies")/2 {
		t.Errorf("truncated body %d bytes, want %d", len(body), len("hello, puppies")/2)
	}
}

func TestMiddlewareLatency(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
	const delay = 30 * time.Millisecond
	in := New(3).Script(nil, Fault{Kind: Latency, Delay: delay})
	srv := httptest.NewServer(in.Middleware(inner))
	defer srv.Close()

	start := time.Now()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("request took %s, want >= %s", elapsed, delay)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d after latency", resp.StatusCode)
	}
}
