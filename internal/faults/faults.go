// Package faults is a deterministic, seedable fault-injection harness for
// the PSP pipeline. It perturbs HTTP traffic on either side of the wire —
// as a client http.RoundTripper (Injector.Transport) or as server
// middleware (Injector.Middleware) — so robustness tests can exercise
// retry, backoff, and graceful-degradation paths reproducibly.
//
// Faults are scheduled by rules. A rule matches a subset of requests and
// carries a script: a fixed sequence of faults consumed one per matching
// request, in order. After the script is exhausted the rule can keep
// injecting probabilistically at Rate, drawn from the injector's seeded
// RNG. A fixed seed plus a script therefore yields the exact same fault
// sequence on every run, which is what lets tests like "upload succeeds
// after two 503s" assert precise retry counts.
package faults

import (
	"net/http"
	"strings"
	"sync"
	"time"

	mrand "math/rand"
)

// Kind enumerates the failure modes the injector can produce.
type Kind int

const (
	// None passes the request through untouched.
	None Kind = iota
	// Status503 answers 503 Service Unavailable without reaching the
	// origin (transport) or the handler (middleware). Retry-After is
	// attached when Fault.RetryAfter is set.
	Status503
	// Drop severs the connection before the request reaches the origin:
	// the client sees a connection reset and the server does no work.
	Drop
	// DropResponse lets the request fully execute, then severs the
	// connection before the response reaches the client. This is the
	// fault that makes upload idempotency observable: the server stored
	// the image, the client must retry without duplicating it.
	DropResponse
	// Latency delays the request by Fault.Delay, then passes it through.
	Latency
	// Truncate passes the request through and silently cuts the response
	// body in half (headers report the short length, so the read
	// "succeeds" and the corruption is only visible to a decoder).
	Truncate
	// BitFlip passes the request through and flips one RNG-chosen bit of
	// the response body — a corrupted-JPEG simulation.
	BitFlip
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Status503:
		return "503"
	case Drop:
		return "drop"
	case DropResponse:
		return "drop-response"
	case Latency:
		return "latency"
	case Truncate:
		return "truncate"
	case BitFlip:
		return "bitflip"
	}
	return "unknown"
}

// Fault is one scheduled failure.
type Fault struct {
	Kind Kind
	// Delay applies to Latency faults.
	Delay time.Duration
	// RetryAfter, when set on a Status503, is sent as a Retry-After
	// header (fractional seconds).
	RetryAfter time.Duration
}

// Rule matches requests and schedules faults for them.
type Rule struct {
	// Match selects requests; nil matches everything.
	Match func(*http.Request) bool
	// Script is consumed one fault per matching request, in order.
	// Kind None entries deliberately let a request through.
	Script []Fault
	// Rate in [0,1] injects Fault on matching requests once Script is
	// exhausted, using the injector's seeded RNG.
	Rate float64
	// Fault is the fault injected at Rate.
	Fault Fault

	seen int
}

// PathPrefix returns a matcher for requests whose URL path starts with
// prefix, e.g. PathPrefix("/v1/images").
func PathPrefix(prefix string) func(*http.Request) bool {
	return func(r *http.Request) bool { return strings.HasPrefix(r.URL.Path, prefix) }
}

// PathContains returns a matcher for requests whose URL path contains sub,
// e.g. PathContains("/transformed").
func PathContains(sub string) func(*http.Request) bool {
	return func(r *http.Request) bool { return strings.Contains(r.URL.Path, sub) }
}

// MethodIs returns a matcher for a specific HTTP method.
func MethodIs(method string) func(*http.Request) bool {
	return func(r *http.Request) bool { return r.Method == method }
}

// Injector owns the fault schedule. It is safe for concurrent use; all RNG
// draws and script advances are serialized, so a single-threaded request
// sequence is fully deterministic under a fixed seed.
type Injector struct {
	mu    sync.Mutex
	rng   *mrand.Rand
	rules []*Rule
	stats map[Kind]int
}

// New returns an injector whose probabilistic draws and bit-flip positions
// derive from seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   mrand.New(mrand.NewSource(seed)),
		stats: make(map[Kind]int),
	}
}

// Rule appends a rule to the schedule. Rules are evaluated in order; the
// first matching rule that yields a non-None fault wins.
func (in *Injector) Rule(r Rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &r)
	return in
}

// Script is shorthand for a pure-script rule: the first len(faults)
// requests matching match receive the listed faults, later ones pass.
func (in *Injector) Script(match func(*http.Request) bool, faults ...Fault) *Injector {
	return in.Rule(Rule{Match: match, Script: faults})
}

// next decides the fault for req and records it in the stats.
func (in *Injector) next(req *http.Request) Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Match != nil && !r.Match(req) {
			continue
		}
		i := r.seen
		r.seen++
		if i < len(r.Script) {
			f := r.Script[i]
			if f.Kind != None {
				in.stats[f.Kind]++
				return f
			}
			continue
		}
		if r.Rate > 0 && in.rng.Float64() < r.Rate {
			in.stats[r.Fault.Kind]++
			return r.Fault
		}
	}
	return Fault{Kind: None}
}

// flipBit returns a copy of body with one RNG-chosen bit inverted.
func (in *Injector) flipBit(body []byte) []byte {
	if len(body) == 0 {
		return body
	}
	out := make([]byte, len(body))
	copy(out, body)
	in.mu.Lock()
	pos := in.rng.Intn(len(out))
	bit := in.rng.Intn(8)
	in.mu.Unlock()
	out[pos] ^= 1 << bit
	return out
}

// Count reports how many faults of the given kind were injected.
func (in *Injector) Count(k Kind) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats[k]
}

// Stats returns a copy of the per-kind injection counters.
func (in *Injector) Stats() map[Kind]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int, len(in.stats))
	for k, v := range in.stats {
		out[k] = v
	}
	return out
}
