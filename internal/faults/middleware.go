package faults

import (
	"net/http"
	"strconv"
	"time"
)

// Middleware wraps an http.Handler with server-side fault injection. Drop
// and DropResponse abort the connection via http.ErrAbortHandler, which the
// net/http server turns into a mid-stream close — clients observe a reset
// or unexpected EOF, exactly like a crashed backend.
//
// Invariant (panic audit): the two panic(http.ErrAbortHandler) calls below
// are the net/http-documented mechanism for aborting a connection — the
// server recovers this specific value itself and never crashes the process.
// They are deliberate, are not reachable as crashes from untrusted input,
// and must stay panics: returning an error cannot sever a connection
// mid-response.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := in.next(r)
		switch f.Kind {
		case Status503:
			if f.RetryAfter > 0 {
				w.Header().Set("Retry-After", retryAfterValue(f.RetryAfter))
			}
			http.Error(w, "faults: injected 503", http.StatusServiceUnavailable)

		case Drop:
			panic(http.ErrAbortHandler)

		case DropResponse:
			// The handler runs to completion (its side effects are
			// real); only the response is lost.
			rec := newRecorder()
			next.ServeHTTP(rec, r)
			panic(http.ErrAbortHandler)

		case Latency:
			timer := time.NewTimer(f.Delay)
			defer timer.Stop()
			select {
			case <-r.Context().Done():
				return
			case <-timer.C:
			}
			next.ServeHTTP(w, r)

		case Truncate:
			rec := newRecorder()
			next.ServeHTTP(rec, r)
			rec.replay(w, func(b []byte) []byte { return b[:len(b)/2] })

		case BitFlip:
			rec := newRecorder()
			next.ServeHTTP(rec, r)
			rec.replay(w, in.flipBit)

		default:
			next.ServeHTTP(w, r)
		}
	})
}

// recorder buffers a handler's response so the middleware can corrupt it
// before it hits the wire.
type recorder struct {
	header http.Header
	code   int
	body   []byte
}

func newRecorder() *recorder {
	return &recorder{header: make(http.Header), code: http.StatusOK}
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) { r.code = code }

func (r *recorder) Write(p []byte) (int, error) {
	r.body = append(r.body, p...)
	return len(p), nil
}

// replay writes the recorded response with fn applied to the body.
// Non-200 responses pass through unmodified: the interesting corruption
// target is the payload, not an error message.
func (r *recorder) replay(w http.ResponseWriter, fn func([]byte) []byte) {
	body := r.body
	if r.code == http.StatusOK {
		body = fn(body)
	}
	for k, vs := range r.header {
		w.Header()[k] = vs
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(r.code)
	_, _ = w.Write(body)
}
