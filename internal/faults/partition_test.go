package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// twoHosts returns two live origin servers plus a client whose transport is
// partitioned. Each origin counts the requests that actually reached it.
func twoHosts(t *testing.T, p *Partition) (a, b *httptest.Server, hitsA, hitsB *atomic.Int64, client *http.Client) {
	t.Helper()
	hitsA, hitsB = new(atomic.Int64), new(atomic.Int64)
	mk := func(hits *atomic.Int64) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			io.WriteString(w, "ok")
		}))
	}
	a, b = mk(hitsA), mk(hitsB)
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)
	client = &http.Client{Transport: p.Transport(nil)}
	return a, b, hitsA, hitsB, client
}

func hostOf(srv *httptest.Server) string {
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestPartitionSymmetricUnreachable(t *testing.T) {
	p := NewPartition(1)
	a, b, hitsA, hitsB, client := twoHosts(t, p)
	p.Isolate(hostOf(a), LinkUnreachable)

	if _, err := client.Get(a.URL); err == nil {
		t.Fatal("request to isolated host succeeded")
	} else if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("isolated host error = %v, want connection reset", err)
	}
	if hitsA.Load() != 0 {
		t.Fatalf("symmetric partition delivered %d requests to the server", hitsA.Load())
	}
	resp, err := client.Get(b.URL)
	if err != nil {
		t.Fatalf("healthy host failed: %v", err)
	}
	resp.Body.Close()
	if hitsB.Load() != 1 {
		t.Fatalf("healthy host hits = %d, want 1", hitsB.Load())
	}
	if p.Drops(hostOf(a)) != 1 || p.Drops(hostOf(b)) != 0 {
		t.Fatalf("drops = (%d,%d), want (1,0)", p.Drops(hostOf(a)), p.Drops(hostOf(b)))
	}

	p.Heal(hostOf(a))
	resp, err = client.Get(a.URL)
	if err != nil {
		t.Fatalf("healed host failed: %v", err)
	}
	resp.Body.Close()
	if hitsA.Load() != 1 {
		t.Fatalf("healed host hits = %d, want 1", hitsA.Load())
	}
}

// TestPartitionAsymmetricDropReplies checks the one-way partition: the
// server executes the request (side effects happen) but the caller sees a
// reset — the divergence-producing failure.
func TestPartitionAsymmetricDropReplies(t *testing.T) {
	p := NewPartition(1)
	a, _, hitsA, _, client := twoHosts(t, p)
	p.Isolate(hostOf(a), LinkDropReplies)

	if _, err := client.Get(a.URL); err == nil {
		t.Fatal("drop-replies request reported success")
	} else if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("drop-replies error = %v, want connection reset", err)
	}
	if hitsA.Load() != 1 {
		t.Fatalf("asymmetric partition: server hits = %d, want 1 (request must be delivered)", hitsA.Load())
	}
}

// TestPartitionBlackholeHangsUntilContext checks the realistic symmetric
// mode: the caller hangs and only its own deadline ends the request.
func TestPartitionBlackholeHangsUntilContext(t *testing.T) {
	p := NewPartition(1)
	a, _, hitsA, _, client := twoHosts(t, p)
	p.Isolate(hostOf(a), LinkBlackhole)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, a.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = client.Do(req)
	if err == nil {
		t.Fatal("blackholed request succeeded")
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("blackholed request failed after %v, want to hang until the ~50ms deadline", d)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blackhole error = %v, want context.DeadlineExceeded in the chain", err)
	}
	if hitsA.Load() != 0 {
		t.Fatalf("blackhole delivered %d requests", hitsA.Load())
	}
}

// TestPartitionLossyDeterministicSeeding replays the same seeded lossy link
// twice and requires the exact same drop pattern — the property that lets
// cluster tests assert precise failover counts.
func TestPartitionLossyDeterministicSeeding(t *testing.T) {
	pattern := func(seed int64) []bool {
		p := NewPartition(seed)
		p.IsolateLossy("shard-x:1", LinkUnreachable, 0.5)
		out := make([]bool, 40)
		for i := range out {
			out[i] = p.decide("shard-x:1") != LinkHealthy
		}
		return out
	}
	first, second := pattern(42), pattern(42)
	drops := 0
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d: drop decisions diverge across runs with the same seed", i)
		}
		if first[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(first) {
		t.Fatalf("lossy link dropped %d/%d requests; rate 0.5 should be mixed", drops, len(first))
	}
	other := pattern(43)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical drop patterns")
	}
}

// TestPartitionHealAtTime drives the lazy heal against a stubbed clock: the
// fault holds strictly before healAt and is gone at and after it.
func TestPartitionHealAtTime(t *testing.T) {
	now := time.Unix(1000, 0)
	p := NewPartition(1)
	p.SetClock(func() time.Time { return now })
	healAt := now.Add(10 * time.Second)
	p.IsolateUntil("h:1", LinkUnreachable, healAt)

	if got := p.decide("h:1"); got != LinkUnreachable {
		t.Fatalf("before heal: mode = %v, want unreachable", got)
	}
	now = healAt.Add(-time.Nanosecond)
	if got := p.decide("h:1"); got != LinkUnreachable {
		t.Fatalf("just before heal: mode = %v, want unreachable", got)
	}
	now = healAt
	if got := p.decide("h:1"); got != LinkHealthy {
		t.Fatalf("at heal instant: mode = %v, want healthy", got)
	}
	// The heal is permanent: moving the clock back cannot resurrect it.
	now = time.Unix(1000, 0)
	if got := p.decide("h:1"); got != LinkHealthy {
		t.Fatalf("after heal: mode = %v, want healthy", got)
	}
	if p.Drops("h:1") != 2 {
		t.Fatalf("drops = %d, want 2", p.Drops("h:1"))
	}
}
