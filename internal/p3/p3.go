// Package p3 implements the P3 photo-privacy scheme of Ra, Govindan and
// Ortega (NSDI 2013), the baseline PuPPIeS is evaluated against
// (paper §II-C.4, §V-D).
//
// P3 splits a whole JPEG image into two parts by a threshold T on quantized
// DCT coefficients:
//
//   - the public part keeps AC coefficients clamped to [-T, T] and removes
//     all DC components; it is stored on the (untrusted) PSP;
//   - the private part keeps the DC components and the unsigned AC
//     remainders |v|-T; it is stored with a trusted party. The remainder's
//     sign is carried by the public part's saturated value (+T or -T).
//
// Recombining both parts recovers the image exactly — but only when no
// transformation intervened. P3's structural limitations relative to
// PuPPIeS, which the experiments reproduce:
//
//   - whole-image only: no per-region protection or per-receiver policies;
//   - the private part is a full (sparse) image, orders of magnitude larger
//     than PuPPIeS's two 8x8 matrices;
//   - PSP-side transforms break exact recovery: both parts pass through
//     standard clamped 8-bit pipelines, losing the interplay between the
//     parts (paper Fig. 4).
package p3

import (
	"fmt"

	"puppies/internal/dct"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
)

// DefaultThreshold is the public/private split threshold recommended by the
// P3 authors and used in the PuPPIeS evaluation.
const DefaultThreshold = 20

// Split is a P3-encrypted image: two coefficient images of identical
// geometry.
type Split struct {
	// Public is stored on the PSP.
	Public *jpegc.Image
	// Private is stored with a trusted party; its size is the scheme's
	// client-side storage cost.
	Private *jpegc.Image
	// Threshold is the split level used.
	Threshold int32
}

// SplitImage splits an image at the given threshold (T > 0).
func SplitImage(img *jpegc.Image, threshold int32) (*Split, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("p3: threshold must be positive, got %d", threshold)
	}
	pub := img.Clone()
	priv := img.Clone()
	for ci := range img.Comps {
		for bi := range img.Comps[ci].Blocks {
			src := &img.Comps[ci].Blocks[bi]
			pb := &pub.Comps[ci].Blocks[bi]
			vb := &priv.Comps[ci].Blocks[bi]
			// DC goes entirely to the private part.
			pb[0] = 0
			vb[0] = src[0]
			for i := 1; i < dct.BlockLen; i++ {
				v := src[i]
				switch {
				case v > threshold:
					pb[i] = threshold
					vb[i] = v - threshold // unsigned remainder; sign is +T in public
				case v < -threshold:
					pb[i] = -threshold
					vb[i] = -v - threshold // unsigned remainder; sign is -T in public
				default:
					pb[i] = v
					vb[i] = 0
				}
			}
		}
	}
	return &Split{Public: pub, Private: priv, Threshold: threshold}, nil
}

// Recover reassembles the original coefficients from both parts
// (no-transform case; exact).
func Recover(s *Split) (*jpegc.Image, error) {
	if s.Public == nil || s.Private == nil {
		return nil, fmt.Errorf("p3: split is missing a part")
	}
	if s.Public.W != s.Private.W || s.Public.H != s.Private.H ||
		len(s.Public.Comps) != len(s.Private.Comps) {
		return nil, fmt.Errorf("p3: public and private parts have different geometry")
	}
	out := s.Public.Clone()
	for ci := range out.Comps {
		for bi := range out.Comps[ci].Blocks {
			pb := &s.Public.Comps[ci].Blocks[bi]
			vb := &s.Private.Comps[ci].Blocks[bi]
			ob := &out.Comps[ci].Blocks[bi]
			ob[0] = vb[0] // DC lives in the private part
			for i := 1; i < dct.BlockLen; i++ {
				// AC: the unsigned remainder applies in the direction of the
				// public part's saturation. This per-coefficient sign
				// recovery is exactly what becomes impossible after a
				// pixel-domain transform (paper §V-D).
				switch {
				case vb[i] == 0:
					ob[i] = pb[i]
				case pb[i] < 0:
					ob[i] = pb[i] - vb[i]
				default:
					ob[i] = pb[i] + vb[i]
				}
			}
		}
	}
	return out, nil
}

// PublicPixels decodes the public part through a standard 8-bit pipeline
// (round + clamp), which is what the PSP (and any attacker at the PSP) sees.
func (s *Split) PublicPixels() (*imgplane.Image, error) {
	pix, err := s.Public.ToPlanar()
	if err != nil {
		return nil, err
	}
	return pix.Quantize8(), nil
}

// PrivatePixels decodes the private part through the same 8-bit pipeline.
// The private image's DC-plus-remainder content routinely falls outside
// [0, 255]; the clamping here is the root cause of P3's detail loss under
// PSP-side transforms (paper Fig. 4).
func (s *Split) PrivatePixels() (*imgplane.Image, error) {
	pix, err := s.Private.ToPlanar()
	if err != nil {
		return nil, err
	}
	return pix.Quantize8(), nil
}

// CombinePixels models P3's client-side recombination after both parts
// passed through standard (clamped) image pipelines, e.g. after the PSP
// scaled the public part and the client scaled the private part with the
// same library (paper §V-D): the parts are added sample-wise and the
// duplicated 128 level offset removed. Detail lost to clamping in either
// pipeline is unrecoverable — the effect Fig. 4(b) shows.
func CombinePixels(pub, priv *imgplane.Image) (*imgplane.Image, error) {
	if pub.Channels() != priv.Channels() {
		return nil, fmt.Errorf("p3: channel mismatch %d vs %d", pub.Channels(), priv.Channels())
	}
	out := &imgplane.Image{Planes: make([]*imgplane.Plane, pub.Channels())}
	for ci := range pub.Planes {
		sum, err := pub.Planes[ci].Add(priv.Planes[ci])
		if err != nil {
			return nil, fmt.Errorf("p3: channel %d: %w", ci, err)
		}
		for i := range sum.Pix {
			sum.Pix[i] -= 128
		}
		out.Planes[ci] = sum
	}
	return out.Clamp8(), nil
}

// Sizes returns the encoded byte sizes of both parts. The public part uses
// default tables (it is an ordinary JPEG on the PSP); the private part uses
// optimized tables, the strongest reasonable compression for P3's sparse
// remainder image.
func (s *Split) Sizes() (publicBytes, privateBytes int64, err error) {
	publicBytes, err = s.Public.EncodedSize(jpegc.EncodeOptions{Tables: jpegc.TablesDefault})
	if err != nil {
		return 0, 0, fmt.Errorf("p3: encode public: %w", err)
	}
	privateBytes, err = s.Private.EncodedSize(jpegc.EncodeOptions{Tables: jpegc.TablesOptimized})
	if err != nil {
		return 0, 0, fmt.Errorf("p3: encode private: %w", err)
	}
	return publicBytes, privateBytes, nil
}
