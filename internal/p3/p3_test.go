package p3

import (
	"math"
	"testing"

	"puppies/internal/dct"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/transform"
)

func testImage(t testing.TB, w, h int) *jpegc.Image {
	t.Helper()
	planar, err := imgplane.New(w, h, 3)
	if err != nil {
		t.Fatal(err)
	}
	// High-contrast textured content (sharp edges + fine texture) so the
	// coefficient spectrum resembles the detailed photos of Fig. 4.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			edge := float32(0)
			if (x/4+y/6)%2 == 0 {
				edge = 110
			}
			tex := float32(70 * math.Sin(float64(x)*1.9) * math.Cos(float64(y)*2.3))
			planar.Planes[0].Pix[i] = 70 + edge + tex
			planar.Planes[1].Pix[i] = float32(128 + 60*math.Sin(float64(x+y)/3))
			planar.Planes[2].Pix[i] = float32(128 + 60*math.Cos(float64(x-2*y)/4))
		}
	}
	img, err := jpegc.FromPlanar(planar, jpegc.Options{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestSplitRecoverExact(t *testing.T) {
	img := testImage(t, 64, 48)
	s, err := SplitImage(img, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Recover(s)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range img.Comps {
		for bi := range img.Comps[ci].Blocks {
			if got.Comps[ci].Blocks[bi] != img.Comps[ci].Blocks[bi] {
				t.Fatalf("recovery not exact at component %d block %d", ci, bi)
			}
		}
	}
}

func TestSplitProperties(t *testing.T) {
	img := testImage(t, 64, 48)
	const thr = 20
	s, err := SplitImage(img, thr)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range s.Public.Comps {
		for bi := range s.Public.Comps[ci].Blocks {
			pb := &s.Public.Comps[ci].Blocks[bi]
			vb := &s.Private.Comps[ci].Blocks[bi]
			if pb[0] != 0 {
				t.Fatal("public DC not removed")
			}
			for i := 1; i < dct.BlockLen; i++ {
				if pb[i] > thr || pb[i] < -thr {
					t.Fatalf("public AC %d exceeds threshold", pb[i])
				}
				if vb[i] < 0 {
					t.Fatalf("private AC remainder %d is signed; P3 stores magnitudes", vb[i])
				}
				if vb[i] != 0 && (pb[i] != thr && pb[i] != -thr) {
					t.Fatalf("private remainder with unsaturated public value (%d, %d)", pb[i], vb[i])
				}
			}
		}
	}
}

func TestSplitValidation(t *testing.T) {
	img := testImage(t, 16, 16)
	if _, err := SplitImage(img, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := SplitImage(img, -3); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := Recover(&Split{}); err == nil {
		t.Error("empty split accepted")
	}
	other := testImage(t, 24, 16)
	if _, err := Recover(&Split{Public: img, Private: other}); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestPublicPartHidesContent(t *testing.T) {
	img := testImage(t, 64, 48)
	s, err := SplitImage(img, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := img.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	pub, err := s.PublicPixels()
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := imgplane.ImagePSNR(orig.Clamp8(), pub)
	if err != nil {
		t.Fatal(err)
	}
	if psnr > 20 {
		t.Errorf("public part too similar to original (PSNR %.1f dB)", psnr)
	}
}

func TestScalingLosesDetail(t *testing.T) {
	// The Fig. 4 effect: scale public and private parts separately through
	// clamped pipelines, combine, and compare against scaling the original.
	img := testImage(t, 64, 48)
	s, err := SplitImage(img, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}

	pubPix, err := s.PublicPixels()
	if err != nil {
		t.Fatal(err)
	}
	privPix, err := s.PrivatePixels()
	if err != nil {
		t.Fatal(err)
	}
	pubScaled, err := transform.ApplyPlanar(pubPix, spec)
	if err != nil {
		t.Fatal(err)
	}
	privScaled, err := transform.ApplyPlanar(privPix, spec)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := CombinePixels(pubScaled.Clamp8(), privScaled.Clamp8())
	if err != nil {
		t.Fatal(err)
	}

	orig, err := img.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	wantScaled, err := transform.ApplyPlanar(orig.Clamp8(), spec)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := imgplane.ImagePSNR(recovered, wantScaled.Clamp8())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(psnr, 1) || psnr > 45 {
		t.Errorf("P3 scaled recovery unexpectedly exact (PSNR %.1f dB); the clamped pipeline should lose detail", psnr)
	}
	if psnr < 10 {
		t.Errorf("P3 scaled recovery implausibly bad (PSNR %.1f dB)", psnr)
	}
}

func TestSizes(t *testing.T) {
	img := testImage(t, 64, 48)
	s, err := SplitImage(img, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	pub, priv, err := s.Sizes()
	if err != nil {
		t.Fatal(err)
	}
	if pub <= 0 || priv <= 0 {
		t.Fatalf("sizes (%d, %d) not positive", pub, priv)
	}
	origSize, err := img.EncodedSize(jpegc.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The P3 private part carries DC plus large AC remainders; it is a
	// substantial fraction of the original (paper: "much larger than
	// PuPPIeS private matrices").
	if priv < origSize/10 {
		t.Errorf("private part %d implausibly small vs original %d", priv, origSize)
	}
}
