// Package dataset generates the synthetic image corpora the experiments run
// on, standing in for the four external datasets of the paper (Table III):
// Caltech faces, FERET portraits, INRIA high-resolution scenes, and PASCAL
// VOC object photos.
//
// Substitution rationale (DESIGN.md §5): the storage-overhead experiments
// depend on natural-image DCT statistics (energy concentrated at low
// frequencies, long high-frequency zero runs), and the attack experiments
// depend on detectable/recognizable structure (faces with per-identity
// geometry, sensitive text, salient objects). The generators reproduce both
// properties deterministically from a seed. Image counts default to
// laptop-scale samples of each corpus; paper-scale counts are available via
// Profile.FullCount.
package dataset

import (
	"fmt"
	"math/rand"

	"puppies/internal/imgplane"
)

// Class labels a ground-truth sensitive region.
type Class string

// Region classes, mirroring the paper's ROI detectors (§IV-A).
const (
	ClassFace   Class = "face"
	ClassText   Class = "text"
	ClassObject Class = "object"
)

// Annotation is one ground-truth sensitive region.
type Annotation struct {
	Class Class
	// X, Y, W, H is the region rectangle in pixels.
	X, Y, W, H int
	// Identity is the person identity for faces (used by the face
	// recognition attack); -1 otherwise.
	Identity int
}

// Item is one generated image with its ground truth.
type Item struct {
	Name        string
	Image       *imgplane.Image
	Annotations []Annotation
}

// Kind selects a generator style.
type Kind string

// Generator styles per source dataset.
const (
	KindFaceScene Kind = "face-scene" // Caltech: faces in indoor/outdoor scenes
	KindPortrait  Kind = "portrait"   // FERET: single centered face
	KindLandscape Kind = "landscape"  // INRIA: high-resolution scenery
	KindObjects   Kind = "objects"    // PASCAL: objects, text, mixed scenes
)

// Profile describes one corpus.
type Profile struct {
	Name string
	// W, H are the generated resolution.
	W, H int
	// SampleCount is the default number of images experiments use;
	// FullCount is the paper-scale corpus size.
	SampleCount int
	FullCount   int
	Kind        Kind
	// Identities is the number of distinct face identities (face kinds).
	Identities int
}

// The four corpora of Table III. INRIA's resolution is halved from the
// paper's 2448x3264 to keep default runs laptop-scale; the full resolution
// remains available by overriding W and H.
var (
	Caltech = Profile{Name: "caltech", W: 896, H: 592, SampleCount: 30, FullCount: 450, Kind: KindFaceScene, Identities: 27}
	FERET   = Profile{Name: "feret", W: 256, H: 384, SampleCount: 120, FullCount: 11338, Kind: KindPortrait, Identities: 40}
	INRIA   = Profile{Name: "inria", W: 1224, H: 1632, SampleCount: 8, FullCount: 1491, Kind: KindLandscape}
	PASCAL  = Profile{Name: "pascal", W: 504, H: 336, SampleCount: 40, FullCount: 4952, Kind: KindObjects}
)

// Generator deterministically produces a corpus's items.
type Generator struct {
	profile Profile
	seed    int64
}

// NewGenerator returns a generator for the profile. The same (profile,
// seed, index) always yields the same image.
func NewGenerator(p Profile, seed int64) (*Generator, error) {
	if p.W < 64 || p.H < 64 {
		return nil, fmt.Errorf("dataset: profile %q resolution %dx%d too small", p.Name, p.W, p.H)
	}
	switch p.Kind {
	case KindFaceScene, KindPortrait, KindLandscape, KindObjects:
	default:
		return nil, fmt.Errorf("dataset: unknown kind %q", p.Kind)
	}
	return &Generator{profile: p, seed: seed}, nil
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.profile }

// Item generates the index-th image of the corpus.
func (g *Generator) Item(index int) *Item {
	rng := rand.New(rand.NewSource(g.seed*1_000_003 + int64(index)))
	item := &Item{Name: fmt.Sprintf("%s-%05d", g.profile.Name, index)}
	switch g.profile.Kind {
	case KindPortrait:
		item.Image, item.Annotations = g.portrait(rng, index)
	case KindFaceScene:
		item.Image, item.Annotations = g.faceScene(rng, index)
	case KindLandscape:
		item.Image, item.Annotations = g.landscape(rng)
	default:
		item.Image, item.Annotations = g.objects(rng)
	}
	return item
}

// Batch generates items [0, n).
func (g *Generator) Batch(n int) []*Item {
	items := make([]*Item, n)
	for i := range items {
		items[i] = g.Item(i)
	}
	return items
}

// identityParams are per-person face geometry, fixed across the person's
// images so eigenface recognition has something to learn.
type identityParams struct {
	skinR, skinG, skinB float32
	eyeDX               int // half distance between eyes, relative units
	eyeH                int
	mouthW              int
	faceAspect          float64
	hairR, hairG, hairB float32
	browTilt            int
}

func identityFor(profileSeed int64, id int) identityParams {
	rng := rand.New(rand.NewSource(profileSeed*7_777_777 + int64(id)))
	return identityParams{
		skinR:      float32(180 + rng.Intn(60)),
		skinG:      float32(130 + rng.Intn(50)),
		skinB:      float32(95 + rng.Intn(45)),
		eyeDX:      14 + rng.Intn(8),
		eyeH:       -6 - rng.Intn(8),
		mouthW:     10 + rng.Intn(10),
		faceAspect: 1.15 + rng.Float64()*0.35,
		hairR:      float32(30 + rng.Intn(90)),
		hairG:      float32(20 + rng.Intn(60)),
		hairB:      float32(10 + rng.Intn(40)),
		browTilt:   rng.Intn(3) - 1,
	}
}

// drawFace renders one face centered at (cx, cy) with half-width rx, and
// returns its bounding-box annotation.
func (g *Generator) drawFace(c *canvas, rng *rand.Rand, cx, cy, rx int, id int) Annotation {
	p := identityFor(g.seed, id)
	ry := int(float64(rx) * p.faceAspect)
	light := float32(rng.Intn(30) - 15) // per-image illumination variation

	// Hair cap.
	c.fillEllipse(cx, cy-ry/2, rx+rx/8, ry*3/4, p.hairR, p.hairG, p.hairB)
	// Face.
	c.fillEllipse(cx, cy, rx, ry, p.skinR+light, p.skinG+light, p.skinB+light)
	// Eyes: sclera + pupil.
	scale := float64(rx) / 32.0
	eyeDX := int(float64(p.eyeDX) * scale)
	eyeY := cy + int(float64(p.eyeH)*scale)
	eyeR := maxInt(2, int(4*scale))
	for _, sx := range []int{-1, 1} {
		ex := cx + sx*eyeDX
		c.fillEllipse(ex, eyeY, eyeR+1, eyeR, 235, 235, 235)
		c.fillEllipse(ex, eyeY, eyeR/2+1, eyeR/2+1, 30, 25, 25)
		// Eyebrow.
		c.fillRect(ex-eyeR-1, eyeY-2*eyeR+sx*p.browTilt, 2*eyeR+2, maxInt(1, eyeR/2), 40, 30, 25)
	}
	// Nose.
	c.fillRect(cx-1, cy, maxInt(2, int(2*scale)), int(8*scale), p.skinR-40, p.skinG-40, p.skinB-40)
	// Mouth.
	mw := int(float64(p.mouthW) * scale)
	c.fillEllipse(cx, cy+int(18*scale), mw, maxInt(2, int(3*scale)), 165, 70, 70)

	return Annotation{
		Class:    ClassFace,
		X:        cx - rx - rx/8,
		Y:        cy - ry - ry/4,
		W:        2*rx + rx/4,
		H:        2*ry + ry/2,
		Identity: id,
	}
}

func (g *Generator) backgroundTexture(c *canvas, rng *rand.Rand, rBase, gBase, bBase float32, amp float32) {
	noise := newValueNoise(rng)
	w, h := c.img.W(), c.img.H()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Multi-octave structure plus fine-grain detail: natural photos
			// carry substantial high-frequency AC energy, which the storage
			// experiments depend on.
			n := float32(noise.fbm(float64(x), float64(y), 6, 0.01))
			fine := float32(noise.at(float64(x), float64(y), 0.45)-0.5) * 28
			c.setRGB(x, y, rBase+amp*n+fine, gBase+amp*n*0.9+fine, bBase+amp*n*0.8+fine)
		}
	}
}

func (g *Generator) portrait(rng *rand.Rand, index int) (*imgplane.Image, []Annotation) {
	p := g.profile
	c := newCanvas(p.W, p.H)
	g.backgroundTexture(c, rng, 90, 95, 110, 60)
	id := index % maxInt(1, p.Identities)
	// Shoulders.
	c.fillRect(p.W/6, p.H*2/3, p.W*2/3, p.H/3, 60, 60, float32(80+rng.Intn(60)))
	ann := g.drawFace(c, rng, p.W/2, p.H*2/5, p.W/5, id)
	return c.img, []Annotation{clampAnn(ann, p.W, p.H)}
}

func (g *Generator) faceScene(rng *rand.Rand, index int) (*imgplane.Image, []Annotation) {
	p := g.profile
	c := newCanvas(p.W, p.H)
	g.backgroundTexture(c, rng, 100, 110, 100, 80)
	// Furniture-like rectangles.
	for i := 0; i < 4; i++ {
		c.fillRect(rng.Intn(p.W-60), rng.Intn(p.H-60), 40+rng.Intn(120), 30+rng.Intn(90),
			float32(60+rng.Intn(120)), float32(60+rng.Intn(100)), float32(50+rng.Intn(90)))
	}
	var anns []Annotation
	nFaces := 1 + rng.Intn(2)
	for i := 0; i < nFaces; i++ {
		id := (index*2 + i) % maxInt(1, g.profile.Identities)
		rx := p.H/8 + rng.Intn(p.H/10)
		cx := p.W/4 + rng.Intn(p.W/2)
		cy := p.H/3 + rng.Intn(p.H/4)
		anns = append(anns, clampAnn(g.drawFace(c, rng, cx, cy, rx, id), p.W, p.H))
	}
	return c.img, anns
}

func (g *Generator) landscape(rng *rand.Rand) (*imgplane.Image, []Annotation) {
	p := g.profile
	c := newCanvas(p.W, p.H)
	noise := newValueNoise(rng)
	horizon := p.H/3 + rng.Intn(p.H/4)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			fine := float32(noise.at(float64(x), float64(y), 0.5)-0.5) * 26
			if y < horizon {
				// Sky gradient with soft clouds and sensor-grain detail.
				t := float32(y) / float32(horizon)
				cl := float32(noise.fbm(float64(x), float64(y), 4, 0.004)) * 60
				c.setRGB(x, y, 90+60*t+cl+fine/2, 140+40*t+cl+fine/2, 220-30*t+cl*0.5+fine/2)
			} else {
				// Terrain with ridged texture and dense foliage detail.
				n := float32(noise.fbm(float64(x), float64(y), 7, 0.006))
				c.setRGB(x, y, 40+90*n+fine, 80+80*n+fine, 30+60*n+fine)
			}
		}
	}
	// Mountain ridge.
	for x := 0; x < p.W; x++ {
		ridge := horizon - int(float64(p.H/6)*noise.fbm(float64(x), 0, 3, 0.003))
		for y := ridge; y < horizon; y++ {
			n := float32(noise.fbm(float64(x), float64(y), 3, 0.02))
			c.setRGB(x, y, 70+40*n, 65+40*n, 75+40*n)
		}
	}
	// A "building" — the salient object.
	bw, bh := p.W/6+rng.Intn(p.W/8), p.H/5+rng.Intn(p.H/8)
	bx, by := p.W/8+rng.Intn(p.W/2), horizon-bh/4
	c.fillRect(bx, by, bw, bh, 190, 185, 175)
	for wy := by + 8; wy < by+bh-8; wy += 24 {
		for wx := bx + 8; wx < bx+bw-8; wx += 20 {
			c.fillRect(wx, wy, 10, 14, 40, 45, 70)
		}
	}
	ann := clampAnn(Annotation{Class: ClassObject, X: bx, Y: by, W: bw, H: bh, Identity: -1}, p.W, p.H)
	return c.img, []Annotation{ann}
}

func (g *Generator) objects(rng *rand.Rand) (*imgplane.Image, []Annotation) {
	p := g.profile
	c := newCanvas(p.W, p.H)
	g.backgroundTexture(c, rng, 110, 105, 95, 70)
	var anns []Annotation

	// A salient high-contrast object (vehicle-ish rounded rectangle).
	ow, oh := p.W/4+rng.Intn(p.W/6), p.H/4+rng.Intn(p.H/6)
	ox, oy := rng.Intn(p.W-ow-20)+10, rng.Intn(p.H-oh-20)+10
	r, gg, b := float32(150+rng.Intn(100)), float32(30+rng.Intn(60)), float32(30+rng.Intn(60))
	c.fillRect(ox, oy, ow, oh, r, gg, b)
	c.fillEllipse(ox+ow/4, oy+oh, ow/8, ow/8, 25, 25, 25)
	c.fillEllipse(ox+3*ow/4, oy+oh, ow/8, ow/8, 25, 25, 25)
	anns = append(anns, clampAnn(Annotation{
		Class: ClassObject, X: ox - 4, Y: oy - 4, W: ow + 8, H: oh + ow/8 + 12, Identity: -1,
	}, p.W, p.H))

	// A license-plate-like text region on the object (sensitive text).
	plate := fmt.Sprintf("%c%c%c %d%d%d",
		'A'+rune(rng.Intn(5)), 'A'+rune(rng.Intn(5)), 'A'+rune(rng.Intn(5)),
		rng.Intn(10), rng.Intn(10), rng.Intn(10))
	// Only glyphs present in the font render; fall back to digits.
	plate = sanitizeText(plate)
	scale := maxInt(2, ow/(6*len([]rune(plate))))
	tw := textWidth(plate, scale)
	tx, ty := ox+(ow-tw)/2, oy+oh-9*scale
	c.fillRect(tx-scale, ty-scale, tw+2*scale, 9*scale, 235, 235, 225)
	x, y, w, h := c.drawText(plate, tx, ty, scale, 20, 20, 30)
	anns = append(anns, clampAnn(Annotation{Class: ClassText, X: x - scale, Y: y - scale, W: w + 2*scale, H: h + 2*scale, Identity: -1}, p.W, p.H))

	// Occasionally a bystander face.
	if rng.Intn(2) == 0 {
		rx := p.H / 10
		cx := p.W - rx*3 - rng.Intn(p.W/6)
		cy := p.H/4 + rng.Intn(p.H/5)
		id := rng.Intn(maxInt(1, 20))
		anns = append(anns, clampAnn(g.drawFace(c, rng, cx, cy, rx, id), p.W, p.H))
	}
	return c.img, anns
}

// sanitizeText replaces runes missing from the bitmap font with digits.
func sanitizeText(s string) string {
	out := []rune(s)
	for i, ch := range out {
		if _, ok := glyphs[ch]; !ok {
			out[i] = rune('0' + i%10)
		}
	}
	return string(out)
}

func clampAnn(a Annotation, w, h int) Annotation {
	if a.X < 0 {
		a.W += a.X
		a.X = 0
	}
	if a.Y < 0 {
		a.H += a.Y
		a.Y = 0
	}
	if a.X+a.W > w {
		a.W = w - a.X
	}
	if a.Y+a.H > h {
		a.H = h - a.Y
	}
	return a
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
