package dataset

import (
	"testing"

	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
)

func TestAllProfilesGenerate(t *testing.T) {
	for _, p := range []Profile{Caltech, FERET, INRIA, PASCAL} {
		g, err := NewGenerator(p, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		item := g.Item(0)
		if item.Image.W() != p.W || item.Image.H() != p.H {
			t.Errorf("%s: got %dx%d, want %dx%d", p.Name, item.Image.W(), item.Image.H(), p.W, p.H)
		}
		if err := item.Image.Validate(); err != nil {
			t.Errorf("%s: invalid image: %v", p.Name, err)
		}
		if len(item.Annotations) == 0 {
			t.Errorf("%s: no annotations", p.Name)
		}
		for _, a := range item.Annotations {
			if a.W <= 0 || a.H <= 0 || a.X < 0 || a.Y < 0 ||
				a.X+a.W > p.W || a.Y+a.H > p.H {
				t.Errorf("%s: annotation %+v outside image", p.Name, a)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	g1, _ := NewGenerator(PASCAL, 42)
	g2, _ := NewGenerator(PASCAL, 42)
	a, b := g1.Item(3), g2.Item(3)
	for ci := range a.Image.Planes {
		for i := range a.Image.Planes[ci].Pix {
			if a.Image.Planes[ci].Pix[i] != b.Image.Planes[ci].Pix[i] {
				t.Fatal("same seed+index produced different images")
			}
		}
	}
	g3, _ := NewGenerator(PASCAL, 43)
	c := g3.Item(3)
	same := true
	for ci := range a.Image.Planes {
		for i := range a.Image.Planes[ci].Pix {
			if a.Image.Planes[ci].Pix[i] != c.Image.Planes[ci].Pix[i] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical images")
	}
}

func TestPortraitIdentitiesStable(t *testing.T) {
	g, _ := NewGenerator(FERET, 7)
	// Items index and index+Identities share an identity.
	a := g.Item(2)
	b := g.Item(2 + FERET.Identities)
	if a.Annotations[0].Identity != b.Annotations[0].Identity {
		t.Errorf("identity mismatch: %d vs %d", a.Annotations[0].Identity, b.Annotations[0].Identity)
	}
	c := g.Item(3)
	if a.Annotations[0].Identity == c.Annotations[0].Identity {
		t.Error("adjacent indices share an identity")
	}
}

func TestFaceAnnotationsHaveIdentity(t *testing.T) {
	g, _ := NewGenerator(Caltech, 5)
	found := false
	for i := 0; i < 3; i++ {
		for _, a := range g.Item(i).Annotations {
			if a.Class == ClassFace {
				found = true
				if a.Identity < 0 {
					t.Errorf("face annotation without identity: %+v", a)
				}
			}
		}
	}
	if !found {
		t.Error("Caltech generator produced no faces")
	}
}

func TestPascalHasTextAndObject(t *testing.T) {
	g, _ := NewGenerator(PASCAL, 9)
	classes := map[Class]bool{}
	for i := 0; i < 5; i++ {
		for _, a := range g.Item(i).Annotations {
			classes[a.Class] = true
		}
	}
	if !classes[ClassText] || !classes[ClassObject] {
		t.Errorf("PASCAL items missing text or object annotations: %v", classes)
	}
}

// The whole point of the generators: their output must have natural JPEG
// statistics — it must compress substantially.
func TestGeneratedImagesCompressNaturally(t *testing.T) {
	g, _ := NewGenerator(PASCAL, 3)
	item := g.Item(0)
	img, err := jpegc.FromPlanar(item.Image, jpegc.Options{Quality: 75})
	if err != nil {
		t.Fatal(err)
	}
	size, err := img.EncodedSize(jpegc.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rawSize := int64(item.Image.W() * item.Image.H() * 3)
	ratio := float64(rawSize) / float64(size)
	if ratio < 4 {
		t.Errorf("compression ratio %.1f too low; generated content is not natural-image-like", ratio)
	}
	// Round trip through the codec must be faithful.
	back, err := img.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := imgplane.ImagePSNR(item.Image, back)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 25 {
		t.Errorf("codec round trip PSNR %.1f dB; content too pathological", psnr)
	}
}

func TestBatch(t *testing.T) {
	g, _ := NewGenerator(FERET, 1)
	items := g.Batch(4)
	if len(items) != 4 {
		t.Fatalf("got %d items", len(items))
	}
	names := map[string]bool{}
	for _, it := range items {
		if names[it.Name] {
			t.Errorf("duplicate item name %s", it.Name)
		}
		names[it.Name] = true
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Profile{Name: "tiny", W: 8, H: 8, Kind: KindObjects}, 1); err == nil {
		t.Error("tiny profile accepted")
	}
	if _, err := NewGenerator(Profile{Name: "bad", W: 100, H: 100, Kind: "wat"}, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSanitizeText(t *testing.T) {
	out := sanitizeText("AZ9?")
	if _, ok := glyphs[rune(out[1])]; !ok {
		t.Errorf("sanitize left unknown rune: %q", out)
	}
	if out[0] != 'A' || out[2] != '9' {
		t.Errorf("sanitize changed known runes: %q", out)
	}
}
