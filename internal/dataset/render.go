package dataset

import (
	"math"
	"math/rand"

	"puppies/internal/imgplane"
)

// canvas wraps a planar YUV image with RGB drawing primitives.
type canvas struct {
	img *imgplane.Image
}

// newCanvas allocates a drawing surface.
//
// Invariant (panic audit): the panic is unreachable from user config —
// NewGenerator is the only config entry point and rejects profiles smaller
// than 64x64 before any canvas is created, and every internal caller passes
// the validated profile's W/H. It stays a panic because a failure here can
// only mean a bug in this package.
func newCanvas(w, h int) *canvas {
	img, err := imgplane.New(w, h, 3)
	if err != nil {
		panic(err)
	}
	return &canvas{img: img}
}

func (c *canvas) setRGB(x, y int, r, g, b float32) {
	if x < 0 || y < 0 || x >= c.img.W() || y >= c.img.H() {
		return
	}
	yy, uu, vv := imgplane.RGBToYUV(r, g, b)
	i := y*c.img.W() + x
	c.img.Planes[0].Pix[i] = yy
	c.img.Planes[1].Pix[i] = uu
	c.img.Planes[2].Pix[i] = vv
}

func (c *canvas) fillRect(x, y, w, h int, r, g, b float32) {
	for yy := y; yy < y+h; yy++ {
		for xx := x; xx < x+w; xx++ {
			c.setRGB(xx, yy, r, g, b)
		}
	}
}

// fillEllipse draws a filled axis-aligned ellipse centered at (cx, cy).
func (c *canvas) fillEllipse(cx, cy, rx, ry int, r, g, b float32) {
	for yy := cy - ry; yy <= cy+ry; yy++ {
		for xx := cx - rx; xx <= cx+rx; xx++ {
			dx := float64(xx-cx) / float64(rx)
			dy := float64(yy-cy) / float64(ry)
			if dx*dx+dy*dy <= 1 {
				c.setRGB(xx, yy, r, g, b)
			}
		}
	}
}

// valueNoise is seeded multi-octave value noise in [0, 1], the texture
// source that gives synthetic images natural low-frequency-dominated DCT
// spectra.
type valueNoise struct {
	perm [256]int
	grad [256]float64
}

func newValueNoise(rng *rand.Rand) *valueNoise {
	n := &valueNoise{}
	for i := range n.perm {
		n.perm[i] = i
	}
	rng.Shuffle(len(n.perm), func(i, j int) { n.perm[i], n.perm[j] = n.perm[j], n.perm[i] })
	for i := range n.grad {
		n.grad[i] = rng.Float64()
	}
	return n
}

func (n *valueNoise) lattice(x, y int) float64 {
	return n.grad[n.perm[(x+n.perm[y&255])&255]]
}

func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// at returns single-octave noise at the given frequency.
func (n *valueNoise) at(x, y, freq float64) float64 {
	fx, fy := x*freq, y*freq
	x0, y0 := int(math.Floor(fx)), int(math.Floor(fy))
	tx, ty := smoothstep(fx-float64(x0)), smoothstep(fy-float64(y0))
	v00 := n.lattice(x0, y0)
	v10 := n.lattice(x0+1, y0)
	v01 := n.lattice(x0, y0+1)
	v11 := n.lattice(x0+1, y0+1)
	return (v00*(1-tx)+v10*tx)*(1-ty) + (v01*(1-tx)+v11*tx)*ty
}

// fbm is fractal Brownian motion: octaves of value noise with halving
// amplitude, normalized to [0, 1].
func (n *valueNoise) fbm(x, y float64, octaves int, baseFreq float64) float64 {
	var sum, norm, amp float64
	amp = 1
	freq := baseFreq
	for o := 0; o < octaves; o++ {
		sum += amp * n.at(x, y, freq)
		norm += amp
		amp /= 2
		freq *= 2
	}
	return sum / norm
}

// glyphs is a compact 5x7 bitmap font (rows top to bottom, 5 LSBs used,
// bit 4 = leftmost pixel). It covers digits and the letters the text
// renderer needs.
var glyphs = map[rune][7]byte{
	'0': {0x0E, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0E},
	'1': {0x04, 0x0C, 0x04, 0x04, 0x04, 0x04, 0x0E},
	'2': {0x0E, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1F},
	'3': {0x1F, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0E},
	'4': {0x02, 0x06, 0x0A, 0x12, 0x1F, 0x02, 0x02},
	'5': {0x1F, 0x10, 0x1E, 0x01, 0x01, 0x11, 0x0E},
	'6': {0x06, 0x08, 0x10, 0x1E, 0x11, 0x11, 0x0E},
	'7': {0x1F, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08},
	'8': {0x0E, 0x11, 0x11, 0x0E, 0x11, 0x11, 0x0E},
	'9': {0x0E, 0x11, 0x11, 0x0F, 0x01, 0x02, 0x0C},
	'A': {0x0E, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11},
	'B': {0x1E, 0x11, 0x11, 0x1E, 0x11, 0x11, 0x1E},
	'C': {0x0E, 0x11, 0x10, 0x10, 0x10, 0x11, 0x0E},
	'D': {0x1E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x1E},
	'E': {0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x1F},
	'H': {0x11, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11},
	'L': {0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x1F},
	'N': {0x11, 0x19, 0x15, 0x13, 0x11, 0x11, 0x11},
	'O': {0x0E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E},
	'R': {0x1E, 0x11, 0x11, 0x1E, 0x14, 0x12, 0x11},
	'S': {0x0F, 0x10, 0x10, 0x0E, 0x01, 0x01, 0x1E},
	'W': {0x11, 0x11, 0x11, 0x15, 0x15, 0x1B, 0x11},
	'-': {0x00, 0x00, 0x00, 0x1F, 0x00, 0x00, 0x00},
	' ': {0, 0, 0, 0, 0, 0, 0},
	'!': {0x04, 0x04, 0x04, 0x04, 0x04, 0x00, 0x04},
}

// drawText renders the string at (x, y) with the given pixel scale and
// color, returning the bounding rectangle (x, y, w, h).
func (c *canvas) drawText(text string, x, y, scale int, r, g, b float32) (int, int, int, int) {
	cx := x
	for _, ch := range text {
		bitmap, ok := glyphs[ch]
		if !ok {
			bitmap = glyphs[' ']
		}
		for row := 0; row < 7; row++ {
			for col := 0; col < 5; col++ {
				if bitmap[row]>>(4-col)&1 == 1 {
					c.fillRect(cx+col*scale, y+row*scale, scale, scale, r, g, b)
				}
			}
		}
		cx += 6 * scale
	}
	return x, y, cx - x, 7 * scale
}

// textWidth returns the rendered width of the string at the given scale.
func textWidth(text string, scale int) int { return 6 * scale * len([]rune(text)) }
