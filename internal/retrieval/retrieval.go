// Package retrieval is a small content-based image search engine used to
// reproduce the paper's Fig. 2 usability argument: a partially perturbed
// image still retrieves (nearly) the same results as the original, because
// the unprotected background dominates its visual signature, while a fully
// perturbed image does not. It stands in for the paper's Google Image
// Search probe (DESIGN.md §5).
//
// The engine uses a classical descriptor: a spatially partitioned YUV color
// histogram with cosine similarity — deliberately simple, deterministic,
// and in the same family as the global-feature stages of early web-scale
// image search.
package retrieval

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"puppies/internal/imgplane"
)

// ErrPlaneGeometry reports an image whose planes disagree on geometry —
// typically chroma planes handed over still subsampled instead of being
// upsampled to the luma grid. Callers branch on it with errors.Is to tell
// "fix the input" apart from other descriptor failures.
var ErrPlaneGeometry = errors.New("retrieval: mismatched plane geometry")

// Descriptor dimensions: a 2x2 spatial grid, each cell holding an
// 8x4x4-bin YUV histogram.
const (
	gridSide = 2
	yBins    = 8
	uBins    = 4
	vBins    = 4
	cellDims = yBins * uBins * vBins
	// DescriptorLen is the full descriptor length.
	DescriptorLen = gridSide * gridSide * cellDims
)

// Descriptor is an L2-normalized visual signature.
type Descriptor [DescriptorLen]float32

// Describe computes the descriptor of an image (any size, 1 or 3 channels;
// monochrome images use neutral chroma). Planes that disagree on geometry
// yield ErrPlaneGeometry.
func Describe(img *imgplane.Image) (Descriptor, error) {
	var d Descriptor
	if len(img.Planes) > 0 {
		pw, ph := img.Planes[0].W, img.Planes[0].H
		for i, p := range img.Planes {
			if p.W != pw || p.H != ph || len(p.Pix) != p.W*p.H {
				return d, fmt.Errorf("%w: plane %d is %dx%d with %d samples, want %dx%d",
					ErrPlaneGeometry, i, p.W, p.H, len(p.Pix), pw, ph)
			}
		}
	}
	if err := img.Validate(); err != nil {
		return d, err
	}
	w, h := img.W(), img.H()
	for py := 0; py < h; py++ {
		cy := py * gridSide / h
		for px := 0; px < w; px++ {
			cx := px * gridSide / w
			i := py*w + px
			y := img.Planes[0].Pix[i]
			u, v := float32(128), float32(128)
			if img.Channels() == 3 {
				u = img.Planes[1].Pix[i]
				v = img.Planes[2].Pix[i]
			}
			bin := binOf(y, yBins)*uBins*vBins + binOf(u, uBins)*vBins + binOf(v, vBins)
			d[(cy*gridSide+cx)*cellDims+bin]++
		}
	}
	// L2 normalization makes cosine similarity a dot product.
	var norm float64
	for _, v := range d {
		norm += float64(v) * float64(v)
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		for i := range d {
			d[i] = float32(float64(d[i]) / norm)
		}
	}
	return d, nil
}

func binOf(v float32, bins int) int {
	b := int(v * float32(bins) / 256)
	if b < 0 {
		return 0
	}
	if b >= bins {
		return bins - 1
	}
	return b
}

// Similarity is the cosine similarity of two descriptors, in [-1, 1].
func Similarity(a, b *Descriptor) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	return dot
}

// Index is an in-memory image index.
type Index struct {
	ids   []string
	descs []Descriptor
}

// NewIndex returns an empty index.
func NewIndex() *Index { return &Index{} }

// Add registers an image under the given id.
func (ix *Index) Add(id string, img *imgplane.Image) error {
	if id == "" {
		return fmt.Errorf("retrieval: empty id")
	}
	d, err := Describe(img)
	if err != nil {
		return err
	}
	ix.ids = append(ix.ids, id)
	ix.descs = append(ix.descs, d)
	return nil
}

// Len returns the number of indexed images.
func (ix *Index) Len() int { return len(ix.ids) }

// Result is one retrieval hit.
type Result struct {
	ID    string
	Score float64
}

// Query returns the top-k most similar indexed images.
func (ix *Index) Query(img *imgplane.Image, k int) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("retrieval: k must be positive")
	}
	if ix.Len() == 0 {
		return nil, fmt.Errorf("retrieval: empty index")
	}
	q, err := Describe(img)
	if err != nil {
		return nil, err
	}
	results := make([]Result, ix.Len())
	for i := range ix.descs {
		results[i] = Result{ID: ix.ids[i], Score: Similarity(&q, &ix.descs[i])}
	}
	sort.SliceStable(results, func(a, b int) bool { return results[a].Score > results[b].Score })
	if k > len(results) {
		k = len(results)
	}
	return results[:k], nil
}

// Overlap returns |a ∩ b| for two result lists (by ID) — the paper's
// "top-10 search results are highly overlapped" measure.
func Overlap(a, b []Result) int {
	set := make(map[string]bool, len(a))
	for _, r := range a {
		set[r.ID] = true
	}
	n := 0
	for _, r := range b {
		if set[r.ID] {
			n++
		}
	}
	return n
}
