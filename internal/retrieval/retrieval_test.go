package retrieval

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"puppies/internal/dataset"
	"puppies/internal/imgplane"
)

func corpus(t *testing.T, n int) []*dataset.Item {
	t.Helper()
	g, err := dataset.NewGenerator(dataset.PASCAL, 17)
	if err != nil {
		t.Fatal(err)
	}
	return g.Batch(n)
}

func TestDescriptorNormalized(t *testing.T) {
	items := corpus(t, 2)
	d, err := Describe(items[0].Image)
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	for _, v := range d {
		norm += float64(v) * float64(v)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Errorf("descriptor norm %v, want 1", norm)
	}
	if s := Similarity(&d, &d); math.Abs(s-1) > 1e-5 {
		t.Errorf("self similarity %v", s)
	}
}

func TestQueryFindsSelfFirst(t *testing.T) {
	items := corpus(t, 12)
	ix := NewIndex()
	for _, it := range items {
		if err := ix.Add(it.Name, it.Image); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range items[:4] {
		res, err := ix.Query(it.Image, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].ID != it.Name {
			t.Errorf("query %s: top hit %s", it.Name, res[0].ID)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	ix := NewIndex()
	img, _ := imgplane.New(8, 8, 3)
	if _, err := ix.Query(img, 5); err == nil {
		t.Error("empty index query succeeded")
	}
	if err := ix.Add("", img); err == nil {
		t.Error("empty id accepted")
	}
	if err := ix.Add("a", img); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(img, 0); err == nil {
		t.Error("k=0 accepted")
	}
	res, err := ix.Query(img, 10)
	if err != nil || len(res) != 1 {
		t.Errorf("k>len: %v, %v", res, err)
	}
}

func TestOverlap(t *testing.T) {
	a := []Result{{ID: "1"}, {ID: "2"}, {ID: "3"}}
	b := []Result{{ID: "3"}, {ID: "4"}, {ID: "1"}}
	if got := Overlap(a, b); got != 2 {
		t.Errorf("overlap = %d", got)
	}
	if got := Overlap(nil, b); got != 0 {
		t.Errorf("nil overlap = %d", got)
	}
}

func TestDistinctImagesDissimilar(t *testing.T) {
	items := corpus(t, 6)
	var pairsBelow, total int
	for i := 0; i < len(items); i++ {
		di, err := Describe(items[i].Image)
		if err != nil {
			t.Fatal(err)
		}
		for j := i + 1; j < len(items); j++ {
			dj, err := Describe(items[j].Image)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if Similarity(&di, &dj) < 0.999 {
				pairsBelow++
			}
		}
	}
	if pairsBelow < total {
		t.Errorf("%d/%d image pairs are indistinguishable", total-pairsBelow, total)
	}
}

func TestMonochromeDescribe(t *testing.T) {
	img, err := imgplane.New(32, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.Planes[0].Pix {
		img.Planes[0].Pix[i] = float32(i % 256)
	}
	if _, err := Describe(img); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDescribe(b *testing.B) {
	g, err := dataset.NewGenerator(dataset.PASCAL, 17)
	if err != nil {
		b.Fatal(err)
	}
	img := g.Item(0).Image
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Describe(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery(b *testing.B) {
	g, err := dataset.NewGenerator(dataset.PASCAL, 17)
	if err != nil {
		b.Fatal(err)
	}
	ix := NewIndex()
	for i := 0; i < 20; i++ {
		item := g.Item(i)
		if err := ix.Add(fmt.Sprintf("img%d", i), item.Image); err != nil {
			b.Fatal(err)
		}
	}
	q := g.Item(0).Image
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDescribeMismatchedPlaneGeometry(t *testing.T) {
	// A half-resolution U plane (chroma still subsampled) must surface the
	// typed geometry error, from Describe and through Add/Query alike.
	img, err := imgplane.New(16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	half, err := imgplane.New(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	img.Planes[1] = half.Planes[0]
	if _, err := Describe(img); !errors.Is(err, ErrPlaneGeometry) {
		t.Fatalf("Describe err = %v, want ErrPlaneGeometry", err)
	}
	ix := NewIndex()
	if err := ix.Add("bad", img); !errors.Is(err, ErrPlaneGeometry) {
		t.Fatalf("Add err = %v, want ErrPlaneGeometry", err)
	}
	good, err := imgplane.New(16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("good", good); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Query(img, 1); !errors.Is(err, ErrPlaneGeometry) {
		t.Fatalf("Query err = %v, want ErrPlaneGeometry", err)
	}
	// A short pixel buffer (right W/H, wrong sample count) is geometry too.
	trunc, err := imgplane.New(16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	trunc.Planes[0].Pix = trunc.Planes[0].Pix[:100]
	if _, err := Describe(trunc); !errors.Is(err, ErrPlaneGeometry) {
		t.Fatalf("Describe truncated err = %v, want ErrPlaneGeometry", err)
	}
}
