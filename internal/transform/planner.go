package transform

import (
	"fmt"
	"math"

	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
)

// Plan is an execution plan for a spec: either the full-resolution path
// (decode every sample, transform, re-encode) or the scaled-decode fast
// path (reduced inverse DCT straight to a Num/8-size image, residual
// resample on the small planes, FDCT over the small result).
type Plan struct {
	// Scaled selects the reduced-IDCT fast path.
	Scaled bool
	// Num is the reduced decode numerator (the decode runs at Num/8 scale)
	// when Scaled: 2 for targets at or below 1/8 scale, 4 otherwise. The
	// choice is calibrated against the 40 dB full-path equivalence bar on
	// the dataset corpus: a 2/8 decode keeps too little spectrum to track
	// the area-averaged full path above 1/8 scale (it dips to ~34 dB on
	// text-heavy content and fails outright inside encrypted ROI), while 4/8
	// holds 42+ dB everywhere — including protected images — and still cuts
	// the decoded plane area 4x.
	Num int
	// OutW, OutH are the final pixel dimensions the transformed image must
	// have — identical to what the full path's ScaleBilinear would produce.
	OutW, OutH int
}

// PlanSpec decides how to execute spec on a w x h image. The scaled path is
// chosen only for pure downscales that end at or below half size: there the
// pixel-domain stage is a plain resample, so decoding at a reduced scale ≥
// the target and resampling the small image is equivalent to the full path
// up to quantization-noise-level residue. Everything else — upscales,
// identity-size ops, coefficient-domain ops, crops, rotations, filters —
// keeps the current full path unchanged.
//
// recoveryGrade must be set by callers on the PuPPIeS recovery route
// (shadow-ROI arithmetic, e.g. /pixels serving): receivers subtract shadow
// planes computed from the full-resolution transform definition, so the
// serve side must execute that exact definition. PlanSpec then always
// returns the full path.
func PlanSpec(w, h int, spec Spec, recoveryGrade bool) Plan {
	full := Plan{}
	if recoveryGrade || w < 1 || h < 1 {
		return full
	}
	if spec.Op != OpScale || spec.Validate() != nil {
		return full
	}
	fx, fy := spec.FactorX, spec.FactorY
	if fx > 0.5 || fy > 0.5 {
		return full
	}
	num := 4
	if math.Max(fx, fy) <= 0.125 {
		num = 2
	}
	return Plan{Scaled: true, Num: num, OutW: scaleDim(w, fx), OutH: scaleDim(h, fy)}
}

// scaleDim mirrors ScaleBilinear's output sizing exactly, so planned and
// full executions of the same spec always agree on dimensions.
func scaleDim(px int, f float64) int {
	d := int(math.Round(float64(px) * f))
	if d < 1 {
		d = 1
	}
	return d
}

// ApplyPlanned executes the spec like Apply, routing eligible downscales
// through the scaled-decode fast path. The output is a drop-in replacement
// for Apply's: same dimensions, same quantization tables, and equivalent
// samples (≥ 40 dB against the full path on the test corpus, enforced by
// TestApplyPlannedMatchesApplyOnCorpus). It is NOT bit-identical to Apply,
// so a given serve route must pick one path and stick to it — mixing the
// two behind one cache key would make cached bytes depend on timing.
//
// Recovery-grade callers (shadow-ROI subtraction) must keep calling Apply:
// recovery needs the full path's exact sample arithmetic, not an
// equivalent image. ApplyPlanned is for presentation serving.
func ApplyPlanned(img *jpegc.Image, spec Spec) (*jpegc.Image, error) {
	plan := PlanSpec(img.W, img.H, spec, false)
	if !plan.Scaled {
		return Apply(img, spec)
	}
	small, err := img.ToPlanarScaled(plan.Num)
	if err != nil {
		return nil, err
	}
	out := small
	if small.W() != plan.OutW || small.H() != plan.OutH {
		// Residual resample from the decoded Num/8 grid to the exact target,
		// on planes up to 16x smaller than the full path would touch. Runs
		// through ScaleBilinear (with dimension-derived factors) so the
		// residual step applies the same area-average antialiasing rule the
		// full path does when the remaining shrink is below half size.
		rfx := float64(plan.OutW) / float64(small.W())
		rfy := float64(plan.OutH) / float64(small.H())
		out, err = imgplane.New(plan.OutW, plan.OutH, small.Channels())
		if err != nil {
			return nil, err
		}
		for ci, p := range small.Planes {
			q, err := ScaleBilinear(p, rfx, rfy)
			if err != nil {
				return nil, err
			}
			if q.W != plan.OutW || q.H != plan.OutH {
				// Dimension-derived factors always round back to the target.
				return nil, fmt.Errorf("transform: residual resample produced %dx%d, want %dx%d", q.W, q.H, plan.OutW, plan.OutH)
			}
			out.Planes[ci] = q
		}
	}
	lum := img.Comps[0].Quant
	chrom := lum
	if len(img.Comps) == 3 {
		chrom = img.Comps[1].Quant
	}
	return jpegc.FromPlanarWithQuant(out, &lum, &chrom)
}
