package transform

import (
	"fmt"
	"math"

	"puppies/internal/imgplane"
	"puppies/internal/parallel"
)

// pixelRowGrain is the parallel chunk size for per-pixel resampling loops,
// in output rows. Each row's samples are computed independently from the
// (read-only) source plane, so output is identical at any worker count.
const pixelRowGrain = 32

// Kernel is a linear convolution kernel with odd side length.
type Kernel struct {
	Side    int
	Weights []float32
}

// Kernels holds the named linear filters the PSP offers. All are linear
// maps, so shadow-ROI subtraction can undo them.
var Kernels = map[string]Kernel{
	"box3": {Side: 3, Weights: []float32{
		1.0 / 9, 1.0 / 9, 1.0 / 9,
		1.0 / 9, 1.0 / 9, 1.0 / 9,
		1.0 / 9, 1.0 / 9, 1.0 / 9,
	}},
	"gaussian3": {Side: 3, Weights: []float32{
		1.0 / 16, 2.0 / 16, 1.0 / 16,
		2.0 / 16, 4.0 / 16, 2.0 / 16,
		1.0 / 16, 2.0 / 16, 1.0 / 16,
	}},
	"sharpen3": {Side: 3, Weights: []float32{
		0, -1, 0,
		-1, 5, -1,
		0, -1, 0,
	}},
	"gaussian5": {Side: 5, Weights: func() []float32 {
		base := []float32{1, 4, 6, 4, 1}
		w := make([]float32, 25)
		var sum float32
		for y := 0; y < 5; y++ {
			for x := 0; x < 5; x++ {
				w[y*5+x] = base[y] * base[x]
				sum += w[y*5+x]
			}
		}
		for i := range w {
			w[i] /= sum
		}
		return w
	}()},
}

// ScaleBilinear resizes a plane by the given factors using bilinear
// interpolation. The operation is a linear map of input samples.
func ScaleBilinear(p *imgplane.Plane, fx, fy float64) (*imgplane.Plane, error) {
	if fx <= 0 || fy <= 0 {
		return nil, fmt.Errorf("transform: scale factors must be positive, got %g, %g", fx, fy)
	}
	ow := int(math.Round(float64(p.W) * fx))
	oh := int(math.Round(float64(p.H) * fy))
	if ow < 1 {
		ow = 1
	}
	if oh < 1 {
		oh = 1
	}
	out := imgplane.NewPlane(ow, oh)
	parallel.For(oh, pixelRowGrain, func(lo, hi int) {
		for oy := lo; oy < hi; oy++ {
			// Center-aligned sampling.
			sy := (float64(oy)+0.5)/fy - 0.5
			y0 := int(math.Floor(sy))
			wy := float32(sy - float64(y0))
			for ox := 0; ox < ow; ox++ {
				sx := (float64(ox)+0.5)/fx - 0.5
				x0 := int(math.Floor(sx))
				wx := float32(sx - float64(x0))
				v := (1-wy)*((1-wx)*p.At(x0, y0)+wx*p.At(x0+1, y0)) +
					wy*((1-wx)*p.At(x0, y0+1)+wx*p.At(x0+1, y0+1))
				out.Pix[oy*ow+ox] = v
			}
		}
	})
	return out, nil
}

// CropPlane extracts the rectangle (x, y, w, h) from the plane.
func CropPlane(p *imgplane.Plane, x, y, w, h int) (*imgplane.Plane, error) {
	if w <= 0 || h <= 0 || x < 0 || y < 0 || x+w > p.W || y+h > p.H {
		return nil, fmt.Errorf("transform: crop (%d,%d,%d,%d) outside %dx%d plane", x, y, w, h, p.W, p.H)
	}
	out := imgplane.NewPlane(w, h)
	for r := 0; r < h; r++ {
		copy(out.Pix[r*w:(r+1)*w], p.Pix[(y+r)*p.W+x:(y+r)*p.W+x+w])
	}
	return out, nil
}

// RotatePlane rotates the plane by angle degrees counter-clockwise about its
// center using bilinear resampling. Output has the same dimensions; samples
// rotated in from outside the source are zero. The map is linear in the
// input samples (for fixed angle), so it commutes with addition.
func RotatePlane(p *imgplane.Plane, angleDeg float64) *imgplane.Plane {
	rad := angleDeg * math.Pi / 180
	sin, cos := math.Sin(rad), math.Cos(rad)
	cx, cy := float64(p.W-1)/2, float64(p.H-1)/2
	out := imgplane.NewPlane(p.W, p.H)
	parallel.For(p.H, pixelRowGrain, func(lo, hi int) {
		for oy := lo; oy < hi; oy++ {
			for ox := 0; ox < p.W; ox++ {
				// Inverse map: rotate output coordinate by -angle.
				dx, dy := float64(ox)-cx, float64(oy)-cy
				sx := cos*dx + sin*dy + cx
				sy := -sin*dx + cos*dy + cy
				x0, y0 := int(math.Floor(sx)), int(math.Floor(sy))
				if x0 < -1 || y0 < -1 || x0 > p.W-1 || y0 > p.H-1 {
					continue // outside source: leave zero
				}
				wx, wy := float32(sx-float64(x0)), float32(sy-float64(y0))
				v := (1-wy)*((1-wx)*atZero(p, x0, y0)+wx*atZero(p, x0+1, y0)) +
					wy*((1-wx)*atZero(p, x0, y0+1)+wx*atZero(p, x0+1, y0+1))
				out.Pix[oy*p.W+ox] = v
			}
		}
	})
	return out
}

// atZero samples with zero padding (instead of Plane.At's edge replication)
// so that rotation stays strictly linear including at borders.
func atZero(p *imgplane.Plane, x, y int) float32 {
	if x < 0 || y < 0 || x >= p.W || y >= p.H {
		return 0
	}
	return p.Pix[y*p.W+x]
}

// Convolve applies the linear kernel with zero padding at the borders.
func Convolve(p *imgplane.Plane, k Kernel) (*imgplane.Plane, error) {
	if k.Side%2 != 1 || len(k.Weights) != k.Side*k.Side {
		return nil, fmt.Errorf("transform: malformed kernel (side %d, %d weights)", k.Side, len(k.Weights))
	}
	half := k.Side / 2
	out := imgplane.NewPlane(p.W, p.H)
	parallel.For(p.H, pixelRowGrain, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < p.W; x++ {
				var sum float32
				for ky := 0; ky < k.Side; ky++ {
					for kx := 0; kx < k.Side; kx++ {
						sum += k.Weights[ky*k.Side+kx] * atZero(p, x+kx-half, y+ky-half)
					}
				}
				out.Pix[y*p.W+x] = sum
			}
		}
	})
	return out, nil
}

// Overlay adds src onto dst at offset (x, y), sample-wise, returning a new
// plane. Overlap composition in the frequency or pixel domain is linear.
func Overlay(dst, src *imgplane.Plane, x, y int) *imgplane.Plane {
	out := dst.Clone()
	for sy := 0; sy < src.H; sy++ {
		for sx := 0; sx < src.W; sx++ {
			ox, oy := x+sx, y+sy
			if ox < 0 || oy < 0 || ox >= out.W || oy >= out.H {
				continue
			}
			out.Pix[oy*out.W+ox] += src.Pix[sy*src.W+sx]
		}
	}
	return out
}

// ApplyPlanar applies the spec to every plane of a planar image. It supports
// all operations except OpCompress (which is defined on coefficients).
func ApplyPlanar(img *imgplane.Image, spec Spec) (*imgplane.Image, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	apply := func(f func(*imgplane.Plane) (*imgplane.Plane, error)) (*imgplane.Image, error) {
		out := &imgplane.Image{Planes: make([]*imgplane.Plane, len(img.Planes))}
		for i, p := range img.Planes {
			q, err := f(p)
			if err != nil {
				return nil, err
			}
			out.Planes[i] = q
		}
		return out, nil
	}
	switch spec.Op {
	case OpNone:
		return img.Clone(), nil
	case OpScale:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return ScaleBilinear(p, spec.FactorX, spec.FactorY)
		})
	case OpCrop:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return CropPlane(p, spec.X, spec.Y, spec.W, spec.H)
		})
	case OpRotate:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return RotatePlane(p, spec.Angle), nil
		})
	case OpFilter:
		k := Kernels[spec.Kernel]
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return Convolve(p, k)
		})
	case OpRotate90:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return rotatePlane90(p, 1), nil
		})
	case OpRotate180:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return rotatePlane90(p, 2), nil
		})
	case OpRotate270:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return rotatePlane90(p, 3), nil
		})
	case OpFlipH:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return flipPlane(p, true), nil
		})
	case OpFlipV:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return flipPlane(p, false), nil
		})
	case OpCompress:
		return nil, fmt.Errorf("transform: %s is a coefficient-domain operation; use Apply", spec.Op)
	default:
		return nil, fmt.Errorf("transform: unknown op %q", spec.Op)
	}
}

// rotatePlane90 rotates the plane by quarter*90 degrees clockwise.
func rotatePlane90(p *imgplane.Plane, quarter int) *imgplane.Plane {
	switch ((quarter % 4) + 4) % 4 {
	case 0:
		return p.Clone()
	case 1: // 90 CW: (x,y) -> (H-1-y, x)
		out := imgplane.NewPlane(p.H, p.W)
		for y := 0; y < p.H; y++ {
			for x := 0; x < p.W; x++ {
				out.Pix[x*out.W+(p.H-1-y)] = p.Pix[y*p.W+x]
			}
		}
		return out
	case 2:
		out := imgplane.NewPlane(p.W, p.H)
		for y := 0; y < p.H; y++ {
			for x := 0; x < p.W; x++ {
				out.Pix[(p.H-1-y)*p.W+(p.W-1-x)] = p.Pix[y*p.W+x]
			}
		}
		return out
	default: // 270 CW == 90 CCW: (x,y) -> (y, W-1-x)
		out := imgplane.NewPlane(p.H, p.W)
		for y := 0; y < p.H; y++ {
			for x := 0; x < p.W; x++ {
				out.Pix[(p.W-1-x)*out.W+y] = p.Pix[y*p.W+x]
			}
		}
		return out
	}
}

func flipPlane(p *imgplane.Plane, horizontal bool) *imgplane.Plane {
	out := imgplane.NewPlane(p.W, p.H)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			if horizontal {
				out.Pix[y*p.W+(p.W-1-x)] = p.Pix[y*p.W+x]
			} else {
				out.Pix[(p.H-1-y)*p.W+x] = p.Pix[y*p.W+x]
			}
		}
	}
	return out
}
