package transform

import (
	"fmt"
	"math"

	"puppies/internal/imgplane"
	"puppies/internal/parallel"
)

// pixelRowGrain is the parallel chunk size for per-pixel resampling loops,
// in output rows. Each row's samples are computed independently from the
// (read-only) source plane, so output is identical at any worker count.
const pixelRowGrain = 32

// Kernel is a linear convolution kernel with odd side length. When Sep is
// non-nil the kernel is separable — Weights equals the outer product of Sep
// with itself — and Convolve runs two 1-D passes instead of one 2-D pass,
// dropping the per-pixel work from Side² to 2·Side multiplies.
type Kernel struct {
	Side    int
	Weights []float32
	Sep     []float32
}

// Kernels holds the named linear filters the PSP offers. All are linear
// maps, so shadow-ROI subtraction can undo them.
var Kernels = map[string]Kernel{
	"box3": {Side: 3, Weights: []float32{
		1.0 / 9, 1.0 / 9, 1.0 / 9,
		1.0 / 9, 1.0 / 9, 1.0 / 9,
		1.0 / 9, 1.0 / 9, 1.0 / 9,
	}, Sep: []float32{1.0 / 3, 1.0 / 3, 1.0 / 3}},
	"gaussian3": {Side: 3, Weights: []float32{
		1.0 / 16, 2.0 / 16, 1.0 / 16,
		2.0 / 16, 4.0 / 16, 2.0 / 16,
		1.0 / 16, 2.0 / 16, 1.0 / 16,
	}, Sep: []float32{1.0 / 4, 2.0 / 4, 1.0 / 4}},
	// sharpen3 is not an outer product of any 1-D factor, so it has no Sep
	// and always takes the full 2-D path.
	"sharpen3": {Side: 3, Weights: []float32{
		0, -1, 0,
		-1, 5, -1,
		0, -1, 0,
	}},
	"gaussian5": {Side: 5, Weights: func() []float32 {
		base := []float32{1, 4, 6, 4, 1}
		w := make([]float32, 25)
		var sum float32
		for y := 0; y < 5; y++ {
			for x := 0; x < 5; x++ {
				w[y*5+x] = base[y] * base[x]
				sum += w[y*5+x]
			}
		}
		for i := range w {
			w[i] /= sum
		}
		return w
	}(), Sep: []float32{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}},
}

// ScaleBilinear resizes a plane by the given factors. Upscales and mild
// downscales (both factors ≥ 1/2) use center-aligned bilinear
// interpolation. When either axis shrinks below half size, that axis is
// resampled with an exact fractional box (area average) instead: a 2-tap
// bilinear at decimation > 2 skips most source samples and aliases
// high-frequency content into the thumbnail, whereas the box integrates
// every source sample once, which is both the correct antialiased result
// and the reference the scaled-decode planner is held to (truncating the
// DCT spectrum approximates a box low-pass, not an aliasing point-sampler;
// see TestApplyPlannedMatchesApplyOnCorpus). Either way the operation is a
// linear map of input samples, so shadow-ROI recovery arithmetic is
// unaffected, and output is deterministic at any worker count.
func ScaleBilinear(p *imgplane.Plane, fx, fy float64) (*imgplane.Plane, error) {
	if fx <= 0 || fy <= 0 {
		return nil, fmt.Errorf("transform: scale factors must be positive, got %g, %g", fx, fy)
	}
	ow := int(math.Round(float64(p.W) * fx))
	oh := int(math.Round(float64(p.H) * fy))
	if ow < 1 {
		ow = 1
	}
	if oh < 1 {
		oh = 1
	}
	if fx < 0.5 || fy < 0.5 {
		return scaleAntialiased(p, fx, fy, ow, oh), nil
	}
	out := imgplane.NewPlane(ow, oh)
	parallel.For(oh, pixelRowGrain, func(lo, hi int) {
		for oy := lo; oy < hi; oy++ {
			// Center-aligned sampling.
			sy := (float64(oy)+0.5)/fy - 0.5
			y0 := int(math.Floor(sy))
			wy := float32(sy - float64(y0))
			for ox := 0; ox < ow; ox++ {
				sx := (float64(ox)+0.5)/fx - 0.5
				x0 := int(math.Floor(sx))
				wx := float32(sx - float64(x0))
				v := (1-wy)*((1-wx)*p.At(x0, y0)+wx*p.At(x0+1, y0)) +
					wy*((1-wx)*p.At(x0, y0+1)+wx*p.At(x0+1, y0+1))
				out.Pix[oy*ow+ox] = v
			}
		}
	})
	return out, nil
}

// scaleAntialiased is the strong-downscale path of ScaleBilinear: separable
// horizontal-then-vertical resampling where each axis independently uses an
// area average when it shrinks below half size and center-aligned linear
// interpolation otherwise (so an anisotropic 0.8 x 0.1 scale filters only
// the collapsing axis). Both passes parallelize over disjoint output rows
// and sum source samples in ascending order, keeping output independent of
// the worker count.
func scaleAntialiased(p *imgplane.Plane, fx, fy float64, ow, oh int) *imgplane.Plane {
	tmp := imgplane.NewPlane(ow, p.H)
	if fx < 0.5 {
		seg := boxSegments(p.W, ow)
		parallel.For(p.H, pixelRowGrain, func(lo, hi int) {
			for y := lo; y < hi; y++ {
				src := p.Pix[y*p.W : (y+1)*p.W]
				dst := tmp.Pix[y*ow : (y+1)*ow]
				for i, s := range seg {
					var sum float64
					for x := s.x0; x <= s.x1; x++ {
						sum += float64(src[x]) * s.weight(x)
					}
					dst[i] = float32(sum * s.inv)
				}
			}
		})
	} else {
		parallel.For(p.H, pixelRowGrain, func(lo, hi int) {
			for y := lo; y < hi; y++ {
				src := p.Pix[y*p.W : (y+1)*p.W]
				dst := tmp.Pix[y*ow : (y+1)*ow]
				for ox := 0; ox < ow; ox++ {
					sx := (float64(ox)+0.5)/fx - 0.5
					x0 := int(math.Floor(sx))
					wx := float32(sx - float64(x0))
					dst[ox] = (1-wx)*clampedRowAt(src, x0) + wx*clampedRowAt(src, x0+1)
				}
			}
		})
	}
	out := imgplane.NewPlane(ow, oh)
	if fy < 0.5 {
		seg := boxSegments(p.H, oh)
		parallel.For(oh, pixelRowGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s := seg[i]
				dst := out.Pix[i*ow : (i+1)*ow]
				for x := 0; x < ow; x++ {
					var sum float64
					for y := s.x0; y <= s.x1; y++ {
						sum += float64(tmp.Pix[y*ow+x]) * s.weight(y)
					}
					dst[x] = float32(sum * s.inv)
				}
			}
		})
	} else {
		parallel.For(oh, pixelRowGrain, func(lo, hi int) {
			for oy := lo; oy < hi; oy++ {
				sy := (float64(oy)+0.5)/fy - 0.5
				y0 := int(math.Floor(sy))
				wy := float32(sy - float64(y0))
				r0, r1 := clampRow(y0, p.H), clampRow(y0+1, p.H)
				dst := out.Pix[oy*ow : (oy+1)*ow]
				a := tmp.Pix[r0*ow : (r0+1)*ow]
				b := tmp.Pix[r1*ow : (r1+1)*ow]
				for x := 0; x < ow; x++ {
					dst[x] = (1-wy)*a[x] + wy*b[x]
				}
			}
		})
	}
	return out
}

// boxSegment is one output sample's source interval [lo, hi) in an area
// average: full-weight interior samples plus fractional end overlaps.
type boxSegment struct {
	x0, x1 int // first and last source index touched (inclusive, clamped)
	lo, hi float64
	inv    float64 // 1 / (hi - lo)
}

// weight is the overlap of source cell [x, x+1) with the segment.
func (s *boxSegment) weight(x int) float64 {
	l, r := float64(x), float64(x)+1
	if l < s.lo {
		l = s.lo
	}
	if r > s.hi {
		r = s.hi
	}
	return r - l
}

// boxSegments tiles the source axis [0, srcN) into dstN equal intervals so
// every source sample contributes exactly once across the output (the
// intervals come from the dimension ratio, not the requested factor, so
// they always cover the axis exactly).
func boxSegments(srcN, dstN int) []boxSegment {
	s := float64(srcN) / float64(dstN)
	out := make([]boxSegment, dstN)
	for i := range out {
		lo, hi := float64(i)*s, (float64(i)+1)*s
		x0, x1 := int(lo), int(math.Ceil(hi))-1
		if x1 > srcN-1 {
			x1 = srcN - 1
		}
		out[i] = boxSegment{x0: x0, x1: x1, lo: lo, hi: hi, inv: 1 / (hi - lo)}
	}
	return out
}

// clampedRowAt samples a row with edge replication, like Plane.At.
func clampedRowAt(row []float32, x int) float32 {
	return row[clampRow(x, len(row))]
}

func clampRow(x, n int) int {
	if x < 0 {
		return 0
	}
	if x >= n {
		return n - 1
	}
	return x
}

// CropPlane extracts the rectangle (x, y, w, h) from the plane.
func CropPlane(p *imgplane.Plane, x, y, w, h int) (*imgplane.Plane, error) {
	if w <= 0 || h <= 0 || x < 0 || y < 0 || x+w > p.W || y+h > p.H {
		return nil, fmt.Errorf("transform: crop (%d,%d,%d,%d) outside %dx%d plane", x, y, w, h, p.W, p.H)
	}
	out := imgplane.NewPlane(w, h)
	for r := 0; r < h; r++ {
		copy(out.Pix[r*w:(r+1)*w], p.Pix[(y+r)*p.W+x:(y+r)*p.W+x+w])
	}
	return out, nil
}

// RotatePlane rotates the plane by angle degrees counter-clockwise about its
// center using bilinear resampling. Output has the same dimensions; samples
// rotated in from outside the source are zero. The map is linear in the
// input samples (for fixed angle), so it commutes with addition.
func RotatePlane(p *imgplane.Plane, angleDeg float64) *imgplane.Plane {
	rad := angleDeg * math.Pi / 180
	sin, cos := math.Sin(rad), math.Cos(rad)
	cx, cy := float64(p.W-1)/2, float64(p.H-1)/2
	out := imgplane.NewPlane(p.W, p.H)
	parallel.For(p.H, pixelRowGrain, func(lo, hi int) {
		for oy := lo; oy < hi; oy++ {
			for ox := 0; ox < p.W; ox++ {
				// Inverse map: rotate output coordinate by -angle.
				dx, dy := float64(ox)-cx, float64(oy)-cy
				sx := cos*dx + sin*dy + cx
				sy := -sin*dx + cos*dy + cy
				x0, y0 := int(math.Floor(sx)), int(math.Floor(sy))
				if x0 < -1 || y0 < -1 || x0 > p.W-1 || y0 > p.H-1 {
					continue // outside source: leave zero
				}
				wx, wy := float32(sx-float64(x0)), float32(sy-float64(y0))
				v := (1-wy)*((1-wx)*atZero(p, x0, y0)+wx*atZero(p, x0+1, y0)) +
					wy*((1-wx)*atZero(p, x0, y0+1)+wx*atZero(p, x0+1, y0+1))
				out.Pix[oy*p.W+ox] = v
			}
		}
	})
	return out
}

// atZero samples with zero padding (instead of Plane.At's edge replication)
// so that rotation stays strictly linear including at borders.
func atZero(p *imgplane.Plane, x, y int) float32 {
	if x < 0 || y < 0 || x >= p.W || y >= p.H {
		return 0
	}
	return p.Pix[y*p.W+x]
}

// Convolve applies the linear kernel with zero padding at the borders.
// Separable kernels (Kernel.Sep set) run as two 1-D passes, which is
// mathematically the same linear map as the full 2-D kernel.
func Convolve(p *imgplane.Plane, k Kernel) (*imgplane.Plane, error) {
	if k.Side%2 != 1 || len(k.Weights) != k.Side*k.Side {
		return nil, fmt.Errorf("transform: malformed kernel (side %d, %d weights)", k.Side, len(k.Weights))
	}
	if len(k.Sep) == k.Side && (k.Side == 3 || k.Side == 5) {
		return convolveSeparable(p, k.Sep), nil
	}
	return convolveFull(p, k), nil
}

// convolveFull is the direct 2-D convolution used by non-separable kernels
// and as the reference for TestConvolveSeparableMatchesFull.
func convolveFull(p *imgplane.Plane, k Kernel) *imgplane.Plane {
	half := k.Side / 2
	out := imgplane.NewPlane(p.W, p.H)
	parallel.For(p.H, pixelRowGrain, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < p.W; x++ {
				var sum float32
				for ky := 0; ky < k.Side; ky++ {
					for kx := 0; kx < k.Side; kx++ {
						sum += k.Weights[ky*k.Side+kx] * atZero(p, x+kx-half, y+ky-half)
					}
				}
				out.Pix[y*p.W+x] = sum
			}
		}
	})
	return out
}

// convolveSeparable convolves with outer(sep, sep) as a vertical 1-D pass
// followed by a horizontal one, both zero-padded (the passes commute, so
// this equals the horizontal-then-vertical order and the 2-D kernel). Both
// passes are fused into one parallel sweep with no scratch: the vertical
// pass reads only the source and writes this chunk's output rows, and the
// horizontal pass then filters those same rows in place, carrying the
// half-width of overwritten original samples in locals. Inner loops over
// row interiors run without bounds tests.
func convolveSeparable(p *imgplane.Plane, sep []float32) *imgplane.Plane {
	half := len(sep) / 2
	w, h := p.W, p.H
	out := imgplane.NewPlane(w, h)
	parallel.For(h, pixelRowGrain, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			dst := out.Pix[y*w : (y+1)*w]
			for i, wt := range sep {
				sy := y + i - half
				if sy < 0 || sy >= h {
					continue
				}
				src := p.Pix[sy*w : (sy+1)*w]
				for x, v := range src {
					dst[x] += wt * v
				}
			}
		}
		for y := lo; y < hi; y++ {
			row := out.Pix[y*w : (y+1)*w]
			if half == 1 {
				sepRow3(row, sep)
			} else {
				sepRow5(row, sep)
			}
		}
	})
	return out
}

// sepRow3 applies a zero-padded 3-tap filter to row in place; prev carries
// the original value the previous iteration overwrote.
func sepRow3(row, sep []float32) {
	s0, s1, s2 := sep[0], sep[1], sep[2]
	w := len(row)
	prev := float32(0)
	x := 0
	for ; x+1 < w; x++ {
		cur := row[x]
		row[x] = s0*prev + s1*cur + s2*row[x+1]
		prev = cur
	}
	if x < w {
		row[x] = s0*prev + s1*row[x]
	}
}

// sepRow5 applies a zero-padded 5-tap filter to row in place, carrying the
// two overwritten originals.
func sepRow5(row, sep []float32) {
	s0, s1, s2, s3, s4 := sep[0], sep[1], sep[2], sep[3], sep[4]
	w := len(row)
	var p2, p1 float32
	x := 0
	for ; x+2 < w; x++ {
		cur := row[x]
		row[x] = s0*p2 + s1*p1 + s2*cur + s3*row[x+1] + s4*row[x+2]
		p2, p1 = p1, cur
	}
	for ; x < w; x++ {
		cur := row[x]
		var n1 float32
		if x+1 < w {
			n1 = row[x+1]
		}
		row[x] = s0*p2 + s1*p1 + s2*cur + s3*n1
		p2, p1 = p1, cur
	}
}

// Overlay adds src onto dst at offset (x, y), sample-wise, returning a new
// plane. Overlap composition in the frequency or pixel domain is linear.
func Overlay(dst, src *imgplane.Plane, x, y int) *imgplane.Plane {
	out := dst.Clone()
	for sy := 0; sy < src.H; sy++ {
		for sx := 0; sx < src.W; sx++ {
			ox, oy := x+sx, y+sy
			if ox < 0 || oy < 0 || ox >= out.W || oy >= out.H {
				continue
			}
			out.Pix[oy*out.W+ox] += src.Pix[sy*src.W+sx]
		}
	}
	return out
}

// ApplyPlanar applies the spec to every plane of a planar image. It supports
// all operations except OpCompress (which is defined on coefficients).
func ApplyPlanar(img *imgplane.Image, spec Spec) (*imgplane.Image, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	apply := func(f func(*imgplane.Plane) (*imgplane.Plane, error)) (*imgplane.Image, error) {
		out := &imgplane.Image{Planes: make([]*imgplane.Plane, len(img.Planes))}
		for i, p := range img.Planes {
			q, err := f(p)
			if err != nil {
				return nil, err
			}
			out.Planes[i] = q
		}
		return out, nil
	}
	switch spec.Op {
	case OpNone:
		return img.Clone(), nil
	case OpScale:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return ScaleBilinear(p, spec.FactorX, spec.FactorY)
		})
	case OpCrop:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return CropPlane(p, spec.X, spec.Y, spec.W, spec.H)
		})
	case OpRotate:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return RotatePlane(p, spec.Angle), nil
		})
	case OpFilter:
		k := Kernels[spec.Kernel]
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return Convolve(p, k)
		})
	case OpRotate90:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return rotatePlane90(p, 1), nil
		})
	case OpRotate180:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return rotatePlane90(p, 2), nil
		})
	case OpRotate270:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return rotatePlane90(p, 3), nil
		})
	case OpFlipH:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return flipPlane(p, true), nil
		})
	case OpFlipV:
		return apply(func(p *imgplane.Plane) (*imgplane.Plane, error) {
			return flipPlane(p, false), nil
		})
	case OpCompress:
		return nil, fmt.Errorf("transform: %s is a coefficient-domain operation; use Apply", spec.Op)
	default:
		return nil, fmt.Errorf("transform: unknown op %q", spec.Op)
	}
}

// rotatePlane90 rotates the plane by quarter*90 degrees clockwise.
func rotatePlane90(p *imgplane.Plane, quarter int) *imgplane.Plane {
	switch ((quarter % 4) + 4) % 4 {
	case 0:
		return p.Clone()
	case 1: // 90 CW: (x,y) -> (H-1-y, x)
		out := imgplane.NewPlane(p.H, p.W)
		for y := 0; y < p.H; y++ {
			for x := 0; x < p.W; x++ {
				out.Pix[x*out.W+(p.H-1-y)] = p.Pix[y*p.W+x]
			}
		}
		return out
	case 2:
		out := imgplane.NewPlane(p.W, p.H)
		for y := 0; y < p.H; y++ {
			for x := 0; x < p.W; x++ {
				out.Pix[(p.H-1-y)*p.W+(p.W-1-x)] = p.Pix[y*p.W+x]
			}
		}
		return out
	default: // 270 CW == 90 CCW: (x,y) -> (y, W-1-x)
		out := imgplane.NewPlane(p.H, p.W)
		for y := 0; y < p.H; y++ {
			for x := 0; x < p.W; x++ {
				out.Pix[(p.W-1-x)*out.W+y] = p.Pix[y*p.W+x]
			}
		}
		return out
	}
}

func flipPlane(p *imgplane.Plane, horizontal bool) *imgplane.Plane {
	out := imgplane.NewPlane(p.W, p.H)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			if horizontal {
				out.Pix[y*p.W+(p.W-1-x)] = p.Pix[y*p.W+x]
			} else {
				out.Pix[(p.H-1-y)*p.W+x] = p.Pix[y*p.W+x]
			}
		}
	}
	return out
}
