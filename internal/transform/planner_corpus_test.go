package transform_test

import (
	"bytes"
	"image"
	"image/jpeg"
	"math"
	"testing"

	puppies "puppies"
	"puppies/internal/dataset"
	"puppies/internal/jpegc"
	"puppies/internal/transform"
)

// corpusPSNR decodes two same-size coefficient images and returns the PSNR
// between their pixel reconstructions.
func corpusPSNR(t testing.TB, a, b *jpegc.Image) float64 {
	t.Helper()
	pa, err := a.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	if pa.W() != pb.W() || pa.H() != pb.H() || pa.Channels() != pb.Channels() {
		t.Fatalf("psnr size mismatch: %dx%d vs %dx%d", pa.W(), pa.H(), pb.W(), pb.H())
	}
	var sum float64
	var n int
	for ci := range pa.Planes {
		for i, v := range pa.Planes[ci].Pix {
			d := float64(v - pb.Planes[ci].Pix[i])
			sum += d * d
			n++
		}
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/(sum/float64(n)))
}

func requirePlannedEquivalence(t *testing.T, name string, img *jpegc.Image) {
	t.Helper()
	for _, f := range []float64{0.5, 0.25, 0.125} {
		spec := transform.Spec{Op: transform.OpScale, FactorX: f, FactorY: f}
		full, err := transform.Apply(img, spec)
		if err != nil {
			t.Fatal(err)
		}
		planned, err := transform.ApplyPlanned(img, spec)
		if err != nil {
			t.Fatal(err)
		}
		psnr := corpusPSNR(t, planned, full)
		t.Logf("%s f=%g: %.1f dB", name, f, psnr)
		if psnr < 40 {
			t.Errorf("%s f=%g: planned path diverges from full path: %.1f dB < 40 dB", name, f, psnr)
		}
	}
}

// TestApplyPlannedMatchesApplyOnCorpus is the planner-equivalence gate the
// ISSUE requires: over the dataset corpus (all four profile styles), the
// scaled-decode path must stay within 40 dB PSNR of the full-resolution
// path at every eligible scale.
func TestApplyPlannedMatchesApplyOnCorpus(t *testing.T) {
	for _, p := range []dataset.Profile{dataset.Caltech, dataset.FERET, dataset.INRIA, dataset.PASCAL} {
		gen, err := dataset.NewGenerator(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			item := gen.Item(i)
			img, err := jpegc.FromPlanar(item.Image, jpegc.Options{Quality: 85})
			if err != nil {
				t.Fatal(err)
			}
			requirePlannedEquivalence(t, item.Name, img)
		}
	}
}

// TestApplyPlannedMatchesApplyOnSubsampled covers native 4:2:0 and 4:2:2
// geometry: chroma planes enter the scaled path at half resolution on one
// or both axes, exercising the rectangular reduced kernels.
func TestApplyPlannedMatchesApplyOnSubsampled(t *testing.T) {
	for _, tc := range []struct {
		name  string
		ratio image.YCbCrSubsampleRatio
	}{
		{"420", image.YCbCrSubsampleRatio420},
		{"422", image.YCbCrSubsampleRatio422},
	} {
		const w, h = 320, 208
		ycc := image.NewYCbCr(image.Rect(0, 0, w, h), tc.ratio)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				ycc.Y[ycc.YOffset(x, y)] = uint8(128 + 80*math.Sin(float64(x)/6)*math.Cos(float64(y)/8))
			}
		}
		cb := ycc.Bounds()
		for y := cb.Min.Y; y < cb.Max.Y; y++ {
			for x := cb.Min.X; x < cb.Max.X; x++ {
				if ci := ycc.COffset(x, y); ci < len(ycc.Cb) {
					ycc.Cb[ci] = uint8(128 + 60*math.Sin(float64(x)/11))
					ycc.Cr[ci] = uint8(128 + 60*math.Cos(float64(y)/13))
				}
			}
		}
		var buf bytes.Buffer
		if err := jpeg.Encode(&buf, ycc, &jpeg.Options{Quality: 90}); err != nil {
			t.Fatal(err)
		}
		img, err := jpegc.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !img.Subsampled() {
			t.Fatalf("%s fixture not subsampled", tc.name)
		}
		requirePlannedEquivalence(t, tc.name, img)
	}
}

// TestApplyPlannedMatchesApplyOnProtected runs the equivalence over
// PuPPIeS-protected images: the perturbed ROI coefficients ride through the
// reduced decode like any others, and the presentation-grade planned output
// must still track the full path. (Recovery still uses the full path by
// contract — see PlanSpec's recoveryGrade.)
func TestApplyPlannedMatchesApplyOnProtected(t *testing.T) {
	gen, err := dataset.NewGenerator(dataset.FERET, 11)
	if err != nil {
		t.Fatal(err)
	}
	item := gen.Item(0)
	std := item.Image.ToStdImage()
	var regions []puppies.Rect
	for _, a := range item.Annotations {
		regions = append(regions, puppies.Rect{X: a.X, Y: a.Y, W: a.W, H: a.H})
	}
	for _, variant := range []puppies.Variant{puppies.VariantZ, puppies.VariantC} {
		prot, err := puppies.Protect(std, puppies.ProtectOptions{
			Variant: variant, Regions: regions, Quality: 85,
		})
		if err != nil {
			t.Fatal(err)
		}
		img, err := jpegc.Decode(bytes.NewReader(prot.JPEG))
		if err != nil {
			t.Fatal(err)
		}
		requirePlannedEquivalence(t, "protected-"+string(variant), img)
	}
}
