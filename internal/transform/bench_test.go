package transform

import (
	"testing"

	"puppies/internal/jpegc"
)

func benchImage(b *testing.B) *jpegc.Image {
	b.Helper()
	img, err := jpegc.FromPlanar(smoothPlanar(512, 384), jpegc.Options{Quality: 80})
	if err != nil {
		b.Fatal(err)
	}
	return img
}

func BenchmarkScaleBilinearHalf(b *testing.B) {
	pix, err := benchImage(b).ToPlanar()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScaleBilinear(pix.Planes[0], 0.5, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRotatePlaneArbitrary(b *testing.B) {
	pix, err := benchImage(b).ToPlanar()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RotatePlane(pix.Planes[0], 30)
	}
}

func BenchmarkConvolveGaussian3(b *testing.B) {
	pix, err := benchImage(b).ToPlanar()
	if err != nil {
		b.Fatal(err)
	}
	k := Kernels["gaussian3"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Convolve(pix.Planes[0], k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRotate90Coefficient(b *testing.B) {
	img := benchImage(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rotate90(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecompress(b *testing.B) {
	img := benchImage(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Recompress(img, 40); err != nil {
			b.Fatal(err)
		}
	}
}
