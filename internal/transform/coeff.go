package transform

import (
	"fmt"

	"puppies/internal/dct"
	"puppies/internal/jpegc"
)

// Rotate90 rotates the coefficient image 90 degrees clockwise, losslessly
// (block permutation + per-block coefficient rotation + quant transpose),
// like jpegtran. Requires block-aligned dimensions.
func Rotate90(img *jpegc.Image) (*jpegc.Image, error) {
	return rotateCoeff(img, 1)
}

// Rotate180 rotates the coefficient image 180 degrees, losslessly.
func Rotate180(img *jpegc.Image) (*jpegc.Image, error) {
	return rotateCoeff(img, 2)
}

// Rotate270 rotates the coefficient image 270 degrees clockwise, losslessly.
func Rotate270(img *jpegc.Image) (*jpegc.Image, error) {
	return rotateCoeff(img, 3)
}

// FlipHorizontal mirrors the coefficient image left-right, losslessly.
func FlipHorizontal(img *jpegc.Image) (*jpegc.Image, error) {
	return flipCoeff(img, true)
}

// FlipVertical mirrors the coefficient image top-bottom, losslessly.
func FlipVertical(img *jpegc.Image) (*jpegc.Image, error) {
	return flipCoeff(img, false)
}

func requireAligned(img *jpegc.Image) error {
	// Subsampled images additionally need MCU-aligned dimensions: a partial
	// MCU cannot be permuted losslessly (jpegtran has the same restriction —
	// its "-trim" drops the edge instead).
	maxH, maxV := img.MaxSampling()
	gx, gy := dct.BlockSize*maxH, dct.BlockSize*maxV
	if img.W%gx != 0 || img.H%gy != 0 {
		return fmt.Errorf("transform: coefficient-domain op requires %dx%d-aligned dimensions, got %dx%d",
			gx, gy, img.W, img.H)
	}
	return nil
}

func rotateCoeff(img *jpegc.Image, quarter int) (*jpegc.Image, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if err := requireAligned(img); err != nil {
		return nil, err
	}
	out := &jpegc.Image{Comps: make([]jpegc.Component, len(img.Comps))}
	if quarter%2 == 1 {
		out.W, out.H = img.H, img.W
	} else {
		out.W, out.H = img.W, img.H
	}
	for ci := range img.Comps {
		src := &img.Comps[ci]
		var dstW, dstH int
		if quarter%2 == 1 {
			dstW, dstH = src.BlocksH, src.BlocksW
		} else {
			dstW, dstH = src.BlocksW, src.BlocksH
		}
		hs, vs := src.Sampling()
		if quarter%2 == 1 {
			hs, vs = vs, hs // quarter turns swap the sampling axes
		}
		dst := jpegc.Component{
			BlocksW: dstW, BlocksH: dstH,
			Blocks: make([]dct.Block, dstW*dstH),
			HSamp:  hs, VSamp: vs,
		}
		switch quarter {
		case 1: // 90 CW: block (bx,by) -> (BH-1-by, bx)
			dst.Quant = src.Quant.Transpose()
			for by := 0; by < src.BlocksH; by++ {
				for bx := 0; bx < src.BlocksW; bx++ {
					*dst.Block(src.BlocksH-1-by, bx) = src.Block(bx, by).Rotate90CW()
				}
			}
		case 2: // 180
			dst.Quant = src.Quant
			for by := 0; by < src.BlocksH; by++ {
				for bx := 0; bx < src.BlocksW; bx++ {
					*dst.Block(src.BlocksW-1-bx, src.BlocksH-1-by) = src.Block(bx, by).Rotate180()
				}
			}
		case 3: // 270 CW (= 90 CCW): block (bx,by) -> (by, BW-1-bx)
			dst.Quant = src.Quant.Transpose()
			for by := 0; by < src.BlocksH; by++ {
				for bx := 0; bx < src.BlocksW; bx++ {
					*dst.Block(by, src.BlocksW-1-bx) = src.Block(bx, by).Rotate90CCW()
				}
			}
		default:
			return nil, fmt.Errorf("transform: invalid quarter %d", quarter)
		}
		out.Comps[ci] = dst
	}
	return out, nil
}

func flipCoeff(img *jpegc.Image, horizontal bool) (*jpegc.Image, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if err := requireAligned(img); err != nil {
		return nil, err
	}
	out := &jpegc.Image{W: img.W, H: img.H, Comps: make([]jpegc.Component, len(img.Comps))}
	for ci := range img.Comps {
		src := &img.Comps[ci]
		dst := jpegc.Component{
			BlocksW: src.BlocksW, BlocksH: src.BlocksH,
			Blocks: make([]dct.Block, len(src.Blocks)),
			Quant:  src.Quant,
			HSamp:  src.HSamp, VSamp: src.VSamp,
		}
		for by := 0; by < src.BlocksH; by++ {
			for bx := 0; bx < src.BlocksW; bx++ {
				if horizontal {
					*dst.Block(src.BlocksW-1-bx, by) = src.Block(bx, by).FlipH()
				} else {
					*dst.Block(bx, src.BlocksH-1-by) = src.Block(bx, by).FlipV()
				}
			}
		}
		out.Comps[ci] = dst
	}
	return out, nil
}

// CropAligned extracts a block-aligned pixel rectangle losslessly in the
// coefficient domain. On subsampled images the crop must additionally sit
// on the MCU grid (origin and size, the latter relaxed at the image's own
// right/bottom edge) so no chroma block is split.
func CropAligned(img *jpegc.Image, x, y, w, h int) (*jpegc.Image, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if x%8 != 0 || y%8 != 0 || w%8 != 0 || h%8 != 0 {
		return nil, fmt.Errorf("transform: crop (%d,%d,%d,%d) not block-aligned", x, y, w, h)
	}
	if w <= 0 || h <= 0 || x < 0 || y < 0 || x+w > img.W || y+h > img.H {
		return nil, fmt.Errorf("transform: crop (%d,%d,%d,%d) outside %dx%d image", x, y, w, h, img.W, img.H)
	}
	maxH, maxV := img.MaxSampling()
	if img.Subsampled() && !mcuAlignedCrop(img, x, y, w, h) {
		return nil, fmt.Errorf("transform: crop (%d,%d,%d,%d) not aligned to the %dx%d-pixel MCU grid of this subsampled image",
			x, y, w, h, dct.BlockSize*maxH, dct.BlockSize*maxV)
	}
	out := &jpegc.Image{W: w, H: h, Comps: make([]jpegc.Component, len(img.Comps))}
	for ci := range img.Comps {
		src := &img.Comps[ci]
		hs, vs := src.Sampling()
		rh, rv := maxH/hs, maxV/vs
		// Component-grid window: the origin divides exactly (MCU alignment);
		// the size rounds up to cover the component's partial edge blocks.
		cbx0 := x / (dct.BlockSize * rh)
		cby0 := y / (dct.BlockSize * rv)
		cw := (w*hs + maxH - 1) / maxH
		ch := (h*vs + maxV - 1) / maxV
		bw := (cw + dct.BlockSize - 1) / dct.BlockSize
		bh := (ch + dct.BlockSize - 1) / dct.BlockSize
		dst := jpegc.Component{
			BlocksW: bw, BlocksH: bh,
			Blocks: make([]dct.Block, bw*bh),
			Quant:  src.Quant,
			HSamp:  src.HSamp, VSamp: src.VSamp,
		}
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				*dst.Block(bx, by) = *src.Block(cbx0+bx, cby0+by)
			}
		}
		out.Comps[ci] = dst
	}
	return out, nil
}

// mcuAlignedCrop reports whether a block-aligned crop window also sits on
// the image's MCU grid (right/bottom edges may coincide with the image's
// own edges instead).
func mcuAlignedCrop(img *jpegc.Image, x, y, w, h int) bool {
	maxH, maxV := img.MaxSampling()
	gx, gy := dct.BlockSize*maxH, dct.BlockSize*maxV
	return x%gx == 0 && y%gy == 0 &&
		((x+w)%gx == 0 || x+w == img.W) &&
		((y+h)%gy == 0 || y+h == img.H)
}

// Recompress requantizes every block for the target quality, modelling JPEG
// recompression without a pixel-domain round trip (paper §IV-C.2). The
// returned image's quantization tables are the scaled standard tables.
func Recompress(img *jpegc.Image, quality int) (*jpegc.Image, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	lum, err := dct.StdLuminanceQuant.ScaleQuality(quality)
	if err != nil {
		return nil, err
	}
	chrom, err := dct.StdChrominanceQuant.ScaleQuality(quality)
	if err != nil {
		return nil, err
	}
	out := &jpegc.Image{W: img.W, H: img.H, Comps: make([]jpegc.Component, len(img.Comps))}
	for ci := range img.Comps {
		src := &img.Comps[ci]
		to := &lum
		if ci > 0 {
			to = &chrom
		}
		dst := jpegc.Component{
			BlocksW: src.BlocksW, BlocksH: src.BlocksH,
			Blocks: make([]dct.Block, len(src.Blocks)),
			Quant:  *to,
			HSamp:  src.HSamp, VSamp: src.VSamp,
		}
		for bi := range src.Blocks {
			dst.Blocks[bi] = dct.Requantize(&src.Blocks[bi], &src.Quant, to)
		}
		out.Comps[ci] = dst
	}
	return out, nil
}

// Apply executes the spec on a coefficient image the way a PSP would:
// coefficient-domain operations run losslessly; pixel-domain operations
// decode to planar samples, transform, and re-encode with the source
// image's quantization tables.
func Apply(img *jpegc.Image, spec Spec) (*jpegc.Image, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Op {
	case OpNone:
		return img.Clone(), nil
	case OpRotate90:
		return Rotate90(img)
	case OpRotate180:
		return Rotate180(img)
	case OpRotate270:
		return Rotate270(img)
	case OpFlipH:
		return FlipHorizontal(img)
	case OpFlipV:
		return FlipVertical(img)
	case OpCompress:
		return Recompress(img, spec.Quality)
	case OpCrop:
		// A block-aligned crop that splits a chroma block on a subsampled
		// image has no coefficient-domain representation; serve it from
		// pixels like any unaligned crop.
		if spec.IsCoefficientDomain() &&
			(!img.Subsampled() || mcuAlignedCrop(img, spec.X, spec.Y, spec.W, spec.H)) {
			return CropAligned(img, spec.X, spec.Y, spec.W, spec.H)
		}
	}
	// Pixel-domain path.
	planar, err := img.ToPlanar()
	if err != nil {
		return nil, err
	}
	transformed, err := ApplyPlanar(planar, spec)
	if err != nil {
		return nil, err
	}
	lum := img.Comps[0].Quant
	chrom := lum
	if len(img.Comps) == 3 {
		chrom = img.Comps[1].Quant
	}
	return jpegc.FromPlanarWithQuant(transformed, &lum, &chrom)
}
