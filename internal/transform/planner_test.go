package transform

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"puppies/internal/jpegc"
	"puppies/internal/parallel"
)

func TestPlanSpecRules(t *testing.T) {
	const w, h = 640, 400
	for _, tc := range []struct {
		name     string
		spec     Spec
		recovery bool
		want     Plan
	}{
		{"half", Spec{Op: OpScale, FactorX: 0.5, FactorY: 0.5}, false,
			Plan{Scaled: true, Num: 4, OutW: 320, OutH: 200}},
		{"third", Spec{Op: OpScale, FactorX: 1.0 / 3, FactorY: 1.0 / 3}, false,
			Plan{Scaled: true, Num: 4, OutW: 213, OutH: 133}},
		{"quarter", Spec{Op: OpScale, FactorX: 0.25, FactorY: 0.25}, false,
			Plan{Scaled: true, Num: 4, OutW: 160, OutH: 100}},
		{"eighth", Spec{Op: OpScale, FactorX: 0.125, FactorY: 0.125}, false,
			Plan{Scaled: true, Num: 2, OutW: 80, OutH: 50}},
		{"tiny", Spec{Op: OpScale, FactorX: 0.01, FactorY: 0.01}, false,
			Plan{Scaled: true, Num: 2, OutW: 6, OutH: 4}},
		{"anisotropic picks max", Spec{Op: OpScale, FactorX: 0.5, FactorY: 0.125}, false,
			Plan{Scaled: true, Num: 4, OutW: 320, OutH: 50}},
		{"barely above half", Spec{Op: OpScale, FactorX: 0.51, FactorY: 0.25}, false, Plan{}},
		{"identity scale", Spec{Op: OpScale, FactorX: 1, FactorY: 1}, false, Plan{}},
		{"upscale", Spec{Op: OpScale, FactorX: 2, FactorY: 2}, false, Plan{}},
		{"invalid factors", Spec{Op: OpScale, FactorX: -1, FactorY: 0.25}, false, Plan{}},
		{"crop", Spec{Op: OpCrop, X: 0, Y: 0, W: 64, H: 64}, false, Plan{}},
		{"rotate90", Spec{Op: OpRotate90}, false, Plan{}},
		{"filter", Spec{Op: OpFilter, Kernel: "gaussian3"}, false, Plan{}},
		{"none", Spec{Op: OpNone}, false, Plan{}},
		{"recovery grade forces full", Spec{Op: OpScale, FactorX: 0.25, FactorY: 0.25}, true, Plan{}},
	} {
		if got := PlanSpec(w, h, tc.spec, tc.recovery); got != tc.want {
			t.Errorf("%s: got %+v, want %+v", tc.name, got, tc.want)
		}
	}
	if got := PlanSpec(0, 0, Spec{Op: OpScale, FactorX: 0.25, FactorY: 0.25}, false); got.Scaled {
		t.Errorf("degenerate image: got %+v, want full path", got)
	}
}

// TestPlanSpecDimsMatchScaleBilinear cross-checks the plan's output sizing
// against the actual full-path resampler over a sweep of sizes and factors.
func TestPlanSpecDimsMatchScaleBilinear(t *testing.T) {
	for _, dims := range []struct{ w, h int }{{8, 8}, {17, 9}, {100, 75}, {641, 399}} {
		for _, f := range []float64{0.5, 0.25, 0.125, 0.3, 0.07} {
			plan := PlanSpec(dims.w, dims.h, Spec{Op: OpScale, FactorX: f, FactorY: f}, false)
			if !plan.Scaled {
				t.Fatalf("%dx%d f=%g: expected scaled plan", dims.w, dims.h, f)
			}
			p := randomPlane(rand.New(rand.NewSource(1)), dims.w, dims.h)
			ref, err := ScaleBilinear(p, f, f)
			if err != nil {
				t.Fatal(err)
			}
			if plan.OutW != ref.W || plan.OutH != ref.H {
				t.Fatalf("%dx%d f=%g: plan %dx%d, ScaleBilinear %dx%d",
					dims.w, dims.h, f, plan.OutW, plan.OutH, ref.W, ref.H)
			}
		}
	}
}

// TestApplyPlannedFallback pins that every spec the planner rejects takes
// the identical code path: ApplyPlanned output deep-equals Apply output.
func TestApplyPlannedFallback(t *testing.T) {
	img, err := jpegc.FromPlanar(smoothPlanar(96, 64), jpegc.Options{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []Spec{
		{Op: OpNone},
		{Op: OpRotate90},
		{Op: OpFlipH},
		{Op: OpScale, FactorX: 2, FactorY: 2},
		{Op: OpScale, FactorX: 0.75, FactorY: 0.75},
		{Op: OpCrop, X: 8, Y: 8, W: 48, H: 32},
		{Op: OpCompress, Quality: 60},
		{Op: OpFilter, Kernel: "box3"},
	} {
		want, err := Apply(img, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Op, err)
		}
		got, err := ApplyPlanned(img, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: planned fallback differs from Apply", spec.Op)
		}
	}
}

// TestApplyPlannedDims pins the drop-in contract: the planned output has
// exactly the dimensions and quantization tables of the full path's.
func TestApplyPlannedDims(t *testing.T) {
	img, err := jpegc.FromPlanar(smoothPlanar(100, 75), jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0.5, 0.25, 0.125} {
		spec := Spec{Op: OpScale, FactorX: f, FactorY: f}
		want, err := Apply(img, spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ApplyPlanned(img, spec)
		if err != nil {
			t.Fatal(err)
		}
		if got.W != want.W || got.H != want.H {
			t.Fatalf("f=%g: planned %dx%d, full %dx%d", f, got.W, got.H, want.W, want.H)
		}
		for ci := range want.Comps {
			if got.Comps[ci].Quant != want.Comps[ci].Quant {
				t.Fatalf("f=%g comp %d: quant tables differ", f, ci)
			}
		}
	}
}

// TestApplyPlannedDeterminism encodes the planned result at several worker
// counts and requires byte-identical streams — the invariant the serving
// cache's same-spec-same-bytes ETag contract needs from this path.
func TestApplyPlannedDeterminism(t *testing.T) {
	img, err := jpegc.FromPlanar(smoothPlanar(137, 91), jpegc.Options{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Op: OpScale, FactorX: 0.25, FactorY: 0.25}
	var base []byte
	for _, workers := range []int{1, 2, 3, 8} {
		prev := parallel.SetWorkers(workers)
		out, err := ApplyPlanned(img, spec)
		parallel.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := out.Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = append([]byte(nil), buf.Bytes()...)
		} else if !bytes.Equal(base, buf.Bytes()) {
			t.Fatalf("workers=%d: encoded bytes differ from workers=1", workers)
		}
	}
}

// FuzzPlan drives PlanSpec with arbitrary geometry and spec fields and
// checks its invariants: no panic, scaled plans only for valid ≤1/2-scale
// downscales, decode scale always at or above the target with one
// supersampling step in hand, and output dims matching the resampler's.
func FuzzPlan(f *testing.F) {
	f.Add(640, 400, 0.25, 0.25, uint8(1), false)
	f.Add(640, 400, 0.125, 0.125, uint8(1), false)
	f.Add(17, 9, 0.5, 0.07, uint8(1), false)
	f.Add(1, 1, 0.5, 0.5, uint8(1), true)
	f.Add(0, -3, 0.9, 1.1, uint8(0), false)
	f.Add(4096, 4096, 2.0, 0.001, uint8(3), false)
	ops := []Op{OpNone, OpScale, OpCrop, OpRotate90, OpRotate, OpFilter, OpCompress}
	f.Fuzz(func(t *testing.T, w, h int, fx, fy float64, opIdx uint8, recovery bool) {
		spec := Spec{Op: ops[int(opIdx)%len(ops)], FactorX: fx, FactorY: fy,
			W: 64, H: 64, Quality: 60, Kernel: "box3", Angle: 15}
		plan := PlanSpec(w, h, spec, recovery)
		if !plan.Scaled {
			if plan != (Plan{}) {
				t.Fatalf("full plan carries scaled fields: %+v", plan)
			}
			return
		}
		if recovery {
			t.Fatal("scaled plan on recovery-grade request")
		}
		if spec.Op != OpScale || spec.Validate() != nil {
			t.Fatalf("scaled plan for ineligible spec %+v", spec)
		}
		if fx > 0.5 || fy > 0.5 {
			t.Fatalf("scaled plan above half scale: %g, %g", fx, fy)
		}
		wantNum := 4
		if math.Max(fx, fy) <= 0.125 {
			wantNum = 2
		}
		if plan.Num != wantNum {
			t.Fatalf("decode numerator %d for target %g, want %d", plan.Num, math.Max(fx, fy), wantNum)
		}
		if float64(plan.Num)/8 < math.Max(fx, fy) {
			t.Fatalf("decode scale %d/8 below target %g", plan.Num, math.Max(fx, fy))
		}
		if plan.OutW != scaleDim(w, fx) || plan.OutH != scaleDim(h, fy) ||
			plan.OutW < 1 || plan.OutH < 1 {
			t.Fatalf("bad output dims %dx%d for %dx%d * (%g, %g)", plan.OutW, plan.OutH, w, h, fx, fy)
		}
	})
}
