package transform

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
)

func randomPlane(rng *rand.Rand, w, h int) *imgplane.Plane {
	p := imgplane.NewPlane(w, h)
	for i := range p.Pix {
		p.Pix[i] = float32(rng.Intn(256))
	}
	return p
}

func smoothPlanar(w, h int) *imgplane.Image {
	img, _ := imgplane.New(w, h, 3)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			img.Planes[0].Pix[i] = float32(60 + 50*math.Sin(float64(x)/9)*math.Cos(float64(y)/11) + 100)
			img.Planes[1].Pix[i] = float32(128 + 30*math.Sin(float64(x+y)/15))
			img.Planes[2].Pix[i] = float32(128 + 30*math.Cos(float64(x-y)/13))
		}
	}
	return img
}

func TestScaleBilinearDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randomPlane(rng, 40, 30)
	tests := []struct {
		fx, fy float64
		ow, oh int
	}{
		{0.5, 0.5, 20, 15},
		{2, 2, 80, 60},
		{1, 1, 40, 30},
		{0.25, 0.5, 10, 15},
	}
	for _, tt := range tests {
		out, err := ScaleBilinear(p, tt.fx, tt.fy)
		if err != nil {
			t.Fatal(err)
		}
		if out.W != tt.ow || out.H != tt.oh {
			t.Errorf("scale %gx%g: got %dx%d, want %dx%d", tt.fx, tt.fy, out.W, out.H, tt.ow, tt.oh)
		}
	}
	if _, err := ScaleBilinear(p, 0, 1); err == nil {
		t.Error("zero factor should error")
	}
}

func TestScaleIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomPlane(rng, 16, 16)
	out, err := ScaleBilinear(p, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Pix {
		if math.Abs(float64(out.Pix[i]-p.Pix[i])) > 1e-4 {
			t.Fatalf("identity scale changed sample %d: %v -> %v", i, p.Pix[i], out.Pix[i])
		}
	}
}

// Linearity is the property PuPPIeS recovery depends on: f(a+b) = f(a)+f(b).
func TestPixelOpsAreLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomPlane(rng, 32, 24)
	b := randomPlane(rng, 32, 24)
	sum, _ := a.Add(b)

	ops := []struct {
		name string
		f    func(*imgplane.Plane) *imgplane.Plane
	}{
		{"scale0.5", func(p *imgplane.Plane) *imgplane.Plane {
			out, _ := ScaleBilinear(p, 0.5, 0.5)
			return out
		}},
		{"scale1.7", func(p *imgplane.Plane) *imgplane.Plane {
			out, _ := ScaleBilinear(p, 1.7, 1.3)
			return out
		}},
		{"rotate33", func(p *imgplane.Plane) *imgplane.Plane {
			return RotatePlane(p, 33)
		}},
		{"gaussian3", func(p *imgplane.Plane) *imgplane.Plane {
			out, _ := Convolve(p, Kernels["gaussian3"])
			return out
		}},
		{"sharpen3", func(p *imgplane.Plane) *imgplane.Plane {
			out, _ := Convolve(p, Kernels["sharpen3"])
			return out
		}},
		{"crop", func(p *imgplane.Plane) *imgplane.Plane {
			out, _ := CropPlane(p, 4, 4, 16, 12)
			return out
		}},
	}
	for _, op := range ops {
		fa, fb, fsum := op.f(a), op.f(b), op.f(sum)
		if fa.W != fsum.W || fa.H != fsum.H {
			t.Fatalf("%s: size mismatch", op.name)
		}
		for i := range fsum.Pix {
			want := fa.Pix[i] + fb.Pix[i]
			if math.Abs(float64(fsum.Pix[i]-want)) > 1e-2 {
				t.Fatalf("%s: linearity violated at %d: f(a+b)=%v, f(a)+f(b)=%v",
					op.name, i, fsum.Pix[i], want)
			}
		}
	}
}

func TestCropPlaneBounds(t *testing.T) {
	p := imgplane.NewPlane(10, 10)
	if _, err := CropPlane(p, 5, 5, 10, 2); err == nil {
		t.Error("crop outside plane should error")
	}
	if _, err := CropPlane(p, -1, 0, 2, 2); err == nil {
		t.Error("negative origin should error")
	}
	if _, err := CropPlane(p, 0, 0, 0, 5); err == nil {
		t.Error("zero width should error")
	}
}

func TestConvolveKernels(t *testing.T) {
	// A constant plane stays constant under normalized kernels (interior).
	p := imgplane.NewPlane(9, 9)
	for i := range p.Pix {
		p.Pix[i] = 100
	}
	for _, name := range []string{"box3", "gaussian3", "sharpen3", "gaussian5"} {
		out, err := Convolve(p, Kernels[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		center := out.Pix[4*9+4]
		if math.Abs(float64(center)-100) > 1e-3 {
			t.Errorf("%s: center of constant plane = %v, want 100", name, center)
		}
	}
	if _, err := Convolve(p, Kernel{Side: 2, Weights: make([]float32, 4)}); err == nil {
		t.Error("even-sided kernel should error")
	}
}

func TestRotatePlane90Consistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := randomPlane(rng, 12, 8)
	r90 := rotatePlane90(p, 1)
	if r90.W != 8 || r90.H != 12 {
		t.Fatalf("rotate90 dims %dx%d", r90.W, r90.H)
	}
	// (x,y) -> (H-1-y, x)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			if r90.Pix[x*r90.W+(p.H-1-y)] != p.Pix[y*p.W+x] {
				t.Fatalf("rotate90 mapping wrong at (%d,%d)", x, y)
			}
		}
	}
	// Four quarter turns are the identity.
	q := p
	for i := 0; i < 4; i++ {
		q = rotatePlane90(q, 1)
	}
	for i := range p.Pix {
		if q.Pix[i] != p.Pix[i] {
			t.Fatal("four 90-degree rotations are not identity")
		}
	}
	// 180 = two 90s.
	r180 := rotatePlane90(p, 2)
	r90x2 := rotatePlane90(rotatePlane90(p, 1), 1)
	for i := range r180.Pix {
		if r180.Pix[i] != r90x2.Pix[i] {
			t.Fatal("rotate180 != rotate90 twice")
		}
	}
}

func TestCoeffRotationsMatchPixelRotations(t *testing.T) {
	planar := smoothPlanar(48, 32)
	img, err := jpegc.FromPlanar(planar, jpegc.Options{Quality: 90})
	if err != nil {
		t.Fatal(err)
	}
	base, err := img.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}

	ops := []struct {
		name    string
		coeffFn func(*jpegc.Image) (*jpegc.Image, error)
		spec    Spec
	}{
		{"rotate90", Rotate90, Spec{Op: OpRotate90}},
		{"rotate180", Rotate180, Spec{Op: OpRotate180}},
		{"rotate270", Rotate270, Spec{Op: OpRotate270}},
		{"fliph", FlipHorizontal, Spec{Op: OpFlipH}},
		{"flipv", FlipVertical, Spec{Op: OpFlipV}},
	}
	for _, op := range ops {
		coeffOut, err := op.coeffFn(img)
		if err != nil {
			t.Fatalf("%s: %v", op.name, err)
		}
		coeffPix, err := coeffOut.ToPlanar()
		if err != nil {
			t.Fatalf("%s: %v", op.name, err)
		}
		pixOut, err := ApplyPlanar(base, op.spec)
		if err != nil {
			t.Fatalf("%s: %v", op.name, err)
		}
		psnr, err := imgplane.ImagePSNR(coeffPix, pixOut)
		if err != nil {
			t.Fatalf("%s: %v", op.name, err)
		}
		if psnr < 55 {
			t.Errorf("%s: coefficient and pixel paths disagree (PSNR %.1f dB)", op.name, psnr)
		}
	}
}

func TestCoeffRotationRoundTrip(t *testing.T) {
	planar := smoothPlanar(64, 40)
	img, err := jpegc.FromPlanar(planar, jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	r90, err := Rotate90(img)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Rotate270(r90)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range img.Comps {
		for bi := range img.Comps[ci].Blocks {
			if img.Comps[ci].Blocks[bi] != back.Comps[ci].Blocks[bi] {
				t.Fatalf("rotate90 then rotate270 not identity (component %d block %d)", ci, bi)
			}
		}
	}
	r180, err := Rotate180(img)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := Rotate180(r180)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range img.Comps {
		for bi := range img.Comps[ci].Blocks {
			if img.Comps[ci].Blocks[bi] != back2.Comps[ci].Blocks[bi] {
				t.Fatal("double rotate180 not identity")
			}
		}
	}
}

func TestCropAligned(t *testing.T) {
	planar := smoothPlanar(64, 48)
	img, err := jpegc.FromPlanar(planar, jpegc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	crop, err := CropAligned(img, 16, 8, 32, 24)
	if err != nil {
		t.Fatal(err)
	}
	if crop.W != 32 || crop.H != 24 {
		t.Fatalf("crop dims %dx%d", crop.W, crop.H)
	}
	// Cropped blocks must equal the source blocks.
	for by := 0; by < 3; by++ {
		for bx := 0; bx < 4; bx++ {
			if *crop.Comps[0].Block(bx, by) != *img.Comps[0].Block(bx+2, by+1) {
				t.Fatalf("crop block (%d,%d) mismatch", bx, by)
			}
		}
	}
	if _, err := CropAligned(img, 3, 0, 8, 8); err == nil {
		t.Error("unaligned crop should error")
	}
	if _, err := CropAligned(img, 0, 0, 128, 8); err == nil {
		t.Error("out-of-bounds crop should error")
	}
}

func TestRecompressReducesSize(t *testing.T) {
	planar := smoothPlanar(128, 96)
	img, err := jpegc.FromPlanar(planar, jpegc.Options{Quality: 95})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Recompress(img, 30)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := img.EncodedSize(jpegc.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := small.EncodedSize(jpegc.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s1 >= s0 {
		t.Errorf("recompression to q30 grew the image: %d -> %d", s0, s1)
	}
	if _, err := Recompress(img, 0); err == nil {
		t.Error("invalid quality should error")
	}
}

func TestApplyDispatch(t *testing.T) {
	planar := smoothPlanar(48, 48)
	img, err := jpegc.FromPlanar(planar, jpegc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{Op: OpNone},
		{Op: OpScale, FactorX: 0.5, FactorY: 0.5},
		{Op: OpCrop, X: 8, Y: 8, W: 16, H: 16},
		{Op: OpCrop, X: 3, Y: 5, W: 17, H: 19}, // unaligned -> pixel path
		{Op: OpRotate90},
		{Op: OpRotate, Angle: 15},
		{Op: OpFilter, Kernel: "gaussian3"},
		{Op: OpCompress, Quality: 40},
	}
	for _, spec := range specs {
		out, err := Apply(img, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Op, err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("%s: invalid output: %v", spec.Op, err)
		}
	}
	if _, err := Apply(img, Spec{Op: "bogus"}); err == nil {
		t.Error("unknown op should error")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Op: OpScale, FactorX: -1, FactorY: 1},
		{Op: OpScale},
		{Op: OpCrop, W: -4},
		{Op: OpFilter, Kernel: "nope"},
		{Op: OpCompress, Quality: 200},
		{Op: "wat"},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v should be invalid", s)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	in := Spec{Op: OpScale, FactorX: 0.5, FactorY: 0.25}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Spec
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
	var invalid Spec
	if err := json.Unmarshal([]byte(`{"op":"scale","factorX":-2}`), &invalid); err == nil {
		t.Error("unmarshal should validate")
	}
}

func TestOverlayAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dst := randomPlane(rng, 10, 10)
	src := randomPlane(rng, 4, 4)
	out := Overlay(dst, src, 3, 2)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			want := dst.Pix[(2+y)*10+3+x] + src.Pix[y*4+x]
			if out.Pix[(2+y)*10+3+x] != want {
				t.Fatalf("overlay at (%d,%d)", x, y)
			}
		}
	}
	// Out-of-bounds portions are ignored.
	_ = Overlay(dst, src, 8, 8)
	_ = Overlay(dst, src, -2, -2)
}

func TestApplyPlanarRejectsCompress(t *testing.T) {
	img := smoothPlanar(16, 16)
	if _, err := ApplyPlanar(img, Spec{Op: OpCompress, Quality: 50}); err == nil {
		t.Error("ApplyPlanar must reject compression")
	}
}

// TestConvolveSeparableMatchesFull checks that the two-pass separable fast
// path computes the same convolution as the direct 2-D kernel, including the
// zero-padded borders, across awkward plane shapes (narrower than the kernel
// half-width included).
func TestConvolveSeparableMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ w, h int }{{64, 48}, {1, 1}, {2, 5}, {3, 3}, {17, 1}, {1, 17}, {33, 7}}
	for name, k := range Kernels {
		if k.Sep == nil {
			continue
		}
		if len(k.Sep) != k.Side {
			t.Fatalf("%s: Sep has %d taps, Side is %d", name, len(k.Sep), k.Side)
		}
		// The declared 2-D weights must be the outer product of Sep.
		for y := 0; y < k.Side; y++ {
			for x := 0; x < k.Side; x++ {
				want := k.Sep[y] * k.Sep[x]
				got := k.Weights[y*k.Side+x]
				if math.Abs(float64(got-want)) > 1e-6 {
					t.Fatalf("%s: weight (%d,%d) = %g, outer product gives %g", name, x, y, got, want)
				}
			}
		}
		for _, sh := range shapes {
			p := randomPlane(rng, sh.w, sh.h)
			fast, err := Convolve(p, k)
			if err != nil {
				t.Fatalf("%s %dx%d: %v", name, sh.w, sh.h, err)
			}
			full := convolveFull(p, k)
			for i := range full.Pix {
				if diff := math.Abs(float64(fast.Pix[i] - full.Pix[i])); diff > 1e-3 {
					t.Fatalf("%s %dx%d: pixel %d differs by %g (separable %g, full %g)",
						name, sh.w, sh.h, i, diff, fast.Pix[i], full.Pix[i])
				}
			}
		}
	}
}
