// Package transform is the PSP-side image-processing library: the ordinary
// transformations a photo-sharing platform applies to stored images
// (paper §II-B). It is deliberately ignorant of PuPPIeS — it treats
// perturbed images exactly like any other image, which is the property that
// lets PuPPIeS interoperate with "existing image processing libraries
// without any extra changes" (paper §IV-C).
//
// Two execution domains are provided:
//
//   - Coefficient domain (lossless): rotations by multiples of 90 degrees,
//     flips, block-aligned crops and recompression operate directly on
//     quantized DCT blocks, exactly like jpegtran's lossless transforms.
//   - Pixel domain: scaling, arbitrary-angle rotation, linear filtering,
//     overlays and unaligned crops operate on unclamped planar YUV samples
//     so that linearity f(a+b) = f(a)+f(b) holds exactly (the property
//     PuPPIeS shadow-ROI reconstruction relies on).
package transform

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Op identifies a transformation type. The string values are part of the
// public parameters shared between the PSP and receivers.
type Op string

// Supported operations.
const (
	OpNone      Op = "none"
	OpScale     Op = "scale"     // pixel domain, bilinear
	OpCrop      Op = "crop"      // coefficient domain when block-aligned, else pixel domain
	OpRotate90  Op = "rotate90"  // coefficient domain, lossless
	OpRotate180 Op = "rotate180" // coefficient domain, lossless
	OpRotate270 Op = "rotate270" // coefficient domain, lossless
	OpFlipH     Op = "fliph"     // coefficient domain, lossless
	OpFlipV     Op = "flipv"     // coefficient domain, lossless
	OpRotate    Op = "rotate"    // pixel domain, arbitrary angle
	OpFilter    Op = "filter"    // pixel domain, linear convolution
	OpCompress  Op = "compress"  // coefficient domain requantization
)

// Spec is a serializable description of one PSP-side transformation. It is
// published as part of an image's public data so receivers can replay the
// same transformation on shadow ROIs (paper §III-C scenario 2).
type Spec struct {
	Op Op `json:"op"`

	// Scale parameters: output = input * Factor in each dimension.
	FactorX float64 `json:"factorX,omitempty"`
	FactorY float64 `json:"factorY,omitempty"`

	// Crop rectangle in pixels of the input image.
	X int `json:"x,omitempty"`
	Y int `json:"y,omitempty"`
	W int `json:"w,omitempty"`
	H int `json:"h,omitempty"`

	// Rotate angle in degrees (counter-clockwise) for OpRotate.
	Angle float64 `json:"angle,omitempty"`

	// Filter kernel name for OpFilter; see Kernels.
	Kernel string `json:"kernel,omitempty"`

	// Compress quality in [1,100] for OpCompress.
	Quality int `json:"quality,omitempty"`
}

// Validate checks the parameters for the given operation.
func (s *Spec) Validate() error {
	switch s.Op {
	case OpNone, OpRotate90, OpRotate180, OpRotate270, OpFlipH, OpFlipV:
		return nil
	case OpScale:
		if s.FactorX <= 0 || s.FactorY <= 0 {
			return fmt.Errorf("transform: scale factors must be positive, got %gx%g", s.FactorX, s.FactorY)
		}
		return nil
	case OpCrop:
		if s.W <= 0 || s.H <= 0 || s.X < 0 || s.Y < 0 {
			return fmt.Errorf("transform: invalid crop rectangle (%d,%d,%d,%d)", s.X, s.Y, s.W, s.H)
		}
		return nil
	case OpRotate:
		return nil
	case OpFilter:
		if _, ok := Kernels[s.Kernel]; !ok {
			return fmt.Errorf("transform: unknown filter kernel %q", s.Kernel)
		}
		return nil
	case OpCompress:
		if s.Quality < 1 || s.Quality > 100 {
			return fmt.Errorf("transform: compress quality %d out of range [1,100]", s.Quality)
		}
		return nil
	default:
		return fmt.Errorf("transform: unknown op %q", s.Op)
	}
}

// IsCoefficientDomain reports whether the operation can run losslessly on
// DCT coefficients.
func (s *Spec) IsCoefficientDomain() bool {
	switch s.Op {
	case OpNone, OpRotate90, OpRotate180, OpRotate270, OpFlipH, OpFlipV, OpCompress:
		return true
	case OpCrop:
		return s.X%8 == 0 && s.Y%8 == 0 && s.W%8 == 0 && s.H%8 == 0
	default:
		return false
	}
}

// IsLinear reports whether the operation is a linear map on pixel values,
// i.e. whether shadow-ROI subtraction can undo it (paper §IV-C.1).
// Compression is non-linear but supported through the dedicated
// requantization path (§IV-C.2).
func (s *Spec) IsLinear() bool {
	return s.Op != OpCompress
}

// Canonical returns the spec with every field the operation does not read
// zeroed and op-specific parameters normalized: an empty op becomes OpNone,
// and rotation angles are reduced to [0, 360). Two specs that command the
// same transformation have the same canonical form even if they were built
// with junk in unrelated fields (e.g. a rotate90 carrying a leftover
// quality from a reused struct).
func (s Spec) Canonical() Spec {
	out := Spec{Op: s.Op}
	if out.Op == "" {
		out.Op = OpNone
	}
	switch out.Op {
	case OpScale:
		out.FactorX, out.FactorY = s.FactorX, s.FactorY
	case OpCrop:
		out.X, out.Y, out.W, out.H = s.X, s.Y, s.W, s.H
	case OpRotate:
		a := math.Mod(s.Angle, 360)
		if a < 0 {
			a += 360
		}
		if a == 0 {
			a = 0 // squash -0 so FormatFloat emits "0"
		}
		out.Angle = a
	case OpFilter:
		out.Kernel = s.Kernel
	case OpCompress:
		out.Quality = s.Quality
	}
	return out
}

// Key returns a canonical cache key for the spec: equal keys iff the specs
// command byte-identical PSP output on the same input image. The key is
// independent of JSON field order, of defaulted/omitted fields, and of
// values in fields the operation ignores (see Canonical). It is a short
// printable string, suitable as a cache-map key or for hashing into an
// ETag.
func (s Spec) Key() string {
	c := s.Canonical()
	var b strings.Builder
	b.WriteString(string(c.Op))
	switch c.Op {
	case OpScale:
		b.WriteString("|fx=")
		b.WriteString(fmtFloat(c.FactorX))
		b.WriteString("|fy=")
		b.WriteString(fmtFloat(c.FactorY))
	case OpCrop:
		fmt.Fprintf(&b, "|x=%d|y=%d|w=%d|h=%d", c.X, c.Y, c.W, c.H)
	case OpRotate:
		b.WriteString("|a=")
		b.WriteString(fmtFloat(c.Angle))
	case OpFilter:
		b.WriteString("|k=")
		b.WriteString(c.Kernel)
	case OpCompress:
		fmt.Fprintf(&b, "|q=%d", c.Quality)
	}
	return b.String()
}

// fmtFloat renders a float parameter exactly (round-trippable via
// strconv.ParseFloat), so distinct factors never collide in a key.
func fmtFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// MarshalJSON/UnmarshalJSON use the default struct encoding; Spec is a plain
// data carrier. The methods exist to pin the wire format in one place.
func (s Spec) MarshalJSON() ([]byte, error) {
	type alias Spec
	return json.Marshal(alias(s))
}

// UnmarshalJSON parses and validates a spec.
func (s *Spec) UnmarshalJSON(data []byte) error {
	type alias Spec
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	if a.Op == "" {
		a.Op = OpNone
	}
	*s = Spec(a)
	return s.Validate()
}
