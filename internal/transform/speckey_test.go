package transform

import (
	"encoding/json"
	"testing"
)

func keyOfJSON(t *testing.T, doc string) string {
	t.Helper()
	var s Spec
	if err := json.Unmarshal([]byte(doc), &s); err != nil {
		t.Fatalf("unmarshal %s: %v", doc, err)
	}
	return s.Key()
}

func TestSpecKeyFieldOrderIndependent(t *testing.T) {
	a := keyOfJSON(t, `{"op":"scale","factorX":0.5,"factorY":0.25}`)
	b := keyOfJSON(t, `{"factorY":0.25,"op":"scale","factorX":0.5}`)
	if a != b {
		t.Errorf("field order changed key: %q vs %q", a, b)
	}
}

func TestSpecKeyDefaultedFieldsEquivalent(t *testing.T) {
	cases := []struct{ name, a, b string }{
		{"explicit zero quality", `{"op":"rotate90"}`, `{"op":"rotate90","quality":0}`},
		{"explicit zero crop on scale", `{"op":"scale","factorX":2,"factorY":2}`, `{"op":"scale","factorX":2,"factorY":2,"x":0,"w":0}`},
		{"empty op is none", `{}`, `{"op":"none"}`},
		{"angle zero", `{"op":"rotate"}`, `{"op":"rotate","angle":0}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if ka, kb := keyOfJSON(t, tc.a), keyOfJSON(t, tc.b); ka != kb {
				t.Errorf("%s vs %s: keys %q != %q", tc.a, tc.b, ka, kb)
			}
		})
	}
}

func TestSpecKeyIgnoresIrrelevantFields(t *testing.T) {
	// A reused struct with junk in fields the op never reads must key the
	// same as a clean one.
	dirty := Spec{Op: OpRotate90, Quality: 50, FactorX: 2, Kernel: "box3", Angle: 13}
	clean := Spec{Op: OpRotate90}
	if dirty.Key() != clean.Key() {
		t.Errorf("irrelevant fields leak into key: %q vs %q", dirty.Key(), clean.Key())
	}
}

func TestSpecKeyAngleNormalization(t *testing.T) {
	if a, b := (Spec{Op: OpRotate, Angle: 450}).Key(), (Spec{Op: OpRotate, Angle: 90}).Key(); a != b {
		t.Errorf("450deg != 90deg: %q vs %q", a, b)
	}
	if a, b := (Spec{Op: OpRotate, Angle: -90}).Key(), (Spec{Op: OpRotate, Angle: 270}).Key(); a != b {
		t.Errorf("-90deg != 270deg: %q vs %q", a, b)
	}
	if a, b := (Spec{Op: OpRotate, Angle: -360}).Key(), (Spec{Op: OpRotate}).Key(); a != b {
		t.Errorf("-360deg != 0deg: %q vs %q", a, b)
	}
}

func TestSpecKeyJSONRoundTripStable(t *testing.T) {
	specs := []Spec{
		{Op: OpNone},
		{Op: OpScale, FactorX: 0.3333333333333333, FactorY: 1e-9},
		{Op: OpCrop, X: 8, Y: 16, W: 64, H: 32},
		{Op: OpRotate, Angle: 33.75},
		{Op: OpFilter, Kernel: "gaussian5"},
		{Op: OpCompress, Quality: 35},
		{Op: OpFlipH},
	}
	for _, s := range specs {
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Spec
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("round trip %s: %v", raw, err)
		}
		if back.Key() != s.Key() {
			t.Errorf("JSON round trip changed key: %q -> %q (%s)", s.Key(), back.Key(), raw)
		}
	}
}

func TestSpecKeyDistinguishesUnequalSpecs(t *testing.T) {
	specs := []Spec{
		{Op: OpNone},
		{Op: OpScale, FactorX: 0.5, FactorY: 0.5},
		{Op: OpScale, FactorX: 0.5, FactorY: 0.25},
		{Op: OpScale, FactorX: 0.25, FactorY: 0.5},
		{Op: OpCrop, X: 0, Y: 0, W: 32, H: 32},
		{Op: OpCrop, X: 8, Y: 0, W: 32, H: 32},
		{Op: OpRotate90},
		{Op: OpRotate180},
		{Op: OpRotate270},
		{Op: OpFlipH},
		{Op: OpFlipV},
		{Op: OpRotate, Angle: 45},
		{Op: OpRotate, Angle: 45.5},
		{Op: OpFilter, Kernel: "box3"},
		{Op: OpFilter, Kernel: "gaussian3"},
		{Op: OpCompress, Quality: 50},
		{Op: OpCompress, Quality: 51},
	}
	seen := map[string]Spec{}
	for _, s := range specs {
		k := s.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("specs %+v and %+v collide on key %q", prev, s, k)
		}
		seen[k] = s
	}
}

// FuzzSpecKey checks that Key never panics on any spec the JSON decoder
// accepts, and that keys are stable across a marshal/unmarshal round trip
// (the wire trip a spec takes from client to PSP must not change its cache
// identity).
func FuzzSpecKey(f *testing.F) {
	f.Add(`{"op":"scale","factorX":0.5,"factorY":0.5}`)
	f.Add(`{"op":"crop","x":8,"y":8,"w":16,"h":16}`)
	f.Add(`{"op":"rotate","angle":-721.25}`)
	f.Add(`{"op":"compress","quality":1}`)
	f.Add(`{"op":"filter","kernel":"box3"}`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, doc string) {
		var s Spec
		if err := json.Unmarshal([]byte(doc), &s); err != nil {
			t.Skip()
		}
		k1 := s.Key()
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal accepted spec %+v: %v", s, err)
		}
		var back Spec
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("re-unmarshal %s: %v", raw, err)
		}
		if k2 := back.Key(); k1 != k2 {
			t.Errorf("key unstable across JSON round trip: %q -> %q (%s)", k1, k2, raw)
		}
	})
}
