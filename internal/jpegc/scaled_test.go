package jpegc

import (
	"bytes"
	"image"
	"math"
	"testing"

	"puppies/internal/imgplane"
	"puppies/internal/parallel"
)

// planePSNR computes PSNR in dB between two equal-size planar images over
// all channels, with the conventional 255 peak.
func planePSNR(t testing.TB, a, b *imgplane.Image) float64 {
	t.Helper()
	if a.W() != b.W() || a.H() != b.H() || a.Channels() != b.Channels() {
		t.Fatalf("psnr size mismatch: %dx%d/%d vs %dx%d/%d", a.W(), a.H(), a.Channels(), b.W(), b.H(), b.Channels())
	}
	var sum float64
	var n int
	for ci := range a.Planes {
		for i, v := range a.Planes[ci].Pix {
			d := float64(v - b.Planes[ci].Pix[i])
			sum += d * d
			n++
		}
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/(sum/float64(n)))
}

// scaledReference is the full-resolution path at the same target: full
// decode, then the shared bilinear kernel down to the reduced dimensions.
func scaledReference(t testing.TB, img *Image, num int) *imgplane.Image {
	t.Helper()
	full, err := img.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	out, err := imgplane.New(ScaledDim(img.W, num), ScaledDim(img.H, num), len(img.Comps))
	if err != nil {
		t.Fatal(err)
	}
	for ci, p := range full.Planes {
		imgplane.ResizeBilinearInto(p, out.Planes[ci])
	}
	return out
}

func TestToPlanarScaledGeometry(t *testing.T) {
	for _, tc := range []struct{ w, h int }{
		{8, 8}, {64, 48}, {67, 45}, {100, 75}, {513, 385}, {16, 1024},
	} {
		img, err := FromPlanar(gradientPlanar(tc.w, tc.h), Options{Quality: 85})
		if err != nil {
			t.Fatal(err)
		}
		for _, num := range []int{1, 2, 4} {
			small, err := img.ToPlanarScaled(num)
			if err != nil {
				t.Fatalf("%dx%d num=%d: %v", tc.w, tc.h, num, err)
			}
			if err := small.Validate(); err != nil {
				t.Fatalf("%dx%d num=%d: %v", tc.w, tc.h, num, err)
			}
			wantW, wantH := ScaledDim(tc.w, num), ScaledDim(tc.h, num)
			if small.W() != wantW || small.H() != wantH {
				t.Fatalf("%dx%d num=%d: got %dx%d, want %dx%d", tc.w, tc.h, num, small.W(), small.H(), wantW, wantH)
			}
		}
	}
	img, _ := FromPlanar(gradientPlanar(32, 32), Options{})
	if _, err := img.ToPlanarScaled(3); err == nil {
		t.Fatal("num=3 accepted")
	}
	if _, err := img.ToPlanarScaled(8); err == nil {
		t.Fatal("num=8 accepted (full decode is ToPlanar)")
	}
}

// TestToPlanarScaledMatchesFullPath bounds the scaled decode's deviation
// from the full-resolution path: the only difference is the truncated
// high-frequency residue, which on JPEG-quantized content stays far above
// the 40 dB planner-equivalence bar for the supersampled scales the
// planner uses (see transform.PlanSpec) and is reported for all of them.
func TestToPlanarScaledMatchesFullPath(t *testing.T) {
	for _, sub := range []struct {
		name  string
		ratio image.YCbCrSubsampleRatio
	}{
		{"444", image.YCbCrSubsampleRatio444},
		{"420", image.YCbCrSubsampleRatio420},
		{"422", image.YCbCrSubsampleRatio422},
	} {
		img, err := Decode(bytes.NewReader(stdlibYCbCr(t, 200, 120, sub.ratio)))
		if err != nil {
			t.Fatal(err)
		}
		for _, num := range []int{1, 2, 4} {
			small, err := img.ToPlanarScaled(num)
			if err != nil {
				t.Fatal(err)
			}
			psnr := planePSNR(t, small, scaledReference(t, img, num))
			t.Logf("%s num=%d: %.1f dB", sub.name, num, psnr)
			if psnr < 30 {
				t.Fatalf("%s num=%d: scaled decode diverges from full path: %.1f dB", sub.name, num, psnr)
			}
		}
	}
}

// TestToPlanarScaledDeterminism pins byte-identical output at any worker
// count — the property the serving cache's same-spec-same-bytes ETag
// contract rests on.
func TestToPlanarScaledDeterminism(t *testing.T) {
	img, err := Decode(bytes.NewReader(stdlibYCbCr(t, 137, 91, image.YCbCrSubsampleRatio420)))
	if err != nil {
		t.Fatal(err)
	}
	base, err := img.ToPlanarScaled(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		prev := parallel.SetWorkers(workers)
		got, err := img.ToPlanarScaled(2)
		parallel.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		for ci := range base.Planes {
			for i, v := range base.Planes[ci].Pix {
				if got.Planes[ci].Pix[i] != v {
					t.Fatalf("workers=%d: plane %d sample %d differs", workers, ci, i)
				}
			}
		}
	}
}
