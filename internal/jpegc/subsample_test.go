package jpegc

import (
	"bytes"
	"image"
	"image/jpeg"
	"math"
	"testing"

	"puppies/internal/imgplane"
)

// stdlibYCbCr builds a textured YCbCr image at the given subsampling ratio
// and encodes it with the stdlib encoder (which preserves the ratio).
func stdlibYCbCr(t testing.TB, w, h int, ratio image.YCbCrSubsampleRatio) []byte {
	t.Helper()
	src := image.NewYCbCr(image.Rect(0, 0, w, h), ratio)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			src.Y[src.YOffset(x, y)] = uint8(128 + 80*math.Sin(float64(x)/6)*math.Cos(float64(y)/8))
		}
	}
	cw := src.CStride
	ch := len(src.Cb) / cw
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			src.Cb[y*cw+x] = uint8(128 + 40*math.Sin(float64(x)/5))
			src.Cr[y*cw+x] = uint8(128 + 40*math.Cos(float64(y)/4))
		}
	}
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, src, &jpeg.Options{Quality: 90}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeSubsampledStreams(t *testing.T) {
	for _, tc := range []struct {
		name  string
		ratio image.YCbCrSubsampleRatio
	}{
		{"444", image.YCbCrSubsampleRatio444},
		{"422", image.YCbCrSubsampleRatio422},
		{"420", image.YCbCrSubsampleRatio420},
		{"440", image.YCbCrSubsampleRatio440},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := stdlibYCbCr(t, 67, 45, tc.ratio) // odd dims exercise MCU padding
			img, err := Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("decode %s: %v", tc.name, err)
			}
			if err := img.Validate(); err != nil {
				t.Fatalf("normalized image invalid: %v", err)
			}
			if img.W != 67 || img.H != 45 || img.Channels() != 3 {
				t.Fatalf("got %dx%d/%d", img.W, img.H, img.Channels())
			}

			// Pixels must closely match the stdlib decoder's view.
			ours, err := img.ToPlanar()
			if err != nil {
				t.Fatal(err)
			}
			ref, err := jpeg.Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			refPlanar, err := imgplane.FromStdImage(ref)
			if err != nil {
				t.Fatal(err)
			}
			psnr, err := imgplane.ImagePSNR(ours.Quantize8(), refPlanar)
			if err != nil {
				t.Fatal(err)
			}
			if psnr < 30 {
				t.Errorf("%s: decoded pixels diverge from stdlib (PSNR %.1f dB)", tc.name, psnr)
			}

			// The normalized image must re-encode and round-trip.
			var buf bytes.Buffer
			if err := img.Encode(&buf, EncodeOptions{}); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			back, err := Decode(&buf)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			for ci := range img.Comps {
				for bi := range img.Comps[ci].Blocks {
					if back.Comps[ci].Blocks[bi] != img.Comps[ci].Blocks[bi] {
						t.Fatal("re-encode round trip lost coefficients")
					}
				}
			}
		})
	}
}

// Luma of a subsampled stream must import losslessly: compare our Y blocks
// against a coefficient-level reference obtained by re-decoding our own
// 4:4:4 re-encode of the same stream.
func TestSubsampledLumaBitExact(t *testing.T) {
	data := stdlibYCbCr(t, 64, 48, image.YCbCrSubsampleRatio420)
	img, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Decode the same stream with the stdlib and compare luminance pixels
	// block-wise: our Y channel comes straight from the entropy decoder, so
	// the IDCT of our blocks must match the stdlib's Y plane within IDCT
	// rounding (+-1.5).
	ref, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	ycbcr, ok := ref.(*image.YCbCr)
	if !ok {
		t.Fatalf("stdlib returned %T", ref)
	}
	pix, err := img.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			d := math.Abs(float64(pix.Planes[0].Pix[y*64+x]) - float64(ycbcr.Y[ycbcr.YOffset(x, y)]))
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 1.5 {
		t.Errorf("luma deviates by up to %.2f from stdlib; import not lossless", worst)
	}
}

func TestDecodeRejectsIllegalSampling(t *testing.T) {
	// Hand-crafted SOF with a 3x1 sampling factor.
	stream := []byte{
		0xff, 0xd8,
		0xff, 0xc0, 0x00, 0x11, 8, 0x00, 0x10, 0x00, 0x10, 3,
		1, 0x31, 0, // 3x1 sampling: out of supported range
		2, 0x11, 1,
		3, 0x11, 1,
		0xff, 0xd9,
	}
	if _, err := Decode(bytes.NewReader(stream)); err == nil {
		t.Error("3x1 sampling accepted")
	}
}
