package jpegc

import (
	"fmt"

	"puppies/internal/dct"
	"puppies/internal/imgplane"
)

// normalizeSampling converts the freshly decoded, MCU-padded component
// grids into this package's canonical 4:4:4 layout:
//
//   - full-resolution components are trimmed to the nominal block grid
//     (decoding leaves whole-MCU padding rows/columns);
//   - subsampled chroma components (4:2:0 / 4:2:2 / 4:4:0 streams) are
//     dequantized, bilinearly upsampled in the pixel domain, and
//     re-quantized at full resolution with their own quantization table.
//
// Luminance therefore survives import bit-exactly; chroma of subsampled
// streams is re-encoded once (the unavoidable cost of normalizing to
// 4:4:4), which matches what any 4:4:4 transcode does.
func (d *decoder) normalizeSampling() error {
	wantBW, wantBH := blocksFor(d.img.W), blocksFor(d.img.H)
	for ci := range d.img.Comps {
		comp := &d.img.Comps[ci]
		hs, vs := d.comps[ci].hSamp, d.comps[ci].vSamp
		if hs == d.maxH && vs == d.maxV {
			trimComponent(comp, wantBW, wantBH)
			continue
		}
		// Subsampled component: pixel dimensions per the JPEG standard.
		cw := (d.img.W*hs + d.maxH - 1) / d.maxH
		ch := (d.img.H*vs + d.maxV - 1) / d.maxV
		plane := planeFromComponent(comp, cw, ch)
		up := upsampleBilinear(plane, d.img.W, d.img.H)
		full, err := componentFromPlane(up, &comp.Quant)
		if err != nil {
			return fmt.Errorf("jpegc: upsample component %d: %w", ci, err)
		}
		*comp = full
	}
	return nil
}

// trimComponent crops the block grid to the given dimensions (dropping
// MCU padding). No-op when the grid already matches.
func trimComponent(comp *Component, bw, bh int) {
	if comp.BlocksW == bw && comp.BlocksH == bh {
		return
	}
	blocks := make([]dct.Block, bw*bh)
	for by := 0; by < bh; by++ {
		copy(blocks[by*bw:(by+1)*bw], comp.Blocks[by*comp.BlocksW:by*comp.BlocksW+bw])
	}
	comp.BlocksW, comp.BlocksH = bw, bh
	comp.Blocks = blocks
}

// planeFromComponent dequantizes + inverse-transforms a component into an
// unclamped pixel plane of the given dimensions.
func planeFromComponent(comp *Component, pw, ph int) *imgplane.Plane {
	plane := imgplane.NewPlane(pw, ph)
	for by := 0; by < comp.BlocksH; by++ {
		for bx := 0; bx < comp.BlocksW; bx++ {
			spatial := dct.InverseQuantized(comp.Block(bx, by), &comp.Quant)
			for y := 0; y < dct.BlockSize; y++ {
				py := by*dct.BlockSize + y
				if py >= ph {
					break
				}
				for x := 0; x < dct.BlockSize; x++ {
					px := bx*dct.BlockSize + x
					if px >= pw {
						break
					}
					plane.Pix[py*pw+px] = float32(spatial[y*dct.BlockSize+x]) + 128
				}
			}
		}
	}
	return plane
}

// upsampleBilinear resizes a plane to (w, h) with center-aligned bilinear
// interpolation (local copy of the transform package's kernel to avoid an
// import cycle).
func upsampleBilinear(p *imgplane.Plane, w, h int) *imgplane.Plane {
	out := imgplane.NewPlane(w, h)
	fx := float64(w) / float64(p.W)
	fy := float64(h) / float64(p.H)
	for oy := 0; oy < h; oy++ {
		sy := (float64(oy)+0.5)/fy - 0.5
		y0 := int(sy)
		if sy < 0 {
			y0 = -1
		}
		wy := float32(sy - float64(y0))
		for ox := 0; ox < w; ox++ {
			sx := (float64(ox)+0.5)/fx - 0.5
			x0 := int(sx)
			if sx < 0 {
				x0 = -1
			}
			wx := float32(sx - float64(x0))
			v := (1-wy)*((1-wx)*p.At(x0, y0)+wx*p.At(x0+1, y0)) +
				wy*((1-wx)*p.At(x0, y0+1)+wx*p.At(x0+1, y0+1))
			out.Pix[oy*w+ox] = v
		}
	}
	return out
}
