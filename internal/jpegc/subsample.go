package jpegc

import (
	"fmt"

	"puppies/internal/imgplane"
)

// finishSampling converts the freshly decoded, MCU-padded component grids
// into the image's native per-component layout: each component is trimmed
// to its nominal block grid (decoding leaves whole-MCU padding rows and
// columns) and tagged with its sampling factors. Subsampled chroma stays at
// native resolution — every coefficient survives import bit-exactly.
func (d *decoder) finishSampling() error {
	for ci := range d.img.Comps {
		comp := &d.img.Comps[ci]
		comp.HSamp = d.comps[ci].hSamp
		comp.VSamp = d.comps[ci].vSamp
		pw, ph := d.img.CompDims(ci)
		trimComponent(comp, blocksFor(pw), blocksFor(ph))
	}
	return nil
}

// trimComponent crops the block grid to the given dimensions (dropping
// MCU padding). No-op when the grid already matches.
func trimComponent(comp *Component, bw, bh int) {
	if comp.BlocksW == bw && comp.BlocksH == bh {
		return
	}
	blocks := getBlockSlab(bw * bh)
	for by := 0; by < bh; by++ {
		copy(blocks[by*bw:(by+1)*bw], comp.Blocks[by*comp.BlocksW:by*comp.BlocksW+bw])
	}
	putBlockSlab(comp.Blocks)
	comp.BlocksW, comp.BlocksH = bw, bh
	comp.Blocks = blocks
}

// Normalize444 returns an equivalent image whose components all sample at
// the image maximum (4:4:4 for color): subsampled chroma is dequantized,
// bilinearly upsampled in the pixel domain, and re-quantized at full
// resolution with its own quantization table. This is the compatibility
// path for consumers that require equal component grids — it re-encodes
// chroma once (the unavoidable cost of any 4:4:4 transcode), exactly what
// the decoder used to do unconditionally on import. Already-4:4:4 images
// are returned unchanged (same pointer).
//
// Intermediate planes come from the imgplane pool, so repeated
// normalization does not allocate per-component scratch.
func (m *Image) Normalize444() (*Image, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !m.Subsampled() {
		return m, nil
	}
	out := &Image{W: m.W, H: m.H, Comps: make([]Component, len(m.Comps))}
	full := imgplane.GetPlane(m.W, m.H)
	defer imgplane.PutPlane(full)
	for ci := range m.Comps {
		comp := &m.Comps[ci]
		pw, ph := m.CompDims(ci)
		if pw == m.W && ph == m.H {
			out.Comps[ci] = comp.Clone()
			out.Comps[ci].HSamp, out.Comps[ci].VSamp = 1, 1
			continue
		}
		native := imgplane.GetPlane(pw, ph)
		fillPlaneFromComponent(comp, native)
		imgplane.ResizeBilinearInto(native, full)
		imgplane.PutPlane(native)
		up, err := componentFromPlane(full, &comp.Quant)
		if err != nil {
			return nil, fmt.Errorf("jpegc: upsample component %d: %w", ci, err)
		}
		out.Comps[ci] = up
	}
	return out, nil
}
