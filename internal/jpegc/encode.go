package jpegc

import (
	"fmt"
	"io"

	"puppies/internal/dct"
	"puppies/internal/parallel"
)

// TableMode selects how Huffman tables are chosen at encode time.
type TableMode int

const (
	// TablesDefault uses the Annex K typical tables (libjpeg default).
	TablesDefault TableMode = iota + 1
	// TablesOptimized derives per-image tables from the actual symbol
	// distribution in a first statistics pass (libjpeg optimize_coding).
	// PuPPIeS-C depends on this mode.
	TablesOptimized
)

// EncodeOptions control bit-stream generation.
type EncodeOptions struct {
	// Tables selects default or optimized Huffman tables. Zero value means
	// TablesDefault.
	Tables TableMode
	// RestartInterval, when positive, emits a DRI segment and RSTn markers
	// every that many MCUs, allowing decoders to resynchronize after
	// corruption. Zero disables restart markers (the default).
	RestartInterval int
}

func (o EncodeOptions) tables() TableMode {
	if o.Tables == 0 {
		return TablesDefault
	}
	return o.Tables
}

// tableSet is the four Huffman specs used in one scan. For grayscale only
// the first two are used.
type tableSet struct {
	dcLum, acLum, dcChrom, acChrom HuffmanSpec
}

// Encode writes the coefficient image as a baseline JFIF stream: grayscale
// for 1 component, YUV at the components' native sampling for 3 components
// (4:4:4 when all components sample 1x1, MCU-interleaved 4:2:0/4:2:2/4:4:0
// otherwise). Blocks in the MCU padding margin of subsampled layouts are
// filled by edge-block replication, which round-trips: the decoder writes
// them into the padded grid and trims them away.
func (m *Image) Encode(w io.Writer, opts EncodeOptions) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if err := m.validateCoefficientRanges(); err != nil {
		return err
	}

	var tables tableSet
	switch opts.tables() {
	case TablesDefault:
		tables = tableSet{
			dcLum: StdDCLuminance, acLum: StdACLuminance,
			dcChrom: StdDCChrominance, acChrom: StdACChrominance,
		}
	case TablesOptimized:
		var err error
		tables, err = m.gatherOptimalTables()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("jpegc: unknown table mode %d", opts.Tables)
	}

	if opts.RestartInterval < 0 || opts.RestartInterval > 0xffff {
		return fmt.Errorf("jpegc: restart interval %d out of range [0, 65535]", opts.RestartInterval)
	}
	if err := writeMarkers(w, m, &tables, opts.RestartInterval); err != nil {
		return err
	}
	if err := m.writeScan(w, &tables, opts.RestartInterval); err != nil {
		return err
	}
	_, err := w.Write([]byte{0xff, markerEOI})
	return err
}

// EncodedSize returns the byte length of the encoded stream without
// retaining it.
func (m *Image) EncodedSize(opts EncodeOptions) (int64, error) {
	var cw countingWriter
	if err := m.Encode(&cw, opts); err != nil {
		return 0, err
	}
	return cw.n, nil
}

func (m *Image) validateCoefficientRanges() error {
	for ci := range m.Comps {
		for bi := range m.Comps[ci].Blocks {
			b := &m.Comps[ci].Blocks[bi]
			if b[0] < dct.CoeffMin || b[0] > dct.CoeffMax {
				return fmt.Errorf("jpegc: component %d block %d DC %d out of range [%d,%d]",
					ci, bi, b[0], dct.CoeffMin, dct.CoeffMax)
			}
			for i := 1; i < dct.BlockLen; i++ {
				if b[i] < ACMin || b[i] > dct.CoeffMax {
					return fmt.Errorf("jpegc: component %d block %d AC[%d] %d out of range [%d,%d]",
						ci, bi, i, b[i], ACMin, dct.CoeffMax)
				}
			}
		}
	}
	return nil
}

// Marker codes (second byte after 0xFF).
const (
	markerSOI  = 0xd8
	markerEOI  = 0xd9
	markerSOF0 = 0xc0
	markerDHT  = 0xc4
	markerDQT  = 0xdb
	markerSOS  = 0xda
	markerAPP0 = 0xe0
	markerDRI  = 0xdd
	markerCOM  = 0xfe
	markerRST0 = 0xd0
	markerRST7 = 0xd7
)

func writeSegment(w io.Writer, marker byte, payload []byte) error {
	if len(payload)+2 > 0xffff {
		return fmt.Errorf("jpegc: segment %#x payload too long (%d)", marker, len(payload))
	}
	hdr := []byte{0xff, marker, byte((len(payload) + 2) >> 8), byte(len(payload) + 2)}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func writeMarkers(w io.Writer, m *Image, tables *tableSet, restartInterval int) error {
	if _, err := w.Write([]byte{0xff, markerSOI}); err != nil {
		return err
	}
	// APP0 JFIF header, version 1.1, no density information.
	app0 := []byte{'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0}
	if err := writeSegment(w, markerAPP0, app0); err != nil {
		return err
	}

	// DQT: table 0 = luminance; table 1 = chrominance (color only).
	nQuant := 1
	if len(m.Comps) == 3 {
		nQuant = 2
	}
	dqt := make([]byte, 0, nQuant*65)
	for q := 0; q < nQuant; q++ {
		dqt = append(dqt, byte(q)) // 8-bit precision, table id q
		src := &m.Comps[0].Quant
		if q == 1 {
			src = &m.Comps[1].Quant
		}
		for zz := 0; zz < dct.BlockLen; zz++ {
			v := src[dct.ZigZag[zz]]
			if v > 255 {
				return fmt.Errorf("jpegc: quant step %d too large for 8-bit DQT", v)
			}
			dqt = append(dqt, byte(v))
		}
	}
	if err := writeSegment(w, markerDQT, dqt); err != nil {
		return err
	}

	// SOF0: baseline, 8-bit precision, per-component sampling factors.
	sof := []byte{8, byte(m.H >> 8), byte(m.H), byte(m.W >> 8), byte(m.W), byte(len(m.Comps))}
	for ci := range m.Comps {
		qid := byte(0)
		if ci > 0 {
			qid = 1
		}
		hs, vs := m.Comps[ci].Sampling()
		sof = append(sof, byte(ci+1), byte(hs<<4|vs), qid)
	}
	if err := writeSegment(w, markerSOF0, sof); err != nil {
		return err
	}

	// DHT: class 0 = DC, class 1 = AC; id 0 = luminance, id 1 = chrominance.
	dht := make([]byte, 0, 1024)
	appendSpec := func(class, id byte, s *HuffmanSpec) {
		dht = append(dht, class<<4|id)
		dht = append(dht, s.Counts[:]...)
		dht = append(dht, s.Values...)
	}
	appendSpec(0, 0, &tables.dcLum)
	appendSpec(1, 0, &tables.acLum)
	if len(m.Comps) == 3 {
		appendSpec(0, 1, &tables.dcChrom)
		appendSpec(1, 1, &tables.acChrom)
	}
	if err := writeSegment(w, markerDHT, dht); err != nil {
		return err
	}

	// DRI (only when restart markers are requested).
	if restartInterval > 0 {
		dri := []byte{byte(restartInterval >> 8), byte(restartInterval)}
		if err := writeSegment(w, markerDRI, dri); err != nil {
			return err
		}
	}

	// SOS.
	sos := []byte{byte(len(m.Comps))}
	for ci := range m.Comps {
		tid := byte(0x00)
		if ci > 0 {
			tid = 0x11
		}
		sos = append(sos, byte(ci+1), tid)
	}
	sos = append(sos, 0, 63, 0) // spectral selection 0..63, successive approx 0
	return writeSegment(w, markerSOS, sos)
}

// encodeBlock entropy-codes one block given its DC predictor, returning
// the new predictor value. Each Huffman code is packed together with its
// magnitude bits into a single WriteBits call (at most 16+11 = 27 bits).
// countBlock must emit the identical symbol stream — the two walks are
// deliberately parallel; TestEncodeOptimizedRoundTrip breaks if they drift.
func encodeBlock(bw *bitWriter, b *dct.Block, pred int32, dcT, acT *encTable) (int32, error) {
	diff := b[0] - pred
	cat := magnitudeCategory(diff)
	if dcT.size[cat] == 0 {
		return 0, fmt.Errorf("jpegc: DC symbol %#x has no huffman code", cat)
	}
	bw.WriteBits(dcT.code[cat]<<cat|magnitudeBits(diff, cat), uint(dcT.size[cat])+uint(cat))

	run := 0
	for zz := 1; zz < dct.BlockLen; zz++ {
		v := b[dct.ZigZag[zz]]
		if v == 0 {
			run++
			continue
		}
		for run > 15 {
			if acT.size[0xf0] == 0 {
				return 0, fmt.Errorf("jpegc: AC symbol %#x has no huffman code", 0xf0)
			}
			bw.WriteBits(acT.code[0xf0], uint(acT.size[0xf0])) // ZRL
			run -= 16
		}
		size := magnitudeCategory(v)
		sym := byte(run<<4 | size)
		if acT.size[sym] == 0 {
			return 0, fmt.Errorf("jpegc: AC symbol %#x has no huffman code", sym)
		}
		bw.WriteBits(acT.code[sym]<<size|magnitudeBits(v, size), uint(acT.size[sym])+uint(size))
		run = 0
	}
	if run > 0 {
		if acT.size[0x00] == 0 {
			return 0, fmt.Errorf("jpegc: AC symbol %#x has no huffman code", 0x00)
		}
		bw.WriteBits(acT.code[0x00], uint(acT.size[0x00])) // EOB
	}
	return b[0], nil
}

// countBlock walks one block exactly like encodeBlock but accumulates
// symbol frequencies instead of emitting bits (the statistics pass of the
// optimized-tables mode), returning the new DC predictor.
func countBlock(b *dct.Block, pred int32, dc, ac *[256]int64) int32 {
	diff := b[0] - pred
	dc[magnitudeCategory(diff)]++

	run := 0
	for zz := 1; zz < dct.BlockLen; zz++ {
		v := b[dct.ZigZag[zz]]
		if v == 0 {
			run++
			continue
		}
		for run > 15 {
			ac[0xf0]++ // ZRL
			run -= 16
		}
		size := magnitudeCategory(v)
		ac[byte(run<<4|size)]++
		run = 0
	}
	if run > 0 {
		ac[0x00]++ // EOB
	}
	return b[0]
}

// histGrain is the number of MCUs per chunk in the parallel statistics
// pass; at ~64 symbols per MCU a chunk is enough work to amortize the
// per-chunk histogram.
const histGrain = 256

// mcuGrid returns the scan's MCU counts: for 4:4:4 an MCU is one block per
// component, for subsampled layouts it spans 8*maxH x 8*maxV pixels.
func (m *Image) mcuGrid() (mcusX, mcusY int) {
	maxH, maxV := m.MaxSampling()
	mcusX = (m.W + dct.BlockSize*maxH - 1) / (dct.BlockSize * maxH)
	mcusY = (m.H + dct.BlockSize*maxV - 1) / (dct.BlockSize * maxV)
	return mcusX, mcusY
}

// clampedBlock returns the block at (bx, by), replicating the nearest edge
// block for coordinates in the MCU padding margin outside the nominal grid
// (the scan walks whole MCUs, the grid stores only nominal blocks).
func (c *Component) clampedBlock(bx, by int) *dct.Block {
	if bx >= c.BlocksW {
		bx = c.BlocksW - 1
	}
	if by >= c.BlocksH {
		by = c.BlocksH - 1
	}
	return &c.Blocks[by*c.BlocksW+bx]
}

func (m *Image) gatherOptimalTables() (tableSet, error) {
	// The statistics pass is embarrassingly parallel: the DC symbol of MCU
	// i depends only on the stored DC of MCU i-1 (the predictor is the
	// previous block's coefficient, not an encoder-state value), so each
	// chunk seeds its predictors from the last block its component emits in
	// the MCU just before it. Histograms are integer counts, so merging
	// per-chunk partials is exact and order-independent. The per-chunk
	// histograms (8 KiB each) come from a pool and go back after the merge.
	// The walk must count the identical symbol stream writeScan emits,
	// replicated MCU-padding blocks included.
	mcusX, mcusY := m.mcuGrid()
	nMCU := mcusX * mcusY
	parts := parallel.Map(nMCU, histGrain, func(lo, hi int) *symbolHist {
		h := getHist()
		var pred [4]int32
		if lo > 0 {
			pmx, pmy := (lo-1)%mcusX, (lo-1)/mcusX
			for ci := range m.Comps {
				hs, vs := m.Comps[ci].Sampling()
				pred[ci] = m.Comps[ci].clampedBlock(pmx*hs+hs-1, pmy*vs+vs-1)[0]
			}
		}
		for mcu := lo; mcu < hi; mcu++ {
			mx, my := mcu%mcusX, mcu/mcusX
			for ci := range m.Comps {
				ti := 0
				if ci > 0 {
					ti = 1
				}
				hs, vs := m.Comps[ci].Sampling()
				for v := 0; v < vs; v++ {
					for hh := 0; hh < hs; hh++ {
						pred[ci] = countBlock(m.Comps[ci].clampedBlock(mx*hs+hh, my*vs+v), pred[ci], &h.dc[ti], &h.ac[ti])
					}
				}
			}
		}
		return h
	})
	var dcFreq, acFreq [2][256]int64
	for _, h := range parts {
		for ti := 0; ti < 2; ti++ {
			for s := 0; s < 256; s++ {
				dcFreq[ti][s] += h.dc[ti][s]
				acFreq[ti][s] += h.ac[ti][s]
			}
		}
		putHist(h)
	}

	var ts tableSet
	var err error
	if ts.dcLum, err = BuildOptimalSpec(&dcFreq[0]); err != nil {
		return ts, fmt.Errorf("jpegc: optimal DC luminance table: %w", err)
	}
	if ts.acLum, err = BuildOptimalSpec(&acFreq[0]); err != nil {
		return ts, fmt.Errorf("jpegc: optimal AC luminance table: %w", err)
	}
	if len(m.Comps) == 3 {
		if ts.dcChrom, err = BuildOptimalSpec(&dcFreq[1]); err != nil {
			return ts, fmt.Errorf("jpegc: optimal DC chrominance table: %w", err)
		}
		if ts.acChrom, err = BuildOptimalSpec(&acFreq[1]); err != nil {
			return ts, fmt.Errorf("jpegc: optimal AC chrominance table: %w", err)
		}
	}
	return ts, nil
}

func (m *Image) writeScan(w io.Writer, tables *tableSet, restartInterval int) error {
	dcEnc := make([]*encTable, 2)
	acEnc := make([]*encTable, 2)
	var err error
	if dcEnc[0], err = newEncTable(&tables.dcLum); err != nil {
		return err
	}
	if acEnc[0], err = newEncTable(&tables.acLum); err != nil {
		return err
	}
	if len(m.Comps) == 3 {
		if dcEnc[1], err = newEncTable(&tables.dcChrom); err != nil {
			return err
		}
		if acEnc[1], err = newEncTable(&tables.acChrom); err != nil {
			return err
		}
	}

	bw := newBitWriter(w)
	defer bw.release()
	var pred [4]int32
	mcusX, mcusY := m.mcuGrid()
	mcu, rstIndex := 0, 0
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			if restartInterval > 0 && mcu > 0 && mcu%restartInterval == 0 {
				bw.WriteRestart(rstIndex) // pad, emit RSTn, reset DC prediction
				rstIndex++
				pred = [4]int32{}
			}
			mcu++
			// An MCU carries hs x vs blocks per component (one block each in
			// the 4:4:4 layout); padding positions replicate the edge block.
			for ci := range m.Comps {
				ti := 0
				if ci > 0 {
					ti = 1
				}
				hs, vs := m.Comps[ci].Sampling()
				for v := 0; v < vs; v++ {
					for h := 0; h < hs; h++ {
						next, err := encodeBlock(bw, m.Comps[ci].clampedBlock(mx*hs+h, my*vs+v), pred[ci], dcEnc[ti], acEnc[ti])
						if err != nil {
							bw.setErr(err)
							return bw.Flush()
						}
						pred[ci] = next
					}
				}
			}
		}
	}
	return bw.Flush()
}
