package jpegc

import (
	"bytes"
	"image"
	"testing"
)

// subsampledBenchJPEG encodes a textured 512x384 4:2:0 stream with the
// stdlib encoder (the only pure-stdlib source of genuinely subsampled
// input).
func subsampledBenchJPEG(b *testing.B) []byte {
	b.Helper()
	return stdlibYCbCr(b, 512, 384, image.YCbCrSubsampleRatio420)
}

// BenchmarkDecodeNative420 measures the native-subsampling decode path on a
// 4:2:0 stream: chroma stays at quarter resolution, so the coefficient
// working set is half the normalized one (coeff-bytes/op reports it; the
// bench-compare gate vs BenchmarkDecodeNormalized420 checks the >=1.5x
// reduction).
func BenchmarkDecodeNative420(b *testing.B) {
	data := subsampledBenchJPEG(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	var coeffBytes int
	for i := 0; i < b.N; i++ {
		img, err := Decode(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		coeffBytes = img.CoeffBytes()
		img.Recycle()
	}
	b.ReportMetric(float64(coeffBytes), "coeff-bytes/op")
}

// BenchmarkDecodeNormalized420 is the legacy pipeline on the same stream:
// decode plus 4:4:4 normalization (chroma dequantized, upsampled and
// re-quantized at full resolution). Both its time and its coefficient
// working set are what the native path saves.
func BenchmarkDecodeNormalized420(b *testing.B) {
	data := subsampledBenchJPEG(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	var coeffBytes int
	for i := 0; i < b.N; i++ {
		img, err := Decode(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		norm, err := img.Normalize444()
		if err != nil {
			b.Fatal(err)
		}
		coeffBytes = norm.CoeffBytes()
		img.Recycle()
	}
	b.ReportMetric(float64(coeffBytes), "coeff-bytes/op")
}
