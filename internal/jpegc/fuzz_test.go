package jpegc

import (
	"bytes"
	"image"
	"math/rand"
	"testing"
)

// FuzzDecode is a native fuzz target for the bit-stream parser. The seed
// corpus covers a valid color stream, a valid grayscale stream, and the
// hostile headers from the unit tests. Run with:
//
//	go test -fuzz FuzzDecode ./internal/jpegc
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for _, seed := range []struct {
		w, h, ch int
	}{{32, 24, 3}, {16, 16, 1}} {
		img := randomCoeffImage(rng, seed.w, seed.h, seed.ch)
		var buf bytes.Buffer
		if err := img.Encode(&buf, EncodeOptions{}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0xff, 0xd8, 0xff, 0xd9})
	f.Add([]byte{0xff, 0xd8, 0xff, 0xc0, 0x00, 0x0b, 8, 0xff, 0xff, 0xff, 0xff, 1, 1, 0x11, 0, 0xff, 0xd9})
	// Seeds for the restart-segment scanner and the 16-bit-code tail of the
	// LUT decoder: a stream with RSTn markers every other MCU and one with
	// per-image optimized tables (their tails reach full 16-bit codes).
	restartImg := randomCoeffImage(rng, 24, 16, 3)
	var rbuf bytes.Buffer
	if err := restartImg.Encode(&rbuf, EncodeOptions{RestartInterval: 2}); err != nil {
		f.Fatal(err)
	}
	f.Add(rbuf.Bytes())
	var obuf bytes.Buffer
	if err := restartImg.Encode(&obuf, EncodeOptions{Tables: TablesOptimized}); err != nil {
		f.Fatal(err)
	}
	f.Add(obuf.Bytes())
	// Native-subsampled seeds: 4:2:0 and 4:2:2 streams from the stdlib
	// encoder reach the MCU-interleaved scan parser and the per-component
	// geometry paths (odd dims exercise partial edge MCUs). Also re-encode
	// the 4:2:0 stream with our own encoder so the fuzzer starts from our
	// interleaved writer's output too.
	f.Add(stdlibYCbCr(f, 67, 45, image.YCbCrSubsampleRatio420))
	f.Add(stdlibYCbCr(f, 48, 33, image.YCbCrSubsampleRatio422))
	sub, err := Decode(bytes.NewReader(stdlibYCbCr(f, 64, 48, image.YCbCrSubsampleRatio420)))
	if err != nil {
		f.Fatal(err)
	}
	var sbuf bytes.Buffer
	if err := sub.Encode(&sbuf, EncodeOptions{RestartInterval: 1}); err != nil {
		f.Fatal(err)
	}
	f.Add(sbuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if vErr := out.Validate(); vErr != nil {
			t.Fatalf("Decode returned invalid image: %v", vErr)
		}
		// Anything we accept we must be able to re-encode.
		var buf bytes.Buffer
		if encErr := out.Encode(&buf, EncodeOptions{}); encErr != nil {
			t.Fatalf("accepted image failed to re-encode: %v", encErr)
		}
	})
}
