package jpegc

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzDecode is a native fuzz target for the bit-stream parser. The seed
// corpus covers a valid color stream, a valid grayscale stream, and the
// hostile headers from the unit tests. Run with:
//
//	go test -fuzz FuzzDecode ./internal/jpegc
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for _, seed := range []struct {
		w, h, ch int
	}{{32, 24, 3}, {16, 16, 1}} {
		img := randomCoeffImage(rng, seed.w, seed.h, seed.ch)
		var buf bytes.Buffer
		if err := img.Encode(&buf, EncodeOptions{}); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0xff, 0xd8, 0xff, 0xd9})
	f.Add([]byte{0xff, 0xd8, 0xff, 0xc0, 0x00, 0x0b, 8, 0xff, 0xff, 0xff, 0xff, 1, 1, 0x11, 0, 0xff, 0xd9})
	// Seeds for the restart-segment scanner and the 16-bit-code tail of the
	// LUT decoder: a stream with RSTn markers every other MCU and one with
	// per-image optimized tables (their tails reach full 16-bit codes).
	restartImg := randomCoeffImage(rng, 24, 16, 3)
	var rbuf bytes.Buffer
	if err := restartImg.Encode(&rbuf, EncodeOptions{RestartInterval: 2}); err != nil {
		f.Fatal(err)
	}
	f.Add(rbuf.Bytes())
	var obuf bytes.Buffer
	if err := restartImg.Encode(&obuf, EncodeOptions{Tables: TablesOptimized}); err != nil {
		f.Fatal(err)
	}
	f.Add(obuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if vErr := out.Validate(); vErr != nil {
			t.Fatalf("Decode returned invalid image: %v", vErr)
		}
		// Anything we accept we must be able to re-encode.
		var buf bytes.Buffer
		if encErr := out.Encode(&buf, EncodeOptions{}); encErr != nil {
			t.Fatalf("accepted image failed to re-encode: %v", encErr)
		}
	})
}
