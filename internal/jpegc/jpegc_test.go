package jpegc

import (
	"bytes"
	"image"
	"image/color"
	"image/jpeg"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"puppies/internal/dct"
	"puppies/internal/imgplane"
)

// randomCoeffImage builds a structurally valid coefficient image with
// natural-ish statistics: most high-frequency coefficients zero.
func randomCoeffImage(rng *rand.Rand, w, h, channels int) *Image {
	bw, bh := blocksFor(w), blocksFor(h)
	img := &Image{W: w, H: h, Comps: make([]Component, channels)}
	for ci := 0; ci < channels; ci++ {
		qt := dct.StdLuminanceQuant
		if ci > 0 {
			qt = dct.StdChrominanceQuant
		}
		comp := Component{BlocksW: bw, BlocksH: bh, Blocks: make([]dct.Block, bw*bh), Quant: qt}
		for bi := range comp.Blocks {
			b := &comp.Blocks[bi]
			b[0] = int32(rng.Intn(2048) - 1024)
			// Low frequencies active, high frequencies mostly zero.
			for zz := 1; zz < 16; zz++ {
				if rng.Intn(2) == 0 {
					b[dct.ZigZag[zz]] = int32(rng.Intn(2047) - 1023)
				}
			}
			if rng.Intn(4) == 0 {
				b[dct.ZigZag[30+rng.Intn(33)]] = int32(rng.Intn(41) - 20)
			}
		}
		img.Comps[ci] = comp
	}
	return img
}

func gradientPlanar(w, h int) *imgplane.Image {
	img, _ := imgplane.New(w, h, 3)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			img.Planes[0].Pix[i] = float32((x*255)/w+(y*255)/h) / 2
			img.Planes[1].Pix[i] = float32(128 + 40*math.Sin(float64(x)/10))
			img.Planes[2].Pix[i] = float32(128 + 40*math.Cos(float64(y)/7))
		}
	}
	return img
}

func TestEncodeDecodeRoundTripDefaultTables(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ w, h, ch int }{
		{64, 48, 3}, {17, 9, 3}, {8, 8, 1}, {33, 64, 1}, {100, 75, 3},
	} {
		img := randomCoeffImage(rng, tc.w, tc.h, tc.ch)
		var buf bytes.Buffer
		if err := img.Encode(&buf, EncodeOptions{Tables: TablesDefault}); err != nil {
			t.Fatalf("%dx%d/%d encode: %v", tc.w, tc.h, tc.ch, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%dx%d/%d decode: %v", tc.w, tc.h, tc.ch, err)
		}
		assertCoeffEqual(t, img, got)
	}
}

func TestEncodeDecodeRoundTripOptimizedTables(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ w, h, ch int }{
		{64, 48, 3}, {24, 24, 1}, {80, 55, 3},
	} {
		img := randomCoeffImage(rng, tc.w, tc.h, tc.ch)
		var buf bytes.Buffer
		if err := img.Encode(&buf, EncodeOptions{Tables: TablesOptimized}); err != nil {
			t.Fatalf("%dx%d/%d encode: %v", tc.w, tc.h, tc.ch, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%dx%d/%d decode: %v", tc.w, tc.h, tc.ch, err)
		}
		assertCoeffEqual(t, img, got)
	}
}

func assertCoeffEqual(t *testing.T, want, got *Image) {
	t.Helper()
	if got.W != want.W || got.H != want.H || len(got.Comps) != len(want.Comps) {
		t.Fatalf("shape mismatch: got %dx%d/%d want %dx%d/%d",
			got.W, got.H, len(got.Comps), want.W, want.H, len(want.Comps))
	}
	for ci := range want.Comps {
		if got.Comps[ci].Quant != want.Comps[ci].Quant {
			t.Fatalf("component %d quant table mismatch", ci)
		}
		for bi := range want.Comps[ci].Blocks {
			if got.Comps[ci].Blocks[bi] != want.Comps[ci].Blocks[bi] {
				t.Fatalf("component %d block %d mismatch:\ngot:\n%swant:\n%s",
					ci, bi, got.Comps[ci].Blocks[bi].String(), want.Comps[ci].Blocks[bi].String())
			}
		}
	}
}

func TestOptimizedSmallerThanDefaultOnSkewedData(t *testing.T) {
	// An image dominated by a few symbols compresses better with optimized
	// tables; this is the PuPPIeS-C mechanism.
	rng := rand.New(rand.NewSource(3))
	img := randomCoeffImage(rng, 256, 256, 3)
	// Perturb to break the default tables' assumptions.
	for ci := range img.Comps {
		for bi := range img.Comps[ci].Blocks {
			b := &img.Comps[ci].Blocks[bi]
			for i := 1; i < dct.BlockLen; i++ {
				if b[i] == 0 {
					b[i] = int32(rng.Intn(1200) - 600)
				}
			}
		}
	}
	defSize, err := img.EncodedSize(EncodeOptions{Tables: TablesDefault})
	if err != nil {
		t.Fatal(err)
	}
	optSize, err := img.EncodedSize(EncodeOptions{Tables: TablesOptimized})
	if err != nil {
		t.Fatal(err)
	}
	if optSize >= defSize {
		t.Errorf("optimized size %d not smaller than default %d", optSize, defSize)
	}
}

func TestStdlibDecodesOurColorOutput(t *testing.T) {
	planar := gradientPlanar(96, 64)
	img, err := FromPlanar(planar, Options{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []TableMode{TablesDefault, TablesOptimized} {
		var buf bytes.Buffer
		if err := img.Encode(&buf, EncodeOptions{Tables: mode}); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		decoded, err := jpeg.Decode(&buf)
		if err != nil {
			t.Fatalf("mode %d: stdlib decode rejected our stream: %v", mode, err)
		}
		if decoded.Bounds().Dx() != 96 || decoded.Bounds().Dy() != 64 {
			t.Fatalf("mode %d: stdlib decoded %v", mode, decoded.Bounds())
		}
		// Pixel content must match our own reconstruction closely.
		ours, err := img.ToPlanar()
		if err != nil {
			t.Fatal(err)
		}
		ourRGBA := ours.ToStdImage()
		var maxDiff int
		for y := 0; y < 64; y++ {
			for x := 0; x < 96; x++ {
				r0, g0, b0, _ := ourRGBA.At(x, y).RGBA()
				r1, g1, b1, _ := decoded.At(x, y).RGBA()
				for _, d := range []int{
					int(r0>>8) - int(r1>>8), int(g0>>8) - int(g1>>8), int(b0>>8) - int(b1>>8),
				} {
					if d < 0 {
						d = -d
					}
					if d > maxDiff {
						maxDiff = d
					}
				}
			}
		}
		if maxDiff > 2 {
			t.Errorf("mode %d: stdlib and jpegc reconstructions differ by up to %d", mode, maxDiff)
		}
	}
}

func TestWeDecodeStdlibGrayscaleOutput(t *testing.T) {
	src := image.NewGray(image.Rect(0, 0, 40, 56))
	rng := rand.New(rand.NewSource(4))
	for y := 0; y < 56; y++ {
		for x := 0; x < 40; x++ {
			src.SetGray(x, y, color.Gray{Y: uint8((x*3 + y*2 + rng.Intn(32)) % 256)})
		}
	}
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, src, &jpeg.Options{Quality: 90}); err != nil {
		t.Fatal(err)
	}
	img, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decoding stdlib grayscale stream: %v", err)
	}
	if img.W != 40 || img.H != 56 || img.Channels() != 1 {
		t.Fatalf("got %dx%d/%d", img.W, img.H, img.Channels())
	}
	// Reconstructed pixels must be close to the source.
	planar, err := img.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for y := 0; y < 56; y++ {
		for x := 0; x < 40; x++ {
			d := math.Abs(float64(planar.Planes[0].Pix[y*40+x]) - float64(src.GrayAt(x, y).Y))
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 25 {
		t.Errorf("worst reconstruction error %v too large", worst)
	}
}

func TestPlanarRoundTripHighQuality(t *testing.T) {
	planar := gradientPlanar(64, 64)
	img, err := FromPlanar(planar, Options{Quality: 100})
	if err != nil {
		t.Fatal(err)
	}
	back, err := img.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := imgplane.ImagePSNR(planar, back)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 40 {
		t.Errorf("quality-100 round trip PSNR %v dB, want > 40", psnr)
	}
}

func TestDecodeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	img := randomCoeffImage(rng, 32, 32, 3)
	var buf bytes.Buffer
	if err := img.Encode(&buf, EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"not a jpeg", []byte("definitely not a jpeg stream")},
		{"missing SOI", valid[2:]},
		{"truncated header", valid[:20]},
		{"truncated entropy data", valid[:len(valid)-40]},
		{"missing EOI", valid[:len(valid)-2]},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(bytes.NewReader(tt.data)); err == nil {
				t.Error("Decode succeeded on malformed input")
			}
		})
	}
}

func TestEncodeRejectsOutOfRangeCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	img := randomCoeffImage(rng, 16, 16, 1)
	img.Comps[0].Blocks[0][5] = -1024 // AC below baseline minimum
	var buf bytes.Buffer
	if err := img.Encode(&buf, EncodeOptions{}); err == nil {
		t.Error("Encode accepted AC coefficient -1024")
	}
	img.Comps[0].Blocks[0][5] = 0
	img.Comps[0].Blocks[0][0] = 2000
	if err := img.Encode(&buf, EncodeOptions{}); err == nil {
		t.Error("Encode accepted DC coefficient 2000")
	}
}

func TestMagnitudeCodingRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		v %= 2048
		size := magnitudeCategory(v)
		bits := magnitudeBits(v, size)
		return extendMagnitude(bits, size) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Exhaustive check over the DC difference range.
	for v := int32(-2047); v <= 2047; v++ {
		size := magnitudeCategory(v)
		if extendMagnitude(magnitudeBits(v, size), size) != v {
			t.Fatalf("magnitude round trip failed for %d", v)
		}
	}
}

func TestMagnitudeCategory(t *testing.T) {
	tests := []struct {
		v    int32
		want int
	}{
		{0, 0}, {1, 1}, {-1, 1}, {2, 2}, {3, 2}, {-3, 2}, {4, 3},
		{255, 8}, {256, 9}, {1023, 10}, {-1023, 10}, {1024, 11}, {-2047, 11},
	}
	for _, tt := range tests {
		if got := magnitudeCategory(tt.v); got != tt.want {
			t.Errorf("magnitudeCategory(%d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestBuildOptimalSpecProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		var freq [256]int64
		nSyms := 1 + rng.Intn(200)
		for i := 0; i < nSyms; i++ {
			freq[rng.Intn(256)] = int64(1 + rng.Intn(100000))
		}
		spec, err := BuildOptimalSpec(&freq)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("trial %d: invalid spec: %v", trial, err)
		}
		// Every symbol with nonzero frequency must have a code.
		coded := map[byte]bool{}
		for _, v := range spec.Values {
			coded[v] = true
		}
		for s, f := range freq {
			if f > 0 && !coded[byte(s)] {
				t.Fatalf("trial %d: symbol %d (freq %d) missing from table", trial, s, f)
			}
		}
	}
}

func TestBuildOptimalSpecSingleSymbol(t *testing.T) {
	var freq [256]int64
	freq[42] = 1000
	spec, err := BuildOptimalSpec(&freq)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Values) != 1 || spec.Values[0] != 42 {
		t.Fatalf("got values %v", spec.Values)
	}
	tbl, err := newEncTable(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.size[42] == 0 {
		t.Error("single symbol has no code")
	}
}

func TestHuffmanSpecValidate(t *testing.T) {
	bad := HuffmanSpec{Counts: [16]byte{3}, Values: []byte{1, 2, 3}}
	if err := bad.Validate(); err == nil {
		t.Error("3 codes of length 1 should be invalid (max 2)")
	}
	dup := HuffmanSpec{Counts: [16]byte{0, 2}, Values: []byte{1, 1}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate symbols should be invalid")
	}
	mismatch := HuffmanSpec{Counts: [16]byte{0, 2}, Values: []byte{1}}
	if err := mismatch.Validate(); err == nil {
		t.Error("count/value mismatch should be invalid")
	}
	for _, s := range []HuffmanSpec{StdDCLuminance, StdDCChrominance, StdACLuminance, StdACChrominance} {
		if err := s.Validate(); err != nil {
			t.Errorf("standard table invalid: %v", err)
		}
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	img := randomCoeffImage(rng, 48, 48, 3)
	var buf bytes.Buffer
	if err := img.Encode(&buf, EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	n, err := img.EncodedSize(EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("EncodedSize = %d, Encode wrote %d", n, buf.Len())
	}
}

func BenchmarkEncodeDefault(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	img := randomCoeffImage(rng, 512, 384, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cw countingWriter
		if err := img.Encode(&cw, EncodeOptions{Tables: TablesDefault}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeOptimized(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	img := randomCoeffImage(rng, 512, 384, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cw countingWriter
		if err := img.Encode(&cw, EncodeOptions{Tables: TablesOptimized}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	img := randomCoeffImage(rng, 512, 384, 3)
	var buf bytes.Buffer
	if err := img.Encode(&buf, EncodeOptions{}); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPlanar builds a natural-statistics planar image for the block-grid
// conversion benchmarks.
func benchPlanar(b *testing.B, w, h int) *imgplane.Image {
	b.Helper()
	planar, err := imgplane.New(w, h, 3)
	if err != nil {
		b.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			planar.Planes[0].Pix[i] = float32(128 + 80*math.Sin(float64(x)/7)*math.Cos(float64(y)/9))
			planar.Planes[1].Pix[i] = float32(128 + 30*math.Sin(float64(x+2*y)/17))
			planar.Planes[2].Pix[i] = float32(128 + 30*math.Cos(float64(2*x-y)/19))
		}
	}
	return planar
}

// BenchmarkFromPlanar measures the pixel -> quantized-coefficient block-grid
// conversion (forward DCT over every block).
func BenchmarkFromPlanar(b *testing.B) {
	planar := benchPlanar(b, 512, 384)
	b.ReportAllocs()
	b.SetBytes(512 * 384 * 3 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromPlanar(planar, Options{Quality: 75}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkToPlanar measures the coefficient -> pixel conversion (inverse
// DCT over every block).
func BenchmarkToPlanar(b *testing.B) {
	planar := benchPlanar(b, 512, 384)
	img, err := FromPlanar(planar, Options{Quality: 75})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(512 * 384 * 3 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := img.ToPlanar(); err != nil {
			b.Fatal(err)
		}
	}
}
