package jpegc

import (
	"fmt"

	"puppies/internal/dct"
	"puppies/internal/imgplane"
	"puppies/internal/parallel"
)

// ScaledDim returns the pixel extent of a num/8-scale decode of px pixels:
// every 8-pixel block contributes num output samples, and a partial edge
// block contributes the ceiling share (never less than one pixel total).
func ScaledDim(px, num int) int {
	d := (px*num + dct.ScaleDen - 1) / dct.ScaleDen
	if d < 1 {
		d = 1
	}
	return d
}

// ToPlanarScaled decodes the coefficient image straight to a num/8-size
// planar image (num in {1, 2, 4}) using the reduced inverse-DCT kernels —
// the libjpeg-style scaled decode. A 1/4-scale decode touches 4 of 64
// coefficients per block and writes 1/16 of the samples, so it runs far
// ahead of ToPlanar + downsampling while producing the same image up to
// the truncated high-frequency residue.
//
// Components are processed in their native subsampled geometry with a
// per-plane, per-axis kernel choice: at a 1/4-scale target a 4:2:0 chroma
// plane (already half-size) reduces by only 2x per axis, and an axis that
// would need more than the plane's own resolution simply decodes that
// axis in full. Like ToPlanar, the output planar model is 4:4:4: chroma
// planes whose reduced geometry differs from the luma's by an edge pixel
// are bilinearly aligned onto the output grid.
//
// Output is deterministic at any worker count (disjoint block-row writes,
// fixed parallel chunking).
func (m *Image) ToPlanarScaled(num int) (*imgplane.Image, error) {
	if num != 1 && num != 2 && num != 4 {
		return nil, fmt.Errorf("jpegc: scaled decode numerator %d, want 1, 2, or 4 (denominator %d)", num, dct.ScaleDen)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	sw, sh := ScaledDim(m.W, num), ScaledDim(m.H, num)
	out, err := imgplane.New(sw, sh, len(m.Comps))
	if err != nil {
		return nil, err
	}
	maxH, maxV := m.MaxSampling()
	for ci := range m.Comps {
		comp := &m.Comps[ci]
		hs, vs := comp.Sampling()
		// A component sampled at half the image rate needs half the
		// reduction to land at the same absolute scale; cap at the full
		// axis. maxH/hs is 1 or 2, so nh stays inside {1, 2, 4, 8}.
		nh := num * (maxH / hs)
		nv := num * (maxV / vs)
		pw, ph := m.CompDims(ci)
		cw, ch := ScaledDim(pw, nh), ScaledDim(ph, nv)
		if cw == sw && ch == sh {
			fillPlaneScaled(comp, out.Planes[ci], nh, nv)
			continue
		}
		// Odd-dimension rounding can leave the reduced chroma grid an edge
		// pixel off the luma grid; align it with the shared bilinear kernel.
		native := imgplane.GetPlane(cw, ch)
		fillPlaneScaled(comp, native, nh, nv)
		imgplane.ResizeBilinearInto(native, out.Planes[ci])
		imgplane.PutPlane(native)
	}
	return out, nil
}

// fillPlaneScaled reduced-inverse-transforms a component into dst, whose
// dimensions must be the component's num/8-scaled coverage; partial edge
// blocks are cropped exactly like fillPlaneFromComponent. nh and nv of 8
// mean no reduction on that axis (the full AAN path is used when both
// axes are full — the generic matrix kernel only runs when it saves work).
func fillPlaneScaled(comp *Component, dst *imgplane.Plane, nh, nv int) {
	if nh == dct.ScaleDen && nv == dct.ScaleDen {
		fillPlaneFromComponent(comp, dst)
		return
	}
	pw, ph := dst.W, dst.H
	// Each block row writes a disjoint horizontal band of the plane.
	parallel.For(comp.BlocksH, blockRowGrain, func(lo, hi int) {
		var scratch [dct.BlockLen]float64
		out := scratch[:nh*nv]
		for by := lo; by < hi; by++ {
			for bx := 0; bx < comp.BlocksW; bx++ {
				dct.InverseQuantizedScaledInto(comp.Block(bx, by), &comp.Quant, nh, nv, out)
				for y := 0; y < nv; y++ {
					py := by*nv + y
					if py >= ph {
						break
					}
					for x := 0; x < nh; x++ {
						px := bx*nh + x
						if px >= pw {
							break
						}
						dst.Pix[py*pw+px] = float32(out[y*nh+x]) + 128
					}
				}
			}
		}
	})
}
