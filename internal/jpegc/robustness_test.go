package jpegc

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestDecodeMutatedStreamsNeverPanic is a deterministic fuzz-style test:
// corrupt a valid stream at every byte position (and with random multi-byte
// mutations) and require Decode to either error or return a structurally
// valid image — never panic or hang.
func TestDecodeMutatedStreamsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	img := randomCoeffImage(rng, 32, 24, 3)
	var buf bytes.Buffer
	if err := img.Encode(&buf, EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	tryDecode := func(data []byte, desc string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %s: %v", desc, r)
			}
		}()
		out, err := Decode(bytes.NewReader(data))
		if err == nil {
			if vErr := out.Validate(); vErr != nil {
				t.Fatalf("Decode returned structurally invalid image on %s: %v", desc, vErr)
			}
		}
	}

	// Single-byte corruption at every position.
	for pos := 0; pos < len(valid); pos++ {
		mutated := append([]byte(nil), valid...)
		mutated[pos] ^= 0x55
		tryDecode(mutated, "single-byte flip")
	}
	// Truncation at every 7th position.
	for end := 0; end < len(valid); end += 7 {
		tryDecode(valid[:end], "truncation")
	}
	// Random multi-byte mutations.
	for trial := 0; trial < 300; trial++ {
		mutated := append([]byte(nil), valid...)
		for m := 0; m < 1+rng.Intn(8); m++ {
			mutated[rng.Intn(len(mutated))] = byte(rng.Intn(256))
		}
		tryDecode(mutated, "multi-byte mutation")
	}
	// Random insertions and deletions.
	for trial := 0; trial < 100; trial++ {
		mutated := append([]byte(nil), valid...)
		pos := rng.Intn(len(mutated))
		if rng.Intn(2) == 0 {
			mutated = append(mutated[:pos], append([]byte{byte(rng.Intn(256))}, mutated[pos:]...)...)
		} else {
			mutated = append(mutated[:pos], mutated[pos+1:]...)
		}
		tryDecode(mutated, "insert/delete")
	}
}

// TestDecodeHostileHeaders covers crafted header pathologies that have
// historically broken JPEG parsers.
func TestDecodeHostileHeaders(t *testing.T) {
	cases := map[string][]byte{
		"SOI only":            {0xff, 0xd8},
		"SOI+EOI, no frame":   {0xff, 0xd8, 0xff, 0xd9},
		"zero-length segment": {0xff, 0xd8, 0xff, 0xe0, 0x00, 0x00, 0xff, 0xd9},
		"segment length 1":    {0xff, 0xd8, 0xff, 0xe0, 0x00, 0x01, 0xff, 0xd9},
		"huge dimensions": {
			0xff, 0xd8,
			0xff, 0xc0, 0x00, 0x0b, 8, 0xff, 0xff, 0xff, 0xff, 1, 1, 0x11, 0,
			0xff, 0xd9,
		},
		"SOS before SOF": {
			0xff, 0xd8,
			0xff, 0xda, 0x00, 0x08, 1, 1, 0x00, 0, 63, 0,
			0xff, 0xd9,
		},
		"DHT with absurd counts": {
			0xff, 0xd8,
			0xff, 0xc4, 0x00, 0x13, 0x00,
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
			0xff, 0xd9,
		},
		"fill bytes before marker": {0xff, 0xd8, 0xff, 0xff, 0xff, 0xd9},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic: %v", r)
				}
			}()
			if _, err := Decode(bytes.NewReader(data)); err == nil {
				// "fill bytes before marker" ends with EOI and no scan: must
				// error too (EOI before any scan).
				t.Errorf("hostile stream accepted")
			}
		})
	}
}

// TestDecodeDimensionBombs ensures crafted dimensions do not cause huge
// allocations before validation rejects them.
func TestDecodeDimensionBombs(t *testing.T) {
	// SOF claiming 65535x65535 with a tiny stream: the decoder will
	// allocate block storage (bounded by uint16 dims ~ 8 GB worst case for
	// coefficients... so it must fail before allocating, at the scan stage
	// or on truncated entropy data).
	sof := []byte{
		0xff, 0xd8,
		// DQT (one 8-bit table, all ones)
		0xff, 0xdb, 0x00, 0x43, 0x00,
	}
	for i := 0; i < 64; i++ {
		sof = append(sof, 1)
	}
	sof = append(sof,
		0xff, 0xc0, 0x00, 0x0b, 8, 0x04, 0x00, 0x04, 0x00, 1, 1, 0x11, 0, // 1024x1024 gray
		0xff, 0xda, 0x00, 0x08, 1, 1, 0x00, 0, 63, 0,
	// no entropy data, no EOI
	)
	if _, err := Decode(bytes.NewReader(sof)); err == nil {
		t.Error("truncated scan accepted")
	}
}
