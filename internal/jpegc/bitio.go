package jpegc

import (
	"bufio"
	"fmt"
	"io"
)

// bitWriter writes MSB-first bits into a JPEG entropy-coded segment,
// inserting the mandatory 0x00 stuffing byte after every 0xFF data byte.
type bitWriter struct {
	w    io.Writer
	acc  uint32
	nAcc uint
	err  error
}

func newBitWriter(w io.Writer) *bitWriter { return &bitWriter{w: w} }

// WriteBits writes the low n bits of v, most significant first. n <= 24.
func (bw *bitWriter) WriteBits(v uint32, n uint) {
	if bw.err != nil || n == 0 {
		return
	}
	bw.acc = bw.acc<<n | (v & ((1 << n) - 1))
	bw.nAcc += n
	for bw.nAcc >= 8 {
		bw.nAcc -= 8
		b := byte(bw.acc >> bw.nAcc)
		if _, err := bw.w.Write([]byte{b}); err != nil {
			bw.err = err
			return
		}
		if b == 0xff {
			if _, err := bw.w.Write([]byte{0x00}); err != nil {
				bw.err = err
				return
			}
		}
	}
}

// setErr records the first error encountered by callers that detect
// problems outside WriteBits itself.
func (bw *bitWriter) setErr(err error) {
	if bw.err == nil {
		bw.err = err
	}
}

// Flush pads the final partial byte with 1-bits (as the JPEG standard
// requires) and writes it out.
func (bw *bitWriter) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	if bw.nAcc > 0 {
		pad := 8 - bw.nAcc
		bw.WriteBits((1<<pad)-1, pad)
	}
	return bw.err
}

// bitReader reads MSB-first bits from a JPEG entropy-coded segment,
// removing 0x00 stuffing bytes after 0xFF. Encountering a real marker
// (0xFF followed by a nonzero byte) stops the bit stream: the marker bytes
// are preserved for the caller via UnreadMarker.
type bitReader struct {
	r      *bufio.Reader
	acc    uint32
	nAcc   uint
	marker byte // pending marker byte (0 if none)
}

func newBitReader(r *bufio.Reader) *bitReader { return &bitReader{r: r} }

var errMarkerInBitstream = fmt.Errorf("jpegc: marker encountered in entropy-coded data")

// ReadBit returns the next bit of the entropy-coded segment.
func (br *bitReader) ReadBit() (int, error) {
	if br.nAcc == 0 {
		if br.marker != 0 {
			return 0, errMarkerInBitstream
		}
		b, err := br.r.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("jpegc: truncated entropy data: %w", err)
		}
		if b == 0xff {
			next, err := br.r.ReadByte()
			if err != nil {
				return 0, fmt.Errorf("jpegc: truncated entropy data after 0xff: %w", err)
			}
			if next != 0x00 {
				br.marker = next
				return 0, errMarkerInBitstream
			}
		}
		br.acc = uint32(b)
		br.nAcc = 8
	}
	br.nAcc--
	return int(br.acc>>br.nAcc) & 1, nil
}

// ReadBits reads n bits MSB-first.
func (br *bitReader) ReadBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		bit, err := br.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(bit)
	}
	return v, nil
}

// Align discards any buffered partial byte, realigning to a byte boundary
// (used before restart markers).
func (br *bitReader) Align() { br.nAcc = 0 }

// PendingMarker returns the marker byte that terminated the bit stream, or
// 0 if none was seen, and clears it.
func (br *bitReader) PendingMarker() byte {
	m := br.marker
	br.marker = 0
	return m
}

// countingWriter counts bytes written; used to measure encoded sizes without
// buffering entire streams.
type countingWriter struct{ n int64 }

// Write implements io.Writer by counting.
func (cw *countingWriter) Write(p []byte) (int, error) {
	cw.n += int64(len(p))
	return len(p), nil
}
