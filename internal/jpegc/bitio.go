package jpegc

import (
	"fmt"
	"io"
)

// This file implements the entropy-coded-segment bit I/O around 64-bit
// accumulators (DESIGN.md §11): the writer packs whole Huffman symbols and
// stages bytes in a pooled buffer instead of issuing per-byte Writes; the
// reader decodes from an in-memory segment, refilling its accumulator by
// words with inline 0xFF00 unstuffing instead of bit-at-a-time byte reads.

// bitWriter writes MSB-first bits into a JPEG entropy-coded segment,
// inserting the mandatory 0x00 stuffing byte after every 0xFF data byte.
// Bytes are staged in a pooled buffer and flushed to the underlying writer
// in large chunks; release() must be called when done.
type bitWriter struct {
	w    io.Writer
	acc  uint64
	nAcc uint
	buf  []byte
	err  error
}

// writerFlushAt is the staging-buffer occupancy that triggers a flush to
// the underlying writer. It stays below the pooled buffer's capacity so
// appends rarely reallocate.
const writerFlushAt = 1 << 15

func newBitWriter(w io.Writer) *bitWriter {
	return &bitWriter{w: w, buf: getByteBuf()}
}

// release returns the staging buffer to the pool. The writer must not be
// used afterwards.
func (bw *bitWriter) release() {
	putByteBuf(bw.buf)
	bw.buf = nil
}

// WriteBits writes the low n bits of v, most significant first. n <= 32,
// so one call can carry a full Huffman code plus its magnitude bits.
func (bw *bitWriter) WriteBits(v uint32, n uint) {
	if bw.err != nil || n == 0 {
		return
	}
	bw.acc = bw.acc<<n | uint64(v)&((1<<n)-1)
	bw.nAcc += n
	for bw.nAcc >= 8 {
		bw.nAcc -= 8
		b := byte(bw.acc >> bw.nAcc)
		bw.buf = append(bw.buf, b)
		if b == 0xff {
			bw.buf = append(bw.buf, 0x00)
		}
	}
	if len(bw.buf) >= writerFlushAt {
		bw.flushBuf()
	}
}

// flushBuf drains the staging buffer to the underlying writer.
func (bw *bitWriter) flushBuf() {
	if bw.err == nil && len(bw.buf) > 0 {
		if _, err := bw.w.Write(bw.buf); err != nil {
			bw.err = err
		}
	}
	bw.buf = bw.buf[:0]
}

// padToByte pads any partial byte with 1-bits (as the JPEG standard
// requires) and drains it into the staging buffer.
func (bw *bitWriter) padToByte() {
	if bw.nAcc > 0 {
		bw.WriteBits((1<<(8-bw.nAcc))-1, 8-bw.nAcc)
	}
}

// WriteRestart pads to a byte boundary and emits RST(idx mod 8). Restart
// markers are real markers: they are not byte-stuffed.
func (bw *bitWriter) WriteRestart(idx int) {
	if bw.err != nil {
		return
	}
	bw.padToByte()
	bw.buf = append(bw.buf, 0xff, markerRST0+byte(idx&7))
}

// setErr records the first error encountered by callers that detect
// problems outside WriteBits itself.
func (bw *bitWriter) setErr(err error) {
	if bw.err == nil {
		bw.err = err
	}
}

// Flush pads the final partial byte and writes all staged bytes out.
func (bw *bitWriter) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	bw.padToByte()
	bw.flushBuf()
	return bw.err
}

// bitReader reads MSB-first bits from an in-memory entropy-coded segment,
// removing 0x00 stuffing bytes after 0xFF. A real marker (0xFF followed by
// a nonzero byte) or the end of the slice ends the bit supply: reads past
// it return an error. The zero value with data set is ready to use.
type bitReader struct {
	data   []byte
	pos    int
	acc    uint64 // next nAcc bits, MSB-first, in the low bits
	nAcc   uint
	stop   bool // no more bytes: marker, dangling 0xFF, or end of data
	marker byte // the marker byte that stopped the stream, if any
}

func newBitReader(data []byte) bitReader { return bitReader{data: data} }

var errMarkerInBitstream = fmt.Errorf("jpegc: marker encountered in entropy-coded data")

// fill tops the accumulator up to at least 57 bits or until the byte
// supply ends. The fast path loads four stuffing-free bytes per iteration.
func (br *bitReader) fill() {
	if br.stop {
		return
	}
	data, pos := br.data, br.pos
	for br.nAcc <= 32 && pos+4 <= len(data) {
		w := uint32(data[pos])<<24 | uint32(data[pos+1])<<16 |
			uint32(data[pos+2])<<8 | uint32(data[pos+3])
		// Zero-byte trick on the inverted word: any 0xFF byte in w makes
		// the corresponding byte of ^w zero.
		inv := ^w
		if (inv-0x01010101)&^inv&0x80808080 != 0 {
			break // a 0xFF byte needs the unstuffing slow path
		}
		br.acc = br.acc<<32 | uint64(w)
		br.nAcc += 32
		pos += 4
	}
	for br.nAcc <= 56 {
		if pos >= len(data) {
			br.stop = true
			break
		}
		b := data[pos]
		if b == 0xff {
			if pos+1 >= len(data) {
				// Dangling 0xFF at the end of the segment: a conforming
				// encoder always stuffs, so this is a truncated stream.
				br.stop = true
				break
			}
			if next := data[pos+1]; next != 0x00 {
				br.stop = true
				br.marker = next
				break
			}
			pos += 2 // 0xFF00 unstuffs to a 0xFF data byte
		} else {
			pos++
		}
		br.acc = br.acc<<8 | uint64(b)
		br.nAcc += 8
	}
	br.pos = pos
}

// exhausted returns the error for running out of bits.
func (br *bitReader) exhausted() error {
	if br.marker != 0 {
		return errMarkerInBitstream
	}
	return fmt.Errorf("jpegc: truncated entropy data: %w", io.ErrUnexpectedEOF)
}

// ReadBits reads n bits MSB-first. n <= 32.
func (br *bitReader) ReadBits(n int) (uint32, error) {
	if n == 0 {
		return 0, nil
	}
	if br.nAcc < uint(n) {
		br.fill()
		if br.nAcc < uint(n) {
			return 0, br.exhausted()
		}
	}
	br.nAcc -= uint(n)
	return uint32(br.acc>>br.nAcc) & (1<<n - 1), nil
}

// ReadBit returns the next bit of the entropy-coded segment.
func (br *bitReader) ReadBit() (int, error) {
	v, err := br.ReadBits(1)
	return int(v), err
}

// countingWriter counts bytes written; used to measure encoded sizes without
// buffering entire streams.
type countingWriter struct{ n int64 }

// Write implements io.Writer by counting.
func (cw *countingWriter) Write(p []byte) (int, error) {
	cw.n += int64(len(p))
	return len(p), nil
}
