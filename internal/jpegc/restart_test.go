package jpegc

import (
	"bytes"
	"image/jpeg"
	"math/rand"
	"testing"

	"puppies/internal/parallel"
)

func TestRestartMarkersRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, interval := range []int{1, 3, 7, 64, 10000} {
		img := randomCoeffImage(rng, 64, 48, 3)
		var buf bytes.Buffer
		if err := img.Encode(&buf, EncodeOptions{RestartInterval: interval}); err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("interval %d: decode: %v", interval, err)
		}
		assertCoeffEqual(t, img, got)
	}
}

func TestRestartMarkersStdlibInterop(t *testing.T) {
	// The stdlib decoder must accept our restart-marker streams too.
	planar := gradientPlanar(80, 56)
	img, err := FromPlanar(planar, Options{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.Encode(&buf, EncodeOptions{RestartInterval: 5}); err != nil {
		t.Fatal(err)
	}
	decoded, err := jpeg.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("stdlib rejected restart-marker stream: %v", err)
	}
	if decoded.Bounds().Dx() != 80 || decoded.Bounds().Dy() != 56 {
		t.Errorf("bounds %v", decoded.Bounds())
	}
}

func TestRestartIntervalValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	img := randomCoeffImage(rng, 16, 16, 1)
	var buf bytes.Buffer
	if err := img.Encode(&buf, EncodeOptions{RestartInterval: -1}); err == nil {
		t.Error("negative interval accepted")
	}
	if err := img.Encode(&buf, EncodeOptions{RestartInterval: 70000}); err == nil {
		t.Error("oversized interval accepted")
	}
}

func TestRestartMarkersLimitCorruptionSpread(t *testing.T) {
	// The point of restart markers: a corrupted entropy segment only
	// destroys data up to the next RSTn. Verify the decoder resynchronizes
	// and still returns an image when corruption happens mid-scan.
	rng := rand.New(rand.NewSource(3))
	img := randomCoeffImage(rng, 64, 64, 3)
	var buf bytes.Buffer
	if err := img.Encode(&buf, EncodeOptions{RestartInterval: 8}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Find a point well inside the entropy data and corrupt one byte that
	// is not 0xFF (to avoid creating fake markers).
	pos := len(data) * 2 / 3
	for data[pos] == 0xff || data[pos-1] == 0xff {
		pos++
	}
	data[pos] ^= 0x3c
	// Decoding may fail (acceptable) but must not panic; if it succeeds the
	// image must be structurally valid.
	out, err := Decode(bytes.NewReader(data))
	if err == nil {
		if vErr := out.Validate(); vErr != nil {
			t.Fatalf("corrupted stream produced invalid image: %v", vErr)
		}
	}
}

// TestRestartParallelDecodeDeterministic is the determinism contract of the
// restart-segment scan decoder: for restart intervals from one MCU per
// segment to one segment for the whole image, decoding with a single worker
// and with several workers yields bit-identical coefficient planes (and both
// match what was encoded).
func TestRestartParallelDecodeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, interval := range []int{1, 4, 1000} {
		for _, channels := range []int{1, 3} {
			img := randomCoeffImage(rng, 96, 64, channels)
			var buf bytes.Buffer
			if err := img.Encode(&buf, EncodeOptions{RestartInterval: interval}); err != nil {
				t.Fatalf("interval %d: %v", interval, err)
			}

			prev := parallel.SetWorkers(1)
			serial, errSerial := Decode(bytes.NewReader(buf.Bytes()))
			parallel.SetWorkers(8)
			wide, errWide := Decode(bytes.NewReader(buf.Bytes()))
			parallel.SetWorkers(prev)

			if errSerial != nil || errWide != nil {
				t.Fatalf("interval %d channels %d: serial err %v, parallel err %v",
					interval, channels, errSerial, errWide)
			}
			assertCoeffEqual(t, img, serial)
			assertCoeffEqual(t, serial, wide)
		}
	}
}

// TestRestartSegmentCountMismatch rejects streams whose RSTn markers do not
// match the DRI interval instead of silently misplacing MCUs.
func TestRestartSegmentCountMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	img := randomCoeffImage(rng, 64, 48, 1)
	var buf bytes.Buffer
	if err := img.Encode(&buf, EncodeOptions{RestartInterval: 4}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Remove the first restart marker: the segment count no longer matches.
	for i := 0; i+1 < len(data); i++ {
		if data[i] == 0xff && data[i+1] >= 0xd0 && data[i+1] <= 0xd7 {
			data = append(data[:i], data[i+2:]...)
			break
		}
	}
	if _, err := Decode(bytes.NewReader(data)); err == nil {
		t.Error("stream with a missing restart marker decoded without error")
	}
}
