// Package jpegc is a coefficient-level baseline JPEG codec.
//
// PuPPIeS perturbs quantized DCT coefficients and (for the -C and -Z
// variants) rebuilds Huffman tables to match the perturbed coefficient
// distribution. The standard library's image/jpeg exposes neither, so this
// package implements the full baseline pipeline from scratch:
//
//   - a coefficient image model (8x8 quantized blocks per component),
//   - conversion to and from planar YUV pixels (internal/imgplane),
//   - baseline entropy coding (run-length + Huffman, Annex K default tables
//     or per-image optimized tables, mirroring libjpeg's optimize_coding),
//   - a JFIF bit-stream writer and reader.
//
// The writer emits 4:4:4 baseline streams that Go's stdlib image/jpeg
// decoder accepts (verified in tests); the reader accepts this package's
// streams plus any 8-bit baseline 4:4:4 or grayscale stream (e.g. stdlib
// grayscale output).
//
// Coefficient conventions: DC occupies [-1024, 1023]; AC occupies
// [-1023, 1023] (baseline Huffman AC categories reach size 10 only, so
// -1024 is not representable — FromPlanar clamps it away).
package jpegc

import (
	"fmt"

	"puppies/internal/dct"
	"puppies/internal/imgplane"
	"puppies/internal/parallel"
)

// ACMin is the minimum representable AC coefficient in baseline JPEG.
const ACMin = -1023

// Component is one color channel of a coefficient image: a dense row-major
// grid of quantized 8x8 DCT blocks.
type Component struct {
	// BlocksW and BlocksH are the grid dimensions in blocks.
	BlocksW, BlocksH int
	// Blocks holds BlocksW*BlocksH quantized coefficient blocks.
	Blocks []dct.Block
	// Quant is the quantization table the blocks were quantized with.
	Quant dct.QuantTable
}

// Block returns a pointer to the block at grid position (bx, by).
func (c *Component) Block(bx, by int) *dct.Block {
	return &c.Blocks[by*c.BlocksW+bx]
}

// Clone returns a deep copy of the component.
func (c *Component) Clone() Component {
	out := Component{BlocksW: c.BlocksW, BlocksH: c.BlocksH, Quant: c.Quant}
	out.Blocks = make([]dct.Block, len(c.Blocks))
	copy(out.Blocks, c.Blocks)
	return out
}

// Image is a coefficient-domain JPEG image: pixel dimensions plus one
// component per channel (1 = grayscale, 3 = YUV 4:4:4).
type Image struct {
	W, H  int
	Comps []Component
}

// Channels returns the number of components.
func (m *Image) Channels() int { return len(m.Comps) }

// Clone returns a deep copy of the image.
func (m *Image) Clone() *Image {
	out := &Image{W: m.W, H: m.H, Comps: make([]Component, len(m.Comps))}
	for i := range m.Comps {
		out.Comps[i] = m.Comps[i].Clone()
	}
	return out
}

// Validate checks structural invariants.
func (m *Image) Validate() error {
	if m.W <= 0 || m.H <= 0 {
		return fmt.Errorf("jpegc: invalid dimensions %dx%d", m.W, m.H)
	}
	if len(m.Comps) != 1 && len(m.Comps) != 3 {
		return fmt.Errorf("jpegc: %d components, want 1 or 3", len(m.Comps))
	}
	wantBW, wantBH := blocksFor(m.W), blocksFor(m.H)
	for i := range m.Comps {
		c := &m.Comps[i]
		if c.BlocksW != wantBW || c.BlocksH != wantBH {
			return fmt.Errorf("jpegc: component %d grid %dx%d, want %dx%d",
				i, c.BlocksW, c.BlocksH, wantBW, wantBH)
		}
		if len(c.Blocks) != c.BlocksW*c.BlocksH {
			return fmt.Errorf("jpegc: component %d has %d blocks, want %d",
				i, len(c.Blocks), c.BlocksW*c.BlocksH)
		}
		if err := c.Quant.Validate(); err != nil {
			return fmt.Errorf("jpegc: component %d: %w", i, err)
		}
	}
	return nil
}

func blocksFor(pixels int) int { return (pixels + dct.BlockSize - 1) / dct.BlockSize }

// Options control pixel <-> coefficient conversion.
type Options struct {
	// Quality is the libjpeg-style quality in [1,100]; 0 means the default
	// of 75.
	Quality int
}

const defaultQuality = 75

func (o Options) quality() int {
	if o.Quality == 0 {
		return defaultQuality
	}
	return o.Quality
}

// FromPlanar converts a planar YUV image into a quantized coefficient image.
// Edge blocks are padded by edge replication, as conventional encoders do.
func FromPlanar(src *imgplane.Image, opts Options) (*Image, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	q := opts.quality()
	lum, err := dct.StdLuminanceQuant.ScaleQuality(q)
	if err != nil {
		return nil, err
	}
	chrom, err := dct.StdChrominanceQuant.ScaleQuality(q)
	if err != nil {
		return nil, err
	}
	return FromPlanarWithQuant(src, &lum, &chrom)
}

// FromPlanarWithQuant is FromPlanar with explicit quantization tables, used
// when re-encoding must preserve an existing image's tables (e.g. PSP-side
// pixel-domain transforms).
func FromPlanarWithQuant(src *imgplane.Image, lum, chrom *dct.QuantTable) (*Image, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	if err := lum.Validate(); err != nil {
		return nil, err
	}
	if err := chrom.Validate(); err != nil {
		return nil, err
	}
	out := &Image{W: src.W(), H: src.H(), Comps: make([]Component, src.Channels())}
	for ci := range src.Planes {
		qt := lum
		if ci > 0 {
			qt = chrom
		}
		comp, err := componentFromPlane(src.Planes[ci], qt)
		if err != nil {
			return nil, fmt.Errorf("jpegc: component %d: %w", ci, err)
		}
		out.Comps[ci] = comp
	}
	return out, nil
}

// blockRowGrain is the parallel chunk size for block-grid loops: a few
// block rows per chunk amortizes scheduling without starving the pool on
// small images.
const blockRowGrain = 4

func componentFromPlane(p *imgplane.Plane, q *dct.QuantTable) (Component, error) {
	bw, bh := blocksFor(p.W), blocksFor(p.H)
	comp := Component{
		BlocksW: bw,
		BlocksH: bh,
		Blocks:  make([]dct.Block, bw*bh),
		Quant:   *q,
	}
	// Block rows are independent: each worker owns its own scratch block
	// and writes a disjoint slice of comp.Blocks, so output is identical
	// at any worker count.
	parallel.For(bh, blockRowGrain, func(lo, hi int) {
		var spatial dct.FloatBlock
		for by := lo; by < hi; by++ {
			for bx := 0; bx < bw; bx++ {
				for y := 0; y < dct.BlockSize; y++ {
					for x := 0; x < dct.BlockSize; x++ {
						// Plane.At replicates edges, which pads partial blocks.
						spatial[y*dct.BlockSize+x] = float64(p.At(bx*dct.BlockSize+x, by*dct.BlockSize+y)) - 128
					}
				}
				b := dct.ForwardQuantized(&spatial, q)
				clampBaselineAC(&b)
				comp.Blocks[by*bw+bx] = b
			}
		}
	})
	return comp, nil
}

// clampBaselineAC forces AC coefficients into the baseline-representable
// range [-1023, 1023].
func clampBaselineAC(b *dct.Block) {
	for i := 1; i < dct.BlockLen; i++ {
		if b[i] < ACMin {
			b[i] = ACMin
		}
	}
}

// ToPlanar converts the coefficient image back to unclamped planar YUV
// pixels (dequantize + inverse DCT + level unshift).
func (m *Image) ToPlanar() (*imgplane.Image, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out, err := imgplane.New(m.W, m.H, len(m.Comps))
	if err != nil {
		return nil, err
	}
	for ci := range m.Comps {
		comp := &m.Comps[ci]
		plane := out.Planes[ci]
		// Each block row writes a disjoint horizontal band of the plane.
		parallel.For(comp.BlocksH, blockRowGrain, func(lo, hi int) {
			for by := lo; by < hi; by++ {
				for bx := 0; bx < comp.BlocksW; bx++ {
					spatial := dct.InverseQuantized(comp.Block(bx, by), &comp.Quant)
					for y := 0; y < dct.BlockSize; y++ {
						py := by*dct.BlockSize + y
						if py >= m.H {
							break
						}
						for x := 0; x < dct.BlockSize; x++ {
							px := bx*dct.BlockSize + x
							if px >= m.W {
								break
							}
							plane.Pix[py*m.W+px] = float32(spatial[y*dct.BlockSize+x]) + 128
						}
					}
				}
			}
		})
	}
	return out, nil
}
