// Package jpegc is a coefficient-level baseline JPEG codec.
//
// PuPPIeS perturbs quantized DCT coefficients and (for the -C and -Z
// variants) rebuilds Huffman tables to match the perturbed coefficient
// distribution. The standard library's image/jpeg exposes neither, so this
// package implements the full baseline pipeline from scratch:
//
//   - a coefficient image model (8x8 quantized blocks per component),
//   - conversion to and from planar YUV pixels (internal/imgplane),
//   - baseline entropy coding (run-length + Huffman, Annex K default tables
//     or per-image optimized tables, mirroring libjpeg's optimize_coding),
//   - a JFIF bit-stream writer and reader.
//
// Components carry their own sampling factors, so 4:2:0 / 4:2:2 / 4:4:0
// streams decode, protect, and re-encode in their native subsampled
// geometry — chroma blocks are never upsampled to 4:4:4 on import. The
// writer emits MCU-interleaved baseline streams at the image's native
// sampling that Go's stdlib image/jpeg decoder accepts (verified in
// tests); the reader accepts this package's streams plus any 8-bit
// baseline stream with sampling factors up to 2x2 (e.g. stdlib output).
//
// Coefficient conventions: DC occupies [-1024, 1023]; AC occupies
// [-1023, 1023] (baseline Huffman AC categories reach size 10 only, so
// -1024 is not representable — FromPlanar clamps it away).
package jpegc

import (
	"fmt"

	"puppies/internal/dct"
	"puppies/internal/imgplane"
	"puppies/internal/parallel"
)

// ACMin is the minimum representable AC coefficient in baseline JPEG.
const ACMin = -1023

// Component is one color channel of a coefficient image: a dense row-major
// grid of quantized 8x8 DCT blocks.
type Component struct {
	// BlocksW and BlocksH are the grid dimensions in blocks.
	BlocksW, BlocksH int
	// Blocks holds BlocksW*BlocksH quantized coefficient blocks.
	Blocks []dct.Block
	// Quant is the quantization table the blocks were quantized with.
	Quant dct.QuantTable
	// HSamp and VSamp are the JPEG sampling factors (1 or 2). The zero
	// value means 1, so directly constructed 4:4:4 components need not set
	// them. A component sampled below the image maximum covers
	// ceil(W*HSamp/maxH) x ceil(H*VSamp/maxV) pixels.
	HSamp, VSamp int
}

// Sampling returns the component's sampling factors, mapping the zero
// value to 1x1.
func (c *Component) Sampling() (h, v int) {
	h, v = c.HSamp, c.VSamp
	if h == 0 {
		h = 1
	}
	if v == 0 {
		v = 1
	}
	return h, v
}

// Block returns a pointer to the block at grid position (bx, by).
func (c *Component) Block(bx, by int) *dct.Block {
	return &c.Blocks[by*c.BlocksW+bx]
}

// Clone returns a deep copy of the component.
func (c *Component) Clone() Component {
	out := Component{BlocksW: c.BlocksW, BlocksH: c.BlocksH, Quant: c.Quant,
		HSamp: c.HSamp, VSamp: c.VSamp}
	out.Blocks = make([]dct.Block, len(c.Blocks))
	copy(out.Blocks, c.Blocks)
	return out
}

// Image is a coefficient-domain JPEG image: pixel dimensions plus one
// component per channel (1 = grayscale, 3 = YUV at the components' native
// sampling — 4:4:4 when every component samples at 1x1, 4:2:0/4:2:2/4:4:0
// when chroma is subsampled).
type Image struct {
	W, H  int
	Comps []Component
}

// Channels returns the number of components.
func (m *Image) Channels() int { return len(m.Comps) }

// MaxSampling returns the maximum horizontal and vertical sampling factors
// across components — the MCU geometry of the image.
func (m *Image) MaxSampling() (maxH, maxV int) {
	maxH, maxV = 1, 1
	for i := range m.Comps {
		h, v := m.Comps[i].Sampling()
		if h > maxH {
			maxH = h
		}
		if v > maxV {
			maxV = v
		}
	}
	return maxH, maxV
}

// Subsampled reports whether any component covers fewer pixels than the
// image (i.e. the image is not 4:4:4 / grayscale).
func (m *Image) Subsampled() bool {
	maxH, maxV := m.MaxSampling()
	for i := range m.Comps {
		h, v := m.Comps[i].Sampling()
		if h != maxH || v != maxV {
			return true
		}
	}
	return false
}

// CompDims returns the pixel dimensions component ci covers per the JPEG
// standard: ceil(W*hs/maxH) x ceil(H*vs/maxV).
func (m *Image) CompDims(ci int) (pw, ph int) {
	maxH, maxV := m.MaxSampling()
	h, v := m.Comps[ci].Sampling()
	return (m.W*h + maxH - 1) / maxH, (m.H*v + maxV - 1) / maxV
}

// CoeffBytes returns the total coefficient storage across components
// (the working-set size the caches and the protect loop operate on).
func (m *Image) CoeffBytes() int {
	n := 0
	for i := range m.Comps {
		n += len(m.Comps[i].Blocks)
	}
	return n * dct.BlockLen * 4
}

// Recycle returns the image's coefficient storage to the decode slab pool
// and empties the image. Only for a caller that owns the image outright and
// is done with it — typically a validation decode whose result is discarded;
// nothing may alias any component's blocks. Using the image afterwards is a
// bug.
func (m *Image) Recycle() {
	for i := range m.Comps {
		putBlockSlab(m.Comps[i].Blocks)
		m.Comps[i].Blocks = nil
	}
	m.Comps = nil
}

// Clone returns a deep copy of the image.
func (m *Image) Clone() *Image {
	out := &Image{W: m.W, H: m.H, Comps: make([]Component, len(m.Comps))}
	for i := range m.Comps {
		out.Comps[i] = m.Comps[i].Clone()
	}
	return out
}

// Validate checks structural invariants.
func (m *Image) Validate() error {
	if m.W <= 0 || m.H <= 0 {
		return fmt.Errorf("jpegc: invalid dimensions %dx%d", m.W, m.H)
	}
	if len(m.Comps) != 1 && len(m.Comps) != 3 {
		return fmt.Errorf("jpegc: %d components, want 1 or 3", len(m.Comps))
	}
	maxH, maxV := m.MaxSampling()
	if len(m.Comps) == 1 && (maxH != 1 || maxV != 1) {
		return fmt.Errorf("jpegc: grayscale image with %dx%d sampling", maxH, maxV)
	}
	for i := range m.Comps {
		c := &m.Comps[i]
		hs, vs := c.Sampling()
		if hs > 2 || vs > 2 || hs < 1 || vs < 1 {
			return fmt.Errorf("jpegc: component %d sampling %dx%d out of range [1,2]", i, hs, vs)
		}
		pw, ph := m.CompDims(i)
		wantBW, wantBH := blocksFor(pw), blocksFor(ph)
		if c.BlocksW != wantBW || c.BlocksH != wantBH {
			return fmt.Errorf("jpegc: component %d grid %dx%d, want %dx%d (%dx%d sampling)",
				i, c.BlocksW, c.BlocksH, wantBW, wantBH, hs, vs)
		}
		if len(c.Blocks) != c.BlocksW*c.BlocksH {
			return fmt.Errorf("jpegc: component %d has %d blocks, want %d",
				i, len(c.Blocks), c.BlocksW*c.BlocksH)
		}
		if err := c.Quant.Validate(); err != nil {
			return fmt.Errorf("jpegc: component %d: %w", i, err)
		}
	}
	return nil
}

func blocksFor(pixels int) int { return (pixels + dct.BlockSize - 1) / dct.BlockSize }

// Options control pixel <-> coefficient conversion.
type Options struct {
	// Quality is the libjpeg-style quality in [1,100]; 0 means the default
	// of 75.
	Quality int
}

const defaultQuality = 75

func (o Options) quality() int {
	if o.Quality == 0 {
		return defaultQuality
	}
	return o.Quality
}

// FromPlanar converts a planar YUV image into a quantized coefficient image.
// Edge blocks are padded by edge replication, as conventional encoders do.
func FromPlanar(src *imgplane.Image, opts Options) (*Image, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	q := opts.quality()
	lum, err := dct.StdLuminanceQuant.ScaleQuality(q)
	if err != nil {
		return nil, err
	}
	chrom, err := dct.StdChrominanceQuant.ScaleQuality(q)
	if err != nil {
		return nil, err
	}
	return FromPlanarWithQuant(src, &lum, &chrom)
}

// FromPlanarWithQuant is FromPlanar with explicit quantization tables, used
// when re-encoding must preserve an existing image's tables (e.g. PSP-side
// pixel-domain transforms).
func FromPlanarWithQuant(src *imgplane.Image, lum, chrom *dct.QuantTable) (*Image, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	if err := lum.Validate(); err != nil {
		return nil, err
	}
	if err := chrom.Validate(); err != nil {
		return nil, err
	}
	out := &Image{W: src.W(), H: src.H(), Comps: make([]Component, src.Channels())}
	for ci := range src.Planes {
		qt := lum
		if ci > 0 {
			qt = chrom
		}
		comp, err := componentFromPlane(src.Planes[ci], qt)
		if err != nil {
			return nil, fmt.Errorf("jpegc: component %d: %w", ci, err)
		}
		out.Comps[ci] = comp
	}
	return out, nil
}

// blockRowGrain is the parallel chunk size for block-grid loops: a few
// block rows per chunk amortizes scheduling without starving the pool on
// small images.
const blockRowGrain = 4

func componentFromPlane(p *imgplane.Plane, q *dct.QuantTable) (Component, error) {
	bw, bh := blocksFor(p.W), blocksFor(p.H)
	comp := Component{
		BlocksW: bw,
		BlocksH: bh,
		Blocks:  make([]dct.Block, bw*bh),
		Quant:   *q,
	}
	// Block rows are independent: each worker owns its own scratch block
	// and writes a disjoint slice of comp.Blocks, so output is identical
	// at any worker count.
	parallel.For(bh, blockRowGrain, func(lo, hi int) {
		var spatial dct.FloatBlock
		for by := lo; by < hi; by++ {
			for bx := 0; bx < bw; bx++ {
				for y := 0; y < dct.BlockSize; y++ {
					for x := 0; x < dct.BlockSize; x++ {
						// Plane.At replicates edges, which pads partial blocks.
						spatial[y*dct.BlockSize+x] = float64(p.At(bx*dct.BlockSize+x, by*dct.BlockSize+y)) - 128
					}
				}
				b := dct.ForwardQuantized(&spatial, q)
				clampBaselineAC(&b)
				comp.Blocks[by*bw+bx] = b
			}
		}
	})
	return comp, nil
}

// clampBaselineAC forces AC coefficients into the baseline-representable
// range [-1023, 1023].
func clampBaselineAC(b *dct.Block) {
	for i := 1; i < dct.BlockLen; i++ {
		if b[i] < ACMin {
			b[i] = ACMin
		}
	}
}

// ToPlanar converts the coefficient image back to unclamped planar YUV
// pixels (dequantize + inverse DCT + level unshift). Subsampled components
// are reconstructed at their native resolution and bilinearly upsampled to
// the full image size, so the planar model stays 4:4:4 for consumers.
func (m *Image) ToPlanar() (*imgplane.Image, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out, err := imgplane.New(m.W, m.H, len(m.Comps))
	if err != nil {
		return nil, err
	}
	for ci := range m.Comps {
		comp := &m.Comps[ci]
		pw, ph := m.CompDims(ci)
		if pw == m.W && ph == m.H {
			fillPlaneFromComponent(comp, out.Planes[ci])
			continue
		}
		native := imgplane.GetPlane(pw, ph)
		fillPlaneFromComponent(comp, native)
		imgplane.ResizeBilinearInto(native, out.Planes[ci])
		imgplane.PutPlane(native)
	}
	return out, nil
}

// fillPlaneFromComponent dequantizes + inverse-transforms a component into
// dst (whose dimensions must match the component's nominal pixel coverage;
// partial edge blocks are cropped).
func fillPlaneFromComponent(comp *Component, dst *imgplane.Plane) {
	pw, ph := dst.W, dst.H
	// Each block row writes a disjoint horizontal band of the plane.
	parallel.For(comp.BlocksH, blockRowGrain, func(lo, hi int) {
		for by := lo; by < hi; by++ {
			for bx := 0; bx < comp.BlocksW; bx++ {
				spatial := dct.InverseQuantized(comp.Block(bx, by), &comp.Quant)
				for y := 0; y < dct.BlockSize; y++ {
					py := by*dct.BlockSize + y
					if py >= ph {
						break
					}
					for x := 0; x < dct.BlockSize; x++ {
						px := bx*dct.BlockSize + x
						if px >= pw {
							break
						}
						dst.Pix[py*pw+px] = float32(spatial[y*dct.BlockSize+x]) + 128
					}
				}
			}
		}
	})
}
