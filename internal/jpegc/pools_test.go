package jpegc

import (
	"sync"
	"testing"
)

// TestPoolsResetPoisonedBuffers enforces the pools.go contract: whatever
// state an object is returned in, the next Get hands out fully reset data.
func TestPoolsResetPoisonedBuffers(t *testing.T) {
	// Byte buffers: poison the contents, recycle, and check a fresh Get is
	// empty — stale bytes must only ever be reachable by appends that
	// overwrite them.
	b := getByteBuf()
	b = append(b, 0xde, 0xad, 0xbe, 0xef)
	putByteBuf(b)
	for i := 0; i < 4; i++ {
		got := getByteBuf()
		if len(got) != 0 {
			t.Fatalf("recycled byte buffer has length %d, want 0", len(got))
		}
		got = append(got, byte(i))
		if got[0] != byte(i) {
			t.Fatalf("append after recycle read back %#x, want %#x", got[0], i)
		}
		putByteBuf(got)
	}

	// Histograms: poison every counter, recycle, and check the next Get is
	// zeroed; a leak here would silently skew optimized Huffman tables.
	h := getHist()
	for ti := range h.dc {
		for s := range h.dc[ti] {
			h.dc[ti][s] = -1
			h.ac[ti][s] = 1 << 40
		}
	}
	putHist(h)
	for i := 0; i < 4; i++ {
		got := getHist()
		for ti := range got.dc {
			for s := range got.dc[ti] {
				if got.dc[ti][s] != 0 || got.ac[ti][s] != 0 {
					t.Fatalf("recycled histogram not zeroed: dc[%d][%d]=%d ac[%d][%d]=%d",
						ti, s, got.dc[ti][s], ti, s, got.ac[ti][s])
				}
			}
		}
		putHist(got)
	}
}

// TestPoolsConcurrentReuse hammers the byte-buffer pool from several
// goroutines, each poisoning its buffer before recycling, to catch reuse
// races the single-threaded poison test cannot see. Run under `make race`.
func TestPoolsConcurrentReuse(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := getByteBuf()
				if len(b) != 0 {
					t.Errorf("goroutine %d: got buffer of length %d", g, len(b))
					return
				}
				for j := 0; j < 64; j++ {
					b = append(b, byte(g))
				}
				for j, v := range b {
					if v != byte(g) {
						t.Errorf("goroutine %d: buffer byte %d is %#x", g, j, v)
						return
					}
				}
				putByteBuf(b)
			}
		}(g)
	}
	wg.Wait()
}
