package jpegc

import "sync"

// Scratch pools for the entropy-coding hot path. Contract: everything a
// Get returns is fully reset (zero counts, zero length), so callers never
// observe another image's data. TestPoolsResetPoisonedBuffers enforces this
// by poisoning buffers before returning them.

// byteBufPool recycles the large, short-lived byte buffers of the scan
// path: the decoder's whole-scan entropy buffer and the encoder's staged
// bit-stream output.
var byteBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1<<16)
		return &b
	},
}

// getByteBuf returns an empty byte buffer with nonzero capacity.
func getByteBuf() []byte {
	b := *byteBufPool.Get().(*[]byte)
	return b[:0]
}

// putByteBuf recycles a buffer obtained from getByteBuf. The caller must
// not retain any slice aliasing it.
func putByteBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	byteBufPool.Put(&b)
}

// symbolHist accumulates DC and AC symbol frequencies for one table pair
// (index 0 = luminance, 1 = chrominance) during the optimized-tables
// statistics pass.
type symbolHist struct {
	dc, ac [2][256]int64
}

var histPool = sync.Pool{New: func() any { return &symbolHist{} }}

// getHist returns a zeroed histogram.
func getHist() *symbolHist {
	h := histPool.Get().(*symbolHist)
	h.dc = [2][256]int64{}
	h.ac = [2][256]int64{}
	return h
}

// putHist recycles a histogram obtained from getHist.
func putHist(h *symbolHist) { histPool.Put(h) }
