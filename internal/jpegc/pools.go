package jpegc

import (
	"sync"

	"puppies/internal/dct"
)

// Scratch pools for the entropy-coding hot path. Contract: everything a
// Get returns is fully reset (zero counts, zero length), so callers never
// observe another image's data. TestPoolsResetPoisonedBuffers enforces this
// by poisoning buffers before returning them.

// byteBufPool recycles the large, short-lived byte buffers of the scan
// path: the decoder's whole-scan entropy buffer and the encoder's staged
// bit-stream output.
var byteBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1<<16)
		return &b
	},
}

// getByteBuf returns an empty byte buffer with nonzero capacity.
func getByteBuf() []byte {
	b := *byteBufPool.Get().(*[]byte)
	return b[:0]
}

// putByteBuf recycles a buffer obtained from getByteBuf. The caller must
// not retain any slice aliasing it.
func putByteBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	byteBufPool.Put(&b)
}

// blockSlabPool recycles whole coefficient grids (the dominant allocation
// of a decode: one slab per component, sized in MCU multiples). Slabs are
// pointer-free, so pooling them removes both the mallocs and the GC sweep
// work of decode-heavy paths like upload validation.
var blockSlabPool = sync.Pool{New: func() any { return new([]dct.Block) }}

// getBlockSlab returns a zeroed slab of n blocks, reusing pooled storage
// when a large enough slab is available.
func getBlockSlab(n int) []dct.Block {
	s := *blockSlabPool.Get().(*[]dct.Block)
	if cap(s) < n {
		return make([]dct.Block, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// putBlockSlab recycles a slab. The caller asserts sole ownership: nothing
// may alias the slab afterwards.
func putBlockSlab(s []dct.Block) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	blockSlabPool.Put(&s)
}

// symbolHist accumulates DC and AC symbol frequencies for one table pair
// (index 0 = luminance, 1 = chrominance) during the optimized-tables
// statistics pass.
type symbolHist struct {
	dc, ac [2][256]int64
}

var histPool = sync.Pool{New: func() any { return &symbolHist{} }}

// getHist returns a zeroed histogram.
func getHist() *symbolHist {
	h := histPool.Get().(*symbolHist)
	h.dc = [2][256]int64{}
	h.ac = [2][256]int64{}
	return h
}

// putHist recycles a histogram obtained from getHist.
func putHist(h *symbolHist) { histPool.Put(h) }
