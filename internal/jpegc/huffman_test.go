package jpegc

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"puppies/internal/dct"
)

// consumedBits returns the logical bit position of a reader within its
// segment, independent of how far fill() has run ahead: bits loaded from the
// first pos bytes (stuffing bytes carry no payload) minus bits still queued
// in the accumulator.
func consumedBits(br *bitReader) int {
	loaded := 0
	for i := 0; i < br.pos; i++ {
		if i > 0 && br.data[i] == 0x00 && br.data[i-1] == 0xff {
			continue
		}
		loaded += 8
	}
	return loaded - int(br.nAcc)
}

// randomSpec builds a valid Huffman spec from random symbol frequencies.
func randomSpec(t *testing.T, rng *rand.Rand) HuffmanSpec {
	t.Helper()
	var freq [256]int64
	nSyms := 2 + rng.Intn(255)
	for i := 0; i < nSyms; i++ {
		// Exponentially skewed frequencies produce a wide spread of code
		// lengths, including the 16-bit tail after the spec adjustment.
		freq[rng.Intn(256)] = 1 + int64(rng.Intn(1<<uint(rng.Intn(20))))
	}
	spec, err := BuildOptimalSpec(&freq)
	if err != nil {
		t.Fatalf("BuildOptimalSpec: %v", err)
	}
	return spec
}

// TestLUTDecodeMatchesReference is the property test behind the fast path:
// on random tables and random bit streams, decode and decodeReference return
// the same symbols, consume the same bits, and fail at the same point.
func TestLUTDecodeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	specs := []HuffmanSpec{StdDCLuminance, StdACLuminance, StdDCChrominance, StdACChrominance}
	for i := 0; i < 20; i++ {
		specs = append(specs, randomSpec(t, rng))
	}
	for si, spec := range specs {
		tbl, err := newDecTable(&spec)
		if err != nil {
			t.Fatalf("spec %d: %v", si, err)
		}
		for trial := 0; trial < 50; trial++ {
			data := make([]byte, 1+rng.Intn(200))
			rng.Read(data)
			fast := newBitReader(data)
			ref := newBitReader(data)
			for step := 0; ; step++ {
				symF, errF := tbl.decode(&fast)
				symR, errR := tbl.decodeReference(&ref)
				if (errF == nil) != (errR == nil) {
					t.Fatalf("spec %d trial %d step %d: fast err %v, reference err %v",
						si, trial, step, errF, errR)
				}
				if errF != nil {
					break
				}
				if symF != symR {
					t.Fatalf("spec %d trial %d step %d: fast decoded %#x, reference %#x",
						si, trial, step, symF, symR)
				}
				if cf, cr := consumedBits(&fast), consumedBits(&ref); cf != cr {
					t.Fatalf("spec %d trial %d step %d: fast at bit %d, reference at bit %d",
						si, trial, step, cf, cr)
				}
			}
		}
	}
}

// TestMaxLengthCodesRoundTrip exercises a table whose tail symbols use full
// 16-bit codes (far past the 8-bit LUT) through encode and both decoders.
func TestMaxLengthCodesRoundTrip(t *testing.T) {
	// One code per length 1..15 and two of length 16: a maximally skewed
	// but valid canonical code.
	var spec HuffmanSpec
	for i := 0; i < maxCodeLength; i++ {
		spec.Counts[i] = 1
	}
	spec.Counts[maxCodeLength-1] = 2
	for i := 0; i < 17; i++ {
		spec.Values = append(spec.Values, byte(i))
	}
	enc, err := newEncTable(&spec)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := newDecTable(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if enc.size[16] != 16 || enc.size[15] != 16 {
		t.Fatalf("tail symbols have %d- and %d-bit codes, want 16", enc.size[15], enc.size[16])
	}

	var stream bytes.Buffer
	bw := newBitWriter(&stream)
	defer bw.release()
	syms := make([]byte, 300)
	rng := rand.New(rand.NewSource(5))
	for i := range syms {
		syms[i] = byte(rng.Intn(17))
	}
	for _, s := range syms {
		bw.WriteBits(enc.code[s], uint(enc.size[s]))
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, useRef := range []bool{false, true} {
		br := newBitReader(stream.Bytes())
		for i, want := range syms {
			var got byte
			var err error
			if useRef {
				got, err = dec.decodeReference(&br)
			} else {
				got, err = dec.decode(&br)
			}
			if err != nil {
				t.Fatalf("ref=%v symbol %d: %v", useRef, i, err)
			}
			if got != want {
				t.Fatalf("ref=%v symbol %d: decoded %#x, want %#x", useRef, i, got, want)
			}
		}
	}
}

// TestAllOnesCodeNeverDecodes feeds 16 one-bits — the code point the JPEG
// standard reserves — to tables that leave it unassigned. Both decode paths
// must reject it rather than return a bogus symbol.
func TestAllOnesCodeNeverDecodes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	specs := []HuffmanSpec{StdDCLuminance, StdACLuminance, StdDCChrominance, StdACChrominance}
	for i := 0; i < 10; i++ {
		specs = append(specs, randomSpec(t, rng))
	}
	// 16 one-bits; the 0xFF bytes are stuffed as they would be in a stream.
	allOnes := []byte{0xff, 0x00, 0xff, 0x00}
	for si, spec := range specs {
		tbl, err := newDecTable(&spec)
		if err != nil {
			t.Fatalf("spec %d: %v", si, err)
		}
		// Reject specs that assign the all-ones 16-bit code (a random spec
		// from BuildOptimalSpec never does: symbol 256 is reserved for it).
		if tbl.maxcode[maxCodeLength] == 1<<maxCodeLength-1 {
			t.Fatalf("spec %d assigns the reserved all-ones code", si)
		}
		br := newBitReader(allOnes)
		if _, err := tbl.decode(&br); err == nil || !strings.Contains(err.Error(), "invalid huffman code") {
			t.Errorf("spec %d: fast path accepted all-ones code (err %v)", si, err)
		}
		br = newBitReader(allOnes)
		if _, err := tbl.decodeReference(&br); err == nil || !strings.Contains(err.Error(), "invalid huffman code") {
			t.Errorf("spec %d: reference path accepted all-ones code (err %v)", si, err)
		}
	}
}

// TestBlockBoundaryCoding round-trips blocks that stress EOB and ZRL at the
// edges of the 64-coefficient block: DC-only (immediate EOB), a lone value
// in the last zig-zag slot (three ZRLs then run 14), values exactly at ZRL
// multiples, and a fully dense block (no EOB at all).
func TestBlockBoundaryCoding(t *testing.T) {
	patterns := []func(b *dct.Block){
		func(b *dct.Block) {}, // DC only: EOB right after the DC coefficient
		func(b *dct.Block) { b[dct.ZigZag[63]] = 5 },
		func(b *dct.Block) { b[dct.ZigZag[16]] = -3; b[dct.ZigZag[32]] = 7; b[dct.ZigZag[48]] = -1 },
		func(b *dct.Block) { b[dct.ZigZag[1]] = 2; b[dct.ZigZag[63]] = -9 },
		func(b *dct.Block) {
			for zz := 1; zz < dct.BlockLen; zz++ {
				b[dct.ZigZag[zz]] = int32(zz%19 - 9)
			}
		},
	}
	for _, mode := range []TableMode{TablesDefault, TablesOptimized} {
		for pi, fill := range patterns {
			img := &Image{W: 8, H: 8, Comps: []Component{{
				BlocksW: 1, BlocksH: 1, Blocks: make([]dct.Block, 1),
				Quant: dct.StdLuminanceQuant,
			}}}
			img.Comps[0].Blocks[0][0] = 100
			fill(&img.Comps[0].Blocks[0])
			var buf bytes.Buffer
			if err := img.Encode(&buf, EncodeOptions{Tables: mode}); err != nil {
				t.Fatalf("mode %d pattern %d: %v", mode, pi, err)
			}
			got, err := Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("mode %d pattern %d: %v", mode, pi, err)
			}
			assertCoeffEqual(t, img, got)
		}
	}
}

// TestTruncatedStreamsMidRefill cuts a valid stream at every offset inside
// the entropy-coded data, so the word-based refill hits end-of-segment at
// every possible alignment. Decoding must fail cleanly (or, at worst for a
// cut near the end, succeed with a structurally valid image) — never panic.
func TestTruncatedStreamsMidRefill(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	img := randomCoeffImage(rng, 32, 24, 3)
	var buf bytes.Buffer
	if err := img.Encode(&buf, EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	sos := bytes.Index(data, []byte{0xff, 0xda})
	if sos < 0 {
		t.Fatal("no SOS marker in encoded stream")
	}
	for cut := sos + 2; cut < len(data); cut++ {
		out, err := Decode(bytes.NewReader(data[:cut]))
		if err == nil {
			if vErr := out.Validate(); vErr != nil {
				t.Fatalf("cut %d: accepted stream decoded to invalid image: %v", cut, vErr)
			}
			continue
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			continue // precise truncation report from the bit reader
		}
	}
}
