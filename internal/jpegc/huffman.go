package jpegc

import (
	"fmt"
	"sort"
)

// maxCodeLength is the longest Huffman code baseline JPEG permits.
const maxCodeLength = 16

// HuffmanSpec describes a Huffman table the way the JPEG standard does:
// Counts[i] is the number of codes of length i+1 bits, and Values lists the
// symbols in order of increasing code length.
type HuffmanSpec struct {
	Counts [maxCodeLength]byte
	Values []byte
}

// Validate checks that the spec describes a decodable prefix code.
func (s *HuffmanSpec) Validate() error {
	total := 0
	code := 0
	for i, n := range s.Counts {
		code <<= 1
		total += int(n)
		code += int(n)
		if code > 1<<(i+1) {
			return fmt.Errorf("jpegc: huffman spec overflows at length %d", i+1)
		}
	}
	if total != len(s.Values) {
		return fmt.Errorf("jpegc: huffman spec has %d counts but %d values", total, len(s.Values))
	}
	if total == 0 {
		return fmt.Errorf("jpegc: empty huffman spec")
	}
	if total > 256 {
		return fmt.Errorf("jpegc: huffman spec has %d symbols, max 256", total)
	}
	seen := make(map[byte]bool, total)
	for _, v := range s.Values {
		if seen[v] {
			return fmt.Errorf("jpegc: duplicate symbol %#x in huffman spec", v)
		}
		seen[v] = true
	}
	return nil
}

// encTable maps a symbol to its code word for encoding.
type encTable struct {
	code [256]uint32
	size [256]uint8 // 0 means the symbol has no code
}

func newEncTable(s *HuffmanSpec) (*encTable, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &encTable{}
	code := uint32(0)
	vi := 0
	for length := 1; length <= maxCodeLength; length++ {
		for n := 0; n < int(s.Counts[length-1]); n++ {
			sym := s.Values[vi]
			t.code[sym] = code
			t.size[sym] = uint8(length)
			code++
			vi++
		}
		code <<= 1
	}
	return t, nil
}

// decTable supports canonical Huffman decoding via the standard
// mincode/maxcode/valptr method (JPEG spec F.2.2.3).
type decTable struct {
	mincode [maxCodeLength + 1]int32
	maxcode [maxCodeLength + 1]int32 // -1 when no codes of this length
	valptr  [maxCodeLength + 1]int
	values  []byte
}

func newDecTable(s *HuffmanSpec) (*decTable, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &decTable{values: s.Values}
	code := int32(0)
	vi := 0
	for length := 1; length <= maxCodeLength; length++ {
		n := int(s.Counts[length-1])
		if n == 0 {
			t.maxcode[length] = -1
		} else {
			t.valptr[length] = vi
			t.mincode[length] = code
			code += int32(n)
			vi += n
			t.maxcode[length] = code - 1
		}
		code <<= 1
	}
	return t, nil
}

// decode reads one symbol from the bit reader.
func (t *decTable) decode(br *bitReader) (byte, error) {
	code := int32(0)
	for length := 1; length <= maxCodeLength; length++ {
		bit, err := br.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | int32(bit)
		if t.maxcode[length] >= 0 && code <= t.maxcode[length] {
			return t.values[t.valptr[length]+int(code-t.mincode[length])], nil
		}
	}
	return 0, fmt.Errorf("jpegc: invalid huffman code")
}

// BuildOptimalSpec constructs a length-limited Huffman table for the given
// symbol frequencies using the JPEG standard's procedure (Annex K.3 /
// libjpeg jpeg_gen_optimal_table): merge the two least-frequent symbols
// repeatedly, then shorten any code longer than 16 bits by the standard
// bit-count adjustment. A virtual symbol 256 with frequency 1 is reserved so
// that no real symbol receives the all-ones code.
//
// This is the mechanism behind PuPPIeS-C (paper §IV-B.3): after
// perturbation the default Annex K tables are badly matched to the symbol
// distribution, and rebuilding them removes the ~10x size blowup of
// PuPPIeS-B.
func BuildOptimalSpec(freq *[256]int64) (HuffmanSpec, error) {
	// freq2 has 257 entries; index 256 is the reserved symbol.
	var freq2 [257]int64
	for i, f := range freq {
		if f < 0 {
			return HuffmanSpec{}, fmt.Errorf("jpegc: negative frequency for symbol %d", i)
		}
		freq2[i] = f
	}
	freq2[256] = 1

	var codesize [257]int
	var others [257]int
	for i := range others {
		others[i] = -1
	}

	for {
		// Find v1: least-frequency nonzero symbol, preferring the largest
		// symbol value on ties (libjpeg behaviour).
		c1, c2 := -1, -1
		v := int64(1) << 62
		for i := 0; i <= 256; i++ {
			if freq2[i] != 0 && freq2[i] <= v {
				v = freq2[i]
				c1 = i
			}
		}
		// Find v2: next least-frequency nonzero symbol.
		v = int64(1) << 62
		for i := 0; i <= 256; i++ {
			if freq2[i] != 0 && freq2[i] <= v && i != c1 {
				v = freq2[i]
				c2 = i
			}
		}
		if c2 < 0 {
			break // only one symbol chain left: done
		}

		freq2[c1] += freq2[c2]
		freq2[c2] = 0

		codesize[c1]++
		for others[c1] >= 0 {
			c1 = others[c1]
			codesize[c1]++
		}
		others[c1] = c2
		codesize[c2]++
		for others[c2] >= 0 {
			c2 = others[c2]
			codesize[c2]++
		}
	}

	// Count codes of each length; lengths can reach 32 here.
	var bits [33]int
	for i := 0; i <= 256; i++ {
		if codesize[i] > 0 {
			if codesize[i] > 32 {
				return HuffmanSpec{}, fmt.Errorf("jpegc: huffman code length %d exceeds 32", codesize[i])
			}
			bits[codesize[i]]++
		}
	}

	// JPEG spec adjustment: fold lengths above 16 down.
	for i := 32; i > maxCodeLength; i-- {
		for bits[i] > 0 {
			j := i - 2
			for bits[j] == 0 {
				j--
			}
			bits[i] -= 2
			bits[i-1]++
			bits[j+1] += 2
			bits[j]--
		}
	}
	// Remove the reserved symbol's code (the longest one).
	for i := maxCodeLength; i >= 1; i-- {
		if bits[i] > 0 {
			bits[i]--
			break
		}
	}

	// Sort real symbols by (code length, symbol value).
	type symLen struct {
		sym byte
		len int
	}
	syms := make([]symLen, 0, 257)
	for i := 0; i < 256; i++ {
		if codesize[i] > 0 {
			syms = append(syms, symLen{sym: byte(i), len: codesize[i]})
		}
	}
	sort.Slice(syms, func(a, b int) bool {
		if syms[a].len != syms[b].len {
			return syms[a].len < syms[b].len
		}
		return syms[a].sym < syms[b].sym
	})

	var spec HuffmanSpec
	for i := 1; i <= maxCodeLength; i++ {
		spec.Counts[i-1] = byte(bits[i])
	}
	// Values are listed in increasing code-length order; the bit-count
	// adjustment preserved relative symbol ordering well enough for a valid
	// canonical code because total counts per length match the symbol list.
	spec.Values = make([]byte, len(syms))
	for i, s := range syms {
		spec.Values[i] = s.sym
	}
	if err := spec.Validate(); err != nil {
		return HuffmanSpec{}, err
	}
	return spec, nil
}

// magnitudeCategory returns the JPEG size category of v: the number of bits
// needed to represent |v| (0 for v == 0).
func magnitudeCategory(v int32) int {
	if v < 0 {
		v = -v
	}
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// magnitudeBits returns the SSSS magnitude bits for value v in category size
// per JPEG's convention: nonnegative values are emitted as-is; negative
// values as v-1 truncated to size bits (one's complement of |v|).
func magnitudeBits(v int32, size int) uint32 {
	if v < 0 {
		v--
	}
	return uint32(v) & ((1 << size) - 1)
}

// extendMagnitude inverts magnitudeBits: reconstructs the signed value from
// size magnitude bits (JPEG spec F.2.2.1 EXTEND).
func extendMagnitude(bits uint32, size int) int32 {
	if size == 0 {
		return 0
	}
	v := int32(bits)
	if v < 1<<(size-1) {
		v -= (1 << size) - 1
	}
	return v
}
