package jpegc

import (
	"fmt"
	"sync"
)

// maxCodeLength is the longest Huffman code baseline JPEG permits.
const maxCodeLength = 16

// HuffmanSpec describes a Huffman table the way the JPEG standard does:
// Counts[i] is the number of codes of length i+1 bits, and Values lists the
// symbols in order of increasing code length.
type HuffmanSpec struct {
	Counts [maxCodeLength]byte
	Values []byte
}

// Validate checks that the spec describes a decodable prefix code.
func (s *HuffmanSpec) Validate() error {
	total := 0
	code := 0
	for i, n := range s.Counts {
		code <<= 1
		total += int(n)
		code += int(n)
		if code > 1<<(i+1) {
			return fmt.Errorf("jpegc: huffman spec overflows at length %d", i+1)
		}
	}
	if total != len(s.Values) {
		return fmt.Errorf("jpegc: huffman spec has %d counts but %d values", total, len(s.Values))
	}
	if total == 0 {
		return fmt.Errorf("jpegc: empty huffman spec")
	}
	if total > 256 {
		return fmt.Errorf("jpegc: huffman spec has %d symbols, max 256", total)
	}
	var seen [256]bool
	for _, v := range s.Values {
		if seen[v] {
			return fmt.Errorf("jpegc: duplicate symbol %#x in huffman spec", v)
		}
		seen[v] = true
	}
	return nil
}

// encTable maps a symbol to its code word for encoding.
type encTable struct {
	code [256]uint32
	size [256]uint8 // 0 means the symbol has no code
}

func newEncTable(s *HuffmanSpec) (*encTable, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &encTable{}
	code := uint32(0)
	vi := 0
	for length := 1; length <= maxCodeLength; length++ {
		for n := 0; n < int(s.Counts[length-1]); n++ {
			sym := s.Values[vi]
			t.code[sym] = code
			t.size[sym] = uint8(length)
			code++
			vi++
		}
		code <<= 1
	}
	return t, nil
}

// lutBits is the first-level lookup width of the decoder: every code of at
// most lutBits bits resolves with a single table probe.
const lutBits = 8

// decTable supports two decoding strategies over the same canonical code:
// a two-level fast path (an 8-bit first-level LUT resolving codes of up to
// 8 bits in one probe, with a mincode/maxcode walk for the longer tail)
// and the standard bit-at-a-time method (JPEG spec F.2.2.3), kept as
// decodeReference to verify the fast path against.
type decTable struct {
	// lut maps the next 8 bits of the stream to symbol<<8 | codeLength for
	// codes of at most 8 bits; 0 means "longer code, take the slow path".
	lut     [1 << lutBits]uint16
	mincode [maxCodeLength + 1]int32
	maxcode [maxCodeLength + 1]int32 // -1 when no codes of this length
	valptr  [maxCodeLength + 1]int
	values  []byte
	valbuf  [256]byte // backing storage for values
}

// decTablePool recycles decode tables between Decode calls. A reused table
// only needs its LUT cleared and maxcode rewritten: the slow-path walk
// guards every mincode/valptr read behind maxcode, which newDecTable sets
// for every length.
var decTablePool = sync.Pool{New: func() any { return new(decTable) }}

// putDecTable hands a table back; the caller must hold the only reference.
func putDecTable(t *decTable) {
	if t == nil {
		return
	}
	t.values = nil
	decTablePool.Put(t)
}

func newDecTable(s *HuffmanSpec) (*decTable, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := decTablePool.Get().(*decTable)
	t.lut = [1 << lutBits]uint16{}
	// Values are copied into the table's own backing array (at most 256 of
	// them), so the spec may alias a transient segment body.
	t.values = append(t.valbuf[:0], s.Values...)
	code := int32(0)
	vi := 0
	for length := 1; length <= maxCodeLength; length++ {
		n := int(s.Counts[length-1])
		if n == 0 {
			t.maxcode[length] = -1
		} else {
			t.valptr[length] = vi
			t.mincode[length] = code
			if length <= lutBits {
				// Every LUT slot whose top `length` bits equal the code
				// decodes to this symbol.
				for i := 0; i < n; i++ {
					base := int(code+int32(i)) << (lutBits - length)
					entry := uint16(s.Values[vi+i])<<8 | uint16(length)
					for j := 0; j < 1<<(lutBits-length); j++ {
						t.lut[base+j] = entry
					}
				}
			}
			code += int32(n)
			vi += n
			t.maxcode[length] = code - 1
		}
		code <<= 1
	}
	return t, nil
}

// decode reads one symbol from the bit reader via the two-level fast path.
// It is bit-exact with decodeReference (TestLUTDecodeMatchesReference).
func (t *decTable) decode(br *bitReader) (byte, error) {
	if br.nAcc < maxCodeLength {
		br.fill()
	}
	n := br.nAcc
	if n >= lutBits {
		if e := t.lut[uint8(br.acc>>(n-lutBits))]; e != 0 {
			br.nAcc = n - uint(e&0xff)
			return byte(e >> 8), nil
		}
		// The next code is longer than lutBits; resolve it with the
		// canonical mincode/maxcode walk over the remaining lengths.
		if n >= maxCodeLength {
			w := int32(br.acc>>(n-maxCodeLength)) & (1<<maxCodeLength - 1)
			for length := lutBits + 1; length <= maxCodeLength; length++ {
				code := w >> (maxCodeLength - length)
				if t.maxcode[length] >= 0 && code <= t.maxcode[length] {
					br.nAcc = n - uint(length)
					return t.values[t.valptr[length]+int(code-t.mincode[length])], nil
				}
			}
			return 0, fmt.Errorf("jpegc: invalid huffman code")
		}
	}
	// Fewer than 16 bits remain before the segment ends: fall back to the
	// bit-at-a-time path, which reports exhaustion precisely.
	return t.decodeReference(br)
}

// decodeReference reads one symbol bit-at-a-time per JPEG spec F.2.2.3.
// It is the verification baseline for the LUT fast path and the tail
// decoder near the end of a segment.
func (t *decTable) decodeReference(br *bitReader) (byte, error) {
	code := int32(0)
	for length := 1; length <= maxCodeLength; length++ {
		bit, err := br.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | int32(bit)
		if t.maxcode[length] >= 0 && code <= t.maxcode[length] {
			return t.values[t.valptr[length]+int(code-t.mincode[length])], nil
		}
	}
	return 0, fmt.Errorf("jpegc: invalid huffman code")
}

// BuildOptimalSpec constructs a length-limited Huffman table for the given
// symbol frequencies using the JPEG standard's procedure (Annex K.3 /
// libjpeg jpeg_gen_optimal_table): merge the two least-frequent symbols
// repeatedly, then shorten any code longer than 16 bits by the standard
// bit-count adjustment. A virtual symbol 256 with frequency 1 is reserved so
// that no real symbol receives the all-ones code.
//
// This is the mechanism behind PuPPIeS-C (paper §IV-B.3): after
// perturbation the default Annex K tables are badly matched to the symbol
// distribution, and rebuilding them removes the ~10x size blowup of
// PuPPIeS-B.
func BuildOptimalSpec(freq *[256]int64) (HuffmanSpec, error) {
	// freq2 has 257 entries; index 256 is the reserved symbol.
	var freq2 [257]int64
	for i, f := range freq {
		if f < 0 {
			return HuffmanSpec{}, fmt.Errorf("jpegc: negative frequency for symbol %d", i)
		}
		freq2[i] = f
	}
	freq2[256] = 1

	var codesize [257]int
	var others [257]int
	for i := range others {
		others[i] = -1
	}

	for {
		// Find v1: least-frequency nonzero symbol, preferring the largest
		// symbol value on ties (libjpeg behaviour).
		c1, c2 := -1, -1
		v := int64(1) << 62
		for i := 0; i <= 256; i++ {
			if freq2[i] != 0 && freq2[i] <= v {
				v = freq2[i]
				c1 = i
			}
		}
		// Find v2: next least-frequency nonzero symbol.
		v = int64(1) << 62
		for i := 0; i <= 256; i++ {
			if freq2[i] != 0 && freq2[i] <= v && i != c1 {
				v = freq2[i]
				c2 = i
			}
		}
		if c2 < 0 {
			break // only one symbol chain left: done
		}

		freq2[c1] += freq2[c2]
		freq2[c2] = 0

		codesize[c1]++
		for others[c1] >= 0 {
			c1 = others[c1]
			codesize[c1]++
		}
		others[c1] = c2
		codesize[c2]++
		for others[c2] >= 0 {
			c2 = others[c2]
			codesize[c2]++
		}
	}

	// Count codes of each length; lengths can reach 32 here.
	var bits [33]int
	for i := 0; i <= 256; i++ {
		if codesize[i] > 0 {
			if codesize[i] > 32 {
				return HuffmanSpec{}, fmt.Errorf("jpegc: huffman code length %d exceeds 32", codesize[i])
			}
			bits[codesize[i]]++
		}
	}

	// JPEG spec adjustment: fold lengths above 16 down.
	for i := 32; i > maxCodeLength; i-- {
		for bits[i] > 0 {
			j := i - 2
			for bits[j] == 0 {
				j--
			}
			bits[i] -= 2
			bits[i-1]++
			bits[j+1] += 2
			bits[j]--
		}
	}
	// Remove the reserved symbol's code (the longest one).
	for i := maxCodeLength; i >= 1; i-- {
		if bits[i] > 0 {
			bits[i]--
			break
		}
	}

	var spec HuffmanSpec
	nSyms := 0
	for i := 1; i <= maxCodeLength; i++ {
		spec.Counts[i-1] = byte(bits[i])
		nSyms += bits[i]
	}
	// Values are listed in increasing (code length, symbol) order; a
	// counting pass over the lengths replaces the old sort.Slice (this runs
	// once per table per image on the optimized-tables path). The bit-count
	// adjustment preserved relative symbol ordering well enough for a valid
	// canonical code because total counts per length match the symbol list.
	spec.Values = make([]byte, 0, nSyms)
	for length := 1; length <= 32; length++ {
		for i := 0; i < 256; i++ {
			if codesize[i] == length {
				spec.Values = append(spec.Values, byte(i))
			}
		}
	}
	if err := spec.Validate(); err != nil {
		return HuffmanSpec{}, err
	}
	return spec, nil
}

// magnitudeCategory returns the JPEG size category of v: the number of bits
// needed to represent |v| (0 for v == 0).
func magnitudeCategory(v int32) int {
	if v < 0 {
		v = -v
	}
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// magnitudeBits returns the SSSS magnitude bits for value v in category size
// per JPEG's convention: nonnegative values are emitted as-is; negative
// values as v-1 truncated to size bits (one's complement of |v|).
func magnitudeBits(v int32, size int) uint32 {
	if v < 0 {
		v--
	}
	return uint32(v) & ((1 << size) - 1)
}

// extendMagnitude inverts magnitudeBits: reconstructs the signed value from
// size magnitude bits (JPEG spec F.2.2.1 EXTEND).
func extendMagnitude(bits uint32, size int) int32 {
	if size == 0 {
		return 0
	}
	v := int32(bits)
	if v < 1<<(size-1) {
		v -= (1 << size) - 1
	}
	return v
}
