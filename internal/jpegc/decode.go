package jpegc

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sync"

	"puppies/internal/dct"
	"puppies/internal/parallel"
)

// Decode parses a baseline JFIF stream into a coefficient image. Supported
// streams: 8-bit baseline sequential Huffman, grayscale or 3 components
// with sampling factors up to 2x2 (4:4:4, 4:2:2, 4:4:0, 4:2:0 — i.e. this
// package's own output plus standard encoder output such as Go's
// image/jpeg). Components keep their native geometry: subsampled chroma is
// NOT upsampled on import, so every coefficient of every component
// survives decode→encode bit-exactly (see Image.Normalize444 for the
// legacy 4:4:4 conversion). Progressive streams return an error.
func Decode(r io.Reader) (*Image, error) {
	br := decReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	d := &decoder{r: br}
	err := d.run()
	br.Reset(nil)
	decReaderPool.Put(br)
	// The Huffman tables never outlive the decode; recycle them. Each slot
	// holds a pointer no other slot shares (redefined tables are simply
	// dropped to the GC).
	for i := range d.dcDec {
		putDecTable(d.dcDec[i])
		putDecTable(d.acDec[i])
	}
	if err != nil {
		// A failed decode may have allocated its grids already; nothing
		// escapes, so hand them straight back.
		if d.img != nil {
			d.img.Recycle()
		}
		return nil, err
	}
	return d.img, nil
}

// decReaderPool recycles the decoder's input buffer. Nothing returned from
// Decode aliases it: segment bodies are copied out by readSegmentBody and
// entropy data is appended into its own buffer.
var decReaderPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 4096) }}

// maxDecodePixels bounds decoded image area so crafted SOF headers cannot
// trigger multi-gigabyte allocations (coefficient storage is 256 bytes per
// 64-pixel block per component). 2^26 pixels comfortably covers the paper's
// largest corpus images (2448x3264 = 8M pixels).
const maxDecodePixels = 1 << 26

type decComponent struct {
	id      byte
	quantID byte
	dcTable byte
	acTable byte
	hSamp   int
	vSamp   int
}

type decoder struct {
	r     *bufio.Reader
	img   *Image
	comps []decComponent

	quant [4]dct.QuantTable
	dcDec [4]*decTable
	acDec [4]*decTable

	restartInterval int
	sawSOF          bool
	sawScan         bool
	maxH, maxV      int
	// pending is a marker byte captured while buffering entropy-coded data,
	// handed back to the marker loop by nextMarker.
	pending byte
}

func (d *decoder) run() error {
	// Expect SOI.
	b0, err := d.r.ReadByte()
	if err != nil {
		return fmt.Errorf("jpegc: read SOI: %w", err)
	}
	b1, err := d.r.ReadByte()
	if err != nil {
		return fmt.Errorf("jpegc: read SOI: %w", err)
	}
	if b0 != 0xff || b1 != markerSOI {
		return fmt.Errorf("jpegc: missing SOI marker (got %#x %#x)", b0, b1)
	}

	for {
		marker, err := d.nextMarker()
		if err != nil {
			return err
		}
		switch {
		case marker == markerEOI:
			if !d.sawScan {
				return fmt.Errorf("jpegc: EOI before any scan")
			}
			return nil
		case marker == markerSOF0:
			if err := d.parseSOF(); err != nil {
				return err
			}
		case marker == 0xc1 || marker == 0xc2 || marker == 0xc3 ||
			(marker >= 0xc5 && marker <= 0xc7) || (marker >= 0xc9 && marker <= 0xcb) ||
			(marker >= 0xcd && marker <= 0xcf):
			return fmt.Errorf("jpegc: unsupported SOF marker %#x (only baseline SOF0)", marker)
		case marker == markerDQT:
			if err := d.parseDQT(); err != nil {
				return err
			}
		case marker == markerDHT:
			if err := d.parseDHT(); err != nil {
				return err
			}
		case marker == markerDRI:
			if err := d.parseDRI(); err != nil {
				return err
			}
		case marker == markerSOS:
			if err := d.parseSOSAndScan(); err != nil {
				return err
			}
		default:
			// Skip APPn, COM and other segments with a length field.
			if err := d.skipSegment(marker); err != nil {
				return err
			}
		}
	}
}

// nextMarker reads until the next 0xFF <nonzero> marker.
func (d *decoder) nextMarker() (byte, error) {
	if m := d.pending; m != 0 {
		d.pending = 0
		if m != 0xff { // a pending 0xFF is a fill byte, not a marker
			return m, nil
		}
	}
	for {
		b, err := d.r.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("jpegc: read marker: %w", err)
		}
		if b != 0xff {
			continue
		}
		// Skip fill bytes (0xFF) and find the marker code.
		for {
			m, err := d.r.ReadByte()
			if err != nil {
				return 0, fmt.Errorf("jpegc: read marker: %w", err)
			}
			if m == 0xff {
				continue
			}
			if m == 0x00 {
				break // stuffed byte, not a marker
			}
			return m, nil
		}
	}
}

func (d *decoder) readSegmentBody() ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(d.r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("jpegc: read segment length: %w", err)
	}
	n := int(lenBuf[0])<<8 | int(lenBuf[1])
	if n < 2 {
		return nil, fmt.Errorf("jpegc: segment length %d too short", n)
	}
	body := make([]byte, n-2)
	if _, err := io.ReadFull(d.r, body); err != nil {
		return nil, fmt.Errorf("jpegc: read segment body: %w", err)
	}
	return body, nil
}

func (d *decoder) skipSegment(marker byte) error {
	if marker >= markerRST0 && marker <= markerRST7 {
		return nil // restart markers are parameterless
	}
	if marker == 0x01 { // TEM, parameterless
		return nil
	}
	_, err := d.readSegmentBody()
	return err
}

func (d *decoder) parseDQT() error {
	body, err := d.readSegmentBody()
	if err != nil {
		return err
	}
	for len(body) > 0 {
		pq := body[0] >> 4
		tq := body[0] & 0x0f
		if tq > 3 {
			return fmt.Errorf("jpegc: DQT table id %d out of range", tq)
		}
		body = body[1:]
		switch pq {
		case 0:
			if len(body) < dct.BlockLen {
				return fmt.Errorf("jpegc: truncated 8-bit DQT")
			}
			for zz := 0; zz < dct.BlockLen; zz++ {
				d.quant[tq][dct.ZigZag[zz]] = uint16(body[zz])
			}
			body = body[dct.BlockLen:]
		case 1:
			if len(body) < 2*dct.BlockLen {
				return fmt.Errorf("jpegc: truncated 16-bit DQT")
			}
			for zz := 0; zz < dct.BlockLen; zz++ {
				d.quant[tq][dct.ZigZag[zz]] = uint16(body[2*zz])<<8 | uint16(body[2*zz+1])
			}
			body = body[2*dct.BlockLen:]
		default:
			return fmt.Errorf("jpegc: DQT precision %d invalid", pq)
		}
		for i, v := range d.quant[tq] {
			if v < 1 || v > 255 {
				return fmt.Errorf("jpegc: DQT table %d step %d at index %d out of range [1,255]", tq, v, i)
			}
		}
	}
	return nil
}

func (d *decoder) parseDHT() error {
	body, err := d.readSegmentBody()
	if err != nil {
		return err
	}
	for len(body) > 0 {
		if len(body) < 17 {
			return fmt.Errorf("jpegc: truncated DHT header")
		}
		class := body[0] >> 4
		id := body[0] & 0x0f
		if class > 1 || id > 3 {
			return fmt.Errorf("jpegc: DHT class %d id %d out of range", class, id)
		}
		var spec HuffmanSpec
		total := 0
		for i := 0; i < maxCodeLength; i++ {
			spec.Counts[i] = body[1+i]
			total += int(body[1+i])
		}
		if len(body) < 17+total {
			return fmt.Errorf("jpegc: truncated DHT values")
		}
		// newDecTable copies the values out, so the spec may alias body.
		spec.Values = body[17 : 17+total]
		body = body[17+total:]
		tbl, err := newDecTable(&spec)
		if err != nil {
			return fmt.Errorf("jpegc: DHT class %d id %d: %w", class, id, err)
		}
		if class == 0 {
			d.dcDec[id] = tbl
		} else {
			d.acDec[id] = tbl
		}
	}
	return nil
}

func (d *decoder) parseDRI() error {
	body, err := d.readSegmentBody()
	if err != nil {
		return err
	}
	if len(body) != 2 {
		return fmt.Errorf("jpegc: DRI segment length %d, want 2", len(body))
	}
	d.restartInterval = int(body[0])<<8 | int(body[1])
	return nil
}

func (d *decoder) parseSOF() error {
	if d.sawSOF {
		return fmt.Errorf("jpegc: multiple SOF markers")
	}
	body, err := d.readSegmentBody()
	if err != nil {
		return err
	}
	if len(body) < 6 {
		return fmt.Errorf("jpegc: truncated SOF")
	}
	if body[0] != 8 {
		return fmt.Errorf("jpegc: sample precision %d unsupported (only 8-bit)", body[0])
	}
	h := int(body[1])<<8 | int(body[2])
	w := int(body[3])<<8 | int(body[4])
	nComp := int(body[5])
	if nComp != 1 && nComp != 3 {
		return fmt.Errorf("jpegc: %d components unsupported (only 1 or 3)", nComp)
	}
	if len(body) < 6+3*nComp {
		return fmt.Errorf("jpegc: truncated SOF component list")
	}
	if w <= 0 || h <= 0 {
		return fmt.Errorf("jpegc: invalid dimensions %dx%d", w, h)
	}
	if w*h > maxDecodePixels {
		return fmt.Errorf("jpegc: image %dx%d exceeds the %d-pixel decode limit", w, h, maxDecodePixels)
	}
	d.comps = make([]decComponent, nComp)
	d.maxH, d.maxV = 1, 1
	for i := 0; i < nComp; i++ {
		c := body[6+3*i : 9+3*i]
		d.comps[i] = decComponent{
			id:      c[0],
			hSamp:   int(c[1] >> 4),
			vSamp:   int(c[1] & 0x0f),
			quantID: c[2],
		}
		hs, vs := d.comps[i].hSamp, d.comps[i].vSamp
		if hs < 1 || hs > 2 || vs < 1 || vs > 2 {
			return fmt.Errorf("jpegc: component %d uses %dx%d sampling; factors must be 1 or 2", i, hs, vs)
		}
		if d.comps[i].quantID > 3 {
			return fmt.Errorf("jpegc: component %d quant table id %d out of range", i, d.comps[i].quantID)
		}
		if hs > d.maxH {
			d.maxH = hs
		}
		if vs > d.maxV {
			d.maxV = vs
		}
	}
	if nComp == 1 && (d.maxH != 1 || d.maxV != 1) {
		return fmt.Errorf("jpegc: grayscale stream with sampling factors %dx%d", d.maxH, d.maxV)
	}
	// Allocate per-component grids padded to whole MCUs; finishSampling
	// trims the padding back to each component's nominal grid after the
	// scan.
	mcusX := (w + 8*d.maxH - 1) / (8 * d.maxH)
	mcusY := (h + 8*d.maxV - 1) / (8 * d.maxV)
	d.img = &Image{W: w, H: h, Comps: make([]Component, nComp)}
	for i := range d.img.Comps {
		bw := mcusX * d.comps[i].hSamp
		bh := mcusY * d.comps[i].vSamp
		d.img.Comps[i] = Component{
			BlocksW: bw,
			BlocksH: bh,
			Blocks:  getBlockSlab(bw * bh),
		}
	}
	d.sawSOF = true
	return nil
}

func (d *decoder) parseSOSAndScan() error {
	if !d.sawSOF {
		return fmt.Errorf("jpegc: SOS before SOF")
	}
	body, err := d.readSegmentBody()
	if err != nil {
		return err
	}
	if len(body) < 1 {
		return fmt.Errorf("jpegc: truncated SOS")
	}
	nScan := int(body[0])
	if nScan != len(d.comps) {
		return fmt.Errorf("jpegc: scan has %d components, frame has %d (non-interleaved unsupported)",
			nScan, len(d.comps))
	}
	if len(body) < 1+2*nScan+3 {
		return fmt.Errorf("jpegc: truncated SOS component list")
	}
	for i := 0; i < nScan; i++ {
		cs := body[1+2*i]
		tables := body[2+2*i]
		if tables>>4 > 3 || tables&0x0f > 3 {
			return fmt.Errorf("jpegc: scan huffman table ids %#x out of range", tables)
		}
		found := false
		for j := range d.comps {
			if d.comps[j].id == cs {
				d.comps[j].dcTable = tables >> 4
				d.comps[j].acTable = tables & 0x0f
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("jpegc: scan references unknown component %d", cs)
		}
	}
	ss, se := body[1+2*nScan], body[2+2*nScan]
	if ss != 0 || se != 63 {
		return fmt.Errorf("jpegc: spectral selection %d..%d unsupported (baseline only)", ss, se)
	}

	// Copy quantization tables into the image components, rejecting
	// references to tables no DQT segment defined.
	for i := range d.comps {
		tbl := d.quant[d.comps[i].quantID]
		if err := tbl.Validate(); err != nil {
			return fmt.Errorf("jpegc: component %d references undefined or invalid quant table %d: %w",
				i, d.comps[i].quantID, err)
		}
		d.img.Comps[i].Quant = tbl
	}

	if err := d.decodeScan(); err != nil {
		return err
	}
	if err := d.finishSampling(); err != nil {
		return err
	}
	d.sawScan = true
	return nil
}

// segGrainMCUs sizes the parallel chunks of the restart-segment decode: a
// chunk always covers at least this many MCUs' worth of segments, so tiny
// restart intervals do not drown the pool in single-MCU tasks.
const segGrainMCUs = 64

// decodeScan buffers the scan's entropy-coded data, splits it at restart
// markers, and decodes the segments — concurrently when the stream has
// restart intervals and more than one segment. Each segment starts with
// fresh DC predictors and writes a disjoint MCU range, so parallel and
// serial decodes are bit-identical (TestRestartParallelDecodeDeterministic).
func (d *decoder) decodeScan() error {
	for ci := range d.comps {
		if d.dcDec[d.comps[ci].dcTable] == nil || d.acDec[d.comps[ci].acTable] == nil {
			return fmt.Errorf("jpegc: scan uses undefined huffman table (component %d)", ci)
		}
	}
	buf, err := d.readEntropyData(getByteBuf())
	defer putByteBuf(buf)
	if err != nil {
		return err
	}
	segs := splitRestartSegments(buf)

	mcusX := d.img.Comps[0].BlocksW / d.comps[0].hSamp
	mcusY := d.img.Comps[0].BlocksH / d.comps[0].vSamp
	totalMCUs := mcusX * mcusY
	interval := d.restartInterval
	if interval <= 0 {
		if len(segs) != 1 {
			return fmt.Errorf("jpegc: restart marker in scan without DRI")
		}
		return d.decodeSegment(segs[0], 0, totalMCUs, mcusX)
	}
	if want := (totalMCUs + interval - 1) / interval; len(segs) != want {
		return fmt.Errorf("jpegc: scan has %d restart segments, want %d", len(segs), want)
	}
	// Batch whole segments so each chunk decodes >= segGrainMCUs MCUs.
	grain := 1
	if interval < segGrainMCUs {
		grain = (segGrainMCUs + interval - 1) / interval
	}
	errs := make([]error, len(segs))
	parallel.For(len(segs), grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mcuLo := i * interval
			mcuHi := mcuLo + interval
			if mcuHi > totalMCUs {
				mcuHi = totalMCUs
			}
			errs[i] = d.decodeSegment(segs[i], mcuLo, mcuHi, mcusX)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// readEntropyData appends the scan's entropy-coded bytes (stuffing and
// restart markers included) to buf until a non-restart marker or EOF, and
// returns the extended buffer. A terminating marker is stashed in d.pending
// for the outer marker loop.
func (d *decoder) readEntropyData(buf []byte) ([]byte, error) {
	for {
		chunk, err := d.r.ReadSlice(0xff)
		// chunk aliases the bufio internal buffer and is invalidated by the
		// next read, so it must be copied into buf before touching d.r again.
		buf = append(buf, chunk...)
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			// EOF with no 0xFF: keep what we have; the bit readers will
			// report precise truncation errors if MCUs are missing.
			if err == io.EOF {
				return buf, nil
			}
			return buf, fmt.Errorf("jpegc: read entropy data: %w", err)
		}
		next, err := d.r.ReadByte()
		if err != nil {
			return buf, nil // dangling 0xFF at EOF
		}
		switch {
		case next == 0x00:
			buf = append(buf, 0x00) // stuffed data byte, keep 0xFF00
		case next >= markerRST0 && next <= markerRST7:
			buf = append(buf, next) // segment boundary, keep the marker
		case next == 0xff:
			// Fill byte; drop it and rescan from the second 0xFF.
			buf = buf[:len(buf)-1]
			if err := d.r.UnreadByte(); err != nil {
				return buf, err
			}
		default:
			buf = buf[:len(buf)-1]
			d.pending = next
			return buf, nil
		}
	}
}

// splitRestartSegments splits buffered entropy data at RSTn markers,
// returning per-segment sub-slices with the markers stripped. Stuffed
// 0xFF00 pairs stay inside their segment for the bit readers to unstuff.
func splitRestartSegments(data []byte) [][]byte {
	segs := make([][]byte, 0, 1)
	start, p := 0, 0
	for {
		i := bytes.IndexByte(data[p:], 0xff)
		if i < 0 || p+i+1 >= len(data) {
			break
		}
		p += i
		if next := data[p+1]; next >= markerRST0 && next <= markerRST7 {
			segs = append(segs, data[start:p])
			p += 2
			start = p
		} else {
			p += 2 // stuffed byte (or stray marker the bit reader will reject)
		}
	}
	return append(segs, data[start:])
}

// decodeSegment entropy-decodes MCUs [mcuLo, mcuHi) from one restart
// segment, starting from zeroed DC predictors.
func (d *decoder) decodeSegment(data []byte, mcuLo, mcuHi, mcusX int) error {
	br := newBitReader(data)
	var pred [4]int32
	for mcu := mcuLo; mcu < mcuHi; mcu++ {
		mx, my := mcu%mcusX, mcu/mcusX
		for ci := range d.comps {
			dcT := d.dcDec[d.comps[ci].dcTable]
			acT := d.acDec[d.comps[ci].acTable]
			for v := 0; v < d.comps[ci].vSamp; v++ {
				for hh := 0; hh < d.comps[ci].hSamp; hh++ {
					bx := mx*d.comps[ci].hSamp + hh
					by := my*d.comps[ci].vSamp + v
					if err := decodeBlock(&br, dcT, acT, &pred[ci], d.img.Comps[ci].Block(bx, by)); err != nil {
						return fmt.Errorf("jpegc: block (%d,%d) component %d: %w", bx, by, ci, err)
					}
				}
			}
		}
	}
	return nil
}

// decodeBlock entropy-decodes one block into *b, which must be zeroed
// (freshly allocated component storage is).
func decodeBlock(br *bitReader, dcT, acT *decTable, pred *int32, b *dct.Block) error {
	cat, err := dcT.decode(br)
	if err != nil {
		return err
	}
	if cat > 11 {
		return fmt.Errorf("jpegc: DC category %d out of range", cat)
	}
	bits, err := br.ReadBits(int(cat))
	if err != nil {
		return err
	}
	diff := extendMagnitude(bits, int(cat))
	*pred += diff
	// A conforming baseline stream keeps the accumulated DC inside the
	// 11-bit coefficient range; a hostile diff sequence can walk the
	// predictor anywhere, so bound it here or the image would decode to
	// coefficients the encoder (correctly) refuses to represent.
	if *pred < dct.CoeffMin || *pred > dct.CoeffMax {
		return fmt.Errorf("jpegc: DC coefficient %d out of range [%d,%d]", *pred, dct.CoeffMin, dct.CoeffMax)
	}
	b[0] = *pred

	zz := 1
	for zz < dct.BlockLen {
		sym, err := acT.decode(br)
		if err != nil {
			return err
		}
		run := int(sym >> 4)
		size := int(sym & 0x0f)
		switch {
		case size == 0 && run == 0: // EOB
			return nil
		case size == 0 && run == 15: // ZRL
			zz += 16
		case size == 0:
			return fmt.Errorf("jpegc: invalid AC symbol %#x", sym)
		case size > 10:
			// Baseline AC categories stop at 10; larger sizes would decode
			// to coefficients outside [-1023, 1023].
			return fmt.Errorf("jpegc: AC category %d out of range", size)
		default:
			zz += run
			if zz >= dct.BlockLen {
				return fmt.Errorf("jpegc: AC run overflows block")
			}
			bits, err := br.ReadBits(size)
			if err != nil {
				return err
			}
			b[dct.ZigZag[zz]] = extendMagnitude(bits, size)
			zz++
		}
	}
	return nil
}
