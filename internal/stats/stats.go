// Package stats provides the descriptive statistics and distribution tools
// the experiment harness reports: every table in the paper lists
// mean/median/std/min/max, and the attack figures plot CDFs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the five-number description the paper's tables use.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Std    float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of the samples. It returns an error for an
// empty sample set.
func Summarize(samples []float64) (Summary, error) {
	if len(samples) == 0 {
		return Summary{}, fmt.Errorf("stats: no samples")
	}
	s := Summary{N: len(samples), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(samples))
	var ss float64
	for _, v := range samples {
		d := v - s.Mean
		ss += d * d
	}
	if len(samples) > 1 {
		s.Std = math.Sqrt(ss / float64(len(samples)-1))
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// String renders the summary in table-row form.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.3f median=%.3f std=%.3f min=%.3f max=%.3f (n=%d)",
		s.Mean, s.Median, s.Std, s.Min, s.Max, s.N)
}

// CDFPoint is one point of an empirical distribution function.
type CDFPoint struct {
	X float64
	P float64
}

// CDF computes the empirical CDF of the samples at up to maxPoints evenly
// spaced sample quantiles (all points if maxPoints <= 0 or exceeds N).
func CDF(samples []float64, maxPoints int) ([]CDFPoint, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("stats: no samples")
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	n := len(sorted)
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	out := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := (i + 1) * n / maxPoints
		out = append(out, CDFPoint{X: sorted[idx-1], P: float64(idx) / float64(n)})
	}
	return out, nil
}

// Fraction returns the fraction of samples satisfying the predicate.
func Fraction(samples []float64, pred func(float64) bool) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := 0
	for _, v := range samples {
		if pred(v) {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

// Table is a simple fixed-column text table for experiment output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
