package stats

import (
	"math"
	mrand "math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistBucketRoundTrip(t *testing.T) {
	// Every value's bucket midpoint must be within the log-linear relative
	// error bound (1/histSubCount) of the value itself.
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 4097,
		1e6, 5e6, 123456789, 1e9, 7e10, 1e12} {
		i := histBucket(v)
		got := histValue(i)
		if v < histSubCount {
			if got != v {
				t.Fatalf("histValue(histBucket(%d)) = %d, want exact", v, got)
			}
			continue
		}
		rel := math.Abs(float64(got-v)) / float64(v)
		if rel > 1.0/histSubCount {
			t.Fatalf("histValue(histBucket(%d)) = %d, relative error %.4f > %.4f",
				v, got, rel, 1.0/histSubCount)
		}
	}
}

func TestHistBucketMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<20; v += 7 {
		i := histBucket(v)
		if i < prev {
			t.Fatalf("bucket index decreased at v=%d: %d < %d", v, i, prev)
		}
		prev = i
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 microseconds, uniformly.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	snap := h.Snapshot()
	if snap.Count != 1000 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.MinNs != 1000 {
		t.Errorf("min = %dns, want 1000", snap.MinNs)
	}
	if snap.MaxNs != 1000000 {
		t.Errorf("max = %dns, want 1000000", snap.MaxNs)
	}
	check := func(name string, got int64, want float64) {
		t.Helper()
		if rel := math.Abs(float64(got)-want) / want; rel > 0.05 {
			t.Errorf("%s = %dns, want ~%.0fns (rel err %.3f)", name, got, want, rel)
		}
	}
	check("p50", snap.P50Ns, 500e3)
	check("p90", snap.P90Ns, 900e3)
	check("p99", snap.P99Ns, 990e3)
	if snap.P50Ns > snap.P90Ns || snap.P90Ns > snap.P99Ns || snap.P99Ns > snap.MaxNs {
		t.Errorf("quantiles not monotone: %+v", snap)
	}
	if math.Abs(snap.MeanNs-500500) > 1 {
		t.Errorf("mean = %f, want 500500 (sum is exact)", snap.MeanNs)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if snap := h.Snapshot(); snap != (HistogramSnapshot{}) {
		t.Fatalf("empty snapshot = %+v", snap)
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(-time.Second) // clamps to 0
	snap := h.Snapshot()
	if snap.Count != 2 || snap.MinNs != 0 || snap.MaxNs != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := mrand.New(mrand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(w))
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*per {
		t.Fatalf("count = %d, want %d", snap.Count, workers*per)
	}
	// Uniform over [0,1s): p50 within 5% of 500ms.
	if rel := math.Abs(float64(snap.P50Ns)-500e6) / 500e6; rel > 0.05 {
		t.Errorf("p50 = %dns, want ~500ms", snap.P50Ns)
	}
}
