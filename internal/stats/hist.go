package stats

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is an HDR-style log-linear latency histogram: values are bucketed
// by power-of-two magnitude with histSubCount linear sub-buckets per
// magnitude, bounding the relative quantile error to 1/histSubCount (~3%)
// across the whole nanosecond range. Recording is lock-free (one atomic add
// per sample plus min/max maintenance), so request paths can record on every
// call; Snapshot walks the bucket array and derives the quantiles the
// serving-path SLOs gate on.
//
// The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
	// min holds the minimum sample plus one, so the zero value means "no
	// samples yet" and a genuine 0ns minimum stays representable.
	min atomic.Int64
}

const (
	// histSubBits is the per-magnitude linear resolution: 2^histSubBits
	// sub-buckets per power of two.
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	// histBuckets covers int64 nanoseconds: magnitudes 0..63 less the
	// histSubBits folded into the linear region, each histSubCount wide.
	histBuckets = histSubCount * (64 - histSubBits)
)

// histBucket maps a non-negative value to its bucket index.
func histBucket(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 - histSubBits
	i := e*histSubCount + int(v>>uint(e))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// histValue returns a representative (midpoint) value for a bucket index —
// the inverse of histBucket up to sub-bucket width.
func histValue(i int) int64 {
	if i < 2*histSubCount {
		return int64(i)
	}
	e := i/histSubCount - 1
	m := int64(i - e*histSubCount)
	return m<<uint(e) + 1<<uint(e)/2
}

// Record adds one duration sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= v+1 {
			break
		}
		if h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time summary of a Histogram, shaped for
// JSON statz bodies and loadgen reports. All values are nanoseconds.
type HistogramSnapshot struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"meanNs"`
	MinNs  int64   `json:"minNs"`
	MaxNs  int64   `json:"maxNs"`
	P50Ns  int64   `json:"p50Ns"`
	P90Ns  int64   `json:"p90Ns"`
	P99Ns  int64   `json:"p99Ns"`
	P999Ns int64   `json:"p999Ns"`
}

// Snapshot summarizes the samples recorded so far. Concurrent Records may or
// may not be included; the snapshot is internally consistent enough for
// monitoring (quantiles are derived from one walk over the bucket counts).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Count:  total,
		MeanNs: float64(h.sum.Load()) / float64(total),
		MinNs:  h.min.Load() - 1,
		MaxNs:  h.max.Load(),
	}
	qs := [4]float64{0.50, 0.90, 0.99, 0.999}
	out := [4]*int64{&snap.P50Ns, &snap.P90Ns, &snap.P99Ns, &snap.P999Ns}
	qi := 0
	var seen uint64
	for i := 0; i < histBuckets && qi < len(qs); i++ {
		seen += counts[i]
		for qi < len(qs) && float64(seen) >= qs[qi]*float64(total) {
			v := histValue(i)
			if v > snap.MaxNs {
				v = snap.MaxNs
			}
			if v < snap.MinNs {
				v = snap.MinNs
			}
			*out[qi] = v
			qi++
		}
	}
	return snap
}

// Quantile returns the value at quantile q in [0,1] (nanoseconds), 0 when
// empty.
func (h *Histogram) Quantile(q float64) int64 {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += counts[i]
		if float64(seen) >= q*float64(total) {
			v := histValue(i)
			if mx := h.max.Load(); v > mx {
				v = mx
			}
			return v
		}
	}
	return h.max.Load()
}

// Count reports how many samples have been recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }
