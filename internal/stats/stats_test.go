package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEvenCountMedian(t *testing.T) {
	s, err := Summarize([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 2.5 {
		t.Errorf("median = %v, want 2.5", s.Median)
	}
}

func TestSummarizeSingleAndEmpty(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Errorf("single-sample summary %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 {
			return true
		}
		s, err := Summarize(samples)
		if err != nil {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	pts, err := CDF([]float64{3, 1, 2, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X != 1 || pts[0].P != 0.25 || pts[3].X != 4 || pts[3].P != 1 {
		t.Errorf("CDF = %+v", pts)
	}
	// Monotone in both coordinates.
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].P < pts[i-1].P {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	sub, err := CDF([]float64{5, 6, 7, 8, 9, 10, 11, 12}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 4 || sub[3].P != 1 {
		t.Errorf("subsampled CDF %+v", sub)
	}
	if _, err := CDF(nil, 5); err == nil {
		t.Error("empty input accepted")
	}
}

func TestFraction(t *testing.T) {
	got := Fraction([]float64{1, 2, 3, 4}, func(v float64) bool { return v > 2 })
	if got != 0.5 {
		t.Errorf("fraction = %v", got)
	}
	if Fraction(nil, func(float64) bool { return true }) != 0 {
		t.Error("empty fraction should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "Demo", Columns: []string{"name", "value"}}
	tbl.AddRow("alpha", 1.23456)
	tbl.AddRow("b", 42)
	out := tbl.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") ||
		!strings.Contains(out, "1.235") || !strings.Contains(out, "42") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}
