package imgplane

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func randomImage(t *testing.T, w, h, ch int, seed int64) *Image {
	t.Helper()
	img, err := New(w, h, ch)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, p := range img.Planes {
		for i := range p.Pix {
			p.Pix[i] = float32(rng.NormFloat64() * 500) // deliberately out of 8-bit range
		}
	}
	return img
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	for _, tc := range []struct{ w, h, ch int }{
		{1, 1, 1}, {7, 3, 3}, {33, 17, 1}, {64, 48, 3},
	} {
		img := randomImage(t, tc.w, tc.h, tc.ch, int64(tc.w))
		data, err := img.MarshalBinary()
		if err != nil {
			t.Fatalf("%dx%d/%d: %v", tc.w, tc.h, tc.ch, err)
		}
		back, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%dx%d/%d: %v", tc.w, tc.h, tc.ch, err)
		}
		if back.W() != tc.w || back.H() != tc.h || back.Channels() != tc.ch {
			t.Fatalf("shape changed: %dx%d/%d", back.W(), back.H(), back.Channels())
		}
		for ci := range img.Planes {
			for i := range img.Planes[ci].Pix {
				if back.Planes[ci].Pix[i] != img.Planes[ci].Pix[i] {
					t.Fatalf("sample (%d,%d) changed", ci, i)
				}
			}
		}
	}
}

func TestDecodeBinaryRejects(t *testing.T) {
	img := randomImage(t, 8, 8, 3, 1)
	data, err := img.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   append([]byte("XXXX"), data[4:]...),
		"truncated":   data[:len(data)-5],
		"header only": data[:12],
	}
	for name, d := range cases {
		if _, err := DecodeBinary(bytes.NewReader(d)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Version bump rejected.
	bad := append([]byte(nil), data...)
	bad[4] = 99
	if _, err := DecodeBinary(bytes.NewReader(bad)); err == nil {
		t.Error("future version accepted")
	}
	// Dimension bomb rejected before allocation.
	bomb := append([]byte(nil), data[:16]...)
	bomb[8], bomb[9], bomb[10], bomb[11] = 0xff, 0xff, 0xff, 0x7f // W
	if _, err := DecodeBinary(bytes.NewReader(bomb)); err == nil {
		t.Error("dimension bomb accepted")
	}
}

func TestClamp8AndQuantize8(t *testing.T) {
	img, _ := New(2, 2, 1)
	img.Planes[0].Pix = []float32{-10, 0.4, 254.6, 300}
	clamped := img.Clone().Clamp8()
	want := []float32{0, 0.4, 254.6, 255}
	for i, v := range clamped.Planes[0].Pix {
		if v != want[i] {
			t.Errorf("Clamp8[%d] = %v, want %v", i, v, want[i])
		}
	}
	quantized := img.Clone().Quantize8()
	wantQ := []float32{0, 0, 255, 255}
	for i, v := range quantized.Planes[0].Pix {
		if v != wantQ[i] {
			t.Errorf("Quantize8[%d] = %v, want %v", i, v, wantQ[i])
		}
	}
}

func TestImagePSNR(t *testing.T) {
	a := randomImage(t, 16, 16, 3, 2)
	same, err := ImagePSNR(a, a)
	if err != nil || !math.IsInf(same, 1) {
		t.Errorf("self PSNR %v, %v", same, err)
	}
	b := a.Clone()
	for _, p := range b.Planes {
		for i := range p.Pix {
			p.Pix[i] += 10
		}
	}
	psnr, err := ImagePSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(255*255/100.0)
	if math.Abs(psnr-want) > 1e-6 {
		t.Errorf("PSNR %v, want %v", psnr, want)
	}
	mono, _ := New(16, 16, 1)
	if _, err := ImagePSNR(a, mono); err == nil {
		t.Error("channel mismatch accepted")
	}
}

func TestToStdImageGrayscale(t *testing.T) {
	img, _ := New(4, 4, 1)
	for i := range img.Planes[0].Pix {
		img.Planes[0].Pix[i] = float32(i * 16)
	}
	std := img.ToStdImage()
	if std.Bounds().Dx() != 4 || std.Bounds().Dy() != 4 {
		t.Fatalf("bounds %v", std.Bounds())
	}
	r, g, b, _ := std.At(1, 0).RGBA()
	if r != g || g != b {
		t.Error("grayscale output not gray")
	}
}

func TestNewPlanePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPlane(0,5) did not panic")
		}
	}()
	NewPlane(0, 5)
}
