package imgplane

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary plane codec: a minimal lossless container for unclamped float32
// planar images ("PLNR" format). The PSP simulator uses it to hand
// transformed pixels to receivers without forcing them through a lossy
// 8-bit container, standing in for a high-bit-depth delivery format. The
// perturbed samples routinely exceed [0, 255], so an 8-bit PNG would
// destroy the information shadow-ROI reconstruction needs.

var planarMagic = [4]byte{'P', 'L', 'N', 'R'}

const planarVersion = 1

// maxPlanarDim bounds decoded dimensions to keep malformed headers from
// allocating absurd buffers.
const maxPlanarDim = 1 << 16

// EncodeBinary writes the image in the PLNR format.
func (m *Image) EncodeBinary(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	hdr := struct {
		Magic    [4]byte
		Version  uint16
		Channels uint16
		W, H     uint32
	}{planarMagic, planarVersion, uint16(m.Channels()), uint32(m.W()), uint32(m.H())}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return fmt.Errorf("imgplane: write header: %w", err)
	}
	buf := make([]byte, 4*m.W())
	for _, p := range m.Planes {
		for y := 0; y < p.H; y++ {
			row := p.Pix[y*p.W : (y+1)*p.W]
			for i, v := range row {
				binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
			}
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("imgplane: write samples: %w", err)
			}
		}
	}
	return nil
}

// MarshalBinary returns the PLNR encoding as bytes.
func (m *Image) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.EncodeBinary(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeBinary parses a PLNR stream.
func DecodeBinary(r io.Reader) (*Image, error) {
	var hdr struct {
		Magic    [4]byte
		Version  uint16
		Channels uint16
		W, H     uint32
	}
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("imgplane: read header: %w", err)
	}
	if hdr.Magic != planarMagic {
		return nil, fmt.Errorf("imgplane: bad magic %q", hdr.Magic)
	}
	if hdr.Version != planarVersion {
		return nil, fmt.Errorf("imgplane: unsupported version %d", hdr.Version)
	}
	if hdr.Channels != 1 && hdr.Channels != 3 {
		return nil, fmt.Errorf("imgplane: %d channels", hdr.Channels)
	}
	if hdr.W == 0 || hdr.H == 0 || hdr.W > maxPlanarDim || hdr.H > maxPlanarDim {
		return nil, fmt.Errorf("imgplane: dimensions %dx%d out of range", hdr.W, hdr.H)
	}
	img, err := New(int(hdr.W), int(hdr.H), int(hdr.Channels))
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 4*hdr.W)
	for _, p := range img.Planes {
		for y := 0; y < p.H; y++ {
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, fmt.Errorf("imgplane: read samples: %w", err)
			}
			for i := 0; i < p.W; i++ {
				p.Pix[y*p.W+i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
			}
		}
	}
	return img, nil
}
