// Package imgplane provides the planar image model used throughout the
// PuPPIeS pipeline: full-range YUV (JFIF BT.601) images stored as unclamped
// float32 planes.
//
// Keeping samples unclamped is deliberate. PuPPIeS reconstruction after a
// PSP-side pixel-domain transform relies on the transform being linear:
// f(B + P) = f(B) + f(P) (paper §IV-C.1). Clamping to [0, 255] inside the
// transform would break linearity for perturbed regions, so the PSP pipeline
// in this codebase operates on unclamped planes and clamps only at final
// display/export time.
package imgplane

import (
	"fmt"
	"image"
	"image/color"
	"math"

	"puppies/internal/parallel"
)

// rowGrain is the parallel chunk size for per-pixel conversion loops, in
// image rows.
const rowGrain = 64

// Plane is a single image channel with unclamped float32 samples in
// row-major order.
type Plane struct {
	W, H int
	Pix  []float32
}

// NewPlane allocates a zeroed plane of the given dimensions.
//
// Invariant (audited): w and h must be positive. This panic is a
// programmer-error guard, not an input validator — every path that starts
// from untrusted bytes or caller-supplied values validates dimensions
// before reaching it (jpegc.parseSOF rejects zero/oversized SOF dims,
// imgplane.DecodeBinary and imgplane.New return errors, FromStdImage
// rejects empty bounds), so all remaining callers pass dimensions derived
// from an already-validated image.
func NewPlane(w, h int) *Plane {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgplane: invalid plane size %dx%d", w, h))
	}
	return &Plane{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the sample at (x, y). Coordinates outside the plane are clamped
// to the nearest edge sample (replicate padding), which is the conventional
// boundary handling for block and filter operations.
func (p *Plane) At(x, y int) float32 {
	if x < 0 {
		x = 0
	} else if x >= p.W {
		x = p.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= p.H {
		y = p.H - 1
	}
	return p.Pix[y*p.W+x]
}

// Set writes the sample at (x, y). Out-of-bounds writes are ignored.
func (p *Plane) Set(x, y int, v float32) {
	if x < 0 || x >= p.W || y < 0 || y >= p.H {
		return
	}
	p.Pix[y*p.W+x] = v
}

// Clone returns a deep copy of the plane.
func (p *Plane) Clone() *Plane {
	out := NewPlane(p.W, p.H)
	copy(out.Pix, p.Pix)
	return out
}

// Add returns p + o sample-wise. Planes must have equal dimensions.
func (p *Plane) Add(o *Plane) (*Plane, error) {
	if p.W != o.W || p.H != o.H {
		return nil, fmt.Errorf("imgplane: add size mismatch %dx%d vs %dx%d", p.W, p.H, o.W, o.H)
	}
	out := NewPlane(p.W, p.H)
	for i := range p.Pix {
		out.Pix[i] = p.Pix[i] + o.Pix[i]
	}
	return out, nil
}

// Sub returns p - o sample-wise. Planes must have equal dimensions.
func (p *Plane) Sub(o *Plane) (*Plane, error) {
	if p.W != o.W || p.H != o.H {
		return nil, fmt.Errorf("imgplane: sub size mismatch %dx%d vs %dx%d", p.W, p.H, o.W, o.H)
	}
	out := NewPlane(p.W, p.H)
	for i := range p.Pix {
		out.Pix[i] = p.Pix[i] - o.Pix[i]
	}
	return out, nil
}

// Image is a planar YUV image. Planes holds either one plane (monochrome,
// Y only) or three planes (Y, U, V), all of identical dimensions (4:4:4).
type Image struct {
	Planes []*Plane
}

// Channel indices into Image.Planes for color images.
const (
	ChannelY = 0
	ChannelU = 1
	ChannelV = 2
)

// New allocates a zeroed image with the given number of channels (1 or 3).
func New(w, h, channels int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("imgplane: invalid image size %dx%d", w, h)
	}
	if channels != 1 && channels != 3 {
		return nil, fmt.Errorf("imgplane: channels must be 1 or 3, got %d", channels)
	}
	img := &Image{Planes: make([]*Plane, channels)}
	for i := range img.Planes {
		img.Planes[i] = NewPlane(w, h)
	}
	return img, nil
}

// W returns the image width in pixels.
func (m *Image) W() int { return m.Planes[0].W }

// H returns the image height in pixels.
func (m *Image) H() int { return m.Planes[0].H }

// Channels returns the number of planes (1 or 3).
func (m *Image) Channels() int { return len(m.Planes) }

// Clone returns a deep copy of the image.
func (m *Image) Clone() *Image {
	out := &Image{Planes: make([]*Plane, len(m.Planes))}
	for i, p := range m.Planes {
		out.Planes[i] = p.Clone()
	}
	return out
}

// Validate checks structural invariants: 1 or 3 planes, all the same size.
func (m *Image) Validate() error {
	if len(m.Planes) != 1 && len(m.Planes) != 3 {
		return fmt.Errorf("imgplane: image has %d planes, want 1 or 3", len(m.Planes))
	}
	w, h := m.Planes[0].W, m.Planes[0].H
	for i, p := range m.Planes {
		if p.W != w || p.H != h {
			return fmt.Errorf("imgplane: plane %d is %dx%d, want %dx%d", i, p.W, p.H, w, h)
		}
		if len(p.Pix) != p.W*p.H {
			return fmt.Errorf("imgplane: plane %d has %d samples, want %d", i, len(p.Pix), p.W*p.H)
		}
	}
	return nil
}

// Clamp8 limits every sample to the displayable 8-bit range [0, 255],
// in place, and returns the image. Standard 8-bit image pipelines (libjpeg
// and friends) clamp at every decode step; PuPPIeS's lossless-linear PSP
// path avoids this, but baseline comparisons (P3) model the clamped flow.
func (m *Image) Clamp8() *Image {
	for _, p := range m.Planes {
		for i, v := range p.Pix {
			if v < 0 {
				p.Pix[i] = 0
			} else if v > 255 {
				p.Pix[i] = 255
			}
		}
	}
	return m
}

// Quantize8 rounds every sample to the nearest integer and clamps to
// [0, 255], in place, and returns the image: the effect of materializing
// the image in a standard uint8 pixel buffer.
func (m *Image) Quantize8() *Image {
	for _, p := range m.Planes {
		for i, v := range p.Pix {
			r := float32(math.Round(float64(v)))
			if r < 0 {
				r = 0
			} else if r > 255 {
				r = 255
			}
			p.Pix[i] = r
		}
	}
	return m
}

// RGBToYUV converts full-range 8-bit RGB to JFIF BT.601 YUV. U and V are
// centered at 128.
func RGBToYUV(r, g, b float32) (y, u, v float32) {
	y = 0.299*r + 0.587*g + 0.114*b
	u = -0.168736*r - 0.331264*g + 0.5*b + 128
	v = 0.5*r - 0.418688*g - 0.081312*b + 128
	return y, u, v
}

// YUVToRGB converts JFIF BT.601 YUV back to full-range RGB. The result is
// not clamped; callers exporting to 8-bit images should use clamp8.
func YUVToRGB(y, u, v float32) (r, g, b float32) {
	u -= 128
	v -= 128
	r = y + 1.402*v
	g = y - 0.344136*u - 0.714136*v
	b = y + 1.772*u
	return r, g, b
}

func clamp8(v float32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// FromStdImage converts any stdlib image to a 3-channel planar YUV image.
// Images with empty bounds (possible in caller-supplied decoded images) are
// rejected with an error rather than panicking downstream.
func FromStdImage(src image.Image) (*Image, error) {
	b := src.Bounds()
	img, err := New(b.Dx(), b.Dy(), 3)
	if err != nil {
		return nil, err
	}
	w := img.W()
	pY := img.Planes[ChannelY].Pix
	pU := img.Planes[ChannelU].Pix
	pV := img.Planes[ChannelV].Pix
	put := func(i int, r8, g8, b8 float32) {
		yy, uu, vv := RGBToYUV(r8, g8, b8)
		pY[i], pU[i], pV[i] = yy, uu, vv
	}
	// The common stdlib formats get direct Pix-slice readers: the generic
	// At(x, y).RGBA() route boxes a color.Color per pixel, which turns a
	// megapixel conversion into a million allocations. Each fast path
	// produces the exact 8-bit channel values the interface route's
	// 16-bit-to-8-bit shift yields (NRGBA premultiplies with the stdlib's
	// own *0x101 * alpha / 0xff arithmetic), so results are bit-identical.
	var rows func(lo, hi int)
	switch s := src.(type) {
	case *image.RGBA:
		rows = func(lo, hi int) {
			for y := lo; y < hi; y++ {
				o := s.PixOffset(b.Min.X, b.Min.Y+y)
				for x := 0; x < w; x, o = x+1, o+4 {
					put(y*w+x, float32(s.Pix[o]), float32(s.Pix[o+1]), float32(s.Pix[o+2]))
				}
			}
		}
	case *image.NRGBA:
		prem := func(v, a uint8) float32 {
			r32 := uint32(v) * 0x101
			r32 = r32 * uint32(a) / 0xff
			return float32(r32 >> 8)
		}
		rows = func(lo, hi int) {
			for y := lo; y < hi; y++ {
				o := s.PixOffset(b.Min.X, b.Min.Y+y)
				for x := 0; x < w; x, o = x+1, o+4 {
					a := s.Pix[o+3]
					put(y*w+x, prem(s.Pix[o], a), prem(s.Pix[o+1], a), prem(s.Pix[o+2], a))
				}
			}
		}
	case *image.Gray:
		rows = func(lo, hi int) {
			for y := lo; y < hi; y++ {
				o := s.PixOffset(b.Min.X, b.Min.Y+y)
				for x := 0; x < w; x, o = x+1, o+1 {
					g := float32(s.Pix[o])
					put(y*w+x, g, g, g)
				}
			}
		}
	default:
		rows = func(lo, hi int) {
			for y := lo; y < hi; y++ {
				for x := 0; x < w; x++ {
					r16, g16, b16, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
					put(y*w+x, float32(r16>>8), float32(g16>>8), float32(b16>>8))
				}
			}
		}
	}
	// Rows write disjoint plane indices; src is only read.
	parallel.For(b.Dy(), rowGrain, rows)
	return img, nil
}

// ToStdImage converts the planar image to an 8-bit stdlib image, clamping
// samples to the displayable range. Monochrome images become grayscale.
func (m *Image) ToStdImage() image.Image {
	w, h := m.W(), m.H()
	if m.Channels() == 1 {
		out := image.NewGray(image.Rect(0, 0, w, h))
		parallel.For(h, rowGrain, func(lo, hi int) {
			for y := lo; y < hi; y++ {
				for x := 0; x < w; x++ {
					out.SetGray(x, y, color.Gray{Y: clamp8(m.Planes[0].Pix[y*w+x])})
				}
			}
		})
		return out
	}
	out := image.NewRGBA(image.Rect(0, 0, w, h))
	parallel.For(h, rowGrain, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				r, g, b := YUVToRGB(m.Planes[ChannelY].Pix[i], m.Planes[ChannelU].Pix[i], m.Planes[ChannelV].Pix[i])
				out.SetRGBA(x, y, color.RGBA{R: clamp8(r), G: clamp8(g), B: clamp8(b), A: 255})
			}
		}
	})
	return out
}
