package imgplane

import (
	"image"
	"image/color"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRGBYUVRoundTrip(t *testing.T) {
	f := func(r8, g8, b8 uint8) bool {
		y, u, v := RGBToYUV(float32(r8), float32(g8), float32(b8))
		r, g, b := YUVToRGB(y, u, v)
		return math.Abs(float64(r)-float64(r8)) < 0.01 &&
			math.Abs(float64(g)-float64(g8)) < 0.01 &&
			math.Abs(float64(b)-float64(b8)) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestYUVRanges(t *testing.T) {
	// Primaries and extremes must stay within the nominal 0..255 range.
	for _, rgb := range [][3]float32{
		{0, 0, 0}, {255, 255, 255}, {255, 0, 0}, {0, 255, 0}, {0, 0, 255},
		{255, 255, 0}, {0, 255, 255}, {255, 0, 255},
	} {
		y, u, v := RGBToYUV(rgb[0], rgb[1], rgb[2])
		for _, s := range []float32{y, u, v} {
			if s < -0.5 || s > 255.5 {
				t.Errorf("RGB %v gave out-of-range YUV component %v", rgb, s)
			}
		}
	}
	// Gray values map to U=V=128.
	y, u, v := RGBToYUV(90, 90, 90)
	if math.Abs(float64(y)-90) > 1e-3 || math.Abs(float64(u)-128) > 1e-3 || math.Abs(float64(v)-128) > 1e-3 {
		t.Errorf("gray 90 mapped to (%v,%v,%v)", y, u, v)
	}
}

func TestPlaneAtEdgeClamping(t *testing.T) {
	p := NewPlane(4, 3)
	p.Set(0, 0, 7)
	p.Set(3, 2, 9)
	tests := []struct {
		x, y int
		want float32
	}{
		{-1, -1, 7}, {0, -5, 7}, {-2, 0, 7},
		{10, 10, 9}, {3, 99, 9}, {99, 2, 9},
		{0, 0, 7}, {3, 2, 9},
	}
	for _, tt := range tests {
		if got := p.At(tt.x, tt.y); got != tt.want {
			t.Errorf("At(%d,%d) = %v, want %v", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestPlaneSetOutOfBoundsIgnored(t *testing.T) {
	p := NewPlane(2, 2)
	p.Set(-1, 0, 5)
	p.Set(0, -1, 5)
	p.Set(2, 0, 5)
	p.Set(0, 2, 5)
	for i, v := range p.Pix {
		if v != 0 {
			t.Errorf("sample %d modified by out-of-bounds Set: %v", i, v)
		}
	}
}

func TestAddSub(t *testing.T) {
	a := NewPlane(3, 3)
	b := NewPlane(3, 3)
	for i := range a.Pix {
		a.Pix[i] = float32(i)
		b.Pix[i] = float32(2 * i)
	}
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pix {
		if diff.Pix[i] != a.Pix[i] {
			t.Fatalf("(a+b)-b != a at %d", i)
		}
	}
	if _, err := a.Add(NewPlane(2, 2)); err == nil {
		t.Error("Add with mismatched sizes should error")
	}
	if _, err := a.Sub(NewPlane(2, 2)); err == nil {
		t.Error("Sub with mismatched sizes should error")
	}
}

func TestNewImageValidation(t *testing.T) {
	if _, err := New(4, 4, 2); err == nil {
		t.Error("New with 2 channels should error")
	}
	img, err := New(5, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if img.W() != 5 || img.H() != 7 || img.Channels() != 3 {
		t.Errorf("got %dx%d/%d", img.W(), img.H(), img.Channels())
	}
	if err := img.Validate(); err != nil {
		t.Errorf("valid image failed validation: %v", err)
	}
	img.Planes[1] = NewPlane(4, 7)
	if err := img.Validate(); err == nil {
		t.Error("mismatched plane sizes should fail validation")
	}
}

func TestStdImageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := image.NewRGBA(image.Rect(0, 0, 16, 12))
	for y := 0; y < 12; y++ {
		for x := 0; x < 16; x++ {
			src.SetRGBA(x, y, color.RGBA{
				R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256)), A: 255,
			})
		}
	}
	planar, err := FromStdImage(src)
	if err != nil {
		t.Fatal(err)
	}
	back := planar.ToStdImage()
	for y := 0; y < 12; y++ {
		for x := 0; x < 16; x++ {
			r0, g0, b0, _ := src.At(x, y).RGBA()
			r1, g1, b1, _ := back.At(x, y).RGBA()
			if absDiff(r0>>8, r1>>8) > 1 || absDiff(g0>>8, g1>>8) > 1 || absDiff(b0>>8, b1>>8) > 1 {
				t.Fatalf("pixel (%d,%d): (%d,%d,%d) -> (%d,%d,%d)",
					x, y, r0>>8, g0>>8, b0>>8, r1>>8, g1>>8, b1>>8)
			}
		}
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestCloneIsDeep(t *testing.T) {
	img, _ := New(4, 4, 3)
	img.Planes[0].Pix[0] = 42
	cp := img.Clone()
	cp.Planes[0].Pix[0] = 7
	if img.Planes[0].Pix[0] != 42 {
		t.Error("Clone shares storage with the original")
	}
}

func TestPSNRAndMSE(t *testing.T) {
	a := NewPlane(8, 8)
	b := NewPlane(8, 8)
	for i := range a.Pix {
		a.Pix[i] = 100
		b.Pix[i] = 110
	}
	mse, err := MSE(a, b)
	if err != nil || mse != 100 {
		t.Errorf("MSE = %v, %v; want 100", mse, err)
	}
	p, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(255*255/100.0)
	if math.Abs(p-want) > 1e-9 {
		t.Errorf("PSNR = %v, want %v", p, want)
	}
	same, err := PSNR(a, a)
	if err != nil || !math.IsInf(same, 1) {
		t.Errorf("PSNR of identical planes = %v, %v; want +Inf", same, err)
	}
	if _, err := MSE(a, NewPlane(4, 4)); err == nil {
		t.Error("MSE with mismatched sizes should error")
	}
}

func TestSSIM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewPlane(32, 32)
	for i := range a.Pix {
		a.Pix[i] = float32(rng.Intn(256))
	}
	self, err := SSIM(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(self-1) > 1e-9 {
		t.Errorf("SSIM(a,a) = %v, want 1", self)
	}
	noise := a.Clone()
	for i := range noise.Pix {
		noise.Pix[i] = float32(rng.Intn(256))
	}
	diff, err := SSIM(a, noise)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 0.5 {
		t.Errorf("SSIM of independent noise = %v, expected low", diff)
	}
	if _, err := SSIM(a, NewPlane(8, 8)); err == nil {
		t.Error("SSIM with mismatched sizes should error")
	}
	if _, err := SSIM(NewPlane(4, 4), NewPlane(4, 4)); err == nil {
		t.Error("SSIM on tiny planes should error")
	}
}

// opaqueImage hides the concrete type of an image so FromStdImage takes
// its generic At-based path.
type opaqueImage struct{ image.Image }

// TestFromStdImageFastPathsMatchGeneric pins that the typed Pix-slice
// readers in FromStdImage produce bit-identical planes to the generic
// color.Color route they replace, including non-opaque NRGBA pixels and
// a non-zero bounds origin.
func TestFromStdImageFastPathsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bounds := image.Rect(3, 5, 3+37, 5+23)

	rgba := image.NewRGBA(bounds)
	nrgba := image.NewNRGBA(bounds)
	gray := image.NewGray(bounds)
	for i := range rgba.Pix {
		rgba.Pix[i] = uint8(rng.Intn(256))
	}
	// Premultiplied storage requires channel <= alpha per pixel.
	for i := 0; i < len(rgba.Pix); i += 4 {
		a := rgba.Pix[i+3]
		for c := 0; c < 3; c++ {
			if rgba.Pix[i+c] > a {
				rgba.Pix[i+c] = a
			}
		}
	}
	for i := range nrgba.Pix {
		nrgba.Pix[i] = uint8(rng.Intn(256))
	}
	for i := range gray.Pix {
		gray.Pix[i] = uint8(rng.Intn(256))
	}

	for _, tc := range []struct {
		name string
		src  image.Image
	}{
		{"rgba", rgba},
		{"nrgba", nrgba},
		{"gray", gray},
	} {
		fast, err := FromStdImage(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		ref, err := FromStdImage(opaqueImage{tc.src})
		if err != nil {
			t.Fatalf("%s generic: %v", tc.name, err)
		}
		for ch := 0; ch < 3; ch++ {
			for i, v := range ref.Planes[ch].Pix {
				if fast.Planes[ch].Pix[i] != v {
					t.Fatalf("%s: channel %d sample %d: fast %v != generic %v",
						tc.name, ch, i, fast.Planes[ch].Pix[i], v)
				}
			}
		}
	}
}
