package imgplane

import (
	"sync"

	"puppies/internal/parallel"
)

// resizeRowGrain is the parallel chunk size for resize loops, in output rows.
const resizeRowGrain = 32

// ResizeBilinearInto resizes src into dst (whose dimensions select the
// target size) with center-aligned bilinear interpolation. This is the one
// chroma upsampling kernel in the codebase: jpegc uses it to present
// subsampled chroma at full resolution, and core uses the identical kernel
// when building shadow planes, so the two sides cancel exactly for linear
// transforms (shadow reconstruction relies on U(c+d) - U(d) = U(c) for the
// upsample U, which holds because the kernel is linear in the samples).
//
// Output rows are written disjointly, so the parallel loop is deterministic
// at any worker count.
func ResizeBilinearInto(src, dst *Plane) {
	if src.W == dst.W && src.H == dst.H {
		copy(dst.Pix, src.Pix)
		return
	}
	w, h := dst.W, dst.H
	fx := float64(w) / float64(src.W)
	fy := float64(h) / float64(src.H)
	parallel.For(h, resizeRowGrain, func(lo, hi int) {
		for oy := lo; oy < hi; oy++ {
			sy := (float64(oy)+0.5)/fy - 0.5
			y0 := int(sy)
			if sy < 0 {
				y0 = -1
			}
			wy := float32(sy - float64(y0))
			for ox := 0; ox < w; ox++ {
				sx := (float64(ox)+0.5)/fx - 0.5
				x0 := int(sx)
				if sx < 0 {
					x0 = -1
				}
				wx := float32(sx - float64(x0))
				v := (1-wy)*((1-wx)*src.At(x0, y0)+wx*src.At(x0+1, y0)) +
					wy*((1-wx)*src.At(x0, y0+1)+wx*src.At(x0+1, y0+1))
				dst.Pix[oy*w+ox] = v
			}
		}
	})
}

// planePool recycles Plane backing arrays for transient intermediates
// (native-resolution chroma before upsampling, normalization scratch).
// Pooled planes keep whatever capacity they grew to; GetPlane reslices and
// zeroes nothing — callers overwrite every sample before reading.
var planePool = sync.Pool{New: func() any { return &Plane{} }}

// GetPlane returns a pooled plane resized to w x h. The contents are
// unspecified; the caller must write every sample it reads back.
func GetPlane(w, h int) *Plane {
	if w <= 0 || h <= 0 {
		panic("imgplane: invalid pooled plane size")
	}
	p := planePool.Get().(*Plane)
	p.W, p.H = w, h
	if cap(p.Pix) < w*h {
		p.Pix = make([]float32, w*h)
	} else {
		p.Pix = p.Pix[:w*h]
	}
	return p
}

// PutPlane returns a plane obtained from GetPlane to the pool. The caller
// must not use the plane afterwards.
func PutPlane(p *Plane) {
	if p == nil {
		return
	}
	planePool.Put(p)
}
