package imgplane

import (
	"fmt"
	"math"

	"puppies/internal/parallel"
)

// metricGrain is the parallel chunk size for metric reductions, in samples
// (MSE) or window rows (SSIM). Chunk boundaries are fixed by the input size,
// and per-chunk partial sums are merged in chunk order, so the result is
// bit-identical at any worker count (though chunked summation may differ
// from a single serial sum in the last ulp).
const metricGrain = 1 << 15

// MSE returns the mean squared error between two planes of equal size.
func MSE(a, b *Plane) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("imgplane: MSE size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	parts := parallel.Map(len(a.Pix), metricGrain, func(lo, hi int) float64 {
		var sum float64
		for i := lo; i < hi; i++ {
			d := float64(a.Pix[i]) - float64(b.Pix[i])
			sum += d * d
		}
		return sum
	})
	var sum float64
	for _, p := range parts {
		sum += p
	}
	return sum / float64(len(a.Pix)), nil
}

// PSNR returns the peak signal-to-noise ratio in dB between two planes,
// assuming an 8-bit peak of 255. Identical planes return +Inf.
func PSNR(a, b *Plane) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// ImagePSNR returns the PSNR over all channels of two images.
func ImagePSNR(a, b *Image) (float64, error) {
	if a.Channels() != b.Channels() {
		return 0, fmt.Errorf("imgplane: channel mismatch %d vs %d", a.Channels(), b.Channels())
	}
	var total float64
	var n int
	for c := range a.Planes {
		mse, err := MSE(a.Planes[c], b.Planes[c])
		if err != nil {
			return 0, err
		}
		total += mse * float64(len(a.Planes[c].Pix))
		n += len(a.Planes[c].Pix)
	}
	mse := total / float64(n)
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// SSIM computes the structural similarity index between two planes using
// the standard 8x8 sliding window with C1=(0.01*255)^2, C2=(0.03*255)^2.
// It returns a value in [-1, 1]; 1 means identical structure.
func SSIM(a, b *Plane) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("imgplane: SSIM size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	const win = 8
	const c1 = 6.5025  // (0.01*255)^2
	const c2 = 58.5225 // (0.03*255)^2
	if a.W < win || a.H < win {
		return 0, fmt.Errorf("imgplane: SSIM needs at least %dx%d pixels", win, win)
	}
	type partial struct {
		total float64
		count int
	}
	// One unit per window row; per-row partial sums merge in chunk order.
	winRows := a.H / win
	parts := parallel.Map(winRows, 4, func(lo, hi int) partial {
		var pt partial
		for wr := lo; wr < hi; wr++ {
			wy := wr * win
			for wx := 0; wx+win <= a.W; wx += win {
				var ma, mb float64
				for y := 0; y < win; y++ {
					for x := 0; x < win; x++ {
						ma += float64(a.Pix[(wy+y)*a.W+wx+x])
						mb += float64(b.Pix[(wy+y)*b.W+wx+x])
					}
				}
				n := float64(win * win)
				ma /= n
				mb /= n
				var va, vb, cov float64
				for y := 0; y < win; y++ {
					for x := 0; x < win; x++ {
						da := float64(a.Pix[(wy+y)*a.W+wx+x]) - ma
						db := float64(b.Pix[(wy+y)*b.W+wx+x]) - mb
						va += da * da
						vb += db * db
						cov += da * db
					}
				}
				va /= n - 1
				vb /= n - 1
				cov /= n - 1
				s := ((2*ma*mb + c1) * (2*cov + c2)) / ((ma*ma + mb*mb + c1) * (va + vb + c2))
				pt.total += s
				pt.count++
			}
		}
		return pt
	})
	var total float64
	var count int
	for _, pt := range parts {
		total += pt.total
		count += pt.count
	}
	return total / float64(count), nil
}
